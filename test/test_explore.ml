(* The explorer explored: every registered scenario must survive the
   tier-1 smoke sweep, and the detector must catch the planted
   lost-wakeup bug within the same budget. *)

let quiet = ignore

let policy_str = Sim.Sched.to_string

let test_registry_names () =
  let names = List.map Sim.Explore.name Scenarios.all in
  Alcotest.(check bool)
    "registry non-trivial"
    true
    (List.length names >= 14);
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length sorted);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "find %s" n)
        true
        (Scenarios.find n <> None))
    names

(* every scenario, full smoke sweep: Fifo + 5 shuffle seeds +
   Adversarial.  This IS `make explore-smoke`, run under alcotest so
   tier-1 cannot go green while a schedule regression exists. *)
let test_smoke_sweep () =
  List.iter
    (fun sc ->
      let fails = Sim.Explore.explore ~out:quiet sc in
      match fails with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "scenario %s failed under %s: %s"
          f.Sim.Explore.f_scenario
          (policy_str f.Sim.Explore.f_policy)
          f.Sim.Explore.f_reason)
    Scenarios.all

(* with the planted lost-wakeup bug armed, the queue-race scenario must
   fail somewhere in the smoke budget — and the failure must name a
   replayable policy that fails again on its own *)
let test_planted_bug_caught () =
  let sc =
    match Scenarios.find "queue-race" with
    | Some sc -> sc
    | None -> Alcotest.fail "queue-race scenario missing"
  in
  let fails =
    Scenarios.with_planted_bug (fun () ->
        Sim.Explore.explore ~out:quiet sc)
  in
  (match fails with
  | [] ->
    Alcotest.fail
      "planted lost-wakeup bug escaped the smoke budget undetected"
  | f :: _ ->
    (* the named (policy, seed) must reproduce in isolation *)
    let repro =
      Scenarios.with_planted_bug (fun () ->
          Sim.Explore.run_one ~out:quiet sc f.Sim.Explore.f_policy)
    in
    Alcotest.(check bool)
      (Printf.sprintf "repro under %s" (policy_str f.Sim.Explore.f_policy))
      true
      (match repro with Error _ -> true | Ok _ -> false));
  (* and with the flag back off, the same sweep is clean again *)
  Alcotest.(check int) "clean after disarm" 0
    (List.length (Sim.Explore.explore ~out:quiet sc))

(* adversarial alone must catch the planted bug deterministically: the
   LIFO ordering always runs the second reader's timer first *)
let test_planted_bug_adversarial () =
  let sc = Option.get (Scenarios.find "queue-race") in
  Scenarios.with_planted_bug (fun () ->
      match Sim.Explore.run_one ~out:quiet sc Sim.Sched.Adversarial with
      | Ok _ -> Alcotest.fail "adversarial schedule missed the planted bug"
      | Error f ->
        Alcotest.(check bool)
          "reason mentions a stall or count"
          true
          (String.length f.Sim.Explore.f_reason > 0))

(* The second plant: a union walk that gives up at a dead member
   instead of falling through.  It is schedule-INdependent — a FIFO
   baseline is exactly as wrong as every other policy, so transcript
   comparison alone can never convict it; the scenario's explicit
   semantic check ("read c3 still answers") must.  Fifo alone suffices
   to catch it, which is what this pins. *)
let test_planted_union_bug_caught () =
  let sc =
    match Scenarios.find "union-member-dies-walk-continues" with
    | Some sc -> sc
    | None -> Alcotest.fail "union-member-dies scenario missing"
  in
  Scenarios.with_planted_union_bug (fun () ->
      match Sim.Explore.run_one ~out:quiet sc Sim.Sched.Fifo with
      | Ok _ ->
        Alcotest.fail
          "planted union lost-fallback bug escaped the fifo baseline"
      | Error f ->
        Alcotest.(check bool)
          "failure carries a reason" true
          (String.length f.Sim.Explore.f_reason > 0));
  (* disarmed, the full smoke sweep is clean again *)
  Alcotest.(check int) "clean after disarm" 0
    (List.length (Sim.Explore.explore ~out:quiet sc))

(* a stalled operation's failure replay must name the spans still open
   at the stall — the "what was it in the middle of" line *)
let test_replay_names_open_spans () =
  let sc =
    Sim.Explore.scenario "span-stall"
      ~descr:"a reader that opens a span and blocks forever"
      (fun ~sched ~trace ->
        let eng = Sim.Engine.create ~sched () in
        let tr =
          match trace with
          | Some tr -> tr
          | None -> Obs.Trace.create ~capacity:512 ()
        in
        Sim.Engine.attach_obs eng tr;
        let r = Sim.Rendez.create eng in
        ignore
          (Sim.Proc.spawn eng ~name:"sc:main" (fun () ->
               ignore (Obs.Span.enter tr ~layer:"app" "op.read" : Obs.Span.h);
               Sim.Rendez.sleep r));
        Sim.Engine.run ~until:10.0 eng;
        {
          Sim.Explore.o_transcript = "";
          o_stalled =
            List.filter
              (fun n ->
                String.length n >= 3 && String.sub n 0 3 = "sc:")
              (Sim.Engine.stalled eng);
          o_crash = None;
          o_counters = [];
          o_events = Sim.Engine.events eng;
        })
  in
  let buf = Buffer.create 1024 in
  (match Sim.Explore.run_one ~out:(Buffer.add_string buf) sc Sim.Sched.Fifo with
  | Ok _ -> Alcotest.fail "a blocked-forever scenario must stall"
  | Error f ->
    Alcotest.(check bool) "reason is the stall" true
      (String.length f.Sim.Explore.f_reason > 0));
  let out = Buffer.contents buf in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "replay lists open spans" true
    (contains out "open spans at stall");
  Alcotest.(check bool) "the stuck operation is named" true
    (contains out "op.read")

let () =
  Alcotest.run "explore"
    [
      ( "explore",
        [
          Alcotest.test_case "registry names" `Quick test_registry_names;
          Alcotest.test_case "smoke sweep" `Quick test_smoke_sweep;
          Alcotest.test_case "planted bug caught" `Quick
            test_planted_bug_caught;
          Alcotest.test_case "planted bug adversarial" `Quick
            test_planted_bug_adversarial;
          Alcotest.test_case "planted union bug caught" `Quick
            test_planted_union_bug_caught;
          Alcotest.test_case "replay names open spans" `Quick
            test_replay_names_open_spans;
        ] );
    ]
