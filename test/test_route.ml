(* The routing subsystem: longest-prefix-match tables, the
   /net/iproute ctl grammar, ndb subnet resolution, and end-to-end
   forwarding across gateway hosts and the Datakit transit. *)

let ea = Netsim.Eaddr.of_string
let ip = Inet.Ipaddr.of_string
let spawn = Sim.Proc.spawn
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* ---- the table: longest prefix match ---- *)

let test_lpm_overlapping_prefixes () =
  let t = Route.Table.create () in
  let add d m tgt = Route.Table.add t ~dest:(ip d) ~mask:(ip m) tgt in
  add "10.0.0.0" "255.0.0.0" (Route.Table.Via (ip "10.0.0.1"));
  add "10.1.0.0" "255.255.0.0" (Route.Table.Via (ip "10.1.0.1"));
  add "10.1.2.0" "255.255.255.0" (Route.Table.Via (ip "10.1.2.1"));
  add "10.1.2.3" "255.255.255.255" (Route.Table.Via (ip "10.9.9.9"));
  let hop d =
    match Route.Table.lookup t (ip d) with
    | Some { Route.Table.r_target = Route.Table.Via gw; _ } ->
      Inet.Ipaddr.to_string gw
    | Some _ -> "other"
    | None -> "none"
  in
  Alcotest.(check string) "/8 match" "10.0.0.1" (hop "10.200.0.5");
  Alcotest.(check string) "/16 beats /8" "10.1.0.1" (hop "10.1.9.9");
  Alcotest.(check string) "/24 beats /16" "10.1.2.1" (hop "10.1.2.77");
  Alcotest.(check string) "host route beats /24" "10.9.9.9" (hop "10.1.2.3");
  Alcotest.(check string) "no match" "none" (hop "11.0.0.1")

let test_lpm_default_and_blackhole () =
  let t = Route.Table.create () in
  Route.Table.add t ~dest:(ip "0.0.0.0") ~mask:(ip "0.0.0.0")
    (Route.Table.Via (ip "10.0.0.254"));
  Route.Table.add t ~dest:(ip "192.168.0.0") ~mask:(ip "255.255.0.0")
    Route.Table.Blackhole;
  (match Route.Table.lookup t (ip "8.8.8.8") with
  | Some { Route.Table.r_target = Route.Table.Via gw; _ } ->
    Alcotest.(check string) "default route" "10.0.0.254"
      (Inet.Ipaddr.to_string gw)
  | _ -> Alcotest.fail "default route not matched");
  match Route.Table.lookup t (ip "192.168.3.4") with
  | Some { Route.Table.r_target = Route.Table.Blackhole; _ } -> ()
  | _ -> Alcotest.fail "blackhole not matched"

let test_table_add_del_flush () =
  let t = Route.Table.create () in
  Route.Table.add t ~dest:(ip "10.1.2.3") ~mask:(ip "255.255.0.0")
    (Route.Table.Onlink "ether0");
  (* dest is masked down on insert *)
  (match Route.Table.entries t with
  | [ e ] ->
    Alcotest.(check string) "masked dest" "10.1.0.0"
      (Inet.Ipaddr.to_string e.Route.Table.r_dest)
  | _ -> Alcotest.fail "one entry expected");
  (* same dest/mask replaces *)
  Route.Table.add t ~dest:(ip "10.1.0.0") ~mask:(ip "255.255.0.0")
    (Route.Table.Via (ip "10.1.0.9"));
  Alcotest.(check int) "replaced, not duplicated" 1
    (List.length (Route.Table.entries t));
  Alcotest.(check bool) "del missing" false
    (Route.Table.del t ~dest:(ip "11.0.0.0") ~mask:(ip "255.0.0.0"));
  Alcotest.(check bool) "del present" true
    (Route.Table.del t ~dest:(ip "10.1.0.0") ~mask:(ip "255.255.0.0"));
  Route.Table.add t ~dest:(ip "10.0.0.0") ~mask:(ip "255.0.0.0")
    (Route.Table.Onlink "ether0");
  Route.Table.flush t;
  Alcotest.(check int) "flushed" 0 (List.length (Route.Table.entries t))

(* ---- the ctl grammar ---- *)

let make_node () =
  let eng = Sim.Engine.create () in
  let node = Route.create ~name:"n" eng in
  Route.add_iface node
    {
      Route.if_name = "ether0";
      if_addr = ip "10.1.0.2";
      if_mask = ip "255.255.0.0";
      if_emit = (fun ~nexthop:_ _ -> ());
      if_stack = None;
    };
  node

let test_ctl_grammar () =
  let node = make_node () in
  let ok req =
    match Route.ctl node req with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (req ^ ": " ^ e)
  in
  let err req =
    match Route.ctl node req with
    | Ok _ -> Alcotest.fail (req ^ ": accepted")
    | Error _ -> ()
  in
  ok "add 0.0.0.0 0.0.0.0 10.1.0.1";
  ok "add 10.9.0.0 255.255.0.0 onlink ether0";
  ok "add 192.168.0.0 255.255.0.0 blackhole";
  err "add 10.9.0.0 255.255.0.0 onlink ether9" (* no such interface *);
  err "add banana 255.0.0.0 10.1.0.1";
  err "frob";
  let dump = Route.dump node in
  Alcotest.(check bool) "dump lists default" true
    (contains dump "0.0.0.0 0.0.0.0 via 10.1.0.1");
  Alcotest.(check bool) "dump lists blackhole" true
    (contains dump "192.168.0.0 255.255.0.0 blackhole");
  ok "del 192.168.0.0 255.255.0.0";
  err "del 192.168.0.0 255.255.0.0" (* already gone *);
  ok "flush";
  Alcotest.(check int) "flush emptied the table" 0
    (List.length (Route.Table.entries (Route.table node)))

(* ---- ndb: ipnet_entry and gateway resolution ---- *)

let test_ndb_ipnet_resolution () =
  let db = Ndb.of_string (Genndb.subnetted ~leaves:4 ~clients_per_leaf:2 ()) in
  let net_of ipstr =
    match Ndb.ipnet_entry db ~ip:ipstr with
    | Some e -> Option.value ~default:"?" (Ndb.get e "ipnet")
    | None -> "none"
  in
  Alcotest.(check string) "client in leaf3" "leaf3" (net_of "10.3.1.2");
  Alcotest.(check string) "gateway leaf side" "leaf1" (net_of "10.1.0.1");
  Alcotest.(check string) "backbone left" "bbl" (net_of "10.100.0.2");
  Alcotest.(check string) "server subnet" "srv" (net_of "10.200.0.9");
  Alcotest.(check string) "datakit transit" "dkt" (net_of "10.255.0.1");
  Alcotest.(check string) "outside every subnet" "none" (net_of "11.1.1.1");
  (* the gateway and medium attributes ride the subnet entry *)
  (match Ndb.ipnet_entry db ~ip:"10.3.1.2" with
  | Some e ->
    Alcotest.(check (option string)) "leaf ipgw" (Some "10.3.0.1")
      (Ndb.get e "ipgw")
  | None -> Alcotest.fail "no subnet for a leaf client");
  match Ndb.ipnet_entry db ~ip:"10.255.0.2" with
  | Some e ->
    Alcotest.(check (option string)) "dk medium" (Some "dk")
      (Ndb.get e "medium")
  | None -> Alcotest.fail "no subnet for the transit address"

(* ---- the routed world: echo across gateways and the dk transit ---- *)

let small_routed ?seed () =
  let db = Ndb.of_string (Genndb.subnetted ~leaves:2 ~clients_per_leaf:1 ()) in
  let w = P9net.World.routed ?seed ~db () in
  let gws =
    List.map (P9net.World.add_host w) [ "gw01"; "gw02"; "gwcorel"; "gwcorer" ]
  in
  let server = P9net.World.add_host w Genndb.server_sys in
  let cl_left = P9net.World.add_host w (Genndb.client_sys 1 1) in
  let cl_right = P9net.World.add_host w (Genndb.client_sys 2 1) in
  P9net.World.autoroute w;
  P9net.Host.serve_echo server;
  (w, gws, server, cl_left, cl_right)

let test_routed_world_echo () =
  (* cl01-001 sits on leaf1 behind gw01; the path to the server crosses
     gw01, the left backbone, the Datakit tunnel between the cores, and
     the server subnet — four gateway hops *)
  let w, gws, _server, cl_left, cl_right = small_routed () in
  let eng = w.P9net.World.eng in
  let echoes = ref [] in
  List.iter
    (fun (host, tag) ->
      ignore
        (P9net.Host.spawn host ("echo-" ^ tag) (fun env ->
             let conn =
               P9net.Dial.redial env ~tries:20
                 ~pause:(fun () -> Sim.Time.sleep eng 0.05)
                 "il!swarmsrv!echo"
             in
             ignore (Vfs.Env.write env conn.P9net.Dial.data_fd ("ping-" ^ tag));
             let got = Vfs.Env.read env conn.P9net.Dial.data_fd 4096 in
             P9net.Dial.hangup env conn;
             echoes := (tag, got) :: !echoes)))
    [ (cl_left, "left"); (cl_right, "right") ];
  P9net.World.run ~until:120.0 w;
  Alcotest.(check (list (pair string string)))
    "both sides echoed"
    [ ("left", "ping-left"); ("right", "ping-right") ]
    (List.sort compare !echoes);
  let stat f = List.fold_left (fun a gw ->
      match gw.P9net.Host.node with
      | Some n -> a + f (Route.stats n)
      | None -> a) 0 gws
  in
  Alcotest.(check bool) "gateways forwarded" true
    (stat (fun c -> c.Route.forwarded) > 0);
  Alcotest.(check bool) "the dk tunnel carried packets" true
    (stat (fun c -> c.Route.tun_tx) > 0 && stat (fun c -> c.Route.tun_rx) > 0);
  Alcotest.(check int) "no drops at the choke point" 0
    (stat (fun c ->
         c.Route.no_route + c.Route.ttl_exceeded + c.Route.blackholed
         + c.Route.transit_refused + c.Route.bad_header))

let test_iproute_file () =
  let w, _gws, _server, cl_left, _cl_right = small_routed () in
  let finished = ref false in
  ignore
    (P9net.Host.spawn cl_left "ctl" (fun env ->
         let dump = Vfs.Env.read_file env "/net/iproute" in
         Alcotest.(check bool) "dump shows the interface" true
           (contains dump "ifc ether0 10.1.1.1");
         Alcotest.(check bool) "dump shows the default route" true
           (contains dump "0.0.0.0 0.0.0.0 via 10.1.0.1");
         (* add, verify, delete through the file *)
         let fd = Vfs.Env.open_ env "/net/iproute" Ninep.Fcall.Ordwr in
         ignore
           (Vfs.Env.write env fd "add 192.168.7.0 255.255.255.0 blackhole");
         Vfs.Env.close env fd;
         let dump = Vfs.Env.read_file env "/net/iproute" in
         Alcotest.(check bool) "added entry shows" true
           (contains dump "192.168.7.0 255.255.255.0 blackhole");
         let fd = Vfs.Env.open_ env "/net/iproute" Ninep.Fcall.Ordwr in
         ignore (Vfs.Env.write env fd "del 192.168.7.0 255.255.255.0");
         Vfs.Env.close env fd;
         let dump = Vfs.Env.read_file env "/net/iproute" in
         Alcotest.(check bool) "deleted entry gone" false
           (contains dump "192.168.7.0");
         finished := true));
  P9net.World.run ~until:30.0 w;
  Alcotest.(check bool) "test body completed" true !finished

(* ---- the choke point: drops are counted and evented ---- *)

let make_two_segment_router () =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  let seg_a = Netsim.Ether.create ~name:"ether0" eng in
  let seg_b = Netsim.Ether.create ~name:"ether1" eng in
  let mask = ip "255.255.255.0" in
  let nic seg n =
    Inet.Etherport.create eng
      (Netsim.Ether.attach seg (ea (Printf.sprintf "08006903%04x" n)))
  in
  let r_a = Inet.Ip.create ~addr:(ip "10.51.0.1") ~mask (nic seg_a 1) in
  let r_b = Inet.Ip.create ~addr:(ip "10.52.0.1") ~mask (nic seg_b 2) in
  let node = Route.create ~name:"router" eng in
  Route.set_deliver node (fun raw -> Inet.Ip.deliver_raw r_a raw);
  ignore (Route.attach_stack node ~ifname:"ether0" r_a);
  ignore (Route.attach_stack node ~ifname:"ether1" r_b);
  let host_a =
    Inet.Ip.create ~gateway:(ip "10.51.0.1") ~addr:(ip "10.51.0.5") ~mask
      (nic seg_a 3)
  in
  (eng, tr, node, host_a)

let test_choke_point_no_route () =
  let eng, tr, node, host_a = make_two_segment_router () in
  let udp = Inet.Udp.attach host_a in
  let _p =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind udp in
        (* 11.9.9.9 matches nothing in the router's table *)
        Inet.Udp.send conv ~dst:(ip "11.9.9.9") ~dport:9 "lost")
  in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check int) "node counted the drop" 1
    (Route.stats node).Route.no_route;
  Alcotest.(check int) "trace counter ip.no_route" 1
    (Obs.Metrics.counter (Obs.Trace.metrics tr) "ip.no_route");
  let dropped =
    List.exists
      (function
        | _, _, Obs.Event.Packet { op = Obs.Event.Drop "no_route"; medium; _ }
          ->
          medium = "route:router"
        | _ -> false)
      (Obs.Trace.events tr)
  in
  Alcotest.(check bool) "drop evented" true dropped

let test_choke_point_blackhole_and_refusal () =
  let eng, tr, node, host_a = make_two_segment_router () in
  Route.Table.add (Route.table node) ~dest:(ip "172.16.0.0")
    ~mask:(ip "255.240.0.0") Route.Table.Blackhole;
  let udp = Inet.Udp.attach host_a in
  let _p =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind udp in
        Inet.Udp.send conv ~dst:(ip "172.16.3.4") ~dport:9 "void")
  in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check int) "blackholed counted" 1
    (Route.stats node).Route.blackholed;
  Alcotest.(check int) "trace counter ip.blackhole" 1
    (Obs.Metrics.counter (Obs.Trace.metrics tr) "ip.blackhole")

let test_ttl_expiry_between_gateways () =
  (* two gateways defaulting at each other: a packet for an address
     neither owns ping-pongs across the shared segment until its TTL
     runs out at the choke point *)
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  let seg_a = Netsim.Ether.create ~name:"etherA" eng in
  let seg_m = Netsim.Ether.create ~name:"etherM" eng in
  let seg_b = Netsim.Ether.create ~name:"etherB" eng in
  let mask = ip "255.255.255.0" in
  let nicno = ref 0 in
  let nic seg =
    incr nicno;
    Inet.Etherport.create eng
      (Netsim.Ether.attach seg (ea (Printf.sprintf "08006904%04x" !nicno)))
  in
  let mk_gw name a_seg a_addr m_addr peer =
    let st_a = Inet.Ip.create ~addr:(ip a_addr) ~mask (nic a_seg) in
    let st_m = Inet.Ip.create ~addr:(ip m_addr) ~mask (nic seg_m) in
    let node = Route.create ~name eng in
    Route.set_deliver node (fun raw -> Inet.Ip.deliver_raw st_a raw);
    ignore (Route.attach_stack node ~ifname:"ether0" st_a);
    ignore (Route.attach_stack node ~ifname:"ether1" st_m);
    Route.Table.add (Route.table node) ~dest:(ip "0.0.0.0")
      ~mask:(ip "0.0.0.0")
      (Route.Table.Via (ip peer));
    node
  in
  let gw_a = mk_gw "gwA" seg_a "10.61.0.1" "10.60.0.1" "10.60.0.2" in
  let gw_b = mk_gw "gwB" seg_b "10.62.0.1" "10.60.0.2" "10.60.0.1" in
  let host_a =
    Inet.Ip.create ~gateway:(ip "10.61.0.1") ~addr:(ip "10.61.0.5") ~mask
      (nic seg_a)
  in
  let udp = Inet.Udp.attach host_a in
  let _p =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind udp in
        Inet.Udp.send conv ~dst:(ip "10.99.0.9") ~dport:9 "loop")
  in
  Sim.Engine.run ~until:30.0 eng;
  let ttlx =
    (Route.stats gw_a).Route.ttl_exceeded
    + (Route.stats gw_b).Route.ttl_exceeded
  in
  Alcotest.(check int) "one packet expired" 1 ttlx;
  Alcotest.(check int) "trace counter ip.ttl_exceeded" 1
    (Obs.Metrics.counter (Obs.Trace.metrics tr) "ip.ttl_exceeded");
  Alcotest.(check bool) "it bounced before dying" true
    ((Route.stats gw_a).Route.forwarded
     + (Route.stats gw_b).Route.forwarded
    > 50)

let () =
  Alcotest.run "route"
    [
      ( "table",
        [
          Alcotest.test_case "overlapping prefixes" `Quick
            test_lpm_overlapping_prefixes;
          Alcotest.test_case "default and blackhole" `Quick
            test_lpm_default_and_blackhole;
          Alcotest.test_case "add del flush" `Quick test_table_add_del_flush;
        ] );
      ( "ctl",
        [
          Alcotest.test_case "grammar" `Quick test_ctl_grammar;
          Alcotest.test_case "/net/iproute" `Quick test_iproute_file;
        ] );
      ( "ndb",
        [
          Alcotest.test_case "ipnet resolution" `Quick
            test_ndb_ipnet_resolution;
        ] );
      ( "routed world",
        [
          Alcotest.test_case "echo across gateways" `Quick
            test_routed_world_echo;
        ] );
      ( "choke point",
        [
          Alcotest.test_case "no route" `Quick test_choke_point_no_route;
          Alcotest.test_case "blackhole" `Quick
            test_choke_point_blackhole_and_refusal;
          Alcotest.test_case "ttl expiry" `Quick
            test_ttl_expiry_between_gateways;
        ] );
    ]
