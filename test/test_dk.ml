(* Tests for the Datakit switch and URP. *)

let make_switch ?loss ?(seed = 9) () =
  let eng = Sim.Engine.create ~seed () in
  let sw = Dk.Switch.create ?loss ~name:"dk" eng in
  let helix = Dk.Switch.attach sw ~name:"nj/astro/helix" in
  let gnot = Dk.Switch.attach sw ~name:"nj/astro/philw-gnot" in
  (eng, sw, helix, gnot)

let spawn = Sim.Proc.spawn

let test_dial_accept () =
  let eng, _sw, helix, gnot = make_switch () in
  let caller_seen = ref "" and service_seen = ref "" in
  let _server =
    spawn eng (fun () ->
        let calls = Dk.Circuit.announce helix ~service:"9fs" in
        let inc = Sim.Mbox.recv calls in
        caller_seen := Dk.Circuit.caller inc;
        service_seen := Dk.Circuit.service inc;
        ignore (Dk.Circuit.accept inc))
  in
  let connected = ref false in
  let _client =
    spawn eng (fun () ->
        let circ =
          Dk.Circuit.dial gnot ~dest:"nj/astro/helix" ~service:"9fs"
        in
        connected := true;
        Alcotest.(check string) "peer" "nj/astro/helix"
          (Dk.Circuit.peer_name circ))
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check bool) "connected" true !connected;
  Alcotest.(check string) "caller name" "nj/astro/philw-gnot" !caller_seen;
  Alcotest.(check string) "service name" "9fs" !service_seen

let test_dial_reject_with_reason () =
  let eng, _sw, helix, gnot = make_switch () in
  let _server =
    spawn eng (fun () ->
        let calls = Dk.Circuit.announce helix ~service:"9fs" in
        let inc = Sim.Mbox.recv calls in
        Dk.Circuit.reject inc ~reason:"permission denied")
  in
  let reason = ref "" in
  let _client =
    spawn eng (fun () ->
        try
          ignore (Dk.Circuit.dial gnot ~dest:"nj/astro/helix" ~service:"9fs")
        with Dk.Circuit.Rejected r -> reason := r)
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check string) "reason delivered" "permission denied" !reason

let test_dial_no_such_line () =
  let eng, _sw, _helix, gnot = make_switch () in
  let ok = ref false in
  let _client =
    spawn eng (fun () ->
        try ignore (Dk.Circuit.dial gnot ~dest:"nj/astro/nowhere" ~service:"x")
        with Dk.Circuit.No_such_line _ -> ok := true)
  in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check bool) "no such line" true !ok

let test_dial_unknown_service () =
  let eng, _sw, _helix, gnot = make_switch () in
  let ok = ref false in
  let _client =
    spawn eng (fun () ->
        try
          ignore (Dk.Circuit.dial gnot ~dest:"nj/astro/helix" ~service:"zap")
        with Dk.Circuit.Rejected _ -> ok := true)
  in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check bool) "rejected" true !ok

let test_wildcard_service () =
  (* announcing "*" receives services not explicitly announced — how
     the Plan 9 listener replaces inetd *)
  let eng, _sw, helix, gnot = make_switch () in
  let got_service = ref "" in
  let _server =
    spawn eng (fun () ->
        let calls = Dk.Circuit.announce helix ~service:"*" in
        let inc = Sim.Mbox.recv calls in
        got_service := Dk.Circuit.service inc;
        ignore (Dk.Circuit.accept inc))
  in
  let _client =
    spawn eng (fun () ->
        ignore (Dk.Circuit.dial gnot ~dest:"nj/astro/helix" ~service:"exportfs"))
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check string) "wildcard caught it" "exportfs" !got_service

let test_cells_ordered () =
  let eng, _sw, helix, gnot = make_switch () in
  let got = ref [] in
  let _server =
    spawn eng (fun () ->
        let calls = Dk.Circuit.announce helix ~service:"x" in
        let inc = Sim.Mbox.recv calls in
        let circ = Dk.Circuit.accept inc in
        let rec go () =
          match Dk.Circuit.recv circ with
          | Some (Dk.Circuit.Data { payload; _ }) ->
            got := payload :: !got;
            go ()
          | Some (Dk.Circuit.Ctl _) -> go ()
          | Some Dk.Circuit.Hangup | None -> ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let circ = Dk.Circuit.dial gnot ~dest:"nj/astro/helix" ~service:"x" in
        List.iter
          (fun p -> Dk.Circuit.send circ (Dk.Circuit.Data { payload = p; last = true }))
          [ "a"; "b"; "c" ];
        Sim.Time.sleep eng 1.0;
        Dk.Circuit.hangup circ)
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check (list string)) "in order" [ "a"; "b"; "c" ] (List.rev !got)

let urp_pair ?loss ?config () =
  let eng, sw, helix, gnot = make_switch ?loss () in
  let server_conv = ref None in
  let _server =
    spawn eng (fun () ->
        let calls = Dk.Circuit.announce helix ~service:"urp" in
        let inc = Sim.Mbox.recv calls in
        let circ = Dk.Circuit.accept inc in
        server_conv := Some (Dk.Urp.over ?config circ))
  in
  let client_conv = ref None in
  let _client =
    spawn eng (fun () ->
        let circ = Dk.Circuit.dial gnot ~dest:"nj/astro/helix" ~service:"urp" in
        client_conv := Some (Dk.Urp.over ?config circ))
  in
  (eng, sw, server_conv, client_conv)

let test_urp_roundtrip () =
  let eng, _sw, server_conv, client_conv = urp_pair () in
  let got = ref "" in
  let _s =
    spawn eng (fun () ->
        while !server_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !server_conv in
        match Dk.Urp.read_msg conv with
        | Some m -> Dk.Urp.write conv ("re:" ^ m)
        | None -> ())
  in
  let _c =
    spawn eng (fun () ->
        while !client_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !client_conv in
        Dk.Urp.write conv "ping";
        match Dk.Urp.read_msg conv with
        | Some m -> got := m
        | None -> ())
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check string) "urp echo" "re:ping" !got

let test_urp_delimiters () =
  let eng, _sw, server_conv, client_conv = urp_pair () in
  let msgs = ref [] in
  let _s =
    spawn eng (fun () ->
        while !server_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !server_conv in
        let rec go n =
          if n > 0 then
            match Dk.Urp.read_msg conv with
            | Some m ->
              msgs := m :: !msgs;
              go (n - 1)
            | None -> ()
        in
        go 2)
  in
  let _c =
    spawn eng (fun () ->
        while !client_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !client_conv in
        (* a multi-cell message and a small one: boundaries must hold *)
        Dk.Urp.write conv (String.make 5000 'x');
        Dk.Urp.write conv "tail")
  in
  Sim.Engine.run ~until:30.0 eng;
  match List.rev !msgs with
  | [ big; small ] ->
    Alcotest.(check int) "multi-cell message reassembled" 5000
      (String.length big);
    Alcotest.(check string) "boundary kept" "tail" small
  | _ -> Alcotest.fail "expected two messages"

let test_urp_reliable_under_loss () =
  let eng, _sw, server_conv, client_conv = urp_pair ~loss:0.05 () in
  let got = ref [] in
  let n = 30 in
  let _s =
    spawn eng (fun () ->
        while !server_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !server_conv in
        let rec go () =
          match Dk.Urp.read_msg conv with
          | Some m ->
            got := m :: !got;
            go ()
          | None -> ()
        in
        go ())
  in
  let _c =
    spawn eng (fun () ->
        while !client_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !client_conv in
        for i = 1 to n do
          Dk.Urp.write conv (Printf.sprintf "m%02d" i)
        done)
  in
  Sim.Engine.run ~until:120.0 eng;
  let expect = List.init n (fun i -> Printf.sprintf "m%02d" (i + 1)) in
  Alcotest.(check (list string)) "complete and ordered" expect
    (List.rev !got);
  let c = Dk.Urp.counters (Option.get !client_conv) in
  Alcotest.(check bool) "enquiries used for recovery" true
    (c.Dk.Urp.enqs_sent > 0)

let test_urp_dup_exactly_once () =
  (* heavy duplication on the switch: every message must still be
     delivered exactly once, in order, with the duplicates counted *)
  let eng, sw, server_conv, client_conv = urp_pair () in
  Netsim.Fault.set_dup (Dk.Switch.faults sw) 0.5;
  let got = ref [] in
  let n = 20 in
  let _s =
    spawn eng (fun () ->
        while !server_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !server_conv in
        let rec go () =
          match Dk.Urp.read_msg conv with
          | Some m ->
            got := m :: !got;
            go ()
          | None -> ()
        in
        go ())
  in
  let _c =
    spawn eng (fun () ->
        while !client_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !client_conv in
        for i = 1 to n do
          Dk.Urp.write conv (Printf.sprintf "m%02d" i)
        done)
  in
  Sim.Engine.run ~until:120.0 eng;
  let expect = List.init n (fun i -> Printf.sprintf "m%02d" (i + 1)) in
  Alcotest.(check (list string)) "exactly once, in order" expect
    (List.rev !got);
  let srv = Dk.Urp.counters (Option.get !server_conv) in
  Alcotest.(check bool) "duplicates were suppressed" true
    (srv.Dk.Urp.dups_dropped > 0)

let test_urp_survives_burst_loss () =
  (* the canonical 20% Gilbert schedule on the switch.  Messages are
     bulk-sized: the Gilbert chain steps per cell, so multi-cell data
     keeps bursts short in wall-clock terms.  A trickle of tiny
     messages can (correctly) die of 10 unanswered enqs inside one
     opaque burst — that teardown path gets its own test below. *)
  let eng, sw, server_conv, client_conv = urp_pair () in
  Netsim.Fault.set_burst (Dk.Switch.faults sw) ~p_enter:0.05 ~p_exit:0.2
    ~loss:1.0;
  let got = ref 0 in
  let n = 40 in
  let _s =
    spawn eng (fun () ->
        while !server_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !server_conv in
        let rec go () =
          match Dk.Urp.read_msg conv with
          | Some _ ->
            incr got;
            go ()
          | None -> ()
        in
        go ())
  in
  let _c =
    spawn eng (fun () ->
        while !client_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !client_conv in
        for _ = 1 to n do
          Dk.Urp.write conv (String.make 1000 'b')
        done)
  in
  Sim.Engine.run ~until:600.0 eng;
  Alcotest.(check int) "all messages recovered" n !got;
  let c = Dk.Urp.counters (Option.get !client_conv) in
  Alcotest.(check bool) "recovery actually ran" true
    (c.Dk.Urp.retransmits > 0)

let test_urp_partition_kills_circuit () =
  (* a partition longer than URP's patience: the sender must see
     Hungup (dead circuit), never a hang *)
  let eng, sw, server_conv, client_conv = urp_pair () in
  let outcome = ref "none" in
  let _s =
    spawn eng (fun () ->
        while !server_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !server_conv in
        let rec go () =
          match Dk.Urp.read_msg conv with Some _ -> go () | None -> ()
        in
        go ())
  in
  let _c =
    spawn eng (fun () ->
        while !client_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !client_conv in
        Dk.Urp.write conv "before";
        Sim.Time.sleep eng 1.0;
        (* now the switch goes dark, for far longer than 10 enqs *)
        Netsim.Fault.partition (Dk.Switch.faults sw)
          ~from_:(Sim.Engine.now eng)
          ~until:(Sim.Engine.now eng +. 10_000.);
        try
          for i = 1 to 1000 do
            Dk.Urp.write conv (Printf.sprintf "m%d" i);
            Sim.Time.sleep eng 1.0
          done;
          outcome := "survived"
        with Dk.Urp.Hungup -> outcome := "hungup")
  in
  Sim.Engine.run ~until:4000.0 eng;
  Alcotest.(check string) "dead circuit detected" "hungup" !outcome

let test_urp_fault_determinism () =
  (* same seed, same switch schedule => identical counters *)
  let run_once () =
    let eng, sw, server_conv, client_conv = urp_pair () in
    let f = Dk.Switch.faults sw in
    Netsim.Fault.set_burst f ~p_enter:0.05 ~p_exit:0.2 ~loss:1.0;
    Netsim.Fault.set_dup f 0.1;
    let _s =
      spawn eng (fun () ->
          while !server_conv = None do
            Sim.Time.sleep eng 0.01
          done;
          let conv = Option.get !server_conv in
          let rec go () =
            match Dk.Urp.read_msg conv with Some _ -> go () | None -> ()
          in
          go ())
    in
    let _c =
      spawn eng (fun () ->
          while !client_conv = None do
            Sim.Time.sleep eng 0.01
          done;
          let conv = Option.get !client_conv in
          for i = 1 to 25 do
            Dk.Urp.write conv (Printf.sprintf "m%02d" i)
          done)
    in
    Sim.Engine.run ~until:240.0 eng;
    let c = Dk.Urp.counters (Option.get !client_conv) in
    let s = Dk.Urp.counters (Option.get !server_conv) in
    Printf.sprintf "tx %d/%d re %d enq %d | rx %d dup %d" c.Dk.Urp.cells_sent
      c.Dk.Urp.bytes_sent c.Dk.Urp.retransmits c.Dk.Urp.enqs_sent
      s.Dk.Urp.cells_rcvd s.Dk.Urp.dups_dropped
  in
  let r1 = run_once () and r2 = run_once () in
  Alcotest.(check string) "same seed, same counters" r1 r2

let test_urp_close_gives_eof () =
  let eng, _sw, server_conv, client_conv = urp_pair () in
  let eof = ref false in
  let _s =
    spawn eng (fun () ->
        while !server_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !server_conv in
        let rec go () =
          match Dk.Urp.read_msg conv with
          | Some _ -> go ()
          | None -> eof := true
        in
        go ())
  in
  let _c =
    spawn eng (fun () ->
        while !client_conv = None do
          Sim.Time.sleep eng 0.01
        done;
        let conv = Option.get !client_conv in
        Dk.Urp.write conv "bye";
        Sim.Time.sleep eng 1.0;
        Dk.Urp.close conv)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check bool) "server saw eof" true !eof

let () =
  Alcotest.run "dk"
    [
      ( "circuit",
        [
          Alcotest.test_case "dial and accept" `Quick test_dial_accept;
          Alcotest.test_case "reject with reason" `Quick
            test_dial_reject_with_reason;
          Alcotest.test_case "no such line" `Quick test_dial_no_such_line;
          Alcotest.test_case "unknown service" `Quick
            test_dial_unknown_service;
          Alcotest.test_case "wildcard service" `Quick test_wildcard_service;
          Alcotest.test_case "cells ordered" `Quick test_cells_ordered;
        ] );
      ( "urp",
        [
          Alcotest.test_case "roundtrip" `Quick test_urp_roundtrip;
          Alcotest.test_case "delimiters" `Quick test_urp_delimiters;
          Alcotest.test_case "reliable under loss" `Quick
            test_urp_reliable_under_loss;
          Alcotest.test_case "dup exactly once" `Quick test_urp_dup_exactly_once;
          Alcotest.test_case "survives burst loss" `Quick
            test_urp_survives_burst_loss;
          Alcotest.test_case "partition kills circuit" `Quick
            test_urp_partition_kills_circuit;
          Alcotest.test_case "fault determinism" `Quick
            test_urp_fault_determinism;
          Alcotest.test_case "close eof" `Quick test_urp_close_gives_eof;
        ] );
    ]
