(* Tests for the discrete-event kernel. *)

let check_float = Alcotest.(check (float 1e-9))

let test_time_ordering () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.at eng 2.0 (fun () -> log := "b" :: !log);
  Sim.Engine.at eng 1.0 (fun () -> log := "a" :: !log);
  Sim.Engine.at eng 3.0 (fun () -> log := "c" :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "final time" 3.0 (Sim.Engine.now eng)

let test_fifo_same_time () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.Engine.at eng 1.0 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_run_until () =
  let eng = Sim.Engine.create () in
  let hits = ref 0 in
  Sim.Engine.at eng 1.0 (fun () -> incr hits);
  Sim.Engine.at eng 5.0 (fun () -> incr hits);
  Sim.Engine.run ~until:2.0 eng;
  Alcotest.(check int) "only first" 1 !hits;
  check_float "clock at horizon" 2.0 (Sim.Engine.now eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "both" 2 !hits

let test_proc_sleep () =
  let eng = Sim.Engine.create () in
  let woke_at = ref 0. in
  let _p =
    Sim.Proc.spawn eng (fun () ->
        Sim.Time.sleep eng 1.5;
        woke_at := Sim.Engine.now eng)
  in
  Sim.Engine.run eng;
  check_float "slept" 1.5 !woke_at

let test_proc_crash_raises () =
  let eng = Sim.Engine.create () in
  let _p = Sim.Proc.spawn eng (fun () -> failwith "boom") in
  Alcotest.check_raises "crash surfaces" (Failure "boom") (fun () ->
      Sim.Engine.run eng)

let test_join () =
  let eng = Sim.Engine.create () in
  let order = ref [] in
  let worker =
    Sim.Proc.spawn eng ~name:"worker" (fun () ->
        Sim.Time.sleep eng 2.0;
        order := "worker" :: !order)
  in
  let _waiter =
    Sim.Proc.spawn eng ~name:"waiter" (fun () ->
        Sim.Proc.join worker;
        order := "waiter" :: !order)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "join order" [ "worker"; "waiter" ]
    (List.rev !order)

let test_join_dead () =
  let eng = Sim.Engine.create () in
  let worker = Sim.Proc.spawn eng (fun () -> ()) in
  let finished = ref false in
  let _w =
    Sim.Proc.spawn eng (fun () ->
        Sim.Time.sleep eng 1.0;
        (* worker long dead *)
        Sim.Proc.join worker;
        finished := true)
  in
  Sim.Engine.run eng;
  Alcotest.(check bool) "join of dead proc returns" true !finished

let test_kill_sleeping () =
  let eng = Sim.Engine.create () in
  let cleaned = ref false in
  let victim =
    Sim.Proc.spawn eng ~name:"victim" (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Sim.Time.sleep eng 100.))
  in
  let _killer =
    Sim.Proc.spawn eng (fun () ->
        Sim.Time.sleep eng 1.0;
        Sim.Proc.kill victim)
  in
  Sim.Engine.run eng;
  Alcotest.(check bool) "victim dead" false (Sim.Proc.alive victim);
  Alcotest.(check bool) "finalizer ran" true !cleaned;
  check_float "killed promptly, not at 100s" 1.0 (Sim.Engine.now eng)

let test_kill_is_not_crash () =
  let eng = Sim.Engine.create () in
  let victim = Sim.Proc.spawn eng (fun () -> Sim.Time.sleep eng 100.) in
  Sim.Engine.after eng 1.0 (fun () -> Sim.Proc.kill victim);
  (* must not raise *)
  Sim.Engine.run eng

let test_rendez () =
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  let woke = ref [] in
  let sleeper name =
    ignore
      (Sim.Proc.spawn eng ~name (fun () ->
           Sim.Rendez.sleep r;
           woke := name :: !woke))
  in
  sleeper "a";
  sleeper "b";
  Sim.Engine.after eng 1.0 (fun () -> Sim.Rendez.wakeup r);
  Sim.Engine.after eng 2.0 (fun () -> Sim.Rendez.wakeup r);
  Sim.Engine.run eng;
  (* FIFO: a slept first, wakes first *)
  Alcotest.(check (list string)) "fifo wakeups" [ "a"; "b" ] (List.rev !woke)

let test_rendez_wakeup_empty () =
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  Sim.Rendez.wakeup r;
  Sim.Rendez.wakeup_all r;
  Alcotest.(check int) "no waiters" 0 (Sim.Rendez.waiters r)

let test_mbox () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mbox.create eng in
  let got = ref [] in
  let _consumer =
    Sim.Proc.spawn eng (fun () ->
        for _ = 1 to 3 do
          got := Sim.Mbox.recv mb :: !got
        done)
  in
  let _producer =
    Sim.Proc.spawn eng (fun () ->
        Sim.Mbox.send mb 1;
        Sim.Time.sleep eng 1.0;
        Sim.Mbox.send mb 2;
        Sim.Mbox.send mb 3)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "all received in order" [ 1; 2; 3 ]
    (List.rev !got)

let test_ticker () =
  let eng = Sim.Engine.create () in
  let ticks = ref 0 in
  let tk = Sim.Time.every eng 1.0 (fun () -> incr ticks) in
  Sim.Engine.at eng 5.5 (fun () -> Sim.Time.cancel tk);
  Sim.Engine.run eng;
  Alcotest.(check int) "5 ticks then cancelled" 5 !ticks

let test_cpu_serializes () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng in
  let t1 = Sim.Cpu.occupy cpu 1.0 in
  let t2 = Sim.Cpu.occupy cpu 1.0 in
  check_float "first op" 1.0 t1;
  check_float "second op queued behind first" 2.0 t2

let test_cpu_busy_wait () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng in
  let done_at = ref 0. in
  let _p =
    Sim.Proc.spawn eng (fun () ->
        Sim.Cpu.busy_wait cpu 0.5;
        Sim.Cpu.busy_wait cpu 0.25;
        done_at := Sim.Engine.now eng)
  in
  Sim.Engine.run eng;
  check_float "serial busy work" 0.75 !done_at

let test_stalled_reports_blocked () =
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  let _p = Sim.Proc.spawn eng ~name:"stuck" (fun () -> Sim.Rendez.sleep r) in
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "deadlocked proc visible" [ "stuck" ]
    (Sim.Engine.stalled eng)

let test_lost_wakeup_diagnosis () =
  (* the classic lost wakeup: the producer fires its wakeup before any
     reader has gone to sleep, so the wakeup is lost and the readers
     hang forever.  The engine must name the hung processes so the
     deadlock is diagnosable instead of a silent stall. *)
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  ignore
    (Sim.Proc.spawn eng ~name:"producer" (fun () -> Sim.Rendez.wakeup r));
  ignore
    (Sim.Proc.spawn eng ~name:"reader-a" (fun () ->
         Sim.Time.sleep eng 1.0;
         Sim.Rendez.sleep r));
  ignore
    (Sim.Proc.spawn eng ~name:"reader-b" (fun () ->
         Sim.Time.sleep eng 2.0;
         Sim.Rendez.sleep r));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "hung readers named"
    [ "reader-a"; "reader-b" ]
    (List.sort compare (Sim.Engine.stalled eng))

let test_determinism () =
  let trace () =
    let eng = Sim.Engine.create ~seed:42 () in
    let log = Buffer.create 64 in
    for i = 0 to 4 do
      ignore
        (Sim.Proc.spawn eng (fun () ->
             let dt =
               Random.State.float (Sim.Engine.random eng) 1.0
             in
             Sim.Time.sleep eng dt;
             Buffer.add_string log (Printf.sprintf "%d@%.6f;" i
                 (Sim.Engine.now eng))))
    done;
    Sim.Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "identical runs" (trace ()) (trace ())

(* ---- scheduling policies (Sim.Sched) ---- *)

(* record the firing order of [n] same-time events under a policy *)
let batch_order ?(n = 10) sched =
  let eng = Sim.Engine.create ~sched () in
  let log = ref [] in
  for i = 0 to n - 1 do
    Sim.Engine.at eng 1.0 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run eng;
  List.rev !log

let test_fifo_matches_recorded_order () =
  (* the Fifo policy IS the historical engine: a same-time batch fires
     in scheduling order, exactly as test_fifo_same_time has always
     recorded it *)
  Alcotest.(check (list int)) "fifo = scheduling order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (batch_order Sim.Sched.Fifo);
  Alcotest.(check (list int)) "default policy is fifo"
    (let eng = Sim.Engine.create () in
     ignore eng;
     batch_order Sim.Sched.Fifo)
    (let eng = Sim.Engine.create () in
     let log = ref [] in
     for i = 0 to 9 do
       Sim.Engine.at eng 1.0 (fun () -> log := i :: !log)
     done;
     Sim.Engine.run eng;
     List.rev !log)

let test_shuffle_same_seed_same_schedule () =
  for seed = 1 to 10 do
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d reproducible" seed)
      (batch_order (Sim.Sched.Shuffle seed))
      (batch_order (Sim.Sched.Shuffle seed))
  done

let test_shuffle_permutes () =
  (* each batch is a permutation, and some seed must actually disturb
     the order (10 seeds all mapping 10 events to the identity would be
     a broken hash) *)
  let disturbed = ref false in
  for seed = 1 to 10 do
    let order = batch_order (Sim.Sched.Shuffle seed) in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d is a permutation" seed)
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
      (List.sort compare order);
    if order <> [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] then disturbed := true
  done;
  Alcotest.(check bool) "some seed reorders" true !disturbed

let test_shuffle_singleton_batch_is_identity () =
  (* a 1-element batch has exactly one ordering: shuffling must change
     nothing about a workload with no same-time ties *)
  let run sched =
    let eng = Sim.Engine.create ~sched () in
    let log = ref [] in
    for i = 0 to 9 do
      Sim.Engine.at eng (float_of_int i) (fun () -> log := i :: !log)
    done;
    Sim.Engine.run eng;
    List.rev !log
  in
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d" seed)
        (run Sim.Sched.Fifo)
        (run (Sim.Sched.Shuffle seed)))
    [ 1; 2; 3; 4; 5 ]

let test_adversarial_is_lifo () =
  Alcotest.(check (list int)) "newest first"
    [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ]
    (batch_order Sim.Sched.Adversarial)

let test_adversarial_no_livelock () =
  (* yield-style reschedules run after the ordinary same-time batch
     even under LIFO, so a polling loop cannot starve the event that
     would satisfy it *)
  let eng = Sim.Engine.create ~sched:Sim.Sched.Adversarial () in
  let victim = Sim.Proc.spawn eng ~name:"victim" (fun () ->
      Sim.Time.sleep eng 100.) in
  let killed_at = ref (-1.) in
  ignore
    (Sim.Proc.spawn eng ~name:"killer" (fun () ->
         Sim.Time.sleep eng 1.0;
         Sim.Proc.kill victim;
         killed_at := Sim.Engine.now eng));
  Sim.Engine.run eng;
  Alcotest.(check bool) "victim dead" false (Sim.Proc.alive victim);
  check_float "kill landed at its own time" 1.0 !killed_at

let test_sched_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Sim.Sched.to_string p)
        true
        (Sim.Sched.of_string (Sim.Sched.to_string p) = Some p))
    [ Sim.Sched.Fifo; Sim.Sched.Shuffle 7; Sim.Sched.Shuffle 0;
      Sim.Sched.Adversarial ];
  Alcotest.(check bool) "lifo alias" true
    (Sim.Sched.of_string "lifo" = Some Sim.Sched.Adversarial);
  Alcotest.(check bool) "garbage rejected" true
    (Sim.Sched.of_string "shuffle:x" = None
    && Sim.Sched.of_string "banana" = None)

let test_whole_engine_schedule_determinism () =
  (* same policy, same seed, a workload mixing procs, sleeps, rendez
     and mbox traffic: the full event schedule must replay exactly
     (this is what makes every explorer failure a one-line repro) *)
  let trace sched =
    let eng = Sim.Engine.create ~sched () in
    let log = Buffer.create 256 in
    let r = Sim.Rendez.create eng in
    let mb = Sim.Mbox.create eng in
    for i = 0 to 4 do
      ignore
        (Sim.Proc.spawn eng
           ~name:(Printf.sprintf "p%d" i)
           (fun () ->
             Sim.Time.sleep eng 1.0;
             Sim.Mbox.send mb i;
             Sim.Rendez.sleep r;
             Buffer.add_string log
               (Printf.sprintf "%d@%.3f;" i (Sim.Engine.now eng))))
    done;
    ignore
      (Sim.Proc.spawn eng ~name:"drain" (fun () ->
           for _ = 1 to 5 do
             let i = Sim.Mbox.recv mb in
             Buffer.add_string log (Printf.sprintf "recv%d;" i)
           done;
           for _ = 1 to 5 do
             Sim.Rendez.wakeup r
           done));
    Sim.Engine.run eng;
    Buffer.contents log
  in
  List.iter
    (fun sched ->
      Alcotest.(check string)
        (Sim.Sched.to_string sched)
        (trace sched) (trace sched))
    [ Sim.Sched.Fifo; Sim.Sched.Shuffle 3; Sim.Sched.Shuffle 4;
      Sim.Sched.Adversarial ]

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "fifo at same time" `Quick test_fifo_same_time;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "stalled" `Quick test_stalled_reports_blocked;
          Alcotest.test_case "lost wakeup diagnosis" `Quick
            test_lost_wakeup_diagnosis;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "proc",
        [
          Alcotest.test_case "sleep" `Quick test_proc_sleep;
          Alcotest.test_case "crash raises" `Quick test_proc_crash_raises;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "join dead" `Quick test_join_dead;
          Alcotest.test_case "kill sleeping" `Quick test_kill_sleeping;
          Alcotest.test_case "kill is not crash" `Quick test_kill_is_not_crash;
        ] );
      ( "sync",
        [
          Alcotest.test_case "rendez" `Quick test_rendez;
          Alcotest.test_case "rendez empty wakeup" `Quick
            test_rendez_wakeup_empty;
          Alcotest.test_case "mbox" `Quick test_mbox;
          Alcotest.test_case "ticker" `Quick test_ticker;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serializes" `Quick test_cpu_serializes;
          Alcotest.test_case "busy wait" `Quick test_cpu_busy_wait;
        ] );
      ( "sched",
        [
          Alcotest.test_case "fifo matches recorded order" `Quick
            test_fifo_matches_recorded_order;
          Alcotest.test_case "same seed same schedule" `Quick
            test_shuffle_same_seed_same_schedule;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "singleton batch identity" `Quick
            test_shuffle_singleton_batch_is_identity;
          Alcotest.test_case "adversarial is lifo" `Quick
            test_adversarial_is_lifo;
          Alcotest.test_case "adversarial no livelock" `Quick
            test_adversarial_no_livelock;
          Alcotest.test_case "policy strings" `Quick
            test_sched_string_roundtrip;
          Alcotest.test_case "whole-engine determinism" `Quick
            test_whole_engine_schedule_determinism;
        ] );
    ]
