(* Tests for the discrete-event kernel. *)

let check_float = Alcotest.(check (float 1e-9))

let test_time_ordering () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.at eng 2.0 (fun () -> log := "b" :: !log);
  Sim.Engine.at eng 1.0 (fun () -> log := "a" :: !log);
  Sim.Engine.at eng 3.0 (fun () -> log := "c" :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "final time" 3.0 (Sim.Engine.now eng)

let test_fifo_same_time () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.Engine.at eng 1.0 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_run_until () =
  let eng = Sim.Engine.create () in
  let hits = ref 0 in
  Sim.Engine.at eng 1.0 (fun () -> incr hits);
  Sim.Engine.at eng 5.0 (fun () -> incr hits);
  Sim.Engine.run ~until:2.0 eng;
  Alcotest.(check int) "only first" 1 !hits;
  check_float "clock at horizon" 2.0 (Sim.Engine.now eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "both" 2 !hits

let test_proc_sleep () =
  let eng = Sim.Engine.create () in
  let woke_at = ref 0. in
  let _p =
    Sim.Proc.spawn eng (fun () ->
        Sim.Time.sleep eng 1.5;
        woke_at := Sim.Engine.now eng)
  in
  Sim.Engine.run eng;
  check_float "slept" 1.5 !woke_at

let test_proc_crash_raises () =
  let eng = Sim.Engine.create () in
  let _p = Sim.Proc.spawn eng (fun () -> failwith "boom") in
  Alcotest.check_raises "crash surfaces" (Failure "boom") (fun () ->
      Sim.Engine.run eng)

let test_join () =
  let eng = Sim.Engine.create () in
  let order = ref [] in
  let worker =
    Sim.Proc.spawn eng ~name:"worker" (fun () ->
        Sim.Time.sleep eng 2.0;
        order := "worker" :: !order)
  in
  let _waiter =
    Sim.Proc.spawn eng ~name:"waiter" (fun () ->
        Sim.Proc.join worker;
        order := "waiter" :: !order)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "join order" [ "worker"; "waiter" ]
    (List.rev !order)

let test_join_dead () =
  let eng = Sim.Engine.create () in
  let worker = Sim.Proc.spawn eng (fun () -> ()) in
  let finished = ref false in
  let _w =
    Sim.Proc.spawn eng (fun () ->
        Sim.Time.sleep eng 1.0;
        (* worker long dead *)
        Sim.Proc.join worker;
        finished := true)
  in
  Sim.Engine.run eng;
  Alcotest.(check bool) "join of dead proc returns" true !finished

let test_kill_sleeping () =
  let eng = Sim.Engine.create () in
  let cleaned = ref false in
  let victim =
    Sim.Proc.spawn eng ~name:"victim" (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Sim.Time.sleep eng 100.))
  in
  let _killer =
    Sim.Proc.spawn eng (fun () ->
        Sim.Time.sleep eng 1.0;
        Sim.Proc.kill victim)
  in
  Sim.Engine.run eng;
  Alcotest.(check bool) "victim dead" false (Sim.Proc.alive victim);
  Alcotest.(check bool) "finalizer ran" true !cleaned;
  check_float "killed promptly, not at 100s" 1.0 (Sim.Engine.now eng)

let test_kill_is_not_crash () =
  let eng = Sim.Engine.create () in
  let victim = Sim.Proc.spawn eng (fun () -> Sim.Time.sleep eng 100.) in
  Sim.Engine.after eng 1.0 (fun () -> Sim.Proc.kill victim);
  (* must not raise *)
  Sim.Engine.run eng

let test_rendez () =
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  let woke = ref [] in
  let sleeper name =
    ignore
      (Sim.Proc.spawn eng ~name (fun () ->
           Sim.Rendez.sleep r;
           woke := name :: !woke))
  in
  sleeper "a";
  sleeper "b";
  Sim.Engine.after eng 1.0 (fun () -> Sim.Rendez.wakeup r);
  Sim.Engine.after eng 2.0 (fun () -> Sim.Rendez.wakeup r);
  Sim.Engine.run eng;
  (* FIFO: a slept first, wakes first *)
  Alcotest.(check (list string)) "fifo wakeups" [ "a"; "b" ] (List.rev !woke)

let test_rendez_wakeup_empty () =
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  Sim.Rendez.wakeup r;
  Sim.Rendez.wakeup_all r;
  Alcotest.(check int) "no waiters" 0 (Sim.Rendez.waiters r)

let test_mbox () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mbox.create eng in
  let got = ref [] in
  let _consumer =
    Sim.Proc.spawn eng (fun () ->
        for _ = 1 to 3 do
          got := Sim.Mbox.recv mb :: !got
        done)
  in
  let _producer =
    Sim.Proc.spawn eng (fun () ->
        Sim.Mbox.send mb 1;
        Sim.Time.sleep eng 1.0;
        Sim.Mbox.send mb 2;
        Sim.Mbox.send mb 3)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "all received in order" [ 1; 2; 3 ]
    (List.rev !got)

let test_ticker () =
  let eng = Sim.Engine.create () in
  let ticks = ref 0 in
  let tk = Sim.Time.every eng 1.0 (fun () -> incr ticks) in
  Sim.Engine.at eng 5.5 (fun () -> Sim.Time.cancel tk);
  Sim.Engine.run eng;
  Alcotest.(check int) "5 ticks then cancelled" 5 !ticks

let test_cpu_serializes () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng in
  let t1 = Sim.Cpu.occupy cpu 1.0 in
  let t2 = Sim.Cpu.occupy cpu 1.0 in
  check_float "first op" 1.0 t1;
  check_float "second op queued behind first" 2.0 t2

let test_cpu_busy_wait () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng in
  let done_at = ref 0. in
  let _p =
    Sim.Proc.spawn eng (fun () ->
        Sim.Cpu.busy_wait cpu 0.5;
        Sim.Cpu.busy_wait cpu 0.25;
        done_at := Sim.Engine.now eng)
  in
  Sim.Engine.run eng;
  check_float "serial busy work" 0.75 !done_at

let test_stalled_reports_blocked () =
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  let _p = Sim.Proc.spawn eng ~name:"stuck" (fun () -> Sim.Rendez.sleep r) in
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "deadlocked proc visible" [ "stuck" ]
    (Sim.Engine.stalled eng)

let test_lost_wakeup_diagnosis () =
  (* the classic lost wakeup: the producer fires its wakeup before any
     reader has gone to sleep, so the wakeup is lost and the readers
     hang forever.  The engine must name the hung processes so the
     deadlock is diagnosable instead of a silent stall. *)
  let eng = Sim.Engine.create () in
  let r = Sim.Rendez.create eng in
  ignore
    (Sim.Proc.spawn eng ~name:"producer" (fun () -> Sim.Rendez.wakeup r));
  ignore
    (Sim.Proc.spawn eng ~name:"reader-a" (fun () ->
         Sim.Time.sleep eng 1.0;
         Sim.Rendez.sleep r));
  ignore
    (Sim.Proc.spawn eng ~name:"reader-b" (fun () ->
         Sim.Time.sleep eng 2.0;
         Sim.Rendez.sleep r));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "hung readers named"
    [ "reader-a"; "reader-b" ]
    (List.sort compare (Sim.Engine.stalled eng))

let test_determinism () =
  let trace () =
    let eng = Sim.Engine.create ~seed:42 () in
    let log = Buffer.create 64 in
    for i = 0 to 4 do
      ignore
        (Sim.Proc.spawn eng (fun () ->
             let dt =
               Random.State.float (Sim.Engine.random eng) 1.0
             in
             Sim.Time.sleep eng dt;
             Buffer.add_string log (Printf.sprintf "%d@%.6f;" i
                 (Sim.Engine.now eng))))
    done;
    Sim.Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "identical runs" (trace ()) (trace ())

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "fifo at same time" `Quick test_fifo_same_time;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "stalled" `Quick test_stalled_reports_blocked;
          Alcotest.test_case "lost wakeup diagnosis" `Quick
            test_lost_wakeup_diagnosis;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "proc",
        [
          Alcotest.test_case "sleep" `Quick test_proc_sleep;
          Alcotest.test_case "crash raises" `Quick test_proc_crash_raises;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "join dead" `Quick test_join_dead;
          Alcotest.test_case "kill sleeping" `Quick test_kill_sleeping;
          Alcotest.test_case "kill is not crash" `Quick test_kill_is_not_crash;
        ] );
      ( "sync",
        [
          Alcotest.test_case "rendez" `Quick test_rendez;
          Alcotest.test_case "rendez empty wakeup" `Quick
            test_rendez_wakeup_empty;
          Alcotest.test_case "mbox" `Quick test_mbox;
          Alcotest.test_case "ticker" `Quick test_ticker;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serializes" `Quick test_cpu_serializes;
          Alcotest.test_case "busy wait" `Quick test_cpu_busy_wait;
        ] );
    ]
