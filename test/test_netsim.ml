(* Tests for the simulated physical media. *)

let ea = Netsim.Eaddr.of_string

let test_eaddr () =
  Alcotest.(check string) "normalizes case" "0800690222f0"
    (Netsim.Eaddr.to_string (ea "0800690222F0"));
  Alcotest.check_raises "length" (Invalid_argument "Eaddr.of_string: 0800")
    (fun () -> ignore (ea "0800"));
  Alcotest.(check string) "broadcast" "ffffffffffff"
    (Netsim.Eaddr.to_string Netsim.Eaddr.broadcast)

let mk_seg ?loss ?bandwidth_bps ?latency () =
  let eng = Sim.Engine.create () in
  let seg =
    Netsim.Ether.create ?loss ?bandwidth_bps ?latency ~name:"ether0" eng
  in
  (eng, seg)

let test_unicast_delivery () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let c = Netsim.Ether.attach seg (ea "0800690222f2") in
  let got_b = ref [] and got_c = ref [] in
  Netsim.Ether.set_rx b (fun f -> got_b := f.Netsim.Ether.payload :: !got_b);
  Netsim.Ether.set_rx c (fun f -> got_c := f.Netsim.Ether.payload :: !got_c);
  Netsim.Ether.transmit a
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Ether.nic_addr b;
      etype = 2048;
      payload = "hello";
    };
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "b got it" [ "hello" ] !got_b;
  Alcotest.(check (list string)) "c did not" [] !got_c

let test_broadcast_delivery () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let c = Netsim.Ether.attach seg (ea "0800690222f2") in
  let hits = ref 0 in
  Netsim.Ether.set_rx b (fun _ -> incr hits);
  Netsim.Ether.set_rx c (fun _ -> incr hits);
  Netsim.Ether.transmit a
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Eaddr.broadcast;
      etype = 2054;
      payload = "who-has";
    };
  Sim.Engine.run eng;
  Alcotest.(check int) "both got broadcast" 2 !hits

let test_promiscuous () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let snoop = Netsim.Ether.attach seg (ea "0800690222f2") in
  Netsim.Ether.set_promiscuous snoop true;
  let seen = ref 0 in
  Netsim.Ether.set_rx snoop (fun _ -> incr seen);
  Netsim.Ether.set_rx b (fun _ -> ());
  Netsim.Ether.transmit a
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Ether.nic_addr b;
      etype = 2048;
      payload = "secret";
    };
  Sim.Engine.run eng;
  Alcotest.(check int) "snooper saw unicast" 1 !seen

let test_no_self_delivery () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let self_hits = ref 0 in
  Netsim.Ether.set_rx a (fun _ -> incr self_hits);
  Netsim.Ether.transmit a
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Eaddr.broadcast;
      etype = 2048;
      payload = "echo?";
    };
  Sim.Engine.run eng;
  Alcotest.(check int) "no loopback from the wire" 0 !self_hits

let test_duplicate_attach_rejected () =
  let _eng, seg = mk_seg () in
  let _a = Netsim.Ether.attach seg (ea "0800690222f0") in
  Alcotest.(check bool) "dup attach raises" true
    (try
       ignore (Netsim.Ether.attach seg (ea "0800690222f0"));
       false
     with Invalid_argument _ -> true)

let test_wire_timing () =
  (* 10 Mb/s: a 1000-byte payload (+18 header) takes 814.4 us + 50 us
     propagation *)
  let eng, seg = mk_seg ~bandwidth_bps:10e6 ~latency:50e-6 () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let arrival = ref 0. in
  Netsim.Ether.set_rx b (fun _ -> arrival := Sim.Engine.now eng);
  Netsim.Ether.transmit a
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Ether.nic_addr b;
      etype = 2048;
      payload = String.make 1000 'x';
    };
  Sim.Engine.run eng;
  Alcotest.(check (float 1e-9)) "arrival time"
    ((1018. *. 8. /. 10e6) +. 50e-6)
    !arrival

let test_medium_serializes () =
  (* two back-to-back frames share the wire; the second arrives one
     transmission time after the first *)
  let eng, seg = mk_seg ~bandwidth_bps:10e6 ~latency:0. () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let times = ref [] in
  Netsim.Ether.set_rx b (fun _ -> times := Sim.Engine.now eng :: !times);
  let frame =
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Ether.nic_addr b;
      etype = 2048;
      payload = String.make 982 'x';  (* 1000 bytes on the wire *)
    }
  in
  Netsim.Ether.transmit a frame;
  Netsim.Ether.transmit a frame;
  Sim.Engine.run eng;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-9)) "second delayed by one tx time"
      (t1 +. (8000. /. 10e6))
      t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_loss_is_counted () =
  let eng, seg = mk_seg ~loss:1.0 () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let got = ref 0 in
  Netsim.Ether.set_rx b (fun _ -> incr got);
  for _ = 1 to 5 do
    Netsim.Ether.transmit a
      {
        Netsim.Ether.src = Netsim.Ether.nic_addr a;
        dst = Netsim.Ether.nic_addr b;
        etype = 2048;
        payload = "doomed";
      }
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "all lost" 0 !got;
  Alcotest.(check int) "crc errors counted" 5
    (Netsim.Ether.nic_stats b).Netsim.Ether.crc_errors

let test_stats_counting () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  Netsim.Ether.set_rx b (fun _ -> ());
  Netsim.Ether.transmit a
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Ether.nic_addr b;
      etype = 2048;
      payload = "12345";
    };
  Sim.Engine.run eng;
  let sa = Netsim.Ether.nic_stats a and sb = Netsim.Ether.nic_stats b in
  Alcotest.(check int) "a out" 1 sa.Netsim.Ether.out_packets;
  Alcotest.(check int) "a out bytes" 5 sa.Netsim.Ether.out_bytes;
  Alcotest.(check int) "b in" 1 sb.Netsim.Ether.in_packets;
  Alcotest.(check int) "b in bytes" 5 sb.Netsim.Ether.in_bytes

(* ---- the fault-injection layer ---- *)

let frame_to a b payload =
  {
    Netsim.Ether.src = Netsim.Ether.nic_addr a;
    dst = Netsim.Ether.nic_addr b;
    etype = 2048;
    payload;
  }

let test_set_loss_alias () =
  (* Ether.set_loss is a thin alias over the segment fault schedule;
     losses route through the choke point (crc_errors for legacy
     consumers, drops_injected for attribution) *)
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let got = ref 0 in
  Netsim.Ether.set_rx b (fun _ -> incr got);
  Netsim.Ether.set_loss seg 1.0;
  Netsim.Ether.transmit a (frame_to a b "doomed");
  Sim.Engine.run eng;
  let sb = Netsim.Ether.nic_stats b in
  Alcotest.(check int) "lost" 0 !got;
  Alcotest.(check int) "crc_errors (legacy)" 1 sb.Netsim.Ether.crc_errors;
  Alcotest.(check int) "drops_injected" 1 sb.Netsim.Ether.drops_injected;
  Netsim.Ether.set_loss seg 0.0;
  Netsim.Ether.transmit a (frame_to a b "fine");
  Sim.Engine.run eng;
  Alcotest.(check int) "delivered after clearing" 1 !got

let test_dup_delivers_twice () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  Netsim.Fault.set_dup (Netsim.Ether.faults seg) 1.0;
  let got = ref [] in
  Netsim.Ether.set_rx b (fun f -> got := f.Netsim.Ether.payload :: !got);
  Netsim.Ether.transmit a (frame_to a b "twice");
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "copy trails the original"
    [ "twice"; "twice" ] !got;
  Alcotest.(check int) "dups_injected" 1
    (Netsim.Ether.nic_stats b).Netsim.Ether.dups_injected

let test_reorder_swaps_frames () =
  (* frame 1 is marked for reordering (2 ms late), frame 2 is not:
     frame 2 must overtake it.  No randomness in the outcome: the
     probability is 1.0 for the first frame and 0 for the second. *)
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let f = Netsim.Ether.faults seg in
  let got = ref [] in
  Netsim.Ether.set_rx b (fun fr -> got := fr.Netsim.Ether.payload :: !got);
  Netsim.Fault.set_reorder f ~delay:2e-3 1.0;
  Netsim.Ether.transmit a (frame_to a b "first");
  Netsim.Fault.set_reorder f 0.0;
  Netsim.Ether.transmit a (frame_to a b "second");
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "successor overtook"
    [ "second"; "first" ] (List.rev !got);
  Alcotest.(check int) "reorders_injected" 1
    (Netsim.Ether.nic_stats b).Netsim.Ether.reorders_injected

let test_partition_window_and_heal () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  let f = Netsim.Ether.faults seg in
  Netsim.Fault.partition f ~from_:0.0 ~until:1.0;
  Alcotest.(check bool) "partitioned now" true (Netsim.Fault.partitioned f 0.5);
  Alcotest.(check bool) "not later" false (Netsim.Fault.partitioned f 1.5);
  let got = ref [] in
  Netsim.Ether.set_rx b (fun fr -> got := fr.Netsim.Ether.payload :: !got);
  Netsim.Ether.transmit a (frame_to a b "inside");
  Sim.Engine.at eng 2.0 (fun () ->
      Netsim.Ether.transmit a (frame_to a b "after"));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "only the post-heal frame" [ "after" ] !got;
  Alcotest.(check int) "drops_injected" 1
    (Netsim.Ether.nic_stats b).Netsim.Ether.drops_injected;
  Alcotest.(check int) "obs fault.partition" 1
    (Obs.Metrics.counter (Obs.Trace.metrics tr) "fault.partition");
  (* partitions are not CRC noise *)
  Alcotest.(check int) "no crc_errors" 0
    (Netsim.Ether.nic_stats b).Netsim.Ether.crc_errors

let test_per_station_fault () =
  (* partitioning one station models unplugging its transceiver: the
     other station keeps receiving broadcasts *)
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  let c = Netsim.Ether.attach seg (ea "0800690222f2") in
  Netsim.Fault.partition (Netsim.Ether.nic_faults b) ~from_:0.0
    ~until:10.0;
  let got_b = ref 0 and got_c = ref 0 in
  Netsim.Ether.set_rx b (fun _ -> incr got_b);
  Netsim.Ether.set_rx c (fun _ -> incr got_c);
  Netsim.Ether.transmit a
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr a;
      dst = Netsim.Eaddr.broadcast;
      etype = 2048;
      payload = "all";
    };
  Sim.Engine.run eng;
  Alcotest.(check int) "b unplugged" 0 !got_b;
  Alcotest.(check int) "c still attached" 1 !got_c

let test_filter_drops_chosen_frame () =
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  Netsim.Fault.set_filter (Netsim.Ether.faults seg) (fun payload ->
      if payload = "kill-me" then Some "filter" else None);
  let got = ref [] in
  Netsim.Ether.set_rx b (fun fr -> got := fr.Netsim.Ether.payload :: !got);
  Netsim.Ether.transmit a (frame_to a b "kill-me");
  Netsim.Ether.transmit a (frame_to a b "keep-me");
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "filtered" [ "keep-me" ] !got

let test_gilbert_burst_ratio () =
  (* the canonical 20% schedule: stationary burst occupancy
     0.05/(0.05+0.2) = 20%, burst_loss = 1.0.  Over 4000 frames the
     realized loss must be in the right neighbourhood. *)
  let eng, seg = mk_seg () in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  Netsim.Fault.set_burst (Netsim.Ether.faults seg) ~p_enter:0.05
    ~p_exit:0.2 ~loss:1.0;
  let got = ref 0 in
  Netsim.Ether.set_rx b (fun _ -> incr got);
  let n = 4000 in
  for _ = 1 to n do
    Netsim.Ether.transmit a (frame_to a b "x")
  done;
  Sim.Engine.run eng;
  let loss = float_of_int (n - !got) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "loss %.3f within [0.10, 0.30]" loss)
    true
    (loss > 0.10 && loss < 0.30);
  (* bursty, not uniform: drops must come in runs, so the number of
     distinct loss events per dropped frame is well under 1 *)
  Alcotest.(check int) "every drop attributed" (n - !got)
    (Netsim.Ether.nic_stats b).Netsim.Ether.drops_injected

let test_fault_determinism () =
  (* same seed, same schedule => byte-identical delivery pattern *)
  let run_once () =
    let eng = Sim.Engine.create ~seed:42 () in
    let seg = Netsim.Ether.create ~name:"ether0" eng in
    let a = Netsim.Ether.attach seg (ea "0800690222f0") in
    let b = Netsim.Ether.attach seg (ea "0800690222f1") in
    let f = Netsim.Ether.faults seg in
    Netsim.Fault.set_burst f ~p_enter:0.05 ~p_exit:0.2 ~loss:1.0;
    Netsim.Fault.set_dup f 0.05;
    Netsim.Fault.set_reorder f ~delay:2e-3 0.05;
    Netsim.Fault.set_jitter f 0.5e-3;
    let log = Buffer.create 256 in
    Netsim.Ether.set_rx b (fun fr ->
        Printf.bprintf log "%.9f %s\n" (Sim.Engine.now eng)
          fr.Netsim.Ether.payload);
    for i = 1 to 500 do
      Netsim.Ether.transmit a (frame_to a b (Printf.sprintf "m%d" i))
    done;
    Sim.Engine.run eng;
    Buffer.contents log
  in
  let r1 = run_once () and r2 = run_once () in
  Alcotest.(check bool) "deliveries not empty" true (String.length r1 > 0);
  Alcotest.(check string) "same seed, same trace" r1 r2

let test_empty_schedule_draws_nothing () =
  (* an inactive schedule must not consume randomness: the RNG stream
     after N transmissions equals that of an untouched engine *)
  let drain eng =
    let rng = Sim.Engine.random eng in
    List.init 8 (fun _ -> Random.State.bits rng)
  in
  let eng1 = Sim.Engine.create ~seed:7 () in
  let seg = Netsim.Ether.create ~name:"ether0" eng1 in
  let a = Netsim.Ether.attach seg (ea "0800690222f0") in
  let b = Netsim.Ether.attach seg (ea "0800690222f1") in
  Netsim.Ether.set_rx b (fun _ -> ());
  for _ = 1 to 50 do
    Netsim.Ether.transmit a (frame_to a b "clean")
  done;
  Sim.Engine.run eng1;
  let eng2 = Sim.Engine.create ~seed:7 () in
  Alcotest.(check (list int)) "rng stream untouched" (drain eng2) (drain eng1)

let test_flap_windows () =
  let f = Netsim.Fault.create () in
  (* dark for the first 0.25 of every 1 s between t=1 and t=3 *)
  Netsim.Fault.flap f ~from_:1.0 ~until:3.0 ~period:1.0 ~down:0.25;
  List.iter
    (fun (t, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "t=%.2f" t)
        expect
        (Netsim.Fault.partitioned f t))
    [
      (0.5, false);
      (1.1, true);
      (1.5, false);
      (2.1, true);
      (2.9, false);
      (3.5, false);
    ];
  Netsim.Fault.heal f;
  Alcotest.(check bool) "healed" false (Netsim.Fault.partitioned f 1.1)

let test_fiber_roundtrip () =
  let eng = Sim.Engine.create () in
  let a, b = Netsim.Fiber.create_pair ~name:"cyclone" eng in
  let got = ref [] in
  Netsim.Fiber.set_rx b (fun m -> got := m :: !got);
  Netsim.Fiber.set_rx a (fun m -> Netsim.Fiber.send a ("echo:" ^ m));
  Netsim.Fiber.send a "one";
  Netsim.Fiber.send a "two";
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "in order" [ "one"; "two" ] (List.rev !got)

let test_fiber_timing () =
  let eng = Sim.Engine.create () in
  let a, b =
    Netsim.Fiber.create_pair ~bandwidth_bps:125e6 ~latency:10e-6
      ~name:"cyclone" eng
  in
  let at = ref 0. in
  Netsim.Fiber.set_rx b (fun _ -> at := Sim.Engine.now eng);
  Netsim.Fiber.send a (String.make 16384 'x');
  Sim.Engine.run eng;
  Alcotest.(check (float 1e-9)) "16k at 125Mb/s + latency"
    ((16384. *. 8. /. 125e6) +. 10e-6)
    !at

let test_serial_baud () =
  let eng = Sim.Engine.create () in
  let a, b = Netsim.Serial.create_pair ~baud:9600 ~name:"eia1" eng in
  let at = ref 0. in
  Netsim.Serial.set_rx b (fun _ -> at := Sim.Engine.now eng);
  Netsim.Serial.send a (String.make 96 'x');
  Sim.Engine.run eng;
  (* 96 bytes * 10 bits / 9600 baud = 0.1 s *)
  Alcotest.(check (float 1e-9)) "9600 baud" 0.1 !at;
  (* reclock to 1200 baud, like echo b1200 > /dev/eia1ctl *)
  Netsim.Serial.set_baud a 1200;
  Alcotest.(check int) "peer reclocked too" 1200 (Netsim.Serial.baud b)

let () =
  Alcotest.run "netsim"
    [
      ("eaddr", [ Alcotest.test_case "parse" `Quick test_eaddr ]);
      ( "ether",
        [
          Alcotest.test_case "unicast" `Quick test_unicast_delivery;
          Alcotest.test_case "broadcast" `Quick test_broadcast_delivery;
          Alcotest.test_case "promiscuous" `Quick test_promiscuous;
          Alcotest.test_case "no self delivery" `Quick test_no_self_delivery;
          Alcotest.test_case "dup attach" `Quick
            test_duplicate_attach_rejected;
          Alcotest.test_case "wire timing" `Quick test_wire_timing;
          Alcotest.test_case "medium serializes" `Quick
            test_medium_serializes;
          Alcotest.test_case "loss counted" `Quick test_loss_is_counted;
          Alcotest.test_case "stats" `Quick test_stats_counting;
        ] );
      ( "fault",
        [
          Alcotest.test_case "set_loss alias" `Quick test_set_loss_alias;
          Alcotest.test_case "dup delivers twice" `Quick
            test_dup_delivers_twice;
          Alcotest.test_case "reorder swaps" `Quick test_reorder_swaps_frames;
          Alcotest.test_case "partition + heal" `Quick
            test_partition_window_and_heal;
          Alcotest.test_case "per-station" `Quick test_per_station_fault;
          Alcotest.test_case "filter" `Quick test_filter_drops_chosen_frame;
          Alcotest.test_case "gilbert ratio" `Quick test_gilbert_burst_ratio;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "no spurious draws" `Quick
            test_empty_schedule_draws_nothing;
          Alcotest.test_case "flap windows" `Quick test_flap_windows;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "roundtrip" `Quick test_fiber_roundtrip;
          Alcotest.test_case "timing" `Quick test_fiber_timing;
        ] );
      ("serial", [ Alcotest.test_case "baud" `Quick test_serial_baud ]);
    ]
