(* Integration tests for the organization: protocol devices, CS, DNS,
   dial, exportfs/import — the paper's own examples. *)

module F = Ninep.Fcall

(* run a body inside a booted bell-labs world (shared setup in
   {!Util}); this suite's bodies ignore the spawning env *)
let in_world ?seed ?(horizon = 120.0) f =
  Util.in_world ?seed ~horizon ~from:"philw-gnot" (fun w _env -> f w)

let names entries = List.map (fun d -> d.F.d_name) entries

(* ---- connection server ---- *)

let test_cs_net_meta_name () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      (* the paper's query: net!helix!9fs *)
      match P9net.Cs.translate helix.P9net.Host.cs "net!helix!9fs" with
      | Ok lines ->
        Alcotest.(check (list string)) "paper's reply"
          [
            "/net/il/clone 135.104.9.31!17008";
            "/net/dk/clone nj/astro/helix!9fs";
          ]
          lines
      | Error e -> Alcotest.fail e)

let test_cs_meta_attr () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      (* net!$auth!rexauth resolves auth=musca from the network entry *)
      match P9net.Cs.translate helix.P9net.Host.cs "net!$auth!rexauth" with
      | Ok lines ->
        Alcotest.(check (list string)) "auth server lines"
          [
            "/net/il/clone 135.104.9.6!17021";
            "/net/dk/clone nj/astro/musca!rexauth";
          ]
          lines
      | Error e -> Alcotest.fail e)

let test_cs_literal_address () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      match P9net.Cs.translate helix.P9net.Host.cs "tcp!135.104.117.5!513" with
      | Ok lines ->
        Alcotest.(check (list string)) "passes through"
          [ "/net/tcp/clone 135.104.117.5!513" ]
          lines
      | Error e -> Alcotest.fail e)

let test_cs_symbolic_equals_literal () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let t q =
        match P9net.Cs.translate helix.P9net.Host.cs q with
        | Ok lines -> lines
        | Error e -> Alcotest.fail e
      in
      (* tcp!musca!login and tcp!135.104.9.6!513 are equivalent *)
      Alcotest.(check (list string)) "same destination"
        (t "tcp!135.104.9.6!513") (t "tcp!musca!login"))

let test_cs_unknown_host_fails () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      match P9net.Cs.translate helix.P9net.Host.cs "net!zork!echo" with
      | Ok _ -> Alcotest.fail "should not translate"
      | Error _ -> ())

let test_cs_dk_only_terminal () =
  in_world (fun w ->
      let gnot = P9net.World.host w "philw-gnot" in
      (* a Datakit-only terminal only gets dk lines *)
      match P9net.Cs.translate gnot.P9net.Host.cs "net!helix!9fs" with
      | Ok lines ->
        Alcotest.(check (list string)) "dk only"
          [ "/net/dk/clone nj/astro/helix!9fs" ]
          lines
      | Error e -> Alcotest.fail e)

let test_cs_file_interface () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      (* ndb/csquery: write the name, read the replies *)
      let fd = Vfs.Env.open_ env "/net/cs" F.Ordwr in
      ignore (Vfs.Env.write env fd "net!helix!9fs");
      Vfs.Env.seek env fd 0L;
      let reply = Vfs.Env.read env fd 8192 in
      Vfs.Env.close env fd;
      Alcotest.(check string) "file interface"
        "/net/il/clone 135.104.9.31!17008\n/net/dk/clone nj/astro/helix!9fs\n"
        reply)

let test_cs_dns_fallback () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      (* ai.mit.edu is not in the database: CS must consult DNS,
         which follows the delegation to the mit zone on ai *)
      match P9net.Cs.translate helix.P9net.Host.cs "tcp!ai.mit.edu!telnet" with
      | Ok lines ->
        Alcotest.(check (list string)) "resolved via dns"
          [ "/net/tcp/clone 135.104.9.99!23" ]
          lines
      | Error e -> Alcotest.fail e)

(* ---- protocol device files ---- *)

let test_clone_semantics () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      let fd1 = Vfs.Env.open_ env "/net/il/clone" F.Ordwr in
      let fd2 = Vfs.Env.open_ env "/net/il/clone" F.Ordwr in
      let n1 = String.trim (Vfs.Env.read env fd1 32) in
      let n2 = String.trim (Vfs.Env.read env fd2 32) in
      Alcotest.(check bool) "distinct connections" true (n1 <> n2);
      (* the connection directories exist while held *)
      let entries = names (Vfs.Env.ls env "/net/il") in
      Alcotest.(check bool) "conn dirs listed" true
        (List.mem n1 entries && List.mem n2 entries && List.mem "clone" entries);
      Vfs.Env.close env fd1;
      Vfs.Env.close env fd2;
      (* released connections disappear *)
      let entries' = names (Vfs.Env.ls env "/net/il") in
      Alcotest.(check bool) "conn dirs released" true
        ((not (List.mem n1 entries')) && not (List.mem n2 entries')))

let test_conn_dir_files () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      let fd = Vfs.Env.open_ env "/net/tcp/clone" F.Ordwr in
      let n = String.trim (Vfs.Env.read env fd 32) in
      Alcotest.(check (list string)) "paper's tcp conn dir"
        [ "ctl"; "data"; "listen"; "local"; "remote"; "stats"; "status" ]
        (names (Vfs.Env.ls env ("/net/tcp/" ^ n)));
      Vfs.Env.close env fd)

let test_status_file () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      let fd = Vfs.Env.open_ env "/net/il/clone" F.Ordwr in
      let n = String.trim (Vfs.Env.read env fd 32) in
      let status =
        String.trim (Vfs.Env.read_file env ("/net/il/" ^ n ^ "/status"))
      in
      Alcotest.(check bool) "closed before connect" true
        (String.length status > 0
        && String.sub status 0 2 = "il"
        &&
        match String.index_opt status 'C' with
        | Some _ -> true
        | None -> false);
      Vfs.Env.close env fd)

let test_ctl_connect_rejected_addr () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      let fd = Vfs.Env.open_ env "/net/il/clone" F.Ordwr in
      ignore (Vfs.Env.read env fd 32);
      Alcotest.(check bool) "garbage address fails" true
        (try
           ignore (Vfs.Env.write env fd "connect not-an-address");
           false
         with Vfs.Chan.Error _ -> true);
      Vfs.Env.close env fd)

let test_paper_transcript_cat_local_remote_status () =
  (* section 2.3:
       cpu% cat local remote status
       135.104.9.31 5012
       135.104.53.11 564
       tcp/2 1 Established connect                                   *)
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let musca = P9net.World.host w "musca" in
      ignore
        (P9net.Host.spawn musca "sink" (fun env ->
             let ann = P9net.Dial.announce env "tcp!*!564" in
             let conn = P9net.Dial.listen env ann in
             ignore (P9net.Dial.accept env conn);
             Sim.Time.sleep musca.P9net.Host.eng 30.0));
      let env = Vfs.Env.fork helix.P9net.Host.env in
      Sim.Time.sleep helix.P9net.Host.eng 0.1;
      let conn = P9net.Dial.dial env "tcp!135.104.9.6!564" in
      let dir = conn.P9net.Dial.dir in
      let local = String.trim (Vfs.Env.read_file env (dir ^ "/local")) in
      let remote = String.trim (Vfs.Env.read_file env (dir ^ "/remote")) in
      let status = String.trim (Vfs.Env.read_file env (dir ^ "/status")) in
      (* local: our address and an ephemeral port *)
      (match String.split_on_char ' ' local with
      | [ ip; port ] ->
        Alcotest.(check string) "local address" "135.104.9.31" ip;
        Alcotest.(check bool) "local port numeric" true
          (int_of_string_opt port <> None)
      | _ -> Alcotest.fail ("local shape: " ^ local));
      Alcotest.(check string) "remote" "135.104.9.6 564" remote;
      (* status: protocol/conv ... Established ... *)
      Alcotest.(check bool) ("status shape: " ^ status) true
        (String.length status > 4
        && String.sub status 0 4 = "tcp/"
        &&
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        contains status "Established");
      P9net.Dial.hangup env conn)

let test_udp_via_netdev () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let musca = P9net.World.host w "musca" in
      (* a udp "listener" through the file interface *)
      ignore
        (P9net.Host.spawn helix "udp-server" (fun env ->
             let ann = P9net.Dial.announce env "udp!*!3049" in
             let conn = P9net.Dial.listen env ann in
             let dfd = P9net.Dial.accept env conn in
             let q = Vfs.Env.read env dfd 4096 in
             ignore (Vfs.Env.write env dfd ("re:" ^ q))));
      let env = Vfs.Env.fork musca.P9net.Host.env in
      Sim.Time.sleep musca.P9net.Host.eng 0.1;
      let conn = P9net.Dial.dial env "udp!135.104.9.31!3049" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "dgram");
      Alcotest.(check string) "udp conversation" "re:dgram"
        (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
      P9net.Dial.hangup env conn)

let test_dk_reject_reason_via_files () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      (* a picky Datakit service that rejects every call with a reason *)
      ignore
        (P9net.Host.spawn helix "grump" (fun env ->
             ignore env;
             let calls =
               Dk.Circuit.announce
                 (Option.get helix.P9net.Host.dkline)
                 ~service:"grump"
             in
             let inc = Sim.Mbox.recv calls in
             Dk.Circuit.reject inc ~reason:"go away"));
      let gnot = P9net.World.host w "philw-gnot" in
      let env = Vfs.Env.fork gnot.P9net.Host.env in
      Sim.Time.sleep gnot.P9net.Host.eng 0.1;
      match P9net.Dial.dial env "dk!nj/astro/helix!grump" with
      | _ -> Alcotest.fail "should be rejected"
      | exception P9net.Dial.Dial_error e ->
        (* the Datakit rejection reason survives to the dialer *)
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) ("reason in: " ^ e) true
          (contains e "go away"))

(* ---- dial / announce / listen (section 5) ---- *)

let test_echo_over_il () =
  in_world (fun w ->
      let gnot = P9net.World.host w "philw-gnot" in
      let env = Vfs.Env.fork gnot.P9net.Host.env in
      (* gnot is dk-only; echo service reached over Datakit *)
      let conn = P9net.Dial.dial env "net!helix!echo" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "hello plan 9");
      let reply = Vfs.Env.read env conn.P9net.Dial.data_fd 8192 in
      P9net.Dial.hangup env conn;
      Alcotest.(check string) "echoed" "hello plan 9" reply)

let test_dial_prefers_il_on_cpu_server () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let env = Vfs.Env.fork musca.P9net.Host.env in
      let conn = P9net.Dial.dial env "net!helix!echo" in
      Alcotest.(check bool) "via /net/il" true
        (String.length conn.P9net.Dial.dir >= 7
        && String.sub conn.P9net.Dial.dir 0 7 = "/net/il");
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "x");
      ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 10);
      P9net.Dial.hangup env conn)

let test_announce_listen_accept () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let musca = P9net.World.host w "musca" in
      (* hand-rolled section 5.2 echo server on a fresh service port *)
      ignore
        (P9net.Host.spawn helix "echo-server" (fun env ->
             let ann = P9net.Dial.announce env "il!*!19999" in
             let conn = P9net.Dial.listen env ann in
             let dfd = P9net.Dial.accept env conn in
             let data = Vfs.Env.read env dfd 8192 in
             ignore (Vfs.Env.write env dfd data);
             Vfs.Env.close env dfd));
      let env = Vfs.Env.fork musca.P9net.Host.env in
      Sim.Time.sleep musca.P9net.Host.eng 0.1;
      let conn = P9net.Dial.dial env "il!135.104.9.31!19999" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
      Alcotest.(check string) "echo" "ping"
        (Vfs.Env.read env conn.P9net.Dial.data_fd 8192);
      P9net.Dial.hangup env conn)

let test_netmkaddr () =
  Alcotest.(check string) "fills net and svc" "net!helix!9fs"
    (P9net.Dial.netmkaddr "helix" ~defsvc:"9fs" ());
  Alcotest.(check string) "complete passes" "il!h!echo"
    (P9net.Dial.netmkaddr "il!h!echo" ());
  Alcotest.(check string) "fills svc" "tcp!h!login"
    (P9net.Dial.netmkaddr "tcp!h" ~defsvc:"login" ())

(* ---- DNS ---- *)

let test_dns_file () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let env = Vfs.Env.fork musca.P9net.Host.env in
      let fd = Vfs.Env.open_ env "/net/dns" F.Ordwr in
      ignore (Vfs.Env.write env fd "helix.research.bell-labs.com ip");
      Vfs.Env.seek env fd 0L;
      let reply = Vfs.Env.read env fd 8192 in
      Vfs.Env.close env fd;
      Alcotest.(check string) "rr line"
        "helix.research.bell-labs.com ip\t135.104.9.31\n" reply)

let test_dns_delegation_and_cache () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let r = Option.get musca.P9net.Host.resolver in
      Alcotest.(check (list string)) "follows referral" [ "135.104.9.99" ]
        (P9net.Dns.lookup_ip r "ai.mit.edu");
      let c = P9net.Dns.counters r in
      Alcotest.(check bool) "referral was followed" true
        (c.P9net.Dns.referrals_followed >= 1);
      let before_hits = c.P9net.Dns.cache_hits in
      Alcotest.(check (list string)) "cached answer" [ "135.104.9.99" ]
        (P9net.Dns.lookup_ip r "ai.mit.edu");
      Alcotest.(check int) "cache hit" (before_hits + 1)
        (P9net.Dns.counters r).P9net.Dns.cache_hits)

let test_dns_negative () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let r = Option.get musca.P9net.Host.resolver in
      Alcotest.(check (list string)) "nx" []
        (P9net.Dns.lookup_ip r "no.such.host.example"))

(* ---- exportfs / import: the section 6.1 gateway ---- *)

let test_import_unions_net () =
  in_world (fun w ->
      let gnot = P9net.World.host w "philw-gnot" in
      let env = Vfs.Env.fork gnot.P9net.Host.env in
      let before = names (Vfs.Env.ls env "/net") in
      (* the paper: philw-gnot% ls /net -> /net/cs /net/dk
         (plus our kernel event log) *)
      Alcotest.(check (list string)) "before import"
        [ "cs"; "dk"; "log"; "metrics" ]
        before;
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/net" ~onto:"/net" ~flag:Vfs.Ns.After ();
      let after = names (Vfs.Env.ls env "/net") in
      (* all of helix's networks are now visible *)
      List.iter
        (fun want ->
          Alcotest.(check bool) ("after import has " ^ want) true
            (List.mem want after))
        [ "cs"; "dk"; "dns"; "ether0"; "il"; "tcp"; "udp" ])

let test_import_gateway_dials_tcp () =
  in_world ~horizon:240.0 (fun w ->
      let gnot = P9net.World.host w "philw-gnot" in
      let env = Vfs.Env.fork gnot.P9net.Host.env in
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/net" ~onto:"/net" ~flag:Vfs.Ns.After ();
      (* telnet ai.mit.edu — via helix's TCP, transparently *)
      let conn = P9net.Dial.dial env "tcp!135.104.9.99!23" in
      let banner = Vfs.Env.read env conn.P9net.Dial.data_fd 8192 in
      Alcotest.(check string) "banner through the gateway"
        "ai.mit.edu login: " banner;
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "philw\n");
      let reply = Vfs.Env.read env conn.P9net.Dial.data_fd 8192 in
      Alcotest.(check string) "conversation works"
        "Last login by philw\n" reply;
      P9net.Dial.hangup env conn)

let test_import_local_supersedes () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let env = Vfs.Env.fork musca.P9net.Host.env in
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/net" ~onto:"/net" ~flag:Vfs.Ns.After ();
      (* dialing through /net must still use the LOCAL il device:
         local entries supersede remote ones of the same name *)
      let conn = P9net.Dial.dial env "il!135.104.9.31!56" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "local?");
      Alcotest.(check string) "local device used, echo works" "local?"
        (Vfs.Env.read env conn.P9net.Dial.data_fd 8192);
      (* the conversation must exist on musca's own il stack *)
      let c = Inet.Il.counters (Option.get musca.P9net.Host.il) in
      Alcotest.(check bool) "traffic on local stack" true
        (c.Inet.Il.msgs_sent > 0);
      P9net.Dial.hangup env conn)

let test_rename_and_stat_through_import () =
  (* wstat (rename) must survive the full 9P/IL path *)
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let musca = P9net.World.host w "musca" in
      Ninep.Ramfs.add_file helix.P9net.Host.root "/tmp/draft" "v1";
      let env = Vfs.Env.fork musca.P9net.Host.env in
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/tmp" ~onto:"/n" ~flag:Vfs.Ns.Repl ();
      let d = Vfs.Env.stat env "/n/draft" in
      Alcotest.(check string) "stat name over the wire" "draft"
        d.F.d_name;
      Alcotest.(check int64) "stat length over the wire" 2L d.F.d_length;
      Vfs.Env.wstat env "/n/draft" { d with F.d_name = "final" };
      Alcotest.(check bool) "renamed on the server" true
        (Ninep.Ramfs.exists helix.P9net.Host.root "/tmp/final");
      Alcotest.(check bool) "old name gone" false
        (Ninep.Ramfs.exists helix.P9net.Host.root "/tmp/draft"))

let test_cs_requery_same_fd () =
  (* each write resets the reply; the fd can be reused like ndb/csquery
     does interactively *)
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      let fd = Vfs.Env.open_ env "/net/cs" F.Ordwr in
      ignore (Vfs.Env.write env fd "il!musca!echo");
      Vfs.Env.seek env fd 0L;
      Alcotest.(check string) "first query"
        "/net/il/clone 135.104.9.6!56\n"
        (Vfs.Env.read env fd 8192);
      ignore (Vfs.Env.write env fd "il!helix!9fs");
      Vfs.Env.seek env fd 0L;
      Alcotest.(check string) "second query on the same fd"
        "/net/il/clone 135.104.9.31!17008\n"
        (Vfs.Env.read env fd 8192);
      Vfs.Env.close env fd)

let test_remote_cs_answers_with_its_networks () =
  (* after import -b (remote first), /net/cs is HELIX's connection
     server: a Datakit-only terminal gets answers mentioning networks
     it doesn't have locally — which now resolve through the same
     union.  The dual of "local entries supersede". *)
  in_world (fun w ->
      let gnot = P9net.World.host w "philw-gnot" in
      let env = Vfs.Env.fork gnot.P9net.Host.env in
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/net" ~onto:"/net" ~flag:Vfs.Ns.Before ();
      let fd = Vfs.Env.open_ env "/net/cs" F.Ordwr in
      ignore (Vfs.Env.write env fd "net!musca!echo");
      Vfs.Env.seek env fd 0L;
      let reply = Vfs.Env.read env fd 8192 in
      Vfs.Env.close env fd;
      (* helix's cs prefers IL; gnot's own cs would have said dk only *)
      Alcotest.(check string) "helix's view of the network"
        "/net/il/clone 135.104.9.6!56\n\
         /net/dk/clone nj/astro/musca!echo\n\
         /net/tcp/clone 135.104.9.6!7\n\
         /net/tcpcc/clone 135.104.9.6!7\n"
        reply;
      (* and the il line is actionable: the clone file resolves to
         helix's device through the same union *)
      let conn = P9net.Dial.dial env "il!135.104.9.6!56" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "via gateway");
      Alcotest.(check string) "echo over the imported IL" "via gateway"
        (Vfs.Env.read env conn.P9net.Dial.data_fd 8192);
      P9net.Dial.hangup env conn)

let test_exportfs_read_write_files () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let gnot = P9net.World.host w "philw-gnot" in
      Ninep.Ramfs.add_file helix.P9net.Host.root "/tmp/shared" "from helix";
      let env = Vfs.Env.fork gnot.P9net.Host.env in
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/tmp" ~onto:"/n" ~flag:Vfs.Ns.Repl ();
      Alcotest.(check string) "read remote file" "from helix"
        (Vfs.Env.read_file env "/n/shared");
      Vfs.Env.write_file env "/n/reply" "from gnot";
      Alcotest.(check (option string)) "write visible on helix"
        (Some "from gnot")
        (Ninep.Ramfs.read_file helix.P9net.Host.root "/tmp/reply"))

(* ---- the ether device (Figure 1) ---- *)

let test_ether_tree_figure1 () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      (* the ip stack holds connections 0 (ip) and 1 (arp) *)
      let top = names (Vfs.Env.ls env "/net/ether0") in
      Alcotest.(check bool) "clone present" true (List.mem "clone" top);
      let fd = Vfs.Env.open_ env "/net/ether0/clone" F.Ordwr in
      let n = String.trim (Vfs.Env.read env fd 32) in
      Alcotest.(check (list string)) "figure 1 files"
        [ "ctl"; "data"; "stats"; "type" ]
        (names (Vfs.Env.ls env ("/net/ether0/" ^ n)));
      ignore (Vfs.Env.write env fd "connect 2048");
      Alcotest.(check string) "type file" "2048"
        (String.trim (Vfs.Env.read_file env ("/net/ether0/" ^ n ^ "/type")));
      let stats = Vfs.Env.read_file env "/net/ether0/0/stats" in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "stats mentions the address" true
        (contains stats "0800690222f0");
      Vfs.Env.close env fd)

let test_ether_snoop () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let musca = P9net.World.host w "musca" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      (* configure a snooping conversation: connect -1, promiscuous *)
      let fd = Vfs.Env.open_ env "/net/ether0/clone" F.Ordwr in
      let n = String.trim (Vfs.Env.read env fd 32) in
      ignore (Vfs.Env.write env fd "connect -1");
      ignore (Vfs.Env.write env fd "promiscuous");
      let data_fd =
        Vfs.Env.open_ env ("/net/ether0/" ^ n ^ "/data") F.Oread
      in
      (* generate unrelated traffic between musca and ai *)
      ignore
        (P9net.Host.spawn musca "noise" (fun menv ->
             let conn = P9net.Dial.dial menv "tcp!135.104.9.99!23" in
             ignore (Vfs.Env.read menv conn.P9net.Dial.data_fd 8192);
             P9net.Dial.hangup menv conn));
      let frame = Vfs.Env.read env data_fd 4096 in
      Alcotest.(check bool) "snooped a frame not addressed to us" true
        (String.length frame > 12);
      Vfs.Env.close env data_fd;
      Vfs.Env.close env fd)

let test_pipe_device () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let eng = w.P9net.World.eng in
      let env = Vfs.Env.fork musca.P9net.Host.env in
      let fd0, fd1 = P9net.Pipedev.pipe eng env in
      ignore (Vfs.Env.write env fd0 "through the pipe");
      Alcotest.(check string) "one way" "through the pipe"
        (Vfs.Env.read env fd1 4096);
      ignore (Vfs.Env.write env fd1 "and back");
      Alcotest.(check string) "other way" "and back"
        (Vfs.Env.read env fd0 4096);
      (* a forked child inherits the descriptors *)
      let child = Vfs.Env.fork env in
      ignore
        (Sim.Proc.spawn eng (fun () ->
             ignore (Vfs.Env.write child fd0 "from the child");
             Vfs.Env.close child fd0;
             Vfs.Env.close child fd1));
      Alcotest.(check string) "child's message" "from the child"
        (Vfs.Env.read env fd1 4096);
      Vfs.Env.close env fd0;
      (* both references to end 0 are now closed: EOF *)
      Alcotest.(check string) "eof after close" ""
        (Vfs.Env.read env fd1 4096);
      Vfs.Env.close env fd1)

let test_pipe_device_independent_instances () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let eng = w.P9net.World.eng in
      let env = Vfs.Env.fork musca.P9net.Host.env in
      let a0, _a1 = P9net.Pipedev.pipe eng env in
      let _b0, b1 = P9net.Pipedev.pipe eng env in
      ignore (Vfs.Env.write env a0 "to pipe a");
      (* pipe b must not see pipe a's data: read would block, so check
         emptiness via a racing write instead *)
      ignore
        (Sim.Proc.spawn eng (fun () ->
             Sim.Time.sleep eng 0.05;
             ignore (Vfs.Env.write env _b0 "b data")));
      Alcotest.(check string) "instances are separate" "b data"
        (Vfs.Env.read env b1 4096))

let test_diagnostic_files () =
  in_world (fun w ->
      let musca = P9net.World.host w "musca" in
      let env = Vfs.Env.fork musca.P9net.Host.env in
      (* make some traffic so arp and counters are non-empty *)
      let conn = P9net.Dial.dial env "il!135.104.9.31!56" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "x");
      ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 10);
      P9net.Dial.hangup env conn;
      let arp = Vfs.Env.read_file env "/net/arp" in
      Alcotest.(check bool) "arp table shows helix" true
        (let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
           in
           go 0
         in
         contains arp "135.104.9.31");
      let ifc = Vfs.Env.read_file env "/net/ipifc" in
      Alcotest.(check bool) "ipifc shows our address" true
        (String.length ifc > 0
        && String.sub ifc 0 17 = "addr 135.104.9.6 "))

(* ---- ls -l output like the paper's examples ---- *)

let test_ls_l_conn_dir () =
  in_world (fun w ->
      let helix = P9net.World.host w "helix" in
      let env = Vfs.Env.fork helix.P9net.Host.env in
      let fd = Vfs.Env.open_ env "/net/tcp/clone" F.Ordwr in
      let n = String.trim (Vfs.Env.read env fd 32) in
      let listing =
        Vfs.Env.ls env ("/net/tcp/" ^ n)
        |> List.map (fun d -> Format.asprintf "%a" F.pp_dir d)
      in
      (* shaped like: --rw-rw-rw- I 0 network network 0 ctl *)
      Alcotest.(check int) "seven files" 7 (List.length listing);
      List.iter
        (fun line ->
          Alcotest.(check bool) ("mode shape: " ^ line) true
            (String.length line > 20 && line.[0] = '-'))
        listing;
      Vfs.Env.close env fd)

let () =
  Alcotest.run "core"
    [
      ( "cs",
        [
          Alcotest.test_case "net!helix!9fs" `Quick test_cs_net_meta_name;
          Alcotest.test_case "net!$auth!rexauth" `Quick test_cs_meta_attr;
          Alcotest.test_case "literal address" `Quick test_cs_literal_address;
          Alcotest.test_case "symbolic = literal" `Quick
            test_cs_symbolic_equals_literal;
          Alcotest.test_case "unknown host" `Quick test_cs_unknown_host_fails;
          Alcotest.test_case "dk-only terminal" `Quick
            test_cs_dk_only_terminal;
          Alcotest.test_case "/net/cs file" `Quick test_cs_file_interface;
          Alcotest.test_case "dns fallback" `Quick test_cs_dns_fallback;
        ] );
      ( "netdev",
        [
          Alcotest.test_case "clone semantics" `Quick test_clone_semantics;
          Alcotest.test_case "conn dir files" `Quick test_conn_dir_files;
          Alcotest.test_case "status file" `Quick test_status_file;
          Alcotest.test_case "bad connect addr" `Quick
            test_ctl_connect_rejected_addr;
          Alcotest.test_case "paper transcript (2.3)" `Quick
            test_paper_transcript_cat_local_remote_status;
          Alcotest.test_case "udp via netdev" `Quick test_udp_via_netdev;
          Alcotest.test_case "dk reject reason" `Quick
            test_dk_reject_reason_via_files;
        ] );
      ( "dial",
        [
          Alcotest.test_case "echo via cs" `Quick test_echo_over_il;
          Alcotest.test_case "prefers il" `Quick
            test_dial_prefers_il_on_cpu_server;
          Alcotest.test_case "announce/listen/accept" `Quick
            test_announce_listen_accept;
          Alcotest.test_case "netmkaddr" `Quick test_netmkaddr;
        ] );
      ( "dns",
        [
          Alcotest.test_case "/net/dns file" `Quick test_dns_file;
          Alcotest.test_case "delegation + cache" `Quick
            test_dns_delegation_and_cache;
          Alcotest.test_case "negative" `Quick test_dns_negative;
        ] );
      ( "import",
        [
          Alcotest.test_case "unions /net" `Quick test_import_unions_net;
          Alcotest.test_case "gateway dial" `Quick
            test_import_gateway_dials_tcp;
          Alcotest.test_case "local supersedes" `Quick
            test_import_local_supersedes;
          Alcotest.test_case "read/write files" `Quick
            test_exportfs_read_write_files;
          Alcotest.test_case "remote cs" `Quick
            test_remote_cs_answers_with_its_networks;
          Alcotest.test_case "rename through import" `Quick
            test_rename_and_stat_through_import;
          Alcotest.test_case "cs requery" `Quick test_cs_requery_same_fd;
        ] );
      ( "ether",
        [
          Alcotest.test_case "figure 1 tree" `Quick test_ether_tree_figure1;
          Alcotest.test_case "snoop" `Quick test_ether_snoop;
        ] );
      ( "format",
        [ Alcotest.test_case "ls -l conn dir" `Quick test_ls_l_conn_dir ] );
      ( "diagnostics",
        [ Alcotest.test_case "arp and ipifc files" `Quick
            test_diagnostic_files ] );
      ( "pipedev",
        [
          Alcotest.test_case "pipe device" `Quick test_pipe_device;
          Alcotest.test_case "independent instances" `Quick
            test_pipe_device_independent_instances;
        ] );
    ]
