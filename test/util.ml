(* Shared setup for the integration suites: boot the canonical
   bell-labs world, run the body in a user process on one host, and
   require it to finish before the horizon — a hung test fails instead
   of wedging the suite. *)

let in_world ?seed ?cpu_commands ?(horizon = 240.0) ?(from = "philw-gnot") f =
  let w = P9net.World.bell_labs ?seed ?cpu_commands () in
  let finished = ref false in
  let h = P9net.World.host w from in
  ignore
    (P9net.Host.spawn h "test" (fun env ->
         f w env;
         finished := true));
  P9net.World.run ~until:horizon w;
  Alcotest.(check bool) "test body completed" true !finished
