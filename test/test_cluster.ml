(* Distributed name spaces: multi-hop import chains over exportfs
   re-export, union mounts of several remote servers, MCREATE routing,
   per-mount error isolation, fid-leak accounting on connection death,
   and Tflush forwarding down a chain of relays. *)

(* an env over a fresh ramfs with /srv/<name> seeded and the /n/next
   mount point ready *)
let base_env ~name =
  let ram = Ninep.Ramfs.make ~name () in
  Ninep.Ramfs.mkdir ram "/srv";
  Ninep.Ramfs.add_file ram (Printf.sprintf "/srv/%s" name) (name ^ "\n");
  Ninep.Ramfs.mkdir ram "/n";
  Ninep.Ramfs.mkdir ram "/n/next";
  let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs ram) ~uname:"u" in
  (ram, Vfs.Env.make ~ns ~uname:"u")

(* A three-level import chain over in-process pipes:

     envA --9P--> exportfs(envB) --9P--> exportfs(envC)

   C's tree holds /srv/cc; B mounts C at /n/next and re-exports the
   whole thing; A mounts B at /n/next.  One deep walk from A fans out
   over both connections. *)
let with_chain f =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create ~capacity:8192 () in
  Sim.Engine.attach_obs eng tr;
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"driver" (fun () ->
         let ramC, envC = base_env ~name:"cc" in
         let ctC, stC = Ninep.Transport.pipe eng in
         let _srvC = P9net.Exportfs.serve eng envC stC in
         let clientC = Ninep.Client.make eng ctC in
         Ninep.Client.session clientC;
         let _ramB, envB = base_env ~name:"bb" in
         Vfs.Env.mount envB clientC ~aname:"" ~onto:"/n/next" Vfs.Ns.Repl;
         let ctB, stB = Ninep.Transport.pipe eng in
         let _srvB = P9net.Exportfs.serve eng envB stB in
         let clientB = Ninep.Client.make eng ctB in
         Ninep.Client.session clientB;
         let _ramA, envA = base_env ~name:"aa" in
         Vfs.Env.mount envA clientB ~aname:"" ~onto:"/n/next" Vfs.Ns.Repl;
         f eng tr ~envA ~envB ~ramC ~clientB ~clientC ~ctC;
         finished := true));
  Sim.Engine.run ~until:600.0 eng;
  Alcotest.(check bool) "driver completed" true !finished

let counter tr name = Obs.Metrics.counter (Obs.Trace.metrics tr) name

(* ---- the chain relays reads and writes end to end ---- *)

let test_two_hop_read () =
  with_chain (fun _eng _tr ~envA ~envB:_ ~ramC ~clientB:_ ~clientC:_ ~ctC:_ ->
      Alcotest.(check string) "one hop" "bb\n"
        (Vfs.Env.read_file envA "/n/next/srv/bb");
      Alcotest.(check string) "two hops" "cc\n"
        (Vfs.Env.read_file envA "/n/next/n/next/srv/cc");
      (* a write from the head lands on the tail's ramfs *)
      Vfs.Env.write_file envA "/n/next/n/next/srv/note" "written from A";
      Alcotest.(check (option string)) "write reached C"
        (Some "written from A")
        (Ninep.Ramfs.read_file ramC "/srv/note"))

(* ---- the tail dies: clean error at the head, relay survives ---- *)

let test_upstream_death_clean_error () =
  with_chain (fun _eng _tr ~envA ~envB:_ ~ramC:_ ~clientB:_ ~clientC:_ ~ctC ->
      Alcotest.(check string) "before" "cc\n"
        (Vfs.Env.read_file envA "/n/next/n/next/srv/cc");
      ctC.Ninep.Transport.t_close ();
      (match Vfs.Env.read_file envA "/n/next/n/next/srv/cc" with
      | _ -> Alcotest.fail "read through a dead hop must not succeed"
      | exception Vfs.Chan.Error _ -> ());
      (* same connection: the relay's own files still answer *)
      Alcotest.(check string) "relay survives" "bb\n"
        (Vfs.Env.read_file envA "/n/next/srv/bb"))

(* ---- fid accounting: leaks counted on death, balanced in life ---- *)

let test_leaked_fids_on_death () =
  with_chain (fun eng tr ~envA:_ ~envB ~ramC:_ ~clientB:_ ~clientC ~ctC ->
      Alcotest.(check int) "no leaks while alive" 0
        (counter tr "9p.fids_leaked");
      (* B's mount of C holds at least its attach fid *)
      Alcotest.(check bool) "mount holds fids" true
        (Ninep.Client.open_fids clientC > 0);
      ctC.Ninep.Transport.t_close ();
      (* the demux notices the hangup on its next schedule *)
      Sim.Time.sleep eng 1.0;
      Alcotest.(check bool) "death leaks counted" true
        (counter tr "9p.fids_leaked" > 0);
      (* and the per-mount ledger of B's /n/next mount carries them *)
      let leaked =
        List.fold_left
          (fun acc (onto, m) ->
            if onto = "/n/next" then acc + Obs.Metrics.counter m "leaked_fids"
            else acc)
          0
          (Vfs.Ns.mounts (Vfs.Env.ns envB))
      in
      Alcotest.(check bool) "per-mount leaked_fids" true (leaked > 0);
      (* stats_text renders the new line *)
      (match Vfs.Ns.mounts (Vfs.Env.ns envB) with
      | (_, m) :: _ ->
        let text = Vfs.Mnt.stats_text m in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i =
            i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "stats_text has leaked_fids" true
          (contains "leaked_fids")
      | [] -> Alcotest.fail "no mounts registered"))

let test_fid_balance_in_life () =
  with_chain (fun _eng _tr ~envA:_ ~envB:_ ~ramC:_ ~clientB ~clientC:_ ~ctC:_
             ->
      let before = Ninep.Client.open_fids clientB in
      let root = Ninep.Client.attach clientB ~uname:"u" ~aname:"" in
      let fid = Ninep.Client.walk_path clientB root [ "srv"; "bb" ] in
      ignore (Ninep.Client.open_ clientB fid Ninep.Fcall.Oread);
      Alcotest.(check string) "read" "bb\n"
        (Ninep.Client.read_all clientB fid);
      Alcotest.(check int) "two extra while open" (before + 2)
        (Ninep.Client.open_fids clientB);
      Ninep.Client.clunk clientB fid;
      Ninep.Client.clunk clientB root;
      Alcotest.(check int) "balanced after clunk" before
        (Ninep.Client.open_fids clientB))

(* ---- Tflush forwards hop by hop when a blocked reader is killed ---- *)

let test_flush_forwarding () =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create ~capacity:8192 () in
  Sim.Engine.attach_obs eng tr;
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"driver" (fun () ->
         (* the tail server answers reads 30 s late *)
         let ramC = Ninep.Ramfs.make ~name:"slowroot" () in
         Ninep.Ramfs.mkdir ramC "/srv";
         Ninep.Ramfs.add_file ramC "/srv/cc" "cc\n";
         let fsC = Ninep.Ramfs.fs ramC in
         let slow =
           {
             fsC with
             Ninep.Server.fs_read =
               (fun n ~offset ~count ->
                 Sim.Time.sleep eng 30.0;
                 fsC.Ninep.Server.fs_read n ~offset ~count);
           }
         in
         let ctC, stC = Ninep.Transport.pipe eng in
         ignore (Ninep.Server.serve ~threaded:true eng slow stC);
         let clientC = Ninep.Client.make eng ctC in
         Ninep.Client.session clientC;
         let _ramB, envB = base_env ~name:"bb" in
         Vfs.Env.mount envB clientC ~aname:"" ~onto:"/n/next" Vfs.Ns.Repl;
         let ctB, stB = Ninep.Transport.pipe eng in
         let _srvB = P9net.Exportfs.serve eng envB stB in
         let clientB = Ninep.Client.make eng ctB in
         Ninep.Client.session clientB;
         let _ramA, envA = base_env ~name:"aa" in
         Vfs.Env.mount envA clientB ~aname:"" ~onto:"/n/next" Vfs.Ns.Repl;
         let reader =
           Sim.Proc.spawn eng ~name:"reader" (fun () ->
               match Vfs.Env.read_file envA "/n/next/n/next/srv/cc" with
               | _ -> Alcotest.fail "killed reader must not complete"
               | exception Sim.Proc.Killed -> ())
         in
         (* the read is parked inside the slow tail when the kill lands *)
         Sim.Time.sleep eng 2.0;
         Sim.Proc.kill reader;
         Sim.Time.sleep eng 2.0;
         (* the abort cascaded: A told B (flush 1), B's killed relay
            handler told C (flush 2); each server killed its in-flight
            handler *)
         Alcotest.(check bool) "flushes forwarded" true
           (counter tr "9p.flush_sent" >= 2);
         Alcotest.(check bool) "handlers killed" true
           (counter tr "9p.flush_killed" >= 2);
         (* nothing wedged: the same deep read still completes (30 s
            of virtual patience) and the relay's own tree answers *)
         Alcotest.(check string) "relay alive" "bb\n"
           (Vfs.Env.read_file envA "/n/next/srv/bb");
         Alcotest.(check string) "tail alive" "cc\n"
           (Vfs.Env.read_file envA "/n/next/n/next/srv/cc");
         finished := true));
  Sim.Engine.run ~until:600.0 eng;
  Alcotest.(check bool) "driver completed" true !finished

(* ---- a handler exception becomes an Rerror, not a dead server ---- *)

let test_handler_exception_is_rerror () =
  let eng = Sim.Engine.create () in
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"driver" (fun () ->
         let ram = Ninep.Ramfs.make ~name:"r" () in
         Ninep.Ramfs.add_file ram "/f" "data";
         let fs = Ninep.Ramfs.fs ram in
         let booby =
           {
             fs with
             Ninep.Server.fs_read =
               (fun _ ~offset:_ ~count:_ -> raise (Vfs.Chan.Error "boom"));
           }
         in
         let ct, st = Ninep.Transport.pipe eng in
         ignore (Ninep.Server.serve eng booby st);
         let c = Ninep.Client.make eng ct in
         Ninep.Client.session c;
         let root = Ninep.Client.attach c ~uname:"u" ~aname:"" in
         let fid = Ninep.Client.walk_path c root [ "f" ] in
         ignore (Ninep.Client.open_ c fid Ninep.Fcall.Oread);
         (match Ninep.Client.read c fid ~offset:0L ~count:128 with
         | _ -> Alcotest.fail "booby-trapped read must error"
         | exception Ninep.Client.Err e ->
           (* the registered printer renders Chan.Error as its bare
              message *)
           Alcotest.(check string) "printer renders the message" "boom" e);
         (* the serving loop survived the raise *)
         Alcotest.(check string) "stat still answers" "f"
           (Ninep.Client.stat c fid).Ninep.Fcall.d_name;
         finished := true));
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check bool) "driver completed" true !finished

(* ---- union mounts over locals: MCREATE routing, src unmount, dead
   member isolation ---- *)

let local_env () =
  let ram = Ninep.Ramfs.make ~name:"root" () in
  List.iter (Ninep.Ramfs.mkdir ram) [ "/u"; "/one"; "/two"; "/three" ];
  Ninep.Ramfs.add_file ram "/one/a" "a-from-one";
  Ninep.Ramfs.add_file ram "/two/a" "a-from-two";
  Ninep.Ramfs.add_file ram "/two/b" "b-from-two";
  Ninep.Ramfs.add_file ram "/three/c" "c-from-three";
  let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs ram) ~uname:"u" in
  (ram, Vfs.Env.make ~ns ~uname:"u")

let test_mcreate_routing () =
  let ram, env = local_env () in
  Vfs.Env.bind ~mcreate:false env ~src:"/one" ~onto:"/u" Vfs.Ns.Repl;
  Vfs.Env.bind ~mcreate:true env ~src:"/two" ~onto:"/u" Vfs.Ns.After;
  Vfs.Env.bind ~mcreate:true env ~src:"/three" ~onto:"/u" Vfs.Ns.After;
  Vfs.Env.write_file env "/u/fresh" "x";
  Alcotest.(check (option string)) "landed on the first mcreate member"
    (Some "x")
    (Ninep.Ramfs.read_file ram "/two/fresh");
  Alcotest.(check bool) "not on the frozen member" false
    (Ninep.Ramfs.exists ram "/one/fresh")

let test_mcreate_all_frozen () =
  let _ram, env = local_env () in
  Vfs.Env.bind ~mcreate:false env ~src:"/one" ~onto:"/u" Vfs.Ns.Repl;
  Vfs.Env.bind ~mcreate:false env ~src:"/two" ~onto:"/u" Vfs.Ns.After;
  match Vfs.Env.write_file env "/u/fresh" "x" with
  | () -> Alcotest.fail "all-frozen union must refuse creation"
  | exception Vfs.Chan.Error e ->
    let contains needle =
      let nl = String.length needle and hl = String.length e in
      let rec go i =
        i + nl <= hl && (String.sub e i nl = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "kernel error text" true
      (contains "forbids creation")

let test_unmount_src () =
  let _ram, env = local_env () in
  Vfs.Env.bind env ~src:"/one" ~onto:"/u" Vfs.Ns.Repl;
  Vfs.Env.bind env ~src:"/two" ~onto:"/u" Vfs.Ns.After;
  Alcotest.(check string) "union head wins" "a-from-one"
    (Vfs.Env.read_file env "/u/a");
  Alcotest.(check string) "fallthrough" "b-from-two"
    (Vfs.Env.read_file env "/u/b");
  (* two-argument unmount: only the named member goes *)
  Vfs.Env.unmount ~src:"/one" env ~onto:"/u";
  Alcotest.(check string) "survivor now answers" "a-from-two"
    (Vfs.Env.read_file env "/u/a");
  Vfs.Env.unmount ~src:"/two" env ~onto:"/u";
  (* the union dissolved entirely: /u is the plain directory again *)
  match Vfs.Env.read_file env "/u/a" with
  | _ -> Alcotest.fail "dissolved union must not still serve members"
  | exception Vfs.Chan.Error _ -> ()

let test_union_skips_dead_member () =
  let eng = Sim.Engine.create () in
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"driver" (fun () ->
         let _ram, env = local_env () in
         let remote = Ninep.Ramfs.make ~name:"remote" () in
         Ninep.Ramfs.add_file remote "/r" "from-remote";
         let ct, st = Ninep.Transport.pipe eng in
         ignore (Ninep.Server.serve eng (Ninep.Ramfs.fs remote) st);
         let c = Ninep.Client.make eng ct in
         Ninep.Client.session c;
         Vfs.Env.bind env ~src:"/one" ~onto:"/u" Vfs.Ns.Repl;
         Vfs.Env.mount env c ~aname:"" ~onto:"/u" Vfs.Ns.After;
         Vfs.Env.bind env ~src:"/three" ~onto:"/u" Vfs.Ns.After;
         let names () =
           List.sort compare
             (List.map
                (fun d -> d.Ninep.Fcall.d_name)
                (Vfs.Env.ls env "/u"))
         in
         Alcotest.(check (list string)) "whole union listed"
           [ "a"; "c"; "r" ] (names ());
         ct.Ninep.Transport.t_close ();
         Sim.Time.sleep eng 1.0;
         (* the dead member is skipped, not fatal *)
         Alcotest.(check (list string)) "listing survives the death"
           [ "a"; "c" ] (names ());
         (* and a walk past it falls through to the later member *)
         Alcotest.(check string) "walk falls through" "c-from-three"
           (Vfs.Env.read_file env "/u/c");
         (* the planted selftest bug would stop that walk at the dead
            member — prove the plant actually bites here *)
         Vfs.Ns.chaos_union_lost_walk := true;
         Fun.protect
           ~finally:(fun () -> Vfs.Ns.chaos_union_lost_walk := false)
           (fun () ->
             match Vfs.Env.read_file env "/u/c" with
             | _ -> Alcotest.fail "armed plant should stop the fallthrough"
             | exception Vfs.Chan.Error _ -> ());
         finished := true));
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check bool) "driver completed" true !finished

(* ---- the golden 3-hop span tree, over the cluster world ---- *)

let read_golden path =
  (* dune runtest runs us in test/; a manual `dune exec` from the
     workspace root sees the same file one level down *)
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let chain_span_run () =
  let w = P9net.World.cluster ~seed:5 ~n:3 () in
  let eng = w.P9net.World.eng in
  let tr = Obs.Trace.create ~capacity:65536 () in
  Sim.Engine.attach_obs eng tr;
  let finished = ref false in
  ignore
    (P9net.Host.spawn (P9net.World.host w "c0") "test" (fun env ->
         Sim.Time.sleep eng 1.0;
         let c1 = P9net.World.host w "c1" in
         P9net.Exportfs.import eng c1.P9net.Host.env ~host:"c2"
           ~remote_root:"/" ~onto:"/n/next" ~flag:Vfs.Ns.Repl ();
         P9net.Exportfs.import eng env ~host:"c1" ~remote_root:"/"
           ~onto:"/n/next" ~flag:Vfs.Ns.Repl ();
         Alcotest.(check string) "deep read" "c2\n"
           (Vfs.Env.read_file env "/n/next/n/next/srv/c2");
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "chain built" true !finished;
  tr

let test_chain_spans_golden () =
  let tr = chain_span_run () in
  (* trace 1 is c1's import of c2 (the far hop), trace 2 is c0's
     import of c1 (the near hop): each shows the same causal shape —
     CS lookup, IL dial, 9P session and attach *)
  let tree = Obs.Span.tree ~trace:1 tr ^ Obs.Span.tree ~trace:2 tr in
  Alcotest.(check string) "pinned span tree"
    (read_golden "golden/chain_spans.txt")
    tree

let () =
  Alcotest.run "cluster"
    [
      ( "chain",
        [
          Alcotest.test_case "two-hop read" `Quick test_two_hop_read;
          Alcotest.test_case "upstream death" `Quick
            test_upstream_death_clean_error;
          Alcotest.test_case "leaked fids on death" `Quick
            test_leaked_fids_on_death;
          Alcotest.test_case "fid balance in life" `Quick
            test_fid_balance_in_life;
          Alcotest.test_case "flush forwarding" `Quick test_flush_forwarding;
          Alcotest.test_case "handler exception" `Quick
            test_handler_exception_is_rerror;
        ] );
      ( "union",
        [
          Alcotest.test_case "mcreate routing" `Quick test_mcreate_routing;
          Alcotest.test_case "all frozen refuses" `Quick
            test_mcreate_all_frozen;
          Alcotest.test_case "unmount src" `Quick test_unmount_src;
          Alcotest.test_case "dead member skipped" `Quick
            test_union_skips_dead_member;
        ] );
      ( "spans",
        [
          Alcotest.test_case "chain span golden" `Quick
            test_chain_spans_golden;
        ] );
    ]
