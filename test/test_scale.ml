(* Scale regressions: the per-conversation timer economy, ephemeral
   port exhaustion, and listener backlog behaviour.  These pin down
   the properties the swarm bench depends on — above all that an idle
   conversation contributes {e zero} events to the engine, which is
   what lets thousands of them coexist. *)

(* two IP hosts on a loss-free segment, with an observability sink so
   the timer.* counters are assertable *)
let ether_pair () =
  let eng = Sim.Engine.create ~seed:7 () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  let seg = Netsim.Ether.create ~name:"e0" eng in
  let mk n addr =
    let nic =
      Netsim.Ether.attach seg
        (Netsim.Eaddr.of_string (Printf.sprintf "08006902%04x" n))
    in
    let port = Inet.Etherport.create eng nic in
    Inet.Ip.create
      ~addr:(Inet.Ipaddr.of_string addr)
      ~mask:(Inet.Ipaddr.of_string "255.255.255.0")
      port
  in
  (eng, tr, mk 1 "10.0.0.1", mk 2 "10.0.0.2")

let counter tr name = Obs.Metrics.counter (Obs.Trace.metrics tr) name

(* ---- idle conversations schedule zero timer events ---- *)

(* the heart of the tentpole: establish a conversation, exchange one
   message, let every pending timer drain (the death timer lapses once
   and does not re-arm) — then over a further hour of virtual time the
   engine must process zero events and the heap must be empty, while
   the conversation is still alive *)
let test_il_idle_is_eventless () =
  let eng, tr, ipa, ipb = ether_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  let got = ref None in
  ignore
    (Sim.Proc.spawn eng ~name:"rx" (fun () ->
         let lis = Inet.Il.announce ilb ~port:1 in
         let conv = Inet.Il.listen lis in
         got := Inet.Il.read_msg conv));
  ignore
    (Sim.Proc.spawn eng ~name:"tx" (fun () ->
         let conv =
           Inet.Il.connect ila ~raddr:(Inet.Ipaddr.of_string "10.0.0.2")
             ~rport:1
         in
         Inet.Il.write conv "ping"));
  (* run to quiescence: acks, delayed acks, and the death-timer lapse
     all drain; the conversations stay established *)
  Sim.Engine.run eng;
  Alcotest.(check (option string)) "message delivered" (Some "ping") !got;
  Alcotest.(check int) "conv alive on tx stack" 1 (Inet.Il.conv_count ila);
  Alcotest.(check int) "conv alive on rx stack" 1 (Inet.Il.conv_count ilb);
  Alcotest.(check bool) "timers were used at all" true (counter tr "timer.arm" > 0);
  let events = Sim.Engine.events eng in
  let arms = counter tr "timer.arm" in
  let now = Sim.Engine.now eng in
  Sim.Engine.run ~until:(now +. 3600.) eng;
  Alcotest.(check int) "zero events while idle" events (Sim.Engine.events eng);
  Alcotest.(check int) "zero timer arms while idle" arms (counter tr "timer.arm");
  Alcotest.(check int) "event heap is empty" 0 (Sim.Engine.pending eng)

let test_tcp_idle_is_eventless () =
  let eng, tr, ipa, ipb = ether_pair () in
  let tcpa = Inet.Tcp.attach ipa and tcpb = Inet.Tcp.attach ipb in
  let got = ref "" in
  ignore
    (Sim.Proc.spawn eng ~name:"rx" (fun () ->
         let lis = Inet.Tcp.announce tcpb ~port:1 in
         let conv = Inet.Tcp.listen lis in
         got := Inet.Tcp.read conv 4));
  ignore
    (Sim.Proc.spawn eng ~name:"tx" (fun () ->
         let conv =
           Inet.Tcp.connect tcpa ~raddr:(Inet.Ipaddr.of_string "10.0.0.2")
             ~rport:1
         in
         Inet.Tcp.write conv "ping"));
  Sim.Engine.run eng;
  Alcotest.(check string) "bytes delivered" "ping" !got;
  Alcotest.(check int) "conv alive on tx stack" 1 (Inet.Tcp.conv_count tcpa);
  Alcotest.(check int) "conv alive on rx stack" 1 (Inet.Tcp.conv_count tcpb);
  let events = Sim.Engine.events eng in
  let arms = counter tr "timer.arm" in
  let now = Sim.Engine.now eng in
  Sim.Engine.run ~until:(now +. 3600.) eng;
  Alcotest.(check int) "zero events while idle" events (Sim.Engine.events eng);
  Alcotest.(check int) "zero timer arms while idle" arms (counter tr "timer.arm");
  Alcotest.(check int) "event heap is empty" 0 (Sim.Engine.pending eng)

(* ---- ephemeral port exhaustion is a clean error ---- *)

(* occupy every ephemeral port with listeners, so the next active open
   has nowhere to bind: the stack must answer Port_exhausted, not spin
   or pick a duplicate *)
let test_il_port_exhaustion () =
  let _eng, _tr, ipa, _ipb = ether_pair () in
  let ila = Inet.Il.attach ipa in
  for p = 5000 to 64999 do
    ignore (Inet.Il.announce ila ~port:p)
  done;
  match
    Inet.Il.connect ila ~raddr:(Inet.Ipaddr.of_string "10.0.0.2") ~rport:1
  with
  | _ -> Alcotest.fail "connect should not find a port"
  | exception Inet.Il.Port_exhausted -> ()

let test_tcp_port_exhaustion () =
  let _eng, _tr, ipa, _ipb = ether_pair () in
  let tcpa = Inet.Tcp.attach ipa in
  for p = 5000 to 64999 do
    ignore (Inet.Tcp.announce tcpa ~port:p)
  done;
  match
    Inet.Tcp.connect tcpa ~raddr:(Inet.Ipaddr.of_string "10.0.0.2") ~rport:1
  with
  | _ -> Alcotest.fail "connect should not find a port"
  | exception Inet.Tcp.Port_exhausted -> ()

(* the same condition through the protocol device and dial library:
   the caller sees a Dial_error naming the cause, not a hang *)
let test_dial_port_exhaustion_is_clean () =
  Util.in_world ~from:"musca" (fun w env ->
      let musca = P9net.World.host w "musca" in
      (match musca.P9net.Host.il with
      | Some st ->
        for p = 5000 to 64999 do
          (* the host's standing services already hold a few ports *)
          try ignore (Inet.Il.announce st ~port:p)
          with Invalid_argument _ -> ()
        done
      | None -> Alcotest.fail "musca has no IL stack");
      match P9net.Dial.dial env "il!helix!echo" with
      | _ -> Alcotest.fail "dial should fail"
      | exception P9net.Dial.Dial_error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the cause: %s" e)
          true
          (let sub = "no free local ports" in
           let n = String.length sub and m = String.length e in
           let rec find i = i + n <= m && (String.sub e i n = sub || find (i + 1)) in
           find 0))

(* ---- a full backlog refuses without wedging the listener ---- *)

let test_il_backlog_refusal () =
  let eng, _tr, ipa, ipb = ether_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  let lis = Inet.Il.announce ilb ~backlog:2 ~port:7 in
  let refused = ref 0 and connected = ref 0 in
  let client delay =
    ignore
      (Sim.Proc.spawn eng ~name:"client" (fun () ->
           Sim.Time.sleep eng delay;
           match
             Inet.Il.connect ila ~raddr:(Inet.Ipaddr.of_string "10.0.0.2")
               ~rport:7
           with
           | _ -> incr connected
           | exception Inet.Il.Refused _ -> incr refused))
  in
  (* three callers against a backlog of two, before anyone accepts *)
  client 0.0;
  client 0.01;
  client 0.02;
  (* the server drains the queue only afterwards; a fourth call then
     succeeds — the listener was never wedged by the refusal *)
  ignore
    (Sim.Proc.spawn eng ~name:"server" (fun () ->
         Sim.Time.sleep eng 1.0;
         ignore (Inet.Il.listen lis);
         ignore (Inet.Il.listen lis);
         ignore (Inet.Il.listen lis)));
  client 2.0;
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check int) "two early callers connected, plus the late one" 3
    !connected;
  Alcotest.(check int) "one caller refused" 1 !refused;
  Alcotest.(check int) "listener counted the refusal" 1 (Inet.Il.refused lis);
  Alcotest.(check int) "stack-wide refusals" 1 (Inet.Il.refusals ilb)

let test_tcp_backlog_refusal () =
  let eng, _tr, ipa, ipb = ether_pair () in
  let tcpa = Inet.Tcp.attach ipa and tcpb = Inet.Tcp.attach ipb in
  let lis = Inet.Tcp.announce tcpb ~backlog:2 ~port:7 in
  let refused = ref 0 and connected = ref 0 in
  let client delay =
    ignore
      (Sim.Proc.spawn eng ~name:"client" (fun () ->
           Sim.Time.sleep eng delay;
           match
             Inet.Tcp.connect tcpa ~raddr:(Inet.Ipaddr.of_string "10.0.0.2")
               ~rport:7
           with
           | _ -> incr connected
           | exception Inet.Tcp.Refused _ -> incr refused))
  in
  client 0.0;
  client 0.01;
  client 0.02;
  ignore
    (Sim.Proc.spawn eng ~name:"server" (fun () ->
         Sim.Time.sleep eng 1.0;
         ignore (Inet.Tcp.listen lis);
         ignore (Inet.Tcp.listen lis);
         ignore (Inet.Tcp.listen lis)));
  client 2.0;
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check int) "two early callers connected, plus the late one" 3
    !connected;
  Alcotest.(check int) "one caller refused" 1 !refused;
  Alcotest.(check int) "listener counted the refusal" 1 (Inet.Tcp.refused lis);
  Alcotest.(check int) "stack-wide refusals" 1 (Inet.Tcp.refusals tcpb)

(* ---- the backlog through the ctl file and status text ---- *)

let test_backlog_ctl_and_status () =
  Util.in_world ~from:"helix" (fun _w env ->
      let ann = P9net.Dial.announce env "il!*!7777" in
      ignore (Vfs.Env.write env ann.P9net.Dial.ann_ctl_fd "backlog 3");
      let status =
        Vfs.Env.read_file env (ann.P9net.Dial.ann_dir ^ "/status")
      in
      let contains sub =
        let n = String.length sub and m = String.length status in
        let rec find i = i + n <= m && (String.sub status i n = sub || find (i + 1)) in
        find 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "status shows the backlog: %s" status)
        true
        (contains "Announced backlog 3 queued 0 refused 0"))

(* ---- the CS answer cache ---- *)

let test_cs_cache () =
  let db = Ndb.of_string P9net.World.bell_labs_ndb in
  let cs =
    P9net.Cs.make ~sysname:"helix" ~db
      ~networks:
        [
          { P9net.Cs.nw_proto = "il"; nw_clone = "/net/il/clone"; nw_kind = `Inet };
        ]
      ()
  in
  let q = "net!helix!9fs" in
  let first = P9net.Cs.translate cs q in
  let second = P9net.Cs.translate cs q in
  Alcotest.(check bool) "answers agree" true (first = second);
  Alcotest.(check (pair int int)) "one miss, one hit" (1, 1)
    (let h, m = P9net.Cs.cache_stats cs in
     (h, m));
  (* errors are memoized too: a misspelled service re-answers from the
     cache instead of re-walking the database *)
  (match P9net.Cs.translate cs "il!helix!nosuchsvc" with
  | Ok _ -> Alcotest.fail "bogus service should not translate"
  | Error _ -> ());
  (match P9net.Cs.translate cs "il!helix!nosuchsvc" with
  | Ok _ -> Alcotest.fail "bogus service should not translate"
  | Error _ -> ());
  Alcotest.(check (pair int int)) "error answers hit too" (2, 2)
    (let h, m = P9net.Cs.cache_stats cs in
     (h, m));
  P9net.Cs.flush_cache cs;
  Alcotest.(check (pair int int)) "flush zeroes the ledger" (0, 0)
    (let h, m = P9net.Cs.cache_stats cs in
     (h, m));
  (match P9net.Cs.translate cs q with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (pair int int)) "cold again after flush" (0, 1)
    (let h, m = P9net.Cs.cache_stats cs in
     (h, m))

let () =
  Alcotest.run "scale"
    [
      ( "timer-economy",
        [
          Alcotest.test_case "IL: idle conversation is eventless" `Quick
            test_il_idle_is_eventless;
          Alcotest.test_case "TCP: idle conversation is eventless" `Quick
            test_tcp_idle_is_eventless;
        ] );
      ( "port-exhaustion",
        [
          Alcotest.test_case "IL: clean Port_exhausted" `Quick
            test_il_port_exhaustion;
          Alcotest.test_case "TCP: clean Port_exhausted" `Quick
            test_tcp_port_exhaustion;
          Alcotest.test_case "dial reports no free local ports" `Quick
            test_dial_port_exhaustion_is_clean;
        ] );
      ( "backlog",
        [
          Alcotest.test_case "IL: full backlog refuses, listener survives"
            `Quick test_il_backlog_refusal;
          Alcotest.test_case "TCP: full backlog refuses, listener survives"
            `Quick test_tcp_backlog_refusal;
          Alcotest.test_case "backlog ctl message and status text" `Quick
            test_backlog_ctl_and_status;
        ] );
      ("cs-cache", [ Alcotest.test_case "answer cache" `Quick test_cs_cache ]);
    ]
