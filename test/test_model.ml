(* Model-based testing: a random sequence of file operations is applied
   both to the real system and to a trivial pure model (a map from
   paths to contents), and the observable results must agree.

   The same operation stream is run against three stacks:
     - ramfs through the syscall layer (procedural 9P),
     - ramfs through a 9P connection and the mount driver (RPC 9P),
     - ramfs imported over IL through exportfs (the full network path).
   If the three ever disagree with the model — or with each other —
   something in the chain is broken.

   Every stack additionally runs each op stream under the FIFO schedule
   AND the explorer's smoke shuffle seeds (Sim.Sched.Shuffle): the
   answers a file server gives must not depend on how same-time event
   ties were broken underneath it. *)

module F = Ninep.Fcall

type op =
  | Write of string * string  (* path, contents (whole-file rewrite) *)
  | Trunc of string * string  (* open with OTRUNC, then write *)
  | WriteAt of string * int * string  (* positional write, no truncate *)
  | Read of string
  | ReadAt of string * int * int  (* positional read: offset, count *)
  | Remove of string
  | Mkdir of string
  | List of string
  | Wstat of string * string  (* rename: path, new final name *)

let dirs = [ "/d0"; "/d1"; "/d0/sub" ]
let files = [ "f0"; "f1"; "f2" ]

let op_gen =
  QCheck.Gen.(
    let path =
      map2
        (fun d f -> d ^ "/" ^ f)
        (oneofl ("" :: dirs))
        (oneofl files)
    in
    frequency
      [
        (4, map2 (fun p c -> Write (p, c)) path (string_size (0 -- 30)));
        (2, map2 (fun p c -> Trunc (p, c)) path (string_size (0 -- 10)));
        ( 2,
          map3
            (fun p off c -> WriteAt (p, off, c))
            path (0 -- 40) (string_size (1 -- 10)) );
        (4, map (fun p -> Read p) path);
        ( 2,
          map3 (fun p off n -> ReadAt (p, off, n)) path (0 -- 40) (0 -- 40)
        );
        (1, map (fun p -> Remove p) path);
        (1, map (fun d -> Mkdir d) (oneofl dirs));
        (2, map (fun d -> List d) (oneofl ("/" :: dirs)));
        (1, map2 (fun p n -> Wstat (p, n)) path (oneofl files));
      ])

let print_op = function
  | Write (p, c) -> Printf.sprintf "Write(%s,%d bytes)" p (String.length c)
  | Trunc (p, c) -> Printf.sprintf "Trunc(%s,%d bytes)" p (String.length c)
  | WriteAt (p, off, c) ->
    Printf.sprintf "WriteAt(%s,@%d,%d bytes)" p off (String.length c)
  | Read p -> "Read " ^ p
  | ReadAt (p, off, n) -> Printf.sprintf "ReadAt(%s,@%d,%d)" p off n
  | Remove p -> "Remove " ^ p
  | Mkdir d -> "Mkdir " ^ d
  | List d -> "List " ^ d
  | Wstat (p, n) -> Printf.sprintf "Wstat(%s -> %s)" p n

(* ---- the model ---- *)

module Model = struct
  type t = {
    mutable files : (string * string) list;
    mutable dirs : string list;
  }

  let make () = { files = []; dirs = [ "/" ] }

  let parent p = Filename.dirname p

  let apply m = function
    | Mkdir d ->
      (* mkdir -p semantics, mirroring the driver below *)
      let rec add d =
        if d <> "/" && not (List.mem d m.dirs) then begin
          add (parent d);
          m.dirs <- d :: m.dirs
        end
      in
      add d;
      "ok"
    | Write (p, c) ->
      if List.mem (parent p) m.dirs then begin
        m.files <- (p, c) :: List.remove_assoc p m.files;
        "ok"
      end
      else "error"
    | Trunc (p, c) ->
      (* open with OTRUNC does not create: the file must exist *)
      if List.mem_assoc p m.files then begin
        m.files <- (p, c) :: List.remove_assoc p m.files;
        "ok"
      end
      else "error"
    | WriteAt (p, off, c) -> (
      match List.assoc_opt p m.files with
      | None -> "error"
      | Some cur ->
        let curlen = String.length cur in
        if off > curlen then "error"  (* ramfs: no holes *)
        else begin
          let tail = off + String.length c in
          let patched =
            String.sub cur 0 off ^ c
            ^ (if tail < curlen then String.sub cur tail (curlen - tail)
               else "")
          in
          m.files <- (p, patched) :: List.remove_assoc p m.files;
          "ok"
        end)
    | Read p -> (
      match List.assoc_opt p m.files with Some c -> c | None -> "error")
    | ReadAt (p, off, n) -> (
      match List.assoc_opt p m.files with
      | None -> "error"
      | Some cur ->
        let len = String.length cur in
        if off >= len then "" else String.sub cur off (min n (len - off)))
    | Wstat (p, newname) -> (
      match List.assoc_opt p m.files with
      | None -> "error"
      | Some contents ->
        let dir = parent p in
        let dest = if dir = "/" then "/" ^ newname else dir ^ "/" ^ newname in
        (* ramfs renames only when the target name is free; a clash is a
           silent no-op (and wstat still succeeds) *)
        if Filename.basename p = newname || List.mem_assoc dest m.files
        then "ok"
        else begin
          m.files <- (dest, contents) :: List.remove_assoc p m.files;
          "ok"
        end)
    | Remove p ->
      if List.mem_assoc p m.files then begin
        m.files <- List.remove_assoc p m.files;
        "ok"
      end
      else "error"
    | List d ->
      if not (List.mem d m.dirs) then "error"
      else begin
        let prefix = if d = "/" then "/" else d ^ "/" in
        let children_of path =
          let rest =
            String.sub path (String.length prefix)
              (String.length path - String.length prefix)
          in
          if String.contains rest '/' || rest = "" then None else Some rest
        in
        let fs =
          List.filter_map (fun (p, _) ->
              if String.length p > String.length prefix
                 && String.sub p 0 (String.length prefix) = prefix
              then children_of p
              else None)
            m.files
        in
        let ds =
          List.filter_map (fun p ->
              if String.length p > String.length prefix
                 && String.sub p 0 (String.length prefix) = prefix
              then children_of p
              else None)
            m.dirs
        in
        String.concat "," (List.sort compare (fs @ ds))
      end
end

(* ---- the drivers ---- *)

let apply_env env op =
  match op with
  | Mkdir d ->
    let rec add d =
      if d <> "/" && d <> "." && d <> "" then begin
        add (Filename.dirname d);
        match Vfs.Env.stat env d with
        | _ -> ()
        | exception Vfs.Chan.Error _ ->
          Vfs.Env.close env
            (Vfs.Env.create env d
               ~perm:(Int32.logor F.dmdir 0o775l)
               F.Oread)
      end
    in
    add d;
    "ok"
  | Write (p, c) -> (
    match Vfs.Env.write_file env p c with
    | () -> "ok"
    | exception Vfs.Chan.Error _ -> "error")
  | Trunc (p, c) -> (
    match
      let fd = Vfs.Env.open_ env p ~trunc:true F.Owrite in
      Fun.protect
        ~finally:(fun () -> Vfs.Env.close env fd)
        (fun () -> ignore (Vfs.Env.pwrite env fd ~offset:0L c))
    with
    | () -> "ok"
    | exception Vfs.Chan.Error _ -> "error")
  | WriteAt (p, off, c) -> (
    match
      let fd = Vfs.Env.open_ env p F.Owrite in
      Fun.protect
        ~finally:(fun () -> Vfs.Env.close env fd)
        (fun () ->
          ignore (Vfs.Env.pwrite env fd ~offset:(Int64.of_int off) c))
    with
    | () -> "ok"
    | exception Vfs.Chan.Error _ -> "error")
  | Read p -> (
    match Vfs.Env.read_file env p with
    | c -> c
    | exception Vfs.Chan.Error _ -> "error")
  | ReadAt (p, off, n) -> (
    match
      let fd = Vfs.Env.open_ env p F.Oread in
      Fun.protect
        ~finally:(fun () -> Vfs.Env.close env fd)
        (fun () -> Vfs.Env.pread env fd ~offset:(Int64.of_int off) n)
    with
    | data -> data
    | exception Vfs.Chan.Error _ -> "error")
  | Wstat (p, newname) -> (
    match
      let d = Vfs.Env.stat env p in
      Vfs.Env.wstat env p { d with F.d_name = newname }
    with
    | () -> "ok"
    | exception Vfs.Chan.Error _ -> "error")
  | Remove p -> (
    match Vfs.Env.remove env p with
    | () -> "ok"
    | exception Vfs.Chan.Error _ -> "error")
  | List d -> (
    match Vfs.Env.ls env d with
    | entries ->
      String.concat ","
        (List.sort compare (List.map (fun e -> e.F.d_name) entries))
    | exception Vfs.Chan.Error _ -> "error")

(* the schedules every stack must agree with the model under: the
   historical FIFO tie-break plus the explorer's smoke shuffles.  A
   stack whose answers depend on the schedule choice has an ordering
   bug even if every schedule is individually plausible. *)
let schedules =
  Sim.Sched.Fifo
  :: List.map (fun s -> Sim.Sched.Shuffle s) Sim.Explore.smoke_seeds

(* run one op list through a stack builder under every schedule and
   compare with the model; [prep] adapts paths for the driver (the
   model always sees the original absolute ops) *)
let agrees ?(prep = fun ops -> ops) ~build ops =
  let m = Model.make () in
  let expected = List.map (Model.apply m) ops in
  List.for_all
    (fun sched ->
      let results = ref [] in
      build ~sched (fun env ->
          results := List.rev_map (apply_env env) (prep ops));
      List.rev !results = expected)
    schedules

let local_stack ~sched f =
  let eng = Sim.Engine.create ~sched () in
  let ram = Ninep.Ramfs.make ~name:"root" () in
  let _p =
    Sim.Proc.spawn eng (fun () ->
        let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs ram) ~uname:"u" in
        f (Vfs.Env.make ~ns ~uname:"u"))
  in
  Sim.Engine.run eng

let mounted_stack ~sched f =
  let eng = Sim.Engine.create ~sched () in
  let local = Ninep.Ramfs.make ~name:"root" () in
  Ninep.Ramfs.mkdir local "/mnt";
  let remote = Ninep.Ramfs.make ~name:"remote" () in
  let ct, st = Ninep.Transport.pipe eng in
  let _srv = Ninep.Server.serve eng (Ninep.Ramfs.fs remote) st in
  let _p =
    Sim.Proc.spawn eng (fun () ->
        let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs local) ~uname:"u" in
        let env = Vfs.Env.make ~ns ~uname:"u" in
        let client = Ninep.Client.make eng ct in
        Ninep.Client.session client;
        Vfs.Env.mount env client ~onto:"/mnt" Vfs.Ns.Repl;
        Vfs.Env.chdir env "/mnt";
        f env)
  in
  Sim.Engine.run eng

let imported_stack ?proto ?(from = "philw-gnot") ~sched f =
  let w = P9net.World.bell_labs ~sched () in
  let gnot = P9net.World.host w from in
  let helix = P9net.World.host w "helix" in
  Ninep.Ramfs.mkdir helix.P9net.Host.root "/tmp/model";
  ignore
    (P9net.Host.spawn gnot "model" (fun env ->
         (* let every host's listeners announce before dialing: under
            shuffled schedules the workload can otherwise run ahead of
            helix's exportfs service at t=0 *)
         Sim.Time.sleep w.P9net.World.eng 1.0;
         P9net.Exportfs.import w.P9net.World.eng env ?proto ~host:"helix"
           ~remote_root:"/tmp/model" ~onto:"/n" ~flag:Vfs.Ns.Repl ();
         Vfs.Env.chdir env "/n";
         f env));
  P9net.World.run ~until:600.0 w

(* relative paths: ops use absolute "/..." but the mounted stacks chdir
   first, so strip the leading slash to make them relative *)
let relativize ops =
  let rel p = String.sub p 1 (String.length p - 1) in
  List.map
    (function
      | Write (p, c) -> Write (rel p, c)
      | Trunc (p, c) -> Trunc (rel p, c)
      | WriteAt (p, off, c) -> WriteAt (rel p, off, c)
      | Read p -> Read (rel p)
      | ReadAt (p, off, n) -> ReadAt (rel p, off, n)
      | Remove p -> Remove (rel p)
      | Mkdir d -> Mkdir (rel d)
      | List d -> List (if d = "/" then "." else rel d)
      | Wstat (p, n) -> Wstat (rel p, n))
    ops

(* a third mount hop: the tail ramfs is mounted by a middle machine
   whose whole name space is re-exported (exportfs relay), and the head
   mounts that — so every op crosses two 9P connections and the union-
   aware walk of the relay *)
let chained_stack ?(seed_dirs = []) ~sched f =
  let eng = Sim.Engine.create ~sched () in
  let tail = Ninep.Ramfs.make ~name:"tail" () in
  List.iter (Ninep.Ramfs.mkdir tail) seed_dirs;
  let ctC, stC = Ninep.Transport.pipe eng in
  let _srvC = Ninep.Server.serve ~threaded:true eng (Ninep.Ramfs.fs tail) stC in
  let ctB, stB = Ninep.Transport.pipe eng in
  let _p =
    Sim.Proc.spawn eng (fun () ->
        let mid = Ninep.Ramfs.make ~name:"mid" () in
        Ninep.Ramfs.mkdir mid "/mnt";
        let nsB = Vfs.Ns.make ~root:(Ninep.Ramfs.fs mid) ~uname:"u" in
        let envB = Vfs.Env.make ~ns:nsB ~uname:"u" in
        let cC = Ninep.Client.make eng ctC in
        Ninep.Client.session cC;
        Vfs.Env.mount envB cC ~onto:"/mnt" Vfs.Ns.Repl;
        ignore (P9net.Exportfs.serve eng envB stB);
        let head = Ninep.Ramfs.make ~name:"head" () in
        Ninep.Ramfs.mkdir head "/mnt";
        let nsA = Vfs.Ns.make ~root:(Ninep.Ramfs.fs head) ~uname:"u" in
        let envA = Vfs.Env.make ~ns:nsA ~uname:"u" in
        let cB = Ninep.Client.make eng ctB in
        Ninep.Client.session cB;
        Vfs.Env.mount envA cB ~onto:"/mnt" Vfs.Ns.Repl;
        Vfs.Env.chdir envA "/mnt/mnt";
        f envA)
  in
  Sim.Engine.run eng

(* ---- union-aware op streams ---- *)

(* the same model idea with a mount table: bind/unmount ops interleave
   with file ops, and a path below /u resolves through the ordered
   union — the first member holding the name wins, creation lands in
   the first MCREATE member (every member here, since these binds use
   the default), removal takes the first holder's copy *)
type uni_op =
  | Fop of op
  | Ubind of int * Vfs.Ns.flag  (* bind /dI onto /u *)
  | Uunmount  (* dissolve the union at /u *)

let flag_str = function
  | Vfs.Ns.Repl -> "Repl"
  | Vfs.Ns.Before -> "Before"
  | Vfs.Ns.After -> "After"

let print_uni = function
  | Fop op -> print_op op
  | Ubind (i, f) -> Printf.sprintf "Bind(/d%d -> /u, %s)" i (flag_str f)
  | Uunmount -> "Unmount /u"

module Umodel = struct
  type mem = UOnto | UDir of int

  type t = { base : Model.t; mutable union : mem list option }

  let make () =
    let m = Model.make () in
    m.Model.dirs <- [ "/u"; "/d0"; "/d1"; "/" ];
    { base = m; union = None }

  let mem_dir = function UOnto -> "/u" | UDir i -> Printf.sprintf "/d%d" i

  (* the kernel's bind rules: a fresh union keeps the mounted-upon
     directory as a member (except under Repl); Repl over an existing
     union replaces the whole list *)
  let apply_bind t i flag =
    let m = UDir i in
    t.union <-
      Some
        (match (t.union, flag) with
        | _, Vfs.Ns.Repl -> [ m ]
        | None, Vfs.Ns.Before -> [ m; UOnto ]
        | None, Vfs.Ns.After -> [ UOnto; m ]
        | Some l, Vfs.Ns.Before -> m :: l
        | Some l, Vfs.Ns.After -> l @ [ m ])

  let members t = match t.union with None -> [ UOnto ] | Some l -> l

  (* /u/x resolves in the first member holding x; a missing name
     resolves in the creation target (the first member, all MCREATE) *)
  let translate t p =
    if String.length p > 3 && String.sub p 0 3 = "/u/" then begin
      let x = String.sub p 3 (String.length p - 3) in
      let holder =
        List.find_opt
          (fun m ->
            List.mem_assoc (mem_dir m ^ "/" ^ x) t.base.Model.files)
          (members t)
      in
      let m = match holder with Some m -> m | None -> List.hd (members t) in
      mem_dir m ^ "/" ^ x
    end
    else p

  let map_path f = function
    | Write (p, c) -> Write (f p, c)
    | Trunc (p, c) -> Trunc (f p, c)
    | WriteAt (p, o, c) -> WriteAt (f p, o, c)
    | Read p -> Read (f p)
    | ReadAt (p, o, n) -> ReadAt (f p, o, n)
    | Remove p -> Remove (f p)
    | Mkdir d -> Mkdir d
    | List d -> List d
    | Wstat (p, n) -> Wstat (f p, n)

  let apply t = function
    | Ubind (i, f) ->
      apply_bind t i f;
      "ok"
    | Uunmount ->
      t.union <- None;
      "ok"
    | Fop (List "/u") ->
      (* union listing: every member's entries, duplicates suppressed *)
      let parts s = if s = "" then [] else String.split_on_char ',' s in
      let all =
        List.concat_map
          (fun m -> parts (Model.apply t.base (List (mem_dir m))))
          (members t)
      in
      String.concat "," (List.sort_uniq compare all)
    | Fop op -> Model.apply t.base (map_path (translate t) op)
end

(* driver paths are mount-point relative so the same stream works in
   the chained stack after its chdir *)
let apply_uni env = function
  | Fop op -> apply_env env op
  | Ubind (i, f) ->
    Vfs.Env.bind env ~src:(Printf.sprintf "d%d" i) ~onto:"u" f;
    "ok"
  | Uunmount ->
    Vfs.Env.unmount env ~onto:"u";
    "ok"

let relativize_uni ops =
  List.map
    (function Fop op -> Fop (List.hd (relativize [ op ])) | o -> o)
    ops

let uni_agrees ?(prep = fun ops -> ops) ~build ops =
  let m = Umodel.make () in
  let expected = List.map (Umodel.apply m) ops in
  List.for_all
    (fun sched ->
      let results = ref [] in
      build ~sched (fun env ->
          results := List.rev_map (apply_uni env) (prep ops));
      List.rev !results = expected)
    schedules

let union_dirs = [ "/u"; "/d0"; "/d1" ]

let union_local_stack ~sched f =
  let eng = Sim.Engine.create ~sched () in
  let ram = Ninep.Ramfs.make ~name:"root" () in
  List.iter (Ninep.Ramfs.mkdir ram) union_dirs;
  let _p =
    Sim.Proc.spawn eng (fun () ->
        let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs ram) ~uname:"u" in
        f (Vfs.Env.make ~ns ~uname:"u"))
  in
  Sim.Engine.run eng

let uni_op_gen =
  QCheck.Gen.(
    let path =
      map2 (fun d f -> d ^ "/" ^ f) (oneofl union_dirs) (oneofl files)
    in
    let fop =
      frequency
        [
          (4, map2 (fun p c -> Write (p, c)) path (string_size (0 -- 20)));
          (2, map2 (fun p c -> Trunc (p, c)) path (string_size (0 -- 8)));
          ( 2,
            map3
              (fun p off c -> WriteAt (p, off, c))
              path (0 -- 20) (string_size (1 -- 8)) );
          (4, map (fun p -> Read p) path);
          (2, map3 (fun p off n -> ReadAt (p, off, n)) path (0 -- 20) (0 -- 20));
          (1, map (fun p -> Remove p) path);
          (2, map (fun d -> List d) (oneofl ("/" :: union_dirs)));
          (1, map2 (fun p n -> Wstat (p, n)) path (oneofl files));
        ]
    in
    frequency
      [
        (5, map (fun o -> Fop o) fop);
        ( 2,
          map2
            (fun i f -> Ubind (i, f))
            (int_bound 1)
            (oneofl [ Vfs.Ns.Repl; Vfs.Ns.Before; Vfs.Ns.After ]) );
        (1, return Uunmount);
      ])

let uni_ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_uni ops))
    QCheck.Gen.(list_size (1 -- 20) uni_op_gen)

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (1 -- 25) op_gen)

let prop_local =
  QCheck.Test.make ~name:"ramfs matches the model" ~count:60 ops_arb
    (fun ops -> agrees ~build:local_stack ops)

let prop_mounted =
  QCheck.Test.make ~name:"9p-mounted ramfs matches the model" ~count:40
    ops_arb (fun ops -> agrees ~prep:relativize ~build:mounted_stack ops)

let prop_imported =
  QCheck.Test.make ~name:"il-imported exportfs matches the model" ~count:8
    ops_arb (fun ops ->
      agrees ~prep:relativize ~build:(fun ~sched f -> imported_stack ~sched f)
        ops)

(* the same namespace model over the congestion-controlled transport
   (from musca — philw-gnot is a Datakit terminal with no IP stack):
   9P semantics must be transport-blind *)
let prop_imported_tcpcc =
  QCheck.Test.make ~name:"tcpcc-imported exportfs matches the model" ~count:4
    ops_arb (fun ops ->
      agrees ~prep:relativize
        ~build:(imported_stack ~proto:"tcpcc" ~from:"musca")
        ops)

(* plain streams across two 9P connections and a relay: the extra hop
   must be invisible *)
let prop_chained =
  QCheck.Test.make ~name:"3-hop chained mount matches the model" ~count:15
    ops_arb (fun ops ->
      agrees ~prep:relativize
        ~build:(fun ~sched f -> chained_stack ~sched f)
        ops)

let prop_union_local =
  QCheck.Test.make ~name:"union-aware streams match the model" ~count:50
    uni_ops_arb (fun ops -> uni_agrees ~build:union_local_stack ops)

(* the same union streams with every member three hops away: binds over
   remote channels, creates routed through the union to the far server *)
let prop_union_chained =
  QCheck.Test.make ~name:"union streams over a 3-hop namespace match the model"
    ~count:8 uni_ops_arb (fun ops ->
      uni_agrees ~prep:relativize_uni
        ~build:(fun ~sched f -> chained_stack ~seed_dirs:union_dirs ~sched f)
        ops)

let replay_case () =
  let ops =
    [
      Write ("/f2", String.make 16 'x');
      Read "/d0/sub/f2";
      Read "/d0/sub/f2";
      List "/d0";
      Remove "/d1/f1";
      Write ("/d0/sub/f2", String.make 16 'y');
      Remove "/d0/sub/f0";
      Write ("/f1", String.make 5 'z');
      Write ("/d1/f0", String.make 25 'w');
    ]
  in
  let driver_ops =
    if Array.length Sys.argv > 2 then relativize ops else ops
  in
  let real = ref [] in
  (if Array.length Sys.argv > 2 then mounted_stack else local_stack)
    ~sched:Sim.Sched.Fifo
    (fun env -> real := List.map (apply_env env) driver_ops);
  let m = Model.make () in
  List.iteri
    (fun i op ->
      let expect = Model.apply m op in
      let got = List.nth !real i in
      Printf.printf "%-28s model=%-10S real=%-10S %s
" (print_op op)
        expect got
        (if expect = got then "" else "<== MISMATCH"))
    ops

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "replay" then begin
    replay_case ();
    exit 0
  end;
  Alcotest.run "model"
    [
      ( "namespace",
        [
          QCheck_alcotest.to_alcotest prop_local;
          QCheck_alcotest.to_alcotest prop_mounted;
          QCheck_alcotest.to_alcotest prop_imported;
          QCheck_alcotest.to_alcotest prop_imported_tcpcc;
          QCheck_alcotest.to_alcotest prop_chained;
        ] );
      ( "union",
        [
          QCheck_alcotest.to_alcotest prop_union_local;
          QCheck_alcotest.to_alcotest prop_union_chained;
        ] );
    ]
