(* The tier-coherence battery for the stacked cfs hierarchy: a
   write-through at one terminal must be visible to a sibling terminal
   through the shared rack tier; eviction at the rack tier must refetch
   from the origin; concurrent same-block misses must coalesce onto one
   upstream read; and a small cold-boot storm must replay with exactly
   the per-tier round-trip counts the golden file records. *)

let split_path p =
  List.filter (fun s -> s <> "") (String.split_on_char '/' p)

(* origin ramfs <- rack cfs <- two terminal cfs, all in-process *)
let with_stack ?rack_config ?term_config f =
  let eng = Sim.Engine.create () in
  let ram = Ninep.Ramfs.make ~name:"origin" () in
  let up_ct, up_st = Ninep.Transport.pipe eng in
  ignore (Ninep.Server.serve eng (Ninep.Ramfs.fs ram) up_st);
  let rack = Cfs.make ?config:rack_config eng ~upstream:up_ct () in
  let ta = Cfs.make ?config:term_config eng ~upstream:(Cfs.connect rack) () in
  let tb = Cfs.make ?config:term_config eng ~upstream:(Cfs.connect rack) () in
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"main" (fun () ->
         let ca = Ninep.Client.make eng (Cfs.transport ta) in
         Ninep.Client.session ca;
         let cb = Ninep.Client.make eng (Cfs.transport tb) in
         Ninep.Client.session cb;
         f eng ram rack ta tb ca cb;
         finished := true));
  Sim.Engine.run eng;
  Alcotest.(check bool) "test body completed" true !finished

let walk_open ?(mode = Ninep.Fcall.Oread) c path =
  let root = Ninep.Client.attach c ~uname:"fleet" ~aname:"" in
  let fid = Ninep.Client.walk_path c root (split_path path) in
  ignore (Ninep.Client.open_ c fid mode);
  Ninep.Client.clunk c root;
  fid

(* ---- write at A, read at B through the shared rack ---- *)

let test_tier_coherence () =
  let old_body = String.make 2000 'o' in
  with_stack (fun _eng ram rack _ta tb ca cb ->
      Ninep.Ramfs.add_file ram "/f" old_body;
      (* B warms both its own tier and the rack tier *)
      let fb = walk_open cb "/f" in
      Alcotest.(check string) "cold read at B" old_body
        (Ninep.Client.read_all cb fb);
      Ninep.Client.clunk cb fb;
      (* A writes through: terminal A -> rack -> origin *)
      let fa = walk_open ~mode:Ninep.Fcall.Ordwr ca "/f" in
      ignore (Ninep.Client.write ca fa ~offset:0L "NEW");
      Ninep.Client.clunk ca fa;
      let fresh = "NEW" ^ String.sub old_body 3 (String.length old_body - 3) in
      (* B's next walk carries the bumped qid.vers: its terminal tier
         invalidates and refetches through the rack, whose blocks the
         write-through patched in place *)
      let fb2 = walk_open cb "/f" in
      Alcotest.(check string) "B sees A's write" fresh
        (Ninep.Client.read_all cb fb2);
      Ninep.Client.clunk cb fb2;
      Alcotest.(check bool) "terminal B invalidated" true
        (Cfs.counter tb "invalidations" > 0);
      (* the rack never saw a foreign change: A's write went through it,
         was patched in place, and its version accounting kept up *)
      Alcotest.(check int) "rack tier patched, not invalidated" 0
        (Cfs.counter rack "invalidations"))

let test_tier_coherence_unwarmed () =
  (* same flow but B never read before the write: nothing stale exists,
     B's first read must still see the new bytes *)
  let old_body = String.make 1500 'q' in
  with_stack (fun _eng ram _rack _ta _tb ca cb ->
      Ninep.Ramfs.add_file ram "/g" old_body;
      let fa = walk_open ~mode:Ninep.Fcall.Ordwr ca "/g" in
      ignore (Ninep.Client.write ca fa ~offset:0L "fresh!");
      Ninep.Client.clunk ca fa;
      let want =
        "fresh!" ^ String.sub old_body 6 (String.length old_body - 6)
      in
      let fb = walk_open cb "/g" in
      Alcotest.(check string) "B reads through both tiers" want
        (Ninep.Client.read_all cb fb);
      Ninep.Client.clunk cb fb)

(* ---- rack-tier LRU eviction refetches from origin ---- *)

let test_rack_eviction_refetches () =
  (* rack budget of two blocks: filling it with /b evicts /a's blocks;
     re-reading /a must go back to the origin and return origin bytes *)
  let body_a = String.make 4096 'a' and body_b = String.make 4096 'b' in
  with_stack
    ~rack_config:{ Cfs.bsize = 1024; budget = 2048; readahead = 2 }
    (fun _eng ram rack _ta _tb ca cb ->
      Ninep.Ramfs.add_file ram "/a" body_a;
      Ninep.Ramfs.add_file ram "/b" body_b;
      let fa = walk_open ca "/a" in
      Alcotest.(check string) "first read of /a" body_a
        (Ninep.Client.read_all ca fa);
      Ninep.Client.clunk ca fa;
      let m0 = Cfs.counter rack "misses" in
      let fb = walk_open cb "/b" in
      Alcotest.(check string) "read of /b" body_b
        (Ninep.Client.read_all cb fb);
      Ninep.Client.clunk cb fb;
      Alcotest.(check bool) "rack evicted" true
        (Cfs.counter rack "evictions" > 0);
      (* /a's blocks are gone from the rack; the re-read must miss there
         and refetch origin bytes (terminal A's own cache would mask
         this, so read through terminal B, which never read /a) *)
      let fa2 = walk_open cb "/a" in
      Alcotest.(check string) "evicted /a refetched from origin" body_a
        (Ninep.Client.read_all cb fa2);
      Ninep.Client.clunk cb fa2;
      Alcotest.(check bool) "rack missed again" true
        (Cfs.counter rack "misses" > m0))

(* ---- single flight: concurrent same-block misses, one upstream read ---- *)

let test_single_flight () =
  let eng = Sim.Engine.create () in
  let ram = Ninep.Ramfs.make ~name:"origin" () in
  let body = String.make 8192 's' in
  Ninep.Ramfs.add_file ram "/f" body;
  let up_ct, up_st = Ninep.Transport.pipe eng in
  ignore (Ninep.Server.serve eng (Ninep.Ramfs.fs ram) up_st);
  let cache = Cfs.make eng ~upstream:up_ct () in
  let done_count = ref 0 in
  for k = 1 to 3 do
    ignore
      (Sim.Proc.spawn eng
         ~name:(Printf.sprintf "client%d" k)
         (fun () ->
           let c = Ninep.Client.make eng (Cfs.connect cache) in
           Ninep.Client.session c;
           let fid = walk_open c "/f" in
           Alcotest.(check string)
             (Printf.sprintf "client %d contents" k)
             body
             (Ninep.Client.read_all c fid);
           Ninep.Client.clunk c fid;
           incr done_count))
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "all clients finished" 3 !done_count;
  (* one widened fetch for the data, one end-of-file probe — however
     many clients raced; before single-flight this was per-client *)
  Alcotest.(check int) "two upstream reads total" 2
    (Cfs.counter cache "misses");
  Alcotest.(check bool) "concurrent misses coalesced" true
    (Cfs.counter cache "coalesced" >= 2)

(* ---- cold-boot replay: exact per-tier round-trip counts ---- *)

let read_golden path =
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_cold_boot_replay () =
  let r = Bootstorm_bench.run ~seed:7 ~racks:2 ~terminals:2 () in
  let t = r.Bootstorm_bench.res_tiered in
  let d = r.Bootstorm_bench.res_direct in
  let got =
    Printf.sprintf
      "booted %d of %d\n\
       tiered origin_round_trips %d\n\
       terminal tier: hits %d misses %d\n\
       rack tier: hits %d misses %d coalesced %d\n\
       direct origin_round_trips %d\n"
      t.Bootstorm_bench.b_booted t.Bootstorm_bench.b_total
      t.Bootstorm_bench.b_origin_rts t.Bootstorm_bench.b_term_hits
      t.Bootstorm_bench.b_term_misses t.Bootstorm_bench.b_rack_hits
      t.Bootstorm_bench.b_rack_misses t.Bootstorm_bench.b_rack_coalesced
      d.Bootstorm_bench.b_origin_rts
  in
  Alcotest.(check string) "per-tier round-trip counts"
    (read_golden "golden/fleet_replay.txt")
    got

let () =
  Alcotest.run "fleet"
    [
      ( "coherence",
        [
          Alcotest.test_case "write at A visible at B" `Quick
            test_tier_coherence;
          Alcotest.test_case "unwarmed sibling reads fresh" `Quick
            test_tier_coherence_unwarmed;
          Alcotest.test_case "rack eviction refetches origin" `Quick
            test_rack_eviction_refetches;
        ] );
      ( "single-flight",
        [ Alcotest.test_case "one upstream read per block" `Quick
            test_single_flight ] );
      ( "replay",
        [ Alcotest.test_case "cold-boot golden counts" `Quick
            test_cold_boot_replay ] );
    ]
