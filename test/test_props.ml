(* Property tests over the codecs: the 9P marshaller, the IP address
   printer/parser, and the ndb tuple-file parser.  Two kinds of claim:

   - round trip: anything we encode comes back identical through the
     decoder (checked per message type, so a new constructor with a
     broken arm cannot hide behind the generator's dice);
   - never raise: the decoders are fed from the network, so arbitrary,
     truncated, or bit-flipped bytes must produce a clean error, never
     an exception. *)

module F = Ninep.Fcall

let gen = QCheck.Gen.generate1

(* ---- generators: one canonical-form value per field kind ---- *)

(* names are NUL-padded 28-byte fields: anything shorter than namelen
   and NUL-free round-trips *)
let name_gen =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (0 -- (F.namelen - 1)))

(* errors are NUL-padded 64-byte fields *)
let err_gen =
  QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (0 -- (F.errlen - 1)))

(* counted strings (tickets, challenges, data) carry arbitrary bytes *)
let bytes_gen n = QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- n))
let w16_gen = QCheck.Gen.int_bound 0xffff

let int32_gen =
  QCheck.Gen.(
    map2
      (fun hi lo ->
        Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo))
      (int_bound 0xffff) (int_bound 0xffff))

let int64_gen =
  QCheck.Gen.(
    map2
      (fun hi lo ->
        Int64.logor
          (Int64.shift_left (Int64.of_int32 hi) 32)
          (Int64.logand (Int64.of_int32 lo) 0xffffffffL))
      int32_gen int32_gen)

let qid_gen =
  QCheck.Gen.(
    map2 (fun qpath qvers -> { F.qpath; qvers }) int32_gen int32_gen)

let mode_gen = QCheck.Gen.oneofl [ F.Oread; F.Owrite; F.Ordwr; F.Oexec ]

let dir_gen =
  QCheck.Gen.(
    map2
      (fun (name, uid, gid, qid) (mode, atime, mtime, length, ty, dev) ->
        {
          F.d_name = name;
          d_uid = uid;
          d_gid = gid;
          d_qid = qid;
          d_mode = mode;
          d_atime = atime;
          d_mtime = mtime;
          d_length = length;
          d_type = ty;
          d_dev = dev;
        })
      (quad name_gen name_gen name_gen qid_gen)
      (map3
         (fun (mode, atime) (mtime, length) (ty, dev) ->
           (mode, atime, mtime, length, ty, dev))
         (pair int32_gen int32_gen)
         (pair int32_gen int64_gen)
         (pair w16_gen w16_gen)))

(* every message type, exercised one by one: [constructors] lists a
   generator per arm, so adding a constructor without extending this
   list is caught by the exhaustiveness check in [all_constructors] *)
let tmsg_constructors : (string * F.tmsg QCheck.Gen.t) list =
  let open QCheck.Gen in
  [
    ("Tnop", return F.Tnop);
    ( "Tauth",
      map3
        (fun afid uname ticket -> F.Tauth { afid; uname; ticket })
        w16_gen name_gen (bytes_gen 64) );
    ("Tsession", map (fun chal -> F.Tsession { chal }) (bytes_gen 64));
    ( "Tattach",
      map3
        (fun fid uname aname -> F.Tattach { fid; uname; aname })
        w16_gen name_gen name_gen );
    ( "Tclone",
      map2 (fun fid newfid -> F.Tclone { fid; newfid }) w16_gen w16_gen );
    ("Twalk", map2 (fun fid name -> F.Twalk { fid; name }) w16_gen name_gen);
    ( "Tclwalk",
      map3
        (fun fid newfid name -> F.Tclwalk { fid; newfid; name })
        w16_gen w16_gen name_gen );
    ( "Topen",
      map3
        (fun fid mode trunc -> F.Topen { fid; mode; trunc })
        w16_gen mode_gen bool );
    ( "Tcreate",
      map3
        (fun fid (name, perm) mode -> F.Tcreate { fid; name; perm; mode })
        w16_gen (pair name_gen int32_gen) mode_gen );
    ( "Tread",
      map3
        (fun fid offset count -> F.Tread { fid; offset; count })
        w16_gen int64_gen w16_gen );
    ( "Twrite",
      map3
        (fun fid offset data -> F.Twrite { fid; offset; data })
        w16_gen int64_gen (bytes_gen F.maxfdata) );
    ("Tclunk", map (fun fid -> F.Tclunk { fid }) w16_gen);
    ("Tremove", map (fun fid -> F.Tremove { fid }) w16_gen);
    ("Tstat", map (fun fid -> F.Tstat { fid }) w16_gen);
    ( "Twstat",
      map2 (fun fid stat -> F.Twstat { fid; stat }) w16_gen dir_gen );
    ("Tflush", map (fun oldtag -> F.Tflush { oldtag }) w16_gen);
  ]

let rmsg_constructors : (string * F.rmsg QCheck.Gen.t) list =
  let open QCheck.Gen in
  [
    ("Rnop", return F.Rnop);
    ("Rerror", map (fun e -> F.Rerror e) err_gen);
    ( "Rauth",
      map2 (fun afid ticket -> F.Rauth { afid; ticket }) w16_gen (bytes_gen 64)
    );
    ("Rsession", map (fun chal -> F.Rsession { chal }) (bytes_gen 64));
    ( "Rattach",
      map2 (fun fid qid -> F.Rattach { fid; qid }) w16_gen qid_gen );
    ("Rclone", map (fun fid -> F.Rclone { fid }) w16_gen);
    ("Rwalk", map2 (fun fid qid -> F.Rwalk { fid; qid }) w16_gen qid_gen);
    ( "Rclwalk",
      map2 (fun newfid qid -> F.Rclwalk { newfid; qid }) w16_gen qid_gen );
    ("Ropen", map2 (fun fid qid -> F.Ropen { fid; qid }) w16_gen qid_gen);
    ( "Rcreate",
      map2 (fun fid qid -> F.Rcreate { fid; qid }) w16_gen qid_gen );
    ("Rread", map (fun data -> F.Rread { data }) (bytes_gen F.maxfdata));
    ("Rwrite", map (fun count -> F.Rwrite { count }) w16_gen);
    ("Rclunk", map (fun fid -> F.Rclunk { fid }) w16_gen);
    ("Rremove", map (fun fid -> F.Rremove { fid }) w16_gen);
    ("Rstat", map (fun stat -> F.Rstat { stat }) dir_gen);
    ("Rwstat", map (fun fid -> F.Rwstat { fid }) w16_gen);
    ("Rflush", return F.Rflush);
  ]

(* the exhaustiveness check: every constructor of tmsg/rmsg must appear
   in the lists above, or this match stops compiling when one is added *)
let tmsg_tag (t : F.tmsg) =
  match t with
  | Tnop -> "Tnop" | Tauth _ -> "Tauth" | Tsession _ -> "Tsession"
  | Tattach _ -> "Tattach" | Tclone _ -> "Tclone" | Twalk _ -> "Twalk"
  | Tclwalk _ -> "Tclwalk" | Topen _ -> "Topen" | Tcreate _ -> "Tcreate"
  | Tread _ -> "Tread" | Twrite _ -> "Twrite" | Tclunk _ -> "Tclunk"
  | Tremove _ -> "Tremove" | Tstat _ -> "Tstat" | Twstat _ -> "Twstat"
  | Tflush _ -> "Tflush"

let rmsg_tag (r : F.rmsg) =
  match r with
  | Rnop -> "Rnop" | Rerror _ -> "Rerror" | Rauth _ -> "Rauth"
  | Rsession _ -> "Rsession" | Rattach _ -> "Rattach" | Rclone _ -> "Rclone"
  | Rwalk _ -> "Rwalk" | Rclwalk _ -> "Rclwalk" | Ropen _ -> "Ropen"
  | Rcreate _ -> "Rcreate" | Rread _ -> "Rread" | Rwrite _ -> "Rwrite"
  | Rclunk _ -> "Rclunk" | Rremove _ -> "Rremove" | Rstat _ -> "Rstat"
  | Rwstat _ -> "Rwstat" | Rflush -> "Rflush"

let test_every_type_roundtrips () =
  (* 50 random instances of each constructor, so no arm hides behind a
     oneof's dice *)
  let check_msg name msg =
    let back = F.decode (F.encode msg) in
    if back <> msg then
      Alcotest.failf "%s did not survive encode/decode" name
  in
  List.iter
    (fun (name, g) ->
      for _ = 1 to 50 do
        let t = gen g in
        Alcotest.(check string) "generator arm matches" name (tmsg_tag t);
        check_msg name (F.T (gen w16_gen, t))
      done)
    tmsg_constructors;
  List.iter
    (fun (name, g) ->
      for _ = 1 to 50 do
        let r = gen g in
        Alcotest.(check string) "generator arm matches" name (rmsg_tag r);
        check_msg name (F.R (gen w16_gen, r))
      done)
    rmsg_constructors

let msg_gen =
  QCheck.Gen.(
    w16_gen >>= fun tag ->
    oneof
      [
        map (fun t -> F.T (tag, t)) (oneof (List.map snd tmsg_constructors));
        map (fun r -> F.R (tag, r)) (oneof (List.map snd rmsg_constructors));
      ])

(* [decode_opt] either answers or errors; anything else (an escaped
   exception, including ones Bad_message doesn't cover) fails the
   property *)
let decodes_cleanly bytes =
  match F.decode_opt bytes with
  | Ok _ | Error _ -> true
  | exception e ->
    QCheck.Test.fail_reportf "decode_opt raised %s on %S"
      (Printexc.to_string e) bytes

let prop_decode_arbitrary =
  QCheck.Test.make ~name:"9p decode never raises on arbitrary bytes"
    ~count:2000
    (QCheck.make (bytes_gen 300))
    decodes_cleanly

let prop_decode_truncated =
  QCheck.Test.make ~name:"9p decode never raises on truncated messages"
    ~count:2000
    (QCheck.make QCheck.Gen.(pair msg_gen (int_bound 1000)))
    (fun (msg, cut) ->
      let s = F.encode msg in
      decodes_cleanly (String.sub s 0 (min cut (String.length s))))

let prop_decode_mutated =
  QCheck.Test.make ~name:"9p decode never raises on bit-flipped messages"
    ~count:2000
    (QCheck.make QCheck.Gen.(triple msg_gen (int_bound 10000) (int_bound 255)))
    (fun (msg, pos, flip) ->
      let s = F.encode msg in
      let b = Bytes.of_string s in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
      decodes_cleanly (Bytes.to_string b))

(* ---- Inet.Ipaddr ---- *)

let prop_ipaddr_roundtrip =
  QCheck.Test.make ~name:"ipaddr print/parse roundtrip" ~count:1000
    (QCheck.make int32_gen)
    (fun bits ->
      let a = Inet.Ipaddr.of_int32 bits in
      match Inet.Ipaddr.of_string_opt (Inet.Ipaddr.to_string a) with
      | Some b -> Inet.Ipaddr.equal a b
      | None -> false)

let prop_ipaddr_never_raises =
  QCheck.Test.make ~name:"ipaddr of_string_opt never raises" ~count:2000
    (QCheck.make (bytes_gen 24))
    (fun s ->
      match Inet.Ipaddr.of_string_opt s with
      | Some _ | None -> true
      | exception e ->
        QCheck.Test.fail_reportf "of_string_opt raised %s on %S"
          (Printexc.to_string e) s)

let prop_ipaddr_quad =
  QCheck.Test.make ~name:"ipaddr parses what it prints, quad form"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(
         quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255)))
    (fun (a, b, c, d) ->
      let s = Printf.sprintf "%d.%d.%d.%d" a b c d in
      Inet.Ipaddr.to_string (Inet.Ipaddr.of_string s) = s)

(* ---- the TCP wire codec ---- *)

(* segments come off the wire, so the decoder faces the same contract
   as the 9P unmarshaller: round-trip what we encode, never raise on
   anything else.  Field widths follow the header: 16-bit ports and
   window, 32-bit seq/ack, 6 flag bits. *)
let tcp_word32_gen =
  QCheck.Gen.(
    map2 (fun hi lo -> (hi lsl 16) lor lo) (int_bound 0xffff) (int_bound 0xffff))

let tcp_seg_gen =
  QCheck.Gen.(
    map
      (fun ((sport, dport, window), (seq, ack, flags), data) ->
        (sport, dport, window, seq, ack, flags, data))
      (triple
         (triple w16_gen w16_gen w16_gen)
         (triple tcp_word32_gen tcp_word32_gen (int_bound 0x3f))
         (bytes_gen 200)))

let prop_tcp_roundtrip =
  QCheck.Test.make ~name:"tcp segment encode/decode roundtrip" ~count:1000
    (QCheck.make tcp_seg_gen)
    (fun (sport, dport, window, seq, ack, flags, data) ->
      let pkt = Inet.Tcp.encode ~sport ~dport ~seq ~ack ~flags ~window data in
      match Inet.Tcp.decode pkt with
      | Some s ->
        s.Inet.Tcp.s_sport = sport && s.s_dport = dport && s.s_seq = seq
        && s.s_ack = ack && s.s_flags = flags && s.s_window = window
        && s.s_data = data
      | None -> false)

let prop_tcp_decode_never_raises =
  QCheck.Test.make ~name:"tcp decode never raises on arbitrary bytes"
    ~count:2000
    (QCheck.make (bytes_gen 64))
    (fun s ->
      match Inet.Tcp.decode s with
      | Some _ | None -> true
      | exception e ->
        QCheck.Test.fail_reportf "decode raised %s on %S"
          (Printexc.to_string e) s)

let prop_tcp_decode_truncated =
  QCheck.Test.make ~name:"tcp decode never raises on truncated segments"
    ~count:1000
    (QCheck.make QCheck.Gen.(pair tcp_seg_gen (int_bound 250)))
    (fun ((sport, dport, window, seq, ack, flags, data), cut) ->
      let pkt = Inet.Tcp.encode ~sport ~dport ~seq ~ack ~flags ~window data in
      match Inet.Tcp.decode (String.sub pkt 0 (min cut (String.length pkt))) with
      | Some _ | None -> true
      | exception e ->
        QCheck.Test.fail_reportf "decode raised %s" (Printexc.to_string e))

let prop_tcp_decode_flip =
  QCheck.Test.make ~name:"tcp checksum rejects a bit flip" ~count:1000
    (QCheck.make QCheck.Gen.(triple tcp_seg_gen (int_bound 10000) (int_bound 7)))
    (fun ((sport, dport, window, seq, ack, flags, data), pos, bit) ->
      let pkt = Inet.Tcp.encode ~sport ~dport ~seq ~ack ~flags ~window data in
      let b = Bytes.of_string pkt in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      Inet.Tcp.decode (Bytes.to_string b) = None)

(* ---- the ndb tuple-file parser ---- *)

(* render an entry list in the paper's format — first pair on the
   header line at the left margin, the rest on tab-indented
   continuation lines — and sprinkle comments and blank lines, which
   the parser must ignore *)
let attr_gen =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 8))

let val_gen =
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:(char_range 'a' 'z') (0 -- 10);
        (* values with spaces must be quoted to survive *)
        map
          (fun (a, b) -> Printf.sprintf "%s %s" a b)
          (pair
             (string_size ~gen:(char_range 'a' 'z') (1 -- 5))
             (string_size ~gen:(char_range 'a' 'z') (1 -- 5)));
      ])

let entry_gen =
  QCheck.Gen.(list_size (1 -- 6) (pair attr_gen val_gen))

let render_entries entries =
  let b = Buffer.create 256 in
  let quote v = if String.contains v ' ' then "\"" ^ v ^ "\"" else v in
  List.iteri
    (fun i entry ->
      if i mod 2 = 0 then Buffer.add_string b "# a comment line\n";
      (match entry with
      | [] -> ()
      | (a, v) :: rest ->
        Printf.bprintf b "%s=%s\n" a (quote v);
        List.iter (fun (a, v) -> Printf.bprintf b "\t%s=%s\n" a (quote v)) rest);
      if i mod 3 = 0 then Buffer.add_string b "\n")
    entries;
  Buffer.contents b

let prop_ndb_roundtrip =
  QCheck.Test.make ~name:"ndb parses what it prints" ~count:500
    (QCheck.make QCheck.Gen.(list_size (0 -- 5) entry_gen))
    (fun entries ->
      let entries = List.filter (fun e -> e <> []) entries in
      Ndb.parse_string (render_entries entries) = entries)

(* continuation lines: an entry split one-pair-per-indented-line parses
   to the same entry as every pair packed onto the header line *)
let prop_ndb_continuation =
  QCheck.Test.make ~name:"ndb continuation lines join the entry" ~count:500
    (QCheck.make entry_gen)
    (fun entry ->
      (* space-free values, so both renderings are legal unquoted *)
      let entry =
        List.map
          (fun (a, v) ->
            (a, String.concat "" (String.split_on_char ' ' v)))
          entry
      in
      match entry with
      | [] -> true
      | (a0, v0) :: rest ->
        let split =
          Printf.sprintf "%s=%s\n" a0 v0
          ^ String.concat ""
              (List.map (fun (a, v) -> Printf.sprintf "\t%s=%s\n" a v) rest)
        in
        let packed =
          String.concat " "
            (List.map (fun (a, v) -> Printf.sprintf "%s=%s" a v) entry)
          ^ "\n"
        in
        Ndb.parse_string split = [ entry ]
        && Ndb.parse_string packed = [ entry ])

let prop_ndb_never_raises =
  QCheck.Test.make ~name:"ndb parser never raises" ~count:2000
    (QCheck.make (bytes_gen 400))
    (fun s ->
      match Ndb.parse_string s with
      | _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "parse_string raised %s on %S"
          (Printexc.to_string e) s)

let prop_ndb_comments_ignored =
  QCheck.Test.make ~name:"ndb comments and blanks change nothing" ~count:500
    (QCheck.make QCheck.Gen.(pair (list_size (1 -- 4) entry_gen) (bytes_gen 40)))
    (fun (entries, junk) ->
      let entries = List.filter (fun e -> e <> []) entries in
      (* a comment whose body is arbitrary bytes, minus newlines *)
      let junk = String.map (fun c -> if c = '\n' then '.' else c) junk in
      let plain = render_entries entries in
      let noisy =
        "# " ^ junk ^ "\n\n" ^ plain ^ "\n# trailing " ^ junk ^ "\n"
      in
      Ndb.parse_string noisy = Ndb.parse_string plain)

(* ---- the union mount table ---- *)

(* Random bind/unmount sequences over one mount point, checked against
   a pure reference model of the ordered member list (paper section 6:
   union directories).  Three properties: walk precedence (the first
   member holding a name wins), directory listing (every member's
   entries, duplicates suppressed), and MCREATE routing (creation lands
   in the first member bound with -c, or is refused). *)

type umem = Onto | Usrc of int

type uop =
  | Ubind of int * Vfs.Ns.flag * bool
  | Uunmount_src of int
  | Uunmount_all

let uflag_str = function
  | Vfs.Ns.Repl -> "Repl"
  | Vfs.Ns.Before -> "Before"
  | Vfs.Ns.After -> "After"

let uop_str = function
  | Ubind (i, f, mc) ->
    Printf.sprintf "bind%s /d%d %s" (if mc then " -c" else "") i (uflag_str f)
  | Uunmount_src i -> Printf.sprintf "unmount /d%d /u" i
  | Uunmount_all -> "unmount /u"

let uops_print ops = String.concat "; " (List.map uop_str ops)

(* overlapping source trees, so precedence and dedup are exercised *)
let usrc_files = [| [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ]; [ "a"; "d"; "e" ] |]
let uonto_files = [ "a"; "e" ]
let uuniverse = [ "a"; "b"; "c"; "d"; "e" ]
let umem_files = function Onto -> uonto_files | Usrc i -> usrc_files.(i)
let umem_dir = function Onto -> "/u" | Usrc i -> Printf.sprintf "/d%d" i

let umem_content m name =
  match m with
  | Onto -> "u:" ^ name
  | Usrc i -> Printf.sprintf "d%d:%s" i name

(* the reference model: None = nothing mounted on /u, Some l = the
   ordered union list with each member's MCREATE bit.  Mirrors the
   kernel rules: a fresh union keeps the mounted-upon directory as a
   creation-permitted member (except under Repl, which hides it);
   rebinding Repl over an existing union replaces the whole list *)
let umodel_apply u op =
  match (op, u) with
  | Ubind (i, f, mc), None ->
    let m = (Usrc i, mc) and onto = (Onto, true) in
    Some
      (match f with
      | Vfs.Ns.Repl -> [ m ]
      | Vfs.Ns.Before -> [ m; onto ]
      | Vfs.Ns.After -> [ onto; m ])
  | Ubind (i, f, mc), Some l ->
    let m = (Usrc i, mc) in
    Some
      (match f with
      | Vfs.Ns.Repl -> [ m ]
      | Vfs.Ns.Before -> m :: l
      | Vfs.Ns.After -> l @ [ m ])
  | Uunmount_src i, Some l -> (
    match List.filter (fun (m, _) -> m <> Usrc i) l with
    | [] -> None
    | l -> Some l)
  | Uunmount_src _, None -> None
  | Uunmount_all, _ -> None

let umodel_members = function None -> [ (Onto, true) ] | Some l -> l

let umodel_walk u name =
  List.find_opt (fun (m, _) -> List.mem name (umem_files m)) (umodel_members u)

let umodel_ls u =
  List.sort_uniq compare
    (List.concat_map (fun (m, _) -> umem_files m) (umodel_members u))

let umodel_create_target = function
  | None -> Some Onto
  | Some l -> Option.map fst (List.find_opt (fun (_, mc) -> mc) l)

let fresh_union_env () =
  let ram = Ninep.Ramfs.make ~name:"uroot" () in
  Ninep.Ramfs.mkdir ram "/u";
  List.iter
    (fun n -> Ninep.Ramfs.add_file ram ("/u/" ^ n) (umem_content Onto n))
    uonto_files;
  Array.iteri
    (fun i names ->
      let d = umem_dir (Usrc i) in
      Ninep.Ramfs.mkdir ram d;
      List.iter
        (fun n ->
          Ninep.Ramfs.add_file ram (d ^ "/" ^ n) (umem_content (Usrc i) n))
        names)
    usrc_files;
  let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs ram) ~uname:"glenda" in
  (ram, Vfs.Env.make ~ns ~uname:"glenda")

let uapply_real env = function
  | Ubind (i, f, mc) ->
    Vfs.Env.bind ~mcreate:mc env ~src:(umem_dir (Usrc i)) ~onto:"/u" f
  | Uunmount_src i -> Vfs.Env.unmount ~src:(umem_dir (Usrc i)) env ~onto:"/u"
  | Uunmount_all -> Vfs.Env.unmount env ~onto:"/u"

(* run a sequence against both the real mount table and the model *)
let urun ops =
  let ram, env = fresh_union_env () in
  let u =
    List.fold_left
      (fun u op ->
        uapply_real env op;
        umodel_apply u op)
      None ops
  in
  (ram, env, u)

let uops_arb =
  QCheck.make ~print:uops_print
    QCheck.Gen.(
      list_size (0 -- 12)
        (frequency
           [
             ( 6,
               map3
                 (fun i f mc -> Ubind (i, f, mc))
                 (int_bound 3)
                 (oneofl [ Vfs.Ns.Repl; Vfs.Ns.Before; Vfs.Ns.After ])
                 bool );
             (2, map (fun i -> Uunmount_src i) (int_bound 3));
             (1, return Uunmount_all);
           ]))

let prop_union_walk_order =
  QCheck.Test.make ~name:"union walk: first member holding the name wins"
    ~count:300 uops_arb (fun ops ->
      let _ram, env, u = urun ops in
      List.for_all
        (fun name ->
          let actual =
            match Vfs.Env.read_file env ("/u/" ^ name) with
            | s -> Some s
            | exception Vfs.Chan.Error _ -> None
          in
          let expected =
            Option.map (fun (m, _) -> umem_content m name) (umodel_walk u name)
          in
          actual = expected
          || QCheck.Test.fail_reportf "walk /u/%s: real %s, model %s" name
               (Option.value ~default:"<error>" actual)
               (Option.value ~default:"<error>" expected))
        uuniverse)

let prop_union_ls =
  QCheck.Test.make
    ~name:"union listing: all members, no duplicate entries" ~count:300
    uops_arb (fun ops ->
      let _ram, env, u = urun ops in
      let names =
        List.map (fun d -> d.Ninep.Fcall.d_name) (Vfs.Env.ls env "/u")
      in
      let sorted = List.sort compare names in
      (sorted = List.sort_uniq compare names
      || QCheck.Test.fail_reportf "duplicate entries in ls /u: %s"
           (String.concat "," names))
      && (sorted = umodel_ls u
         || QCheck.Test.fail_reportf "ls /u: real {%s}, model {%s}"
              (String.concat "," sorted)
              (String.concat "," (umodel_ls u))))

let prop_union_mcreate =
  QCheck.Test.make
    ~name:"union create: lands in the first MCREATE member, or refused"
    ~count:300 uops_arb (fun ops ->
      let ram, env, u = urun ops in
      let landed =
        match Vfs.Env.write_file env "/u/zz" "zz" with
        | () -> Ok ()
        | exception Vfs.Chan.Error e -> Error e
      in
      match (umodel_create_target u, landed) with
      | Some m, Ok () ->
        let holders =
          List.filter
            (fun d -> Ninep.Ramfs.exists ram (d ^ "/zz"))
            ("/u" :: List.init 4 (fun i -> Printf.sprintf "/d%d" i))
        in
        holders = [ umem_dir m ]
        || QCheck.Test.fail_reportf "create landed in {%s}, model says %s"
             (String.concat "," holders) (umem_dir m)
      | None, Error e ->
        let nl = String.length "forbids creation" and hl = String.length e in
        let rec has i =
          i + nl <= hl && (String.sub e i nl = "forbids creation" || has (i + 1))
        in
        has 0
        || QCheck.Test.fail_reportf "refusal with the wrong error: %s" e
      | Some m, Error e ->
        QCheck.Test.fail_reportf "model routes to %s but create failed: %s"
          (umem_dir m) e
      | None, Ok () ->
        QCheck.Test.fail_reportf
          "model says creation forbidden but the create succeeded")

(* ---- the stacked-cfs coherence property ----------------------------

   Random read / write-through / foreign-write streams through a
   2-tier cfs stack (two terminal caches over one shared mid tier over
   a ramfs origin) checked against a flat byte-array model: a fresh
   walk+open before every read must observe exactly the model contents
   (qid.vers propagates through the tiers), and the mid tier's
   upstream data reads stay within one-miss-per-block per version
   epoch (epochs advance only on foreign writes). *)

type sop =
  | SRead of int * int * int  (* client, offset, length *)
  | SWrite of int * int * int  (* client, offset, length — write-through *)
  | SForeign of int * int  (* offset, length — direct to origin *)

let sfile_size = 4096
let sbsize = 512

let sop_print = function
  | SRead (c, o, l) -> Printf.sprintf "read[%d] %d+%d" c o l
  | SWrite (c, o, l) -> Printf.sprintf "write[%d] %d+%d" c o l
  | SForeign (o, l) -> Printf.sprintf "foreign %d+%d" o l

let sops_print ops = String.concat "; " (List.map sop_print ops)

let sops_arb =
  QCheck.make ~print:sops_print
    QCheck.Gen.(
      list_size (1 -- 15)
        (frequency
           [
             ( 4,
               map3
                 (fun c o l -> SRead (c, o, l))
                 (int_bound 1)
                 (int_bound (sfile_size - 1))
                 (int_bound 600) );
             ( 3,
               map3
                 (fun c o l -> SWrite (c, o, 1 + l))
                 (int_bound 1)
                 (int_bound (sfile_size - 1))
                 (int_bound 199) );
             ( 2,
               map2
                 (fun o l -> SForeign (o, 1 + l))
                 (int_bound (sfile_size - 1))
                 (int_bound 199) );
           ]))

let swalk_open ?(mode = Ninep.Fcall.Oread) c =
  let root = Ninep.Client.attach c ~uname:"prop" ~aname:"" in
  let fid = Ninep.Client.walk_path c root [ "f" ] in
  ignore (Ninep.Client.open_ c fid mode);
  Ninep.Client.clunk c root;
  fid

let srun ops =
  let eng = Sim.Engine.create () in
  let ram = Ninep.Ramfs.make ~name:"origin" () in
  let init = String.make sfile_size 'z' in
  Ninep.Ramfs.add_file ram "/f" init;
  let up_ct, up_st = Ninep.Transport.pipe eng in
  ignore (Ninep.Server.serve eng (Ninep.Ramfs.fs ram) up_st);
  let cfg = { Cfs.bsize = sbsize; budget = 1024 * 1024; readahead = 4 } in
  let mid = Cfs.make ~config:cfg eng ~upstream:up_ct () in
  let ta = Cfs.make ~config:cfg eng ~upstream:(Cfs.connect mid) () in
  let tb = Cfs.make ~config:cfg eng ~upstream:(Cfs.connect mid) () in
  let foreign_ct, foreign_st = Ninep.Transport.pipe eng in
  ignore (Ninep.Server.serve eng (Ninep.Ramfs.fs ram) foreign_st);
  let model = Bytes.of_string init in
  let mismatches = ref [] in
  let foreign_writes = ref 0 in
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"driver" (fun () ->
         let ca = Ninep.Client.make eng (Cfs.transport ta) in
         Ninep.Client.session ca;
         let cb = Ninep.Client.make eng (Cfs.transport tb) in
         Ninep.Client.session cb;
         let cf = Ninep.Client.make eng foreign_ct in
         Ninep.Client.session cf;
         List.iteri
           (fun i op ->
             let fill len = String.make len (Char.chr (65 + (i mod 26))) in
             match op with
             | SRead (cl, off, len) ->
               let c = if cl = 0 then ca else cb in
               let fid = swalk_open c in
               let got =
                 Ninep.Client.read c fid ~offset:(Int64.of_int off)
                   ~count:len
               in
               Ninep.Client.clunk c fid;
               let want =
                 Bytes.sub_string model off (min len (sfile_size - off))
               in
               if got <> want then
                 mismatches := sop_print op :: !mismatches
             | SWrite (cl, off, len) ->
               let len = min len (sfile_size - off) in
               let c = if cl = 0 then ca else cb in
               let fid = swalk_open ~mode:Ninep.Fcall.Ordwr c in
               ignore
                 (Ninep.Client.write c fid ~offset:(Int64.of_int off)
                    (fill len));
               Ninep.Client.clunk c fid;
               Bytes.blit_string (fill len) 0 model off len
             | SForeign (off, len) ->
               let len = min len (sfile_size - off) in
               let fid = swalk_open ~mode:Ninep.Fcall.Ordwr cf in
               ignore
                 (Ninep.Client.write cf fid ~offset:(Int64.of_int off)
                    (fill len));
               Ninep.Client.clunk cf fid;
               incr foreign_writes;
               Bytes.blit_string (fill len) 0 model off len)
           ops;
         finished := true));
  Sim.Engine.run eng;
  (mid, !mismatches, !foreign_writes, !finished)

let prop_cfs_stack =
  QCheck.Test.make
    ~name:
      "cfs stack: contents match a flat store; origin reads within the \
       per-epoch block bound"
    ~count:300 sops_arb (fun ops ->
      let mid, mismatches, foreign, finished = srun ops in
      (finished || QCheck.Test.fail_reportf "driver did not finish")
      && (mismatches = []
         || QCheck.Test.fail_reportf "stale or wrong reads: %s"
              (String.concat "; " mismatches))
      &&
      let bound = (1 + foreign) * ((sfile_size / sbsize) + 1) in
      let misses = Cfs.counter mid "misses" in
      misses <= bound
      || QCheck.Test.fail_reportf
           "mid tier issued %d upstream data reads; one-miss-per-block \
            allows %d (epochs %d)"
           misses bound (1 + foreign))

let () =
  Alcotest.run "props"
    [
      ( "ninep-codec",
        [
          Alcotest.test_case "every message type roundtrips" `Quick
            test_every_type_roundtrips;
          QCheck_alcotest.to_alcotest prop_decode_arbitrary;
          QCheck_alcotest.to_alcotest prop_decode_truncated;
          QCheck_alcotest.to_alcotest prop_decode_mutated;
        ] );
      ( "ipaddr",
        [
          QCheck_alcotest.to_alcotest prop_ipaddr_roundtrip;
          QCheck_alcotest.to_alcotest prop_ipaddr_never_raises;
          QCheck_alcotest.to_alcotest prop_ipaddr_quad;
        ] );
      ( "tcp-codec",
        [
          QCheck_alcotest.to_alcotest prop_tcp_roundtrip;
          QCheck_alcotest.to_alcotest prop_tcp_decode_never_raises;
          QCheck_alcotest.to_alcotest prop_tcp_decode_truncated;
          QCheck_alcotest.to_alcotest prop_tcp_decode_flip;
        ] );
      ( "ndb",
        [
          QCheck_alcotest.to_alcotest prop_ndb_roundtrip;
          QCheck_alcotest.to_alcotest prop_ndb_continuation;
          QCheck_alcotest.to_alcotest prop_ndb_never_raises;
          QCheck_alcotest.to_alcotest prop_ndb_comments_ignored;
        ] );
      ( "union",
        [
          QCheck_alcotest.to_alcotest prop_union_walk_order;
          QCheck_alcotest.to_alcotest prop_union_ls;
          QCheck_alcotest.to_alcotest prop_union_mcreate;
        ] );
      ("cfs-stack", [ QCheck_alcotest.to_alcotest prop_cfs_stack ]);
    ]
