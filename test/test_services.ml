(* Tests for the user-level services of section 6: cpu, ftpfs, and the
   eia (UART) device of section 2.2. *)

module F = Ninep.Fcall

let in_world ?(horizon = 240.0) ?cpu_commands ~from f =
  Util.in_world ~horizon ?cpu_commands ~from f

(* ---- the cpu service ---- *)

let standard_commands =
  [
    ( "hostname",
      fun _env ~args:_ -> "helix\n" );
    ( "echo",
      fun _env ~args -> String.concat " " args ^ "\n" );
    ( "wc",
      (* reads a file from the TERMINAL's name space: the whole point *)
      fun env ~args ->
        match args with
        | [ path ] ->
          let data = Vfs.Env.read_file env ("/mnt/term" ^ path) in
          Printf.sprintf "%d chars\n" (String.length data)
        | _ -> "usage: wc file\n" );
    ( "tee",
      (* writes into the terminal's name space *)
      fun env ~args ->
        match args with
        | [ path; content ] ->
          Vfs.Env.write_file env ("/mnt/term" ^ path) content;
          "written\n"
        | _ -> "usage: tee file content\n" );
  ]

let with_cpu_world f =
  in_world ~cpu_commands:standard_commands ~from:"philw-gnot" (fun w env ->
      Sim.Time.sleep w.P9net.World.eng 0.1;
      f w env)

let test_cpu_simple_command () =
  with_cpu_world (fun w env ->
      let out =
        P9net.Cpu_cmd.cpu w.P9net.World.eng env ~host:"helix" ~cmd:"hostname"
          ()
      in
      Alcotest.(check string) "ran remotely" "helix\n" out)

let test_cpu_args () =
  with_cpu_world (fun w env ->
      let out =
        P9net.Cpu_cmd.cpu w.P9net.World.eng env ~host:"helix" ~cmd:"echo"
          ~args:[ "a"; "b"; "c" ] ()
      in
      Alcotest.(check string) "args passed" "a b c\n" out)

let test_cpu_reads_terminal_namespace () =
  with_cpu_world (fun w env ->
      (* the terminal-local file the remote command must see *)
      Vfs.Env.write_file env "/tmp/doc" "0123456789";
      let out =
        P9net.Cpu_cmd.cpu w.P9net.World.eng env ~host:"helix" ~cmd:"wc"
          ~args:[ "/tmp/doc" ] ()
      in
      Alcotest.(check string) "remote process read our file" "10 chars\n" out)

let test_cpu_writes_terminal_namespace () =
  with_cpu_world (fun w env ->
      Vfs.Env.write_file env "/tmp/out" "";
      let out =
        P9net.Cpu_cmd.cpu w.P9net.World.eng env ~host:"helix" ~cmd:"tee"
          ~args:[ "/tmp/out"; "fromhelix" ] ()
      in
      Alcotest.(check string) "ack" "written\n" out;
      Alcotest.(check string) "file landed on the terminal" "fromhelix"
        (Vfs.Env.read_file env "/tmp/out"))

let test_cpu_unknown_command () =
  with_cpu_world (fun w env ->
      let out =
        P9net.Cpu_cmd.cpu w.P9net.World.eng env ~host:"helix" ~cmd:"zork" ()
      in
      Alcotest.(check string) "error reported via cons"
        "cpu: unknown command: zork\n" out)

let test_cpu_from_ether_host () =
  (* also works over IL, not just Datakit *)
  in_world ~cpu_commands:standard_commands ~from:"musca" (fun w env ->
      Sim.Time.sleep w.P9net.World.eng 0.1;
      let out =
        P9net.Cpu_cmd.cpu w.P9net.World.eng env ~host:"helix" ~cmd:"hostname"
          ()
      in
      Alcotest.(check string) "over il" "helix\n" out)

(* ---- ftpfs ---- *)

let with_ftp f =
  in_world ~from:"musca" (fun w env ->
      let helix = P9net.World.host w "helix" in
      Ninep.Ramfs.add_file helix.P9net.Host.root "/usr/doc/readme"
        "files are the interface";
      Ninep.Ramfs.add_file helix.P9net.Host.root "/usr/doc/paper.ms"
        "The Organization of Networks in Plan 9";
      Ninep.Ramfs.mkdir helix.P9net.Host.root "/usr/incoming";
      P9net.Ftp.serve helix;
      Sim.Time.sleep helix.P9net.Host.eng 0.1;
      Ninep.Ramfs.mkdir (P9net.World.host w "musca").P9net.Host.root "/n/ftp";
      let mp = P9net.Ftp.mount env ~host:"helix" ~onto:"/n/ftp" () in
      f w env mp)

let names entries = List.map (fun d -> d.F.d_name) entries

let test_ftpfs_ls () =
  with_ftp (fun _w env _mp ->
      Alcotest.(check (list string)) "remote root listing"
        [ "dev"; "lib"; "mnt"; "n"; "net"; "tmp"; "usr" ]
        (names (Vfs.Env.ls env "/n/ftp"));
      Alcotest.(check (list string)) "subdir"
        [ "paper.ms"; "readme" ]
        (names (Vfs.Env.ls env "/n/ftp/usr/doc")))

let test_ftpfs_read () =
  with_ftp (fun _w env _mp ->
      Alcotest.(check string) "file contents"
        "files are the interface"
        (Vfs.Env.read_file env "/n/ftp/usr/doc/readme"))

let test_ftpfs_cache () =
  with_ftp (fun _w env mp ->
      ignore (Vfs.Env.read_file env "/n/ftp/usr/doc/readme");
      let before = (P9net.Ftp.counters mp).P9net.Ftp.ftp_commands in
      ignore (Vfs.Env.read_file env "/n/ftp/usr/doc/readme");
      ignore (Vfs.Env.read_file env "/n/ftp/usr/doc/readme");
      Alcotest.(check int) "no further wire traffic" before
        (P9net.Ftp.counters mp).P9net.Ftp.ftp_commands;
      Alcotest.(check bool) "cache hits counted" true
        ((P9net.Ftp.counters mp).P9net.Ftp.cache_hits > 0))

let test_ftpfs_write_and_readback () =
  with_ftp (fun w env _mp ->
      Vfs.Env.write_file env "/n/ftp/usr/incoming/upload" "stored via ftp";
      (* visible on the server's real tree *)
      let helix = P9net.World.host w "helix" in
      Alcotest.(check (option string)) "server received it"
        (Some "stored via ftp")
        (Ninep.Ramfs.read_file helix.P9net.Host.root "/usr/incoming/upload");
      Alcotest.(check string) "read back through the cache"
        "stored via ftp"
        (Vfs.Env.read_file env "/n/ftp/usr/incoming/upload"))

let test_ftpfs_remove () =
  with_ftp (fun w env _mp ->
      Vfs.Env.remove env "/n/ftp/usr/doc/readme";
      let helix = P9net.World.host w "helix" in
      Alcotest.(check bool) "gone on the server" false
        (Ninep.Ramfs.exists helix.P9net.Host.root "/usr/doc/readme"))

let test_ftpfs_missing_file () =
  with_ftp (fun _w env _mp ->
      Alcotest.(check bool) "missing file errors" true
        (try
           ignore (Vfs.Env.read_file env "/n/ftp/usr/doc/nope");
           false
         with Vfs.Chan.Error _ -> true))

(* ---- authentication (rexauth + 9P session/auth) ---- *)

let authkey = "1127-authkey"
let users = [ ("philw", "secret-philw"); ("presotto", "secret-presotto") ]

let test_ticket_roundtrip () =
  let t =
    P9net.Auth.make_ticket ~authkey ~user:"philw" ~challenge:"c1"
  in
  Alcotest.(check bool) "validates" true
    (P9net.Auth.validate ~authkey ~user:"philw" ~challenge:"c1" ~ticket:t);
  Alcotest.(check bool) "wrong challenge" false
    (P9net.Auth.validate ~authkey ~user:"philw" ~challenge:"c2" ~ticket:t);
  Alcotest.(check bool) "wrong user" false
    (P9net.Auth.validate ~authkey ~user:"ken" ~challenge:"c1" ~ticket:t);
  Alcotest.(check bool) "wrong key" false
    (P9net.Auth.validate ~authkey:"other" ~user:"philw" ~challenge:"c1"
       ~ticket:t);
  Alcotest.(check bool) "empty ticket" false
    (P9net.Auth.validate ~authkey ~user:"philw" ~challenge:"c1" ~ticket:"")

let with_auth_world f =
  in_world ~from:"philw-gnot" (fun w env ->
      (* the database says auth=musca, so rexauth runs there *)
      let musca = P9net.World.host w "musca" in
      P9net.Auth.serve musca ~users ~authkey;
      Sim.Time.sleep musca.P9net.Host.eng 0.1;
      f w env)

let test_get_ticket () =
  with_auth_world (fun _w env ->
      let t =
        P9net.Auth.get_ticket env ~user:"philw" ~secret:"secret-philw"
          ~challenge:"chal-42"
      in
      Alcotest.(check bool) "ticket is valid" true
        (P9net.Auth.validate ~authkey ~user:"philw" ~challenge:"chal-42"
           ~ticket:t))

let test_get_ticket_bad_secret () =
  with_auth_world (fun _w env ->
      match
        P9net.Auth.get_ticket env ~user:"philw" ~secret:"wrong"
          ~challenge:"c"
      with
      | _ -> Alcotest.fail "should be refused"
      | exception P9net.Auth.Auth_error _ -> ())

let test_get_ticket_unknown_user () =
  with_auth_world (fun _w env ->
      match
        P9net.Auth.get_ticket env ~user:"mallory" ~secret:"x" ~challenge:"c"
      with
      | _ -> Alcotest.fail "should be refused"
      | exception P9net.Auth.Auth_error _ -> ())

(* a secured file service: exportfs-style ramfs behind the auth hook;
   dialed from musca, which has IL *)
let with_secured_mount f =
  in_world ~from:"musca" (fun w env ->
      let auth_host = P9net.World.host w "musca" in
      P9net.Auth.serve auth_host ~users ~authkey;
      Sim.Time.sleep auth_host.P9net.Host.eng 0.1;
      let helix = P9net.World.host w "helix" in
      let secured = Ninep.Ramfs.make ~owner:"bootes" ~name:"secured" () in
      Ninep.Ramfs.add_file secured "/secrets" "the plan 9 dump password";
      ignore
        (P9net.Listener.start w.P9net.World.eng helix.P9net.Host.env
           ~addr:"il!*!19009"
           ~handler:(fun henv _conn ~data_fd ->
             let tr = P9net.Fdtrans.of_fd henv data_fd in
             let srv =
               Ninep.Server.serve
                 ~auth:(P9net.Auth.server_hook ~authkey)
                 w.P9net.World.eng (Ninep.Ramfs.fs secured) tr
             in
             Sim.Proc.join srv));
      Sim.Time.sleep w.P9net.World.eng 0.1;
      let conn = P9net.Dial.dial env "il!135.104.9.31!19009" in
      let client =
        Ninep.Client.make w.P9net.World.eng
          (P9net.Fdtrans.of_fd env conn.P9net.Dial.data_fd)
      in
      f env client)

let test_authenticated_attach () =
  with_secured_mount (fun env client ->
      let root =
        P9net.Auth.client_attach env client ~user:"philw"
          ~secret:"secret-philw" ~aname:""
      in
      let f = Ninep.Client.walk_path client root [ "secrets" ] in
      ignore (Ninep.Client.open_ client f Ninep.Fcall.Oread);
      Alcotest.(check string) "authorized read"
        "the plan 9 dump password"
        (Ninep.Client.read_all client f))

let test_attach_without_auth_refused () =
  with_secured_mount (fun _env client ->
      Ninep.Client.session client;
      match Ninep.Client.attach client ~uname:"philw" ~aname:"" with
      | _ -> Alcotest.fail "attach should be refused"
      | exception Ninep.Client.Err e ->
        Alcotest.(check string) "reason" "authentication required" e)

let test_attach_with_forged_ticket_refused () =
  with_secured_mount (fun _env client ->
      Ninep.Client.session client;
      match
        Ninep.Client.rpc client
          (Ninep.Fcall.Tauth
             { afid = 0; uname = "philw"; ticket = "forged0123456789" })
      with
      | Ninep.Fcall.Rauth _ -> Alcotest.fail "forged ticket accepted"
      | _ -> Alcotest.fail "unexpected reply"
      | exception Ninep.Client.Err e ->
        Alcotest.(check string) "reason" "authentication failed" e)

let test_bad_secret_cannot_attach () =
  with_secured_mount (fun env client ->
      match
        P9net.Auth.client_attach env client ~user:"philw" ~secret:"wrong"
          ~aname:""
      with
      | _ -> Alcotest.fail "should fail at the auth server"
      | exception P9net.Auth.Auth_error _ -> ())

(* ---- the eia (UART) device ---- *)

let with_serial f =
  let eng = Sim.Engine.create () in
  let a, b = Netsim.Serial.create_pair ~baud:9600 ~name:"eia1" eng in
  let ram = Ninep.Ramfs.make ~name:"root" () in
  Ninep.Ramfs.mkdir ram "/dev";
  let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs ram) ~uname:"bootes" in
  let env = Vfs.Env.make ~ns ~uname:"bootes" in
  P9net.Eia_dev.mount env ~index:1 a;
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"test" (fun () ->
         f eng env a b;
         finished := true));
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check bool) "test body completed" true !finished

let test_eia_files_listed () =
  with_serial (fun _eng env _a _b ->
      Alcotest.(check (list string)) "paper's ls /dev"
        [ "eia1"; "eia1ctl" ]
        (names (Vfs.Env.ls env "/dev")))

let test_eia_ls_l_shape () =
  with_serial (fun _eng env _a _b ->
      (* the paper: --rw-rw-rw- t 0 bootes bootes 0 ... eia1 *)
      let lines =
        Vfs.Env.ls env "/dev"
        |> List.map (fun d -> Format.asprintf "%a" F.pp_dir d)
      in
      List.iter
        (fun line ->
          Alcotest.(check bool) ("shape: " ^ line) true
            (String.length line > 30
            && line.[0] = '-'
            && String.sub line 1 9 = "rw-rw-rw-"))
        lines)

let test_eia_transmit_receive () =
  with_serial (fun eng env _a b ->
      let got = ref "" in
      Netsim.Serial.set_rx b (fun s -> got := !got ^ s);
      let fd = Vfs.Env.open_ env "/dev/eia1" F.Ordwr in
      ignore (Vfs.Env.write env fd "ATDT5551212");
      Sim.Time.sleep eng 1.0;
      Alcotest.(check string) "line got the bytes" "ATDT5551212" !got;
      Netsim.Serial.send b "CONNECT";
      Sim.Time.sleep eng 1.0;
      Alcotest.(check string) "we got the reply" "CONNECT"
        (Vfs.Env.read env fd 100);
      Vfs.Env.close env fd)

let test_eia_baud_via_ctl () =
  with_serial (fun _eng env a _b ->
      (* the paper's example: echo b1200 > /dev/eia1ctl *)
      Vfs.Env.write_file env "/dev/eia1ctl" "b1200";
      Alcotest.(check int) "line reclocked" 1200 (Netsim.Serial.baud a);
      Alcotest.(check string) "ctl reads back" "b1200\n"
        (Vfs.Env.read_file env "/dev/eia1ctl"))

let test_eia_bad_ctl () =
  with_serial (fun _eng env _a _b ->
      let fd = Vfs.Env.open_ env "/dev/eia1ctl" F.Owrite in
      Alcotest.(check bool) "bad command rejected" true
        (try
           ignore (Vfs.Env.write env fd "warp9");
           false
         with Vfs.Chan.Error _ -> true);
      Vfs.Env.close env fd)

let test_eia_timing_depends_on_baud () =
  with_serial (fun eng env _a b ->
      let arrival = ref 0. in
      Netsim.Serial.set_rx b (fun _ -> arrival := Sim.Engine.now eng);
      Vfs.Env.write_file env "/dev/eia1ctl" "b1200";
      let t0 = Sim.Engine.now eng in
      let fd = Vfs.Env.open_ env "/dev/eia1" F.Owrite in
      ignore (Vfs.Env.write env fd (String.make 120 'x'));
      Sim.Time.sleep eng 5.0;
      (* 120 bytes * 10 bits / 1200 baud = 1 second *)
      Alcotest.(check (float 1e-6)) "1200 baud timing" 1.0 (!arrival -. t0);
      Vfs.Env.close env fd)

(* ---- diskless boot ---- *)

let with_boot_world f =
  let w = P9net.World.bell_labs () in
  let helix = P9net.World.host w "helix" in
  let bootes = P9net.World.host w "bootes" in
  (* bootes is the network's file server and carries the boot file *)
  Ninep.Ramfs.add_file bootes.P9net.Host.root "/mips/9power"
    "MIPS R3000 kernel image for the gnot";
  P9net.Host.serve_exportfs bootes;
  ignore (P9net.Boot.serve helix);
  let finished = ref false in
  ignore
    (P9net.Host.spawn helix "boot-test" (fun _env ->
         Sim.Time.sleep helix.P9net.Host.eng 0.2;
         f w;
         finished := true));
  P9net.World.run ~until:240.0 w;
  Alcotest.(check bool) "test body completed" true !finished

let test_boot_discovery () =
  with_boot_world (fun w ->
      let cfg, kernel =
        P9net.Boot.boot_diskless w ~ether_addr:"08006902d15c" None
      in
      Alcotest.(check string) "assigned ip" "135.104.9.40"
        (Inet.Ipaddr.to_string cfg.P9net.Boot.bc_ip);
      Alcotest.(check string) "mask from the network entry"
        "255.255.255.0"
        (Inet.Ipaddr.to_string cfg.P9net.Boot.bc_mask);
      Alcotest.(check string) "boot file path" "/mips/9power"
        cfg.P9net.Boot.bc_bootf;
      Alcotest.(check (option string)) "file server resolved"
        (Some "135.104.9.2")
        (Option.map Inet.Ipaddr.to_string cfg.P9net.Boot.bc_fs);
      Alcotest.(check string) "kernel fetched over 9P/IL"
        "MIPS R3000 kernel image for the gnot" kernel)

let test_boot_unknown_station () =
  with_boot_world (fun w ->
      (* an ether address with no database entry gets no answer *)
      let nic =
        Netsim.Ether.attach w.P9net.World.ether
          (Netsim.Eaddr.of_string "08006902beef")
      in
      let port = Inet.Etherport.create w.P9net.World.eng nic in
      match P9net.Boot.discover ~timeout:0.3 ~retries:2 port with
      | _ -> Alcotest.fail "should not be configured"
      | exception P9net.Boot.Boot_error _ -> ())

(* ---- 9P over a serial line ---- *)

(* "When a protocol does not meet these requirements (for example, TCP
   does not preserve delimiters) we provide mechanisms to marshal
   messages before handing them to the system."  A serial line is the
   extreme case: a plain byte pipe.  Frame 9P messages over /dev/eia1
   and mount a file server through it. *)
let test_9p_over_serial_line () =
  let eng = Sim.Engine.create () in
  let a, b = Netsim.Serial.create_pair ~baud:19200 ~name:"eia1" eng in
  let mk_env line =
    let ram = Ninep.Ramfs.make ~name:"root" () in
    Ninep.Ramfs.mkdir ram "/dev";
    Ninep.Ramfs.mkdir ram "/n";
    let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs ram) ~uname:"u" in
    let env = Vfs.Env.make ~ns ~uname:"u" in
    P9net.Eia_dev.mount env ~index:1 line;
    (env, ram)
  in
  let env_a, _ram_a = mk_env a in
  let env_b, ram_b = mk_env b in
  Ninep.Ramfs.add_file ram_b "/tmp/over-the-wire" "9p at 19200 baud";
  let finished = ref false in
  (* side B serves its namespace over the serial line, framed *)
  ignore
    (Sim.Proc.spawn eng ~name:"server" (fun () ->
         let fd = Vfs.Env.open_ env_b "/dev/eia1" Ninep.Fcall.Ordwr in
         let tr = P9net.Fdtrans.of_fd ~framed:true env_b fd in
         ignore (P9net.Exportfs.serve eng env_b tr)));
  (* side A mounts it *)
  ignore
    (Sim.Proc.spawn eng ~name:"client" (fun () ->
         Sim.Time.sleep eng 0.1;
         let fd = Vfs.Env.open_ env_a "/dev/eia1" Ninep.Fcall.Ordwr in
         let tr = P9net.Fdtrans.of_fd ~framed:true env_a fd in
         let client = Ninep.Client.make eng tr in
         Ninep.Client.session client;
         Vfs.Env.mount env_a client ~aname:"/tmp" ~onto:"/n" Vfs.Ns.Repl;
         Alcotest.(check string) "read over the serial line"
           "9p at 19200 baud"
           (Vfs.Env.read_file env_a "/n/over-the-wire");
         finished := true));
  Sim.Engine.run ~until:300.0 eng;
  Alcotest.(check bool) "completed" true !finished

let () =
  Alcotest.run "services"
    [
      ( "cpu",
        [
          Alcotest.test_case "simple command" `Quick test_cpu_simple_command;
          Alcotest.test_case "arguments" `Quick test_cpu_args;
          Alcotest.test_case "reads terminal ns" `Quick
            test_cpu_reads_terminal_namespace;
          Alcotest.test_case "writes terminal ns" `Quick
            test_cpu_writes_terminal_namespace;
          Alcotest.test_case "unknown command" `Quick
            test_cpu_unknown_command;
          Alcotest.test_case "over il" `Quick test_cpu_from_ether_host;
        ] );
      ( "ftpfs",
        [
          Alcotest.test_case "ls" `Quick test_ftpfs_ls;
          Alcotest.test_case "read" `Quick test_ftpfs_read;
          Alcotest.test_case "cache" `Quick test_ftpfs_cache;
          Alcotest.test_case "write + readback" `Quick
            test_ftpfs_write_and_readback;
          Alcotest.test_case "remove" `Quick test_ftpfs_remove;
          Alcotest.test_case "missing file" `Quick test_ftpfs_missing_file;
        ] );
      ( "auth",
        [
          Alcotest.test_case "ticket roundtrip" `Quick test_ticket_roundtrip;
          Alcotest.test_case "get ticket via rexauth" `Quick test_get_ticket;
          Alcotest.test_case "bad secret" `Quick test_get_ticket_bad_secret;
          Alcotest.test_case "unknown user" `Quick
            test_get_ticket_unknown_user;
          Alcotest.test_case "authenticated attach" `Quick
            test_authenticated_attach;
          Alcotest.test_case "attach without auth" `Quick
            test_attach_without_auth_refused;
          Alcotest.test_case "forged ticket" `Quick
            test_attach_with_forged_ticket_refused;
          Alcotest.test_case "bad secret attach" `Quick
            test_bad_secret_cannot_attach;
        ] );
      ( "boot",
        [
          Alcotest.test_case "diskless boot" `Quick test_boot_discovery;
          Alcotest.test_case "unknown station" `Quick
            test_boot_unknown_station;
        ] );
      ( "eia",
        [
          Alcotest.test_case "files listed" `Quick test_eia_files_listed;
          Alcotest.test_case "ls -l shape" `Quick test_eia_ls_l_shape;
          Alcotest.test_case "transmit/receive" `Quick
            test_eia_transmit_receive;
          Alcotest.test_case "baud via ctl" `Quick test_eia_baud_via_ctl;
          Alcotest.test_case "bad ctl" `Quick test_eia_bad_ctl;
          Alcotest.test_case "baud timing" `Quick
            test_eia_timing_depends_on_baud;
          Alcotest.test_case "9p over a serial line" `Quick
            test_9p_over_serial_line;
        ] );
    ]
