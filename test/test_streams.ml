(* Tests for the streams framework (paper section 2.4). *)

let run_sim f =
  let eng = Sim.Engine.create () in
  let _p = Sim.Proc.spawn eng (fun () -> f eng) in
  Sim.Engine.run eng

(* a sink device that records everything written down the stream *)
let sink_device name =
  let written = ref [] in
  let dev =
    {
      Streams.dev_name = name;
      dev_dput = (fun b -> written := b :: !written);
      dev_close = ignore;
    }
  in
  (dev, written)

let test_write_reaches_device () =
  run_sim (fun eng ->
      let dev, written = sink_device "sink" in
      let s = Streams.create eng dev in
      Streams.write s "hello";
      match !written with
      | [ b ] ->
        Alcotest.(check string) "payload" "hello" (Block.to_string b);
        Alcotest.(check bool) "delimited" true b.Block.delim
      | _ -> Alcotest.fail "expected one block")

let test_large_write_splits () =
  run_sim (fun eng ->
      let dev, written = sink_device "sink" in
      let s = Streams.create eng dev in
      Streams.write s (String.make (Block.max_atomic_write + 5) 'x');
      match List.rev !written with
      | [ b1; b2 ] ->
        Alcotest.(check int) "first block 32k" Block.max_atomic_write
          (Block.len b1);
        Alcotest.(check bool) "first not delimited" false b1.Block.delim;
        Alcotest.(check int) "tail" 5 (Block.len b2);
        Alcotest.(check bool) "last delimited" true b2.Block.delim
      | _ -> Alcotest.fail "expected two blocks")

let test_input_readable () =
  run_sim (fun eng ->
      let s = Streams.create eng (Streams.null_device "null") in
      Streams.input s (Block.make ~delim:true "up");
      Alcotest.(check string) "read" "up" (Streams.read s 100))

let test_hangup_gives_eof () =
  run_sim (fun eng ->
      let s = Streams.create eng (Streams.null_device "null") in
      Streams.input s (Block.make ~delim:true "last");
      Streams.hangup s;
      Alcotest.(check string) "data" "last" (Streams.read s 100);
      Alcotest.(check string) "eof" "" (Streams.read s 100))

(* A module that upcases data going down, and counts blocks going up. *)
let upcase_factory () =
  {
    Streams.mi_name = "upcase";
    mi_close = ignore;
    mi_uput = (fun slot b -> Streams.pass_up slot b);
    mi_dput =
      (fun slot b ->
        let s = String.uppercase_ascii (Block.to_string b) in
        Streams.pass_down slot
          (Block.make ~kind:b.Block.kind ~delim:b.Block.delim s));
  }

let reverse_factory () =
  {
    Streams.mi_name = "reverse";
    mi_close = ignore;
    mi_uput = (fun slot b -> Streams.pass_up slot b);
    mi_dput =
      (fun slot b ->
        let s = Block.to_string b in
        let n = String.length s in
        Streams.pass_down slot
          (Block.make ~delim:b.Block.delim
             (String.init n (fun i -> s.[n - 1 - i]))));
  }

let test_push_transforms () =
  run_sim (fun eng ->
      let dev, written = sink_device "sink" in
      let s = Streams.create eng dev in
      Streams.push_impl s (upcase_factory ());
      Streams.write s "hello";
      match !written with
      | [ b ] -> Alcotest.(check string) "upcased" "HELLO" (Block.to_string b)
      | _ -> Alcotest.fail "expected one block")

let test_module_order () =
  (* push upcase then reverse: reverse is now at the top, so data is
     reversed first, then upcased *)
  run_sim (fun eng ->
      let dev, written = sink_device "sink" in
      let s = Streams.create eng dev in
      Streams.push_impl s (upcase_factory ());
      Streams.push_impl s (reverse_factory ());
      Alcotest.(check (list string)) "top first" [ "reverse"; "upcase" ]
        (Streams.modules s);
      Streams.write s "abc";
      match !written with
      | [ b ] -> Alcotest.(check string) "reversed, upcased" "CBA"
          (Block.to_string b)
      | _ -> Alcotest.fail "expected one block")

let test_pop_removes_top () =
  run_sim (fun eng ->
      let dev, written = sink_device "sink" in
      let s = Streams.create eng dev in
      Streams.push_impl s (upcase_factory ());
      Streams.pop s;
      Alcotest.(check (list string)) "empty" [] (Streams.modules s);
      Streams.write s "abc";
      match !written with
      | [ b ] -> Alcotest.(check string) "untouched" "abc" (Block.to_string b)
      | _ -> Alcotest.fail "expected one block")

let test_ctl_push_pop_by_name () =
  Streams.register_module "upcase" upcase_factory;
  run_sim (fun eng ->
      let dev, written = sink_device "sink" in
      let s = Streams.create eng dev in
      (* a control block interpreted by the stream system *)
      Streams.write_ctl s "push upcase";
      Alcotest.(check (list string)) "pushed" [ "upcase" ]
        (Streams.modules s);
      Streams.write s "abc";
      Streams.write_ctl s "pop";
      Streams.write s "def";
      match List.rev !written with
      | [ b1; b2 ] ->
        Alcotest.(check string) "while pushed" "ABC" (Block.to_string b1);
        Alcotest.(check string) "after pop" "def" (Block.to_string b2)
      | _ -> Alcotest.fail "expected two data blocks")

let test_ctl_hangup () =
  run_sim (fun eng ->
      let s = Streams.create eng (Streams.null_device "null") in
      Streams.write_ctl s "hangup";
      Alcotest.(check string) "reader sees eof" "" (Streams.read s 10))

let test_unknown_ctl_passes_to_module () =
  run_sim (fun eng ->
      let seen = ref [] in
      let spy =
        {
          Streams.mi_name = "spy";
          mi_close = ignore;
          mi_uput = (fun slot b -> Streams.pass_up slot b);
          mi_dput =
            (fun slot b ->
              if Block.is_ctl b then seen := Block.to_string b :: !seen
              else Streams.pass_down slot b);
        }
      in
      let s = Streams.create eng (Streams.null_device "null") in
      Streams.push_impl s spy;
      Streams.write_ctl s "connect 2048";
      Alcotest.(check (list string)) "module saw the command"
        [ "connect 2048" ] !seen)

let test_push_unregistered_fails () =
  run_sim (fun eng ->
      let s = Streams.create eng (Streams.null_device "null") in
      Alcotest.(check bool) "raises" true
        (try
           Streams.push s "no-such-module";
           false
         with Failure _ -> true))

let test_close_closes_modules_and_device () =
  run_sim (fun eng ->
      let closed_dev = ref false and closed_mod = ref false in
      let dev =
        {
          Streams.dev_name = "dev";
          dev_dput = ignore;
          dev_close = (fun () -> closed_dev := true);
        }
      in
      let m =
        {
          Streams.mi_name = "m";
          mi_close = (fun _ -> closed_mod := true);
          mi_uput = (fun slot b -> Streams.pass_up slot b);
          mi_dput = (fun slot b -> Streams.pass_down slot b);
        }
      in
      let s = Streams.create eng dev in
      Streams.push_impl s m;
      Streams.close s;
      Alcotest.(check bool) "device closed" true !closed_dev;
      Alcotest.(check bool) "module closed" true !closed_mod;
      Alcotest.(check bool) "marked" true (Streams.closed s))

let test_pipe_roundtrip () =
  let eng = Sim.Engine.create () in
  let a, b = Streams.Pipe.create eng in
  let got = ref "" in
  let _reader = Sim.Proc.spawn eng (fun () -> got := Streams.read b 100) in
  let _writer = Sim.Proc.spawn eng (fun () -> Streams.write a "through") in
  Sim.Engine.run eng;
  Alcotest.(check string) "pipe delivers" "through" !got

let test_pipe_bidirectional () =
  let eng = Sim.Engine.create () in
  let a, b = Streams.Pipe.create eng in
  let reply = ref "" in
  let _server =
    Sim.Proc.spawn eng (fun () ->
        let q = Streams.read b 100 in
        Streams.write b ("re:" ^ q))
  in
  let _client =
    Sim.Proc.spawn eng (fun () ->
        Streams.write a "ping";
        reply := Streams.read a 100)
  in
  Sim.Engine.run eng;
  Alcotest.(check string) "reply" "re:ping" !reply

let test_pipe_close_hangs_up_peer () =
  let eng = Sim.Engine.create () in
  let a, b = Streams.Pipe.create eng in
  let got = ref "sentinel" in
  let _reader = Sim.Proc.spawn eng (fun () -> got := Streams.read b 100) in
  let _closer =
    Sim.Proc.spawn eng (fun () ->
        Sim.Time.sleep eng 1.0;
        Streams.close a)
  in
  Sim.Engine.run eng;
  Alcotest.(check string) "peer sees eof" "" !got

let test_delimiters_preserved_through_pipe () =
  let eng = Sim.Engine.create () in
  let a, b = Streams.Pipe.create eng in
  let msgs = ref [] in
  let _reader =
    Sim.Proc.spawn eng (fun () ->
        let rec go () =
          let m = Streams.read b 4096 in
          if m <> "" then begin
            msgs := m :: !msgs;
            go ()
          end
        in
        go ())
  in
  let _writer =
    Sim.Proc.spawn eng (fun () ->
        Streams.write a "first message";
        Streams.write a "second";
        Streams.close a)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "boundaries kept"
    [ "first message"; "second" ]
    (List.rev !msgs)

(* ---- the standard registered modules ---- *)

let test_frame_module_roundtrip () =
  Streams.Stdmods.register ();
  let eng = Sim.Engine.create () in
  (* two streams whose devices are joined by a BYTE pipe that merges
     blocks (destroying boundaries), with [frame] pushed on both *)
  let wire_ab = Buffer.create 64 and wire_ba = Buffer.create 64 in
  let s_a = ref None and s_b = ref None in
  let mk name wire_out wire_in peer =
    let dev =
      {
        Streams.dev_name = name;
        dev_dput =
          (fun b ->
            (* byte-merging medium: delimiters are lost here *)
            Buffer.add_string wire_out (Block.to_string b);
            match !peer with
            | Some s ->
              let data = Buffer.contents wire_out in
              Buffer.clear wire_out;
              (* deliver in awkward 3-byte chunks *)
              let i = ref 0 in
              while !i < String.length data do
                let n = min 3 (String.length data - !i) in
                Streams.input s (Block.make (String.sub data !i n));
                i := !i + n
              done
            | None -> ());
        dev_close = ignore;
      }
    in
    ignore wire_in;
    Streams.create eng dev
  in
  let a = mk "a" wire_ab wire_ba s_b in
  let b = mk "b" wire_ba wire_ab s_a in
  s_a := Some a;
  s_b := Some b;
  Streams.write_ctl a "push frame";
  Streams.write_ctl b "push frame";
  let got = ref [] in
  let _reader =
    Sim.Proc.spawn eng (fun () ->
        for _ = 1 to 3 do
          got := Streams.read b 4096 :: !got
        done)
  in
  let _writer =
    Sim.Proc.spawn eng (fun () ->
        Streams.write a "first message";
        Streams.write a "second";
        Streams.write a "third one")
  in
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "boundaries restored by the module"
    [ "first message"; "second"; "third one" ]
    (List.rev !got)

let test_count_module () =
  Streams.Stdmods.register ();
  let eng = Sim.Engine.create () in
  let s = Streams.create eng (Streams.null_device "null") in
  Streams.write_ctl s "push count";
  let _p =
    Sim.Proc.spawn eng (fun () ->
        Streams.write s "12345";
        Streams.write s "678";
        Streams.input s (Block.make ~delim:true "up!"))
  in
  Sim.Engine.run eng;
  match
    Option.bind (Streams.find_slot s "count") Streams.Stdmods.counts
  with
  | Some (bd, byd, bu, byu) ->
    Alcotest.(check int) "blocks down" 2 bd;
    Alcotest.(check int) "bytes down" 8 byd;
    Alcotest.(check int) "blocks up" 1 bu;
    Alcotest.(check int) "bytes up" 3 byu
  | None -> Alcotest.fail "count module not found"

let test_delim_module () =
  Streams.Stdmods.register ();
  let eng = Sim.Engine.create () in
  let dev, written = sink_device "sink" in
  let s = Streams.create eng dev in
  Streams.push s "delim";
  Streams.write ~delim:false s "chunk";
  (match !written with
  | [ b ] -> Alcotest.(check bool) "forced delimiter" true b.Block.delim
  | _ -> Alcotest.fail "expected one block")

(* ---- wakeup cascades (regressions for schedule-explorer findings) ----

   Both bugs below were flushed out by `p9explore` (scenarios
   stream-backpressure and stream-read-cascade) and stalled under every
   policy, so the pinned repro schedule is plain fifo:

     p9explore -s stream-backpressure -p fifo
     p9explore -s stream-read-cascade -p fifo                          *)

(* one big drain must free every writer that now fits, not just the
   first: a put that leaves room passes the wakeup along *)
let test_writer_wakeup_cascades () =
  let eng = Sim.Engine.create () in
  let a, b = Streams.Pipe.create ~qlimit:1024 eng in
  let done1 = ref false and done2 = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"fill" (fun () ->
         Streams.write a (String.make 1200 'f')));
  let writer delay flag =
    ignore
      (Sim.Proc.spawn eng ~name:"writer" (fun () ->
           Sim.Time.sleep eng delay;
           Streams.write a (String.make 100 'w');
           flag := true))
  in
  writer 0.5 done1;
  writer 0.6 done2;
  ignore
    (Sim.Proc.spawn eng ~name:"consumer" (fun () ->
         Sim.Time.sleep eng 1.0;
         Alcotest.(check int) "drained backlog" 1200
           (String.length (Streams.read b 4096))));
  Sim.Engine.run eng;
  Alcotest.(check bool) "first writer completed" true !done1;
  Alcotest.(check bool) "second writer completed" true !done2;
  Alcotest.(check (list string)) "no stalled procs" []
    (Sim.Engine.stalled eng)

(* a read that stops at its byte count with data still queued must wake
   the next reader: the enqueue-time wakeup was consumed by the first *)
let test_reader_wakeup_cascades () =
  let eng = Sim.Engine.create () in
  let a, b = Streams.Pipe.create eng in
  let got = ref [] in
  let reader id delay =
    ignore
      (Sim.Proc.spawn eng ~name:"reader" (fun () ->
           Sim.Time.sleep eng delay;
           let data = Streams.read b 100 in
           got := (id, String.length data) :: !got))
  in
  reader 1 0.5;
  reader 2 0.6;
  ignore
    (Sim.Proc.spawn eng ~name:"producer" (fun () ->
         Sim.Time.sleep eng 1.0;
         Streams.write a (String.make 200 'm')));
  Sim.Engine.run eng;
  Alcotest.(check (list (pair int int)))
    "both readers got their half"
    [ (1, 100); (2, 100) ]
    (List.sort compare !got);
  Alcotest.(check (list string)) "no stalled procs" []
    (Sim.Engine.stalled eng)

let () =
  Alcotest.run "streams"
    [
      ( "basic",
        [
          Alcotest.test_case "write reaches device" `Quick
            test_write_reaches_device;
          Alcotest.test_case "large write splits" `Quick
            test_large_write_splits;
          Alcotest.test_case "input readable" `Quick test_input_readable;
          Alcotest.test_case "hangup eof" `Quick test_hangup_gives_eof;
        ] );
      ( "modules",
        [
          Alcotest.test_case "push transforms" `Quick test_push_transforms;
          Alcotest.test_case "module order" `Quick test_module_order;
          Alcotest.test_case "pop removes top" `Quick test_pop_removes_top;
          Alcotest.test_case "ctl push/pop" `Quick test_ctl_push_pop_by_name;
          Alcotest.test_case "ctl hangup" `Quick test_ctl_hangup;
          Alcotest.test_case "unknown ctl to module" `Quick
            test_unknown_ctl_passes_to_module;
          Alcotest.test_case "push unregistered" `Quick
            test_push_unregistered_fails;
          Alcotest.test_case "close cascades" `Quick
            test_close_closes_modules_and_device;
        ] );
      ( "stdmods",
        [
          Alcotest.test_case "frame restores boundaries" `Quick
            test_frame_module_roundtrip;
          Alcotest.test_case "count taps traffic" `Quick test_count_module;
          Alcotest.test_case "delim forces boundaries" `Quick
            test_delim_module;
        ] );
      ( "pipes",
        [
          Alcotest.test_case "roundtrip" `Quick test_pipe_roundtrip;
          Alcotest.test_case "bidirectional" `Quick test_pipe_bidirectional;
          Alcotest.test_case "close hangs up peer" `Quick
            test_pipe_close_hangs_up_peer;
          Alcotest.test_case "delimiters preserved" `Quick
            test_delimiters_preserved_through_pipe;
        ] );
      ( "wakeup-cascades",
        [
          Alcotest.test_case "writer cascade" `Quick
            test_writer_wakeup_cascades;
          Alcotest.test_case "reader cascade" `Quick
            test_reader_wakeup_cascades;
        ] );
    ]
