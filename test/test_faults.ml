(* Failure injection: connections dying under users, unreachable
   servers, total packet loss.  The organization must fail with errors,
   not hangs or crashes. *)

module F = Ninep.Fcall

let in_world ?seed ?(horizon = 240.0) ~from f =
  Util.in_world ?seed ~horizon ~from f

let test_dial_unreachable_host_times_out () =
  (* 135.104.9.77 does not exist: ARP can never resolve *)
  in_world ~from:"musca" (fun _w env ->
      match P9net.Dial.dial env "il!135.104.9.77!56" with
      | _ -> Alcotest.fail "dial should fail"
      | exception P9net.Dial.Dial_error _ -> ())

let test_dial_no_such_service () =
  in_world ~from:"musca" (fun _w env ->
      match P9net.Dial.dial env "il!135.104.9.31!29871" with
      | _ -> Alcotest.fail "dial should fail"
      | exception P9net.Dial.Dial_error _ -> ())

let test_total_loss_fails_cleanly () =
  let w = P9net.World.bell_labs () in
  Netsim.Ether.set_loss w.P9net.World.ether 1.0;
  let musca = P9net.World.host w "musca" in
  let failed = ref false in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         match P9net.Dial.dial env "il!135.104.9.31!56" with
         | _ -> ()
         | exception P9net.Dial.Dial_error _ -> failed := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "clean failure on a dead wire" true !failed

let test_remote_hangup_fails_reads () =
  (* import a tree, then the serving connection dies: subsequent
     operations must raise, not block forever *)
  in_world ~from:"philw-gnot" (fun w env ->
      let helix = P9net.World.host w "helix" in
      Ninep.Ramfs.add_file helix.P9net.Host.root "/tmp/f" "data";
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/tmp" ~onto:"/n" ~flag:Vfs.Ns.Repl ();
      Alcotest.(check string) "works before" "data"
        (Vfs.Env.read_file env "/n/f");
      (* murder every exportfs instance on helix *)
      let eng = w.P9net.World.eng in
      ignore eng;
      (* kill the underlying conversation by hanging up every il conv
         on the terminal side: simulate the circuit dropping by closing
         the dk switch line loss... simplest reliable method: kill the
         serving processes on helix *)
      Netsim.Ether.set_loss w.P9net.World.ether 1.0;
      Dk.Switch.set_loss w.P9net.World.dk 1.0;
      (* the 9P RPC must eventually fail via the transport death timer *)
      match Vfs.Env.read_file env "/n/f" with
      | _ ->
        (* cached/ramfs path would be a bug: the read goes remote *)
        Alcotest.fail "read should fail once the network is dead"
      | exception Vfs.Chan.Error _ -> ())

let test_il_peer_silence_kills_connection () =
  (* a one-sided wire: after connect, all frames vanish; the death
     timer must close the conversation and writers must see Hungup *)
  let w = P9net.World.bell_labs () in
  let musca = P9net.World.host w "musca" in
  let helix = P9net.World.host w "helix" in
  let outcome = ref "none" in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         let conn = P9net.Dial.dial env "il!135.104.9.31!56" in
         (* now the wire dies *)
         Netsim.Ether.set_loss w.P9net.World.ether 1.0;
         (* keep writing until the connection declares death *)
         (try
            for _ = 1 to 10_000 do
              ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "x");
              Sim.Time.sleep musca.P9net.Host.eng 0.5
            done;
            outcome := "survived"
          with Vfs.Chan.Error _ -> outcome := "hungup")))
  |> ignore;
  ignore helix;
  P9net.World.run ~until:240.0 w;
  Alcotest.(check string) "death timer fired" "hungup" !outcome

let test_9p_client_survives_bad_server_bytes () =
  (* garbage on the wire must not crash the demultiplexer *)
  let eng = Sim.Engine.create () in
  let ct, st = Ninep.Transport.pipe eng in
  let c = Ninep.Client.make eng ct in
  let got_err = ref false in
  ignore
    (Sim.Proc.spawn eng (fun () ->
         (* a server that answers garbage, then hangs up *)
         match st.Ninep.Transport.t_recv () with
         | Some _ ->
           st.Ninep.Transport.t_send "\xff\xff\xff\xffgarbage";
           st.Ninep.Transport.t_close ()
         | None -> ()));
  ignore
    (Sim.Proc.spawn eng (fun () ->
         try Ninep.Client.session c
         with Ninep.Client.Err _ -> got_err := true));
  Sim.Engine.run eng;
  Alcotest.(check bool) "rpc failed cleanly" true !got_err

let test_exportfs_survives_client_crash () =
  (* the terminal vanishes mid-session; helix's exportfs process must
     exit rather than leak *)
  in_world ~from:"philw-gnot" (fun w env ->
      let eng = w.P9net.World.eng in
      let conn = P9net.Dial.dial env "net!helix!exportfs" in
      let tr = P9net.Fdtrans.of_fd env conn.P9net.Dial.data_fd in
      let client = Ninep.Client.make eng tr in
      Ninep.Client.session client;
      let root = Ninep.Client.attach client ~uname:"philw" ~aname:"/" in
      ignore (Ninep.Client.stat client root);
      (* drop the connection without clunking *)
      P9net.Dial.hangup env conn;
      (* give the far side time to notice *)
      Sim.Time.sleep eng 5.0)

let test_stale_fd_after_close () =
  in_world ~from:"musca" (fun _w env ->
      let fd = Vfs.Env.open_ env "/net/cs" F.Ordwr in
      Vfs.Env.close env fd;
      match Vfs.Env.read env fd 10 with
      | _ -> Alcotest.fail "stale fd should fail"
      | exception Vfs.Chan.Error _ -> ())

let test_cs_write_garbage () =
  in_world ~from:"musca" (fun _w env ->
      let fd = Vfs.Env.open_ env "/net/cs" F.Ordwr in
      List.iter
        (fun q ->
          match Vfs.Env.write env fd q with
          | _ -> Alcotest.fail ("cs accepted garbage: " ^ q)
          | exception Vfs.Chan.Error _ -> ())
        [ ""; "!!"; "net!"; "nonet!host!svc"; "net!nonhost!svc" ];
      Vfs.Env.close env fd)

(* ---- transport recovery under injected fault schedules ----

   Direct IL/TCP stacks on a private segment, so tests can plant
   single-frame filters and read stack counters without a whole
   world. *)

let ip_pair ?(seed = 7) () =
  let eng = Sim.Engine.create ~seed () in
  let seg = Netsim.Ether.create ~name:"ether0" eng in
  let mk n addr =
    let nic =
      Netsim.Ether.attach seg
        (Netsim.Eaddr.of_string (Printf.sprintf "08006902%04x" n))
    in
    let port = Inet.Etherport.create eng nic in
    ( nic,
      Inet.Ip.create
        ~addr:(Inet.Ipaddr.of_string addr)
        ~mask:(Inet.Ipaddr.of_string "255.255.255.0")
        port )
  in
  let nic_a, ipa = mk 1 "10.0.0.1" in
  let nic_b, ipb = mk 2 "10.0.0.2" in
  (eng, seg, ipa, ipb, [ nic_a; nic_b ])

(* an ether frame carrying IL: IPv4 header (version byte 0x45, proto 40
   at offset 9) followed by the IL header, whose type byte sits at
   offset 24.  Type codes: Sync 0, Data 1, Ack 3. *)
let il_type pkt =
  if String.length pkt > 24 && pkt.[0] = '\x45' && Char.code pkt.[9] = 40
  then Some (Char.code pkt.[24])
  else None

let il_transfer ?(msgs = 1) ?(payload = fun i -> Printf.sprintf "msg-%03d" i)
    eng ila ilb =
  let got = ref [] in
  ignore
    (Sim.Proc.spawn eng ~name:"rx" (fun () ->
         let lis = Inet.Il.announce ilb ~port:7 in
         let conv = Inet.Il.listen lis in
         for _ = 1 to msgs do
           match Inet.Il.read_msg conv with
           | Some m -> got := m :: !got
           | None -> ()
         done));
  ignore
    (Sim.Proc.spawn eng ~name:"tx" (fun () ->
         let conv =
           Inet.Il.connect ila ~raddr:(Inet.Ipaddr.of_string "10.0.0.2")
             ~rport:7
         in
         for i = 1 to msgs do
           Inet.Il.write conv (payload i)
         done));
  got

(* the canonical schedule from DESIGN.md: 20% stationary burst loss,
   5% duplication, 5% reordering, 0.5 ms jitter *)
let canonical f =
  Netsim.Fault.set_burst f ~p_enter:0.05 ~p_exit:0.2 ~loss:1.0;
  Netsim.Fault.set_dup f 0.05;
  Netsim.Fault.set_reorder ~delay:2e-3 f 0.05;
  Netsim.Fault.set_jitter f 0.5e-3

let test_il_clean_run_takes_rtt_samples () =
  (* control for the Karn tests: an unfaulted transfer must sample *)
  let eng, _seg, ipa, ipb, _ = ip_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  let got = il_transfer ~msgs:5 eng ila ilb in
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check int) "all delivered" 5 (List.length !got);
  let c = Inet.Il.counters ila in
  Alcotest.(check int) "no retransmits" 0 c.Inet.Il.retransmits;
  Alcotest.(check bool) "rtt was sampled" true (c.Inet.Il.rtt_samples >= 1)

let test_il_karn_retransmit_takes_no_sample () =
  (* kill exactly the first Data frame: recovery retransmits it, and
     Karn's rule says the retransmitted message must never contribute
     an rtt sample *)
  let eng, seg, ipa, ipb, _ = ip_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  let dropped = ref false in
  Netsim.Fault.set_filter (Netsim.Ether.faults seg) (fun pkt ->
      match il_type pkt with
      | Some 1 when not !dropped ->
        dropped := true;
        Some "filter"
      | _ -> None);
  let got = il_transfer eng ila ilb in
  Sim.Engine.run ~until:120.0 eng;
  Alcotest.(check bool) "data frame was dropped" true !dropped;
  Alcotest.(check int) "message recovered" 1 (List.length !got);
  let c = Inet.Il.counters ila in
  Alcotest.(check bool) "recovery retransmitted" true
    (c.Inet.Il.retransmits >= 1);
  Alcotest.(check int) "Karn: retransmitted message not sampled" 0
    c.Inet.Il.rtt_samples

let test_il_karn_query_timeout_takes_no_sample () =
  (* deliver the data but kill its ack: the sender must recover through
     the Query/State exchange (never blind retransmission), and the
     timed-out message must still not feed the inflated round trip into
     srtt — the query-timeout half of Karn's rule *)
  let eng, seg, ipa, ipb, _ = ip_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  let acks = ref 0 in
  Netsim.Fault.set_filter (Netsim.Ether.faults seg) (fun pkt ->
      match il_type pkt with
      | Some 3 ->
        incr acks;
        (* the first Ack completes the connect handshake; the second
           acknowledges the first data message *)
        if !acks = 2 then Some "filter" else None
      | _ -> None);
  let got = il_transfer eng ila ilb in
  Sim.Engine.run ~until:120.0 eng;
  Alcotest.(check int) "message delivered" 1 (List.length !got);
  let c = Inet.Il.counters ila in
  Alcotest.(check bool) "timeout sent a query" true
    (c.Inet.Il.queries_sent >= 1);
  Alcotest.(check int) "no blind retransmission" 0 c.Inet.Il.retransmits;
  Alcotest.(check int) "Karn: timed-out message not sampled" 0
    c.Inet.Il.rtt_samples

let test_il_dup_delivered_exactly_once () =
  (* duplicate every frame: each message must come out exactly once, in
     order, with the suppressed copies counted *)
  let eng, seg, ipa, ipb, _ = ip_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  Netsim.Fault.set_dup (Netsim.Ether.faults seg) 1.0;
  let n = 30 in
  let got = il_transfer ~msgs:n eng ila ilb in
  Sim.Engine.run ~until:120.0 eng;
  let expect = List.init n (fun i -> Printf.sprintf "msg-%03d" (i + 1)) in
  Alcotest.(check (list string)) "each message exactly once, in order"
    expect
    (List.rev !got);
  let cb = Inet.Il.counters ilb in
  Alcotest.(check bool) "duplicates suppressed and counted" true
    (cb.Inet.Il.dups_dropped >= n)

let test_il_reorder_still_in_order () =
  (* late-delivered frames are overtaken on the wire; the receive
     window must put the stream back together *)
  let eng, seg, ipa, ipb, nics = ip_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  Netsim.Fault.set_reorder ~delay:4e-3 (Netsim.Ether.faults seg) 0.3;
  let n = 40 in
  let got = il_transfer ~msgs:n eng ila ilb in
  Sim.Engine.run ~until:240.0 eng;
  let expect = List.init n (fun i -> Printf.sprintf "msg-%03d" (i + 1)) in
  Alcotest.(check (list string)) "delivered in order" expect (List.rev !got);
  let reorders =
    List.fold_left
      (fun acc nic ->
        acc + (Netsim.Ether.nic_stats nic).Netsim.Ether.reorders_injected)
      0 nics
  in
  Alcotest.(check bool) "reordering actually happened" true (reorders > 0)

let test_il_converges_under_burst () =
  let eng, seg, ipa, ipb, _ = ip_pair ~seed:11 () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  canonical (Netsim.Ether.faults seg);
  let n = 60 in
  let got =
    il_transfer ~msgs:n ~payload:(fun _ -> String.make 500 'x') eng ila ilb
  in
  Sim.Engine.run ~until:600.0 eng;
  Alcotest.(check int) "all messages recovered" n (List.length !got);
  let c = Inet.Il.counters ila in
  Alcotest.(check bool) "loss forced recovery" true (c.Inet.Il.retransmits > 0)

let test_il_survives_link_flap () =
  (* 2 s dark out of every 5 for the first 30 s: retransmission must
     carry the stream across every down window *)
  let eng, seg, ipa, ipb, nics = ip_pair () in
  let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
  Netsim.Fault.flap (Netsim.Ether.faults seg) ~from_:0.0 ~until:30.0
    ~period:5.0 ~down:0.4;
  let n = 30 in
  let got = il_transfer ~msgs:n eng ila ilb in
  Sim.Engine.run ~until:300.0 eng;
  Alcotest.(check int) "all messages recovered" n (List.length !got);
  let drops =
    List.fold_left
      (fun acc nic ->
        acc + (Netsim.Ether.nic_stats nic).Netsim.Ether.drops_injected)
      0 nics
  in
  Alcotest.(check bool) "flap dropped frames" true (drops > 0)

let test_tcp_survives_burst () =
  let eng, seg, ipa, ipb, _ = ip_pair ~seed:11 () in
  let tcpa = Inet.Tcp.attach ipa and tcpb = Inet.Tcp.attach ipb in
  canonical (Netsim.Ether.faults seg);
  let msgs = 30 and size = 500 in
  let total = msgs * size in
  let got = ref 0 in
  ignore
    (Sim.Proc.spawn eng ~name:"rx" (fun () ->
         let lis = Inet.Tcp.announce tcpb ~port:7 in
         let conv = Inet.Tcp.listen lis in
         while !got < total do
           let s = Inet.Tcp.read conv 8192 in
           if s = "" then got := total else got := !got + String.length s
         done));
  ignore
    (Sim.Proc.spawn eng ~name:"tx" (fun () ->
         let conv =
           Inet.Tcp.connect tcpa ~raddr:(Inet.Ipaddr.of_string "10.0.0.2")
             ~rport:7
         in
         for _ = 1 to msgs do
           Inet.Tcp.write conv (String.make size 'y')
         done));
  Sim.Engine.run ~until:600.0 eng;
  Alcotest.(check int) "whole stream delivered" total !got;
  let c = Inet.Tcp.counters tcpa in
  Alcotest.(check bool) "loss forced recovery" true (c.Inet.Tcp.retransmits > 0)

let test_fault_schedule_determinism () =
  (* the whole transfer — faults, recovery, counters — must be
     byte-identical across same-seed runs *)
  let run_once () =
    let eng, seg, ipa, ipb, nics = ip_pair ~seed:3 () in
    let ila = Inet.Il.attach ipa and ilb = Inet.Il.attach ipb in
    canonical (Netsim.Ether.faults seg);
    let got =
      il_transfer ~msgs:40 ~payload:(fun _ -> String.make 300 'd') eng ila ilb
    in
    Sim.Engine.run ~until:600.0 eng;
    let c = Inet.Il.counters ila in
    let d, u, r =
      List.fold_left
        (fun (d, u, r) nic ->
          let s = Netsim.Ether.nic_stats nic in
          ( d + s.Netsim.Ether.drops_injected,
            u + s.Netsim.Ether.dups_injected,
            r + s.Netsim.Ether.reorders_injected ))
        (0, 0, 0) nics
    in
    Printf.sprintf "got=%d rexmit=%d queries=%d dups=%d inj=%d/%d/%d"
      (List.length !got) c.Inet.Il.retransmits c.Inet.Il.queries_sent
      (Inet.Il.counters ilb).Inet.Il.dups_dropped d u r
  in
  Alcotest.(check string) "same seed, same story" (run_once ()) (run_once ())

let test_9p_partition_then_redial () =
  (* a 9P mount over a partitioned link must fail with errors, never
     hang — and once the window passes, dialing again must work *)
  in_world ~from:"musca" ~horizon:900.0 (fun w env ->
      let eng = w.P9net.World.eng in
      let helix = P9net.World.host w "helix" in
      Ninep.Ramfs.add_file helix.P9net.Host.root "/tmp/f" "data";
      P9net.Exportfs.import eng env ~host:"helix" ~remote_root:"/tmp"
        ~onto:"/n" ~flag:Vfs.Ns.Repl ();
      Alcotest.(check string) "works before the partition" "data"
        (Vfs.Env.read_file env "/n/f");
      let now = Sim.Engine.now eng in
      Netsim.Fault.partition (P9net.World.ether_faults w) ~from_:now
        ~until:(now +. 60.);
      Netsim.Fault.partition (P9net.World.dk_faults w) ~from_:now
        ~until:(now +. 60.);
      (match Vfs.Env.read_file env "/n/f" with
      | _ -> Alcotest.fail "read must fail across the partition"
      | exception Vfs.Chan.Error _ -> ());
      (* the link is still down: keep dialing until the window passes *)
      let conn =
        P9net.Dial.redial env ~tries:20
          ~pause:(fun () -> Sim.Time.sleep eng 5.0)
          "net!helix!exportfs"
      in
      P9net.Dial.hangup env conn;
      (* a fresh import over the healed link works *)
      Ninep.Ramfs.mkdir (P9net.World.host w "musca").P9net.Host.root "/n2";
      P9net.Exportfs.import eng env ~host:"helix" ~remote_root:"/tmp"
        ~onto:"/n2" ~flag:Vfs.Ns.Repl ();
      Alcotest.(check string) "works after redial" "data"
        (Vfs.Env.read_file env "/n2/f"))

let () =
  Alcotest.run "faults"
    [
      ( "network",
        [
          Alcotest.test_case "unreachable host" `Quick
            test_dial_unreachable_host_times_out;
          Alcotest.test_case "no such service" `Quick
            test_dial_no_such_service;
          Alcotest.test_case "total loss" `Quick test_total_loss_fails_cleanly;
          Alcotest.test_case "il peer silence" `Quick
            test_il_peer_silence_kills_connection;
        ] );
      ( "transport",
        [
          Alcotest.test_case "il clean run samples rtt" `Quick
            test_il_clean_run_takes_rtt_samples;
          Alcotest.test_case "karn on retransmit" `Quick
            test_il_karn_retransmit_takes_no_sample;
          Alcotest.test_case "karn on query timeout" `Quick
            test_il_karn_query_timeout_takes_no_sample;
          Alcotest.test_case "il dup exactly once" `Quick
            test_il_dup_delivered_exactly_once;
          Alcotest.test_case "il reorder stays in order" `Quick
            test_il_reorder_still_in_order;
          Alcotest.test_case "il converges under burst" `Quick
            test_il_converges_under_burst;
          Alcotest.test_case "il survives link flap" `Quick
            test_il_survives_link_flap;
          Alcotest.test_case "tcp survives burst" `Quick
            test_tcp_survives_burst;
          Alcotest.test_case "same-seed determinism" `Quick
            test_fault_schedule_determinism;
        ] );
      ( "ninep",
        [
          Alcotest.test_case "garbage replies" `Quick
            test_9p_client_survives_bad_server_bytes;
          Alcotest.test_case "remote hangup" `Quick
            test_remote_hangup_fails_reads;
          Alcotest.test_case "client crash" `Quick
            test_exportfs_survives_client_crash;
          Alcotest.test_case "partition then redial" `Quick
            test_9p_partition_then_redial;
        ] );
      ( "api",
        [
          Alcotest.test_case "stale fd" `Quick test_stale_fd_after_close;
          Alcotest.test_case "cs garbage" `Quick test_cs_write_garbage;
        ] );
    ]
