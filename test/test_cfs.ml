(* Tests for the cfs caching proxy: hit/miss accounting, qid.vers
   invalidation, write-through coherence, LRU eviction, the ctl
   directory, the per-mount RPC counters, and bench determinism. *)

(* ramfs <- pipe <- cfs <- pipe <- client, plus a second direct client
   on the ramfs for "foreign" traffic behind the cache's back *)
let with_cfs ?config f =
  let eng = Sim.Engine.create () in
  let ram = Ninep.Ramfs.make ~name:"ram" () in
  let up_ct, up_st = Ninep.Transport.pipe eng in
  let _srv = Ninep.Server.serve eng (Ninep.Ramfs.fs ram) up_st in
  let cache = Cfs.make ?config eng ~upstream:up_ct () in
  let foreign_ct, foreign_st = Ninep.Transport.pipe eng in
  let _srv2 = Ninep.Server.serve eng (Ninep.Ramfs.fs ram) foreign_st in
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"client" (fun () ->
         let c = Ninep.Client.make eng (Cfs.transport cache) in
         Ninep.Client.session c;
         let fc = Ninep.Client.make eng foreign_ct in
         Ninep.Client.session fc;
         f eng ram cache c fc;
         finished := true));
  Sim.Engine.run eng;
  Alcotest.(check bool) "client body completed" true !finished

let open_file c path =
  let root = Ninep.Client.attach c ~uname:"philw" ~aname:"" in
  let fid = Ninep.Client.walk_path c root
      (List.filter (fun s -> s <> "") (String.split_on_char '/' path))
  in
  ignore (Ninep.Client.open_ c fid Ninep.Fcall.Oread);
  Ninep.Client.clunk c root;
  fid

let read_at c fid off count =
  Ninep.Client.read c fid ~offset:(Int64.of_int off) ~count

(* ---- hit/miss accounting ---- *)

let test_hit_miss () =
  with_cfs (fun _eng ram cache c _fc ->
      let body = String.make 3000 'a' in
      Ninep.Ramfs.add_file ram "/f" body;
      let fid = open_file c "/f" in
      Alcotest.(check string) "first read" body (Ninep.Client.read_all c fid);
      let m0 = Cfs.counter cache "misses" in
      let h0 = Cfs.counter cache "hits" in
      Alcotest.(check bool) "misses recorded" true (m0 > 0);
      Alcotest.(check bool) "at most the EOF probe hit" true (h0 <= 1);
      (* same data again: all from cache *)
      Alcotest.(check string) "re-read" body (Ninep.Client.read_all c fid);
      Alcotest.(check int) "no new misses" m0 (Cfs.counter cache "misses");
      Alcotest.(check bool) "hits recorded" true (Cfs.counter cache "hits" > h0);
      Alcotest.(check bool) "bytes cached" true (Cfs.cached_bytes cache > 0);
      Alcotest.(check int) "one file cached" 1 (Cfs.cached_files cache);
      Ninep.Client.clunk c fid)

let test_readahead_collapses_reads () =
  with_cfs (fun _eng ram cache c _fc ->
      (* 8192 bytes; 512-byte client reads; default 8x1024 read-ahead
         window means one upstream read for the whole file *)
      Ninep.Ramfs.add_file ram "/f" (String.make 8192 'b');
      let fid = open_file c "/f" in
      let rec go off =
        let d = read_at c fid off 512 in
        if d <> "" then go (off + String.length d)
      in
      go 0;
      (* one read-ahead fetch for the data plus one end-of-file probe
         (the cache cannot know the file size in advance) *)
      Alcotest.(check int) "two upstream reads" 2 (Cfs.counter cache "misses");
      Alcotest.(check int) "fifteen hits" 15 (Cfs.counter cache "hits");
      Ninep.Client.clunk c fid)

(* ---- qid.vers invalidation after a foreign write ---- *)

let test_foreign_write_invalidates () =
  with_cfs (fun _eng ram cache c fc ->
      Ninep.Ramfs.add_file ram "/f" "old contents";
      let fid = open_file c "/f" in
      Alcotest.(check string) "cold read" "old contents"
        (Ninep.Client.read_all c fid);
      Ninep.Client.clunk c fid;
      (* someone else rewrites the file behind the cache's back *)
      let ffid = open_file fc "/f" in
      ignore (Ninep.Client.clunk fc ffid);
      let froot = Ninep.Client.attach fc ~uname:"other" ~aname:"" in
      let wfid = Ninep.Client.walk_path fc froot [ "f" ] in
      ignore (Ninep.Client.open_ fc wfid Ninep.Fcall.Owrite);
      ignore (Ninep.Client.write fc wfid ~offset:0L "NEW contents");
      Ninep.Client.clunk fc wfid;
      Ninep.Client.clunk fc froot;
      (* the next walk carries the bumped qid.vers: blocks must drop *)
      Alcotest.(check int) "no invalidations yet" 0
        (Cfs.counter cache "invalidations");
      let fid2 = open_file c "/f" in
      Alcotest.(check bool) "invalidation counted" true
        (Cfs.counter cache "invalidations" > 0);
      Alcotest.(check string) "fresh contents" "NEW contents"
        (Ninep.Client.read_all c fid2);
      Ninep.Client.clunk c fid2)

(* ---- write-through coherence ---- *)

let test_write_through () =
  with_cfs (fun _eng ram cache c fc ->
      Ninep.Ramfs.add_file ram "/f" "aaaaaaaaaa";
      let root = Ninep.Client.attach c ~uname:"philw" ~aname:"" in
      let fid = Ninep.Client.walk_path c root [ "f" ] in
      ignore (Ninep.Client.open_ c fid Ninep.Fcall.Ordwr);
      Alcotest.(check string) "cold read" "aaaaaaaaaa"
        (Ninep.Client.read_all c fid);
      ignore (Ninep.Client.write c fid ~offset:3L "BBB");
      Alcotest.(check bool) "write-through counted" true
        (Cfs.counter cache "write_through" > 0);
      (* read-your-writes, from cache *)
      let m0 = Cfs.counter cache "misses" in
      Alcotest.(check string) "read-your-writes" "aaaBBBaaaa"
        (read_at c fid 0 64);
      Alcotest.(check int) "served from cache" m0 (Cfs.counter cache "misses");
      (* the server really has the bytes: ask it directly *)
      let ffid = open_file fc "/f" in
      Alcotest.(check string) "server has the write" "aaaBBBaaaa"
        (Ninep.Client.read_all fc ffid);
      Ninep.Client.clunk fc ffid;
      Ninep.Client.clunk c fid;
      (* our own write must not read as a foreign change at re-open *)
      let fid2 = open_file c "/f" in
      Alcotest.(check int) "no spurious invalidation" 0
        (Cfs.counter cache "invalidations");
      Ninep.Client.clunk c fid2;
      Ninep.Client.clunk c root;
      ignore ram)

(* ---- LRU eviction at budget ---- *)

let test_lru_eviction () =
  let config = { Cfs.default_config with bsize = 512; budget = 2048 } in
  with_cfs ~config (fun _eng ram cache c _fc ->
      Ninep.Ramfs.add_file ram "/big" (String.make 8192 'z');
      let fid = open_file c "/big" in
      Alcotest.(check int) "full read ok" 8192
        (String.length (Ninep.Client.read_all c fid));
      Alcotest.(check bool) "evictions happened" true
        (Cfs.counter cache "evictions" > 0);
      Alcotest.(check bool) "budget respected" true
        (Cfs.cached_bytes cache <= 2048);
      Ninep.Client.clunk c fid)

let test_budget_smaller_than_block () =
  (* pathological: nothing fits, but reads must still be correct *)
  let config = { Cfs.default_config with bsize = 1024; budget = 100 } in
  with_cfs ~config (fun _eng ram cache c _fc ->
      let body = String.init 5000 (fun i -> Char.chr (33 + (i mod 90))) in
      Ninep.Ramfs.add_file ram "/f" body;
      let fid = open_file c "/f" in
      Alcotest.(check string) "read correct" body (Ninep.Client.read_all c fid);
      Alcotest.(check bool) "budget respected" true
        (Cfs.cached_bytes cache <= 100);
      Ninep.Client.clunk c fid)

(* ---- the ctl/stats directory ---- *)

let test_ctl_fs () =
  with_cfs (fun eng ram cache c _fc ->
      Ninep.Ramfs.add_file ram "/f" (String.make 2000 'q');
      let fid = open_file c "/f" in
      ignore (Ninep.Client.read_all c fid);
      Ninep.Client.clunk c fid;
      (* mount the ctl directory over its own pipe *)
      let ct, st = Ninep.Transport.pipe eng in
      ignore (Ninep.Server.serve eng (Cfs.ctl_fs cache) st);
      let cc = Ninep.Client.make eng ct in
      Ninep.Client.session cc;
      let root = Ninep.Client.attach cc ~uname:"philw" ~aname:"" in
      let sfid = Ninep.Client.walk_path cc root [ "stats" ] in
      ignore (Ninep.Client.open_ cc sfid Ninep.Fcall.Oread);
      let stats = Ninep.Client.read_all cc sfid in
      Alcotest.(check string) "stats text matches" (Cfs.stats_text cache) stats;
      Alcotest.(check bool) "mentions misses" true
        (String.length stats > 0
        && Cfs.counter cache "misses" > 0);
      Ninep.Client.clunk cc sfid;
      (* flush through ctl *)
      Alcotest.(check bool) "cache occupied" true (Cfs.cached_bytes cache > 0);
      let cfid = Ninep.Client.walk_path cc root [ "ctl" ] in
      ignore (Ninep.Client.open_ cc cfid Ninep.Fcall.Owrite);
      ignore (Ninep.Client.write cc cfid ~offset:0L "flush");
      Alcotest.(check int) "cache emptied" 0 (Cfs.cached_bytes cache);
      (* readahead n *)
      ignore (Ninep.Client.write cc cfid ~offset:0L "readahead 4");
      Alcotest.(check int) "readahead set" 4 (Cfs.config cache).Cfs.readahead;
      (* bad command is an Rerror *)
      (try
         ignore (Ninep.Client.write cc cfid ~offset:0L "frobnicate");
         Alcotest.fail "bad ctl accepted"
       with Ninep.Client.Err _ -> ());
      Ninep.Client.clunk cc cfid;
      Ninep.Client.clunk cc root)

(* ---- ramfs qid.vers semantics the cache depends on ---- *)

let with_ramfs f =
  let eng = Sim.Engine.create () in
  let ram = Ninep.Ramfs.make ~name:"ram" () in
  let ct, st = Ninep.Transport.pipe eng in
  let _srv = Ninep.Server.serve eng (Ninep.Ramfs.fs ram) st in
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"client" (fun () ->
         let c = Ninep.Client.make eng ct in
         Ninep.Client.session c;
         f ram c;
         finished := true));
  Sim.Engine.run eng;
  Alcotest.(check bool) "client body completed" true !finished

let vers_of c path =
  let root = Ninep.Client.attach c ~uname:"u" ~aname:"" in
  let q = Ninep.Client.walk c root path in
  Ninep.Client.clunk c root;
  q.Ninep.Fcall.qvers

let test_ramfs_vers_write () =
  with_ramfs (fun ram c ->
      Ninep.Ramfs.add_file ram "/f" "x";
      let v0 = vers_of c "f" in
      let root = Ninep.Client.attach c ~uname:"u" ~aname:"" in
      let fid = Ninep.Client.walk_path c root [ "f" ] in
      ignore (Ninep.Client.open_ c fid Ninep.Fcall.Owrite);
      ignore (Ninep.Client.write c fid ~offset:0L "y");
      Ninep.Client.clunk c fid;
      Ninep.Client.clunk c root;
      Alcotest.(check bool) "write bumps vers" true (vers_of c "f" <> v0))

let test_ramfs_vers_wstat () =
  with_ramfs (fun ram c ->
      Ninep.Ramfs.add_file ram "/f" "x";
      let v0 = vers_of c "f" in
      let root = Ninep.Client.attach c ~uname:"u" ~aname:"" in
      let fid = Ninep.Client.walk_path c root [ "f" ] in
      let d = Ninep.Client.stat c fid in
      Ninep.Client.wstat c fid { d with Ninep.Fcall.d_mtime = 99l };
      Ninep.Client.clunk c fid;
      Ninep.Client.clunk c root;
      Alcotest.(check bool) "wstat bumps vers" true (vers_of c "f" <> v0))

let test_ramfs_vers_trunc () =
  with_ramfs (fun ram c ->
      Ninep.Ramfs.add_file ram "/f" "xxxx";
      let v0 = vers_of c "f" in
      let root = Ninep.Client.attach c ~uname:"u" ~aname:"" in
      let fid = Ninep.Client.walk_path c root [ "f" ] in
      ignore (Ninep.Client.open_ c fid ~trunc:true Ninep.Fcall.Owrite);
      Ninep.Client.clunk c fid;
      Ninep.Client.clunk c root;
      Alcotest.(check bool) "truncate bumps vers" true (vers_of c "f" <> v0))

(* ---- per-mount RPC counters in the mount driver ---- *)

let test_mnt_counters () =
  let eng = Sim.Engine.create () in
  let ram = Ninep.Ramfs.make ~name:"ram" () in
  Ninep.Ramfs.add_file ram "/f" "hello";
  let ct, st = Ninep.Transport.pipe eng in
  ignore (Ninep.Server.serve eng (Ninep.Ramfs.fs ram) st);
  let finished = ref false in
  ignore
    (Sim.Proc.spawn eng ~name:"client" (fun () ->
         let c = Ninep.Client.make eng ct in
         Ninep.Client.session c;
         let metrics = Obs.Metrics.create () in
         let mfs = Vfs.Mnt.fs c ~metrics ~name:"mnt:test" () in
         (* drive the mount driver through its server interface the way
            a channel would *)
         let n = Result.get_ok (mfs.Ninep.Server.fs_attach ~uname:"u" ~aname:"") in
         Alcotest.(check int) "Tattach counted" 1
           (Obs.Metrics.counter metrics "Tattach");
         let n = Result.get_ok (mfs.Ninep.Server.fs_walk n "f") in
         Result.get_ok (mfs.Ninep.Server.fs_open n Ninep.Fcall.Oread ~trunc:false);
         let data =
           Result.get_ok (mfs.Ninep.Server.fs_read n ~offset:0L ~count:64)
         in
         Alcotest.(check string) "read through mount" "hello" data;
         Alcotest.(check int) "Twalk counted" 1
           (Obs.Metrics.counter metrics "Twalk");
         Alcotest.(check int) "Tread counted" 1
           (Obs.Metrics.counter metrics "Tread");
         let text = Vfs.Mnt.stats_text metrics in
         Alcotest.(check bool) "stats text lists Tread" true
           (String.length text > 0);
         List.iter
           (fun name ->
             Alcotest.(check bool) (name ^ " line present") true
               (let re = name ^ " " in
                let rec find i =
                  i + String.length re <= String.length text
                  && (String.sub text i (String.length re) = re || find (i + 1))
                in
                find 0))
           Vfs.Mnt.rpc_names;
         finished := true));
  Sim.Engine.run eng;
  Alcotest.(check bool) "client body completed" true !finished

(* ---- determinism: same seed => identical BENCH_cfs.json ---- *)

let test_bench_deterministic () =
  let a = Cfs_bench.run ~seed:9 () in
  let b = Cfs_bench.run ~seed:9 () in
  Alcotest.(check string) "byte-identical JSON" a.Cfs_bench.res_json
    b.Cfs_bench.res_json;
  Alcotest.(check bool) "cached strictly fewer round trips" true
    (a.Cfs_bench.res_cached_rts < a.Cfs_bench.res_uncached_rts);
  Alcotest.(check bool) "cached strictly faster" true
    (a.Cfs_bench.res_cached_elapsed < a.Cfs_bench.res_uncached_elapsed)

let () =
  Alcotest.run "cfs"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss;
          Alcotest.test_case "read-ahead collapses reads" `Quick
            test_readahead_collapses_reads;
          Alcotest.test_case "foreign write invalidates" `Quick
            test_foreign_write_invalidates;
          Alcotest.test_case "write-through coherence" `Quick
            test_write_through;
          Alcotest.test_case "LRU eviction at budget" `Quick
            test_lru_eviction;
          Alcotest.test_case "budget smaller than block" `Quick
            test_budget_smaller_than_block;
          Alcotest.test_case "ctl/stats directory" `Quick test_ctl_fs;
        ] );
      ( "ramfs-vers",
        [
          Alcotest.test_case "write bumps" `Quick test_ramfs_vers_write;
          Alcotest.test_case "wstat bumps" `Quick test_ramfs_vers_wstat;
          Alcotest.test_case "truncate bumps" `Quick test_ramfs_vers_trunc;
        ] );
      ( "mnt",
        [ Alcotest.test_case "per-mount RPC counters" `Quick test_mnt_counters ] );
      ( "bench",
        [
          Alcotest.test_case "same seed, identical JSON" `Quick
            test_bench_deterministic;
        ] );
    ]
