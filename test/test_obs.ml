(* Observability: the trace core, the status/stats files, /net/log,
   the snoopy tap, and the exporters — including the determinism
   guarantee (same seed, same traffic => byte-identical traces). *)

module F = Ninep.Fcall

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* run a body on musca (an ether host, unlike philw-gnot) inside a
   booted bell-labs world *)
let in_world ?seed ?(horizon = 120.0) f =
  let w = P9net.World.bell_labs ?seed () in
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         f w env;
         finished := true));
  P9net.World.run ~until:horizon w;
  Alcotest.(check bool) "test body completed" true !finished

(* ---- trace core ---- *)

let test_disabled_by_default () =
  let eng = Sim.Engine.create () in
  Alcotest.(check bool) "no sink unless attached" true
    (Sim.Engine.obs eng = None);
  (* instrumented code runs happily with no sink *)
  ignore
    (Sim.Proc.spawn eng ~name:"p" (fun () -> Sim.Time.sleep eng 1.0));
  Sim.Engine.run eng

let test_trace_records_virtual_time () =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  ignore
    (Sim.Proc.spawn eng ~name:"sleeper" (fun () -> Sim.Time.sleep eng 2.5));
  Sim.Engine.run eng;
  (* spawn, block, wake, exit — all stamped with virtual time *)
  let events = Obs.Trace.events tr in
  Alcotest.(check bool) "events recorded" true (List.length events >= 4);
  let times = List.map (fun (t, _, _) -> t) events in
  Alcotest.(check (float 1e-9)) "last event at wake time" 2.5
    (List.fold_left max 0. times)

let test_ring_bounded () =
  (* 16 is the smallest ring the trace will make *)
  let tr = Obs.Trace.create ~capacity:16 () in
  for i = 1 to 20 do
    Obs.Trace.note tr ~sub:"t" (string_of_int i)
  done;
  Alcotest.(check int) "ring holds capacity" 16
    (List.length (Obs.Trace.events tr));
  Alcotest.(check int) "dropped counted" 4 (Obs.Trace.dropped tr);
  (* the survivors are the newest, in order *)
  let labels =
    List.map
      (fun (_, _, e) ->
        match e with Obs.Event.Note { msg; _ } -> msg | _ -> "?")
      (Obs.Trace.events tr)
  in
  Alcotest.(check (list string)) "newest kept"
    (List.init 16 (fun i -> string_of_int (i + 5)))
    labels

let test_metrics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.bump m "x" 2;
  Obs.Metrics.bump m "x" 3;
  Obs.Metrics.observe m "lat" 0.5;
  Obs.Metrics.observe m "lat" 1.5;
  Alcotest.(check int) "counter sums" 5 (Obs.Metrics.counter m "x");
  Alcotest.(check int) "unknown is zero" 0 (Obs.Metrics.counter m "y");
  match Obs.Metrics.histograms m with
  | [ ("lat", (count, sum, max_)) ] ->
    Alcotest.(check int) "hist count" 2 count;
    Alcotest.(check (float 1e-9)) "hist sum" 2.0 sum;
    Alcotest.(check (float 1e-9)) "hist max" 1.5 max_
  | _ -> Alcotest.fail "expected one histogram"

let test_quantiles_pinned () =
  let m = Obs.Metrics.create () in
  (* a 1..100 ms spread: log buckets double from 1 us, so 1..65 ms land
     at or below the 65.536 ms bound and 66..100 ms in the next bucket *)
  for ms = 1 to 100 do
    Obs.Metrics.observe m "lat" (float_of_int ms /. 1000.)
  done;
  let q p =
    match Obs.Metrics.quantile m "lat" p with
    | Some v -> v
    | None -> Alcotest.fail "histogram disappeared"
  in
  Alcotest.(check (float 1e-12)) "p50 pinned" 0.065536 (q 0.5);
  Alcotest.(check (float 1e-12)) "p95 pinned" 0.131072 (q 0.95);
  Alcotest.(check (float 1e-12)) "p99 pinned" 0.131072 (q 0.99);
  Alcotest.(check bool) "unknown histogram" true
    (Obs.Metrics.quantile m "nope" 0.5 = None);
  (* a single sample answers every quantile with its own bucket bound *)
  let m1 = Obs.Metrics.create () in
  Obs.Metrics.observe m1 "one" 0.0005;
  Alcotest.(check (float 1e-12)) "single p50" 0.000512
    (Option.get (Obs.Metrics.quantile m1 "one" 0.5));
  Alcotest.(check (float 1e-12)) "single p99" 0.000512
    (Option.get (Obs.Metrics.quantile m1 "one" 0.99))

let test_counters_json_quantiles () =
  let tr = Obs.Trace.create () in
  Obs.Trace.observe tr "9p.rpc.Tread" 0.002;
  Obs.Trace.observe tr "9p.rpc.Tread" 0.004;
  let json = Obs.Trace.counters_json tr in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " exported") true (contains json key))
    [ "\"p50_ms\""; "\"p95_ms\""; "\"p99_ms\"" ]

(* ---- the wall-clock profiler (unit, with a fake clock) ---- *)

let test_prof_report () =
  let now = ref 0. in
  let clock () =
    now := !now +. 0.001;
    !now
  in
  let p = Obs.Prof.create ~clock () in
  List.iter
    (fun label ->
      Obs.Prof.begin_event p;
      Obs.Prof.end_event p label)
    [ "il"; "il"; "app" ];
  let r = Obs.Prof.report p in
  Alcotest.(check int) "events" 3 r.Obs.Prof.r_events;
  Alcotest.(check bool) "events/s positive" true
    (r.Obs.Prof.r_events_per_sec > 0.);
  let share_sum =
    List.fold_left (fun a l -> a +. l.Obs.Prof.l_share) 0. r.Obs.Prof.r_layers
  in
  Alcotest.(check (float 1e-6)) "shares sum to 1" 1.0 share_sum;
  let json = Obs.Prof.report_json r in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in json") true
        (contains json ("\"" ^ key ^ "\"")))
    [
      "events"; "wall_s"; "dispatch_s"; "events_per_sec"; "minor_words";
      "minor_words_per_event"; "share_sum"; "layers"; "layer"; "share";
      "words_per_event";
    ];
  Alcotest.(check bool) "json is one line" true
    (not (String.contains json '\n'))

let test_prof_attached_to_engine () =
  let eng = Sim.Engine.create () in
  let p = Obs.Prof.create ~clock:Unix.gettimeofday () in
  Sim.Engine.attach_prof eng p;
  ignore
    (Sim.Proc.spawn eng ~name:"cfs-reader" (fun () -> Sim.Time.sleep eng 1.0));
  Sim.Engine.run eng;
  let r = Obs.Prof.report p in
  Alcotest.(check bool) "dispatches measured" true (r.Obs.Prof.r_events >= 2);
  (* the sleeper's resume is attributed to its handler class *)
  Alcotest.(check bool) "cfs layer attributed" true
    (List.exists (fun l -> l.Obs.Prof.l_label = "cfs") r.Obs.Prof.r_layers);
  let share_sum =
    List.fold_left (fun a l -> a +. l.Obs.Prof.l_share) 0. r.Obs.Prof.r_layers
  in
  Alcotest.(check (float 0.05)) "shares account for the run" 1.0 share_sum

(* ---- counter time-series (unit) ---- *)

let test_series () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.bump m "pkts" 1;
  let s = Obs.Series.create ~capacity:2 m in
  Alcotest.(check int) "empty" 0 (Obs.Series.count s);
  (* a bare read with no stored samples renders one live snapshot *)
  Alcotest.(check string) "live render" "pkts 1 0.500000\n"
    (Obs.Series.render ~live_ts:0.5 s);
  Obs.Series.sample s 1.0;
  Obs.Metrics.bump m "pkts" 1;
  Obs.Series.sample s 2.0;
  Obs.Metrics.bump m "pkts" 1;
  Obs.Series.sample s 3.0;
  (* capacity 2: the 1.0 sample fell off; oldest first *)
  Alcotest.(check int) "ring bounded" 2 (Obs.Series.count s);
  (match Obs.Series.samples s with
  | [ (t1, v1); (t2, v2) ] ->
    Alcotest.(check (float 1e-9)) "oldest kept" 2.0 t1;
    Alcotest.(check (float 1e-9)) "newest last" 3.0 t2;
    Alcotest.(check int) "older value" 2 (List.assoc "pkts" v1);
    Alcotest.(check int) "newer value" 3 (List.assoc "pkts" v2)
  | _ -> Alcotest.fail "expected two samples");
  let rendered = Obs.Series.render s in
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check int)
          ("three tokens: " ^ line)
          3
          (List.length (String.split_on_char ' ' line)))
    (String.split_on_char '\n' rendered);
  Obs.Series.clear s;
  Alcotest.(check int) "cleared" 0 (Obs.Series.count s)

(* ---- causal spans ---- *)

let test_span_nesting () =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  ignore
    (Sim.Proc.spawn eng ~name:"app" (fun () ->
         let outer = Obs.Span.enter tr ~layer:"app" "op.outer" in
         let inner = Obs.Span.enter tr ~layer:"il" "op.inner" in
         Alcotest.(check int) "inner is current" inner (Obs.Span.current tr);
         Sim.Time.sleep eng 1.0;
         Obs.Span.exit tr inner;
         Alcotest.(check int) "outer restored" outer (Obs.Span.current tr);
         Obs.Span.exit tr outer));
  Sim.Engine.run eng;
  Alcotest.(check int) "all closed" 0 (Obs.Span.open_count tr);
  Alcotest.(check string) "indented tree"
    "[app] op.outer\n  [il] op.inner\n"
    (Obs.Span.tree tr);
  (* the chrome export brackets every B with an E *)
  let json = Obs.Trace.to_chrome_json tr in
  let count needle =
    let n = String.length needle and l = String.length json in
    let rec go i acc =
      if i + n > l then acc
      else go (i + 1) (if String.sub json i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "two begins" 2 (count "\"ph\":\"B\"");
  Alcotest.(check bool) "balanced B/E" true
    (count "\"ph\":\"B\"" = count "\"ph\":\"E\"")

let test_span_orphan_at_drain () =
  (* a process that opens a span and then blocks forever: when the
     event queue empties the engine drains, force-closing the span as
     an orphan — the signature of a lost wakeup, with a name on it *)
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  let r = Sim.Rendez.create eng in
  ignore
    (Sim.Proc.spawn eng ~name:"stuck" (fun () ->
         ignore (Obs.Span.enter tr ~layer:"app" "op.never" : Obs.Span.h);
         Sim.Rendez.sleep r));
  Sim.Engine.run eng;
  Alcotest.(check int) "drained" 0 (Obs.Span.open_count tr);
  let orphaned =
    List.exists
      (fun (_, _, ev) ->
        match ev with
        | Obs.Event.Span_end { name = "op.never"; orphan = true; _ } -> true
        | _ -> false)
      (Obs.Trace.events tr)
  in
  Alcotest.(check bool) "orphan close recorded" true orphaned

let test_span_disabled_allocates_nothing () =
  (* the guard pattern at every instrumented call site: with no sink
     attached it must not allocate, or tracing would tax the fast path
     even when off *)
  let eng = Sim.Engine.create () in
  let acc = ref 0 in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let sp =
      match Sim.Engine.obs eng with
      | None -> Obs.Span.none
      | Some tr -> Obs.Span.enter tr ~layer:"il" "op"
    in
    acc := !acc + sp
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check int) "all none" 0 !acc;
  Alcotest.(check bool)
    (Printf.sprintf "no allocation when disabled (%.0f words)" words)
    true (words < 256.)

(* an import + remote read on musca: CS lookup, IL handshake, 9P
   attach — one causal trace, used by the determinism and golden tests *)
let import_span_run () =
  let w = P9net.World.bell_labs ~seed:5 () in
  let tr = Obs.Trace.create ~capacity:65536 () in
  Sim.Engine.attach_obs w.P9net.World.eng tr;
  let helix = P9net.World.host w "helix" in
  Ninep.Ramfs.add_file helix.P9net.Host.root "/tmp/motd" "have a nice day\n";
  let musca = P9net.World.host w "musca" in
  let finished = ref false in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
           ~remote_root:"/tmp" ~onto:"/n" ~flag:Vfs.Ns.Repl ();
         Alcotest.(check string) "read through the import"
           "have a nice day\n"
           (Vfs.Env.read_file env "/n/motd");
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "import completed" true !finished;
  tr

let test_span_ids_deterministic () =
  let tr1 = import_span_run () in
  let tr2 = import_span_run () in
  let span_lines tr =
    String.concat "\n"
      (List.filter
         (fun l -> contains l "span> " || contains l "span< ")
         (String.split_on_char '\n' (Obs.Trace.render ~limit:100000 tr)))
  in
  Alcotest.(check bool) "spans recorded" true
    (String.length (span_lines tr1) > 0);
  (* same seed => byte-identical span/trace ids, times and nesting *)
  Alcotest.(check string) "span streams identical" (span_lines tr1)
    (span_lines tr2);
  Alcotest.(check string) "trees identical" (Obs.Span.tree tr1)
    (Obs.Span.tree tr2)

let read_golden path =
  (* dune runtest runs us in test/; a manual `dune exec` from the
     workspace root sees the same file one level down *)
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_import_trace_golden () =
  let tr = import_span_run () in
  (* trace 1 is the client's import: the CS lookup, the IL dial, the
     9P session/attach, and the reads — one causal tree *)
  let tree = Obs.Span.tree ~trace:1 tr in
  Alcotest.(check string) "pinned span tree"
    (read_golden "golden/import_spans.txt")
    tree;
  let json = Obs.Trace.to_chrome_json tr in
  let count needle =
    let n = String.length needle and l = String.length json in
    let rec go i acc =
      if i + n > l then acc
      else go (i + 1) (if String.sub json i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  let begins = count "\"ph\":\"B\"" in
  Alcotest.(check bool) "spans exported" true (begins > 0);
  Alcotest.(check int) "balanced chrome B/E" begins (count "\"ph\":\"E\"")

let test_spans_survive_policies () =
  List.iter
    (fun sched ->
      let w = P9net.World.bell_labs ~seed:7 ~sched () in
      let tr = Obs.Trace.create ~capacity:65536 () in
      Sim.Engine.attach_obs w.P9net.World.eng tr;
      let musca = P9net.World.host w "musca" in
      ignore
        (P9net.Host.spawn musca "traffic" (fun env ->
             let conn = P9net.Dial.dial env "il!helix!echo" in
             ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
             ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
             P9net.Dial.hangup env conn));
      P9net.World.run ~until:120.0 w;
      let begins, ends =
        List.fold_left
          (fun (b, e) (_, _, ev) ->
            match ev with
            | Obs.Event.Span_begin _ -> (b + 1, e)
            | Obs.Event.Span_end _ -> (b, e + 1)
            | _ -> (b, e))
          (0, 0) (Obs.Trace.events tr)
      in
      Alcotest.(check bool) "spans recorded" true (begins > 0);
      Alcotest.(check int) "every span closed" begins ends;
      Alcotest.(check int) "none left open" 0 (Obs.Span.open_count tr))
    [ Sim.Sched.Shuffle 13; Sim.Sched.Adversarial ]

(* ---- exporters ---- *)

let test_chrome_json_shape () =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  ignore (Sim.Proc.spawn eng ~name:"p" (fun () -> Sim.Time.sleep eng 1.0));
  Sim.Engine.run eng;
  let json = Obs.Trace.to_chrome_json tr in
  Alcotest.(check bool) "traceEvents array" true
    (String.length json > 2
    && String.sub json 0 15 = "{\"traceEvents\":"
    && contains json "\"ph\":\"i\""
    && contains json "\"displayTimeUnit\":\"ms\"");
  let counters = Obs.Trace.counters_json tr in
  Alcotest.(check bool) "counters flat object" true
    (String.length counters >= 2 && counters.[0] = '{')

(* ---- snoopy rendering (pure, no stacks) ---- *)

(* hand-built frames, byte for byte *)
let arp_request =
  let b = Bytes.make 28 '\000' in
  Bytes.set b 7 '\001';
  (* sha *)
  Bytes.blit_string "\x08\x00\x69\x02\x00\x01" 0 b 8 6;
  (* spa 10.0.0.1 *)
  Bytes.blit_string "\x0a\x00\x00\x01" 0 b 14 4;
  (* tpa 10.0.0.2 *)
  Bytes.blit_string "\x0a\x00\x00\x02" 0 b 24 4;
  Bytes.to_string b

let ip_header ~proto ~len =
  let b = Bytes.make (20 + len) '\000' in
  Bytes.set b 0 '\x45';
  Bytes.set b 9 (Char.chr proto);
  (* 10.0.0.1 > 10.0.0.2 *)
  Bytes.blit_string "\x0a\x00\x00\x01" 0 b 12 4;
  Bytes.blit_string "\x0a\x00\x00\x02" 0 b 16 4;
  b

let il_frame =
  let b = ip_header ~proto:40 ~len:18 in
  Bytes.set b (20 + 4) '\001';
  (* type 1 = data *)
  Bytes.set b (20 + 7) '\x05';
  (* sport 5 *)
  Bytes.set b (20 + 9) '\x09';
  (* dport 9 *)
  Bytes.set b (20 + 13) '\x07';
  (* id 7 *)
  Bytes.set b (20 + 17) '\x03';
  (* ack 3 *)
  Bytes.to_string b

let udp_frame =
  let b = ip_header ~proto:17 ~len:8 in
  Bytes.set b (20 + 1) '\x35';
  (* sport 53 *)
  Bytes.set b (20 + 3) '\x35';
  Bytes.to_string b

let test_snoopy_renders_frames () =
  let r etype payload =
    Obs.Snoopy.render_frame ~time:0.5 ~src:"080069020001"
      ~dst:"ffffffffffff" ~etype payload
  in
  let arp = r 0x0806 arp_request in
  Alcotest.(check bool) "arp line" true
    (contains arp "arp who-has 10.0.0.2 tell 10.0.0.1");
  let il = r 0x0800 il_frame in
  Alcotest.(check bool) "il line" true
    (contains il "ip(10.0.0.1 > 10.0.0.2)" && contains il "il data 5>9");
  let udp = r 0x0800 udp_frame in
  Alcotest.(check bool) "udp line" true (contains udp "udp 53>53");
  Alcotest.(check string) "proto id: arp" "arp"
    (Obs.Snoopy.frame_proto ~etype:0x0806 arp_request);
  Alcotest.(check string) "proto id: il" "il"
    (Obs.Snoopy.frame_proto ~etype:0x0800 il_frame);
  Alcotest.(check string) "proto id: udp" "udp"
    (Obs.Snoopy.frame_proto ~etype:0x0800 udp_frame)

(* ---- the world: status/stats files, /net/log, the live tap ---- *)

(* a one-shot IL service on helix that waits for one message and then
   hangs up first, so the client can watch its end reach Closed *)
let oneshot_server w =
  let helix = P9net.World.host w "helix" in
  ignore
    (P9net.Host.spawn helix "oneshot" (fun env ->
         let ann = P9net.Dial.announce env "il!*!9991" in
         let conn = P9net.Dial.listen env ann in
         let dfd = P9net.Dial.accept env conn in
         ignore (Vfs.Env.read env dfd 4096);
         (* drop every reference so the connection closes first *)
         Vfs.Env.close env dfd;
         P9net.Dial.hangup env conn))

let test_status_lifecycle () =
  in_world (fun w env ->
      oneshot_server w;
      let conn = P9net.Dial.dial env "il!135.104.9.31!9991" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
      let status = Vfs.Env.read_file env (conn.P9net.Dial.dir ^ "/status") in
      Alcotest.(check bool) "established mid-flight" true
        (contains status "Established");
      Alcotest.(check bool) "retransmit count shown" true
        (contains status "rexmit");
      (* the server hangs up; EOF on data, then the close handshake *)
      let eof = Vfs.Env.read env conn.P9net.Dial.data_fd 4096 in
      Alcotest.(check string) "eof after remote hangup" "" eof;
      Sim.Time.sleep w.P9net.World.eng 5.0;
      let status' = Vfs.Env.read_file env (conn.P9net.Dial.dir ^ "/status") in
      Alcotest.(check bool) "closed after hangup" true
        (contains status' "Closed");
      P9net.Dial.hangup env conn)

let test_stats_file () =
  in_world (fun w env ->
      oneshot_server w;
      let conn = P9net.Dial.dial env "il!135.104.9.31!9991" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
      Sim.Time.sleep w.P9net.World.eng 1.0;
      let stats = Vfs.Env.read_file env (conn.P9net.Dial.dir ^ "/stats") in
      (* one "name value" line per counter *)
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " present") true
            (contains stats needle))
        [ "msgs_sent"; "msgs_rcvd"; "bytes_sent"; "retransmits"; "rtt_ms" ];
      Alcotest.(check bool) "counted our message" true
        (contains stats "msgs_sent 1");
      P9net.Dial.hangup env conn)

let test_net_log () =
  let w = P9net.World.bell_labs () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs w.P9net.World.eng tr;
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         let conn = P9net.Dial.dial env "il!helix!echo" in
         ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
         ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
         let log = Vfs.Env.read_file env "/net/log" in
         Alcotest.(check bool) "wire events in the log" true
           (contains log " tx " && contains log " rx ");
         Alcotest.(check bool) "scheduler events in the log" true
           (contains log "proc.");
         (* writing "clear" empties the ring *)
         let fd = Vfs.Env.open_ env "/net/log" F.Ordwr in
         ignore (Vfs.Env.write env fd "clear");
         Vfs.Env.close env fd;
         Alcotest.(check int) "cleared" 0
           (List.length (Obs.Trace.events tr));
         P9net.Dial.hangup env conn;
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "test body completed" true !finished

let test_snoop_tap () =
  let w = P9net.World.bell_labs () in
  let tap = P9net.Snoop.start w.P9net.World.ether in
  let helix = P9net.World.host w "helix" in
  ignore
    (P9net.Host.spawn helix "udp-sink" (fun env ->
         let ann = P9net.Dial.announce env "udp!*!3049" in
         let conn = P9net.Dial.listen env ann in
         let dfd = P9net.Dial.accept env conn in
         ignore (Vfs.Env.write env dfd (Vfs.Env.read env dfd 4096))));
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "traffic" (fun env ->
         let conn = P9net.Dial.dial env "il!helix!echo" in
         ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
         ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
         P9net.Dial.hangup env conn;
         let dg = P9net.Dial.dial env "udp!135.104.9.31!3049" in
         ignore (Vfs.Env.write env dg.P9net.Dial.data_fd "dgram");
         ignore (Vfs.Env.read env dg.P9net.Dial.data_fd 4096);
         P9net.Dial.hangup env dg;
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "traffic completed" true !finished;
  let counts = P9net.Snoop.proto_counts tap in
  let seen p = List.mem_assoc p counts && List.assoc p counts > 0 in
  (* three distinct frame types on the one wire *)
  Alcotest.(check bool) "arp captured" true (seen "arp");
  Alcotest.(check bool) "il captured" true (seen "il");
  Alcotest.(check bool) "udp captured" true (seen "udp");
  Alcotest.(check bool) "rendered lines" true
    (contains (P9net.Snoop.dump tap) "ether(")

(* ---- /net/metrics: counter time-series as a file ---- *)

let test_net_metrics_disabled () =
  in_world (fun _w env ->
      Alcotest.(check string) "no sink, no series" "tracing disabled\n"
        (Vfs.Env.read_file env "/net/metrics"))

let test_net_metrics () =
  let w = P9net.World.bell_labs () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs w.P9net.World.eng tr;
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         let ctl () = Vfs.Env.open_ env "/net/metrics" F.Ordwr in
         (* arm the sampler, then generate traffic across a few ticks *)
         let fd = ctl () in
         ignore (Vfs.Env.write env fd "start 0.5");
         Vfs.Env.close env fd;
         let conn = P9net.Dial.dial env "il!helix!echo" in
         ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
         ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
         Sim.Time.sleep w.P9net.World.eng 2.0;
         P9net.Dial.hangup env conn;
         let body = Vfs.Env.read_file env "/net/metrics" in
         let lines =
           List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
         in
         Alcotest.(check bool) "samples accumulated" true
           (List.length lines > 0);
         let stamps = Hashtbl.create 7 in
         List.iter
           (fun l ->
             match String.split_on_char ' ' l with
             | [ name; value; ts ] ->
               Alcotest.(check bool) ("named: " ^ l) true
                 (String.length name > 0);
               Alcotest.(check bool) ("integer value: " ^ l) true
                 (int_of_string_opt value <> None);
               (match float_of_string_opt ts with
               | Some t -> Hashtbl.replace stamps t ()
               | None -> Alcotest.fail ("bad timestamp: " ^ l))
             | _ -> Alcotest.fail ("not 'name value ts': " ^ l))
           lines;
         Alcotest.(check bool) "a time-series, not one snapshot" true
           (Hashtbl.length stamps >= 2);
         Alcotest.(check bool) "packet counters sampled" true
           (contains body "pkt.");
         (* stop the ticker, clear the ring: a fresh read falls back to
            one live snapshot (single timestamp = now) *)
         let fd = ctl () in
         ignore (Vfs.Env.write env fd "stop");
         Vfs.Env.close env fd;
         let fd = ctl () in
         ignore (Vfs.Env.write env fd "clear");
         Vfs.Env.close env fd;
         let live = Vfs.Env.read_file env "/net/metrics" in
         let live_stamps = Hashtbl.create 7 in
         List.iter
           (fun l ->
             match String.split_on_char ' ' l with
             | [ _; _; ts ] -> Hashtbl.replace live_stamps ts ()
             | _ -> ())
           (String.split_on_char '\n' live);
         Alcotest.(check int) "live snapshot: one timestamp" 1
           (Hashtbl.length live_stamps);
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "test body completed" true !finished

(* ---- 9P frame decoding in the snooper ---- *)

let test_snoopy_decodes_ninep () =
  let enc m = F.encode m in
  Alcotest.(check (option string)) "Tread"
    (Some "Tread tag=7 fid=3 offset=64 count=512")
    (Obs.Snoopy.render_ninep
       (enc (F.T (7, F.Tread { fid = 3; offset = 64L; count = 512 }))));
  Alcotest.(check (option string)) "Tattach"
    (Some "Tattach tag=1 fid=0 uname=philw aname=")
    (Obs.Snoopy.render_ninep
       (enc (F.T (1, F.Tattach { fid = 0; uname = "philw"; aname = "" }))));
  Alcotest.(check (option string)) "Rread count only"
    (Some "Rread tag=7 count=5")
    (Obs.Snoopy.render_ninep
       (enc (F.R (7, F.Rread { data = "hello" }))));
  (* garbage and truncation are rejected, never mis-rendered *)
  Alcotest.(check (option string)) "empty" None
    (Obs.Snoopy.render_ninep "");
  Alcotest.(check (option string)) "unknown type" None
    (Obs.Snoopy.render_ninep "\xff\x01\x00");
  let tread = enc (F.T (7, F.Tread { fid = 3; offset = 64L; count = 512 })) in
  Alcotest.(check (option string)) "truncated Tread" None
    (Obs.Snoopy.render_ninep (String.sub tread 0 5))

let test_snoop_sees_ninep () =
  (* an import runs 9P over IL on the shared wire: the promiscuous tap
     should label the frames with their 9P payloads *)
  let w = P9net.World.bell_labs () in
  let tap = P9net.Snoop.start w.P9net.World.ether in
  let helix = P9net.World.host w "helix" in
  Ninep.Ramfs.add_file helix.P9net.Host.root "/tmp/motd" "hello\n";
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
           ~remote_root:"/tmp" ~onto:"/n" ~flag:Vfs.Ns.Repl ();
         Alcotest.(check string) "read works" "hello\n"
           (Vfs.Env.read_file env "/n/motd");
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "import completed" true !finished;
  let dump = P9net.Snoop.dump tap in
  Alcotest.(check bool) "attach on the wire" true
    (contains dump "9p(Tattach");
  Alcotest.(check bool) "read on the wire" true (contains dump "9p(Tread");
  Alcotest.(check bool) "replies too" true (contains dump "9p(Rread")

(* ---- determinism: same seed, same traffic, same bytes ---- *)

let traced_run () =
  let w = P9net.World.bell_labs ~seed:3 () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs w.P9net.World.eng tr;
  let tap = P9net.Snoop.start w.P9net.World.ether in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "traffic" (fun env ->
         let conn = P9net.Dial.dial env "il!helix!echo" in
         ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
         ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
         P9net.Dial.hangup env conn));
  P9net.World.run ~until:60.0 w;
  ( Obs.Trace.render ~limit:100000 tr,
    Obs.Trace.to_chrome_json tr,
    Obs.Trace.counters_json tr,
    P9net.Snoop.dump tap )

let test_deterministic_traces () =
  let log1, chrome1, counters1, tap1 = traced_run () in
  let log2, chrome2, counters2, tap2 = traced_run () in
  Alcotest.(check bool) "trace non-trivial" true
    (String.length log1 > 1000);
  Alcotest.(check string) "event logs identical" log1 log2;
  Alcotest.(check string) "chrome exports identical" chrome1 chrome2;
  Alcotest.(check string) "counters identical" counters1 counters2;
  Alcotest.(check string) "captures identical" tap1 tap2

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick
            test_disabled_by_default;
          Alcotest.test_case "virtual time" `Quick
            test_trace_records_virtual_time;
          Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "quantiles pinned" `Quick test_quantiles_pinned;
          Alcotest.test_case "counters json quantiles" `Quick
            test_counters_json_quantiles;
          Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
        ] );
      ( "prof",
        [
          Alcotest.test_case "report shape" `Quick test_prof_report;
          Alcotest.test_case "engine attribution" `Quick
            test_prof_attached_to_engine;
        ] );
      ( "series",
        [ Alcotest.test_case "sampling ring" `Quick test_series ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "orphan at drain" `Quick
            test_span_orphan_at_drain;
          Alcotest.test_case "disabled allocates nothing" `Quick
            test_span_disabled_allocates_nothing;
          Alcotest.test_case "ids deterministic" `Quick
            test_span_ids_deterministic;
          Alcotest.test_case "import trace golden" `Quick
            test_import_trace_golden;
          Alcotest.test_case "survive schedule policies" `Quick
            test_spans_survive_policies;
        ] );
      ( "snoopy",
        [
          Alcotest.test_case "renders frames" `Quick
            test_snoopy_renders_frames;
          Alcotest.test_case "decodes 9p" `Quick test_snoopy_decodes_ninep;
          Alcotest.test_case "live tap" `Quick test_snoop_tap;
          Alcotest.test_case "sees 9p" `Quick test_snoop_sees_ninep;
        ] );
      ( "files",
        [
          Alcotest.test_case "status lifecycle" `Quick test_status_lifecycle;
          Alcotest.test_case "stats file" `Quick test_stats_file;
          Alcotest.test_case "/net/log" `Quick test_net_log;
          Alcotest.test_case "/net/metrics disabled" `Quick
            test_net_metrics_disabled;
          Alcotest.test_case "/net/metrics" `Quick test_net_metrics;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical traces" `Quick
            test_deterministic_traces;
        ] );
    ]
