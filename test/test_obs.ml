(* Observability: the trace core, the status/stats files, /net/log,
   the snoopy tap, and the exporters — including the determinism
   guarantee (same seed, same traffic => byte-identical traces). *)

module F = Ninep.Fcall

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* run a body on musca (an ether host, unlike philw-gnot) inside a
   booted bell-labs world *)
let in_world ?seed ?(horizon = 120.0) f =
  let w = P9net.World.bell_labs ?seed () in
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         f w env;
         finished := true));
  P9net.World.run ~until:horizon w;
  Alcotest.(check bool) "test body completed" true !finished

(* ---- trace core ---- *)

let test_disabled_by_default () =
  let eng = Sim.Engine.create () in
  Alcotest.(check bool) "no sink unless attached" true
    (Sim.Engine.obs eng = None);
  (* instrumented code runs happily with no sink *)
  ignore
    (Sim.Proc.spawn eng ~name:"p" (fun () -> Sim.Time.sleep eng 1.0));
  Sim.Engine.run eng

let test_trace_records_virtual_time () =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  ignore
    (Sim.Proc.spawn eng ~name:"sleeper" (fun () -> Sim.Time.sleep eng 2.5));
  Sim.Engine.run eng;
  (* spawn, block, wake, exit — all stamped with virtual time *)
  let events = Obs.Trace.events tr in
  Alcotest.(check bool) "events recorded" true (List.length events >= 4);
  let times = List.map (fun (t, _, _) -> t) events in
  Alcotest.(check (float 1e-9)) "last event at wake time" 2.5
    (List.fold_left max 0. times)

let test_ring_bounded () =
  (* 16 is the smallest ring the trace will make *)
  let tr = Obs.Trace.create ~capacity:16 () in
  for i = 1 to 20 do
    Obs.Trace.note tr ~sub:"t" (string_of_int i)
  done;
  Alcotest.(check int) "ring holds capacity" 16
    (List.length (Obs.Trace.events tr));
  Alcotest.(check int) "dropped counted" 4 (Obs.Trace.dropped tr);
  (* the survivors are the newest, in order *)
  let labels =
    List.map
      (fun (_, _, e) ->
        match e with Obs.Event.Note { msg; _ } -> msg | _ -> "?")
      (Obs.Trace.events tr)
  in
  Alcotest.(check (list string)) "newest kept"
    (List.init 16 (fun i -> string_of_int (i + 5)))
    labels

let test_metrics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.bump m "x" 2;
  Obs.Metrics.bump m "x" 3;
  Obs.Metrics.observe m "lat" 0.5;
  Obs.Metrics.observe m "lat" 1.5;
  Alcotest.(check int) "counter sums" 5 (Obs.Metrics.counter m "x");
  Alcotest.(check int) "unknown is zero" 0 (Obs.Metrics.counter m "y");
  match Obs.Metrics.histograms m with
  | [ ("lat", (count, sum, max_)) ] ->
    Alcotest.(check int) "hist count" 2 count;
    Alcotest.(check (float 1e-9)) "hist sum" 2.0 sum;
    Alcotest.(check (float 1e-9)) "hist max" 1.5 max_
  | _ -> Alcotest.fail "expected one histogram"

(* ---- exporters ---- *)

let test_chrome_json_shape () =
  let eng = Sim.Engine.create () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs eng tr;
  ignore (Sim.Proc.spawn eng ~name:"p" (fun () -> Sim.Time.sleep eng 1.0));
  Sim.Engine.run eng;
  let json = Obs.Trace.to_chrome_json tr in
  Alcotest.(check bool) "traceEvents array" true
    (String.length json > 2
    && String.sub json 0 15 = "{\"traceEvents\":"
    && contains json "\"ph\":\"i\""
    && contains json "\"displayTimeUnit\":\"ms\"");
  let counters = Obs.Trace.counters_json tr in
  Alcotest.(check bool) "counters flat object" true
    (String.length counters >= 2 && counters.[0] = '{')

(* ---- snoopy rendering (pure, no stacks) ---- *)

(* hand-built frames, byte for byte *)
let arp_request =
  let b = Bytes.make 28 '\000' in
  Bytes.set b 7 '\001';
  (* sha *)
  Bytes.blit_string "\x08\x00\x69\x02\x00\x01" 0 b 8 6;
  (* spa 10.0.0.1 *)
  Bytes.blit_string "\x0a\x00\x00\x01" 0 b 14 4;
  (* tpa 10.0.0.2 *)
  Bytes.blit_string "\x0a\x00\x00\x02" 0 b 24 4;
  Bytes.to_string b

let ip_header ~proto ~len =
  let b = Bytes.make (20 + len) '\000' in
  Bytes.set b 0 '\x45';
  Bytes.set b 9 (Char.chr proto);
  (* 10.0.0.1 > 10.0.0.2 *)
  Bytes.blit_string "\x0a\x00\x00\x01" 0 b 12 4;
  Bytes.blit_string "\x0a\x00\x00\x02" 0 b 16 4;
  b

let il_frame =
  let b = ip_header ~proto:40 ~len:18 in
  Bytes.set b (20 + 4) '\001';
  (* type 1 = data *)
  Bytes.set b (20 + 7) '\x05';
  (* sport 5 *)
  Bytes.set b (20 + 9) '\x09';
  (* dport 9 *)
  Bytes.set b (20 + 13) '\x07';
  (* id 7 *)
  Bytes.set b (20 + 17) '\x03';
  (* ack 3 *)
  Bytes.to_string b

let udp_frame =
  let b = ip_header ~proto:17 ~len:8 in
  Bytes.set b (20 + 1) '\x35';
  (* sport 53 *)
  Bytes.set b (20 + 3) '\x35';
  Bytes.to_string b

let test_snoopy_renders_frames () =
  let r etype payload =
    Obs.Snoopy.render_frame ~time:0.5 ~src:"080069020001"
      ~dst:"ffffffffffff" ~etype payload
  in
  let arp = r 0x0806 arp_request in
  Alcotest.(check bool) "arp line" true
    (contains arp "arp who-has 10.0.0.2 tell 10.0.0.1");
  let il = r 0x0800 il_frame in
  Alcotest.(check bool) "il line" true
    (contains il "ip(10.0.0.1 > 10.0.0.2)" && contains il "il data 5>9");
  let udp = r 0x0800 udp_frame in
  Alcotest.(check bool) "udp line" true (contains udp "udp 53>53");
  Alcotest.(check string) "proto id: arp" "arp"
    (Obs.Snoopy.frame_proto ~etype:0x0806 arp_request);
  Alcotest.(check string) "proto id: il" "il"
    (Obs.Snoopy.frame_proto ~etype:0x0800 il_frame);
  Alcotest.(check string) "proto id: udp" "udp"
    (Obs.Snoopy.frame_proto ~etype:0x0800 udp_frame)

(* ---- the world: status/stats files, /net/log, the live tap ---- *)

(* a one-shot IL service on helix that waits for one message and then
   hangs up first, so the client can watch its end reach Closed *)
let oneshot_server w =
  let helix = P9net.World.host w "helix" in
  ignore
    (P9net.Host.spawn helix "oneshot" (fun env ->
         let ann = P9net.Dial.announce env "il!*!9991" in
         let conn = P9net.Dial.listen env ann in
         let dfd = P9net.Dial.accept env conn in
         ignore (Vfs.Env.read env dfd 4096);
         (* drop every reference so the connection closes first *)
         Vfs.Env.close env dfd;
         P9net.Dial.hangup env conn))

let test_status_lifecycle () =
  in_world (fun w env ->
      oneshot_server w;
      let conn = P9net.Dial.dial env "il!135.104.9.31!9991" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
      let status = Vfs.Env.read_file env (conn.P9net.Dial.dir ^ "/status") in
      Alcotest.(check bool) "established mid-flight" true
        (contains status "Established");
      Alcotest.(check bool) "retransmit count shown" true
        (contains status "rexmit");
      (* the server hangs up; EOF on data, then the close handshake *)
      let eof = Vfs.Env.read env conn.P9net.Dial.data_fd 4096 in
      Alcotest.(check string) "eof after remote hangup" "" eof;
      Sim.Time.sleep w.P9net.World.eng 5.0;
      let status' = Vfs.Env.read_file env (conn.P9net.Dial.dir ^ "/status") in
      Alcotest.(check bool) "closed after hangup" true
        (contains status' "Closed");
      P9net.Dial.hangup env conn)

let test_stats_file () =
  in_world (fun w env ->
      oneshot_server w;
      let conn = P9net.Dial.dial env "il!135.104.9.31!9991" in
      ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
      Sim.Time.sleep w.P9net.World.eng 1.0;
      let stats = Vfs.Env.read_file env (conn.P9net.Dial.dir ^ "/stats") in
      (* one "name value" line per counter *)
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " present") true
            (contains stats needle))
        [ "msgs_sent"; "msgs_rcvd"; "bytes_sent"; "retransmits"; "rtt_ms" ];
      Alcotest.(check bool) "counted our message" true
        (contains stats "msgs_sent 1");
      P9net.Dial.hangup env conn)

let test_net_log () =
  let w = P9net.World.bell_labs () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs w.P9net.World.eng tr;
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "test" (fun env ->
         let conn = P9net.Dial.dial env "il!helix!echo" in
         ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
         ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
         let log = Vfs.Env.read_file env "/net/log" in
         Alcotest.(check bool) "wire events in the log" true
           (contains log " tx " && contains log " rx ");
         Alcotest.(check bool) "scheduler events in the log" true
           (contains log "proc.");
         (* writing "clear" empties the ring *)
         let fd = Vfs.Env.open_ env "/net/log" F.Ordwr in
         ignore (Vfs.Env.write env fd "clear");
         Vfs.Env.close env fd;
         Alcotest.(check int) "cleared" 0
           (List.length (Obs.Trace.events tr));
         P9net.Dial.hangup env conn;
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "test body completed" true !finished

let test_snoop_tap () =
  let w = P9net.World.bell_labs () in
  let tap = P9net.Snoop.start w.P9net.World.ether in
  let helix = P9net.World.host w "helix" in
  ignore
    (P9net.Host.spawn helix "udp-sink" (fun env ->
         let ann = P9net.Dial.announce env "udp!*!3049" in
         let conn = P9net.Dial.listen env ann in
         let dfd = P9net.Dial.accept env conn in
         ignore (Vfs.Env.write env dfd (Vfs.Env.read env dfd 4096))));
  let finished = ref false in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "traffic" (fun env ->
         let conn = P9net.Dial.dial env "il!helix!echo" in
         ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
         ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
         P9net.Dial.hangup env conn;
         let dg = P9net.Dial.dial env "udp!135.104.9.31!3049" in
         ignore (Vfs.Env.write env dg.P9net.Dial.data_fd "dgram");
         ignore (Vfs.Env.read env dg.P9net.Dial.data_fd 4096);
         P9net.Dial.hangup env dg;
         finished := true));
  P9net.World.run ~until:120.0 w;
  Alcotest.(check bool) "traffic completed" true !finished;
  let counts = P9net.Snoop.proto_counts tap in
  let seen p = List.mem_assoc p counts && List.assoc p counts > 0 in
  (* three distinct frame types on the one wire *)
  Alcotest.(check bool) "arp captured" true (seen "arp");
  Alcotest.(check bool) "il captured" true (seen "il");
  Alcotest.(check bool) "udp captured" true (seen "udp");
  Alcotest.(check bool) "rendered lines" true
    (contains (P9net.Snoop.dump tap) "ether(")

(* ---- determinism: same seed, same traffic, same bytes ---- *)

let traced_run () =
  let w = P9net.World.bell_labs ~seed:3 () in
  let tr = Obs.Trace.create () in
  Sim.Engine.attach_obs w.P9net.World.eng tr;
  let tap = P9net.Snoop.start w.P9net.World.ether in
  let musca = P9net.World.host w "musca" in
  ignore
    (P9net.Host.spawn musca "traffic" (fun env ->
         let conn = P9net.Dial.dial env "il!helix!echo" in
         ignore (Vfs.Env.write env conn.P9net.Dial.data_fd "ping");
         ignore (Vfs.Env.read env conn.P9net.Dial.data_fd 4096);
         P9net.Dial.hangup env conn));
  P9net.World.run ~until:60.0 w;
  ( Obs.Trace.render ~limit:100000 tr,
    Obs.Trace.to_chrome_json tr,
    Obs.Trace.counters_json tr,
    P9net.Snoop.dump tap )

let test_deterministic_traces () =
  let log1, chrome1, counters1, tap1 = traced_run () in
  let log2, chrome2, counters2, tap2 = traced_run () in
  Alcotest.(check bool) "trace non-trivial" true
    (String.length log1 > 1000);
  Alcotest.(check string) "event logs identical" log1 log2;
  Alcotest.(check string) "chrome exports identical" chrome1 chrome2;
  Alcotest.(check string) "counters identical" counters1 counters2;
  Alcotest.(check string) "captures identical" tap1 tap2

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick
            test_disabled_by_default;
          Alcotest.test_case "virtual time" `Quick
            test_trace_records_virtual_time;
          Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
        ] );
      ( "snoopy",
        [
          Alcotest.test_case "renders frames" `Quick
            test_snoopy_renders_frames;
          Alcotest.test_case "live tap" `Quick test_snoop_tap;
        ] );
      ( "files",
        [
          Alcotest.test_case "status lifecycle" `Quick test_status_lifecycle;
          Alcotest.test_case "stats file" `Quick test_stats_file;
          Alcotest.test_case "/net/log" `Quick test_net_log;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical traces" `Quick
            test_deterministic_traces;
        ] );
    ]
