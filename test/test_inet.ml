(* Tests for the IP suite: addresses, checksums, ARP, fragmentation,
   IL, TCP, UDP. *)

let ea = Netsim.Eaddr.of_string
let ip = Inet.Ipaddr.of_string

(* ---- a two-host world on one Ethernet ---- *)

type host = {
  ipstack : Inet.Ip.stack;
  il : Inet.Il.stack;
  tcp : Inet.Tcp.stack;
  udp : Inet.Udp.stack;
}

let make_world ?loss ?(seed = 9) () =
  let eng = Sim.Engine.create ~seed () in
  let seg = Netsim.Ether.create ?loss ~name:"ether0" eng in
  let mask = ip "255.255.255.0" in
  let mk n addr =
    let nic = Netsim.Ether.attach seg (ea (Printf.sprintf "08006902%04x" n)) in
    let port = Inet.Etherport.create eng nic in
    let ipstack = Inet.Ip.create ~addr:(ip addr) ~mask port in
    {
      ipstack;
      il = Inet.Il.attach ipstack;
      tcp = Inet.Tcp.attach ipstack;
      udp = Inet.Udp.attach ipstack;
    }
  in
  let h1 = mk 1 "135.104.9.31" in
  let h2 = mk 2 "135.104.9.32" in
  (eng, seg, h1, h2)

let spawn = Sim.Proc.spawn

(* ---- Ipaddr ---- *)

let test_ipaddr_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Inet.Ipaddr.to_string (ip s)))
    [ "0.0.0.0"; "135.104.9.31"; "255.255.255.255"; "1.2.3.4" ]

let test_ipaddr_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Inet.Ipaddr.of_string_opt s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "1..2.3" ]

let test_subnet () =
  Alcotest.(check bool) "same subnet" true
    (Inet.Ipaddr.in_subnet (ip "135.104.9.31") ~net:(ip "135.104.9.0")
       ~mask:(ip "255.255.255.0"));
  Alcotest.(check bool) "different subnet" false
    (Inet.Ipaddr.in_subnet (ip "135.104.52.1") ~net:(ip "135.104.9.0")
       ~mask:(ip "255.255.255.0"))

let test_class_mask () =
  Alcotest.(check string) "class A" "255.0.0.0"
    (Inet.Ipaddr.to_string (Inet.Ipaddr.class_mask (ip "10.1.2.3")));
  Alcotest.(check string) "class B" "255.255.0.0"
    (Inet.Ipaddr.to_string (Inet.Ipaddr.class_mask (ip "135.104.9.31")));
  Alcotest.(check string) "class C" "255.255.255.0"
    (Inet.Ipaddr.to_string (Inet.Ipaddr.class_mask (ip "192.168.1.1")))

(* ---- checksum ---- *)

let prop_checksum_validates =
  QCheck.Test.make ~name:"checksum self-validates" ~count:200
    QCheck.(string_of_size QCheck.Gen.(2 -- 200))
    (fun s ->
      (* emulate a packet with a checksum field at offset 0 *)
      let b = Bytes.of_string ("\000\000" ^ s) in
      let sum = Inet.Chksum.checksum (Bytes.to_string b) in
      Bytes.set b 0 (Char.chr (sum lsr 8));
      Bytes.set b 1 (Char.chr (sum land 0xff));
      Inet.Chksum.valid (Bytes.to_string b))

let prop_checksum_detects_flip =
  QCheck.Test.make ~name:"checksum detects a bit flip" ~count:200
    QCheck.(pair (string_of_size QCheck.Gen.(4 -- 100)) small_nat)
    (fun (s, pos) ->
      let b = Bytes.of_string ("\000\000" ^ s) in
      let sum = Inet.Chksum.checksum (Bytes.to_string b) in
      Bytes.set b 0 (Char.chr (sum lsr 8));
      Bytes.set b 1 (Char.chr (sum land 0xff));
      let pos = 2 + (pos mod String.length s) in
      let orig = Bytes.get b pos in
      let flipped = Char.chr (Char.code orig lxor 0x01) in
      Bytes.set b pos flipped;
      (* one's-complement sums can miss 0x0000 <-> 0xffff swaps only;
         a single bit flip is always caught *)
      not (Inet.Chksum.valid (Bytes.to_string b)))

(* ---- IL ---- *)

let test_il_connect_and_echo () =
  let eng, _seg, h1, h2 = make_world () in
  let got = ref "" in
  let _server =
    spawn eng ~name:"server" (fun () ->
        let lis = Inet.Il.announce h2.il ~port:17008 in
        let conv = Inet.Il.listen lis in
        match Inet.Il.read_msg conv with
        | Some m -> Inet.Il.write conv ("echo:" ^ m)
        | None -> ())
  in
  let _client =
    spawn eng ~name:"client" (fun () ->
        let conv =
          Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:17008
        in
        Inet.Il.write conv "hello il";
        (match Inet.Il.read_msg conv with
        | Some m -> got := m
        | None -> ());
        Inet.Il.close conv)
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check string) "echoed" "echo:hello il" !got

let test_il_preserves_delimiters () =
  let eng, _seg, h1, h2 = make_world () in
  let msgs = ref [] in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:564 in
        let conv = Inet.Il.listen lis in
        let rec go () =
          match Inet.Il.read_msg conv with
          | Some m ->
            msgs := m :: !msgs;
            go ()
          | None -> ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:564 in
        Inet.Il.write conv "one";
        Inet.Il.write conv "two";
        Inet.Il.write conv "three";
        Sim.Time.sleep eng 1.0;
        Inet.Il.close conv)
  in
  Sim.Engine.run ~until:40.0 eng;
  Alcotest.(check (list string)) "message boundaries kept"
    [ "one"; "two"; "three" ] (List.rev !msgs)

let test_il_read_does_not_cross_messages () =
  let eng, _seg, h1, h2 = make_world () in
  let first_read = ref "" in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:564 in
        let conv = Inet.Il.listen lis in
        first_read := Inet.Il.read conv 100)
  in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:564 in
        Inet.Il.write conv "short";
        Inet.Il.write conv "second")
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check string) "read stopped at delimiter" "short" !first_read

let test_il_bulk_transfer () =
  let eng, _seg, h1, h2 = make_world () in
  let total = ref 0 in
  let n_msgs = 100 and msg_len = 1000 in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:17008 in
        let conv = Inet.Il.listen lis in
        let rec go () =
          match Inet.Il.read_msg conv with
          | Some m ->
            total := !total + String.length m;
            go ()
          | None -> ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:17008
        in
        for _ = 1 to n_msgs do
          Inet.Il.write conv (String.make msg_len 'd')
        done;
        Sim.Time.sleep eng 2.0;
        Inet.Il.close conv)
  in
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check int) "all bytes arrived" (n_msgs * msg_len) !total

let test_il_reliable_under_loss () =
  let eng, _seg, h1, h2 = make_world ~loss:0.10 () in
  let received = ref [] in
  let n_msgs = 50 in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:17008 in
        let conv = Inet.Il.listen lis in
        let rec go () =
          match Inet.Il.read_msg conv with
          | Some m ->
            received := m :: !received;
            go ()
          | None -> ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:17008
        in
        for i = 1 to n_msgs do
          Inet.Il.write conv (Printf.sprintf "msg-%03d" i)
        done;
        Sim.Time.sleep eng 30.0;
        Inet.Il.close conv)
  in
  Sim.Engine.run ~until:120.0 eng;
  let expect = List.init n_msgs (fun i -> Printf.sprintf "msg-%03d" (i + 1)) in
  Alcotest.(check (list string)) "sequenced, complete, no dups" expect
    (List.rev !received);
  (* and recovery must have gone through queries, not blind resends *)
  let c = Inet.Il.counters h1.il in
  Alcotest.(check bool) "queries were used" true (c.Inet.Il.queries_sent > 0)

let test_il_query_based_recovery () =
  (* with no loss there must be zero retransmits and zero queries *)
  let eng, _seg, h1, h2 = make_world () in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:17008 in
        let conv = Inet.Il.listen lis in
        let rec go () =
          match Inet.Il.read_msg conv with Some _ -> go () | None -> ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:17008
        in
        for _ = 1 to 50 do
          Inet.Il.write conv "payload"
        done;
        Sim.Time.sleep eng 2.0;
        Inet.Il.close conv)
  in
  Sim.Engine.run ~until:60.0 eng;
  let c = Inet.Il.counters h1.il in
  Alcotest.(check int) "no spurious retransmits" 0 c.Inet.Il.retransmits;
  Alcotest.(check int) "no spurious queries" 0 c.Inet.Il.queries_sent

let test_il_connect_refused () =
  let eng, _seg, h1, _h2 = make_world () in
  let refused = ref false in
  let _client =
    spawn eng (fun () ->
        try
          ignore
            (Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:9999)
        with Inet.Il.Refused _ -> refused := true)
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check bool) "refused" true !refused

let test_il_connect_timeout () =
  let eng, _seg, h1, _h2 = make_world () in
  let timed_out = ref false in
  let _client =
    spawn eng (fun () ->
        try
          (* no such host: ARP can never resolve *)
          ignore
            (Inet.Il.connect h1.il ~raddr:(ip "135.104.9.99") ~rport:17008)
        with Inet.Il.Timeout _ -> timed_out := true)
  in
  Sim.Engine.run ~until:120.0 eng;
  Alcotest.(check bool) "timed out" true !timed_out

let test_il_large_message_fragments () =
  (* an 8k 9P-style message must cross the 1500-byte MTU via IP
     fragmentation and still arrive as one delimited message *)
  let eng, _seg, h1, h2 = make_world () in
  let got = ref "" in
  let payload = String.init 8192 (fun i -> Char.chr (i land 0xff)) in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:17008 in
        let conv = Inet.Il.listen lis in
        match Inet.Il.read_msg conv with
        | Some m -> got := m
        | None -> ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:17008
        in
        Inet.Il.write conv payload)
  in
  Sim.Engine.run ~until:10.0 eng;
  Alcotest.(check bool) "8k message intact" true (!got = payload)

let test_il_window_blocks_writer () =
  let eng, _seg, h1, h2 = make_world () in
  let max_outstanding = ref 0 in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:17008 in
        let conv = Inet.Il.listen lis in
        let rec go () =
          match Inet.Il.read_msg conv with Some _ -> go () | None -> ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:17008
        in
        for i = 1 to 100 do
          Inet.Il.write conv (Printf.sprintf "m%d" i);
          let sent = i in
          let c = Inet.Il.counters h1.il in
          let acked = c.Inet.Il.msgs_sent - sent in
          ignore acked;
          max_outstanding := max !max_outstanding 0
        done)
  in
  Sim.Engine.run ~until:60.0 eng;
  (* the real assertion: the transfer completed despite window blocking *)
  let c = Inet.Il.counters h2.il in
  Alcotest.(check int) "all messages delivered" 100 c.Inet.Il.msgs_rcvd

(* property: whatever the loss pattern, IL delivers exactly the sent
   message sequence, in order, without duplicates *)
let prop_il_exactly_once =
  QCheck.Test.make ~name:"il delivers exactly once under any loss" ~count:25
    QCheck.(pair (int_bound 1000) (int_bound 20))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      let eng, _seg, h1, h2 = make_world ~loss ~seed:(seed + 1) () in
      let n = 15 in
      let received = ref [] in
      let _server =
        spawn eng (fun () ->
            let lis = Inet.Il.announce h2.il ~port:7777 in
            let conv = Inet.Il.listen lis in
            let rec go () =
              match Inet.Il.read_msg conv with
              | Some m ->
                received := m :: !received;
                go ()
              | None -> ()
            in
            go ())
      in
      let _client =
        spawn eng (fun () ->
            try
              let conv =
                Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:7777
              in
              for i = 1 to n do
                Inet.Il.write conv (Printf.sprintf "m%02d" i)
              done
            with Inet.Il.Timeout _ | Inet.Il.Refused _ -> ())
      in
      Sim.Engine.run ~until:300.0 eng;
      let expect = List.init n (fun i -> Printf.sprintf "m%02d" (i + 1)) in
      List.rev !received = expect)

(* property: the TCP byte stream arrives intact (right bytes, right
   order) for any write sizes and loss up to 10% *)
let prop_tcp_stream_intact =
  QCheck.Test.make ~name:"tcp stream intact under loss" ~count:15
    QCheck.(pair (int_bound 1000) (list_of_size (Gen.int_range 1 6) (int_range 1 4000)))
    (fun (seed, sizes) ->
      QCheck.assume (sizes <> []);
      let eng, _seg, h1, h2 = make_world ~loss:0.05 ~seed:(seed + 1) () in
      let payload =
        String.concat ""
          (List.mapi (fun i n -> String.make n (Char.chr (65 + (i mod 26)))) sizes)
      in
      let got = Buffer.create (String.length payload) in
      let _server =
        spawn eng (fun () ->
            let lis = Inet.Tcp.announce h2.tcp ~port:7777 in
            let conv = Inet.Tcp.listen lis in
            let rec go () =
              let s = Inet.Tcp.read conv 8192 in
              if s <> "" then begin
                Buffer.add_string got s;
                go ()
              end
            in
            go ())
      in
      let _client =
        spawn eng (fun () ->
            try
              let conv =
                Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:7777
              in
              List.iteri
                (fun i n ->
                  Inet.Tcp.write conv
                    (String.make n (Char.chr (65 + (i mod 26)))))
                sizes;
              Inet.Tcp.close conv
            with Inet.Tcp.Timeout _ | Inet.Tcp.Refused _ -> ())
      in
      Sim.Engine.run ~until:300.0 eng;
      Buffer.contents got = payload)

(* ---- TCP ---- *)

let test_tcp_connect_and_echo () =
  let eng, _seg, h1, h2 = make_world () in
  let got = ref "" in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce h2.tcp ~port:513 in
        let conv = Inet.Tcp.listen lis in
        let m = Inet.Tcp.read conv 100 in
        Inet.Tcp.write conv ("echo:" ^ m))
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:513
        in
        Inet.Tcp.write conv "hello tcp";
        got := Inet.Tcp.read conv 100;
        Inet.Tcp.close conv)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check string) "echoed" "echo:hello tcp" !got

let test_tcp_does_not_preserve_delimiters () =
  (* the paper's motivation for IL: two writes can be read as one *)
  let eng, _seg, h1, h2 = make_world () in
  let first_read = ref "" in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce h2.tcp ~port:564 in
        let conv = Inet.Tcp.listen lis in
        (* wait for both writes to land, then read once *)
        Sim.Time.sleep eng 1.0;
        first_read := Inet.Tcp.read conv 100)
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:564
        in
        Inet.Tcp.write conv "one";
        Inet.Tcp.write conv "two")
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check string) "writes coalesced" "onetwo" !first_read

let test_tcp_bulk_transfer () =
  let eng, _seg, h1, h2 = make_world () in
  let total = ref 0 in
  let want = 200_000 in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce h2.tcp ~port:513 in
        let conv = Inet.Tcp.listen lis in
        let rec go () =
          let s = Inet.Tcp.read conv 8192 in
          if s <> "" then begin
            total := !total + String.length s;
            go ()
          end
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:513
        in
        let sent = ref 0 in
        while !sent < want do
          let n = min 16384 (want - !sent) in
          Inet.Tcp.write conv (String.make n 'x');
          sent := !sent + n
        done;
        Inet.Tcp.close conv)
  in
  Sim.Engine.run ~until:120.0 eng;
  Alcotest.(check int) "entire stream delivered" want !total

let test_tcp_reliable_under_loss () =
  let eng, _seg, h1, h2 = make_world ~loss:0.05 () in
  let total = ref 0 in
  let want = 50_000 in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce h2.tcp ~port:513 in
        let conv = Inet.Tcp.listen lis in
        let rec go () =
          let s = Inet.Tcp.read conv 8192 in
          if s <> "" then begin
            total := !total + String.length s;
            go ()
          end
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:513
        in
        let sent = ref 0 in
        while !sent < want do
          let n = min 4096 (want - !sent) in
          Inet.Tcp.write conv (String.make n 'x');
          sent := !sent + n
        done;
        Inet.Tcp.close conv)
  in
  Sim.Engine.run ~until:300.0 eng;
  Alcotest.(check int) "stream complete despite loss" want !total;
  let c = Inet.Tcp.counters h1.tcp in
  Alcotest.(check bool) "blind retransmissions happened" true
    (c.Inet.Tcp.retransmitted_bytes > 0)

let test_tcp_fin_gives_eof () =
  let eng, _seg, h1, h2 = make_world () in
  let reads = ref [] in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce h2.tcp ~port:513 in
        let conv = Inet.Tcp.listen lis in
        let rec go () =
          let s = Inet.Tcp.read conv 100 in
          reads := s :: !reads;
          if s <> "" then go ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:513
        in
        Inet.Tcp.write conv "bye";
        Inet.Tcp.close conv)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check (list string)) "data then eof" [ "bye"; "" ]
    (List.rev !reads)

let test_tcp_connect_refused () =
  let eng, _seg, h1, _h2 = make_world () in
  let refused = ref false in
  let _client =
    spawn eng (fun () ->
        try
          ignore
            (Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:9999)
        with Inet.Tcp.Refused _ -> refused := true)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check bool) "rst refuses" true !refused

let test_il_out_of_window_discard () =
  (* "messages outside the window are discarded and must be
     retransmitted": with a window of 4 and the first message lost, at
     most 4 successors are buffered; the rest are discarded and later
     resent.  Everything still arrives exactly once. *)
  let eng = Sim.Engine.create ~seed:21 () in
  let seg = Netsim.Ether.create ~name:"e" eng in
  let mk n addr =
    let nic =
      Netsim.Ether.attach seg
        (Netsim.Eaddr.of_string (Printf.sprintf "08006902%04x" n))
    in
    Inet.Ip.create
      ~addr:(ip addr)
      ~mask:(ip "255.255.255.0")
      (Inet.Etherport.create eng nic)
  in
  (* an eager sender against a small receiver window *)
  let ila =
    Inet.Il.attach
      ~config:{ Inet.Il.default_config with window = 12 }
      (mk 1 "10.0.0.1")
  in
  let ilb =
    Inet.Il.attach
      ~config:{ Inet.Il.default_config with window = 4 }
      (mk 2 "10.0.0.2")
  in
  let got = ref [] in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce ilb ~port:1 in
        let conv = Inet.Il.listen lis in
        let rec go () =
          match Inet.Il.read_msg conv with
          | Some m ->
            got := m :: !got;
            go ()
          | None -> ()
        in
        go ())
  in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Il.connect ila ~raddr:(ip "10.0.0.2") ~rport:1 in
        (* lose exactly the first data message *)
        Netsim.Ether.set_loss seg 1.0;
        Inet.Il.write conv "m01";
        Netsim.Ether.set_loss seg 0.0;
        for i = 2 to 12 do
          Inet.Il.write conv (Printf.sprintf "m%02d" i)
        done)
  in
  Sim.Engine.run ~until:120.0 eng;
  let expect = List.init 12 (fun i -> Printf.sprintf "m%02d" (i + 1)) in
  Alcotest.(check (list string)) "exactly once, in order" expect
    (List.rev !got);
  Alcotest.(check bool) "receiver discarded out-of-window messages" true
    ((Inet.Il.counters ilb).Inet.Il.out_of_window > 0)

(* ---- tcpcc: the congestion-controlled variant ---- *)

(* a two-host world speaking tcpcc only; per-side configs let the
   zero-window test shrink one receive buffer *)
let make_cc_world ?(seed = 9) ?cfg1 ?cfg2 () =
  let eng = Sim.Engine.create ~seed () in
  let seg = Netsim.Ether.create ~name:"ether0" eng in
  let mask = ip "255.255.255.0" in
  let mk ?config n addr =
    let nic = Netsim.Ether.attach seg (ea (Printf.sprintf "08006902%04x" n)) in
    let port = Inet.Etherport.create eng nic in
    Inet.Tcp.attach_cc ?config (Inet.Ip.create ~addr:(ip addr) ~mask port)
  in
  let cc1 = mk ?config:cfg1 1 "135.104.9.31" in
  let cc2 = mk ?config:cfg2 2 "135.104.9.32" in
  (eng, seg, cc1, cc2)

let cc_sink eng cc ~port total =
  spawn eng (fun () ->
      let lis = Inet.Tcp.announce cc ~port in
      let conv = Inet.Tcp.listen lis in
      let rec go () =
        let s = Inet.Tcp.read conv 8192 in
        if s <> "" then begin
          total := !total + String.length s;
          go ()
        end
      in
      go ())

let cc_source eng cc ~rport want k =
  spawn eng (fun () ->
      let conv = Inet.Tcp.connect cc ~raddr:(ip "135.104.9.32") ~rport in
      let sent = ref 0 in
      while !sent < want do
        let n = min 4096 (want - !sent) in
        Inet.Tcp.write conv (String.make n 'x');
        sent := !sent + n
      done;
      k conv;
      Inet.Tcp.close conv)

let test_tcpcc_connect_and_echo () =
  let eng, _seg, cc1, cc2 = make_cc_world () in
  let got = ref "" in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce cc2 ~port:513 in
        let conv = Inet.Tcp.listen lis in
        let m = Inet.Tcp.read conv 100 in
        Inet.Tcp.write conv ("echo:" ^ m))
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect cc1 ~raddr:(ip "135.104.9.32") ~rport:513
        in
        Inet.Tcp.write conv "hello tcpcc";
        got := Inet.Tcp.read conv 100;
        Inet.Tcp.close conv)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check string) "echoed" "echo:hello tcpcc" !got

let test_tcpcc_slow_start_opens_cwnd () =
  (* a clean bulk transfer: the congestion window must grow past its
     initial two segments *)
  let eng, _seg, cc1, cc2 = make_cc_world () in
  let total = ref 0 in
  let want = 100_000 in
  let cw = ref 0 in
  let _server = cc_sink eng cc2 ~port:513 total in
  let _client =
    cc_source eng cc1 ~rport:513 want (fun conv -> cw := Inet.Tcp.cwnd conv)
  in
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check int) "entire stream delivered" want !total;
  Alcotest.(check bool) "cwnd opened past the initial two segments" true
    (!cw > 2 * Inet.Tcp.default_config.Inet.Tcp.mss)

let test_tcpcc_fast_retransmit () =
  (* deterministically drop one mid-flight data segment: the dup acks
     from its successors must trigger a fast retransmit, not an RTO *)
  let eng, seg, cc1, cc2 = make_cc_world () in
  let total = ref 0 in
  let want = 50_000 in
  let seen = ref 0 in
  Netsim.Fault.set_filter (Netsim.Ether.faults seg) (fun payload ->
      (* data segments are the only large frames; drop the fourth *)
      if String.length payload > 600 then begin
        incr seen;
        if !seen = 4 then Some "planted drop" else None
      end
      else None);
  let _server = cc_sink eng cc2 ~port:513 total in
  let _client = cc_source eng cc1 ~rport:513 want (fun _ -> ()) in
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check int) "entire stream delivered" want !total;
  Alcotest.(check bool) "recovered by fast retransmit" true
    ((Inet.Tcp.counters cc1).Inet.Tcp.fast_retransmits > 0)

(* the head-of-window comparison: under an identical deterministic
   mid-stream drop of four data segments, go-back-N resends every
   unacked byte per timeout while tcpcc retransmits only what was
   lost (head of window, then the holes the acks reveal) — so tcpcc
   must retransmit strictly fewer bytes *)
let drop_mid_flight_xfer attach =
  let eng = Sim.Engine.create ~seed:9 () in
  let seg = Netsim.Ether.create ~name:"ether0" eng in
  let mask = ip "255.255.255.0" in
  let mk n addr =
    let nic = Netsim.Ether.attach seg (ea (Printf.sprintf "08006902%04x" n)) in
    let port = Inet.Etherport.create eng nic in
    attach (Inet.Ip.create ~addr:(ip addr) ~mask port)
  in
  let a = mk 1 "135.104.9.31" and b = mk 2 "135.104.9.32" in
  let seen = ref 0 in
  Netsim.Fault.set_filter (Netsim.Ether.faults seg) (fun payload ->
      if String.length payload > 600 then begin
        incr seen;
        if !seen >= 10 && !seen <= 13 then Some "planted drop" else None
      end
      else None);
  let total = ref 0 in
  let want = 30_000 in
  let _server = cc_sink eng b ~port:513 total in
  let _client = cc_source eng a ~rport:513 want (fun _ -> ()) in
  Sim.Engine.run ~until:120.0 eng;
  Alcotest.(check int) "entire stream delivered" want !total;
  (Inet.Tcp.counters a).Inet.Tcp.retransmitted_bytes

let test_tcpcc_rto_head_only () =
  let blind = drop_mid_flight_xfer (fun ip -> Inet.Tcp.attach ip) in
  let cc = drop_mid_flight_xfer (fun ip -> Inet.Tcp.attach_cc ip) in
  Alcotest.(check bool)
    (Printf.sprintf "tcpcc resent fewer bytes (%d < %d)" cc blind)
    true
    (cc < blind)

let test_tcpcc_zero_window_persist () =
  (* regression for the zero-window bug: a stalled reader must quench
     the sender (advertised window 0), the persist timer must probe the
     window open again, and the stream must complete once the reader
     drains.  The baseline proto keeps its bug-compatible behaviour;
     this guards the cc-gated fix. *)
  let small = { Inet.Tcp.default_config with recv_window = 4096 } in
  let eng, _seg, cc1, cc2 = make_cc_world ~cfg2:small () in
  let total = ref 0 in
  let want = 32_768 in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce cc2 ~port:513 in
        let conv = Inet.Tcp.listen lis in
        (* stall long enough for the sender to fill the 4 KiB buffer
           and sit against a zero window across several probes *)
        Sim.Time.sleep eng 5.0;
        let rec go () =
          let s = Inet.Tcp.read conv 8192 in
          if s <> "" then begin
            total := !total + String.length s;
            go ()
          end
        in
        go ())
  in
  let _client = cc_source eng cc1 ~rport:513 want (fun _ -> ()) in
  Sim.Engine.run ~until:120.0 eng;
  Alcotest.(check int) "entire stream delivered" want !total;
  Alcotest.(check bool) "persist probes fired" true
    ((Inet.Tcp.counters cc1).Inet.Tcp.persist_probes > 0)

let test_tcp_half_close () =
  (* client closes its sending side; the server can keep writing and
     the client drains the rest (CloseWait path) *)
  let eng, _seg, h1, h2 = make_world () in
  let client_got = ref "" in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce h2.tcp ~port:513 in
        let conv = Inet.Tcp.listen lis in
        (* read until the client's FIN *)
        let rec drain () = if Inet.Tcp.read conv 4096 <> "" then drain () in
        drain ();
        (* now write on the half-open connection *)
        Inet.Tcp.write conv "parting data";
        Inet.Tcp.close conv)
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:513
        in
        Inet.Tcp.write conv "bye";
        Inet.Tcp.close conv;
        let buf = Buffer.create 32 in
        let rec go () =
          let s = Inet.Tcp.read conv 4096 in
          if s <> "" then begin
            Buffer.add_string buf s;
            go ()
          end
        in
        go ();
        client_got := Buffer.contents buf)
  in
  Sim.Engine.run ~until:60.0 eng;
  Alcotest.(check string) "data after our close" "parting data" !client_got

let test_tcp_write_after_close_raises () =
  let eng, _seg, h1, h2 = make_world () in
  let raised = ref false in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Tcp.announce h2.tcp ~port:513 in
        ignore (Inet.Tcp.listen lis))
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Tcp.connect h1.tcp ~raddr:(ip "135.104.9.32") ~rport:513
        in
        Inet.Tcp.close conv;
        try Inet.Tcp.write conv "zombie"
        with Inet.Tcp.Hungup -> raised := true)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check bool) "write after close" true !raised

let test_il_write_after_close_raises () =
  let eng, _seg, h1, h2 = make_world () in
  let raised = ref false in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce h2.il ~port:1 in
        ignore (Inet.Il.listen lis))
  in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Il.connect h1.il ~raddr:(ip "135.104.9.32") ~rport:1 in
        Inet.Il.close conv;
        try Inet.Il.write conv "zombie" with Inet.Il.Hungup -> raised := true)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check bool) "write after close" true !raised

(* ---- UDP ---- *)

let test_udp_datagram () =
  let eng, _seg, h1, h2 = make_world () in
  let got = ref ("", 0, "") in
  let _server =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind ~port:7 h2.udp in
        let src, sport, data = Inet.Udp.recv conv in
        got := (Inet.Ipaddr.to_string src, sport, data);
        Inet.Udp.send conv ~dst:src ~dport:sport ("re:" ^ data))
  in
  let reply = ref "" in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind ~port:7000 h1.udp in
        Inet.Udp.send conv ~dst:(ip "135.104.9.32") ~dport:7 "ping";
        let _, _, data = Inet.Udp.recv conv in
        reply := data)
  in
  Sim.Engine.run ~until:10.0 eng;
  let src, sport, data = !got in
  Alcotest.(check string) "source addr" "135.104.9.31" src;
  Alcotest.(check int) "source port" 7000 sport;
  Alcotest.(check string) "payload" "ping" data;
  Alcotest.(check string) "reply came back" "re:ping" !reply

let test_udp_no_listener_drops () =
  let eng, _seg, h1, h2 = make_world () in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind h1.udp in
        Inet.Udp.send conv ~dst:(ip "135.104.9.32") ~dport:4242 "void")
  in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check int) "drop counted" 1
    (Inet.Udp.counters h2.udp).Inet.Udp.dg_dropped_noport

(* ---- IP layer details ---- *)

let test_arp_resolves_once () =
  let eng, _seg, h1, h2 = make_world () in
  let _c =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind h1.udp in
        for _ = 1 to 5 do
          Inet.Udp.send conv ~dst:(ip "135.104.9.32") ~dport:9 "x"
        done)
  in
  let _s = spawn eng (fun () -> ignore (Inet.Udp.bind ~port:9 h2.udp)) in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check int) "one arp miss for five sends" 1
    (Inet.Ip.counters h1.ipstack).Inet.Ip.arp_misses;
  Alcotest.(check bool) "cache holds peer" true
    (List.exists
       (fun (a, _) -> Inet.Ipaddr.to_string a = "135.104.9.32")
       (Inet.Ip.arp_cache_dump h1.ipstack))

let test_ip_loopback () =
  let eng, _seg, h1, _h2 = make_world () in
  let got = ref "" in
  let _p =
    spawn eng (fun () ->
        let server = Inet.Udp.bind ~port:7 h1.udp in
        let client = Inet.Udp.bind h1.udp in
        Inet.Udp.send client ~dst:(ip "135.104.9.31") ~dport:7 "self";
        let _, _, data = Inet.Udp.recv server in
        got := data)
  in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check string) "loopback" "self" !got

let test_no_route_raises () =
  let eng, _seg, h1, _h2 = make_world () in
  let raised = ref false in
  let _p =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind h1.udp in
        try Inet.Udp.send conv ~dst:(ip "10.0.0.1") ~dport:9 "x"
        with Inet.Ip.No_route _ -> raised := true)
  in
  Sim.Engine.run ~until:5.0 eng;
  Alcotest.(check bool) "no gateway -> No_route" true !raised

(* ---- IP forwarding across subnets ---- *)

(* two segments joined by a router; a host on each, default gateway
   pointing at the router — the topology the ndb's ipgw entries
   describe *)
let make_routed_world () =
  let eng = Sim.Engine.create () in
  let seg_a = Netsim.Ether.create ~name:"ether0" eng in
  let seg_b = Netsim.Ether.create ~name:"ether1" eng in
  let nic seg n =
    Inet.Etherport.create eng
      (Netsim.Ether.attach seg (ea (Printf.sprintf "08006902%04x" n)))
  in
  let mask = ip "255.255.255.0" in
  (* the router has an interface on each segment; a Route node with
     two attached stacks forwards between them *)
  let r_a = Inet.Ip.create ~addr:(ip "135.104.51.1") ~mask (nic seg_a 1) in
  let r_b = Inet.Ip.create ~addr:(ip "135.104.52.1") ~mask (nic seg_b 2) in
  let node = Route.create ~name:"router" eng in
  Route.set_deliver node (fun raw -> Inet.Ip.deliver_raw r_a raw);
  ignore (Route.attach_stack node ~ifname:"ether0" r_a);
  ignore (Route.attach_stack node ~ifname:"ether1" r_b);
  (* one host per subnet, gateway = the router *)
  let host_a =
    Inet.Ip.create ~gateway:(ip "135.104.51.1") ~addr:(ip "135.104.51.5")
      ~mask (nic seg_a 3)
  in
  let host_b =
    Inet.Ip.create ~gateway:(ip "135.104.52.1") ~addr:(ip "135.104.52.9")
      ~mask (nic seg_b 4)
  in
  (eng, r_a, r_b, host_a, host_b)

let test_routing_il_across_subnets () =
  let eng, r_a, _r_b, host_a, host_b = make_routed_world () in
  let il_a = Inet.Il.attach host_a and il_b = Inet.Il.attach host_b in
  let got = ref "" in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce il_b ~port:17008 in
        let conv = Inet.Il.listen lis in
        match Inet.Il.read_msg conv with
        | Some m -> Inet.Il.write conv ("echo:" ^ m)
        | None -> ())
  in
  let _client =
    spawn eng (fun () ->
        let conv =
          Inet.Il.connect il_a ~raddr:(ip "135.104.52.9") ~rport:17008
        in
        Inet.Il.write conv "across the gateway";
        match Inet.Il.read_msg conv with
        | Some m -> got := m
        | None -> ())
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check string) "echoed across subnets" "echo:across the gateway"
    !got;
  Alcotest.(check bool) "router forwarded packets" true
    ((Inet.Ip.counters r_a).Inet.Ip.ip_forwarded > 0)

let test_routing_large_message_fragments () =
  (* fragments must survive forwarding *)
  let eng, _r_a, _r_b, host_a, host_b = make_routed_world () in
  let il_a = Inet.Il.attach host_a and il_b = Inet.Il.attach host_b in
  let payload = String.init 8000 (fun i -> Char.chr (i land 0xff)) in
  let got = ref "" in
  let _server =
    spawn eng (fun () ->
        let lis = Inet.Il.announce il_b ~port:1 in
        let conv = Inet.Il.listen lis in
        match Inet.Il.read_msg conv with
        | Some m -> got := m
        | None -> ())
  in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Il.connect il_a ~raddr:(ip "135.104.52.9") ~rport:1 in
        Inet.Il.write conv payload)
  in
  Sim.Engine.run ~until:30.0 eng;
  Alcotest.(check bool) "fragmented message crossed the router" true
    (!got = payload)

let test_routing_ttl_expiry () =
  (* two routers in a loop would decrement TTL to zero; simulate by
     sending a packet whose only route ping-pongs: host_a -> router,
     destination in neither subnet, both router interfaces gatewayless:
     packet is dropped, counter ticks *)
  let eng, r_a, _r_b, host_a, _host_b = make_routed_world () in
  let udp_a = Inet.Udp.attach host_a in
  let _client =
    spawn eng (fun () ->
        let conv = Inet.Udp.bind udp_a in
        (* 10.9.9.9 is not on either segment *)
        Inet.Udp.send conv ~dst:(ip "10.9.9.9") ~dport:9 "lost")
  in
  Sim.Engine.run ~until:10.0 eng;
  (* the router had no egress: nothing forwarded, nothing crashed *)
  Alcotest.(check int) "no forward possible" 0
    (Inet.Ip.counters r_a).Inet.Ip.ip_forwarded

let () =
  Alcotest.run "inet"
    [
      ( "ipaddr",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipaddr_roundtrip;
          Alcotest.test_case "invalid" `Quick test_ipaddr_invalid;
          Alcotest.test_case "subnet" `Quick test_subnet;
          Alcotest.test_case "class mask" `Quick test_class_mask;
        ] );
      ( "checksum",
        [
          QCheck_alcotest.to_alcotest prop_checksum_validates;
          QCheck_alcotest.to_alcotest prop_checksum_detects_flip;
        ] );
      ( "il",
        [
          Alcotest.test_case "connect and echo" `Quick
            test_il_connect_and_echo;
          Alcotest.test_case "preserves delimiters" `Quick
            test_il_preserves_delimiters;
          Alcotest.test_case "read stops at message" `Quick
            test_il_read_does_not_cross_messages;
          Alcotest.test_case "bulk transfer" `Quick test_il_bulk_transfer;
          Alcotest.test_case "reliable under loss" `Quick
            test_il_reliable_under_loss;
          Alcotest.test_case "no spurious retransmission" `Quick
            test_il_query_based_recovery;
          Alcotest.test_case "connect refused" `Quick test_il_connect_refused;
          Alcotest.test_case "connect timeout" `Quick test_il_connect_timeout;
          Alcotest.test_case "large message fragments" `Quick
            test_il_large_message_fragments;
          Alcotest.test_case "window completes" `Quick
            test_il_window_blocks_writer;
          QCheck_alcotest.to_alcotest prop_il_exactly_once;
          Alcotest.test_case "out-of-window discard" `Quick
            test_il_out_of_window_discard;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "connect and echo" `Quick
            test_tcp_connect_and_echo;
          Alcotest.test_case "no delimiters" `Quick
            test_tcp_does_not_preserve_delimiters;
          Alcotest.test_case "bulk transfer" `Quick test_tcp_bulk_transfer;
          Alcotest.test_case "reliable under loss" `Quick
            test_tcp_reliable_under_loss;
          Alcotest.test_case "fin eof" `Quick test_tcp_fin_gives_eof;
          Alcotest.test_case "connect refused" `Quick
            test_tcp_connect_refused;
          QCheck_alcotest.to_alcotest prop_tcp_stream_intact;
          Alcotest.test_case "half close" `Quick test_tcp_half_close;
          Alcotest.test_case "write after close" `Quick
            test_tcp_write_after_close_raises;
          Alcotest.test_case "il write after close" `Quick
            test_il_write_after_close_raises;
        ] );
      ( "tcpcc",
        [
          Alcotest.test_case "connect and echo" `Quick
            test_tcpcc_connect_and_echo;
          Alcotest.test_case "slow start opens cwnd" `Quick
            test_tcpcc_slow_start_opens_cwnd;
          Alcotest.test_case "fast retransmit" `Quick
            test_tcpcc_fast_retransmit;
          Alcotest.test_case "head-only rto beats go-back-n" `Quick
            test_tcpcc_rto_head_only;
          Alcotest.test_case "zero window persists" `Quick
            test_tcpcc_zero_window_persist;
        ] );
      ( "udp",
        [
          Alcotest.test_case "datagram" `Quick test_udp_datagram;
          Alcotest.test_case "no listener drops" `Quick
            test_udp_no_listener_drops;
        ] );
      ( "ip",
        [
          Alcotest.test_case "arp resolves once" `Quick test_arp_resolves_once;
          Alcotest.test_case "loopback" `Quick test_ip_loopback;
          Alcotest.test_case "no route" `Quick test_no_route_raises;
        ] );
      ( "routing",
        [
          Alcotest.test_case "il across subnets" `Quick
            test_routing_il_across_subnets;
          Alcotest.test_case "fragments forwarded" `Quick
            test_routing_large_message_fragments;
          Alcotest.test_case "unroutable dropped" `Quick
            test_routing_ttl_expiry;
        ] );
    ]
