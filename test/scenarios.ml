(* The scenario registry for schedule exploration (Sim.Explore).

   Each scenario is a closed, seed-free workload: it builds a fresh
   world under the tie-break policy the explorer hands it, runs to
   quiescence, and reports an observable transcript.  The explorer
   reruns every scenario under FIFO, seeded-shuffle, and adversarial
   schedules and requires the transcript (or, for schedule-dependent
   scenarios, the declared properties) to survive every legal same-time
   ordering.  Used by both `dune runtest` (test_explore) and the
   p9explore CLI / `make explore`.

   Conventions: every process a scenario owns carries an "sc:" marker in
   its name; those are the processes that must not be left stalled.
   Daemons of the standing world (listeners, protocol kprocs) park
   themselves blocked by design and are exempt. *)

module E = Sim.Explore

let contains_marker n =
  let marker = "sc:" in
  let m = String.length marker and ln = String.length n in
  let rec find i = i + m <= ln && (String.sub n i m = marker || find (i + 1)) in
  find 0

let outcome eng tr buf ~finished ~crash =
  let stalled = List.filter contains_marker (Sim.Engine.stalled eng) in
  let crash =
    match crash with
    | Some _ as c -> c
    | None when (not finished) && stalled = [] ->
      Some "scenario body did not finish before the horizon"
    | None -> None
  in
  {
    E.o_transcript = Buffer.contents buf;
    o_stalled = stalled;
    o_crash = crash;
    o_counters = Obs.Metrics.counters (Obs.Trace.metrics tr);
    o_events = Sim.Engine.events eng;
  }

(* a raw-engine scenario: the body runs inside a process named sc:main
   on a bare engine, and may spawn more sc:-marked workers *)
let raw ?descr ?schedule_dependent ?check ?bounds ?(horizon = 240.0) name body
    =
  E.scenario name ?descr ?schedule_dependent ?check ?bounds
    (fun ~sched ~trace ->
      let eng = Sim.Engine.create ~sched () in
      let tr =
        match trace with
        | Some tr -> tr
        | None -> Obs.Trace.create ~capacity:512 ()
      in
      Sim.Engine.attach_obs eng tr;
      let buf = Buffer.create 256 in
      let say s =
        Buffer.add_string buf s;
        Buffer.add_char buf '\n'
      in
      let finished = ref false in
      let crash = ref None in
      ignore
        (Sim.Proc.spawn eng ~name:"sc:main" (fun () ->
             body eng say;
             finished := true));
      (try Sim.Engine.run ~until:horizon eng
       with e -> crash := Some (Printexc.to_string e));
      outcome eng tr buf ~finished:!finished ~crash:!crash)

(* a bell-labs-world scenario: the body runs as a user process on
   [from]; [prep] runs before any event fires (seed files, etc.) *)
let world ?descr ?schedule_dependent ?check ?bounds ?(horizon = 240.0)
    ?(from = "philw-gnot") ?prep name body =
  E.scenario name ?descr ?schedule_dependent ?check ?bounds
    (fun ~sched ~trace ->
      let w = P9net.World.bell_labs ~sched () in
      let eng = w.P9net.World.eng in
      let tr =
        match trace with
        | Some tr -> tr
        | None -> Obs.Trace.create ~capacity:512 ()
      in
      Sim.Engine.attach_obs eng tr;
      (match prep with Some f -> f w | None -> ());
      let buf = Buffer.create 256 in
      let say s =
        Buffer.add_string buf s;
        Buffer.add_char buf '\n'
      in
      let finished = ref false in
      let crash = ref None in
      let h = P9net.World.host w from in
      ignore
        (P9net.Host.spawn h "sc:main" (fun env ->
             (* let the world boot: every host's service daemons must
                have announced before a closed workload starts dialing,
                whatever order the t=0 batch ran in *)
             Sim.Time.sleep eng 1.0;
             body w env say;
             finished := true));
      (try P9net.World.run ~until:horizon w
       with e -> crash := Some (Printexc.to_string e));
      outcome eng tr buf ~finished:!finished ~crash:!crash)

(* ---- IL and TCP: connect / transfer / close through dial ---- *)

let echo_scenario name proto =
  world name ~from:"musca"
    ~descr:
      (Printf.sprintf "%s connect/transfer/close against helix's echo service"
         (String.uppercase_ascii proto))
    (fun _w env say ->
      let conn = P9net.Dial.dial env (Printf.sprintf "%s!helix!echo" proto) in
      for i = 1 to 4 do
        let msg = Printf.sprintf "%s ping %d" proto i in
        ignore (Vfs.Env.write env conn.P9net.Dial.data_fd msg);
        let reply = Vfs.Env.read env conn.P9net.Dial.data_fd 8192 in
        say (Printf.sprintf "reply %d: %s" i reply)
      done;
      P9net.Dial.hangup env conn;
      say "closed")

let il_echo = echo_scenario "il-echo" "il"
let tcp_echo = echo_scenario "tcp-echo" "tcp"

(* ---- announce backlog: a full accept queue refuses cleanly ---- *)

let backlog =
  raw "backlog-refusal"
    ~descr:"three same-time callers against a backlog of two; one refused"
    (fun eng say ->
      let seg = Netsim.Ether.create ~name:"e0" eng in
      let mk n addr =
        let nic =
          Netsim.Ether.attach seg
            (Netsim.Eaddr.of_string (Printf.sprintf "08006902%04x" n))
        in
        let port = Inet.Etherport.create eng nic in
        Inet.Ip.create
          ~addr:(Inet.Ipaddr.of_string addr)
          ~mask:(Inet.Ipaddr.of_string "255.255.255.0")
          port
      in
      let ila = Inet.Il.attach (mk 1 "10.0.0.1") in
      let ilb = Inet.Il.attach (mk 2 "10.0.0.2") in
      let lis = Inet.Il.announce ilb ~backlog:2 ~port:7 in
      let connected = ref 0 and refused = ref 0 in
      let client i delay =
        ignore
          (Sim.Proc.spawn eng ~name:(Printf.sprintf "sc:caller%d" i)
             (fun () ->
               Sim.Time.sleep eng delay;
               match
                 Inet.Il.connect ila
                   ~raddr:(Inet.Ipaddr.of_string "10.0.0.2") ~rport:7
               with
               | _ -> incr connected
               | exception Inet.Il.Refused _ -> incr refused))
      in
      (* three callers land at the same instant, before anyone accepts;
         which one is refused is a schedule choice but the counts are
         not *)
      client 1 1.0;
      client 2 1.0;
      client 3 1.0;
      ignore
        (Sim.Proc.spawn eng ~name:"sc:server" (fun () ->
             Sim.Time.sleep eng 5.0;
             ignore (Inet.Il.listen lis);
             ignore (Inet.Il.listen lis);
             ignore (Inet.Il.listen lis)));
      (* a late caller proves the listener was not wedged *)
      client 4 10.0;
      Sim.Time.sleep eng 30.0;
      say
        (Printf.sprintf "connected=%d refused=%d listener_refused=%d"
           !connected !refused (Inet.Il.refused lis)))

(* ---- tcpcc under a synchronized close: bounded retransmission ---- *)

(* a miniature of the swarm bench's congestion collapse: eight tcpcc
   conversations on a slow (1 Mb/s) wire all fire a 4 KiB echo at the
   same instant.  The queueing delay pushes past the minimum RTO, so
   some retransmission is expected — the invariant is that congestion
   control keeps it bounded under every schedule, where the baseline's
   go-back-N storm would run away (that divergence is pinned by the
   congestion bench, not here).  Which conversation finishes first is a
   schedule choice; the transcript carries only the completion count. *)
let tcpcc_collapse_convs = 8

let tcpcc_collapse =
  raw "tcpcc-collapse"
    ~descr:"eight synchronized tcpcc echo bursts on a 1 Mb/s wire"
    ~bounds:
      [ { E.b_counter = "tcpcc.retransmits"; b_min = 0; b_max = 1000 } ]
    (fun eng say ->
      let seg = Netsim.Ether.create ~bandwidth_bps:1e6 ~name:"e0" eng in
      let mk n addr =
        let nic =
          Netsim.Ether.attach seg
            (Netsim.Eaddr.of_string (Printf.sprintf "08006902%04x" n))
        in
        let port = Inet.Etherport.create eng nic in
        Inet.Tcp.attach_cc
          (Inet.Ip.create
             ~addr:(Inet.Ipaddr.of_string addr)
             ~mask:(Inet.Ipaddr.of_string "255.255.255.0")
             port)
      in
      let cca = mk 1 "10.0.0.1" in
      let ccb = mk 2 "10.0.0.2" in
      let lis = Inet.Tcp.announce ccb ~backlog:tcpcc_collapse_convs ~port:7 in
      for i = 1 to tcpcc_collapse_convs do
        ignore
          (Sim.Proc.spawn eng
             ~name:(Printf.sprintf "sc:echo%d" i)
             (fun () ->
               let conv = Inet.Tcp.listen lis in
               let rec go () =
                 let s = Inet.Tcp.read conv 8192 in
                 if s <> "" then begin
                   Inet.Tcp.write conv s;
                   go ()
                 end
               in
               go ()))
      done;
      let completed = ref 0 in
      let payload = String.make 4096 'c' in
      for i = 1 to tcpcc_collapse_convs do
        ignore
          (Sim.Proc.spawn eng
             ~name:(Printf.sprintf "sc:burst%d" i)
             (fun () ->
               (* stagger the dials; the echo bursts are synchronized *)
               Sim.Time.sleep eng (0.1 *. float_of_int i);
               let conv =
                 Inet.Tcp.connect cca ~raddr:(Inet.Ipaddr.of_string "10.0.0.2")
                   ~rport:7
               in
               Sim.Time.sleep eng (5.0 -. Sim.Engine.now eng);
               Inet.Tcp.write conv payload;
               let got = ref 0 in
               while !got < String.length payload do
                 let s = Inet.Tcp.read conv 8192 in
                 if s = "" then failwith "echo cut short"
                 else got := !got + String.length s
               done;
               Inet.Tcp.close conv;
               incr completed;
               if !completed = tcpcc_collapse_convs then
                 say
                   (Printf.sprintf "completed=%d retransmits bounded"
                      !completed)))
      done)

(* ---- 9P over a mount: walk / read / write / remove ---- *)

let ninep_mount =
  raw "9p-mount" ~descr:"mount a served ramfs and walk/read/write through it"
    (fun eng say ->
      let local = Ninep.Ramfs.make ~name:"root" () in
      Ninep.Ramfs.mkdir local "/mnt";
      let remote = Ninep.Ramfs.make ~name:"remote" () in
      Ninep.Ramfs.mkdir remote "/sub";
      Ninep.Ramfs.add_file remote "/sub/greeting" "hello from the server";
      let ct, st = Ninep.Transport.pipe eng in
      let _srv = Ninep.Server.serve eng (Ninep.Ramfs.fs remote) st in
      let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs local) ~uname:"u" in
      let env = Vfs.Env.make ~ns ~uname:"u" in
      let client = Ninep.Client.make eng ct in
      Ninep.Client.session client;
      Vfs.Env.mount env client ~onto:"/mnt" Vfs.Ns.Repl;
      say (Printf.sprintf "read: %s" (Vfs.Env.read_file env "/mnt/sub/greeting"));
      Vfs.Env.write_file env "/mnt/sub/out" "written through the mount";
      say (Printf.sprintf "readback: %s" (Vfs.Env.read_file env "/mnt/sub/out"));
      let names =
        List.map (fun d -> d.Ninep.Fcall.d_name) (Vfs.Env.ls env "/mnt/sub")
      in
      say (Printf.sprintf "ls: %s" (String.concat "," (List.sort compare names)));
      Vfs.Env.remove env "/mnt/sub/out";
      say
        (Printf.sprintf "removed: %b"
           (match Vfs.Env.stat env "/mnt/sub/out" with
           | _ -> false
           | exception Vfs.Chan.Error _ -> true)))

(* ---- cfs: coherence across a foreign write ---- *)

let cfs_coherence =
  raw "cfs-coherence"
    ~descr:"cached read, foreign rewrite behind the cache, fresh reopen"
    (fun eng say ->
      let ram = Ninep.Ramfs.make ~name:"ram" () in
      Ninep.Ramfs.add_file ram "/f" "old contents";
      let up_ct, up_st = Ninep.Transport.pipe eng in
      let _srv = Ninep.Server.serve eng (Ninep.Ramfs.fs ram) up_st in
      let cache = Cfs.make eng ~upstream:up_ct () in
      let foreign_ct, foreign_st = Ninep.Transport.pipe eng in
      let _srv2 = Ninep.Server.serve eng (Ninep.Ramfs.fs ram) foreign_st in
      let c = Ninep.Client.make eng (Cfs.transport cache) in
      Ninep.Client.session c;
      let fc = Ninep.Client.make eng foreign_ct in
      Ninep.Client.session fc;
      let open_file cl path mode =
        let root = Ninep.Client.attach cl ~uname:"u" ~aname:"" in
        let fid =
          Ninep.Client.walk_path cl root
            (List.filter (fun s -> s <> "") (String.split_on_char '/' path))
        in
        ignore (Ninep.Client.open_ cl fid mode);
        Ninep.Client.clunk cl root;
        fid
      in
      let fid = open_file c "/f" Ninep.Fcall.Oread in
      say (Printf.sprintf "cold: %s" (Ninep.Client.read_all c fid));
      Ninep.Client.clunk c fid;
      (* someone else rewrites the file behind the cache's back *)
      let wfid = open_file fc "/f" Ninep.Fcall.Owrite in
      ignore (Ninep.Client.write fc wfid ~offset:0L "NEW contents");
      Ninep.Client.clunk fc wfid;
      let fid2 = open_file c "/f" Ninep.Fcall.Oread in
      say (Printf.sprintf "fresh: %s" (Ninep.Client.read_all c fid2));
      say
        (Printf.sprintf "invalidated: %b"
           (Cfs.counter cache "invalidations" > 0));
      Ninep.Client.clunk c fid2)

(* ---- URP over Datakit ---- *)

let urp_dk =
  raw "urp-dk" ~descr:"URP message echo across the Datakit switch"
    (fun eng say ->
      let sw = Dk.Switch.create ~name:"dk" eng in
      let helix = Dk.Switch.attach sw ~name:"nj/astro/helix" in
      let gnot = Dk.Switch.attach sw ~name:"nj/astro/gnot" in
      ignore
        (Sim.Proc.spawn eng ~name:"sc:urp-server" (fun () ->
             let calls = Dk.Circuit.announce helix ~service:"urp" in
             let inc = Sim.Mbox.recv calls in
             let conv = Dk.Urp.over (Dk.Circuit.accept inc) in
             let rec go () =
               match Dk.Urp.read_msg conv with
               | Some m ->
                 Dk.Urp.write conv ("re:" ^ m);
                 go ()
               | None -> ()
             in
             go ()));
      (* let the server's announce land before placing the call *)
      Sim.Time.sleep eng 0.5;
      let circ = Dk.Circuit.dial gnot ~dest:"nj/astro/helix" ~service:"urp" in
      let conv = Dk.Urp.over circ in
      List.iter
        (fun m ->
          Dk.Urp.write conv m;
          match Dk.Urp.read_msg conv with
          | Some r -> say (Printf.sprintf "echo: %s" r)
          | None -> say "echo: EOF")
        [ "one"; "two"; String.make 5000 'x' ];
      Dk.Urp.close conv;
      say "closed")

(* ---- exportfs round trip, over the Datakit gateway host ---- *)

let exportfs_rt =
  world "exportfs" ~from:"philw-gnot"
    ~descr:"import a helix tree over URP/dk; write, read back, remove"
    ~prep:(fun w ->
      Ninep.Ramfs.mkdir (P9net.World.host w "helix").P9net.Host.root "/tmp/sc")
    (fun w env say ->
      P9net.Exportfs.import w.P9net.World.eng env ~host:"helix"
        ~remote_root:"/tmp/sc" ~onto:"/n" ~flag:Vfs.Ns.Repl ();
      Vfs.Env.write_file env "/n/hello" "hello from gnot";
      say (Printf.sprintf "readback: %s" (Vfs.Env.read_file env "/n/hello"));
      let names =
        List.map (fun d -> d.Ninep.Fcall.d_name) (Vfs.Env.ls env "/n")
      in
      say (Printf.sprintf "ls: %s" (String.concat "," (List.sort compare names)));
      Vfs.Env.remove env "/n/hello";
      say
        (Printf.sprintf "removed: %b"
           (match Vfs.Env.stat env "/n/hello" with
           | _ -> false
           | exception Vfs.Chan.Error _ -> true)))

(* ---- a 9P import across a routed internet, partition mid-read ---- *)

(* client subnet — gwa — transit segment "mid" — gwb — server subnet:
   the import crosses two gateway hops; partitioning the transit wire
   mid-use must surface as a clean channel error, and a redial after
   the window heals must work *)
let routed_import_ndb =
  {|ipnet=leafc ip=10.1.0.0 ipmask=255.255.0.0
	ipgw=10.1.0.1
ipnet=mid ip=10.2.0.0 ipmask=255.255.0.0
ipnet=leafs ip=10.3.0.0 ipmask=255.255.0.0
	ipgw=10.3.0.1
sys=gwa
	ip=10.1.0.1 ether=0800ab000001
	ip=10.2.0.1 ether=0800ab000002
sys=gwb
	ip=10.3.0.1 ether=0800ab000003
	ip=10.2.0.2 ether=0800ab000004
sys=rsrv
	ip=10.3.0.9 ether=0800ab000005
sys=rcli
	ip=10.1.0.9 ether=0800ab000006
il=echo	port=56
il=exportfs	port=17007
tcp=exportfs	port=17007
|}

let routed_import =
  E.scenario "routed-import"
    ~descr:
      "9P import across two gateway hops; the transit segment partitions \
       mid-read, errors cleanly, redial works after heal"
    (fun ~sched ~trace ->
      let db = Ndb.of_string routed_import_ndb in
      let w = P9net.World.routed ~sched ~db () in
      let eng = w.P9net.World.eng in
      let tr =
        match trace with
        | Some tr -> tr
        | None -> Obs.Trace.create ~capacity:512 ()
      in
      Sim.Engine.attach_obs eng tr;
      List.iter
        (fun n -> ignore (P9net.World.add_host w n))
        [ "gwa"; "gwb"; "rsrv" ];
      let rcli = P9net.World.add_host w "rcli" in
      P9net.World.autoroute w;
      let rsrv = P9net.World.host w "rsrv" in
      Ninep.Ramfs.mkdir rsrv.P9net.Host.root "/tmp/sc";
      Ninep.Ramfs.add_file rsrv.P9net.Host.root "/tmp/sc/motd" "routed hello";
      P9net.Host.serve_exportfs rsrv;
      let buf = Buffer.create 256 in
      let say s =
        Buffer.add_string buf s;
        Buffer.add_char buf '\n'
      in
      let finished = ref false in
      let crash = ref None in
      ignore
        (P9net.Host.spawn rcli "sc:main" (fun env ->
             Sim.Time.sleep eng 1.0;
             P9net.Exportfs.import eng env ~host:"rsrv" ~remote_root:"/tmp/sc"
               ~onto:"/n" ~flag:Vfs.Ns.Repl ();
             say (Printf.sprintf "read: %s" (Vfs.Env.read_file env "/n/motd"));
             let now = Sim.Engine.now eng in
             Netsim.Fault.partition
               (P9net.World.segment_faults w "mid")
               ~from_:now ~until:(now +. 60.);
             (match Vfs.Env.read_file env "/n/motd" with
             | _ -> say "partition read: unexpectedly succeeded"
             | exception Vfs.Chan.Error _ -> say "partition read: clean error");
             (* the transit is still down: keep dialing until it heals *)
             let conn =
               P9net.Dial.redial env ~tries:40
                 ~pause:(fun () -> Sim.Time.sleep eng 5.0)
                 "il!rsrv!exportfs"
             in
             P9net.Dial.hangup env conn;
             Ninep.Ramfs.mkdir rcli.P9net.Host.root "/n2";
             P9net.Exportfs.import eng env ~host:"rsrv" ~remote_root:"/tmp/sc"
               ~onto:"/n2" ~flag:Vfs.Ns.Repl ();
             say
               (Printf.sprintf "reimport read: %s"
                  (Vfs.Env.read_file env "/n2/motd"));
             finished := true));
      (try P9net.World.run ~until:600.0 w
       with e -> crash := Some (Printexc.to_string e));
      outcome eng tr buf ~finished:!finished ~crash:!crash)

(* ---- streams under backpressure: every blocked writer must drain ---- *)

(* Two writers block on a full stream queue; the consumer drains the
   whole backlog in one read.  Both writers must complete — a queue
   that wakes exactly one writer per take strands the other. *)
let stream_backpressure =
  raw "stream-backpressure"
    ~descr:"two writers blocked on a full stream; one big drain frees both"
    (fun eng say ->
      let a, b = Streams.Pipe.create ~qlimit:1024 eng in
      (* fill b's read queue past its limit so later writers block *)
      Streams.write a (String.make 1200 'f');
      let writer id delay =
        ignore
          (Sim.Proc.spawn eng
             ~name:(Printf.sprintf "sc:w%d" id)
             (fun () ->
               Sim.Time.sleep eng delay;
               Streams.write a (String.make 100 (Char.chr (Char.code '0' + id)));
               say (Printf.sprintf "writer %d done" id)))
      in
      writer 1 0.5;
      writer 2 0.6;
      ignore
        (Sim.Proc.spawn eng ~name:"sc:consumer" (fun () ->
             Sim.Time.sleep eng 1.0;
             let data = Streams.read b 4096 in
             say (Printf.sprintf "drained %d bytes" (String.length data)))))

(* One 200-byte delimited message, two 100-byte readers blocked before
   it lands.  The first reader stops at its byte count, leaving half the
   block queued — the second must still be woken to take it. *)
let stream_read_cascade =
  raw "stream-read-cascade"
    ~descr:"two byte-readers split one delimited message"
    (fun eng say ->
      let a, b = Streams.Pipe.create eng in
      let reader id delay =
        ignore
          (Sim.Proc.spawn eng
             ~name:(Printf.sprintf "sc:r%d" id)
             (fun () ->
               Sim.Time.sleep eng delay;
               let data = Streams.read b 100 in
               say (Printf.sprintf "reader %d got %d bytes" id
                      (String.length data))))
      in
      reader 1 0.5;
      reader 2 0.6;
      ignore
        (Sim.Proc.spawn eng ~name:"sc:producer" (fun () ->
             Sim.Time.sleep eng 1.0;
             Streams.write a (String.make 200 'm');
             say "wrote 200")))

(* ---- the queue race: the planted-bug detector's hunting ground ---- *)

(* Per round: R1 is already asleep on the queue; a producer that pushes
   two blocks back-to-back (no suspension between the puts) and a second
   reader land at the same instant.  Whichever order the schedule picks,
   both blocks must reach a reader.  With Block.Q.chaos_lost_wakeup
   planted, any schedule that runs R2 before the producer strands R2
   forever: R2 parks, put #1 wakes R1 (the longer sleeper), put #2 hits
   a non-empty queue and skips the wakeup R2 needed.  FIFO never picks
   that order here (the producer's timer was armed first), so the
   planted bug is invisible to the historical schedule — adversarial
   LIFO hits it deterministically and shuffles hit it with probability
   1/2 per round.  Which reader gets which block IS a schedule choice,
   so the transcript is declared schedule-dependent and the property
   checked is "everyone ate". *)
let queue_race_rounds = 4

let queue_race =
  raw "queue-race" ~schedule_dependent:true
    ~descr:"two readers race two same-time producers per round"
    ~check:(fun o ->
      let lines =
        List.filter (fun l -> l <> "")
          (String.split_on_char '\n' o.E.o_transcript)
      in
      let want = 2 * queue_race_rounds in
      if List.length lines = want then Ok ()
      else
        Error
          (Printf.sprintf "expected %d deliveries, saw %d" want
             (List.length lines)))
    (fun eng say ->
      for round = 1 to queue_race_rounds do
        let t = float_of_int round in
        let q =
          Block.Q.create ~name:(Printf.sprintf "race%d" round) eng
        in
        let reader id delays =
          ignore
            (Sim.Proc.spawn eng
               ~name:(Printf.sprintf "sc:r%d.%d" id round)
               (fun () ->
                 List.iter (Sim.Time.sleep eng) delays;
                 match Block.Q.get q with
                 | Some b ->
                   say
                     (Printf.sprintf "round %d: reader %d got %d bytes"
                        round id (Block.len b))
                 | None ->
                   say (Printf.sprintf "round %d: reader %d got EOF" round id)))
        in
        reader 1 [ t -. 0.5 ];
        (* R1 parks early *)
        ignore
          (Sim.Proc.spawn eng
             ~name:(Printf.sprintf "sc:p.%d" round)
             (fun () ->
               Sim.Time.sleep eng t;
               (* two puts with no suspension point in between *)
               Block.Q.put q (Block.make ~delim:true (String.make 16 'x'));
               Block.Q.put q (Block.make ~delim:true (String.make 24 'y'))));
        (* R2 reaches t in two hops so its final timer is armed at
           t -. 0.2 — strictly after the producer's, whatever order the
           t=0 batch ran in.  LIFO therefore always runs R2 first (the
           stranding order); FIFO always runs the producer first. *)
        reader 2 [ t -. 0.2; 0.2 ]
      done)

(* ---- distributed namespaces: import chains and union mounts ---- *)

(* a cluster-world scenario: n identical hosts c0..c(n-1) on one flat
   subnet, every one serving exportfs; the body runs as a user process
   on c0.  The horizon is generous — partition scenarios sleep through
   IL death timers and staged re-imports. *)
let cluster_sc ?descr ?schedule_dependent ?check ?bounds ?(horizon = 600.0)
    ?(n = 4) ?prep name body =
  E.scenario name ?descr ?schedule_dependent ?check ?bounds
    (fun ~sched ~trace ->
      let w = P9net.World.cluster ~sched ~n () in
      let eng = w.P9net.World.eng in
      let tr =
        match trace with
        | Some tr -> tr
        | None -> Obs.Trace.create ~capacity:512 ()
      in
      Sim.Engine.attach_obs eng tr;
      (match prep with Some f -> f w | None -> ());
      let buf = Buffer.create 256 in
      let say s =
        Buffer.add_string buf s;
        Buffer.add_char buf '\n'
      in
      let finished = ref false in
      let crash = ref None in
      let h = P9net.World.host w "c0" in
      ignore
        (P9net.Host.spawn h "sc:main" (fun env ->
             Sim.Time.sleep eng 1.0;
             body w env say;
             finished := true));
      (try P9net.World.run ~until:horizon w
       with e -> crash := Some (Printexc.to_string e));
      outcome eng tr buf ~finished:!finished ~crash:!crash)

(* Build the base-env import chain c1 → c2 → … → c[last]: each c(i)
   mounts c(i+1)'s root onto its /n/next.  Deepest import first, and
   strictly sequentially, because a listener forks its host's name
   space per connection {e at connect time} — c1's exportfs can only
   re-export c2's tree to connections made after c1's own import
   landed.  Runs in the calling process's context (imports are RPCs). *)
let chain_imports w ~last =
  let eng = w.P9net.World.eng in
  for i = last - 1 downto 1 do
    let h = P9net.World.host w (Printf.sprintf "c%d" i) in
    P9net.Exportfs.import eng h.P9net.Host.env
      ~host:(Printf.sprintf "c%d" (i + 1))
      ~remote_root:"/" ~onto:"/n/next" ~flag:Vfs.Ns.Repl ()
  done

(* an import that keeps trying while the network heals *)
let rec import_retry eng env ~host ~remote_root ~onto ~flag ~tries =
  match P9net.Exportfs.import eng env ~host ~remote_root ~onto ~flag () with
  | () -> ()
  | exception
      ( P9net.Dial.Dial_error _ | Vfs.Chan.Error _ | Ninep.Client.Err _ )
    when tries > 1 ->
    Sim.Time.sleep eng 5.0;
    import_retry eng env ~host ~remote_root ~onto ~flag ~tries:(tries - 1)

let sorted_names ls =
  String.concat ","
    (List.sort compare (List.map (fun d -> d.Ninep.Fcall.d_name) ls))

(* One Tread from c0 fans out over three 9P connections: c0's mount of
   c1, c1's re-export of its mount of c2, c2's of c3.  Partitioning the
   middle host must surface at the head as a clean channel error while
   the surviving hop keeps serving; the chain is then rebuilt bottom-up
   and the head re-imports. *)
let chain_partition =
  cluster_sc "chain-partition-mid-walk" ~n:4
    ~descr:
      "3-hop import chain; the middle host partitions mid-use, errors \
       cleanly at the head, staged re-import heals"
    ~prep:(fun w ->
      Ninep.Ramfs.mkdir (P9net.World.host w "c0").P9net.Host.root "/n2")
    (fun w env say ->
      let eng = w.P9net.World.eng in
      chain_imports w ~last:3;
      P9net.Exportfs.import eng env ~host:"c1" ~remote_root:"/"
        ~onto:"/n/next" ~flag:Vfs.Ns.Repl ();
      let deep = "/n/next/n/next/n/next/srv/c3" in
      say
        (Printf.sprintf "read c1: %s"
           (String.trim (Vfs.Env.read_file env "/n/next/srv/c1")));
      say
        (Printf.sprintf "read c3: %s" (String.trim (Vfs.Env.read_file env deep)));
      let now = Sim.Engine.now eng in
      Netsim.Fault.partition
        (P9net.World.host_faults w "c2")
        ~from_:now ~until:(now +. 60.);
      (match Vfs.Env.read_file env deep with
      | _ -> say "partition read: unexpectedly succeeded"
      | exception Vfs.Chan.Error _ -> say "partition read: clean error");
      (* the c0 ↔ c1 connection must have survived the c2 outage *)
      say
        (Printf.sprintf "c1 still serves: %s"
           (String.trim (Vfs.Env.read_file env "/n/next/srv/c1")));
      (* staged heal: rebuild bottom-up, then re-import at the head (the
         old per-connection forks upstream still hold the dead mounts,
         so the head needs a fresh connection to see the fresh chain) *)
      let c2 = P9net.World.host w "c2" in
      import_retry eng c2.P9net.Host.env ~host:"c3" ~remote_root:"/"
        ~onto:"/n/next" ~flag:Vfs.Ns.Repl ~tries:40;
      let c1 = P9net.World.host w "c1" in
      import_retry eng c1.P9net.Host.env ~host:"c2" ~remote_root:"/"
        ~onto:"/n/next" ~flag:Vfs.Ns.Repl ~tries:40;
      import_retry eng env ~host:"c1" ~remote_root:"/" ~onto:"/n2"
        ~flag:Vfs.Ns.Repl ~tries:40;
      say
        (Printf.sprintf "reimport read c3: %s"
           (String.trim (Vfs.Env.read_file env "/n2/n/next/n/next/srv/c3"))))

(* the same chain under a flapping (not severed) middle link: every
   read either completes or fails cleanly — which of the two is a
   schedule choice — and after the flap window a rebuilt chain must
   serve again *)
let chain_flap =
  cluster_sc "chain-flap-during-tread" ~n:3 ~schedule_dependent:true
    ~descr:
      "reads down a 2-hop chain while the middle host's link flaps; \
       failures stay clean, the post-heal read succeeds"
    ~check:(fun o ->
      let lines = String.split_on_char '\n' o.E.o_transcript in
      if List.mem "final read: c2" lines then Ok ()
      else Error "post-heal read missing from transcript")
    ~prep:(fun w ->
      Ninep.Ramfs.mkdir (P9net.World.host w "c0").P9net.Host.root "/n2")
    (fun w env say ->
      let eng = w.P9net.World.eng in
      chain_imports w ~last:2;
      P9net.Exportfs.import eng env ~host:"c1" ~remote_root:"/"
        ~onto:"/n/next" ~flag:Vfs.Ns.Repl ();
      let deep = "/n/next/n/next/srv/c2" in
      say (Printf.sprintf "read: %s" (String.trim (Vfs.Env.read_file env deep)));
      let now = Sim.Engine.now eng in
      Netsim.Fault.flap
        (P9net.World.host_faults w "c1")
        ~from_:now ~until:(now +. 30.) ~period:5.0 ~down:0.4;
      let done_ = ref 0 in
      for _ = 1 to 6 do
        (match Vfs.Env.read_file env deep with
        | s when String.trim s = "c2" -> incr done_
        | _ -> ()
        | exception Vfs.Chan.Error _ -> incr done_);
        Sim.Time.sleep eng 5.0
      done;
      say (Printf.sprintf "flap reads resolved: %b" (!done_ = 6));
      (* rebuild whatever the flap killed; c0 then reads through a
         fresh connection *)
      let c1 = P9net.World.host w "c1" in
      import_retry eng c1.P9net.Host.env ~host:"c2" ~remote_root:"/"
        ~onto:"/n/next" ~flag:Vfs.Ns.Repl ~tries:40;
      import_retry eng env ~host:"c1" ~remote_root:"/" ~onto:"/n2"
        ~flag:Vfs.Ns.Repl ~tries:40;
      say
        (Printf.sprintf "final read: %s"
           (String.trim (Vfs.Env.read_file env "/n2/n/next/srv/c2"))))

(* A union of three remote /srv trees loses its middle member: walks
   must fall through past the dead mount to the survivors, listings
   must skip it, and after heal a rebuilt union is whole again.  The
   fall-through assertion ("read c3: c3") is an explicit check, not
   just a transcript comparison: the planted chaos_union_lost_walk bug
   is schedule-INdependent, so a FIFO baseline would be equally wrong
   under every policy and only a semantic property can convict it. *)
let union_member_dies =
  cluster_sc "union-member-dies-walk-continues" ~n:4
    ~descr:
      "a 3-member union loses one server; walks fall through, listings \
       skip it, re-import makes the union whole"
    ~check:(fun o ->
      let lines = String.split_on_char '\n' o.E.o_transcript in
      if List.mem "read c3: c3" lines then Ok ()
      else Error "union walk did not fall through past the dead member")
    (fun w env say ->
      let eng = w.P9net.World.eng in
      let imp host flag =
        P9net.Exportfs.import eng env ~host ~remote_root:"/srv" ~onto:"/u"
          ~flag ()
      in
      imp "c1" Vfs.Ns.Repl;
      imp "c2" Vfs.Ns.After;
      imp "c3" Vfs.Ns.After;
      say (Printf.sprintf "ls: %s" (sorted_names (Vfs.Env.ls env "/u")));
      say
        (Printf.sprintf "read c2: %s"
           (String.trim (Vfs.Env.read_file env "/u/c2")));
      let now = Sim.Engine.now eng in
      Netsim.Fault.partition
        (P9net.World.host_faults w "c2")
        ~from_:now ~until:(now +. 60.);
      (match Vfs.Env.read_file env "/u/c2" with
      | _ -> say "dead read: unexpectedly succeeded"
      | exception Vfs.Chan.Error _ -> say "dead read: clean error");
      say
        (Printf.sprintf "ls skips dead: %s"
           (sorted_names (Vfs.Env.ls env "/u")));
      say
        (Printf.sprintf "read c3: %s"
           (String.trim (Vfs.Env.read_file env "/u/c3")));
      (* heal: drop the whole union, re-import all three members *)
      Vfs.Env.unmount env ~onto:"/u";
      import_retry eng env ~host:"c1" ~remote_root:"/srv" ~onto:"/u"
        ~flag:Vfs.Ns.Repl ~tries:40;
      import_retry eng env ~host:"c2" ~remote_root:"/srv" ~onto:"/u"
        ~flag:Vfs.Ns.After ~tries:40;
      import_retry eng env ~host:"c3" ~remote_root:"/srv" ~onto:"/u"
        ~flag:Vfs.Ns.After ~tries:40;
      say
        (Printf.sprintf "healed read c2: %s"
           (String.trim (Vfs.Env.read_file env "/u/c2"))))

(* create through a union: the paper's bind -c.  The first member
   mounted with MCREATE receives the new file; a union with no such
   member refuses with the kernel's error *)
let union_create =
  cluster_sc "union-create-routing" ~n:4
    ~descr:
      "create lands on the first mcreate member of a union; an \
       all-frozen union refuses cleanly"
    ~prep:(fun w ->
      Ninep.Ramfs.mkdir (P9net.World.host w "c0").P9net.Host.root "/u2")
    (fun w env say ->
      let eng = w.P9net.World.eng in
      let imp ?mcreate host ~onto flag =
        P9net.Exportfs.import eng env ?mcreate ~host ~remote_root:"/srv"
          ~onto ~flag ()
      in
      imp "c1" ~mcreate:false ~onto:"/u" Vfs.Ns.Repl;
      imp "c2" ~mcreate:true ~onto:"/u" Vfs.Ns.After;
      imp "c3" ~mcreate:true ~onto:"/u" Vfs.Ns.After;
      Vfs.Env.write_file env "/u/fresh" "made through the union";
      say
        (Printf.sprintf "union read: %s" (Vfs.Env.read_file env "/u/fresh"));
      (* the file must be on c2 — the first member with MCREATE — and
         nowhere else; verify against the ramfs underneath each server *)
      let on host =
        Ninep.Ramfs.exists (P9net.World.host w host).P9net.Host.root
          "/srv/fresh"
      in
      say
        (Printf.sprintf "landed c1=%b c2=%b c3=%b" (on "c1") (on "c2")
           (on "c3"));
      imp "c1" ~mcreate:false ~onto:"/u2" Vfs.Ns.Repl;
      imp "c2" ~mcreate:false ~onto:"/u2" Vfs.Ns.After;
      (match Vfs.Env.write_file env "/u2/fresh" "never" with
      | () -> say "frozen create: unexpectedly succeeded"
      | exception Vfs.Chan.Error e -> say ("frozen create: " ^ e)))

(* exportfs as a relay: the tail of a 2-hop chain partitions.  The
   relay's own connection to the head must survive and keep serving
   local files while the dead hop answers with a clean relayed error —
   and the fids the relay's mount held upstream are accounted leaked. *)
let reexport_partition =
  cluster_sc "reexport-upstream-partition" ~n:3
    ~bounds:[ { E.b_counter = "9p.fids_leaked"; b_min = 1; b_max = 10000 } ]
    ~descr:
      "the re-export chain's tail partitions; the relay stays up, its \
       upstream fids are accounted leaked, the dead hop errors cleanly"
    ~prep:(fun w ->
      Ninep.Ramfs.mkdir (P9net.World.host w "c0").P9net.Host.root "/n2")
    (fun w env say ->
      let eng = w.P9net.World.eng in
      chain_imports w ~last:2;
      P9net.Exportfs.import eng env ~host:"c1" ~remote_root:"/"
        ~onto:"/n/next" ~flag:Vfs.Ns.Repl ();
      let deep = "/n/next/n/next/srv/c2" in
      say (Printf.sprintf "read: %s" (String.trim (Vfs.Env.read_file env deep)));
      let now = Sim.Engine.now eng in
      Netsim.Fault.partition
        (P9net.World.host_faults w "c2")
        ~from_:now ~until:(now +. 60.);
      (match Vfs.Env.read_file env deep with
      | _ -> say "dead hop: unexpectedly succeeded"
      | exception Vfs.Chan.Error _ -> say "dead hop: clean relayed error");
      (* same connection, same relay: its own tree still serves *)
      say
        (Printf.sprintf "relay serves: %s"
           (String.trim (Vfs.Env.read_file env "/n/next/srv/c1")));
      let c1 = P9net.World.host w "c1" in
      import_retry eng c1.P9net.Host.env ~host:"c2" ~remote_root:"/"
        ~onto:"/n/next" ~flag:Vfs.Ns.Repl ~tries:40;
      import_retry eng env ~host:"c1" ~remote_root:"/" ~onto:"/n2"
        ~flag:Vfs.Ns.Repl ~tries:40;
      say
        (Printf.sprintf "healed read: %s"
           (String.trim (Vfs.Env.read_file env "/n2/n/next/srv/c2"))))

(* three same-instant imports onto one union racing a reader: however
   the mount RPCs interleave, the final table holds every member
   exactly once (plus the mounted-upon directory) and the merged
   listing has no duplicates *)
let mount_race =
  cluster_sc "concurrent-mount-race" ~n:4 ~schedule_dependent:true
    ~descr:
      "three same-instant imports onto one union racing a reader; the \
       final union has every member exactly once"
    ~check:(fun o ->
      let lines = String.split_on_char '\n' o.E.o_transcript in
      if List.mem "final: ls=c1,c2,c3,motd members=4" lines then Ok ()
      else Error "union did not converge to all members")
    (fun w env say ->
      let eng = w.P9net.World.eng in
      let importer i =
        (* share_ns: the racers mutate the same mount table *)
        let e = Vfs.Env.fork ~share_ns:true env in
        Sim.Proc.spawn eng
          ~name:(Printf.sprintf "sc:mnt%d" i)
          (fun () ->
            P9net.Exportfs.import eng e
              ~host:(Printf.sprintf "c%d" i)
              ~remote_root:"/srv" ~onto:"/u" ~flag:Vfs.Ns.After ())
      in
      let ps = List.map importer [ 1; 2; 3 ] in
      let reader =
        Sim.Proc.spawn eng ~name:"sc:lsloop" (fun () ->
            (* a racing reader: sees any prefix of the union, must
               never crash or duplicate *)
            for _ = 1 to 5 do
              ignore (Vfs.Env.ls env "/u");
              Sim.Time.sleep eng 0.2
            done)
      in
      List.iter Sim.Proc.join (ps @ [ reader ]);
      let ns = Vfs.Env.ns env in
      let c = Vfs.Ns.resolve_for_mount ns "/u" in
      let members = List.length (Vfs.Ns.members ns c) in
      Vfs.Chan.clunk c;
      say
        (Printf.sprintf "final: ls=%s members=%d"
           (sorted_names (Vfs.Env.ls env "/u"))
           members))

(* ---- stacked cfs: a write-through racing a sibling's read ---- *)

(* terminal A writes through the shared rack tier while terminal B
   reads the same file at the same instant; under any interleaving the
   stack must not crash or return torn bytes, and once the race
   settles B must see A's write (the rack was patched in place, B's
   tier invalidates on the bumped qid.vers) *)
let cfs_stack_coherence =
  raw "cfs-stack-coherence" ~schedule_dependent:true
    ~descr:
      "write-through at one terminal races a sibling's read across the \
       shared rack tier; the settled read sees the write"
    ~check:(fun o ->
      let lines = String.split_on_char '\n' o.E.o_transcript in
      let race_ok =
        List.exists (fun l -> l = "race read: old" || l = "race read: new") lines
      in
      if not race_ok then Error "racing read returned torn bytes"
      else if not (List.mem "settled read: new" lines) then
        Error "read after the race missed the write-through"
      else Ok ())
    (fun eng say ->
      let old_body = String.make 1024 'o' in
      let fresh = "NEW" ^ String.sub old_body 3 (String.length old_body - 3) in
      let ram = Ninep.Ramfs.make ~name:"origin" () in
      Ninep.Ramfs.add_file ram "/f" old_body;
      let up_ct, up_st = Ninep.Transport.pipe eng in
      ignore (Ninep.Server.serve eng (Ninep.Ramfs.fs ram) up_st);
      let rack = Cfs.make eng ~upstream:up_ct () in
      let ta = Cfs.make eng ~upstream:(Cfs.connect rack) () in
      let tb = Cfs.make eng ~upstream:(Cfs.connect rack) () in
      let open_file cl mode =
        let root = Ninep.Client.attach cl ~uname:"sc" ~aname:"" in
        let fid = Ninep.Client.walk_path cl root [ "f" ] in
        ignore (Ninep.Client.open_ cl fid mode);
        Ninep.Client.clunk cl root;
        fid
      in
      let writer =
        Sim.Proc.spawn eng ~name:"sc:writer" (fun () ->
            let c = Ninep.Client.make eng (Cfs.connect ta) in
            Ninep.Client.session c;
            let fid = open_file c Ninep.Fcall.Ordwr in
            ignore (Ninep.Client.write c fid ~offset:0L "NEW");
            Ninep.Client.clunk c fid)
      in
      let reader =
        Sim.Proc.spawn eng ~name:"sc:reader" (fun () ->
            let c = Ninep.Client.make eng (Cfs.connect tb) in
            Ninep.Client.session c;
            let fid = open_file c Ninep.Fcall.Oread in
            let got = Ninep.Client.read_all c fid in
            Ninep.Client.clunk c fid;
            say
              (Printf.sprintf "race read: %s"
                 (if got = old_body then "old"
                  else if got = fresh then "new"
                  else "torn")))
      in
      Sim.Proc.join writer;
      Sim.Proc.join reader;
      let c = Ninep.Client.make eng (Cfs.connect tb) in
      Ninep.Client.session c;
      let fid = open_file c Ninep.Fcall.Oread in
      let got = Ninep.Client.read_all c fid in
      Ninep.Client.clunk c fid;
      say
        (Printf.sprintf "settled read: %s"
           (if got = fresh then "new" else "stale")))

(* ---- boot storm: the spine partitions mid-storm ---- *)

(* a one-rack fleet: a terminal boots warm through the rack cache,
   then the spine (rack <-> origin) goes dark.  An uncached read must
   surface as a clean 9P error, not a crash.  After the heal the rack
   redials the origin and swaps the upstream under its warm cache
   (Cfs.set_upstream); the terminal remounts and the warm re-read is
   served from cache — the rack's miss counter must not move *)
let bootstorm_partition =
  E.scenario "bootstorm-partition" ~schedule_dependent:true
    ~descr:
      "rack cache partitioned from the origin mid-storm; clean errors, \
       redial after heal resumes from the warm cache"
    ~check:(fun o ->
      let lines = String.split_on_char '\n' o.E.o_transcript in
      let want =
        [
          "warm boot: 9336 bytes";
          "partition read: clean error";
          "warm re-read: 9336 bytes, rack misses unchanged: true";
          "cold read over new upstream: ok";
        ]
      in
      match List.find_opt (fun l -> not (List.mem l lines)) want with
      | Some missing -> Error (Printf.sprintf "missing %S" missing)
      | None -> Ok ())
    (fun ~sched ~trace ->
      let fl = P9net.World.fleet ~sched ~racks:1 ~terminals:2 () in
      let w = fl.P9net.World.f_world in
      let eng = w.P9net.World.eng in
      let tr =
        match trace with
        | Some tr -> tr
        | None -> Obs.Trace.create ~capacity:512 ()
      in
      Sim.Engine.attach_obs eng tr;
      let buf = Buffer.create 256 in
      let say s =
        Buffer.add_string buf s;
        Buffer.add_char buf '\n'
      in
      let finished = ref false in
      let crash = ref None in
      let rack = List.hd fl.P9net.World.f_racks in
      let term = snd (List.hd fl.P9net.World.f_terminals) in
      let th = P9net.World.host w term in
      ignore
        (P9net.Host.spawn th "sc:main" (fun env ->
             (* wait for the rack cfsd to have dialed the origin *)
             let rec get_cache () =
               match Hashtbl.find_opt fl.P9net.World.f_caches rack with
               | Some c -> c
               | None ->
                 Sim.Time.sleep eng 0.5;
                 get_cache ()
             in
             let cache = get_cache () in
             let dial () =
               let conn =
                 P9net.Dial.redial env ~tries:40
                   ~pause:(fun () -> Sim.Time.sleep eng 0.5)
                   ("il!" ^ rack ^ "!9fs")
               in
               let c =
                 Ninep.Client.make eng
                   (P9net.Fdtrans.of_fd env conn.P9net.Dial.data_fd)
               in
               Ninep.Client.session c;
               c
             in
             let read_file c path =
               let root = Ninep.Client.attach c ~uname:"sc" ~aname:"" in
               let fid =
                 Ninep.Client.walk_path c root
                   (List.filter
                      (fun s -> s <> "")
                      (String.split_on_char '/' path))
               in
               ignore (Ninep.Client.open_ c fid Ninep.Fcall.Oread);
               let s = Ninep.Client.read_all c fid in
               Ninep.Client.clunk c fid;
               Ninep.Client.clunk c root;
               s
             in
             let c = dial () in
             let kern = read_file c "/mips/9power" in
             say (Printf.sprintf "warm boot: %d bytes" (String.length kern));
             let warm_misses = Cfs.counter cache "misses" in
             (* the spine goes dark mid-storm *)
             let now = Sim.Engine.now eng in
             Netsim.Fault.partition
               (P9net.World.segment_faults w "spine")
               ~from_:now ~until:(now +. 60.);
             (match read_file c "/lib/ndb/local" with
             | _ -> say "partition read: unexpectedly succeeded"
             | exception Ninep.Client.Err _ ->
               say "partition read: clean error");
             (* outlive the heal, then swap the upstream under the
                warm cache from the rack side *)
             Sim.Time.sleep eng 65.0;
             let rh = P9net.World.host w rack in
             let healer =
               P9net.Host.spawn rh "sc:heal" (fun renv ->
                   let conn =
                     P9net.Dial.redial renv ~tries:40
                       ~pause:(fun () -> Sim.Time.sleep eng 1.0)
                       "il!origin!exportfs"
                   in
                   Cfs.set_upstream cache
                     (P9net.Fdtrans.of_fd renv conn.P9net.Dial.data_fd))
             in
             Sim.Proc.join healer;
             (* the terminal remounts the rack 9fs on a fresh wire *)
             let c2 = dial () in
             let kern2 = read_file c2 "/mips/9power" in
             say
               (Printf.sprintf "warm re-read: %d bytes, rack misses \
                                unchanged: %b"
                  (String.length kern2)
                  (String.equal kern kern2
                  && Cfs.counter cache "misses" = warm_misses));
             (* the new upstream is live: an uncached file now serves *)
             let ndb = read_file c2 "/lib/ndb/local" in
             say
               (Printf.sprintf "cold read over new upstream: %s"
                  (if String.length ndb > 0 then "ok" else "empty"));
             finished := true));
      (try P9net.World.run ~until:600.0 w
       with e -> crash := Some (Printexc.to_string e));
      outcome eng tr buf ~finished:!finished ~crash:!crash)

(* ---- the registry ---- *)

let all : E.scenario list =
  [
    il_echo;
    tcp_echo;
    backlog;
    tcpcc_collapse;
    ninep_mount;
    cfs_coherence;
    urp_dk;
    exportfs_rt;
    routed_import;
    stream_backpressure;
    stream_read_cascade;
    queue_race;
    chain_partition;
    chain_flap;
    union_member_dies;
    union_create;
    reexport_partition;
    mount_race;
    cfs_stack_coherence;
    bootstorm_partition;
  ]

let find name = List.find_opt (fun sc -> E.name sc = name) all

(* run [f] with the planted lost-wakeup bug switched on — the
   explorer's self-test: Explore must flag queue-race within the smoke
   budget when this is active *)
let with_planted_bug f =
  Block.Q.chaos_lost_wakeup := true;
  Fun.protect
    ~finally:(fun () -> Block.Q.chaos_lost_wakeup := false)
    f

(* run [f] with the planted union-walk lost-fallback bug switched on —
   the second self-test plant: a union walk that gives up at a dead
   member instead of falling through.  Schedule-independent, so only
   union-member-dies-walk-continues's explicit check can convict it. *)
let with_planted_union_bug f =
  Vfs.Ns.chaos_union_lost_walk := true;
  Fun.protect
    ~finally:(fun () -> Vfs.Ns.chaos_union_lost_walk := false)
    f
