(** Deterministic discrete-event simulation kernel.

    This is the substrate standing in for the Plan 9 kernel's notion of
    time and of "helper kernel processes" (Presotto & Winterbottom,
    section 2.4).  An {!Engine.t} owns a virtual clock and an event
    queue; {!Proc.spawn} creates a cooperative process implemented with
    OCaml 5 effect handlers.  Processes run until they block on a
    {!Rendez.t}, an {!Mbox.t}, a {!Time.sleep}, or exit.  Execution is
    fully deterministic: events at equal timestamps fire in FIFO order
    and all randomness flows from the engine's seeded {!Engine.random}
    state, so every test and benchmark is reproducible. *)

module Engine : sig
  type t
  (** A simulation world: virtual clock, event queue, process table. *)

  val create : ?seed:int -> unit -> t
  (** [create ?seed ()] makes an empty world.  [seed] (default 9) seeds
      {!random}. *)

  val now : t -> float
  (** Current virtual time in seconds. *)

  val random : t -> Random.State.t
  (** The engine's random state; all simulated nondeterminism (packet
      loss, jitter) must come from here. *)

  val run : ?until:float -> t -> unit
  (** Execute events in time order until the queue is empty or virtual
      time would exceed [until].  If any process crashed with an
      uncaught exception, the first such exception is re-raised after
      the queue drains (so tests fail loudly). *)

  val step : t -> bool
  (** Execute a single event; [false] if the queue was empty. *)

  val at : t -> float -> (unit -> unit) -> unit
  (** [at eng time fn] schedules [fn] at absolute virtual [time]
      (clamped to [now]).  [fn] runs outside any process context. *)

  val after : t -> float -> (unit -> unit) -> unit
  (** [after eng dt fn] = [at eng (now eng +. dt) fn]. *)

  val attach_obs : t -> Obs.Trace.t -> unit
  (** Install an observability sink: the trace's clock becomes this
      engine's virtual clock and every instrumented layer holding the
      engine starts emitting events into it.  Without a sink attached,
      instrumentation is free (no allocation on hot paths). *)

  val obs : t -> Obs.Trace.t option
  (** The attached sink, if any.  Instrumented code matches on this
      around each emission. *)

  val stalled : t -> string list
  (** Names of processes that are neither dead nor scheduled — i.e.
      blocked forever if the event queue is empty.  Useful to diagnose
      deadlock in tests. *)

  val pending : t -> int
  (** Number of queued events. *)

  val events : t -> int
  (** Total live events executed since creation.  Cancelled entries are
      skipped without counting, so this measures real engine work —
      benches use it to assert event volume per unit of goodput. *)
end

module Proc : sig
  type t
  (** A cooperative simulated process. *)

  exception Killed
  (** Raised inside a process aborted by {!kill}. *)

  val spawn : Engine.t -> ?name:string -> (unit -> unit) -> t
  (** Create a process; its body starts at the current virtual time,
      after already-queued events. *)

  val name : t -> string

  val engine : t -> Engine.t

  val self : unit -> t
  (** The currently running process.  @raise Failure outside one. *)

  val kill : t -> unit
  (** Abort [t]: if it is blocked, it resumes by raising {!Killed}; if
      it is runnable the kill lands at its next blocking point.  Killing
      a dead process is a no-op. *)

  val alive : t -> bool

  val join : t -> unit
  (** Block until [t] exits (normally, crashed, or killed). *)

  val suspend :
    register:(resume:('a -> unit) -> abort:(exn -> unit) -> unit -> unit) ->
    'a
  (** The primitive every blocking operation is built from.  [register]
      is called immediately with two one-shot callbacks: [resume v]
      schedules the process to continue returning [v]; [abort e]
      schedules it to continue by raising [e].  Whichever is called
      first wins.  [register] returns a cleanup thunk that runs exactly
      once when the suspension settles (either way) — blocking
      operations use it to cancel timers or dequeue waiters. *)
end

module Time : sig
  val sleep : Engine.t -> float -> unit
  (** Block the calling process for [dt] virtual seconds. *)

  val yield : Engine.t -> unit
  (** Reschedule the calling process after already-queued same-time
      events. *)

  type ticker

  val every : Engine.t -> float -> (unit -> unit) -> ticker
  (** Run a callback every [dt] seconds (not in process context) until
      {!cancel}. *)

  val cancel : ticker -> unit

  type timer
  (** A one-shot re-armable timer slot holding at most one pending
      deadline.  This is the building block for per-conversation
      protocol timers: arm on state change, disarm when the work is
      acknowledged, and an idle conversation contributes zero events to
      the engine.  With an observability sink attached, arms, fires and
      disarms are counted under [timer.arm] / [timer.fire] /
      [timer.disarm]. *)

  val timer : Engine.t -> timer
  (** A fresh, disarmed timer. *)

  val arm_at : timer -> float -> (unit -> unit) -> unit
  (** [arm_at t time fn] schedules [fn] at absolute virtual [time]
      (clamped to now), replacing any pending deadline.  [fn] runs
      outside process context with the timer already disarmed, so it may
      re-arm. *)

  val arm : timer -> float -> (unit -> unit) -> unit
  (** [arm t dt fn] = [arm_at t (now +. dt) fn]. *)

  val disarm : timer -> unit
  (** Cancel the pending deadline, if any; O(1). *)

  val armed : timer -> bool
  (** Whether a deadline is pending. *)

  val deadline : timer -> float option
  (** The pending absolute deadline, if armed. *)
end

module Cpu : sig
  type t
  (** A serialized host-CPU resource for cost modelling: operations
      occupy it one at a time, so protocol processing adds both latency
      and a throughput ceiling, the way a 1993 MIPS did. *)

  val create : Engine.t -> t

  val occupy : t -> float -> float
  (** [occupy cpu dt] reserves the next [dt] seconds of CPU time and
      returns the absolute completion time (>= now). *)

  val run_after : t -> float -> (unit -> unit) -> unit
  (** Schedule [fn] at the completion time of a [dt]-second occupancy.
      Not process context. *)

  val busy_wait : t -> float -> unit
  (** Occupy the CPU for [dt] and block the calling process until the
      work completes. *)
end

module Rendez : sig
  type t
  (** A rendezvous point, after the Plan 9 kernel's [sleep]/[wakeup]:
      a queue of blocked processes.  There is no spurious wakeup, but
      callers should still re-check their predicate in a loop when
      several sleepers compete for the same condition. *)

  val create : Engine.t -> t

  val sleep : t -> unit
  (** Block the calling process until a wakeup. *)

  val wakeup : t -> unit
  (** Wake the longest-sleeping process, if any. *)

  val wakeup_all : t -> unit

  val waiters : t -> int
end

module Mbox : sig
  type 'a t
  (** Unbounded mailbox with blocking receive; the standard way a
      driver's interrupt side hands work to its kernel process. *)

  val create : Engine.t -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  (** Blocks while empty. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end
