(** Deterministic discrete-event simulation kernel.

    This is the substrate standing in for the Plan 9 kernel's notion of
    time and of "helper kernel processes" (Presotto & Winterbottom,
    section 2.4).  An {!Engine.t} owns a virtual clock and an event
    queue; {!Proc.spawn} creates a cooperative process implemented with
    OCaml 5 effect handlers.  Processes run until they block on a
    {!Rendez.t}, an {!Mbox.t}, a {!Time.sleep}, or exit.  Execution is
    fully deterministic: events at equal timestamps fire in the order
    the engine's {!Sched.policy} dictates (FIFO by default) and all
    randomness flows from the engine's seeded {!Engine.random} state, so
    every test and benchmark is reproducible. *)

module Sched : sig
  type policy =
    | Fifo
        (** same-time events fire in scheduling order — the historical
            behaviour, byte-identical to pre-policy engines *)
    | Shuffle of int
        (** each equal-time batch fires in a deterministic seeded random
            permutation; the same seed always yields the same schedule *)
    | Adversarial
        (** LIFO: the newest same-time event fires first, driving
            depth-first wakeup chains and starving the oldest work —
            the nastiest legal ordering *)
  (** Tie-break policy for same-timestamp events.  Any of these is a
      {e legal} concurrency interleaving of the simulated kernel
      processes; code whose observable behaviour depends on the choice
      has an ordering bug.  Polling/yield reschedules ({!Proc.kill}'s
      retry, {!Time.yield}) are exempt from reordering — they always run
      after the ordinary same-time events, preserving their contract and
      ruling out adversarial livelock. *)

  val to_string : policy -> string
  (** ["fifo"], ["shuffle:SEED"], ["adversarial"]. *)

  val of_string : string -> policy option
  (** Inverse of {!to_string} (also accepts ["lifo"]). *)

  val mix : int -> int -> int
  (** [mix seed serial] — the deterministic rank hash behind
      [Shuffle].  Exposed for tests. *)
end

module Engine : sig
  type t
  (** A simulation world: virtual clock, event queue, process table. *)

  val create : ?seed:int -> ?sched:Sched.policy -> unit -> t
  (** [create ?seed ?sched ()] makes an empty world.  [seed] (default 9)
      seeds {!random}; [sched] (default {!Sched.Fifo}) picks the
      same-time tie-break policy. *)

  val sched : t -> Sched.policy
  (** The tie-break policy this engine runs under. *)

  val now : t -> float
  (** Current virtual time in seconds. *)

  val random : t -> Random.State.t
  (** The engine's random state; all simulated nondeterminism (packet
      loss, jitter) must come from here. *)

  val run : ?until:float -> t -> unit
  (** Execute events in time order until the queue is empty or virtual
      time would exceed [until].  When the queue fully drains with a
      sink attached, open spans are force-closed as orphans
      ({!Obs.Span.drain}) — a blocked-forever operation still names
      itself in the trace.  If any process crashed with an uncaught
      exception, the first such exception is re-raised after the queue
      drains (so tests fail loudly). *)

  val step : t -> bool
  (** Execute a single event; [false] if the queue was empty. *)

  val at : ?label:string -> t -> float -> (unit -> unit) -> unit
  (** [at eng time fn] schedules [fn] at absolute virtual [time]
      (clamped to [now]).  [fn] runs outside any process context.
      [label] (default ["engine"]) is the handler class the profiler
      attributes the dispatch to. *)

  val after : ?label:string -> t -> float -> (unit -> unit) -> unit
  (** [after eng dt fn] = [at eng (now eng +. dt) fn]. *)

  val attach_obs : t -> Obs.Trace.t -> unit
  (** Install an observability sink: the trace's clock becomes this
      engine's virtual clock, its span scope becomes the current pid,
      and every instrumented layer holding the engine starts emitting
      events into it.  Without a sink attached, instrumentation is free
      (no allocation on hot paths). *)

  val obs : t -> Obs.Trace.t option
  (** The attached sink, if any.  Instrumented code matches on this
      around each emission. *)

  val attach_prof : t -> Obs.Prof.t -> unit
  (** Install a wall-clock profiler: every subsequent event dispatch is
      bracketed with {!Obs.Prof.begin_event}/{!Obs.Prof.end_event}
      under the heap entry's handler-class label.  Orthogonal to
      {!attach_obs} — profiling reads the real clock and is therefore
      not deterministic, but it never touches virtual time, so it does
      not perturb the simulation. *)

  val prof : t -> Obs.Prof.t option

  val stalled : t -> string list
  (** Names of processes that are neither dead nor scheduled — i.e.
      blocked forever if the event queue is empty.  Useful to diagnose
      deadlock in tests. *)

  val pending : t -> int
  (** Number of queued events. *)

  val events : t -> int
  (** Total live events executed since creation.  Cancelled entries are
      skipped without counting, so this measures real engine work —
      benches use it to assert event volume per unit of goodput. *)
end

module Proc : sig
  type t
  (** A cooperative simulated process. *)

  exception Killed
  (** Raised inside a process aborted by {!kill}. *)

  val spawn : Engine.t -> ?name:string -> (unit -> unit) -> t
  (** Create a process; its body starts at the current virtual time,
      after already-queued events. *)

  val name : t -> string

  val engine : t -> Engine.t

  val self : unit -> t
  (** The currently running process.  @raise Failure outside one. *)

  val self_opt : unit -> t option
  (** [self ()] without the raise — [None] outside any process.  Lets
      library code that may run in either context (dial, mounts) reach
      the engine's observability sink without allocating. *)

  val kill : t -> unit
  (** Abort [t]: if it is blocked, it resumes by raising {!Killed}; if
      it is runnable the kill lands at its next blocking point.  Killing
      a dead process is a no-op. *)

  val alive : t -> bool

  val join : t -> unit
  (** Block until [t] exits (normally, crashed, or killed). *)

  val suspend :
    register:(resume:('a -> unit) -> abort:(exn -> unit) -> unit -> unit) ->
    'a
  (** The primitive every blocking operation is built from.  [register]
      is called immediately with two one-shot callbacks: [resume v]
      schedules the process to continue returning [v]; [abort e]
      schedules it to continue by raising [e].  Whichever is called
      first wins.  [register] returns a cleanup thunk that runs exactly
      once when the suspension settles (either way) — blocking
      operations use it to cancel timers or dequeue waiters. *)
end

module Time : sig
  val sleep : Engine.t -> float -> unit
  (** Block the calling process for [dt] virtual seconds. *)

  val yield : Engine.t -> unit
  (** Reschedule the calling process after already-queued same-time
      events. *)

  type ticker

  val every : ?label:string -> Engine.t -> float -> (unit -> unit) -> ticker
  (** Run a callback every [dt] seconds (not in process context) until
      {!cancel}.  [label] (default ["tick"]) is the profiler's handler
      class for the tick dispatches. *)

  val cancel : ticker -> unit

  type timer
  (** A one-shot re-armable timer slot holding at most one pending
      deadline.  This is the building block for per-conversation
      protocol timers: arm on state change, disarm when the work is
      acknowledged, and an idle conversation contributes zero events to
      the engine.  With an observability sink attached, arms, fires and
      disarms are counted under [timer.arm] / [timer.fire] /
      [timer.disarm]. *)

  val timer : ?label:string -> Engine.t -> timer
  (** A fresh, disarmed timer.  [label] (default ["timer"]) is the
      profiler's handler class for its fire dispatches — protocols pass
      their own name ("il", "tcp"). *)

  val arm_at : timer -> float -> (unit -> unit) -> unit
  (** [arm_at t time fn] schedules [fn] at absolute virtual [time]
      (clamped to now), replacing any pending deadline.  [fn] runs
      outside process context with the timer already disarmed, so it may
      re-arm. *)

  val arm : timer -> float -> (unit -> unit) -> unit
  (** [arm t dt fn] = [arm_at t (now +. dt) fn]. *)

  val disarm : timer -> unit
  (** Cancel the pending deadline, if any; O(1). *)

  val armed : timer -> bool
  (** Whether a deadline is pending. *)

  val deadline : timer -> float option
  (** The pending absolute deadline, if armed. *)
end

module Cpu : sig
  type t
  (** A serialized host-CPU resource for cost modelling: operations
      occupy it one at a time, so protocol processing adds both latency
      and a throughput ceiling, the way a 1993 MIPS did. *)

  val create : Engine.t -> t

  val occupy : t -> float -> float
  (** [occupy cpu dt] reserves the next [dt] seconds of CPU time and
      returns the absolute completion time (>= now). *)

  val run_after : ?label:string -> t -> float -> (unit -> unit) -> unit
  (** Schedule [fn] at the completion time of a [dt]-second occupancy.
      Not process context.  [label] names the handler class for the
      profiler. *)

  val busy_wait : t -> float -> unit
  (** Occupy the CPU for [dt] and block the calling process until the
      work completes. *)
end

module Rendez : sig
  type t
  (** A rendezvous point, after the Plan 9 kernel's [sleep]/[wakeup]:
      a queue of blocked processes.  There is no spurious wakeup, but
      callers should still re-check their predicate in a loop when
      several sleepers compete for the same condition. *)

  val create : Engine.t -> t

  val sleep : t -> unit
  (** Block the calling process until a wakeup. *)

  val wakeup : t -> unit
  (** Wake the longest-sleeping process, if any. *)

  val wakeup_all : t -> unit

  val waiters : t -> int
end

module Mbox : sig
  type 'a t
  (** Unbounded mailbox with blocking receive; the standard way a
      driver's interrupt side hands work to its kernel process. *)

  val create : Engine.t -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  (** Blocks while empty. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

module Explore : sig
  (** Schedule exploration: rerun a closed scenario under many
      {!Sched.policy} choices and check that its observable behaviour is
      independent of same-time event orderings (FoundationDB-style
      deterministic simulation testing, restricted to tie-breaks).
      Every failure names its exact [(policy, seed)] pair — the policy
      string carries the shuffle seed — and is replayed once with
      tracing attached, so each bug is a one-line repro:
      [p9explore -s SCENARIO -p shuffle:SEED]. *)

  type outcome = {
    o_transcript : string;
        (** the scenario's observable record; compared byte-for-byte
            against the Fifo baseline unless the scenario declares
            itself schedule-dependent *)
    o_stalled : string list;
        (** processes left blocked forever, from {!Engine.stalled},
            minus whatever daemons the scenario expects to idle *)
    o_crash : string option;  (** first uncaught process crash *)
    o_counters : (string * int) list;  (** Obs counters, if traced *)
    o_events : int;  (** live engine events executed *)
  }

  type bound = { b_counter : string; b_min : int; b_max : int }
  (** An inclusive range an Obs counter must land in (missing counter
      reads as 0). *)

  type scenario

  val scenario :
    ?descr:string ->
    ?schedule_dependent:bool ->
    ?check:(outcome -> (unit, string) result) ->
    ?bounds:bound list ->
    string ->
    (sched:Sched.policy -> trace:Obs.Trace.t option -> outcome) ->
    scenario
  (** [scenario name run] wraps a closed scenario.  [run] must build a
      {e fresh} world with [Engine.create ~sched], attach [trace] when
      given (the failure replay passes one), execute to quiescence, and
      report.  [schedule_dependent] exempts the transcript from the
      cross-schedule identity check — [check] then carries the
      schedule-independent properties.  [bounds] constrain counters on
      every run. *)

  val name : scenario -> string
  val descr : scenario -> string

  type failure = {
    f_scenario : string;
    f_policy : Sched.policy;
    f_reason : string;
  }

  val policies : seeds:int list -> Sched.policy list
  (** [Fifo :: Shuffle seeds @ [Adversarial]] — the standard sweep. *)

  val smoke_seeds : int list
  (** The fixed shuffle seeds of the tier-1 smoke budget ([1..5]). *)

  val run_one :
    ?out:(string -> unit) ->
    ?baseline:string ->
    scenario ->
    Sched.policy ->
    (outcome, failure) result
  (** Run one (scenario, policy) and judge the invariants: no crash, no
      stall, counters within bounds, [check] holds, transcript equals
      [baseline] when given.  On failure, prints the repro line to [out]
      (default stderr), reruns once with tracing attached and prints the
      event tail. *)

  val explore :
    ?out:(string -> unit) ->
    ?policies:Sched.policy list ->
    scenario ->
    failure list
  (** Sweep the policy list (default: smoke budget).  Fifo always runs
      first; its transcript becomes the cross-schedule baseline.  An
      empty result means every schedule agreed. *)
end
