let src = Logs.Src.create "sim" ~doc:"discrete-event simulation kernel"

module Log = (val Logs.src_log src : Logs.LOG)

(* Tie-break policy for same-timestamp events.  Everything at distinct
   times is ordered by time; within an equal-time batch the policy
   decides, and every policy is a pure function of (policy, serial) so
   a given (policy, seed) pair names exactly one schedule. *)
module Sched = struct
  type policy =
    | Fifo  (* scheduling order: the historical behaviour *)
    | Shuffle of int  (* seeded deterministic permutation of each batch *)
    | Adversarial  (* LIFO: newest same-time event first *)

  let to_string = function
    | Fifo -> "fifo"
    | Shuffle seed -> Printf.sprintf "shuffle:%d" seed
    | Adversarial -> "adversarial"

  let of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "fifo" -> Some Fifo
    | "adversarial" | "lifo" -> Some Adversarial
    | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "shuffle" -> (
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt rest with
        | Some seed -> Some (Shuffle seed)
        | None -> None)
      | _ -> None)

  (* splitmix64-style finalizer: a deterministic hash of (seed, serial)
     used as the shuffle rank.  Ordering an equal-time batch by a
     per-entry random key is exactly a seeded random permutation of the
     batch, and it needs no batch boundary bookkeeping in the heap. *)
  let mix seed serial =
    let open Int64 in
    let z = add (mul (of_int (serial + 1)) 0x9E3779B97F4A7C15L) (of_int seed) in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    (* keep ranks well below max_int so deferred entries always lose *)
    to_int (shift_right_logical z 34)
end

(* Scheduling class: [Deferred] entries are polling/yield rescheduling
   loops (Proc.kill's retry, Time.yield) that must run after every
   ordinary same-time event no matter the policy — under Adversarial a
   LIFO-ordered self-rescheduling poll would livelock, and Time.yield's
   contract is "after already-queued same-time events" by definition.
   Under Fifo both classes rank 0, preserving the historical order
   byte for byte. *)
type sched_cls = Normal | Deferred

(* Event queue: a binary min-heap ordered by (time, rank, serial).  The
   rank is the policy's tie-break key (0 under Fifo, so same-time events
   fall through to serial order = FIFO, which is what the default
   deterministic schedule requires). *)
module Heap = struct
  type entry = {
    time : float;
    rank : int;  (* policy tie-break within an equal-time batch *)
    serial : int;
    mutable live : bool;  (* cancelled entries are skipped on pop *)
    label : string;  (* handler class, for the wall-clock profiler *)
    fn : unit -> unit;
  }

  type t = { mutable a : entry array; mutable n : int }

  let dummy =
    { time = 0.; rank = 0; serial = 0; live = false; label = ""; fn = ignore }

  let create () = { a = Array.make 64 dummy; n = 0 }

  let before x y =
    x.time < y.time
    || (x.time = y.time
       && (x.rank < y.rank || (x.rank = y.rank && x.serial < y.serial)))

  let push h e =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    let rec up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if before h.a.(i) h.a.(p) then begin
          let t = h.a.(i) in
          h.a.(i) <- h.a.(p);
          h.a.(p) <- t;
          up p
        end
      end
    in
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    up (h.n - 1)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- dummy;
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = if l < h.n && before h.a.(l) h.a.(i) then l else i in
        let m = if r < h.n && before h.a.(r) h.a.(m) then r else m in
        if m <> i then begin
          let t = h.a.(i) in
          h.a.(i) <- h.a.(m);
          h.a.(m) <- t;
          down m
        end
      in
      down 0;
      Some top
    end
end

type proc_state =
  | Ready
  | Running
  | Suspended of (exn -> unit)  (* abort callback *)
  | Dead

type engine = {
  mutable now : float;
  heap : Heap.t;
  mutable serial : int;
  sched : Sched.policy;
  rng : Random.State.t;
  mutable procs : proc list;  (* live processes, newest first *)
  mutable crashes : (string * exn) list;
  mutable next_pid : int;
  mutable events : int;  (* live events executed since creation *)
  mutable obs : Obs.Trace.t option;
      (* observability sink; every instrumented layer guards emission on
         this being [Some], so a world without a sink pays nothing *)
  mutable prof : Obs.Prof.t option;
      (* wall-clock profiler; when attached, [step] brackets each
         dispatch with begin/end_event under the entry's label *)
}

and proc = {
  pid : int;
  pname : string;
  pclass : string;  (* handler class for the profiler, from the name *)
  eng : engine;
  mutable state : proc_state;
  mutable exit_waiters : (unit -> unit) list;
}

let rank_of sched cls serial =
  match (sched, cls) with
  | Sched.Fifo, _ -> 0
  | _, Deferred -> max_int
  | Sched.Shuffle seed, Normal -> Sched.mix seed serial
  | Sched.Adversarial, Normal -> -serial

let schedule_entry ?(cls = Normal) ?(label = "engine") eng time fn =
  let time = if time < eng.now then eng.now else time in
  eng.serial <- eng.serial + 1;
  let rank = rank_of eng.sched cls eng.serial in
  let e = { Heap.time; rank; serial = eng.serial; live = true; label; fn } in
  Heap.push eng.heap e;
  e

let schedule_at ?cls ?label eng time fn =
  ignore (schedule_entry ?cls ?label eng time fn)

(* The process currently executing, if any.  Engines never run
   concurrently, so a single global is safe and avoids threading a
   context parameter through every blocking call. *)
let current : proc option ref = ref None

type _ Effect.t +=
  | Suspend :
      (resume:('a -> unit) -> abort:(exn -> unit) -> unit -> unit)
      -> 'a Effect.t

module Engine = struct
  type t = engine

  let create ?(seed = 9) ?(sched = Sched.Fifo) () =
    {
      now = 0.;
      heap = Heap.create ();
      serial = 0;
      sched;
      rng = Random.State.make [| seed; 0x9b4e |];
      procs = [];
      crashes = [];
      next_pid = 1;
      events = 0;
      obs = None;
      prof = None;
    }

  let now t = t.now
  let random t = t.rng
  let sched t = t.sched

  let attach_obs t tr =
    Obs.Trace.set_clock tr (fun () -> t.now);
    Obs.Trace.set_scope tr (fun () ->
        match !current with Some p -> p.pid | None -> 0);
    t.obs <- Some tr

  let obs t = t.obs
  let attach_prof t p = t.prof <- Some p
  let prof t = t.prof
  let at ?label t time fn = schedule_at ?label t time fn
  let after ?label t dt fn = schedule_at ?label t (t.now +. dt) fn
  let pending t = t.heap.Heap.n
  let events t = t.events

  let rec step t =
    match Heap.pop t.heap with
    | None -> false
    | Some e ->
      if e.Heap.live then begin
        t.now <- e.Heap.time;
        t.events <- t.events + 1;
        (match t.prof with
        | None -> e.Heap.fn ()
        | Some p ->
          Obs.Prof.begin_event p;
          e.Heap.fn ();
          Obs.Prof.end_event p e.Heap.label);
        true
      end
      else step t (* cancelled: skip without advancing time *)

  let run ?until t =
    let continue_ () =
      (* drop dead entries off the top so the peek is accurate *)
      let rec prune () =
        if t.heap.Heap.n > 0 && not t.heap.Heap.a.(0).Heap.live then begin
          ignore (Heap.pop t.heap);
          prune ()
        end
      in
      prune ();
      t.heap.Heap.n > 0
      &&
      match until with
      | None -> true
      | Some limit -> t.heap.Heap.a.(0).Heap.time <= limit
    in
    let rec loop () = if continue_ () then if step t then loop () in
    loop ();
    (* a drained queue means every open span's operation is blocked
       forever (or abandoned): close them as orphans so the trace names
       the stuck work instead of silently losing it *)
    if t.heap.Heap.n = 0 then
      (match t.obs with None -> () | Some tr -> Obs.Span.drain tr);
    (match until with Some limit when limit > t.now -> t.now <- limit | _ -> ());
    match List.rev t.crashes with
    | [] -> ()
    | (name, e) :: _ ->
      t.crashes <- [];
      Log.err (fun m -> m "proc %s crashed: %s" name (Printexc.to_string e));
      raise e

  let stalled t =
    let blocked p =
      match p.state with Suspended _ | Ready -> true | Running | Dead -> false
    in
    List.rev_map (fun p -> p.pname) (List.filter blocked t.procs)
end

module Proc = struct
  type t = proc

  exception Killed

  let name p = p.pname
  let engine p = p.eng
  let alive p = p.state <> Dead

  (* handler class for the profiler, derived once at spawn from the
     conventional process names used across the stack *)
  let proc_class name =
    let starts p =
      String.length name >= String.length p
      && String.sub name 0 (String.length p) = p
    in
    if starts "9p" then "9p"
    else if starts "cfs" then "cfs"
    else if starts "urp" || starts "dk" then "dk"
    else if starts "ether" then "ether"
    else if starts "udp" then "udp"
    else if starts "dns" then "dns"
    else if starts "cs" then "cs"
    else if starts "listen" || starts "serve" || starts "exportfs" then
      "listener"
    else "app"

  let self () =
    match !current with
    | Some p -> p
    | None -> failwith "Sim.Proc.self: not inside a simulated process"

  let self_opt () = !current

  let emit_phase p phase =
    match p.eng.obs with
    | None -> ()
    | Some tr -> Obs.Trace.emit tr (Obs.Event.Proc { name = p.pname; phase })

  let finish p =
    p.state <- Dead;
    p.eng.procs <- List.filter (fun q -> q.pid <> p.pid) p.eng.procs;
    let ws = p.exit_waiters in
    p.exit_waiters <- [];
    List.iter (fun w -> w ()) ws

  let spawn eng ?name body =
    let pid = eng.next_pid in
    eng.next_pid <- pid + 1;
    let pname =
      match name with Some n -> n | None -> Printf.sprintf "proc%d" pid
    in
    let p =
      { pid; pname; pclass = proc_class pname; eng; state = Ready;
        exit_waiters = [] }
    in
    eng.procs <- p :: eng.procs;
    emit_phase p Obs.Event.Spawn;
    let handler : (unit, unit) Effect.Deep.handler =
      {
        retc =
          (fun () ->
            emit_phase p Obs.Event.Exit;
            finish p);
        exnc =
          (fun e ->
            (match e with
            | Killed -> emit_phase p Obs.Event.Exit
            | e ->
              emit_phase p Obs.Event.Crash;
              eng.crashes <- (pname, e) :: eng.crashes);
            finish p);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let fired = ref false in
                  let cleanup = ref None in
                  let cleaned = ref false in
                  let settle () =
                    match !cleanup with
                    | Some f when not !cleaned ->
                      cleaned := true;
                      f ()
                    | Some _ | None -> ()
                  in
                  let resume v =
                    if not !fired then begin
                      fired := true;
                      settle ();
                      emit_phase p Obs.Event.Wake;
                      p.state <- Ready;
                      schedule_at ~label:p.pclass eng eng.now (fun () ->
                          p.state <- Running;
                          let saved = !current in
                          current := Some p;
                          Fun.protect
                            ~finally:(fun () -> current := saved)
                            (fun () -> Effect.Deep.continue k v))
                    end
                  in
                  let abort e =
                    if not !fired then begin
                      fired := true;
                      settle ();
                      emit_phase p Obs.Event.Wake;
                      p.state <- Ready;
                      schedule_at ~label:p.pclass eng eng.now (fun () ->
                          p.state <- Running;
                          let saved = !current in
                          current := Some p;
                          Fun.protect
                            ~finally:(fun () -> current := saved)
                            (fun () -> Effect.Deep.discontinue k e))
                    end
                  in
                  p.state <- Suspended abort;
                  emit_phase p Obs.Event.Block;
                  let cl = register ~resume ~abort in
                  cleanup := Some cl;
                  if !fired then settle ())
            | _ -> None);
      }
    in
    schedule_at ~label:p.pclass eng eng.now (fun () ->
        p.state <- Running;
        let saved = !current in
        current := Some p;
        Fun.protect
          ~finally:(fun () -> current := saved)
          (fun () -> Effect.Deep.match_with body () handler));
    p

  let suspend ~register = Effect.perform (Suspend register)

  let kill p =
    match p.state with
    | Dead -> ()
    | Suspended abort -> abort Killed
    | Ready | Running ->
      (* The kill lands when the victim next suspends: we poll cheaply
         by scheduling a check; a Ready proc will be Suspended or Dead
         once its current event completes. *)
      (* Deferred class: the poll must run after the victim's pending
         same-time work under every policy, or an adversarial schedule
         would run the poll ahead of the victim forever. *)
      let rec retry () =
        match p.state with
        | Dead -> ()
        | Suspended abort -> abort Killed
        | Ready | Running -> schedule_at ~cls:Deferred p.eng p.eng.now retry
      in
      schedule_at ~cls:Deferred p.eng p.eng.now retry

  let join p =
    if alive p then
      suspend ~register:(fun ~resume ~abort:_ ->
          p.exit_waiters <- (fun () -> resume ()) :: p.exit_waiters;
          ignore)
end

module Time = struct
  let sleep eng dt =
    (* the timer entry is cancelled when the sleep settles, so a killed
       process leaves no phantom event behind.  A zero-length sleep is a
       yield, whose contract is "after already-queued same-time events"
       under every policy — hence the Deferred class. *)
    let cls = if dt <= 0. then Deferred else Normal in
    let label =
      match !current with Some p -> p.pclass | None -> "engine"
    in
    Proc.suspend ~register:(fun ~resume ~abort:_ ->
        let e =
          schedule_entry ~cls ~label eng (eng.now +. dt) (fun () -> resume ())
        in
        fun () -> e.Heap.live <- false)

  let yield eng = sleep eng 0.

  type ticker = { mutable live : bool }

  let every ?(label = "tick") eng dt fn =
    let tk = { live = true } in
    let rec tick () =
      if tk.live then begin
        fn ();
        schedule_at ~label eng (eng.now +. dt) tick
      end
    in
    schedule_at ~label eng (eng.now +. dt) tick;
    tk

  let cancel tk = tk.live <- false

  (* A one-shot re-armable timer slot: at most one pending heap entry at
     a time.  Arming replaces any pending deadline; disarming cancels it
     in O(1) by marking the entry dead (the heap skips it on pop).  This
     is what lets an idle protocol conversation cost zero events: its
     timers are simply not armed. *)
  type timer = {
    teng : engine;
    tlabel : string;
    mutable tentry : Heap.entry option;
  }

  let timer ?(label = "timer") eng = { teng = eng; tlabel = label; tentry = None }

  let timer_bump t name =
    match t.teng.obs with
    | None -> ()
    | Some tr -> Obs.Trace.bump tr name 1

  let disarm t =
    match t.tentry with
    | None -> ()
    | Some e ->
      e.Heap.live <- false;
      t.tentry <- None;
      timer_bump t "timer.disarm"

  let arm_at t time fn =
    disarm t;
    timer_bump t "timer.arm";
    let e =
      schedule_entry ~label:t.tlabel t.teng time (fun () ->
          t.tentry <- None;
          timer_bump t "timer.fire";
          fn ())
    in
    t.tentry <- Some e

  let arm t dt fn = arm_at t (t.teng.now +. dt) fn
  let armed t = t.tentry <> None

  let deadline t =
    match t.tentry with Some e -> Some e.Heap.time | None -> None
end

module Cpu = struct
  type t = { ceng : engine; mutable busy_until : float }

  let create eng = { ceng = eng; busy_until = 0. }

  let occupy t dt =
    let now = t.ceng.now in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start +. dt in
    t.busy_until <- finish;
    (match t.ceng.obs with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr (Obs.Event.Cpu { queued = start -. now; busy = dt });
      Obs.Trace.observe tr "cpu.queued" (start -. now));
    finish

  let run_after ?label t dt fn = schedule_at ?label t.ceng (occupy t dt) fn

  let busy_wait t dt =
    let finish = occupy t dt in
    let label =
      match !current with Some p -> p.pclass | None -> "engine"
    in
    Proc.suspend ~register:(fun ~resume ~abort:_ ->
        let e = schedule_entry ~label t.ceng finish (fun () -> resume ()) in
        fun () -> e.Heap.live <- false)
end

module Rendez = struct
  type waiter = { mutable valid : bool; fire : unit -> unit }

  type t = { reng : engine; mutable queue : waiter list (* oldest last *) }

  let create eng = { reng = eng; queue = [] }

  let sleep r =
    Proc.suspend ~register:(fun ~resume ~abort:_ ->
        let w = { valid = true; fire = (fun () -> resume ()) } in
        r.queue <- w :: r.queue;
        (* on settle, drop the waiter so an aborted sleeper doesn't
           swallow a later wakeup *)
        fun () ->
          if w.valid then begin
            w.valid <- false;
            r.queue <- List.filter (fun x -> x != w) r.queue
          end)

  let rec pop_oldest = function
    | [] -> (None, [])
    | [ w ] -> (Some w, [])
    | w :: rest ->
      let found, rest' = pop_oldest rest in
      (found, w :: rest')

  let wakeup r =
    let rec go () =
      match pop_oldest r.queue with
      | None, _ -> ()
      | Some w, rest ->
        r.queue <- rest;
        if w.valid then begin
          w.valid <- false;
          w.fire ()
        end
        else go ()
    in
    go ()

  let wakeup_all r =
    let ws = List.rev r.queue in
    r.queue <- [];
    List.iter
      (fun w ->
        if w.valid then begin
          w.valid <- false;
          w.fire ()
        end)
      ws

  let waiters r = List.length r.queue
end

module Mbox = struct
  type 'a t = { q : 'a Queue.t; r : Rendez.t }

  let create eng = { q = Queue.create (); r = Rendez.create eng }

  let send mb v =
    Queue.push v mb.q;
    Rendez.wakeup mb.r

  let rec recv mb =
    match Queue.take_opt mb.q with
    | Some v -> v
    | None ->
      Rendez.sleep mb.r;
      recv mb

  let try_recv mb = Queue.take_opt mb.q
  let length mb = Queue.length mb.q
end

(* Schedule exploration: rerun a closed scenario under many tie-break
   policies and check that its observable behaviour is independent of
   same-time orderings.  Every run is named by a (policy) pair — the
   policy string carries the shuffle seed — so a failure is a one-line
   repro. *)
module Explore = struct
  type outcome = {
    o_transcript : string;
    o_stalled : string list;
    o_crash : string option;
    o_counters : (string * int) list;
    o_events : int;
  }

  type bound = { b_counter : string; b_min : int; b_max : int }

  type scenario = {
    sc_name : string;
    sc_descr : string;
    sc_schedule_dependent : bool;
    sc_check : outcome -> (unit, string) result;
    sc_bounds : bound list;
    sc_run : sched:Sched.policy -> trace:Obs.Trace.t option -> outcome;
  }

  let scenario ?(descr = "") ?(schedule_dependent = false)
      ?(check = fun _ -> Ok ()) ?(bounds = []) name run =
    {
      sc_name = name;
      sc_descr = descr;
      sc_schedule_dependent = schedule_dependent;
      sc_check = check;
      sc_bounds = bounds;
      sc_run = run;
    }

  let name sc = sc.sc_name
  let descr sc = sc.sc_descr

  type failure = {
    f_scenario : string;
    f_policy : Sched.policy;
    f_reason : string;
  }

  let policies ~seeds =
    (Sched.Fifo :: List.map (fun s -> Sched.Shuffle s) seeds)
    @ [ Sched.Adversarial ]

  let smoke_seeds = [ 1; 2; 3; 4; 5 ]

  (* the per-run invariants; [baseline] is the Fifo transcript *)
  let judge sc ~baseline (o : outcome) =
    let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
    let* () =
      match o.o_crash with
      | Some e -> Error (Printf.sprintf "uncaught crash: %s" e)
      | None -> Ok ()
    in
    let* () =
      match o.o_stalled with
      | [] -> Ok ()
      | names ->
        Error
          (Printf.sprintf "stalled processes: %s" (String.concat ", " names))
    in
    let* () =
      List.fold_left
        (fun acc b ->
          let* () = acc in
          let v =
            match List.assoc_opt b.b_counter o.o_counters with
            | Some v -> v
            | None -> 0
          in
          if v < b.b_min || v > b.b_max then
            Error
              (Printf.sprintf "counter %s = %d outside [%d, %d]" b.b_counter
                 v b.b_min b.b_max)
          else Ok ())
        (Ok ()) sc.sc_bounds
    in
    let* () = sc.sc_check o in
    match baseline with
    | Some base
      when (not sc.sc_schedule_dependent) && o.o_transcript <> base ->
      Error "transcript differs from the fifo baseline"
    | _ -> Ok ()

  let render_trace ?(tail = 30) tr =
    let evs = Obs.Trace.events tr in
    let n = List.length evs in
    let evs =
      if n <= tail then evs
      else
        List.filteri (fun i _ -> i >= n - tail) evs
    in
    let buf = Buffer.create 1024 in
    if n > tail then
      Printf.bprintf buf "  ... (%d earlier events in the ring)\n" (n - tail);
    List.iter
      (fun (t, seq, e) ->
        Printf.bprintf buf "  [%6d] %.6f %s\n" seq t (Obs.Event.render e))
      evs;
    Buffer.contents buf

  (* run one (scenario, policy); on an invariant violation, rerun once
     with a trace attached and hand the rendered tail to [out] *)
  let run_one ?(out = prerr_string) ?baseline sc policy =
    let o = sc.sc_run ~sched:policy ~trace:None in
    match judge sc ~baseline o with
    | Ok () -> Ok o
    | Error reason ->
      let f = { f_scenario = sc.sc_name; f_policy = policy; f_reason = reason } in
      out
        (Printf.sprintf "FAIL %s sched=%s: %s\n" sc.sc_name
           (Sched.to_string policy) reason);
      out
        (Printf.sprintf "  repro: p9explore -s %s -p %s\n" sc.sc_name
           (Sched.to_string policy));
      (* the replay: same (policy, seed), tracing attached *)
      let tr = Obs.Trace.create () in
      let o2 = sc.sc_run ~sched:policy ~trace:(Some tr) in
      out "  replay with tracing attached — event tail:\n";
      out (render_trace tr);
      (* spans still open when the replay drained are the operations
         that never completed — for a lost-wakeup stall this names the
         blocked work directly.  The engine closed them as orphans. *)
      let open_spans =
        List.filter_map
          (fun (_, _, e) ->
            match e with
            | Obs.Event.Span_end { orphan = true; name; layer; span; trace; _ }
              ->
              Some
                (Printf.sprintf "    [%s] %s (span %d, trace %d)\n" layer name
                   span trace)
            | _ -> None)
          (Obs.Trace.events tr)
      in
      out "  open spans at stall (closed as orphans at drain):\n";
      (match open_spans with
      | [] -> out "    (none)\n"
      | ls -> List.iter out ls);
      (match o2.o_crash with
      | Some e -> out (Printf.sprintf "  replay crash: %s\n" e)
      | None -> ());
      if o2.o_transcript <> o.o_transcript then
        out "  (warning: replay transcript differs from the failing run)\n";
      Error f

  (* explore a scenario across [policies]; Fifo runs first and its
     transcript is the cross-schedule baseline *)
  let explore ?(out = prerr_string) ?(policies = policies ~seeds:smoke_seeds)
      sc =
    let baseline = ref None in
    (* make sure Fifo is explored first so the baseline exists *)
    let policies =
      if List.mem Sched.Fifo policies then
        Sched.Fifo :: List.filter (fun p -> p <> Sched.Fifo) policies
      else policies
    in
    List.filter_map
      (fun policy ->
        match run_one ~out ?baseline:!baseline sc policy with
        | Ok o ->
          if policy = Sched.Fifo then baseline := Some o.o_transcript;
          None
        | Error f -> Some f)
      policies
end
