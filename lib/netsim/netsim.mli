(** Simulated physical network media.

    Stands in for the paper's hardware: the LANCE Ethernet (section
    2.2), the Cyclone VME fiber boards (section 7), and the RS232/ISDN
    serial lines (section 1).  Each medium models wire bandwidth,
    propagation latency, and (for Ethernet) random frame loss drawn from
    the engine's seeded RNG, so behaviour is reproducible.

    Media deliver to receive callbacks outside any process context —
    the moral equivalent of an interrupt.  Drivers built on top must
    obey the paper's rule that "the interrupt routine may not allocate
    blocks or call a put routine": in practice they hand the frame to a
    queue or mailbox that wakes a kernel process. *)

module Eaddr : sig
  type t = private string
  (** A 48-bit Ethernet address as 12 lowercase hex digits, e.g.
      ["0800690222f0"]. *)

  val of_string : string -> t
  (** @raise Invalid_argument unless 12 hex digits. *)

  val to_string : t -> string
  val broadcast : t
  val pp : Format.formatter -> t -> unit
end

module Fault : sig
  (** A fault-injection schedule for a simulated medium.

      One [Fault.t] hangs off every Ethernet segment (and every station
      on it), and off every Datakit switch (and every line on it).  A
      schedule can combine:

      - uniform random loss ({!set_loss});
      - Gilbert-style on/off {e burst} loss ({!set_burst}): a two-state
        chain stepped once per frame, losing frames with a separate
        probability while "in burst";
      - duplication ({!set_dup}): the copy trails the original by one
        frame time;
      - bounded reordering ({!set_reorder}): a reordered frame is
        delivered [delay] seconds late, so later frames overtake it —
        the delay bounds how far it can slip;
      - added jitter ({!set_jitter});
      - timed partitions ({!partition}) and link flaps ({!flap}): every
        frame transmitted inside a partition window is discarded;
      - a deterministic per-payload filter ({!set_filter}) for tests
        that must kill one specific packet.

      {b Determinism contract}: every probabilistic decision is drawn
      from the engine's seeded RNG at {e transmit} time, in attachment
      order, and a probability of zero draws nothing — so same-seed
      runs are byte-identical, and an empty schedule leaves the RNG
      stream exactly as it was before this layer existed.

      Every injected fault is routed through one choke point that bumps
      the would-be receiver's stats and emits a tagged
      {!Obs.Event.Fault} event ([fault.drop], [fault.dup],
      [fault.reorder], [fault.partition] counters). *)

  type t

  type verdict = {
    v_drop : string option;  (** reason; [None] = deliver *)
    v_dup : bool;
    v_reorder : bool;
    v_delay : float;  (** seconds added to propagation latency *)
  }

  val pass : verdict
  (** The no-fault verdict: deliver on time. *)

  val create : unit -> t
  (** An empty schedule: passes everything, draws no randomness. *)

  val set_loss : t -> float -> unit
  (** Uniform per-frame loss probability.
      @raise Invalid_argument unless in [0,1]. *)

  val set_burst : t -> p_enter:float -> p_exit:float -> loss:float -> unit
  (** Gilbert on/off loss.  Stationary burst occupancy is
      [p_enter /. (p_enter +. p_exit)]; mean burst length [1/p_exit]
      frames; frames inside a burst are lost with [loss]. *)

  val clear_burst : t -> unit

  val set_dup : t -> float -> unit
  (** Per-frame duplication probability. *)

  val set_reorder : ?delay:float -> t -> float -> unit
  (** Per-frame probability of delivering this frame [delay] (default
      2 ms) late, letting successors overtake it. *)

  val set_jitter : t -> float -> unit
  (** Uniform extra delivery delay in [0, jitter) seconds. *)

  val partition : t -> from_:float -> until:float -> unit
  (** Discard every frame transmitted in [[from_, until)] (absolute
      virtual time).  Windows accumulate. *)

  val heal : t -> unit
  (** Remove all partition windows. *)

  val flap : t -> from_:float -> until:float -> period:float -> down:float -> unit
  (** A link that goes dark for the first [down] fraction of every
      [period] seconds between [from_] and [until]. *)

  val partitioned : t -> float -> bool
  (** Is the medium partitioned at this time? *)

  val set_filter : t -> (string -> string option) -> unit
  (** Deterministic drop hook: called with each frame payload; return
      [Some reason] to discard it.  Runs before any random draw. *)

  val clear_filter : t -> unit

  val active : t -> bool
  (** Whether any fault is configured (fast-path guard). *)

  val decide : t -> Random.State.t -> now:float -> string -> verdict
  (** One per-frame decision; steps the burst chain.  Exposed for the
      media implementations and for determinism tests. *)

  val combine : verdict -> verdict -> verdict
  (** Merge a segment-level and a station-level verdict: first drop
      wins; dup/reorder or; delays add. *)

  val describe : t -> string
  (** Human-readable one-line summary of the schedule. *)
end

module Ether : sig
  (** A broadcast segment shared by every attached station. *)

  type t

  type frame = {
    src : Eaddr.t;
    dst : Eaddr.t;
    etype : int;  (** packet type, e.g. 2048 = IP, 2054 = ARP *)
    payload : string;
  }

  type nic
  (** One station's interface on a segment. *)

  type stats = {
    mutable in_packets : int;
    mutable out_packets : int;
    mutable in_bytes : int;
    mutable out_bytes : int;
    mutable crc_errors : int;  (** frames lost on the wire *)
    mutable overflows : int;  (** frames dropped because rx was full *)
    mutable drops_injected : int;
        (** injected drops of every kind (loss, burst, partition,
            filter) this station would have received *)
    mutable dups_injected : int;  (** injected duplicate deliveries *)
    mutable reorders_injected : int;  (** injected late deliveries *)
  }

  val create :
    ?bandwidth_bps:float ->
    ?latency:float ->
    ?loss:float ->
    ?frame_overhead:float ->
    name:string ->
    Sim.Engine.t ->
    t
  (** [bandwidth_bps] defaults to 10e6 (the paper's era), [latency] to
      50e-6 s, [loss] to 0.  [frame_overhead] (default 0) adds a fixed
      per-frame occupancy to the medium — preamble, interframe gap, and
      controller setup, which dominated small-frame cost on 1993
      hardware. *)

  val faults : t -> Fault.t
  (** The segment-wide fault schedule, applied once per frame. *)

  val set_loss : t -> float -> unit
  (** Change the uniform frame-loss probability (used by the congestion
      sweep).  Alias for [Fault.set_loss (faults t)]. *)

  val name : t -> string
  val engine : t -> Sim.Engine.t

  val attach : t -> Eaddr.t -> nic
  (** @raise Invalid_argument if the address is already on the
      segment. *)

  val nic_addr : nic -> Eaddr.t
  val nic_stats : nic -> stats

  val nic_faults : nic -> Fault.t
  (** This station's own fault schedule, applied (after the segment's)
      to every frame it would receive — partitioning one station models
      unplugging its transceiver. *)

  val set_rx : nic -> (frame -> unit) -> unit
  (** Delivery callback: called once per frame addressed to this
      station (unicast match, broadcast, or any frame if promiscuous).
      Interrupt context: must not block. *)

  val set_promiscuous : nic -> bool -> unit

  val transmit : nic -> frame -> unit
  (** Queue a frame for the wire.  The segment serializes transmissions
      (one frame on the wire at a time) and delivers after transmission
      plus propagation time; lost frames count as [crc_errors] at every
      would-be receiver. *)

  val min_frame : int
  (** 60 bytes: shorter payloads are padded on the wire for timing
      purposes. *)

  val header_bytes : int
  (** 14-byte Ethernet header + 4-byte CRC counted in wire time. *)
end

module Fiber : sig
  (** A Cyclone-style point-to-point fiber link: reliable, in-order
      message delivery with very low per-message overhead ("copying
      messages from system memory to fiber without intermediate
      buffering"). *)

  type endpoint

  val create_pair :
    ?bandwidth_bps:float ->
    ?latency:float ->
    name:string ->
    Sim.Engine.t ->
    endpoint * endpoint
  (** [bandwidth_bps] defaults to 125e6, [latency] to 10e-6 s. *)

  val send : endpoint -> string -> unit
  (** Transmit one delimited message to the peer. *)

  val set_rx : endpoint -> (string -> unit) -> unit
  val name : endpoint -> string
  val engine : endpoint -> Sim.Engine.t
end

module Serial : sig
  (** An RS232/ISDN-style full-duplex byte pipe clocked at a baud
      rate. *)

  type endpoint

  val create_pair :
    ?baud:int -> name:string -> Sim.Engine.t -> endpoint * endpoint
  (** [baud] defaults to 9600; 10 bit times per byte (start/stop). *)

  val set_baud : endpoint -> int -> unit
  (** Reclock both directions — what writing [b1200] to [/dev/eia1ctl]
      does. *)

  val baud : endpoint -> int
  val send : endpoint -> string -> unit
  val set_rx : endpoint -> (string -> unit) -> unit
  val engine : endpoint -> Sim.Engine.t
end
