let src = Logs.Src.create "netsim" ~doc:"simulated physical media"

module Log = (val Logs.src_log src : Logs.LOG)

module Eaddr = struct
  type t = string

  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

  let of_string s =
    if String.length s <> 12 || not (String.for_all is_hex s) then
      invalid_arg ("Eaddr.of_string: " ^ s);
    String.lowercase_ascii s

  let to_string t = t
  let broadcast = "ffffffffffff"
  let pp fmt t = Format.pp_print_string fmt t
end

module Ether = struct
  type frame = {
    src : Eaddr.t;
    dst : Eaddr.t;
    etype : int;
    payload : string;
  }

  type stats = {
    mutable in_packets : int;
    mutable out_packets : int;
    mutable in_bytes : int;
    mutable out_bytes : int;
    mutable crc_errors : int;
    mutable overflows : int;
  }

  type nic = {
    addr : Eaddr.t;
    seg : t;
    mutable rx : frame -> unit;
    mutable promiscuous : bool;
    stats : stats;
  }

  and t = {
    ename : string;
    eng : Sim.Engine.t;
    bandwidth : float;
    latency : float;
    frame_overhead : float;
    mutable loss : float;
    mutable stations : nic list;
    mutable busy_until : float;
  }

  let min_frame = 60
  let header_bytes = 18

  let create ?(bandwidth_bps = 10e6) ?(latency = 50e-6) ?(loss = 0.)
      ?(frame_overhead = 0.) ~name eng =
    {
      ename = name;
      eng;
      bandwidth = bandwidth_bps;
      latency;
      frame_overhead;
      loss;
      stations = [];
      busy_until = 0.;
    }

  let set_loss t p = t.loss <- p
  let name t = t.ename
  let engine t = t.eng

  let attach t addr =
    if List.exists (fun n -> n.addr = addr) t.stations then
      invalid_arg
        (Printf.sprintf "Ether.attach: %s already on %s"
           (Eaddr.to_string addr) t.ename);
    let nic =
      {
        addr;
        seg = t;
        rx = ignore;
        promiscuous = false;
        stats =
          {
            in_packets = 0;
            out_packets = 0;
            in_bytes = 0;
            out_bytes = 0;
            crc_errors = 0;
            overflows = 0;
          };
      }
    in
    t.stations <- nic :: t.stations;
    nic

  let nic_addr n = n.addr
  let nic_stats n = n.stats
  let set_rx n fn = n.rx <- fn
  let set_promiscuous n b = n.promiscuous <- b

  let wire_time t frame =
    let bytes = max min_frame (String.length frame.payload) + header_bytes in
    (float_of_int (bytes * 8) /. t.bandwidth) +. t.frame_overhead

  let emit_pkt t op frame =
    match Sim.Engine.obs t.eng with
    | None -> ()
    | Some tr ->
      let proto = Obs.Snoopy.frame_proto ~etype:frame.etype frame.payload in
      Obs.Trace.emit tr
        (Obs.Event.Packet
           {
             medium = t.ename;
             op;
             src = Eaddr.to_string frame.src;
             dst = Eaddr.to_string frame.dst;
             proto;
             bytes = String.length frame.payload;
           });
      Obs.Trace.bump tr
        (match op with
        | Obs.Event.Tx -> "pkt.tx"
        | Obs.Event.Rx -> "pkt.rx"
        | Obs.Event.Drop _ -> "pkt.drop")
        1

  let transmit n frame =
    let t = n.seg in
    let now = Sim.Engine.now t.eng in
    n.stats.out_packets <- n.stats.out_packets + 1;
    n.stats.out_bytes <- n.stats.out_bytes + String.length frame.payload;
    emit_pkt t Obs.Event.Tx frame;
    (* the shared medium serializes frames *)
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start +. wire_time t frame in
    t.busy_until <- finish;
    let lost =
      t.loss > 0. && Random.State.float (Sim.Engine.random t.eng) 1.0 < t.loss
    in
    let deliver_at = finish +. t.latency in
    Sim.Engine.at t.eng deliver_at (fun () ->
        List.iter
          (fun station ->
            if station.addr <> n.addr then begin
              let wants =
                station.promiscuous
                || station.addr = frame.dst
                || frame.dst = Eaddr.broadcast
              in
              if wants then
                if lost then begin
                  station.stats.crc_errors <- station.stats.crc_errors + 1;
                  emit_pkt t (Obs.Event.Drop "crc") frame
                end
                else begin
                  station.stats.in_packets <- station.stats.in_packets + 1;
                  station.stats.in_bytes <-
                    station.stats.in_bytes + String.length frame.payload;
                  emit_pkt t Obs.Event.Rx frame;
                  station.rx frame
                end
            end)
          t.stations);
    if lost then
      Log.debug (fun m ->
          m "%s: frame %s->%s type %d lost" t.ename
            (Eaddr.to_string frame.src)
            (Eaddr.to_string frame.dst)
            frame.etype)
end

module Fiber = struct
  type endpoint = {
    fname : string;
    eng : Sim.Engine.t;
    bandwidth : float;
    latency : float;
    mutable peer : endpoint option;
    mutable rx : string -> unit;
    mutable busy_until : float;
  }

  let create_pair ?(bandwidth_bps = 125e6) ?(latency = 10e-6) ~name eng =
    let mk suffix =
      {
        fname = name ^ suffix;
        eng;
        bandwidth = bandwidth_bps;
        latency;
        peer = None;
        rx = ignore;
        busy_until = 0.;
      }
    in
    let a = mk ".0" and b = mk ".1" in
    a.peer <- Some b;
    b.peer <- Some a;
    (a, b)

  let name e = e.fname
  let engine e = e.eng
  let set_rx e fn = e.rx <- fn

  let send e msg =
    match e.peer with
    | None -> ()
    | Some peer ->
      let now = Sim.Engine.now e.eng in
      let start = if e.busy_until > now then e.busy_until else now in
      let finish =
        start +. (float_of_int (String.length msg * 8) /. e.bandwidth)
      in
      e.busy_until <- finish;
      Sim.Engine.at e.eng (finish +. e.latency) (fun () -> peer.rx msg)
end

module Serial = struct
  type endpoint = {
    sname : string;
    eng : Sim.Engine.t;
    mutable baud_ : int;
    mutable peer : endpoint option;
    mutable rx : string -> unit;
    mutable busy_until : float;
  }

  let create_pair ?(baud = 9600) ~name eng =
    let mk suffix =
      {
        sname = name ^ suffix;
        eng;
        baud_ = baud;
        peer = None;
        rx = ignore;
        busy_until = 0.;
      }
    in
    let a = mk ".0" and b = mk ".1" in
    a.peer <- Some b;
    b.peer <- Some a;
    (a, b)

  let set_baud e n =
    e.baud_ <- n;
    match e.peer with None -> () | Some p -> p.baud_ <- n

  let baud e = e.baud_
  let set_rx e fn = e.rx <- fn
  let engine e = e.eng

  let send e msg =
    match e.peer with
    | None -> ()
    | Some peer ->
      let now = Sim.Engine.now e.eng in
      let start = if e.busy_until > now then e.busy_until else now in
      (* 10 bit times per byte: start bit, 8 data, stop bit *)
      let finish =
        start +. (float_of_int (String.length msg * 10) /. float_of_int e.baud_)
      in
      e.busy_until <- finish;
      Sim.Engine.at e.eng finish (fun () -> peer.rx msg)
end
