let src = Logs.Src.create "netsim" ~doc:"simulated physical media"

module Log = (val Logs.src_log src : Logs.LOG)

module Eaddr = struct
  type t = string

  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

  let of_string s =
    if String.length s <> 12 || not (String.for_all is_hex s) then
      invalid_arg ("Eaddr.of_string: " ^ s);
    String.lowercase_ascii s

  let to_string t = t
  let broadcast = "ffffffffffff"
  let pp fmt t = Format.pp_print_string fmt t
end

module Fault = struct
  (* A per-medium (or per-station) fault schedule.  Every decision is
     drawn from the engine's seeded RNG at transmit time, in a fixed
     order, so a given seed produces an identical fault pattern — and
     because a probability of zero draws nothing, an all-zero schedule
     consumes no randomness at all (existing seeded runs are
     unperturbed). *)

  type verdict = {
    v_drop : string option;  (* reason; None = deliver *)
    v_dup : bool;
    v_reorder : bool;
    v_delay : float;  (* added to propagation latency *)
  }

  let pass = { v_drop = None; v_dup = false; v_reorder = false; v_delay = 0. }

  type t = {
    mutable loss : float;  (* uniform per-frame loss *)
    (* Gilbert on/off loss: a two-state chain stepped once per frame;
       while "in burst" frames are lost with [burst_loss] *)
    mutable burst_enter : float;
    mutable burst_exit : float;
    mutable burst_loss : float;
    mutable in_burst : bool;
    mutable dup : float;  (* per-frame duplication probability *)
    mutable reorder : float;  (* per-frame probability of a late copy *)
    mutable reorder_delay : float;  (* how late: bounds the reordering *)
    mutable jitter : float;  (* uniform extra delay in [0, jitter) *)
    mutable partitions : (float * float) list;  (* absolute [from, until) *)
    mutable filter : (string -> string option) option;
        (* deterministic per-payload drop hook, for tests *)
  }

  let create () =
    {
      loss = 0.;
      burst_enter = 0.;
      burst_exit = 0.;
      burst_loss = 0.;
      in_burst = false;
      dup = 0.;
      reorder = 0.;
      reorder_delay = 2e-3;
      jitter = 0.;
      partitions = [];
      filter = None;
    }

  let check_prob fn p =
    if p < 0. || p > 1. || Float.is_nan p then
      invalid_arg (Printf.sprintf "Fault.%s: probability %g" fn p)

  let set_loss t p =
    check_prob "set_loss" p;
    t.loss <- p

  let set_burst t ~p_enter ~p_exit ~loss =
    check_prob "set_burst" p_enter;
    check_prob "set_burst" p_exit;
    check_prob "set_burst" loss;
    t.burst_enter <- p_enter;
    t.burst_exit <- p_exit;
    t.burst_loss <- loss;
    t.in_burst <- false

  let clear_burst t =
    t.burst_enter <- 0.;
    t.burst_exit <- 0.;
    t.burst_loss <- 0.;
    t.in_burst <- false

  let set_dup t p =
    check_prob "set_dup" p;
    t.dup <- p

  let set_reorder ?delay t p =
    check_prob "set_reorder" p;
    t.reorder <- p;
    match delay with None -> () | Some d -> t.reorder_delay <- d

  let set_jitter t j = t.jitter <- max 0. j

  let partition t ~from_ ~until =
    if until > from_ then
      t.partitions <- List.sort compare ((from_, until) :: t.partitions)

  let heal t = t.partitions <- []

  let flap t ~from_ ~until ~period ~down =
    (* a link that goes dark for the first [down] fraction of every
       [period], between [from_] and [until] *)
    if period <= 0. || down <= 0. then invalid_arg "Fault.flap";
    let rec go s =
      if s < until then begin
        partition t ~from_:s ~until:(min until (s +. (period *. min 1. down)));
        go (s +. period)
      end
    in
    go from_

  let partitioned t now =
    List.exists (fun (a, b) -> now >= a && now < b) t.partitions

  let set_filter t fn = t.filter <- Some fn
  let clear_filter t = t.filter <- None

  let active t =
    t.loss > 0. || t.burst_enter > 0. || t.in_burst || t.dup > 0.
    || t.reorder > 0. || t.jitter > 0. || t.partitions <> []
    || t.filter <> None

  let decide t rng ~now payload =
    if partitioned t now then { pass with v_drop = Some "partition" }
    else
      match match t.filter with Some f -> f payload | None -> None with
      | Some reason -> { pass with v_drop = Some reason }
      | None ->
        if t.burst_enter > 0. || t.in_burst then begin
          let p = if t.in_burst then t.burst_exit else t.burst_enter in
          if p > 0. && Random.State.float rng 1.0 < p then
            t.in_burst <- not t.in_burst
        end;
        let ploss = t.loss +. (if t.in_burst then t.burst_loss else 0.) in
        if ploss > 0. && Random.State.float rng 1.0 < ploss then
          { pass with v_drop = Some (if t.in_burst then "burst" else "loss") }
        else begin
          let dup = t.dup > 0. && Random.State.float rng 1.0 < t.dup in
          let reorder =
            t.reorder > 0. && Random.State.float rng 1.0 < t.reorder
          in
          let delay =
            (if t.jitter > 0. then Random.State.float rng t.jitter else 0.)
            +. (if reorder then t.reorder_delay else 0.)
          in
          { v_drop = None; v_dup = dup; v_reorder = reorder; v_delay = delay }
        end

  let combine a b =
    match (a.v_drop, b.v_drop) with
    | Some _, _ -> a
    | None, Some _ -> b
    | None, None ->
      {
        v_drop = None;
        v_dup = a.v_dup || b.v_dup;
        v_reorder = a.v_reorder || b.v_reorder;
        v_delay = a.v_delay +. b.v_delay;
      }

  let describe t =
    let parts =
      List.filter
        (fun s -> s <> "")
        [
          (if t.loss > 0. then Printf.sprintf "loss %.3f" t.loss else "");
          (if t.burst_enter > 0. then
             Printf.sprintf "burst %.3f/%.3f@%.2f" t.burst_enter t.burst_exit
               t.burst_loss
           else "");
          (if t.dup > 0. then Printf.sprintf "dup %.3f" t.dup else "");
          (if t.reorder > 0. then
             Printf.sprintf "reorder %.3f+%.1fms" t.reorder
               (t.reorder_delay *. 1e3)
           else "");
          (if t.jitter > 0. then
             Printf.sprintf "jitter %.1fms" (t.jitter *. 1e3)
           else "");
          (match t.partitions with
          | [] -> ""
          | ps -> Printf.sprintf "partitions %d" (List.length ps));
          (if t.filter <> None then "filter" else "");
        ]
    in
    if parts = [] then "none" else String.concat " " parts
end

module Ether = struct
  type frame = {
    src : Eaddr.t;
    dst : Eaddr.t;
    etype : int;
    payload : string;
  }

  type stats = {
    mutable in_packets : int;
    mutable out_packets : int;
    mutable in_bytes : int;
    mutable out_bytes : int;
    mutable crc_errors : int;
    mutable overflows : int;
    mutable drops_injected : int;
    mutable dups_injected : int;
    mutable reorders_injected : int;
  }

  type nic = {
    addr : Eaddr.t;
    seg : t;
    mutable rx : frame -> unit;
    mutable promiscuous : bool;
    stats : stats;
    nfault : Fault.t;
  }

  and t = {
    ename : string;
    eng : Sim.Engine.t;
    bandwidth : float;
    latency : float;
    frame_overhead : float;
    sfault : Fault.t;
    mutable stations : nic list;
    mutable busy_until : float;
  }

  let min_frame = 60
  let header_bytes = 18

  let create ?(bandwidth_bps = 10e6) ?(latency = 50e-6) ?(loss = 0.)
      ?(frame_overhead = 0.) ~name eng =
    let sfault = Fault.create () in
    Fault.set_loss sfault loss;
    {
      ename = name;
      eng;
      bandwidth = bandwidth_bps;
      latency;
      frame_overhead;
      sfault;
      stations = [];
      busy_until = 0.;
    }

  let faults t = t.sfault
  let set_loss t p = Fault.set_loss t.sfault p
  let name t = t.ename
  let engine t = t.eng

  let attach t addr =
    if List.exists (fun n -> n.addr = addr) t.stations then
      invalid_arg
        (Printf.sprintf "Ether.attach: %s already on %s"
           (Eaddr.to_string addr) t.ename);
    let nic =
      {
        addr;
        seg = t;
        rx = ignore;
        promiscuous = false;
        stats =
          {
            in_packets = 0;
            out_packets = 0;
            in_bytes = 0;
            out_bytes = 0;
            crc_errors = 0;
            overflows = 0;
            drops_injected = 0;
            dups_injected = 0;
            reorders_injected = 0;
          };
        nfault = Fault.create ();
      }
    in
    t.stations <- nic :: t.stations;
    nic

  let nic_addr n = n.addr
  let nic_stats n = n.stats
  let nic_faults n = n.nfault
  let set_rx n fn = n.rx <- fn
  let set_promiscuous n b = n.promiscuous <- b

  let wire_time t frame =
    let bytes = max min_frame (String.length frame.payload) + header_bytes in
    (float_of_int (bytes * 8) /. t.bandwidth) +. t.frame_overhead

  let emit_pkt t op frame =
    match Sim.Engine.obs t.eng with
    | None -> ()
    | Some tr ->
      let proto = Obs.Snoopy.frame_proto ~etype:frame.etype frame.payload in
      Obs.Trace.emit tr
        (Obs.Event.Packet
           {
             medium = t.ename;
             op;
             src = Eaddr.to_string frame.src;
             dst = Eaddr.to_string frame.dst;
             proto;
             bytes = String.length frame.payload;
           });
      Obs.Trace.bump tr
        (match op with
        | Obs.Event.Tx -> "pkt.tx"
        | Obs.Event.Rx -> "pkt.rx"
        | Obs.Event.Drop _ -> "pkt.drop")
        1

  (* The choke point: every injected fault — drop (incl. partition),
     dup, reorder — passes through here exactly once per affected
     station, bumping the would-be receiver's stats and emitting the
     tagged Obs event so snoopy/p9stat can attribute it. *)
  let inject t station ~kind ~reason frame =
    (match kind with
    | `Drop ->
      station.stats.drops_injected <- station.stats.drops_injected + 1;
      (* frames lost on the wire still look like CRC noise to the
         station, as before *)
      (match reason with
      | "loss" | "burst" | "crc" ->
        station.stats.crc_errors <- station.stats.crc_errors + 1
      | _ -> ())
    | `Dup -> station.stats.dups_injected <- station.stats.dups_injected + 1
    | `Reorder ->
      station.stats.reorders_injected <- station.stats.reorders_injected + 1);
    match Sim.Engine.obs t.eng with
    | None -> ()
    | Some tr ->
      let kind_s =
        match kind with
        | `Drop -> if reason = "partition" then "partition" else "drop"
        | `Dup -> "dup"
        | `Reorder -> "reorder"
      in
      Obs.Trace.emit tr
        (Obs.Event.Fault
           {
             medium = t.ename;
             kind = kind_s;
             reason;
             src = Eaddr.to_string frame.src;
             dst = Eaddr.to_string station.addr;
             proto = Obs.Snoopy.frame_proto ~etype:frame.etype frame.payload;
             bytes = String.length frame.payload;
           });
      Obs.Trace.bump tr ("fault." ^ kind_s) 1;
      if kind = `Drop then Obs.Trace.bump tr "pkt.drop" 1

  let rx_deliver t station frame =
    station.stats.in_packets <- station.stats.in_packets + 1;
    station.stats.in_bytes <-
      station.stats.in_bytes + String.length frame.payload;
    emit_pkt t Obs.Event.Rx frame;
    station.rx frame

  let transmit n frame =
    let t = n.seg in
    let now = Sim.Engine.now t.eng in
    n.stats.out_packets <- n.stats.out_packets + 1;
    n.stats.out_bytes <- n.stats.out_bytes + String.length frame.payload;
    emit_pkt t Obs.Event.Tx frame;
    (* the shared medium serializes frames *)
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start +. wire_time t frame in
    t.busy_until <- finish;
    let rng = Sim.Engine.random t.eng in
    (* all fault decisions are drawn here, at transmit time, in station
       order — never inside delayed callbacks — so the draw sequence
       (and with it the whole run) is a pure function of the seed *)
    let seg_v =
      if Fault.active t.sfault then Fault.decide t.sfault rng ~now frame.payload
      else Fault.pass
    in
    let deliver_at = finish +. t.latency in
    List.iter
      (fun station ->
        if station.addr <> n.addr then begin
          let wants =
            station.promiscuous
            || station.addr = frame.dst
            || frame.dst = Eaddr.broadcast
          in
          if wants then begin
            let v =
              if Fault.active station.nfault then
                Fault.combine seg_v
                  (Fault.decide station.nfault rng ~now frame.payload)
              else seg_v
            in
            match v.Fault.v_drop with
            | Some reason ->
              inject t station ~kind:`Drop ~reason frame;
              Log.debug (fun m ->
                  m "%s: frame %s->%s type %d dropped (%s)" t.ename
                    (Eaddr.to_string frame.src)
                    (Eaddr.to_string frame.dst)
                    frame.etype reason)
            | None ->
              if v.Fault.v_reorder then
                inject t station ~kind:`Reorder ~reason:"reorder" frame;
              Sim.Engine.at ~label:"ether" t.eng
                (deliver_at +. v.Fault.v_delay)
                (fun () -> rx_deliver t station frame);
              if v.Fault.v_dup then begin
                inject t station ~kind:`Dup ~reason:"dup" frame;
                (* the copy trails by one frame time, like a stale
                   retransmission from a confused bridge *)
                Sim.Engine.at ~label:"ether" t.eng
                  (deliver_at +. v.Fault.v_delay +. wire_time t frame)
                  (fun () -> rx_deliver t station frame)
              end
          end
        end)
      t.stations
end

module Fiber = struct
  type endpoint = {
    fname : string;
    eng : Sim.Engine.t;
    bandwidth : float;
    latency : float;
    mutable peer : endpoint option;
    mutable rx : string -> unit;
    mutable busy_until : float;
  }

  let create_pair ?(bandwidth_bps = 125e6) ?(latency = 10e-6) ~name eng =
    let mk suffix =
      {
        fname = name ^ suffix;
        eng;
        bandwidth = bandwidth_bps;
        latency;
        peer = None;
        rx = ignore;
        busy_until = 0.;
      }
    in
    let a = mk ".0" and b = mk ".1" in
    a.peer <- Some b;
    b.peer <- Some a;
    (a, b)

  let name e = e.fname
  let engine e = e.eng
  let set_rx e fn = e.rx <- fn

  let send e msg =
    match e.peer with
    | None -> ()
    | Some peer ->
      let now = Sim.Engine.now e.eng in
      let start = if e.busy_until > now then e.busy_until else now in
      let finish =
        start +. (float_of_int (String.length msg * 8) /. e.bandwidth)
      in
      e.busy_until <- finish;
      Sim.Engine.at ~label:"ether" e.eng (finish +. e.latency) (fun () -> peer.rx msg)
end

module Serial = struct
  type endpoint = {
    sname : string;
    eng : Sim.Engine.t;
    mutable baud_ : int;
    mutable peer : endpoint option;
    mutable rx : string -> unit;
    mutable busy_until : float;
  }

  let create_pair ?(baud = 9600) ~name eng =
    let mk suffix =
      {
        sname = name ^ suffix;
        eng;
        baud_ = baud;
        peer = None;
        rx = ignore;
        busy_until = 0.;
      }
    in
    let a = mk ".0" and b = mk ".1" in
    a.peer <- Some b;
    b.peer <- Some a;
    (a, b)

  let set_baud e n =
    e.baud_ <- n;
    match e.peer with None -> () | Some p -> p.baud_ <- n

  let baud e = e.baud_
  let set_rx e fn = e.rx <- fn
  let engine e = e.eng

  let send e msg =
    match e.peer with
    | None -> ()
    | Some peer ->
      let now = Sim.Engine.now e.eng in
      let start = if e.busy_until > now then e.busy_until else now in
      (* 10 bit times per byte: start bit, 8 data, stop bit *)
      let finish =
        start +. (float_of_int (String.length msg * 10) /. float_of_int e.baud_)
      in
      e.busy_until <- finish;
      Sim.Engine.at ~label:"ether" e.eng finish (fun () -> peer.rx msg)
end
