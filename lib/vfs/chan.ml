type t =
  | Chan : {
      devid : int;
      ops : 'n Ninep.Server.fs;
      node : 'n;
    }
      -> t

exception Error of string

(* servers turn uncaught handler exceptions into Rerror text; render
   channel errors as their message so "connection hung up" crosses an
   exportfs hop intact instead of as Vfs__Chan.Error(...) *)
let () =
  Printexc.register_printer (function Error e -> Some e | _ -> None)

let ok = function Ok v -> v | Error e -> raise (Error e)

let attach ~devid ops ~uname ~aname =
  let node = ok (ops.Ninep.Server.fs_attach ~uname ~aname) in
  Chan { devid; ops; node }

let qid (Chan c) = c.ops.Ninep.Server.fs_qid c.node
let is_dir c = Ninep.Fcall.qid_is_dir (qid c)
let key (Chan c as chan) = (c.devid, (qid chan).Ninep.Fcall.qpath)

let clone (Chan c) =
  Chan { c with node = c.ops.Ninep.Server.fs_clone c.node }

let walk1 (Chan c) name =
  let node = c.ops.Ninep.Server.fs_clone c.node in
  match c.ops.Ninep.Server.fs_walk node name with
  | Ok node' -> Ok (Chan { c with node = node' })
  | Error e -> Error e

let open_ (Chan c) ?(trunc = false) mode =
  ok (c.ops.Ninep.Server.fs_open c.node mode ~trunc)

let create (Chan c) ~name ~perm mode =
  let node = ok (c.ops.Ninep.Server.fs_create c.node ~name ~perm mode) in
  Chan { c with node }

let read (Chan c) ~offset ~count =
  ok (c.ops.Ninep.Server.fs_read c.node ~offset ~count)

let write (Chan c) ~offset data =
  ok (c.ops.Ninep.Server.fs_write c.node ~offset ~data)

let stat (Chan c) = ok (c.ops.Ninep.Server.fs_stat c.node)
let wstat (Chan c) d = ok (c.ops.Ninep.Server.fs_wstat c.node d)
let remove (Chan c) = ok (c.ops.Ninep.Server.fs_remove c.node)
let clunk (Chan c) = c.ops.Ninep.Server.fs_clunk c.node
