type fd = int

type open_file = {
  of_chan : Chan.t;
  of_path : string;
  mutable of_offset : int64;
  (* union directories are snapshotted at open so offsets are stable *)
  mutable of_dirdata : string option;
  (* dup and fork share the record; the channel is clunked when the
     last reference closes *)
  mutable of_refs : int;
}

type t = {
  env_ns : Ns.t;
  env_uname : string;
  mutable env_dot : string;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
}

let make ~ns ~uname =
  { env_ns = ns; env_uname = uname; env_dot = "/"; fds = Hashtbl.create 17;
    next_fd = 0 }

let fork ?(share_ns = false) t =
  (* descriptors are inherited across fork, sharing channel and offset
     (exactly what the paper's echo server relies on: the child accepts
     the call on the listen fd, the parent closes its copy) *)
  let fds = Hashtbl.create 17 in
  Hashtbl.iter
    (fun fd f ->
      f.of_refs <- f.of_refs + 1;
      Hashtbl.replace fds fd f)
    t.fds;
  {
    env_ns = (if share_ns then t.env_ns else Ns.fork t.env_ns);
    env_uname = t.env_uname;
    env_dot = t.env_dot;
    fds;
    next_fd = t.next_fd;
  }

let ns t = t.env_ns
let uname t = t.env_uname
let dot t = t.env_dot

let abspath t path =
  "/" ^ String.concat "/" (Ns.normalize ~dot:t.env_dot path)

let resolve t path = Ns.resolve t.env_ns (abspath t path)

let chdir t path =
  let p = abspath t path in
  let c = resolve t p in
  if not (Chan.is_dir c) then raise (Chan.Error (p ^ ": not a directory"));
  Chan.clunk c;
  t.env_dot <- p

let install t ofile =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd ofile;
  fd

let fetch t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some f -> f
  | None -> raise (Chan.Error (Printf.sprintf "bad file descriptor %d" fd))

let union_dir_data t path =
  (* the union lives on the underlying (mounted-upon) channel, so
     resolve without entering the final mount *)
  let under = Ns.resolve_for_mount t.env_ns path in
  let entries = Ns.read_dir t.env_ns under in
  Chan.clunk under;
  String.concat "" (List.map Ninep.Fcall.encode_dir entries)

let open_ t path ?(trunc = false) mode =
  let c = resolve t path in
  if Chan.is_dir c then begin
    (* directory reads must see the union: snapshot it before open *)
    let data = union_dir_data t (abspath t path) in
    Chan.open_ c mode;
    install t
      { of_chan = c; of_path = abspath t path; of_offset = 0L;
        of_dirdata = Some data; of_refs = 1 }
  end
  else begin
    Chan.open_ c ~trunc mode;
    install t
      { of_chan = c; of_path = abspath t path; of_offset = 0L;
        of_dirdata = None; of_refs = 1 }
  end

let create t path ~perm mode =
  let comps = Ns.normalize ~dot:t.env_dot path in
  match List.rev comps with
  | [] -> raise (Chan.Error "create: empty path")
  | name :: rev_dir ->
    let dirpath = "/" ^ String.concat "/" (List.rev rev_dir) in
    (* the union lives on the underlying (mounted-upon) channel;
       create happens in the first union member with MCREATE set *)
    let parent = Ns.resolve_for_mount t.env_ns dirpath in
    let target =
      match Ns.create_target t.env_ns parent with
      | Ok c ->
        Chan.clunk parent;
        c
      | Error e ->
        Chan.clunk parent;
        raise (Chan.Error (Printf.sprintf "%s: %s" dirpath e))
    in
    let c = Chan.create target ~name ~perm mode in
    install t
      { of_chan = c; of_path = abspath t path; of_offset = 0L;
        of_dirdata = None; of_refs = 1 }

let pread t fd ~offset n =
  let f = fetch t fd in
  match f.of_dirdata with
  | Some data -> Ninep.Server.slice data ~offset ~count:n
  | None -> Chan.read f.of_chan ~offset ~count:n

let read t fd n =
  let f = fetch t fd in
  let data =
    match f.of_dirdata with
    | Some dirdata ->
      let n = n - (n mod Ninep.Fcall.dirlen) in
      Ninep.Server.slice dirdata ~offset:f.of_offset ~count:n
    | None -> Chan.read f.of_chan ~offset:f.of_offset ~count:n
  in
  f.of_offset <- Int64.add f.of_offset (Int64.of_int (String.length data));
  data

let pwrite t fd ~offset data =
  let f = fetch t fd in
  Chan.write f.of_chan ~offset data

let write t fd data =
  let f = fetch t fd in
  let n = Chan.write f.of_chan ~offset:f.of_offset data in
  f.of_offset <- Int64.add f.of_offset (Int64.of_int n);
  n

let seek t fd off = (fetch t fd).of_offset <- off
let offset t fd = (fetch t fd).of_offset

let close t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some f ->
    Hashtbl.remove t.fds fd;
    f.of_refs <- f.of_refs - 1;
    if f.of_refs <= 0 then Chan.clunk f.of_chan
  | None -> ()

let dup t fd =
  let f = fetch t fd in
  (* Plan 9 dup shares the channel (and offset); sharing the record
     gives exactly that *)
  f.of_refs <- f.of_refs + 1;
  let fd' = t.next_fd in
  t.next_fd <- fd' + 1;
  Hashtbl.replace t.fds fd' f;
  fd'

let fd_path t fd = (fetch t fd).of_path

let stat t path =
  let c = resolve t path in
  let d = Chan.stat c in
  Chan.clunk c;
  d

let fstat t fd = Chan.stat (fetch t fd).of_chan

let wstat t path d =
  let c = resolve t path in
  Chan.wstat c d;
  Chan.clunk c

let remove t path =
  let c = resolve t path in
  Chan.remove c

let ls t path =
  let c = resolve t path in
  let entries =
    if Chan.is_dir c then begin
      let under = Ns.resolve_for_mount t.env_ns (abspath t path) in
      let es = Ns.read_dir t.env_ns under in
      Chan.clunk under;
      es
    end
    else [ Chan.stat c ]
  in
  Chan.clunk c;
  List.sort (fun a b -> compare a.Ninep.Fcall.d_name b.Ninep.Fcall.d_name) entries

let read_file t path =
  let fd = open_ t path Ninep.Fcall.Oread in
  let buf = Buffer.create 256 in
  let rec go () =
    let s = read t fd Ninep.Fcall.maxfdata in
    if s <> "" then begin
      Buffer.add_string buf s;
      go ()
    end
  in
  go ();
  close t fd;
  Buffer.contents buf

let write_file t path data =
  let fd =
    try open_ t path ~trunc:true Ninep.Fcall.Owrite
    with Chan.Error _ -> create t path ~perm:0o664l Ninep.Fcall.Owrite
  in
  ignore (write t fd data);
  close t fd

let install_chan t chan ~path =
  install t
    { of_chan = chan; of_path = path; of_offset = 0L; of_dirdata = None;
      of_refs = 1 }

let bind ?(mcreate = true) t ~src ~onto flag =
  let csrc = resolve t src in
  let conto = Ns.resolve_for_mount t.env_ns (abspath t onto) in
  Ns.bind ~mcreate t.env_ns ~src:csrc ~onto:conto flag

let mount_fs ?(mcreate = true) t fs ~onto flag =
  let devid = Ns.fresh_devid t.env_ns in
  let csrc = Chan.attach ~devid fs ~uname:t.env_uname ~aname:"" in
  let conto = Ns.resolve_for_mount t.env_ns (abspath t onto) in
  Ns.bind ~mcreate t.env_ns ~src:csrc ~onto:conto flag

let mount ?(mcreate = true) t client ?(aname = "") ~onto flag =
  let metrics = Obs.Metrics.create () in
  Ns.register_mount t.env_ns ~onto:(abspath t onto) metrics;
  Ninep.Client.on_death client (fun leaked ->
      Obs.Metrics.bump metrics "leaked_fids" leaked);
  let fs = Mnt.fs client ~aname ~metrics ~name:("mnt:" ^ onto) () in
  mount_fs ~mcreate t fs ~onto flag

let unmount ?src t ~onto =
  let under = Ns.resolve_for_mount t.env_ns (abspath t onto) in
  let csrc = Option.map (resolve t) src in
  Ns.unmount ?src:csrc t.env_ns ~onto:under
