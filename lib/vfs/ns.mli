(** Per-process name spaces (paper sections 2.1 and 6).

    "Each process assembles a view of the system by building a name
    space connecting its resources."  A name space is a root channel
    plus a mount table mapping mounted-upon channels to ordered union
    lists.  [import -a] style unions work exactly as the paper's
    example: "local entries supersede remote ones of the same name so
    networks on the local machine are chosen in preference to those
    supplied remotely."

    Path resolution is lexical for [.] and [..] (paths are normalized
    before walking) — a documented simplification over the 1993
    kernel's walk-through-dot-dot; modern shells do the same cleanup. *)

type t

type flag =
  | Repl  (** replace the mount point's contents (MREPL) *)
  | Before  (** union, new entries first (MBEFORE; [import -b]) *)
  | After  (** union, new entries last (MAFTER; [import -a]) *)

val make : root:'n Ninep.Server.fs -> uname:string -> t
(** A fresh name space rooted at [root] (attached with [uname]). *)

val fork : t -> t
(** Copy the mount table — the new name space evolves independently
    (rfork RFNAMEG). *)

val uname : t -> string
val root : t -> Chan.t

val fresh_devid : t -> int
(** Allocate an identity for a newly mounted server instance (the
    mount driver's channels must not collide with anyone else's). *)

val register_mount : t -> onto:string -> Obs.Metrics.t -> unit
(** Record a 9P mount's RPC counters under its mount-point path.  The
    registry is shared across {!fork}s — there is one ledger per
    machine, whichever process mounted. *)

val mounts : t -> (string * Obs.Metrics.t) list
(** All registered mounts, in mount order — the input for
    {!Mnt.stats_fs}. *)

val resolve : t -> string -> Chan.t
(** Walk an absolute, normalized path to a channel, applying mount
    table unions at every step.  @raise Chan.Error. *)

val resolve_for_mount : t -> string -> Chan.t
(** Like {!resolve}, but the final component does not enter an
    existing mount — so repeated binds onto one mount point stack in a
    single union, as the mount system call requires. *)

val walk1 : t -> Chan.t -> string -> (Chan.t, string) result
(** One-component, union-aware walk.  The result is the {e underlying}
    channel — call {!enter} before opening a file, so a channel that is
    itself a mount point keeps its union for further walks. *)

val enter : t -> Chan.t -> Chan.t
(** Cross into the tree mounted at a channel (the head of its union);
    identity when nothing is mounted there. *)

val bind : ?mcreate:bool -> t -> src:Chan.t -> onto:Chan.t -> flag -> unit
(** Install [src] over [onto] in the mount table.  With [Before]/
    [After] the original contents stay visible in union order.
    [mcreate] (default [true]) grants the new member the MCREATE bit:
    creation through the union may land in it (see {!create_target}).
    When a bind establishes a fresh union, the mounted-upon directory
    joins it with MCREATE set, preserving this table's historical
    create-in-the-underlying-directory behaviour — a documented
    divergence from the 1993 kernel, which required an explicit [-c]
    even there. *)

val unmount : ?src:Chan.t -> t -> onto:Chan.t -> unit
(** Drop every mount on [onto]; with [src], drop only the union
    member(s) whose channel key matches [src] (Plan 9's two-argument
    unmount), dissolving the union when the last member goes. *)

val union_of : t -> Chan.t -> Chan.t list
(** The ordered union list at a channel ([[c]] if nothing is
    mounted). *)

type member = { m_chan : Chan.t; m_create : bool }

val members : t -> Chan.t -> member list
(** Like {!union_of} but with each member's MCREATE bit. *)

val create_target : t -> Chan.t -> (Chan.t, string) result
(** Where a create through [c] lands: a clone of the first union
    member carrying MCREATE — or of [c] itself when nothing is mounted
    there.  [Error "mounted directory forbids creation"] when a union
    exists but no member allows creation. *)

val read_dir : t -> Chan.t -> Ninep.Fcall.dir list
(** Union directory listing: entries of every member, duplicates
    suppressed, first member wins.  A member that fails (e.g. its
    server is partitioned away) is skipped, not fatal — the union
    stays readable through the surviving members. *)

val chaos_union_lost_walk : bool ref
(** Selftest plant (never set outside [--selftest]): a union walk that
    hits a dead connection stops instead of falling through to the
    remaining members. *)

val normalize : dot:string -> string -> string list
(** Resolve a possibly-relative path against [dot], apply [.]/[..]
    lexically, return components. *)
