(** The system-call layer: what a Plan 9 process sees.

    An environment carries a name space, a user name, a working
    directory, and a file-descriptor table.  All calls may block the
    calling simulated process (reads on empty streams, RPCs to remote
    servers) and raise {!Chan.Error} on failure. *)

type t
type fd = int

val make : ns:Ns.t -> uname:string -> t
(** A fresh environment with an empty fd table and dot = "/". *)

val fork : ?share_ns:bool -> t -> t
(** New environment for a child process: the descriptor table is
    copied (entries share channels and offsets until closed, exactly
    Plan 9's fork) and the name space is forked — or shared when
    [share_ns], like rfork without RFNAMEG. *)

val ns : t -> Ns.t
val uname : t -> string
val dot : t -> string
val chdir : t -> string -> unit

(** {1 File operations} *)

val open_ : t -> string -> ?trunc:bool -> Ninep.Fcall.mode -> fd
val create : t -> string -> perm:int32 -> Ninep.Fcall.mode -> fd

val read : t -> fd -> int -> string
(** Advances the descriptor offset; [""] at EOF. *)

val write : t -> fd -> string -> int

val pread : t -> fd -> offset:int64 -> int -> string
(** Positional read; does not move the offset. *)

val pwrite : t -> fd -> offset:int64 -> string -> int
val seek : t -> fd -> int64 -> unit
val offset : t -> fd -> int64
val close : t -> fd -> unit
val dup : t -> fd -> fd
val fd_path : t -> fd -> string
(** The path the descriptor was opened with ("fd2path"). *)

val stat : t -> string -> Ninep.Fcall.dir
val fstat : t -> fd -> Ninep.Fcall.dir
val wstat : t -> string -> Ninep.Fcall.dir -> unit
val remove : t -> string -> unit

val ls : t -> string -> Ninep.Fcall.dir list
(** Union-aware directory listing. *)

val read_file : t -> string -> string
(** Convenience: open, read to EOF, close. *)

val write_file : t -> string -> string -> unit
(** Convenience: open for write (or create), write, close. *)

(** {1 Name space operations} *)

val bind : ?mcreate:bool -> t -> src:string -> onto:string -> Ns.flag -> unit
(** [bind t ~src:"/net.alt" ~onto:"/net" After].  [mcreate] (default
    [true]) is the paper's [bind -c]: whether creation through the
    union may land in this member (see {!Ns.create_target}). *)

val mount :
  ?mcreate:bool ->
  t ->
  Ninep.Client.t ->
  ?aname:string ->
  onto:string ->
  Ns.flag ->
  unit
(** Mount a 9P connection: "The mount system call provides a file
    descriptor ... to be associated with the mount point.  After a
    mount, operations on the file tree below the mount point are sent
    as messages to the file server."  Registers the mount's RPC ledger
    and a connection-death hook that surfaces leaked fids in the
    ledger's [leaked_fids] counter. *)

val mount_fs :
  ?mcreate:bool -> t -> 'n Ninep.Server.fs -> onto:string -> Ns.flag -> unit
(** Bind a kernel-resident (procedural) file server into the name
    space — how device drivers appear under /net and /dev. *)

val unmount : ?src:string -> t -> onto:string -> unit
(** Without [src], drop every mount on [onto]; with [src], drop only
    the union member that path resolves to (two-argument unmount). *)

(** {1 Channel-level escape hatches (used by exportfs and devices)} *)

val resolve : t -> string -> Chan.t

val install_chan : t -> Chan.t -> path:string -> fd
(** Adopt an already-opened channel into the descriptor table (devices
    like the pipe device hand out channels that have no path in the
    name space). *)
