type flag = Repl | Before | After

type member = { m_chan : Chan.t; m_create : bool }

type entry = { onto_key : int * int32; mutable unions : member list }

type t = {
  mutable table : entry list;
  root_chan : Chan.t;
  ns_uname : string;
  mutable next_devid : int;
  mounts : (string * Obs.Metrics.t) list ref;
      (* 9P-mount RPC ledgers, shared across forks (the [ref] itself is
         copied by [fork], so children see — and add to — one registry) *)
}

(* Selftest chaos plant (see p9explore --selftest): when armed, a
   union walk that hits a dead connection gives up instead of falling
   through to the remaining members — the lost-fallback bug the
   union-member-dies scenario exists to catch.  Invisible to every
   healthy-path test: local union misses say "file does not exist",
   which is not a connection error. *)
let chaos_union_lost_walk = ref false

let is_conn_error e =
  let needle = "hung up" in
  let nl = String.length needle and el = String.length e in
  let rec find i =
    i + nl <= el && (String.sub e i nl = needle || find (i + 1))
  in
  find 0

let make ~root ~uname =
  {
    table = [];
    root_chan = Chan.attach ~devid:0 root ~uname ~aname:"";
    ns_uname = uname;
    next_devid = 1;
    mounts = ref [];
  }

(* Mount-table entries are shared structurally but the list itself is
   copied, so binds after the fork are invisible to the parent...
   except entry.unions is mutable.  Deep-copy the entries. *)
let fork t =
  {
    t with
    table =
      List.map (fun e -> { onto_key = e.onto_key; unions = e.unions }) t.table;
  }

let uname t = t.ns_uname
let root t = Chan.clone t.root_chan

let fresh_devid t =
  let id = t.next_devid in
  t.next_devid <- id + 1;
  id

let register_mount t ~onto metrics = t.mounts := !(t.mounts) @ [ (onto, metrics) ]
let mounts t = !(t.mounts)

let lookup t key = List.find_opt (fun e -> e.onto_key = key) t.table

let members t c =
  match lookup t (Chan.key c) with
  | Some e -> e.unions
  | None -> [ { m_chan = c; m_create = true } ]

let union_of t c = List.map (fun m -> m.m_chan) (members t c)

(* Walk one component from [c], consulting the union at [c]'s key.  The
   result is the {e underlying} channel — it is never "entered" even if
   it is itself a mount point, so the union information at its key
   remains available for the next step.  A member that fails (including
   a member whose server died: the mount driver answers every op on a
   dead connection with its hangup error) does not stop the walk — the
   remaining members are still consulted, so one dead server cannot
   take a whole union directory down with it. *)
let walk1 t c name =
  let rec try_members last_err = function
    | [] ->
      Error (match last_err with Some e -> e | None -> "file does not exist")
    | m :: rest -> (
      match Chan.walk1 m.m_chan name with
      | Ok c' -> Ok c'
      | Error e ->
        if !chaos_union_lost_walk && rest <> [] && is_conn_error e then
          Error e
        else try_members (Some e) rest)
  in
  try_members None (members t c)

(* Cross into the mounted tree at [c], if any: the head of its union. *)
let enter t c =
  match lookup t (Chan.key c) with
  | Some { unions = m0 :: _; _ } -> Chan.clone m0.m_chan
  | Some { unions = []; _ } | None -> c

(* The member creation lands in: the first with the MCREATE bit, per
   the paper's bind -c.  A union where no member allows creation
   refuses, like the kernel's "mounted directory forbids creation". *)
let create_target t c =
  match lookup t (Chan.key c) with
  | None -> Ok (Chan.clone c)
  | Some e -> (
    match List.find_opt (fun m -> m.m_create) e.unions with
    | Some m -> Ok (Chan.clone m.m_chan)
    | None -> Error "mounted directory forbids creation")

let normalize ~dot path =
  let full =
    if String.length path > 0 && path.[0] = '/' then path else dot ^ "/" ^ path
  in
  let parts = String.split_on_char '/' full in
  let rec clean acc = function
    | [] -> List.rev acc
    | ("" | ".") :: rest -> clean acc rest
    | ".." :: rest -> (
      match acc with
      | [] -> clean [] rest  (* /.. = / *)
      | _ :: up -> clean up rest)
    | name :: rest -> clean (name :: acc) rest
  in
  clean [] parts

let resolve_gen ~enter_last t path =
  let components = normalize ~dot:"/" path in
  let rec go c = function
    | [] -> if enter_last then enter t c else c
    | name :: rest -> (
      match walk1 t c name with
      | Ok c' -> go c' rest
      | Error e -> raise (Chan.Error (Printf.sprintf "%s: %s" path e)))
  in
  go (Chan.clone t.root_chan) components

let resolve t path = resolve_gen ~enter_last:true t path
let resolve_for_mount t path = resolve_gen ~enter_last:false t path

let bind ?(mcreate = true) t ~src ~onto flag =
  let key = Chan.key onto in
  let m = { m_chan = src; m_create = mcreate } in
  match lookup t key with
  | Some e ->
    e.unions <-
      (match flag with
      | Repl -> [ m ]
      | Before -> m :: e.unions
      | After -> e.unions @ [ m ])
  | None ->
    (* the mounted-upon directory itself keeps its create permission,
       matching the historical behaviour of this table (a documented
       divergence from the 1993 kernel, which required an explicit
       MCREATE even on the underlying directory) *)
    let onto_m = { m_chan = onto; m_create = true } in
    let unions =
      match flag with
      | Repl -> [ m ]
      | Before -> [ m; onto_m ]
      | After -> [ onto_m; m ]
    in
    t.table <- { onto_key = key; unions } :: t.table

let unmount ?src t ~onto =
  let key = Chan.key onto in
  match src with
  | None -> t.table <- List.filter (fun e -> e.onto_key <> key) t.table
  | Some s ->
    let skey = Chan.key s in
    t.table <-
      List.filter_map
        (fun e ->
          if e.onto_key <> key then Some e
          else
            match
              List.filter (fun m -> Chan.key m.m_chan <> skey) e.unions
            with
            | [] -> None
            | unions -> Some { e with unions })
        t.table

let read_dir t c =
  let seen = Hashtbl.create 17 in
  let member_entries m =
    if not (Chan.is_dir m) then []
    else begin
      let m = Chan.clone m in
      Chan.open_ m Ninep.Fcall.Oread;
      let out = ref [] in
      let rec go off =
        let data = Chan.read m ~offset:(Int64.of_int off) ~count:Ninep.Fcall.maxfdata in
        if data <> "" then begin
          let n = String.length data / Ninep.Fcall.dirlen in
          for i = 0 to n - 1 do
            out := Ninep.Fcall.decode_dir data (i * Ninep.Fcall.dirlen) :: !out
          done;
          go (off + String.length data)
        end
      in
      go 0;
      Chan.clunk m;
      List.rev !out
    end
  in
  (* per-mount error isolation: a member whose server is partitioned
     away answers with an error, not a listing — skip it so the union
     directory stays readable through the survivors *)
  let member_entries m =
    try member_entries m with Chan.Error _ -> []
  in
  List.concat_map
    (fun m ->
      List.filter
        (fun d ->
          let name = d.Ninep.Fcall.d_name in
          if Hashtbl.mem seen name then false
          else begin
            Hashtbl.replace seen name ();
            true
          end)
        (member_entries m))
    (union_of t c)
