type flag = Repl | Before | After

type entry = { onto_key : int * int32; mutable unions : Chan.t list }

type t = {
  mutable table : entry list;
  root_chan : Chan.t;
  ns_uname : string;
  mutable next_devid : int;
  mounts : (string * Obs.Metrics.t) list ref;
      (* 9P-mount RPC ledgers, shared across forks (the [ref] itself is
         copied by [fork], so children see — and add to — one registry) *)
}

let make ~root ~uname =
  {
    table = [];
    root_chan = Chan.attach ~devid:0 root ~uname ~aname:"";
    ns_uname = uname;
    next_devid = 1;
    mounts = ref [];
  }

(* Mount-table entries are shared structurally but the list itself is
   copied, so binds after the fork are invisible to the parent...
   except entry.unions is mutable.  Deep-copy the entries. *)
let fork t =
  {
    t with
    table =
      List.map (fun e -> { onto_key = e.onto_key; unions = e.unions }) t.table;
  }

let uname t = t.ns_uname
let root t = Chan.clone t.root_chan

let fresh_devid t =
  let id = t.next_devid in
  t.next_devid <- id + 1;
  id

let register_mount t ~onto metrics = t.mounts := !(t.mounts) @ [ (onto, metrics) ]
let mounts t = !(t.mounts)

let lookup t key = List.find_opt (fun e -> e.onto_key = key) t.table

let union_of t c =
  match lookup t (Chan.key c) with
  | Some e -> e.unions
  | None -> [ c ]

(* Walk one component from [c], consulting the union at [c]'s key.  The
   result is the {e underlying} channel — it is never "entered" even if
   it is itself a mount point, so the union information at its key
   remains available for the next step. *)
let walk1 t c name =
  let rec try_members last_err = function
    | [] ->
      Error (match last_err with Some e -> e | None -> "file does not exist")
    | m :: rest -> (
      match Chan.walk1 m name with
      | Ok c' -> Ok c'
      | Error e -> try_members (Some e) rest)
  in
  try_members None (union_of t c)

(* Cross into the mounted tree at [c], if any: the head of its union. *)
let enter t c =
  match lookup t (Chan.key c) with
  | Some { unions = m0 :: _; _ } -> Chan.clone m0
  | Some { unions = []; _ } | None -> c

let normalize ~dot path =
  let full =
    if String.length path > 0 && path.[0] = '/' then path else dot ^ "/" ^ path
  in
  let parts = String.split_on_char '/' full in
  let rec clean acc = function
    | [] -> List.rev acc
    | ("" | ".") :: rest -> clean acc rest
    | ".." :: rest -> (
      match acc with
      | [] -> clean [] rest  (* /.. = / *)
      | _ :: up -> clean up rest)
    | name :: rest -> clean (name :: acc) rest
  in
  clean [] parts

let resolve_gen ~enter_last t path =
  let components = normalize ~dot:"/" path in
  let rec go c = function
    | [] -> if enter_last then enter t c else c
    | name :: rest -> (
      match walk1 t c name with
      | Ok c' -> go c' rest
      | Error e -> raise (Chan.Error (Printf.sprintf "%s: %s" path e)))
  in
  go (Chan.clone t.root_chan) components

let resolve t path = resolve_gen ~enter_last:true t path
let resolve_for_mount t path = resolve_gen ~enter_last:false t path

let bind t ~src ~onto flag =
  let key = Chan.key onto in
  match lookup t key with
  | Some e ->
    e.unions <-
      (match flag with
      | Repl -> [ src ]
      | Before -> src :: e.unions
      | After -> e.unions @ [ src ])
  | None ->
    let unions =
      match flag with
      | Repl -> [ src ]
      | Before -> [ src; onto ]
      | After -> [ onto; src ]
    in
    t.table <- { onto_key = key; unions } :: t.table

let unmount t ~onto =
  let key = Chan.key onto in
  t.table <- List.filter (fun e -> e.onto_key <> key) t.table

let read_dir t c =
  let seen = Hashtbl.create 17 in
  let member_entries m =
    if not (Chan.is_dir m) then []
    else begin
      let m = Chan.clone m in
      Chan.open_ m Ninep.Fcall.Oread;
      let out = ref [] in
      let rec go off =
        let data = Chan.read m ~offset:(Int64.of_int off) ~count:Ninep.Fcall.maxfdata in
        if data <> "" then begin
          let n = String.length data / Ninep.Fcall.dirlen in
          for i = 0 to n - 1 do
            out := Ninep.Fcall.decode_dir data (i * Ninep.Fcall.dirlen) :: !out
          done;
          go (off + String.length data)
        end
      in
      go 0;
      Chan.clunk m;
      List.rev !out
    end
  in
  List.concat_map
    (fun m ->
      List.filter
        (fun d ->
          let name = d.Ninep.Fcall.d_name in
          if Hashtbl.mem seen name then false
          else begin
            Hashtbl.replace seen name ();
            true
          end)
        (member_entries m))
    (union_of t c)
