(** The mount driver (paper section 2.1): "A kernel resident file
    server called the mount driver converts the procedural version of
    9P into RPCs."

    Given a 9P client connection, [fs] produces an ordinary
    {!Ninep.Server.fs} whose every operation is a remote procedure
    call; channels onto it are indistinguishable from channels onto a
    kernel-resident server, which is what makes [mount] transparent.

    Each mount can carry an {!Obs.Metrics.t} counting the T-messages it
    sends by type — the per-mount RPC ledger that lets a cache like
    [Cfs] prove, at this layer, that round trips really disappeared.
    {!Env.mount} creates and registers one per mount; {!stats_fs}
    serves the whole registry as a directory (mounted at [/dev/mnt] by
    the core host). *)

type node

val rpc_names : string list
(** The T-message counter names, in wire-protocol order: [Tattach],
    [Tclone], [Twalk], [Topen], [Tcreate], [Tread], [Twrite], [Tclunk],
    [Tremove], [Tstat], [Twstat]. *)

val fs :
  Ninep.Client.t ->
  ?aname:string ->
  ?metrics:Obs.Metrics.t ->
  name:string ->
  unit ->
  node Ninep.Server.fs
(** Each [fs_attach] performs a Tattach for the calling user on the
    wire.  Errors come back as the server's Rerror strings.  With
    [metrics], every operation bumps the counter named after the
    T-message it sends (see {!rpc_names}), counted whether or not the
    server answers with an error.

    A clone against a dead connection does not raise: it yields a dead
    node that answers every subsequent operation with the hangup error,
    so a union walk steps past a partitioned member instead of
    crashing, and directory merges skip it (per-mount error
    isolation). *)

val stats_text : Obs.Metrics.t -> string
(** One ["name count\n"] line per {!rpc_names} entry (zeros included)
    plus ["total n"] and ["leaked_fids n"] lines — the latter counts
    fids the server still held when the connection died (see
    {!Ninep.Client.on_death}). *)

type stats_node

val stats_fs :
  (unit -> (string * Obs.Metrics.t) list) -> stats_node Ninep.Server.fs
(** A read-only directory over a mount registry (re-read on every
    operation, so later mounts appear): one numbered subdirectory per
    registered mount holding [mountpoint] (the path mounted onto) and
    [stats] ({!stats_text}). *)
