type node = {
  c : Ninep.Client.t;
  mutable fid : Ninep.Client.fid;
  mutable nqid : Ninep.Fcall.qid;
  tick : string -> unit;
  (* a clone that failed (typically: connection hung up) yields a dead
     node carrying the reason instead of raising — walking a union
     past a dead mount must not crash the walker, every operation on
     the dead channel just answers the error *)
  mutable dead : string option;
}

let wrap f = try Ok (f ()) with Ninep.Client.Err e -> Error e

let wrapn n f =
  match n.dead with
  | Some e -> Error e
  | None -> (try Ok (f ()) with Ninep.Client.Err e -> Error e)

let rpc_names =
  [ "Tattach"; "Tclone"; "Twalk"; "Topen"; "Tcreate"; "Tread"; "Twrite";
    "Tclunk"; "Tremove"; "Tstat"; "Twstat" ]

let fs client ?(aname = "") ?metrics ~name () =
  let tick msg =
    match metrics with None -> () | Some m -> Obs.Metrics.bump m msg 1
  in
  {
    Ninep.Server.fs_name = name;
    fs_attach =
      (fun ~uname ~aname:aname' ->
        let aname = if aname' <> "" then aname' else aname in
        tick "Tattach";
        wrap (fun () ->
            let fid, nqid = Ninep.Client.attach_q client ~uname ~aname in
            { c = client; fid; nqid; tick; dead = None }));
    fs_qid = (fun n -> n.nqid);
    fs_walk =
      (fun n name ->
        n.tick "Twalk";
        wrapn n (fun () ->
            let q = Ninep.Client.walk n.c n.fid name in
            n.nqid <- q;
            n));
    fs_open =
      (fun n mode ~trunc ->
        n.tick "Topen";
        wrapn n (fun () -> ignore (Ninep.Client.open_ n.c n.fid ~trunc mode)));
    fs_read =
      (fun n ~offset ~count ->
        n.tick "Tread";
        wrapn n (fun () -> Ninep.Client.read n.c n.fid ~offset ~count));
    fs_write =
      (fun n ~offset ~data ->
        n.tick "Twrite";
        wrapn n (fun () -> Ninep.Client.write n.c n.fid ~offset data));
    fs_create =
      (fun n ~name ~perm mode ->
        n.tick "Tcreate";
        wrapn n (fun () ->
            let q = Ninep.Client.create n.c n.fid ~name ~perm mode in
            n.nqid <- q;
            n));
    fs_remove =
      (fun n ->
        n.tick "Tremove";
        wrapn n (fun () -> Ninep.Client.remove n.c n.fid));
    fs_stat =
      (fun n ->
        n.tick "Tstat";
        wrapn n (fun () -> Ninep.Client.stat n.c n.fid));
    fs_wstat =
      (fun n d ->
        n.tick "Twstat";
        wrapn n (fun () -> Ninep.Client.wstat n.c n.fid d));
    fs_clunk =
      (fun n ->
        n.tick "Tclunk";
        if n.dead = None then
          try Ninep.Client.clunk n.c n.fid with Ninep.Client.Err _ -> ());
    fs_clone =
      (fun n ->
        n.tick "Tclone";
        match wrapn n (fun () -> Ninep.Client.clone n.c n.fid) with
        | Ok fid -> { c = n.c; fid; nqid = n.nqid; tick = n.tick; dead = None }
        | Error e ->
          (* do NOT raise: the clone is taken mid-walk (Chan.walk1) and
             mid-resolve; a dead server must degrade to per-operation
             errors so union fallbacks and error isolation work *)
          { c = n.c; fid = Ninep.Client.no_fid; nqid = n.nqid; tick = n.tick; dead = Some e });
  }

let stats_text m =
  let b = Buffer.create 128 in
  let total = ref 0 in
  List.iter
    (fun name ->
      let v = Obs.Metrics.counter m name in
      total := !total + v;
      Printf.bprintf b "%s %d\n" name v)
    rpc_names;
  Printf.bprintf b "total %d\n" !total;
  Printf.bprintf b "leaked_fids %d\n" (Obs.Metrics.counter m "leaked_fids");
  Buffer.contents b

(* ---- the /dev/mnt stats directory ---- *)

type sfile = SMountpoint | SStats
type spos = SRoot | SDir of int | SFile of int * sfile
type stats_node = { mutable sp : spos }

let sqid = function
  | SRoot ->
    { Ninep.Fcall.qpath = Int32.logor Ninep.Fcall.qdir_bit 1l; qvers = 0l }
  | SDir i ->
    {
      Ninep.Fcall.qpath =
        Int32.logor Ninep.Fcall.qdir_bit (Int32.of_int (0x100 * (i + 1)));
      qvers = 0l;
    }
  | SFile (i, f) ->
    {
      Ninep.Fcall.qpath =
        Int32.of_int ((0x100 * (i + 1)) + (match f with SMountpoint -> 1 | SStats -> 2));
      qvers = 0l;
    }

let sname = function
  | SRoot -> "mnt"
  | SDir i -> string_of_int i
  | SFile (_, SMountpoint) -> "mountpoint"
  | SFile (_, SStats) -> "stats"

let sstat p =
  {
    Ninep.Fcall.d_name = sname p;
    d_uid = "mnt";
    d_gid = "mnt";
    d_qid = sqid p;
    d_mode =
      (match p with
      | SRoot | SDir _ -> Int32.logor Ninep.Fcall.dmdir 0o555l
      | SFile _ -> 0o444l);
    d_atime = 0l;
    d_mtime = 0l;
    d_length = 0L;
    d_type = Char.code 'M';
    d_dev = 0;
  }

let stats_fs list =
  let nth i = List.nth_opt (list ()) i in
  {
    Ninep.Server.fs_name = "mntstats";
    fs_attach = (fun ~uname:_ ~aname:_ -> Ok { sp = SRoot });
    fs_qid = (fun n -> sqid n.sp);
    fs_walk =
      (fun n name ->
        match (n.sp, name) with
        | SRoot, ".." -> Ok n
        | SRoot, _ -> (
          match int_of_string_opt name with
          | Some i when i >= 0 && nth i <> None ->
            n.sp <- SDir i;
            Ok n
          | Some _ | None -> Error "file does not exist")
        | SDir _, ".." ->
          n.sp <- SRoot;
          Ok n
        | SDir i, "mountpoint" ->
          n.sp <- SFile (i, SMountpoint);
          Ok n
        | SDir i, "stats" ->
          n.sp <- SFile (i, SStats);
          Ok n
        | SDir _, _ -> Error "file does not exist"
        | SFile (i, _), ".." ->
          n.sp <- SDir i;
          Ok n
        | SFile _, _ -> Error "not a directory");
    fs_open = (fun _ _ ~trunc:_ -> Ok ());
    fs_read =
      (fun n ~offset ~count ->
        match n.sp with
        | SRoot ->
          let ds = List.mapi (fun i _ -> sstat (SDir i)) (list ()) in
          Ok (Ninep.Server.dir_data ds ~offset ~count)
        | SDir i ->
          Ok
            (Ninep.Server.dir_data
               [ sstat (SFile (i, SMountpoint)); sstat (SFile (i, SStats)) ]
               ~offset ~count)
        | SFile (i, f) -> (
          match nth i with
          | None -> Error "mount is gone"
          | Some (onto, m) ->
            let text =
              match f with
              | SMountpoint -> onto ^ "\n"
              | SStats -> stats_text m
            in
            Ok (Ninep.Server.slice text ~offset ~count)));
    fs_write = (fun _ ~offset:_ ~data:_ -> Error Ninep.Server.read_only_err);
    fs_create = (fun _ ~name:_ ~perm:_ _ -> Error Ninep.Server.read_only_err);
    fs_remove = (fun _ -> Error Ninep.Server.read_only_err);
    fs_stat = (fun n -> Ok (sstat n.sp));
    fs_wstat = (fun _ _ -> Error Ninep.Server.read_only_err);
    fs_clunk = (fun _ -> ());
    fs_clone = (fun n -> { sp = n.sp });
  }
