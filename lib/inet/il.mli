(** IL, the Internet Link protocol (paper section 3).

    "IL is a lightweight protocol designed to be encapsulated by IP.
    It is a connection-based protocol providing reliable transmission
    of sequenced messages between machines."  Properties implemented
    here, all from the paper:

    - reliable datagram service with sequenced delivery (each write is
      one delimited message; reads never cross a message boundary);
    - runs over IP (protocol number 40), using IP fragmentation for
      messages larger than the MTU;
    - no flow control, but "a small outstanding message window prevents
      too many incoming messages from being buffered; messages outside
      the window are discarded and must be retransmitted";
    - two-way handshake generating initial sequence numbers at each end;
    - {e no blind retransmission}: on timeout the sender transmits a
      small [query] carrying its sequence state; the peer answers with
      a [state] message and only the messages the peer is actually
      missing are resent — "this allows the protocol to behave well in
      congested networks, where blind retransmission would cause
      further congestion";
    - adaptive timeouts from a round-trip timer, "to perform well on
      both the Internet and on local Ethernets".

    The wire format is the historical one: an 18-byte header
    [sum len type spec srcport dstport id ack] in front of the data. *)

type stack
(** The per-host IL protocol instance. *)

type conv
(** One conversation. *)

type listener

type config = {
  window : int;  (** outstanding-message window (default 20) *)
  min_timeout : float;  (** floor for the query timeout (default 0.05 s) *)
  max_timeout : float;  (** ceiling (default 4 s) *)
  death_time : float;  (** give up after this long unacked (default 30 s) *)
  ack_delay : float;  (** delayed-ack holdoff (default 0.02 s) *)
  fast_recovery : bool;
      (** receiver volunteers a [state] message on detecting a sequence
          gap (default true); disable to measure the pure
          query-timeout protocol (the ablation bench does) *)
  cpu : Sim.Cpu.t option;  (** host CPU for cost modelling *)
  cost_per_msg : float;  (** CPU seconds per packet handled *)
  cost_per_byte : float;  (** CPU seconds per payload byte *)
}

val default_config : config

type counters = {
  mutable msgs_sent : int;
  mutable msgs_rcvd : int;
  mutable bytes_sent : int;
  mutable bytes_rcvd : int;
  mutable retransmits : int;
  mutable retransmitted_bytes : int;
  mutable queries_sent : int;
  mutable dups_dropped : int;
  mutable out_of_window : int;
  mutable resets : int;
  mutable rtt_samples : int;
      (** acks that actually updated the RTT estimate — Karn's rule
          excludes any message that was retransmitted or whose timer
          fired *)
}

val attach : ?config:config -> Ip.stack -> stack
(** Register IL with the IP stack.  One per host. *)

val engine : stack -> Sim.Engine.t
val counters : stack -> counters
val local_addr : stack -> Ipaddr.t

exception Refused of string
(** Connection reset or rejected by the peer. *)

exception Timeout of string
(** Handshake or data death-timer expiry. *)

exception Hungup
(** Write on a closed/hung-up conversation. *)

exception Port_exhausted
(** Every ephemeral local port is in use. *)

val connect : ?lport:int -> stack -> raddr:Ipaddr.t -> rport:int -> conv
(** Active open; blocks the calling process until established.
    @raise Refused or @raise Timeout on failure.
    @raise Port_exhausted if no ephemeral port is free. *)

val announce : ?backlog:int -> stack -> port:int -> listener
(** Passive open.  [backlog] (default 16) bounds calls pending accept —
    half-open handshakes plus established calls waiting in {!listen}'s
    queue; a Sync arriving beyond it is refused with a reset, counted in
    {!refused}.  @raise Invalid_argument if the port is taken. *)

val listen : listener -> conv
(** Block until an incoming call is established. *)

val close_listener : listener -> unit

val set_backlog : listener -> int -> unit
(** Adjust the accept backlog (clamped to >= 1); the ctl message
    [backlog n] lands here. *)

val backlog : listener -> int
val queued : listener -> int
(** Calls currently occupying backlog slots (half-open + awaiting
    accept). *)

val refused : listener -> int
(** Calls refused because the backlog was full. *)

val refusals : stack -> int
(** Stack-wide backlog refusals, surviving listener teardown. *)

val conv_count : stack -> int
(** Live conversations on this stack. *)

val write : conv -> string -> unit
(** Send one message (delimited; sequenced; reliable).  Blocks while
    the outstanding-message window is full.
    @raise Hungup once the conversation is down. *)

val read : conv -> int -> string
(** Read up to [n] bytes; never crosses a message boundary; [""] at end
    of conversation. *)

val read_msg : conv -> string option
(** Read one whole message; [None] at end of conversation. *)

val close : conv -> unit
(** Orderly close (close handshake with the peer). *)

val conv_id : conv -> int
val local_port : conv -> int
val remote_port : conv -> int
val remote_addr : conv -> Ipaddr.t

val status : conv -> string
(** State name plus window/retransmit/timer detail, like reading the
    [status] file. *)

val conv_counters : conv -> counters
(** Per-conversation counters (the stack's {!counters} aggregate all
    conversations; these belong to just this one). *)

val conv_stats : conv -> string
(** The per-conversation counters as [name value] lines — the contents
    of the conversation's [stats] file. *)

val state_name : conv -> string
(** [Closed], [Syncer], [Syncee], [Established], [Listening],
    [Closing]. *)

val rtt_estimate : conv -> float
(** Current smoothed round-trip estimate in seconds. *)
