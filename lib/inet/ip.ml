let src = Logs.Src.create "ip" ~doc:"simulated IP layer"

module Log = (val Logs.src_log src : Logs.LOG)

let proto_il = 40
let proto_tcp = 6
let proto_tcpcc = 105
let proto_udp = 17
let etype_ip = 0x0800
let etype_arp = 0x0806
let header_len = 20
let arp_ttl = 600.
let arp_retries = 3
let arp_retry_interval = 1.0
let reasm_timeout = 30.

type counters = {
  mutable ip_in : int;
  mutable ip_out : int;
  mutable ip_bad_checksum : int;
  mutable ip_no_proto : int;
  mutable ip_reasm_drops : int;
  mutable arp_misses : int;
  mutable arp_unresolved_drops : int;
  mutable ip_forwarded : int;
  mutable ip_ttl_exceeded : int;
}

type arp_state =
  | Resolved of Netsim.Eaddr.t * float  (* address, expiry *)
  | Pending of string list ref * int ref  (* queued raw IP packets, tries *)

type reasm = {
  mutable frags : (int * bool * string) list;  (* offset, more, data *)
  mutable born : float;
}

type stack = {
  eng : Sim.Engine.t;
  port : Etherport.t;
  ipconn : Etherport.conn;
  arpconn : Etherport.conn;
  my_addr : Ipaddr.t;
  my_mask : Ipaddr.t;
  gw : Ipaddr.t option;
  mtu_ : int;
  protos : (int, src:Ipaddr.t -> dst:Ipaddr.t -> string -> unit) Hashtbl.t;
  arp : (int32, arp_state) Hashtbl.t;
  reasm_tbl : (int32 * int, reasm) Hashtbl.t;  (* src, ipid *)
  mutable next_ipid : int;
  stats : counters;
  (* a routing node hands non-local arrivals here; None until a
     Route.Node claims the stack *)
  mutable forward : (string -> unit) option;
  (* route selection for locally-originated packets, one raw fragment
     at a time; None falls back to the built-in my-subnet-or-gateway
     rule *)
  mutable route_out : (string -> Ipaddr.t -> unit) option;
}

let engine t = t.eng
let addr t = t.my_addr
let mask t = t.my_mask
let gateway t = t.gw
let mtu t = t.mtu_
let counters t = t.stats

exception No_route of Ipaddr.t

(* -------- byte-level encode/decode helpers -------- *)

let put16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let put32 b off v =
  put16 b off (Int32.to_int (Int32.shift_right_logical v 16));
  put16 b (off + 2) (Int32.to_int (Int32.logand v 0xffffl))

let get16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let get32 s off =
  Int32.logor
    (Int32.shift_left (Int32.of_int (get16 s off)) 16)
    (Int32.of_int (get16 s (off + 2)))

(* Ethernet addresses travel on the wire as 6 raw bytes. *)
let eaddr_to_raw e =
  let s = Netsim.Eaddr.to_string e in
  String.init 6 (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let eaddr_of_raw s off =
  Netsim.Eaddr.of_string
    (String.concat ""
       (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code s.[off + i]))))

(* -------- IP header -------- *)

let encode_header ~len ~ipid ~frag_off ~more ~proto ~src:sa ~dst:da =
  let b = Bytes.make header_len '\000' in
  Bytes.set b 0 '\x45';
  put16 b 2 len;
  put16 b 4 ipid;
  put16 b 6 (((if more then 1 else 0) lsl 13) lor (frag_off / 8));
  Bytes.set b 8 '\x40' (* ttl 64 *);
  Bytes.set b 9 (Char.chr proto);
  put32 b 12 (Ipaddr.to_int32 sa);
  put32 b 16 (Ipaddr.to_int32 da);
  let sum = Chksum.finish (Chksum.ones_sum (Bytes.to_string b) 0 header_len) in
  put16 b 10 sum;
  Bytes.to_string b

type header = {
  h_len : int;
  h_ipid : int;
  h_frag_off : int;
  h_more : bool;
  h_proto : int;
  h_src : Ipaddr.t;
  h_dst : Ipaddr.t;
}

let decode_header pkt =
  if String.length pkt < header_len then None
  else if Char.code pkt.[0] <> 0x45 then None
  else if
    let v = ref (Chksum.ones_sum pkt 0 header_len) in
    (while !v lsr 16 <> 0 do
       v := (!v land 0xffff) + (!v lsr 16)
     done;
     !v)
    <> 0xffff
  then None
  else
    let fragword = get16 pkt 6 in
    Some
      {
        h_len = get16 pkt 2;
        h_ipid = get16 pkt 4;
        h_frag_off = (fragword land 0x1fff) * 8;
        h_more = fragword land 0x2000 <> 0;
        h_proto = Char.code pkt.[9];
        h_src = Ipaddr.of_int32 (get32 pkt 12);
        h_dst = Ipaddr.of_int32 (get32 pkt 16);
      }

(* -------- ARP -------- *)

let encode_arp ~op ~sha ~spa ~tha ~tpa =
  let b = Bytes.make 28 '\000' in
  put16 b 0 1;
  put16 b 2 etype_ip;
  Bytes.set b 4 '\006';
  Bytes.set b 5 '\004';
  put16 b 6 op;
  Bytes.blit_string (eaddr_to_raw sha) 0 b 8 6;
  put32 b 14 (Ipaddr.to_int32 spa);
  Bytes.blit_string (eaddr_to_raw tha) 0 b 18 6;
  put32 b 24 (Ipaddr.to_int32 tpa);
  Bytes.to_string b

let transmit_raw t ~dst_ether raw =
  Etherport.send t.ipconn ~dst:dst_ether raw

let arp_request t target =
  Etherport.send t.arpconn ~dst:Netsim.Eaddr.broadcast
    (encode_arp ~op:1 ~sha:(Etherport.addr t.port) ~spa:t.my_addr
       ~tha:Netsim.Eaddr.broadcast ~tpa:target)

let rec arp_retry t target =
  match Hashtbl.find_opt t.arp (Ipaddr.to_int32 target) with
  | Some (Pending (queued, tries)) ->
    if !tries >= arp_retries then begin
      t.stats.arp_unresolved_drops <-
        t.stats.arp_unresolved_drops + List.length !queued;
      Hashtbl.remove t.arp (Ipaddr.to_int32 target);
      Log.debug (fun m -> m "arp: giving up on %a" Ipaddr.pp target)
    end
    else begin
      incr tries;
      arp_request t target;
      Sim.Engine.after ~label:"ip" t.eng arp_retry_interval (fun () -> arp_retry t target)
    end
  | Some (Resolved _) | None -> ()

let resolve_and_send t nexthop raw =
  let key = Ipaddr.to_int32 nexthop in
  match Hashtbl.find_opt t.arp key with
  | Some (Resolved (ea, expiry)) when Sim.Engine.now t.eng < expiry ->
    transmit_raw t ~dst_ether:ea raw
  | Some (Pending (queued, _)) -> queued := raw :: !queued
  | Some (Resolved _) | None ->
    t.stats.arp_misses <- t.stats.arp_misses + 1;
    Hashtbl.replace t.arp key (Pending (ref [ raw ], ref 1));
    arp_request t nexthop;
    Sim.Engine.after ~label:"ip" t.eng arp_retry_interval (fun () -> arp_retry t nexthop)

let arp_input t (frame : Netsim.Ether.frame) =
  let p = frame.Netsim.Ether.payload in
  if String.length p >= 28 && get16 p 0 = 1 && get16 p 2 = etype_ip then begin
    let op = get16 p 6 in
    let sha = eaddr_of_raw p 8 in
    let spa = Ipaddr.of_int32 (get32 p 14) in
    let tpa = Ipaddr.of_int32 (get32 p 24) in
    (* learn the sender either way *)
    let key = Ipaddr.to_int32 spa in
    let queued =
      match Hashtbl.find_opt t.arp key with
      | Some (Pending (q, _)) -> List.rev !q
      | Some (Resolved _) | None -> []
    in
    Hashtbl.replace t.arp key
      (Resolved (sha, Sim.Engine.now t.eng +. arp_ttl));
    List.iter (fun raw -> transmit_raw t ~dst_ether:sha raw) queued;
    if op = 1 && Ipaddr.equal tpa t.my_addr then
      Etherport.send t.arpconn ~dst:frame.Netsim.Ether.src
        (encode_arp ~op:2 ~sha:(Etherport.addr t.port) ~spa:t.my_addr
           ~tha:sha ~tpa:spa)
  end

(* -------- receive path -------- *)

let dispatch t ~src:sa ~dst:da ~proto payload =
  match Hashtbl.find_opt t.protos proto with
  | Some handler -> handler ~src:sa ~dst:da payload
  | None -> t.stats.ip_no_proto <- t.stats.ip_no_proto + 1

let reassemble t h payload =
  let key = (Ipaddr.to_int32 h.h_src, h.h_ipid) in
  let r =
    match Hashtbl.find_opt t.reasm_tbl key with
    | Some r -> r
    | None ->
      let r = { frags = []; born = Sim.Engine.now t.eng } in
      Hashtbl.replace t.reasm_tbl key r;
      Sim.Engine.after ~label:"ip" t.eng reasm_timeout (fun () ->
          if Hashtbl.mem t.reasm_tbl key then begin
            Hashtbl.remove t.reasm_tbl key;
            t.stats.ip_reasm_drops <- t.stats.ip_reasm_drops + 1
          end);
      r
  in
  r.frags <- (h.h_frag_off, h.h_more, payload) :: r.frags;
  (* complete iff we have a no-more fragment and contiguous coverage *)
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) r.frags
  in
  let rec check expected = function
    | [] -> None
    | (off, more, data) :: rest ->
      if off <> expected then None
      else if more then check (expected + String.length data) rest
      else if rest = [] then Some (expected + String.length data)
      else None
  in
  match check 0 sorted with
  | None -> None
  | Some _total ->
    Hashtbl.remove t.reasm_tbl key;
    Some (String.concat "" (List.map (fun (_, _, d) -> d) sorted))

let emit_badsum t =
  t.stats.ip_bad_checksum <- t.stats.ip_bad_checksum + 1;
  match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr (Obs.Event.Checksum_err { proto = "ip" });
    Obs.Trace.bump tr "ip.badsum" 1

let ip_input t (frame : Netsim.Ether.frame) =
  match decode_header frame.Netsim.Ether.payload with
  | None -> emit_badsum t
  | Some h ->
    let p = frame.Netsim.Ether.payload in
    if String.length p < h.h_len then emit_badsum t
    else begin
      t.stats.ip_in <- t.stats.ip_in + 1;
      let payload = String.sub p header_len (h.h_len - header_len) in
      if
        Ipaddr.equal h.h_dst t.my_addr
        || Ipaddr.equal h.h_dst Ipaddr.broadcast
      then begin
        if h.h_frag_off = 0 && not h.h_more then
          dispatch t ~src:h.h_src ~dst:h.h_dst ~proto:h.h_proto payload
        else
          match reassemble t h payload with
          | Some whole ->
            dispatch t ~src:h.h_src ~dst:h.h_dst ~proto:h.h_proto whole
          | None -> ()
      end
      else
        match t.forward with
        | Some fwd -> fwd (String.sub p 0 h.h_len)
        | None -> () (* hosts silently drop transit packets *)
    end

(* -------- send path -------- *)

let send t ~proto ~dst payload =
  if Ipaddr.equal dst t.my_addr then
    (* loopback: deliver on the next tick, no wire *)
    Sim.Engine.after ~label:"ip" t.eng 0. (fun () ->
        dispatch t ~src:t.my_addr ~dst ~proto payload)
  else begin
    let emit_frag =
      match t.route_out with
      | Some out -> fun raw -> out raw dst
      | None ->
        (* the built-in rule: on-subnet direct, else the one gateway *)
        let nexthop =
          if Ipaddr.in_subnet dst ~net:t.my_addr ~mask:t.my_mask then dst
          else
            match t.gw with Some gw -> gw | None -> raise (No_route dst)
        in
        fun raw ->
          t.stats.ip_out <- t.stats.ip_out + 1;
          resolve_and_send t nexthop raw
    in
    let ipid = t.next_ipid in
    t.next_ipid <- (t.next_ipid + 1) land 0xffff;
    let max_data = t.mtu_ - header_len in
    (* fragment offsets must be multiples of 8 *)
    let max_data = max_data - (max_data mod 8) in
    let total = String.length payload in
    let rec emit off =
      let remaining = total - off in
      let take = min max_data remaining in
      let more = off + take < total in
      let hdr =
        encode_header ~len:(header_len + take) ~ipid ~frag_off:off ~more
          ~proto ~src:t.my_addr ~dst
      in
      emit_frag (hdr ^ String.sub payload off take);
      if more then emit (off + take)
    in
    emit 0
  end

let register_proto t ~proto handler =
  if Hashtbl.mem t.protos proto then
    invalid_arg (Printf.sprintf "Ip.register_proto: %d taken" proto);
  Hashtbl.replace t.protos proto handler

let create ?(mtu = 1500) ?gateway ~addr:my_addr ~mask:my_mask port =
  let eng = Etherport.engine port in
  let t =
    {
      eng;
      port;
      ipconn = Etherport.connect port etype_ip;
      arpconn = Etherport.connect port etype_arp;
      my_addr;
      my_mask;
      gw = gateway;
      mtu_ = mtu;
      protos = Hashtbl.create 7;
      arp = Hashtbl.create 17;
      reasm_tbl = Hashtbl.create 7;
      next_ipid = 1;
      route_out = None;
      stats =
        {
          ip_in = 0;
          ip_out = 0;
          ip_bad_checksum = 0;
          ip_no_proto = 0;
          ip_reasm_drops = 0;
          arp_misses = 0;
          arp_unresolved_drops = 0;
          ip_forwarded = 0;
          ip_ttl_exceeded = 0;
        };
      forward = None;
    }
  in
  Etherport.set_rx t.ipconn (fun frame -> ip_input t frame);
  Etherport.set_rx t.arpconn (fun frame -> arp_input t frame);
  t

(* transmit one raw IP packet (routing already decided): resolve the
   next hop's Ethernet address and put it on the wire *)
let output_raw t ~nexthop raw =
  t.stats.ip_out <- t.stats.ip_out + 1;
  resolve_and_send t nexthop raw

(* hand a raw IP packet to the local transports, whatever its
   destination address — multi-homed delivery and tunnel receive.
   Fragments reassemble as usual. *)
let deliver_raw t raw =
  match decode_header raw with
  | None -> emit_badsum t
  | Some h ->
    if String.length raw < h.h_len then emit_badsum t
    else
      let payload = String.sub raw header_len (h.h_len - header_len) in
      if h.h_frag_off = 0 && not h.h_more then
        dispatch t ~src:h.h_src ~dst:h.h_dst ~proto:h.h_proto payload
      else
        match reassemble t h payload with
        | Some whole ->
          dispatch t ~src:h.h_src ~dst:h.h_dst ~proto:h.h_proto whole
        | None -> ()

let set_forward t fn = t.forward <- Some fn
let set_route_out t fn = t.route_out <- Some fn

let arp_cache_dump t =
  Hashtbl.fold
    (fun k v acc ->
      match v with
      | Resolved (ea, _) -> (Ipaddr.of_int32 k, ea) :: acc
      | Pending _ -> acc)
    t.arp []
  |> List.sort (fun (a, _) (b, _) -> Ipaddr.compare a b)
