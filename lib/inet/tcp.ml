let src = Logs.Src.create "tcp" ~doc:"baseline TCP"

module Log = (val Logs.src_log src : Logs.LOG)

let header_len = 20
let flag_fin = 1
let flag_syn = 2
let flag_rst = 4
let flag_ack = 16

type config = {
  mss : int;
  send_window : int;
  recv_window : int;
  min_rto : float;
  max_rto : float;
  death_time : float;
  cpu : Sim.Cpu.t option;
  cost_per_seg : float;
  cost_per_byte : float;
}

let default_config =
  {
    mss = 1460;
    send_window = 8 * 1460;
    recv_window = 64 * 1024;
    min_rto = 0.1;
    max_rto = 8.0;
    death_time = 60.0;
    cpu = None;
    cost_per_seg = 0.;
    cost_per_byte = 0.;
  }

type counters = {
  mutable segs_sent : int;
  mutable segs_rcvd : int;
  mutable bytes_sent : int;
  mutable bytes_rcvd : int;
  mutable retransmits : int;
  mutable retransmitted_bytes : int;
  mutable out_of_order_dropped : int;
  mutable dups_dropped : int;
  mutable resets : int;
  mutable fast_retransmits : int;  (* tcpcc: 3-dup-ack retransmits *)
  mutable persist_probes : int;  (* zero-window probes sent *)
}

type tstate =
  | TClosed
  | TSynSent
  | TSynRcvd
  | TEstablished
  | TFinWait1
  | TFinWait2
  | TCloseWait
  | TLastAck
  | TTimeWait

exception Refused of string
exception Timeout of string
exception Hungup
exception Port_exhausted

type conv = {
  cid : int;
  stack : stack;
  lport : int;
  rport : int;
  raddr : Ipaddr.t;
  cstats : counters;  (* per-conversation mirror of the stack counters *)
  mutable state : tstate;
  mutable iss : int;  (* initial send sequence *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;  (* peer-advertised window *)
  mutable irs : int;
  mutable rcv_nxt : int;
  (* bytes from snd_una onward: retransmittable + unsent *)
  txbuf : Buffer.t;
  mutable tx_base : int;  (* sequence number of txbuf byte 0 *)
  mutable fin_queued : bool;
  rq : Block.Q.t;
  wwait : Sim.Rendez.t;
  estwait : Sim.Rendez.t;
  mutable srtt : float;
  mutable mdev : float;
  mutable backoff : int;
  rexmit_tmr : Sim.Time.timer;  (* disarmed = nothing outstanding *)
  death_tmr : Sim.Time.timer;
  mutable death_at : float;
      (* pushed on every ack; the timer fires at the stale deadline and
         re-arms itself if the real one moved (lazy reschedule) *)
  mutable rtt_seq : int;  (* sequence being timed; 0 = none *)
  mutable rtt_sent_at : float;
  mutable retransmitting : bool;  (* Karn: don't time retransmitted data *)
  (* congestion control (tcpcc only; inert on the baseline proto) *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dupacks : int;  (* consecutive duplicate acks at snd_una *)
  mutable recover : int;  (* snd_nxt at loss; fast recovery ends past it *)
  mutable in_recovery : bool;
  mutable ooo : (int * string) list;
      (* out-of-order reassembly, (seq, data) sorted by seq — tcpcc
         only.  The baseline receiver drops anything not at rcv_nxt,
         which is what makes its sender's go-back-N necessary *)
  (* zero-window persist state (both protos) *)
  persist_tmr : Sim.Time.timer;
  mutable persist_backoff : int;
  mutable err : string option;
  mutable lis : listener option;  (* half-open SynRcvd's listener slot *)
}

and listener = {
  lstack : stack;
  lis_port : int;
  accepts : conv Sim.Mbox.t;
  mutable lis_open : bool;
  mutable backlog : int;
  mutable lis_pending : int;  (* half-open SynRcvds counted in backlog *)
  mutable refused : int;
}

and stack = {
  eng : Sim.Engine.t;
  ip : Ip.stack;
  pname : string;  (* "tcp" or "tcpcc": /net dir, Obs event tag *)
  ipproto : int;
  cc : bool;  (* congestion machinery enabled *)
  cfg : config;
  convs : (int * int * int32, conv) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  mutable next_port : int;
  mutable next_cid : int;
  mutable refusals : int;  (* backlog refusals, all listeners *)
  stats : counters;
}

let engine st = st.eng
let counters st = st.stats
let local_addr st = Ip.addr st.ip
let proto_name st = st.pname
let conv_id c = c.cid
let local_port c = c.lport
let remote_port c = c.rport
let remote_addr c = c.raddr

let state_str = function
  | TClosed -> "Closed"
  | TSynSent -> "Syn_sent"
  | TSynRcvd -> "Syn_received"
  | TEstablished -> "Established"
  | TFinWait1 -> "Finwait1"
  | TFinWait2 -> "Finwait2"
  | TCloseWait -> "Close_wait"
  | TLastAck -> "Last_ack"
  | TTimeWait -> "Time_wait"

let state_name c = state_str c.state

(* the sender-side recovery state, surfaced in status/stats *)
let recovery_str c =
  if Sim.Time.armed c.persist_tmr then "Persist"
  else if c.in_recovery then "Recovery"
  else "Open"

let status c =
  let base =
    Printf.sprintf "%s/%d %d %s una %d nxt %d rcv %d rexmit %d rtt %.0fms"
      c.stack.pname c.cid c.lport (state_name c) c.snd_una c.snd_nxt c.rcv_nxt
      c.cstats.retransmits (c.srtt *. 1000.)
  in
  if c.stack.cc then
    base
    ^ Printf.sprintf " cwnd %d ssthresh %d %s" c.cwnd c.ssthresh
        (recovery_str c)
  else base

let conv_counters c = c.cstats

let conv_stats c =
  let s = c.cstats in
  String.concat "\n"
    ([
       Printf.sprintf "segs_sent %d" s.segs_sent;
       Printf.sprintf "segs_rcvd %d" s.segs_rcvd;
       Printf.sprintf "bytes_sent %d" s.bytes_sent;
       Printf.sprintf "bytes_rcvd %d" s.bytes_rcvd;
       Printf.sprintf "retransmits %d" s.retransmits;
       Printf.sprintf "retransmitted_bytes %d" s.retransmitted_bytes;
       Printf.sprintf "out_of_order_dropped %d" s.out_of_order_dropped;
       Printf.sprintf "dups_dropped %d" s.dups_dropped;
       Printf.sprintf "resets %d" s.resets;
       Printf.sprintf "rtt_ms %.3f" (c.srtt *. 1000.);
     ]
    @
    if c.stack.cc then
      [
        Printf.sprintf "cwnd %d" c.cwnd;
        Printf.sprintf "ssthresh %d" c.ssthresh;
        Printf.sprintf "fast_retransmits %d" s.fast_retransmits;
        Printf.sprintf "persist_probes %d" s.persist_probes;
        Printf.sprintf "recovery %s" (recovery_str c);
      ]
    else [])
  ^ "\n"

let cwnd c = c.cwnd
let ssthresh c = c.ssthresh
let in_recovery c = c.in_recovery

(* state transitions are traced; every change funnels through here *)
let set_state c s =
  if c.state <> s then begin
    (match Sim.Engine.obs c.stack.eng with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Event.Proto_state
           {
             proto = c.stack.pname;
             conv = c.cid;
             from_ = state_str c.state;
             to_ = state_str s;
           }));
    c.state <- s
  end

(* ---- wire format ---- *)

let put16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let put32 b off v =
  put16 b off ((v lsr 16) land 0xffff);
  put16 b (off + 2) (v land 0xffff)

let get16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
let get32 s off = (get16 s off lsl 16) lor get16 s (off + 2)

let encode ~sport ~dport ~seq ~ack ~flags ~window payload =
  let len = header_len + String.length payload in
  let b = Bytes.create len in
  put16 b 0 sport;
  put16 b 2 dport;
  put32 b 4 seq;
  put32 b 8 ack;
  put16 b 12 ((5 lsl 12) lor flags);
  put16 b 14 window;
  put16 b 16 0;
  put16 b 18 0;
  Bytes.blit_string payload 0 b header_len (String.length payload);
  let sum = Chksum.checksum (Bytes.to_string b) in
  put16 b 16 sum;
  Bytes.to_string b

type segment = {
  s_sport : int;
  s_dport : int;
  s_seq : int;
  s_ack : int;
  s_flags : int;
  s_window : int;
  s_data : string;
}

let decode pkt =
  if String.length pkt < header_len then None
  else if not (Chksum.valid pkt) then None
  else
    let off_flags = get16 pkt 12 in
    let data_off = (off_flags lsr 12) * 4 in
    if data_off < header_len || data_off > String.length pkt then None
    else
      Some
        {
          s_sport = get16 pkt 0;
          s_dport = get16 pkt 2;
          s_seq = get32 pkt 4;
          s_ack = get32 pkt 8;
          s_flags = off_flags land 0x3f;
          s_window = get16 pkt 14;
          s_data = String.sub pkt data_off (String.length pkt - data_off);
        }

(* ---- output ---- *)

let raw_output st ~dst pkt =
  match st.cfg.cpu with
  | None -> Ip.send st.ip ~proto:st.ipproto ~dst pkt
  | Some cpu ->
    let cost =
      st.cfg.cost_per_seg
      +. (st.cfg.cost_per_byte *. float_of_int (String.length pkt))
    in
    Sim.Cpu.run_after ~label:st.pname cpu cost (fun () ->
        Ip.send st.ip ~proto:st.ipproto ~dst pkt)

let recv_window c =
  let w = max 0 (c.stack.cfg.recv_window - Block.Q.bytes c.rq) in
  (* the wire field is 16 bits, so the default 64 KiB buffer wraps to an
     advertised window of 0 whenever the receive queue is empty.  The
     baseline keeps that wart (its sender's one-MSS floor masks it, and
     the pinned goldens encode the resulting schedule); tcpcc clamps so
     an advertised 0 genuinely means "stop" *)
  if c.stack.cc then min 0xffff w else w

let xmit c ~seq ~flags data =
  c.stack.stats.segs_sent <- c.stack.stats.segs_sent + 1;
  c.cstats.segs_sent <- c.cstats.segs_sent + 1;
  raw_output c.stack ~dst:c.raddr
    (encode ~sport:c.lport ~dport:c.rport ~seq ~ack:c.rcv_nxt
       ~flags:(flags lor flag_ack) ~window:(recv_window c) data)

(* the very first SYN carries no ACK — there is nothing to acknowledge *)
let xmit_initial_syn c =
  c.stack.stats.segs_sent <- c.stack.stats.segs_sent + 1;
  c.cstats.segs_sent <- c.cstats.segs_sent + 1;
  raw_output c.stack ~dst:c.raddr
    (encode ~sport:c.lport ~dport:c.rport ~seq:c.iss ~ack:0 ~flags:flag_syn
       ~window:(recv_window c) "")

let rto c =
  let t = if c.srtt = 0. then 0.5 else c.srtt +. (4. *. c.mdev) in
  if c.stack.cc then
    (* backoff exponentiates the clamped base.  The baseline multiplies
       the raw srtt term first, so a stale few-millisecond estimate caps
       the backed-off RTO at srtt * 64 — half a second against a queue
       seconds deep, and Karn's rule keeps srtt stale for as long as the
       retransmissions it causes continue: the RTO can never climb out
       of the collapse it is feeding *)
    min c.stack.cfg.max_rto
      ((max c.stack.cfg.min_rto t) *. float_of_int (1 lsl min c.backoff 6))
  else
    let t = t *. float_of_int (1 lsl min c.backoff 6) in
    min c.stack.cfg.max_rto (max c.stack.cfg.min_rto t)

let conv_key c = (c.lport, c.rport, Ipaddr.to_int32 c.raddr)

let destroy c reason =
  if c.state <> TClosed then begin
    set_state c TClosed;
    c.err <- reason;
    Sim.Time.disarm c.rexmit_tmr;
    Sim.Time.disarm c.death_tmr;
    Sim.Time.disarm c.persist_tmr;
    c.ooo <- [];
    (match c.lis with
    | Some lis ->
      lis.lis_pending <- max 0 (lis.lis_pending - 1);
      c.lis <- None
    | None -> ());
    Hashtbl.remove c.stack.convs (conv_key c);
    Block.Q.force_put c.rq (Block.hangup ());
    Block.Q.close c.rq;
    Sim.Rendez.wakeup_all c.wwait;
    Sim.Rendez.wakeup_all c.estwait
  end

(* ---- sending machinery and per-conversation timers ----

   There is no protocol ticker: every conversation arms exactly the
   deadlines it needs on the engine heap and disarms them when the data
   is acknowledged, so an idle conversation schedules nothing.

   Bytes [snd_una, tx_base + len txbuf) are retransmittable; bytes
   [snd_nxt, ...) are yet unsent.  The txbuf is compacted as acks
   arrive. *)

let tx_limit c =
  (* under tcpcc an advertised zero window really closes the pipe (the
     persist timer probes it open again) and a small nonzero window
     still floors at one MSS; the baseline floors unconditionally — a
     receiver's 0 never quenches it, which is part of the blind
     behaviour the goldens pin *)
  let wnd =
    if c.stack.cc && c.snd_wnd = 0 then 0 else max c.snd_wnd c.stack.cfg.mss
  in
  let wnd = if c.stack.cc then min wnd c.cwnd else wnd in
  min c.stack.cfg.send_window wnd

let fin_seq c = c.tx_base + Buffer.length c.txbuf

let emit_retransmit c ~seq ~bytes =
  match Sim.Engine.obs c.stack.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Event.Retransmit
         { proto = c.stack.pname; conv = c.cid; id = seq; bytes });
    Obs.Trace.bump tr (c.stack.pname ^ ".retransmits") 1

let bump_counter c name n =
  match Sim.Engine.obs c.stack.eng with
  | None -> ()
  | Some tr -> Obs.Trace.bump tr (c.stack.pname ^ "." ^ name) n

let rec arm_rto c =
  Sim.Time.arm_at c.rexmit_tmr
    (Sim.Engine.now c.stack.eng +. rto c)
    (fun () -> rto_fire c)

and rto_fire c =
  match c.state with
  | TClosed -> ()
  | TSynSent ->
    c.backoff <- c.backoff + 1;
    xmit_initial_syn c;
    arm_rto c
  | TSynRcvd ->
    c.backoff <- c.backoff + 1;
    xmit c ~seq:c.iss ~flags:flag_syn "";
    arm_rto c
  | TEstablished | TFinWait1 | TFinWait2 | TCloseWait | TLastAck
  | TTimeWait ->
    if c.snd_una < c.snd_nxt then
      if c.stack.cc then begin
        (* congestion-controlled timeout: multiplicative decrease and a
           slow-start restart, resending only the head-of-window
           segment — never the whole window blindly *)
        let inflight = c.snd_nxt - c.snd_una in
        c.ssthresh <- max (2 * c.stack.cfg.mss) (inflight / 2);
        c.cwnd <- c.stack.cfg.mss;
        c.in_recovery <- false;
        c.dupacks <- 0;
        bump_counter c "cwnd_reset" 1;
        retransmit_head c;
        c.backoff <- c.backoff + 1;
        arm_rto c
      end
      else retransmit_all c

and arm_death c =
  c.death_at <- Sim.Engine.now c.stack.eng +. c.stack.cfg.death_time;
  if not (Sim.Time.armed c.death_tmr) then
    Sim.Time.arm_at c.death_tmr c.death_at (fun () -> death_fire c)

and death_fire c =
  if Sim.Engine.now c.stack.eng < c.death_at then
    (* the deadline moved while we slept: chase it *)
    Sim.Time.arm_at c.death_tmr c.death_at (fun () -> death_fire c)
  else
    match c.state with
    | TClosed -> ()
    | TSynSent | TSynRcvd -> destroy c (Some "connect timed out")
    | TEstablished | TFinWait1 | TFinWait2 | TCloseWait | TLastAck
    | TTimeWait ->
      (* idle with everything acked: let the timer lapse; fresh
         traffic re-arms it *)
      if c.snd_una < c.snd_nxt then destroy c (Some "connection timed out")

and push_segments c =
  (* send any unsent bytes that fit in the window *)
  let continue_ = ref true in
  while !continue_ do
    let unsent = c.tx_base + Buffer.length c.txbuf - c.snd_nxt in
    let inflight = c.snd_nxt - c.snd_una in
    let room = tx_limit c - inflight in
    let take = min (min unsent room) c.stack.cfg.mss in
    if take > 0 then begin
      let off = c.snd_nxt - c.tx_base in
      let data = Buffer.sub c.txbuf off take in
      if c.rtt_seq = 0 && not c.retransmitting then begin
        c.rtt_seq <- c.snd_nxt + take;
        c.rtt_sent_at <- Sim.Engine.now c.stack.eng
      end;
      c.stack.stats.bytes_sent <- c.stack.stats.bytes_sent + take;
      c.cstats.bytes_sent <- c.cstats.bytes_sent + take;
      xmit c ~seq:c.snd_nxt ~flags:0 data;
      c.snd_nxt <- c.snd_nxt + take;
      if not (Sim.Time.armed c.rexmit_tmr) then begin
        arm_rto c;
        arm_death c
      end
    end
    else begin
      continue_ := false;
      (* a queued FIN goes out once all data is sent *)
      if
        c.fin_queued && unsent = 0
        && c.snd_nxt = fin_seq c
        && (c.state = TFinWait1 || c.state = TLastAck)
      then begin
        xmit c ~seq:c.snd_nxt ~flags:flag_fin "";
        c.snd_nxt <- c.snd_nxt + 1;
        if not (Sim.Time.armed c.rexmit_tmr) then arm_rto c
      end
      else if
        (* zero-window sender state: data waiting, nothing in flight,
           peer advertised 0 — only the persist probe may touch the
           wire until the window reopens *)
        c.stack.cc && unsent > 0
        && c.snd_wnd = 0
        && c.snd_una = c.snd_nxt
        && not (Sim.Time.armed c.persist_tmr)
      then arm_persist c
    end
  done

and persist_interval c =
  let t = 0.5 *. float_of_int (1 lsl min c.persist_backoff 6) in
  min c.stack.cfg.max_rto (max c.stack.cfg.min_rto t)

and arm_persist c =
  Sim.Time.arm_at c.persist_tmr
    (Sim.Engine.now c.stack.eng +. persist_interval c)
    (fun () -> persist_fire c)

and persist_fire c =
  match c.state with
  | TClosed -> ()
  | TSynSent | TSynRcvd -> ()
  | TEstablished | TFinWait1 | TFinWait2 | TCloseWait | TLastAck
  | TTimeWait ->
    if c.snd_wnd = 0 then begin
      (* probe with one byte into the closed window; the probe owns its
         own retry (this timer), never the RTO, and is never timed for
         RTT (Karn) *)
      let probe_seq =
        if c.snd_una < c.snd_nxt then c.snd_una else c.snd_nxt
      in
      let data_end = min (fin_seq c) (probe_seq + 1) in
      if probe_seq < data_end then begin
        let data = Buffer.sub c.txbuf (probe_seq - c.tx_base) 1 in
        c.stack.stats.persist_probes <- c.stack.stats.persist_probes + 1;
        c.cstats.persist_probes <- c.cstats.persist_probes + 1;
        bump_counter c "persist_probes" 1;
        (if probe_seq = c.snd_nxt then begin
           c.stack.stats.bytes_sent <- c.stack.stats.bytes_sent + 1;
           c.cstats.bytes_sent <- c.cstats.bytes_sent + 1;
           xmit c ~seq:probe_seq ~flags:0 data;
           c.snd_nxt <- c.snd_nxt + 1
         end
         else xmit c ~seq:probe_seq ~flags:0 data);
        arm_death c
      end;
      c.persist_backoff <- c.persist_backoff + 1;
      arm_persist c
    end
    else begin
      c.persist_backoff <- 0;
      push_segments c
    end

and retransmit_all c =
  (* go-back-N: blind retransmission of everything outstanding *)
  c.retransmitting <- true;
  c.rtt_seq <- 0;
  let outstanding = c.snd_nxt - c.snd_una in
  let data_end = min c.snd_nxt (fin_seq c) in
  let seq = ref c.snd_una in
  while !seq < data_end do
    let take = min (data_end - !seq) c.stack.cfg.mss in
    let data = Buffer.sub c.txbuf (!seq - c.tx_base) take in
    c.stack.stats.retransmits <- c.stack.stats.retransmits + 1;
    c.stack.stats.retransmitted_bytes <-
      c.stack.stats.retransmitted_bytes + take;
    c.cstats.retransmits <- c.cstats.retransmits + 1;
    c.cstats.retransmitted_bytes <- c.cstats.retransmitted_bytes + take;
    emit_retransmit c ~seq:!seq ~bytes:take;
    xmit c ~seq:!seq ~flags:0 data;
    seq := !seq + take
  done;
  if c.fin_queued && c.snd_nxt > fin_seq c then begin
    c.stack.stats.retransmits <- c.stack.stats.retransmits + 1;
    c.cstats.retransmits <- c.cstats.retransmits + 1;
    emit_retransmit c ~seq:(fin_seq c) ~bytes:0;
    xmit c ~seq:(fin_seq c) ~flags:flag_fin ""
  end;
  if outstanding > 0 || c.fin_queued then begin
    c.backoff <- c.backoff + 1;
    arm_rto c
  end

and retransmit_head c =
  (* resend only the first unacknowledged segment; the rest of the
     window stays put until acks (or further timeouts) call for it *)
  c.retransmitting <- true;
  c.rtt_seq <- 0;
  let data_end = min c.snd_nxt (fin_seq c) in
  if c.snd_una < data_end then begin
    let take = min (data_end - c.snd_una) c.stack.cfg.mss in
    let data = Buffer.sub c.txbuf (c.snd_una - c.tx_base) take in
    c.stack.stats.retransmits <- c.stack.stats.retransmits + 1;
    c.stack.stats.retransmitted_bytes <-
      c.stack.stats.retransmitted_bytes + take;
    c.cstats.retransmits <- c.cstats.retransmits + 1;
    c.cstats.retransmitted_bytes <- c.cstats.retransmitted_bytes + take;
    emit_retransmit c ~seq:c.snd_una ~bytes:take;
    xmit c ~seq:c.snd_una ~flags:0 data
  end
  else if c.fin_queued && c.snd_nxt > fin_seq c then begin
    c.stack.stats.retransmits <- c.stack.stats.retransmits + 1;
    c.cstats.retransmits <- c.cstats.retransmits + 1;
    emit_retransmit c ~seq:(fin_seq c) ~bytes:0;
    xmit c ~seq:(fin_seq c) ~flags:flag_fin ""
  end

let process_ack c (s : segment) =
  if s.s_flags land flag_ack <> 0 then begin
    c.snd_wnd <- s.s_window;
    let ack = s.s_ack in
    if ack > c.snd_una && ack <= c.snd_nxt then begin
      let acked = ack - c.snd_una in
      (* new data acknowledged *)
      let sampled = c.rtt_seq <> 0 && ack >= c.rtt_seq in
      if sampled then begin
        let sample = Sim.Engine.now c.stack.eng -. c.rtt_sent_at in
        if c.srtt = 0. then begin
          c.srtt <- sample;
          c.mdev <- sample /. 2.
        end
        else begin
          let err = sample -. c.srtt in
          c.srtt <- c.srtt +. (err /. 8.);
          c.mdev <- c.mdev +. ((Float.abs err -. c.mdev) /. 4.)
        end;
        c.rtt_seq <- 0
      end;
      c.retransmitting <- false;
      (* Karn, both halves: the baseline resets its backoff on any
         advance, so once queueing delay exceeds the RTO it re-fires at
         min_rto into a still-full queue forever — that loop IS the
         collapse.  tcpcc keeps the backed-off RTO until a clean sample
         from an untransmitted segment says the network recovered. *)
      if sampled || not c.stack.cc then c.backoff <- 0;
      arm_death c;
      (* drop acked bytes from the front of txbuf *)
      let data_acked = min ack (fin_seq c) in
      let drop = data_acked - c.tx_base in
      if drop > 0 then begin
        let keep = Buffer.sub c.txbuf drop (Buffer.length c.txbuf - drop) in
        Buffer.clear c.txbuf;
        Buffer.add_string c.txbuf keep;
        c.tx_base <- data_acked
      end;
      c.snd_una <- ack;
      if c.stack.cc then begin
        let mss = c.stack.cfg.mss in
        if c.in_recovery then
          if ack >= c.recover then begin
            (* full ack: recovery over, deflate to ssthresh *)
            c.in_recovery <- false;
            c.dupacks <- 0;
            c.cwnd <- max mss c.ssthresh
          end
          else begin
            (* NewReno partial ack: the next hole is now the head;
               resend it at once rather than waiting out an RTO *)
            retransmit_head c;
            c.cwnd <- max mss (c.cwnd - acked + mss)
          end
        else begin
          c.dupacks <- 0;
          if c.cwnd < c.ssthresh then
            (* slow start: one segment per segment acked *)
            c.cwnd <- min c.stack.cfg.send_window (c.cwnd + min acked mss)
          else
            (* congestion avoidance: ~one segment per round trip *)
            c.cwnd <-
              min c.stack.cfg.send_window
                (c.cwnd + max 1 (mss * mss / c.cwnd))
        end
      end;
      if c.snd_una = c.snd_nxt then Sim.Time.disarm c.rexmit_tmr
      else arm_rto c;
      Sim.Rendez.wakeup_all c.wwait;
      (* the ack may have opened the send window: the ticker used to
         retry this on the next tick, now the ack itself drives it *)
      if Buffer.length c.txbuf + c.tx_base > c.snd_nxt then push_segments c
    end
    else if
      c.stack.cc && ack = c.snd_una
      && c.snd_nxt > c.snd_una
      && String.length s.s_data = 0
      && s.s_flags land (flag_syn lor flag_fin) = 0
    then begin
      (* duplicate ack: the receiver saw something out of order *)
      c.dupacks <- c.dupacks + 1;
      if c.in_recovery then begin
        (* inflate: each dup ack means a segment left the network *)
        c.cwnd <- c.cwnd + c.stack.cfg.mss;
        push_segments c
      end
      else if c.dupacks = 3 then begin
        (* fast retransmit + fast recovery *)
        let mss = c.stack.cfg.mss in
        let inflight = c.snd_nxt - c.snd_una in
        c.ssthresh <- max (2 * mss) (inflight / 2);
        c.recover <- c.snd_nxt;
        c.in_recovery <- true;
        c.stack.stats.fast_retransmits <- c.stack.stats.fast_retransmits + 1;
        c.cstats.fast_retransmits <- c.cstats.fast_retransmits + 1;
        bump_counter c "fast_retransmits" 1;
        bump_counter c "cwnd_halved" 1;
        retransmit_head c;
        c.cwnd <- c.ssthresh + (3 * mss);
        arm_rto c
      end
    end;
    (* a window update may end the zero-window persist state *)
    if c.snd_wnd > 0 && Sim.Time.armed c.persist_tmr then begin
      Sim.Time.disarm c.persist_tmr;
      c.persist_backoff <- 0;
      push_segments c
    end
  end

(* ---- receive ---- *)

let deliver c data =
  if String.length data > 0 then begin
    c.stack.stats.bytes_rcvd <- c.stack.stats.bytes_rcvd + String.length data;
    c.cstats.bytes_rcvd <- c.cstats.bytes_rcvd + String.length data;
    (* no delimiters: a plain byte-stream block *)
    Block.Q.force_put c.rq (Block.make ~delim:false data)
  end

let send_bare_ack c = xmit c ~seq:c.snd_nxt ~flags:0 ""

(* drain the reassembly queue once the in-order edge moved: deliver
   every buffered byte that is now contiguous with rcv_nxt *)
let drain_ooo c =
  let rec go () =
    match c.ooo with
    | (seq, data) :: rest when seq <= c.rcv_nxt ->
      let len = String.length data in
      if seq + len > c.rcv_nxt then begin
        let take = seq + len - c.rcv_nxt in
        deliver c (String.sub data (len - take) take);
        c.rcv_nxt <- c.rcv_nxt + take
      end;
      c.ooo <- rest;
      go ()
    | _ -> ()
  in
  go ()

let ooo_bytes c =
  List.fold_left (fun a (_, d) -> a + String.length d) 0 c.ooo

(* stash a beyond-the-hole segment for later reassembly, keeping the
   list seq-sorted and the total bounded by the receive buffer *)
let stash_ooo c ~seq data =
  if
    ooo_bytes c + String.length data <= c.stack.cfg.recv_window
    && not (List.exists (fun (q, _) -> q = seq) c.ooo)
  then begin
    c.ooo <-
      List.merge (fun (a, _) (b, _) -> compare a b) [ (seq, data) ] c.ooo;
    bump_counter c "ooo_queued" 1
  end

let handle_established c (s : segment) =
  process_ack c s;
  if String.length s.s_data > 0 || s.s_flags land flag_fin <> 0 then begin
    if s.s_seq = c.rcv_nxt then begin
      c.rcv_nxt <- c.rcv_nxt + String.length s.s_data;
      deliver c s.s_data;
      (* no data follows a FIN, so draining there could only discard
         stale sub-rcv_nxt leftovers — don't let it move rcv_nxt under
         the FIN's own +1 *)
      if c.stack.cc && s.s_flags land flag_fin = 0 && c.ooo <> [] then
        drain_ooo c;
      if s.s_flags land flag_fin <> 0 then begin
        c.rcv_nxt <- c.rcv_nxt + 1;
        Block.Q.force_put c.rq (Block.hangup ());
        (match c.state with
        | TEstablished -> set_state c TCloseWait
        | TFinWait1 -> set_state c TTimeWait (* simultaneous close *)
        | TFinWait2 ->
          set_state c TTimeWait;
          Sim.Engine.after ~label:c.stack.pname c.stack.eng 1.0 (fun () ->
              destroy c None)
        | TClosed | TSynSent | TSynRcvd | TCloseWait | TLastAck | TTimeWait
          ->
          ())
      end;
      send_bare_ack c
    end
    else begin
      (* out of order or duplicate.  The baseline drops and re-acks —
         forcing its sender's go-back-N; tcpcc buffers beyond-the-hole
         data for reassembly, and the re-ack below becomes the dup ack
         that drives the peer's fast retransmit *)
      if s.s_seq > c.rcv_nxt then begin
        if
          c.stack.cc && String.length s.s_data > 0
          && s.s_flags land (flag_syn lor flag_fin) = 0
        then stash_ooo c ~seq:s.s_seq s.s_data
        else begin
          c.stack.stats.out_of_order_dropped <-
            c.stack.stats.out_of_order_dropped + 1;
          c.cstats.out_of_order_dropped <- c.cstats.out_of_order_dropped + 1
        end
      end
      else begin
        (* already-delivered data: a duplicate from the wire or a
           retransmission crossing our ack *)
        c.stack.stats.dups_dropped <- c.stack.stats.dups_dropped + 1;
        c.cstats.dups_dropped <- c.cstats.dups_dropped + 1
      end;
      send_bare_ack c
    end
  end

let handle_segment c (s : segment) =
  c.stack.stats.segs_rcvd <- c.stack.stats.segs_rcvd + 1;
  c.cstats.segs_rcvd <- c.cstats.segs_rcvd + 1;
  if s.s_flags land flag_rst <> 0 then begin
    c.stack.stats.resets <- c.stack.stats.resets + 1;
    c.cstats.resets <- c.cstats.resets + 1;
    destroy c (Some "connection reset")
  end
  else
    match c.state with
    | TClosed -> ()
    | TSynSent ->
      if s.s_flags land flag_syn <> 0 && s.s_flags land flag_ack <> 0
         && s.s_ack = c.iss + 1
      then begin
        c.irs <- s.s_seq;
        c.rcv_nxt <- s.s_seq + 1;
        c.snd_una <- s.s_ack;
        c.snd_wnd <- s.s_window;
        set_state c TEstablished;
        Sim.Time.disarm c.rexmit_tmr;
        c.backoff <- 0;
        arm_death c;
        send_bare_ack c;
        Sim.Rendez.wakeup_all c.estwait
      end
    | TSynRcvd ->
      if s.s_flags land flag_ack <> 0 && s.s_ack = c.iss + 1 then begin
        c.snd_una <- s.s_ack;
        c.snd_wnd <- s.s_window;
        set_state c TEstablished;
        Sim.Time.disarm c.rexmit_tmr;
        c.backoff <- 0;
        arm_death c;
        (* the accept queue inherits this conversation's backlog slot *)
        (match c.lis with
        | Some lis ->
          lis.lis_pending <- max 0 (lis.lis_pending - 1);
          c.lis <- None;
          if lis.lis_open then Sim.Mbox.send lis.accepts c
        | None -> ());
        if String.length s.s_data > 0 || s.s_flags land flag_fin <> 0 then
          handle_established c s
      end
      else if s.s_flags land flag_syn <> 0 then
        (* retransmitted SYN: repeat our SYN-ACK *)
        xmit c ~seq:c.iss ~flags:flag_syn ""
    | TEstablished | TFinWait1 | TFinWait2 | TCloseWait | TLastAck
    | TTimeWait -> (
      handle_established c s;
      (* state progress on our FIN being acked *)
      match c.state with
      | TFinWait1 when c.snd_una = c.snd_nxt && c.fin_queued ->
        set_state c TFinWait2
      | TLastAck when c.snd_una = c.snd_nxt -> destroy c None
      | TTimeWait ->
        Sim.Engine.after ~label:c.stack.pname c.stack.eng 1.0 (fun () ->
            destroy c None)
      | TClosed | TSynSent | TSynRcvd | TEstablished | TFinWait1
      | TFinWait2 | TCloseWait | TLastAck ->
        ())

let send_rst st ~dst ~sport ~dport ~seq ~ack =
  raw_output st ~dst
    (encode ~sport ~dport ~seq ~ack ~flags:(flag_rst lor flag_ack) ~window:0
       "")

let new_iss st = 1 + Random.State.int (Sim.Engine.random st.eng) 0xffffff

let make_conv st ~lport ~rport ~raddr ~state ~iss =
  let c =
    {
      cid = st.next_cid;
      stack = st;
      lport;
      rport;
      raddr;
      cstats =
        {
          segs_sent = 0;
          segs_rcvd = 0;
          bytes_sent = 0;
          bytes_rcvd = 0;
          retransmits = 0;
          retransmitted_bytes = 0;
          out_of_order_dropped = 0;
          dups_dropped = 0;
          resets = 0;
          fast_retransmits = 0;
          persist_probes = 0;
        };
      state;
      iss;
      snd_una = iss;
      snd_nxt = iss + 1;
      snd_wnd = st.cfg.mss;
      irs = 0;
      rcv_nxt = 0;
      txbuf = Buffer.create 4096;
      tx_base = iss + 1;
      fin_queued = false;
      rq = Block.Q.create ~limit:st.cfg.recv_window st.eng;
      wwait = Sim.Rendez.create st.eng;
      estwait = Sim.Rendez.create st.eng;
      srtt = 0.;
      mdev = 0.;
      backoff = 0;
      rexmit_tmr = Sim.Time.timer ~label:st.pname st.eng;
      death_tmr = Sim.Time.timer ~label:st.pname st.eng;
      death_at = Sim.Engine.now st.eng +. st.cfg.death_time;
      rtt_seq = 0;
      rtt_sent_at = 0.;
      retransmitting = false;
      cwnd = 2 * st.cfg.mss;
      ssthresh = st.cfg.send_window;
      dupacks = 0;
      recover = 0;
      in_recovery = false;
      ooo = [];
      persist_tmr = Sim.Time.timer ~label:st.pname st.eng;
      persist_backoff = 0;
      err = None;
      lis = None;
    }
  in
  st.next_cid <- st.next_cid + 1;
  Hashtbl.replace st.convs (conv_key c) c;
  Sim.Time.arm_at c.death_tmr c.death_at (fun () -> death_fire c);
  (match Sim.Engine.obs st.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Event.Proto_state
         {
           proto = st.pname;
           conv = c.cid;
           from_ = "Closed";
           to_ = state_str state;
         }));
  c

let input st ~src:sa ~dst:_ pkt =
  match decode pkt with
  | None -> (
    match Sim.Engine.obs st.eng with
    | None -> ()
    | Some tr ->
      if String.length pkt >= header_len && not (Chksum.valid pkt) then begin
        Obs.Trace.emit tr (Obs.Event.Checksum_err { proto = st.pname });
        Obs.Trace.bump tr (st.pname ^ ".badsum") 1
      end)
  | Some s -> (
    match
      Hashtbl.find_opt st.convs (s.s_dport, s.s_sport, Ipaddr.to_int32 sa)
    with
    | Some c -> handle_segment c s
    | None -> (
      match Hashtbl.find_opt st.listeners s.s_dport with
      | Some lis
        when lis.lis_open
             && s.s_flags land flag_syn <> 0
             && s.s_flags land flag_ack = 0 ->
        if lis.lis_pending + Sim.Mbox.length lis.accepts >= lis.backlog
        then begin
          (* backlog full: refuse rather than wedge — the caller sees a
             clean "connection reset" and may redial *)
          lis.refused <- lis.refused + 1;
          st.refusals <- st.refusals + 1;
          (match Sim.Engine.obs st.eng with
          | None -> ()
          | Some tr -> Obs.Trace.bump tr (st.pname ^ ".backlog_refused") 1);
          send_rst st ~dst:sa ~sport:s.s_dport ~dport:s.s_sport ~seq:s.s_ack
            ~ack:(s.s_seq + String.length s.s_data)
        end
        else begin
          let c =
            make_conv st ~lport:s.s_dport ~rport:s.s_sport ~raddr:sa
              ~state:TSynRcvd ~iss:(new_iss st)
          in
          c.lis <- Some lis;
          lis.lis_pending <- lis.lis_pending + 1;
          c.irs <- s.s_seq;
          c.rcv_nxt <- s.s_seq + 1;
          c.snd_wnd <- s.s_window;
          arm_rto c;
          xmit c ~seq:c.iss ~flags:flag_syn ""
        end
      | Some _ | None ->
        if s.s_flags land flag_rst = 0 then
          send_rst st ~dst:sa ~sport:s.s_dport ~dport:s.s_sport ~seq:s.s_ack
            ~ack:(s.s_seq + String.length s.s_data)))

let attach_gen ~pname ~ipproto ~cc ~config ip =
  let eng = Ip.engine ip in
  let st =
    {
      eng;
      ip;
      pname;
      ipproto;
      cc;
      cfg = config;
      convs = Hashtbl.create 31;
      listeners = Hashtbl.create 7;
      next_port = 5000;
      next_cid = 0;
      refusals = 0;
      stats =
        {
          segs_sent = 0;
          segs_rcvd = 0;
          bytes_sent = 0;
          bytes_rcvd = 0;
          retransmits = 0;
          retransmitted_bytes = 0;
          out_of_order_dropped = 0;
          dups_dropped = 0;
          resets = 0;
          fast_retransmits = 0;
          persist_probes = 0;
        };
    }
  in
  Ip.register_proto ip ~proto:ipproto (fun ~src ~dst pkt ->
      match config.cpu with
      | None -> input st ~src ~dst pkt
      | Some cpu ->
        let cost =
          config.cost_per_seg
          +. (config.cost_per_byte *. float_of_int (String.length pkt))
        in
        Sim.Cpu.run_after ~label:pname cpu cost (fun () ->
            input st ~src ~dst pkt));
  st

let attach ?(config = default_config) ip =
  attach_gen ~pname:"tcp" ~ipproto:Ip.proto_tcp ~cc:false ~config ip

let attach_cc ?(config = default_config) ip =
  attach_gen ~pname:"tcpcc" ~ipproto:Ip.proto_tcpcc ~cc:true ~config ip

let alloc_port st =
  let start = st.next_port - 5000 in
  let rec try_port i =
    if i >= 60000 then raise Port_exhausted
    else
      let p = 5000 + ((start + i) mod 60000) in
      let used =
        Hashtbl.fold (fun (lp, _, _) _ acc -> acc || lp = p) st.convs false
        || Hashtbl.mem st.listeners p
      in
      if used then try_port (i + 1) else p
  in
  let p = try_port 0 in
  st.next_port <- p + 1;
  p

let connect ?lport st ~raddr ~rport =
  let lport = match lport with Some p -> p | None -> alloc_port st in
  let sp =
    match Sim.Engine.obs st.eng with
    | None -> Obs.Span.none
    | Some tr -> Obs.Span.enter tr ~layer:st.pname (st.pname ^ ".connect")
  in
  let fin () =
    match Sim.Engine.obs st.eng with
    | None -> ()
    | Some tr -> Obs.Span.exit tr sp
  in
  let c = make_conv st ~lport ~rport ~raddr ~state:TSynSent ~iss:(new_iss st) in
  arm_rto c;
  xmit_initial_syn c;
  while c.state = TSynSent do
    Sim.Rendez.sleep c.estwait
  done;
  (match (c.state, c.err) with
  | TEstablished, _ -> fin ()
  | _, Some "connect timed out" ->
    fin ();
    raise (Timeout "tcp connect")
  | _, Some reason ->
    fin ();
    raise (Refused reason)
  | _, None ->
    fin ();
    raise (Refused "closed"));
  c

let default_backlog = 16

let announce ?(backlog = default_backlog) st ~port =
  if Hashtbl.mem st.listeners port then
    invalid_arg (Printf.sprintf "Tcp.announce: port %d in use" port);
  let lis =
    { lstack = st; lis_port = port; accepts = Sim.Mbox.create st.eng;
      lis_open = true; backlog = max 1 backlog; lis_pending = 0;
      refused = 0 }
  in
  Hashtbl.replace st.listeners port lis;
  lis

let listen lis = Sim.Mbox.recv lis.accepts
let set_backlog lis n = lis.backlog <- max 1 n
let backlog lis = lis.backlog
let queued lis = lis.lis_pending + Sim.Mbox.length lis.accepts
let refused lis = lis.refused
let refusals st = st.refusals
let conv_count st = Hashtbl.length st.convs

let close_listener lis =
  lis.lis_open <- false;
  Hashtbl.remove lis.lstack.listeners lis.lis_port

let write c data =
  (match c.state with
  | TEstablished | TCloseWait -> ()
  | TClosed | TSynSent | TSynRcvd | TFinWait1 | TFinWait2 | TLastAck
  | TTimeWait ->
    raise Hungup);
  if c.fin_queued then raise Hungup;
  (* block while the send buffer is full *)
  while
    (c.state = TEstablished || c.state = TCloseWait)
    && Buffer.length c.txbuf >= c.stack.cfg.recv_window
  do
    Sim.Rendez.sleep c.wwait
  done;
  (match c.state with
  | TEstablished | TCloseWait -> ()
  | TClosed | TSynSent | TSynRcvd | TFinWait1 | TFinWait2 | TLastAck
  | TTimeWait ->
    raise Hungup);
  Buffer.add_string c.txbuf data;
  push_segments c

let read c n = Block.Q.read c.rq n

let close c =
  match c.state with
  | TClosed | TFinWait1 | TFinWait2 | TLastAck | TTimeWait -> ()
  | TSynSent | TSynRcvd -> destroy c None
  | TEstablished ->
    c.fin_queued <- true;
    set_state c TFinWait1;
    push_segments c;
    arm_death c
  | TCloseWait ->
    c.fin_queued <- true;
    set_state c TLastAck;
    push_segments c;
    arm_death c

let _ = ignore Log.debug
