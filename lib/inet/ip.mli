(** A host's IP layer over a simulated Ethernet (paper section 2.3's
    "Internet (IP) protocol suite" substrate).

    Handles ARP resolution on the local segment, classless subnet
    routing through one default gateway, IP header checksums, and
    fragmentation/reassembly (IL and UDP rely on IP fragmentation for
    messages larger than the medium's MTU).

    Transport handlers ({!register_proto}) run in the Ethernet driver's
    kernel process; they may block only on their own conversation
    queues, never indefinitely, or they would stall the interface. *)

type stack

val proto_il : int
(** 40 — IL's IP protocol number. *)

val proto_tcp : int
(** 6 *)

val proto_tcpcc : int
(** 105 — the congestion-controlled TCP variant.  It shares TCP's wire
    format but is demultiplexed as its own transport so both can run on
    one stack. *)

val proto_udp : int
(** 17 *)

val create :
  ?mtu:int ->
  ?gateway:Ipaddr.t ->
  addr:Ipaddr.t ->
  mask:Ipaddr.t ->
  Etherport.t ->
  stack
(** Attach an IP stack to an Ethernet driver: opens one connection for
    packet type 2048 (IP) and one for 2054 (ARP).  [mtu] defaults to
    1500 bytes of IP packet. *)

val engine : stack -> Sim.Engine.t
val addr : stack -> Ipaddr.t
val mask : stack -> Ipaddr.t
val gateway : stack -> Ipaddr.t option
val mtu : stack -> int

exception No_route of Ipaddr.t
(** Destination off-subnet and no gateway configured. *)

val send : stack -> proto:int -> dst:Ipaddr.t -> string -> unit
(** Transmit one IP packet (fragmenting if needed).  Packets to the
    stack's own address loop back locally.  ARP misses queue the packet
    and resolve asynchronously; unresolvable destinations are dropped
    after the retry budget (a counter records it). *)

val register_proto :
  stack -> proto:int -> (src:Ipaddr.t -> dst:Ipaddr.t -> string -> unit) -> unit
(** Install the handler for an IP protocol number.
    @raise Invalid_argument if already registered. *)

type counters = {
  mutable ip_in : int;
  mutable ip_out : int;
  mutable ip_bad_checksum : int;
  mutable ip_no_proto : int;
  mutable ip_reasm_drops : int;
  mutable arp_misses : int;
  mutable arp_unresolved_drops : int;
  mutable ip_forwarded : int;
  mutable ip_ttl_exceeded : int;
}

val counters : stack -> counters

val arp_cache_dump : stack -> (Ipaddr.t * Netsim.Eaddr.t) list
(** For the diagnostic interfaces (paper: "user-level protocols like
    ARP" are visible through the driver's files). *)

(** {1 The routing subsystem's hooks}

    A gateway machine (the paper's subnet entries name one with
    [ipgw=]) has an interface on each network.  The [Route] library
    owns the route table and the forwarding policy; these hooks are how
    it plugs into each interface's stack.  Without them, the stack
    keeps the built-in one-gateway rule and refuses transit. *)

type header = {
  h_len : int;
  h_ipid : int;
  h_frag_off : int;  (** byte offset of this fragment *)
  h_more : bool;
  h_proto : int;
  h_src : Ipaddr.t;
  h_dst : Ipaddr.t;
}

val header_len : int
(** 20 — our headers are always option-free. *)

val decode_header : string -> header option
(** Parse and checksum-validate an IP header; [None] when malformed. *)

val set_route_out : stack -> (string -> Ipaddr.t -> unit) -> unit
(** Install the route-selection hook: {!send} hands it each raw
    (already fragmented) packet with the destination, instead of
    applying the built-in my-subnet-or-gateway rule. *)

val set_forward : stack -> (string -> unit) -> unit
(** Install the transit hook: packets arriving from the wire whose
    destination is not this stack's address are handed over raw
    (truncated to the header's length).  Without it they are silently
    dropped, as hosts should. *)

val output_raw : stack -> nexthop:Ipaddr.t -> string -> unit
(** Transmit one raw IP packet toward [nexthop] on this interface's
    segment (routing already decided).  ARP resolution as {!send}. *)

val deliver_raw : stack -> string -> unit
(** Hand a raw IP packet to this stack's transports regardless of its
    destination address — multi-homed local delivery and tunnel
    receive.  Fragments reassemble; bad headers count as checksum
    errors. *)
