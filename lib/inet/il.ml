let src = Logs.Src.create "il" ~doc:"IL protocol"

module Log = (val Logs.src_log src : Logs.LOG)

let header_len = 18

type msg_type = Sync | Data | Dataquery | Ack | Query | State | Close | Reset

let type_code = function
  | Sync -> 0
  | Data -> 1
  | Dataquery -> 2
  | Ack -> 3
  | Query -> 4
  | State -> 5
  | Close -> 6
  | Reset -> 7

let type_of_code = function
  | 0 -> Some Sync
  | 1 -> Some Data
  | 2 -> Some Dataquery
  | 3 -> Some Ack
  | 4 -> Some Query
  | 5 -> Some State
  | 6 -> Some Close
  | 7 -> Some Reset
  | _ -> None

type config = {
  window : int;
  min_timeout : float;
  max_timeout : float;
  death_time : float;
  ack_delay : float;
  fast_recovery : bool;
  cpu : Sim.Cpu.t option;
  cost_per_msg : float;
  cost_per_byte : float;
}

let default_config =
  {
    window = 20;
    min_timeout = 0.05;
    max_timeout = 4.0;
    death_time = 30.0;
    ack_delay = 0.02;
    fast_recovery = true;
    cpu = None;
    cost_per_msg = 0.;
    cost_per_byte = 0.;
  }

type counters = {
  mutable msgs_sent : int;
  mutable msgs_rcvd : int;
  mutable bytes_sent : int;
  mutable bytes_rcvd : int;
  mutable retransmits : int;
  mutable retransmitted_bytes : int;
  mutable queries_sent : int;
  mutable dups_dropped : int;
  mutable out_of_window : int;
  mutable resets : int;
  mutable rtt_samples : int;
}

type conv_state = SClosed | SSyncer | SSyncee | SEstablished | SClosing

exception Refused of string
exception Timeout of string
exception Hungup
exception Port_exhausted

type conv = {
  cid : int;
  stack : stack;
  lport : int;
  rport : int;
  raddr : Ipaddr.t;
  cstats : counters;  (* per-conversation mirror of the stack counters *)
  mutable state : conv_state;
  mutable start : int;  (* our initial sequence number *)
  mutable next : int;  (* next id we will send *)
  mutable rstart : int;  (* peer's initial sequence number *)
  mutable recvd : int;  (* highest in-order id received *)
  mutable unacked : (int * string) list;  (* ascending ids awaiting ack *)
  mutable oow : (int * string) list;  (* out-of-order buffer, ascending *)
  rq : Block.Q.t;
  wwait : Sim.Rendez.t;  (* writers waiting for window space *)
  estwait : Sim.Rendez.t;  (* connect/close waiters *)
  mutable srtt : float;
  mutable mdev : float;
  mutable backoff : int;
  rexmit_tmr : Sim.Time.timer;  (* disarmed = nothing awaiting (re)send *)
  death_tmr : Sim.Time.timer;
  mutable death_at : float;
      (* the death deadline is pushed on every ack; rather than re-arm
         the heap entry each time, the timer fires at the stale deadline
         and re-arms itself if the real one has moved (lazy reschedule) *)
  ack_tmr : Sim.Time.timer;  (* delayed ack, armed = ack owed *)
  mutable rtt_id : int;  (* message being timed, 0 = none *)
  mutable rtt_sent_at : float;
  mutable err : string option;
  mutable close_sent : bool;
  mutable lis : listener option;  (* half-open syncee's listener slot *)
}

and listener = {
  lstack : stack;
  lis_port : int;
  accepts : conv Sim.Mbox.t;
  mutable lis_open : bool;
  mutable backlog : int;
  mutable lis_pending : int;  (* half-open syncees counted in backlog *)
  mutable refused : int;
}

and stack = {
  eng : Sim.Engine.t;
  ip : Ip.stack;
  cfg : config;
  convs : (int * int * int32, conv) Hashtbl.t;  (* lport, rport, raddr *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_port : int;
  mutable next_cid : int;
  mutable refusals : int;  (* backlog refusals, all listeners *)
  stats : counters;
}

let engine st = st.eng
let counters st = st.stats
let local_addr st = Ip.addr st.ip
let conv_id c = c.cid
let local_port c = c.lport
let remote_port c = c.rport
let remote_addr c = c.raddr
let rtt_estimate c = c.srtt

let state_str = function
  | SClosed -> "Closed"
  | SSyncer -> "Syncer"
  | SSyncee -> "Syncee"
  | SEstablished -> "Established"
  | SClosing -> "Closing"

let state_name c = state_str c.state

let status c =
  Printf.sprintf
    "il/%d %d %s sent %d rcvd %d unacked %d window %d rexmit %d rtt %.0fms"
    c.cid c.lport (state_name c) (c.next - c.start - 1) (c.recvd - c.rstart)
    (List.length c.unacked) c.stack.cfg.window c.cstats.retransmits
    (c.srtt *. 1000.)

let conv_counters c = c.cstats

let conv_stats c =
  let s = c.cstats in
  String.concat "\n"
    [
      Printf.sprintf "msgs_sent %d" s.msgs_sent;
      Printf.sprintf "msgs_rcvd %d" s.msgs_rcvd;
      Printf.sprintf "bytes_sent %d" s.bytes_sent;
      Printf.sprintf "bytes_rcvd %d" s.bytes_rcvd;
      Printf.sprintf "retransmits %d" s.retransmits;
      Printf.sprintf "retransmitted_bytes %d" s.retransmitted_bytes;
      Printf.sprintf "queries_sent %d" s.queries_sent;
      Printf.sprintf "dups_dropped %d" s.dups_dropped;
      Printf.sprintf "out_of_window %d" s.out_of_window;
      Printf.sprintf "resets %d" s.resets;
      Printf.sprintf "rtt_samples %d" s.rtt_samples;
      Printf.sprintf "rtt_ms %.3f" (c.srtt *. 1000.);
    ]
  ^ "\n"

(* state transitions are traced; every change funnels through here *)
let set_state c s =
  if c.state <> s then begin
    (match Sim.Engine.obs c.stack.eng with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Event.Proto_state
           {
             proto = "il";
             conv = c.cid;
             from_ = state_str c.state;
             to_ = state_str s;
           }));
    c.state <- s
  end

(* ---- wire format ---- *)

let put16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let put32 b off v =
  put16 b off ((v lsr 16) land 0xffff);
  put16 b (off + 2) (v land 0xffff)

let get16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
let get32 s off = (get16 s off lsl 16) lor get16 s (off + 2)

let encode ~ty ~sport ~dport ~id ~ack payload =
  let len = header_len + String.length payload in
  let b = Bytes.create len in
  put16 b 0 0;
  put16 b 2 len;
  Bytes.set b 4 (Char.chr (type_code ty));
  Bytes.set b 5 '\000';
  put16 b 6 sport;
  put16 b 8 dport;
  put32 b 10 id;
  put32 b 14 ack;
  Bytes.blit_string payload 0 b header_len (String.length payload);
  let sum = Chksum.checksum (Bytes.to_string b) in
  put16 b 0 sum;
  Bytes.to_string b

type packet = {
  p_ty : msg_type;
  p_sport : int;
  p_dport : int;
  p_id : int;
  p_ack : int;
  p_data : string;
}

let decode pkt =
  if String.length pkt < header_len then None
  else if not (Chksum.valid pkt) then None
  else if get16 pkt 2 <> String.length pkt then None
  else
    match type_of_code (Char.code pkt.[4]) with
    | None -> None
    | Some ty ->
      Some
        {
          p_ty = ty;
          p_sport = get16 pkt 6;
          p_dport = get16 pkt 8;
          p_id = get32 pkt 10;
          p_ack = get32 pkt 14;
          p_data = String.sub pkt header_len (String.length pkt - header_len);
        }

(* ---- output ---- *)

let raw_output st ~dst pkt =
  match st.cfg.cpu with
  | None -> Ip.send st.ip ~proto:Ip.proto_il ~dst pkt
  | Some cpu ->
    let cost =
      st.cfg.cost_per_msg
      +. (st.cfg.cost_per_byte *. float_of_int (String.length pkt))
    in
    Sim.Cpu.run_after ~label:"il" cpu cost (fun () ->
        Ip.send st.ip ~proto:Ip.proto_il ~dst pkt)

let xmit c ty ~id ?(data = "") () =
  (* every outgoing message acknowledges what we have received *)
  if ty = Data || ty = Ack then Sim.Time.disarm c.ack_tmr;
  raw_output c.stack ~dst:c.raddr
    (encode ~ty ~sport:c.lport ~dport:c.rport ~id ~ack:c.recvd data)

let rto c =
  let t = c.srtt +. (4. *. c.mdev) in
  let t = t *. float_of_int (1 lsl min c.backoff 6) in
  min c.stack.cfg.max_timeout (max c.stack.cfg.min_timeout t)

(* ---- teardown ---- *)

let conv_key c = (c.lport, c.rport, Ipaddr.to_int32 c.raddr)

let destroy c reason =
  if c.state <> SClosed then begin
    set_state c SClosed;
    c.err <- reason;
    Sim.Time.disarm c.rexmit_tmr;
    Sim.Time.disarm c.death_tmr;
    Sim.Time.disarm c.ack_tmr;
    (match c.lis with
    | Some lis ->
      lis.lis_pending <- max 0 (lis.lis_pending - 1);
      c.lis <- None
    | None -> ());
    Hashtbl.remove c.stack.convs (conv_key c);
    Block.Q.force_put c.rq (Block.hangup ());
    Block.Q.close c.rq;
    Sim.Rendez.wakeup_all c.wwait;
    Sim.Rendez.wakeup_all c.estwait
  end

(* ---- per-conversation timers ----

   There is no protocol ticker: each conversation arms exactly the
   deadlines it needs on the engine heap and disarms them when the work
   is acknowledged, so an idle conversation schedules nothing at all. *)

let rec arm_timer c =
  Sim.Time.arm_at c.rexmit_tmr
    (Sim.Engine.now c.stack.eng +. rto c)
    (fun () -> rexmit_fire c)

and rexmit_fire c =
  match c.state with
  | SClosed -> ()
  | SSyncer | SSyncee ->
    c.backoff <- c.backoff + 1;
    xmit c Sync ~id:c.start ();
    arm_timer c
  | SEstablished | SClosing ->
    if c.unacked <> [] || c.state = SClosing then begin
      if c.state = SClosing && c.close_sent then begin
        c.backoff <- c.backoff + 1;
        xmit c Close ~id:(c.next - 1) ();
        arm_timer c
      end
      else begin
        (* a timeout sends a small query, not the data *)
        c.stack.stats.queries_sent <- c.stack.stats.queries_sent + 1;
        c.cstats.queries_sent <- c.cstats.queries_sent + 1;
        c.backoff <- c.backoff + 1;
        (* Karn: once recovery starts, the timed message's ack may
           arrive via the Query/State exchange; a sample would fold
           the whole timeout into srtt *)
        c.rtt_id <- 0;
        xmit c Query ~id:(c.next - 1) ();
        arm_timer c
      end
    end

let rec arm_death c =
  c.death_at <- Sim.Engine.now c.stack.eng +. c.stack.cfg.death_time;
  if not (Sim.Time.armed c.death_tmr) then
    Sim.Time.arm_at c.death_tmr c.death_at (fun () -> death_fire c)

and death_fire c =
  if Sim.Engine.now c.stack.eng < c.death_at then
    (* the deadline moved while we slept: chase it *)
    Sim.Time.arm_at c.death_tmr c.death_at (fun () -> death_fire c)
  else
    match c.state with
    | SClosed -> ()
    | SSyncer | SSyncee -> destroy c (Some "connect timed out")
    | SEstablished | SClosing ->
      (* an idle, fully-acked conversation just lets the timer lapse;
         fresh traffic re-arms it *)
      if c.unacked <> [] || c.state = SClosing then
        destroy c (Some "connection timed out")

(* ---- rtt ---- *)

let rtt_sample c sample =
  c.stack.stats.rtt_samples <- c.stack.stats.rtt_samples + 1;
  c.cstats.rtt_samples <- c.cstats.rtt_samples + 1;
  if c.srtt = 0. then begin
    c.srtt <- sample;
    c.mdev <- sample /. 2.
  end
  else begin
    let err = sample -. c.srtt in
    (* adapt quickly upward: on a window-limited sender the measured
       round trip includes queueing behind the whole window, and a slow
       climb means a storm of spurious queries *)
    let gain = if err > 0. then 2. else 8. in
    c.srtt <- c.srtt +. (err /. gain);
    c.mdev <- c.mdev +. ((Float.abs err -. c.mdev) /. 4.)
  end

(* ---- ack processing ---- *)

let process_ack c ack =
  let before = List.length c.unacked in
  c.unacked <- List.filter (fun (id, _) -> id > ack) c.unacked;
  let acked = before - List.length c.unacked in
  if acked > 0 then begin
    if c.rtt_id <> 0 && ack >= c.rtt_id then begin
      rtt_sample c (Sim.Engine.now c.stack.eng -. c.rtt_sent_at);
      c.rtt_id <- 0
    end;
    c.backoff <- 0;
    arm_death c;
    if c.unacked = [] then Sim.Time.disarm c.rexmit_tmr else arm_timer c;
    Sim.Rendez.wakeup_all c.wwait
  end

(* ---- receive path ---- *)

let deliver c data =
  c.stack.stats.msgs_rcvd <- c.stack.stats.msgs_rcvd + 1;
  c.stack.stats.bytes_rcvd <- c.stack.stats.bytes_rcvd + String.length data;
  c.cstats.msgs_rcvd <- c.cstats.msgs_rcvd + 1;
  c.cstats.bytes_rcvd <- c.cstats.bytes_rcvd + String.length data;
  Block.Q.force_put c.rq (Block.make ~delim:true data)

let send_ack_now c = xmit c Ack ~id:(c.next - 1) ()

let schedule_ack c =
  if not (Sim.Time.armed c.ack_tmr) then
    Sim.Time.arm c.ack_tmr c.stack.cfg.ack_delay (fun () -> send_ack_now c)

let rec drain_oow c =
  match c.oow with
  | (id, data) :: rest when id = c.recvd + 1 ->
    c.oow <- rest;
    c.recvd <- id;
    deliver c data;
    drain_oow c
  | (id, _) :: rest when id <= c.recvd ->
    c.oow <- rest;
    drain_oow c
  | _ :: _ | [] -> ()

let handle_data c (p : packet) =
  if p.p_id = c.recvd + 1 then begin
    c.recvd <- p.p_id;
    deliver c p.p_data;
    drain_oow c;
    schedule_ack c
  end
  else if p.p_id <= c.recvd then begin
    c.stack.stats.dups_dropped <- c.stack.stats.dups_dropped + 1;
    c.cstats.dups_dropped <- c.cstats.dups_dropped + 1;
    (* a duplicate usually means our ack was lost: re-ack at once *)
    send_ack_now c
  end
  else if p.p_id - c.recvd <= c.stack.cfg.window then begin
    if List.mem_assoc p.p_id c.oow then begin
      (* a duplicate of a message already buffered out of order: it
         must not be delivered again when the gap fills *)
      c.stack.stats.dups_dropped <- c.stack.stats.dups_dropped + 1;
      c.cstats.dups_dropped <- c.cstats.dups_dropped + 1
    end
    else
      c.oow <-
        List.sort (fun (a, _) (b, _) -> compare a b) ((p.p_id, p.p_data) :: c.oow);
    (* a gap means a message was lost: volunteer our sequence state so
       the sender can resend the missing one without waiting for its
       query timer (the timer remains the backstop) *)
    let buffered = List.length c.oow in
    if c.stack.cfg.fast_recovery && (buffered = 1 || buffered mod 8 = 0)
    then xmit c State ~id:(c.next - 1) ()
    else schedule_ack c
  end
  else begin
    c.stack.stats.out_of_window <- c.stack.stats.out_of_window + 1;
    c.cstats.out_of_window <- c.cstats.out_of_window + 1
  end

let retransmit_missing c peer_ack =
  (* resend only the oldest message the peer lacks (as the real IL
     did): later ones are usually still in flight, and the receiver's
     window buffers successors, so one resend unlocks a cumulative
     ack.  This is what keeps IL polite in congestion. *)
  match List.find_opt (fun (id, _) -> id > peer_ack) c.unacked with
  | Some (id, data) ->
    c.stack.stats.retransmits <- c.stack.stats.retransmits + 1;
    c.stack.stats.retransmitted_bytes <-
      c.stack.stats.retransmitted_bytes + String.length data;
    c.cstats.retransmits <- c.cstats.retransmits + 1;
    c.cstats.retransmitted_bytes <-
      c.cstats.retransmitted_bytes + String.length data;
    (match Sim.Engine.obs c.stack.eng with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Event.Retransmit
           { proto = "il"; conv = c.cid; id; bytes = String.length data });
      Obs.Trace.bump tr "il.retransmits" 1);
    (* Karn: a message that was retransmitted must not contribute a
       round-trip sample — it would fold the whole recovery delay into
       srtt *)
    c.rtt_id <- 0;
    xmit c Data ~id ~data ();
    c.backoff <- c.backoff + 1;
    arm_timer c
  | None -> ()

let handle_packet c (p : packet) =
  match c.state with
  | SClosed -> ()
  | SSyncer -> (
    match p.p_ty with
    | Sync when p.p_ack = c.start ->
      c.rstart <- p.p_id;
      c.recvd <- p.p_id;
      set_state c SEstablished;
      Sim.Time.disarm c.rexmit_tmr;
      c.backoff <- 0;
      arm_death c;
      send_ack_now c;
      Sim.Rendez.wakeup_all c.estwait
    | Reset -> destroy c (Some "connection refused")
    | Sync | Data | Dataquery | Ack | Query | State | Close -> ())
  | SSyncee -> (
    match p.p_ty with
    | (Ack | Data | Dataquery) when p.p_ack >= c.start ->
      set_state c SEstablished;
      Sim.Time.disarm c.rexmit_tmr;
      c.backoff <- 0;
      arm_death c;
      (* the accept queue inherits this conversation's backlog slot:
         lis_pending drops as the mailbox grows, so occupancy is
         conserved until [listen] drains it *)
      (match c.lis with
      | Some lis ->
        lis.lis_pending <- max 0 (lis.lis_pending - 1);
        c.lis <- None;
        if lis.lis_open then Sim.Mbox.send lis.accepts c
      | None -> ());
      (match p.p_ty with
      | Data | Dataquery -> handle_data c p
      | Ack | Sync | Query | State | Close | Reset -> ())
    | Sync when p.p_id = c.rstart ->
      (* retransmitted sync from the peer: re-answer *)
      xmit c Sync ~id:c.start ()
    | Reset -> destroy c (Some "reset")
    | Sync | Ack | Data | Dataquery | Query | State | Close -> ())
  | SEstablished | SClosing -> (
    match p.p_ty with
    | Data ->
      process_ack c p.p_ack;
      handle_data c p
    | Dataquery ->
      process_ack c p.p_ack;
      handle_data c p;
      xmit c State ~id:(c.next - 1) ()
    | Ack -> process_ack c p.p_ack
    | Query ->
      (* the query carries the peer's sequence state; answer with ours *)
      process_ack c p.p_ack;
      xmit c State ~id:(c.next - 1) ()
    | State ->
      process_ack c p.p_ack;
      (* only now do we learn what the peer is missing: resend exactly
         that — never blind retransmission *)
      retransmit_missing c p.p_ack
    | Sync ->
      (* our establishing ack was lost *)
      if p.p_id = c.rstart then send_ack_now c
    | Close ->
      process_ack c p.p_ack;
      if p.p_id > c.recvd then c.recvd <- p.p_id;
      if not c.close_sent then begin
        c.close_sent <- true;
        let id = c.next in
        c.next <- c.next + 1;
        xmit c Close ~id ()
      end;
      destroy c None
    | Reset ->
      c.stack.stats.resets <- c.stack.stats.resets + 1;
      c.cstats.resets <- c.cstats.resets + 1;
      destroy c (Some "reset"))

let send_reset st ~dst ~sport ~dport ~id =
  raw_output st ~dst (encode ~ty:Reset ~sport ~dport ~id ~ack:id "")

let new_isn st =
  1 + Random.State.int (Sim.Engine.random st.eng) 0xffffff

let make_conv st ~lport ~rport ~raddr ~state ~start ~rstart =
  let c =
    {
      cid = st.next_cid;
      stack = st;
      lport;
      rport;
      raddr;
      cstats =
        {
          msgs_sent = 0;
          msgs_rcvd = 0;
          bytes_sent = 0;
          bytes_rcvd = 0;
          retransmits = 0;
          retransmitted_bytes = 0;
          queries_sent = 0;
          dups_dropped = 0;
          out_of_window = 0;
          resets = 0;
          rtt_samples = 0;
        };
      state;
      start;
      next = start + 1;
      rstart;
      recvd = rstart;
      unacked = [];
      oow = [];
      rq = Block.Q.create st.eng;
      wwait = Sim.Rendez.create st.eng;
      estwait = Sim.Rendez.create st.eng;
      srtt = 0.;
      mdev = 0.;
      backoff = 0;
      rexmit_tmr = Sim.Time.timer ~label:"il" st.eng;
      death_tmr = Sim.Time.timer ~label:"il" st.eng;
      death_at = Sim.Engine.now st.eng +. st.cfg.death_time;
      ack_tmr = Sim.Time.timer ~label:"il" st.eng;
      rtt_id = 0;
      rtt_sent_at = 0.;
      err = None;
      close_sent = false;
      lis = None;
    }
  in
  st.next_cid <- st.next_cid + 1;
  Hashtbl.replace st.convs (conv_key c) c;
  Sim.Time.arm_at c.death_tmr c.death_at (fun () -> death_fire c);
  (match Sim.Engine.obs st.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Event.Proto_state
         { proto = "il"; conv = c.cid; from_ = "Closed"; to_ = state_str state }));
  c

let input st ~src:sa ~dst:_ pkt =
  match decode pkt with
  | None -> (
    match Sim.Engine.obs st.eng with
    | None -> ()
    | Some tr ->
      if String.length pkt >= header_len && not (Chksum.valid pkt) then begin
        Obs.Trace.emit tr (Obs.Event.Checksum_err { proto = "il" });
        Obs.Trace.bump tr "il.badsum" 1
      end)
  | Some p -> (
    match
      Hashtbl.find_opt st.convs (p.p_dport, p.p_sport, Ipaddr.to_int32 sa)
    with
    | Some c -> handle_packet c p
    | None -> (
      match (p.p_ty, Hashtbl.find_opt st.listeners p.p_dport) with
      | Sync, Some lis when lis.lis_open ->
        if lis.lis_pending + Sim.Mbox.length lis.accepts >= lis.backlog
        then begin
          (* backlog full: refuse rather than wedge — the caller sees a
             clean "connection refused" and may redial *)
          lis.refused <- lis.refused + 1;
          st.refusals <- st.refusals + 1;
          (match Sim.Engine.obs st.eng with
          | None -> ()
          | Some tr -> Obs.Trace.bump tr "il.backlog_refused" 1);
          send_reset st ~dst:sa ~sport:p.p_dport ~dport:p.p_sport ~id:p.p_id
        end
        else begin
          let c =
            make_conv st ~lport:p.p_dport ~rport:p.p_sport ~raddr:sa
              ~state:SSyncee ~start:(new_isn st) ~rstart:p.p_id
          in
          c.lis <- Some lis;
          lis.lis_pending <- lis.lis_pending + 1;
          arm_timer c;
          xmit c Sync ~id:c.start ()
        end
      | Reset, _ -> ()
      | (Sync | Data | Dataquery | Ack | Query | State | Close), _ ->
        send_reset st ~dst:sa ~sport:p.p_dport ~dport:p.p_sport ~id:p.p_id))

let attach ?(config = default_config) ip =
  let eng = Ip.engine ip in
  let st =
    {
      eng;
      ip;
      cfg = config;
      convs = Hashtbl.create 31;
      listeners = Hashtbl.create 7;
      next_port = 5000;
      next_cid = 0;
      refusals = 0;
      stats =
        {
          msgs_sent = 0;
          msgs_rcvd = 0;
          bytes_sent = 0;
          bytes_rcvd = 0;
          retransmits = 0;
          retransmitted_bytes = 0;
          queries_sent = 0;
          dups_dropped = 0;
          out_of_window = 0;
          resets = 0;
          rtt_samples = 0;
        };
    }
  in
  Ip.register_proto ip ~proto:Ip.proto_il (fun ~src ~dst pkt ->
      match config.cpu with
      | None -> input st ~src ~dst pkt
      | Some cpu ->
        let cost =
          config.cost_per_msg
          +. (config.cost_per_byte *. float_of_int (String.length pkt))
        in
        Sim.Cpu.run_after ~label:"il" cpu cost (fun () -> input st ~src ~dst pkt));
  st

let alloc_port st =
  let start = st.next_port - 5000 in
  let rec try_port i =
    if i >= 60000 then raise Port_exhausted
    else
      let p = 5000 + ((start + i) mod 60000) in
      let used =
        Hashtbl.fold (fun (lp, _, _) _ acc -> acc || lp = p) st.convs false
        || Hashtbl.mem st.listeners p
      in
      if used then try_port (i + 1) else p
  in
  let p = try_port 0 in
  st.next_port <- p + 1;
  p

let connect ?lport st ~raddr ~rport =
  let lport = match lport with Some p -> p | None -> alloc_port st in
  let sp =
    match Sim.Engine.obs st.eng with
    | None -> Obs.Span.none
    | Some tr -> Obs.Span.enter tr ~layer:"il" "il.connect"
  in
  let fin () =
    match Sim.Engine.obs st.eng with
    | None -> ()
    | Some tr -> Obs.Span.exit tr sp
  in
  let c =
    make_conv st ~lport ~rport ~raddr ~state:SSyncer ~start:(new_isn st)
      ~rstart:0
  in
  c.recvd <- 0;
  arm_timer c;
  xmit c Sync ~id:c.start ();
  while c.state = SSyncer do
    Sim.Rendez.sleep c.estwait
  done;
  (match (c.state, c.err) with
  | SEstablished, _ -> fin ()
  | _, Some "connect timed out" ->
    fin ();
    raise (Timeout "il connect")
  | _, Some reason ->
    fin ();
    raise (Refused reason)
  | _, None ->
    fin ();
    raise (Refused "closed"));
  c

let default_backlog = 16

let announce ?(backlog = default_backlog) st ~port =
  if Hashtbl.mem st.listeners port then
    invalid_arg (Printf.sprintf "Il.announce: port %d in use" port);
  let lis =
    { lstack = st; lis_port = port; accepts = Sim.Mbox.create st.eng;
      lis_open = true; backlog = max 1 backlog; lis_pending = 0;
      refused = 0 }
  in
  Hashtbl.replace st.listeners port lis;
  lis

let listen lis = Sim.Mbox.recv lis.accepts
let set_backlog lis n = lis.backlog <- max 1 n
let backlog lis = lis.backlog
let queued lis = lis.lis_pending + Sim.Mbox.length lis.accepts
let refused lis = lis.refused
let refusals st = st.refusals
let conv_count st = Hashtbl.length st.convs

let close_listener lis =
  lis.lis_open <- false;
  Hashtbl.remove lis.lstack.listeners lis.lis_port

let write c data =
  (match c.state with
  | SEstablished -> ()
  | SClosed | SClosing | SSyncer | SSyncee -> raise Hungup);
  while
    c.state = SEstablished
    && List.length c.unacked >= c.stack.cfg.window
  do
    Sim.Rendez.sleep c.wwait
  done;
  if c.state <> SEstablished then raise Hungup;
  let id = c.next in
  c.next <- id + 1;
  c.unacked <- c.unacked @ [ (id, data) ];
  c.stack.stats.msgs_sent <- c.stack.stats.msgs_sent + 1;
  c.stack.stats.bytes_sent <- c.stack.stats.bytes_sent + String.length data;
  c.cstats.msgs_sent <- c.cstats.msgs_sent + 1;
  c.cstats.bytes_sent <- c.cstats.bytes_sent + String.length data;
  if c.rtt_id = 0 then begin
    c.rtt_id <- id;
    c.rtt_sent_at <- Sim.Engine.now c.stack.eng
  end;
  if not (Sim.Time.armed c.rexmit_tmr) then begin
    arm_timer c;
    arm_death c
  end;
  xmit c Data ~id ~data ()

let read c n = Block.Q.read c.rq n

let read_msg c =
  match Block.Q.get c.rq with
  | Some b -> Some (Block.to_string b)
  | None -> None

let close c =
  match c.state with
  | SClosed -> ()
  | SSyncer | SSyncee -> destroy c None
  | SClosing -> ()
  | SEstablished ->
    set_state c SClosing;
    c.close_sent <- true;
    let id = c.next in
    c.next <- id + 1;
    xmit c Close ~id ();
    arm_timer c;
    arm_death c;
    (* the peer's Close (handled above) destroys the conversation;
       don't block the closer — Plan 9's close doesn't linger *)
    ()

let _ = ignore Log.debug
