type conn = {
  id : int;
  driver : t;
  mutable ptype : int;
  mutable promiscuous : bool;
  mutable rx : Netsim.Ether.frame -> unit;
  mutable open_ : bool;
}

and t = {
  eng : Sim.Engine.t;
  nic : Netsim.Ether.nic;
  mutable connections : conn list;  (* ascending id *)
  mutable next_id : int;
  inbox : Netsim.Ether.frame Sim.Mbox.t;
  kproc : Sim.Proc.t;
}

let distribute driver frame =
  let mine = Netsim.Ether.nic_addr driver.nic in
  List.iter
    (fun c ->
      if c.open_ then begin
        let type_match = c.ptype = -1 || c.ptype = frame.Netsim.Ether.etype in
        let addr_match =
          c.promiscuous
          || frame.Netsim.Ether.dst = mine
          || frame.Netsim.Ether.dst = Netsim.Eaddr.broadcast
        in
        if type_match && addr_match then c.rx frame
      end)
    driver.connections

let create eng nic =
  let inbox = Sim.Mbox.create eng in
  let rec driver =
    lazy
      {
        eng;
        nic;
        connections = [];
        next_id = 0;
        inbox;
        kproc =
          Sim.Proc.spawn eng ~name:"etherkproc" (fun () ->
              let rec loop () =
                let frame = Sim.Mbox.recv inbox in
                distribute (Lazy.force driver) frame;
                loop ()
              in
              loop ());
      }
  in
  let driver = Lazy.force driver in
  (* interrupt side: just queue and wake the kernel process *)
  Netsim.Ether.set_rx nic (fun frame -> Sim.Mbox.send inbox frame);
  driver

let engine t = t.eng
let addr t = Netsim.Ether.nic_addr t.nic
let nic t = t.nic

let connect t ptype =
  let c =
    {
      id = t.next_id;
      driver = t;
      ptype;
      promiscuous = false;
      rx = ignore;
      open_ = true;
    }
  in
  t.next_id <- t.next_id + 1;
  t.connections <- t.connections @ [ c ];
  c

let conn_type c = c.ptype
let conn_id c = c.id
let set_conn_type c ptype = c.ptype <- ptype

let refresh_promiscuity t =
  let any = List.exists (fun c -> c.open_ && c.promiscuous) t.connections in
  Netsim.Ether.set_promiscuous t.nic any

let set_promiscuous c b =
  c.promiscuous <- b;
  refresh_promiscuity c.driver

let send c ~dst payload =
  Netsim.Ether.transmit c.driver.nic
    {
      Netsim.Ether.src = Netsim.Ether.nic_addr c.driver.nic;
      dst;
      etype = c.ptype;
      payload;
    }

let set_rx c fn = c.rx <- fn

let close_conn c =
  c.open_ <- false;
  c.driver.connections <- List.filter (fun x -> x.id <> c.id) c.driver.connections;
  refresh_promiscuity c.driver

let conns t = List.filter (fun c -> c.open_) t.connections

let stats_text t =
  let s = Netsim.Ether.nic_stats t.nic in
  Printf.sprintf
    "addr: %s\nin: %d\nout: %d\nin bytes: %d\nout bytes: %d\ncrc errs: %d\noverflows: %d\nconnections: %d\n"
    (Netsim.Eaddr.to_string (Netsim.Ether.nic_addr t.nic))
    s.Netsim.Ether.in_packets s.Netsim.Ether.out_packets
    s.Netsim.Ether.in_bytes s.Netsim.Ether.out_bytes s.Netsim.Ether.crc_errors
    s.Netsim.Ether.overflows
    (List.length t.connections)

let shutdown t = Sim.Proc.kill t.kproc
