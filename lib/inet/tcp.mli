(** TCP — the baseline the paper compares IL against (section 3).

    "TCP has a high overhead and does not preserve delimiters."  This is
    a classic early-90s TCP: three-way handshake, sequenced *byte
    stream* (no message boundaries — reads may return any byte split),
    cumulative acknowledgements, receiver-advertised flow-control
    window, adaptive retransmission timeout (Jacobson/Karn), and
    go-back-N {e blind retransmission}: on timeout every unacked byte is
    resent, and out-of-order segments are dropped — the behaviour whose
    congestion cost motivates IL's query scheme.

    Counters expose retransmitted byte counts so the [congestion] bench
    can compare the two protocols under loss.

    The same module also implements [tcpcc] ({!attach_cc}): an identical
    wire format registered as its own IP protocol, with a congestion
    window (slow start + AIMD), fast retransmit on three duplicate acks,
    NewReno-style fast recovery, and head-of-window retransmission on
    timeout instead of the go-back-N burst.  The baseline proto is
    untouched so the paper's blind-retransmission comparison stands;
    [tcpcc] is the fix for the synchronized-close congestion collapse
    the swarm bench pinned. *)

type stack
type conv
type listener

type config = {
  mss : int;  (** max segment payload (default 1460) *)
  send_window : int;  (** congestion/send window in bytes (default 8 * mss) *)
  recv_window : int;  (** advertised receive buffer (default 64 KiB) *)
  min_rto : float;  (** default 0.1 s *)
  max_rto : float;  (** default 8 s *)
  death_time : float;  (** default 60 s *)
  cpu : Sim.Cpu.t option;
  cost_per_seg : float;
  cost_per_byte : float;
}

val default_config : config

type counters = {
  mutable segs_sent : int;
  mutable segs_rcvd : int;
  mutable bytes_sent : int;
  mutable bytes_rcvd : int;
  mutable retransmits : int;
  mutable retransmitted_bytes : int;
  mutable out_of_order_dropped : int;
  mutable dups_dropped : int;
  mutable resets : int;
  mutable fast_retransmits : int;  (** three-dup-ack retransmissions (cc) *)
  mutable persist_probes : int;  (** zero-window probe segments sent *)
}

val attach : ?config:config -> Ip.stack -> stack
(** The minimal baseline TCP, registered as IP proto 6 under the name
    ["tcp"]. *)

val attach_cc : ?config:config -> Ip.stack -> stack
(** The congestion-controlled variant, registered as IP proto 105 under
    the name ["tcpcc"].  Both can coexist on one IP stack. *)

val proto_name : stack -> string
(** ["tcp"] or ["tcpcc"] — the /net directory name and counter prefix. *)

val engine : stack -> Sim.Engine.t
val counters : stack -> counters
val local_addr : stack -> Ipaddr.t

exception Refused of string
exception Timeout of string
exception Hungup

exception Port_exhausted
(** Every ephemeral local port is in use. *)

val connect : ?lport:int -> stack -> raddr:Ipaddr.t -> rport:int -> conv
(** Active open; blocks until established.
    @raise Port_exhausted if no ephemeral port is free. *)

val announce : ?backlog:int -> stack -> port:int -> listener
(** Passive open.  [backlog] (default 16) bounds calls pending accept —
    half-open handshakes plus established calls waiting in {!listen}'s
    queue; a SYN arriving beyond it is refused with RST, counted in
    {!refused}. *)

val listen : listener -> conv
val close_listener : listener -> unit

val set_backlog : listener -> int -> unit
(** Adjust the accept backlog (clamped to >= 1); the ctl message
    [backlog n] lands here. *)

val backlog : listener -> int
val queued : listener -> int
(** Calls currently occupying backlog slots (half-open + awaiting
    accept). *)

val refused : listener -> int
(** Calls refused because the backlog was full. *)

val refusals : stack -> int
(** Stack-wide backlog refusals, surviving listener teardown. *)

val conv_count : stack -> int
(** Live conversations on this stack. *)

val write : conv -> string -> unit
(** Queue bytes on the stream; blocks while the send buffer is full.
    Boundaries are {e not} preserved. *)

val read : conv -> int -> string
(** Up to [n] bytes; [""] at end of stream. *)

val close : conv -> unit
(** Send FIN; the reader side keeps draining until the peer closes. *)

val conv_id : conv -> int
val local_port : conv -> int
val remote_port : conv -> int
val remote_addr : conv -> Ipaddr.t
val status : conv -> string
val state_name : conv -> string

val conv_counters : conv -> counters
(** Per-conversation counters (the stack's {!counters} aggregate all
    conversations). *)

val conv_stats : conv -> string
(** Per-conversation counters as [name value] lines — the contents of
    the conversation's [stats] file.  On a [tcpcc] stack the congestion
    state ([cwnd]/[ssthresh]/recovery) is appended. *)

val cwnd : conv -> int
(** Current congestion window in bytes (meaningful on [tcpcc]). *)

val ssthresh : conv -> int
val in_recovery : conv -> bool

(** {1 Wire format}

    Exposed for property tests: the codec must round-trip and must
    never raise on truncated or mutated bytes. *)

type segment = {
  s_sport : int;
  s_dport : int;
  s_seq : int;
  s_ack : int;
  s_flags : int;
  s_window : int;
  s_data : string;
}

val header_len : int
(** 20 bytes, option-free. *)

val encode :
  sport:int ->
  dport:int ->
  seq:int ->
  ack:int ->
  flags:int ->
  window:int ->
  string ->
  string

val decode : string -> segment option
(** [None] on short input or checksum failure; never raises. *)
