(** The LANCE-style Ethernet driver (paper section 2.2, Figure 1).

    One driver per interface.  User-level entities open {e connections},
    each configured for an Ethernet packet type: "Writing the string
    [connect 2048] to the [ctl] file sets the packet type to 2048 and
    configures the connection to receive all IP packets sent to the
    machine."  If several connections select the same type, each
    receives a copy; type [-1] selects all packets; promiscuous
    connections see traffic addressed to other stations too.

    Reception follows the paper's interrupt discipline: the medium's
    delivery callback (interrupt context) only queues the frame; a
    kernel process distributes copies to connections. *)

type t
type conn

val create : Sim.Engine.t -> Netsim.Ether.nic -> t
(** Start the driver and its kernel process. *)

val engine : t -> Sim.Engine.t
val addr : t -> Netsim.Eaddr.t

val nic : t -> Netsim.Ether.nic
(** The underlying station, e.g. to drive its per-station fault
    schedule ({!Netsim.Ether.nic_faults}) and partition just this
    host. *)

val connect : t -> int -> conn
(** Allocate a connection for the given packet type (-1 = all). *)

val conn_type : conn -> int
val conn_id : conn -> int

val set_conn_type : conn -> int -> unit
(** What writing [connect n] to an open connection's ctl file does. *)

val set_promiscuous : conn -> bool -> unit
(** Also flips the interface itself into promiscuous mode while at
    least one connection wants it. *)

val send : conn -> dst:Netsim.Eaddr.t -> string -> unit
(** Transmit a frame: "Writing the file queues a packet for
    transmission after appending a packet header containing the source
    address and packet type." *)

val set_rx : conn -> (Netsim.Ether.frame -> unit) -> unit
(** Frame consumer, invoked from the driver's kernel process. *)

val close_conn : conn -> unit

val conns : t -> conn list
(** Open connections, lowest-numbered first. *)

val stats_text : t -> string
(** The ASCII contents of the [stats] file: interface address,
    input/output counts, error statistics. *)

val shutdown : t -> unit
(** Kill the kernel process (tests). *)
