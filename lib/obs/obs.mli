(** Kernel-wide observability: structured tracing, metrics, exporters.

    The paper's authors debugged and measured their networks through
    the file system — [cat /net/tcp/2/status] — because protocol state
    was always on display.  This module is the substrate that makes the
    same possible here: a zero-dependency trace core that every layer
    (scheduler, blocks, streams, media, protocols, 9P) emits typed
    events into, plus named counters and latency histograms.

    Design rules:

    - {e Deterministic}: a trace never reads the wall clock.  Timestamps
      come from a [clock] callback installed by the simulation engine
      ({!Sim.Engine.attach_obs}), so two runs with the same seed produce
      byte-identical trace files.
    - {e Zero-cost when disabled}: instrumented code guards every
      emission with a single [match engine-sink with None -> ()] — no
      event is allocated unless a sink is installed.
    - {e Bounded}: events land in a ring buffer; old events are
      overwritten, never grown without bound.  [dropped] counts the
      overwritten ones. *)

module Event : sig
  type dir = Up | Down
  (** Direction through a stream: [Up] toward the process, [Down]
      toward the device. *)

  type proc_phase = Spawn | Block | Wake | Exit | Crash

  type packet_op =
    | Tx
    | Rx
    | Drop of string  (** reason, e.g. ["crc"], ["overflow"] *)

  type t =
    | Proc of { name : string; phase : proc_phase }
        (** scheduler: process lifecycle and blocking *)
    | Cpu of { queued : float; busy : float }
        (** a host CPU occupancy: time spent waiting behind earlier
            work, then time occupied *)
    | Blk of { op : [ `Alloc | `Free ]; bytes : int }
        (** a block entering / leaving a stream queue *)
    | Stream of { dev : string; dir : dir; bytes : int; delim : bool }
        (** a block through a stream's put chain *)
    | Flow of { dev : string; stalled : bool; qbytes : int }
        (** flow control: a writer blocking on ([stalled]) or being
            released from ([not stalled]) a full queue *)
    | Packet of {
        medium : string;
        op : packet_op;
        src : string;
        dst : string;
        proto : string;  (** "ip", "arp", "urp", ... *)
        bytes : int;
      }  (** wire events on a simulated medium *)
    | Proto_state of { proto : string; conv : int; from_ : string; to_ : string }
        (** a protocol conversation changing state *)
    | Fault of {
        medium : string;
        kind : string;  (** ["drop"], ["dup"], ["reorder"], ["partition"] *)
        reason : string;  (** schedule detail, e.g. ["burst"], ["filter"] *)
        src : string;
        dst : string;
        proto : string;
        bytes : int;
      }
        (** an injected fault on a simulated medium — every drop,
            duplicate, reorder, or partition discard that the
            fault-injection layer performs funnels through exactly one
            of these, so taps can attribute adverse events (and counters
            [fault.drop] etc. total them) *)
    | Retransmit of { proto : string; conv : int; id : int; bytes : int }
    | Checksum_err of { proto : string }
    | Fcall of { role : [ `T | `R ]; tag : int; msg : string; latency : float }
        (** a 9P message; [latency] is request-to-reply seconds, [0.]
            on the request side *)
    | Span_begin of {
        name : string;
        layer : string;
        trace : int;
        span : int;
        parent : int;  (** 0 for a root span *)
        scope : int;  (** the process (pid) whose ambient stack holds it *)
      }  (** a causal span opening — see {!Span} *)
    | Span_end of {
        name : string;
        layer : string;
        trace : int;
        span : int;
        scope : int;
        orphan : bool;
            (** [true] when the span was force-closed: left open at
                engine drain (its operation never completed — the
                signature of a lost wakeup) or closed implicitly by a
                parent exiting first *)
      }
    | Note of { sub : string; msg : string }
        (** free-form, shows up in /net/log *)

  val label : t -> string
  (** Short dotted name, e.g. ["pkt.tx"], ["proto.state"]. *)

  val render : t -> string
  (** One human-readable line (no timestamp). *)

  val args : t -> (string * string) list
  (** Key/value detail for structured exporters. *)
end

module Metrics : sig
  type t
  (** Named monotonic counters plus log-bucketed latency histograms. *)

  val create : unit -> t
  val bump : t -> string -> int -> unit

  val observe : t -> string -> float -> unit
  (** Record one sample (seconds) into the named histogram. *)

  val counter : t -> string -> int
  (** 0 when never bumped. *)

  val counters : t -> (string * int) list
  (** Sorted by name. *)

  val histograms : t -> (string * (int * float * float)) list
  (** name -> (count, sum, max), sorted by name. *)

  val quantile : t -> string -> float -> float option
  (** [quantile t name q] for [q] in [0..1] — the upper bound (seconds)
      of the log-scale bucket holding the rank-[ceil(q*count)] sample.
      Buckets double from 1 microsecond, so the answer is deterministic
      and at most 2x pessimistic.  [None] for an empty histogram. *)

  val clear : t -> unit
end

module Prof : sig
  (** Wall-clock engine profiler.  {!Sim.Engine.attach_prof} brackets
      every event dispatch with {!begin_event}/{!end_event}, attributing
      real elapsed time and minor-heap allocation to the event's handler
      class ("il", "tcp", "9p", "app", ...).  The clock is injected
      because this library links no unix — pass [Unix.gettimeofday].
      Unlike everything else in [Obs], reports are {e not}
      deterministic: they read the machine's clock by design. *)

  type t

  val create : clock:(unit -> float) -> unit -> t
  val begin_event : t -> unit

  val end_event : t -> string -> unit
  (** Close the open measurement and attribute it to the label. *)

  val reset : t -> unit

  type layer = {
    l_label : string;
    l_events : int;
    l_share : float;
        (** of total dispatch time; falls back to the event-count share
            when the clock was too coarse to measure any time, so
            shares always sum to ~1.0 once any event ran *)
    l_time_s : float;
    l_words_per_event : float;  (** minor-heap words per event *)
  }

  type report = {
    r_events : int;
    r_wall_s : float;  (** first dispatch begin to last dispatch end *)
    r_dispatch_s : float;  (** sum of per-event deltas *)
    r_events_per_sec : float;  (** events / wall_s *)
    r_minor_words : float;
    r_minor_words_per_event : float;
    r_layers : layer list;  (** descending by share *)
  }

  val report : t -> report

  val report_json : report -> string
  (** One-line JSON object — the [perf] member of the bench files. *)

  val to_json : t -> string
  (** [report_json (report t)]. *)
end

module Series : sig
  (** A bounded ring of periodic counter snapshots — the data behind
      [/net/metrics].  Sampling is driven by the caller (a virtual-time
      ticker), so the series is as deterministic as the counters. *)

  type t

  val create : ?capacity:int -> Metrics.t -> t
  (** [capacity] (default 128) bounds the ring of samples. *)

  val sample : t -> float -> unit
  (** Snapshot every counter at virtual time [ts]; the oldest sample
      falls off when the ring is full. *)

  val count : t -> int

  val samples : t -> (float * (string * int) list) list
  (** Oldest first. *)

  val clear : t -> unit

  val render : ?live_ts:float -> t -> string
  (** Prometheus-style exposition, one [name value ts] line per counter
      per sample, oldest sample first.  With [live_ts] and no stored
      samples, renders one unsaved snapshot at that time instead, so a
      bare read is never empty while counters exist. *)
end

module Trace : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 65536) bounds the event ring. *)

  val set_clock : t -> (unit -> float) -> unit
  (** Install the virtual-time source.  {!Sim.Engine.attach_obs} does
      this; traces must never read the wall clock. *)

  val set_scope : t -> (unit -> int) -> unit
  (** Install the ambient span-scope source — "which process is
      running" (0 outside any).  {!Sim.Engine.attach_obs} installs the
      current pid, giving each simulated process its own span stack so
      concurrent operations cannot corrupt each other's nesting. *)

  val now : t -> float

  val emit : t -> Event.t -> unit
  (** Stamp with the clock, append to the ring, feed the taps. *)

  val note : t -> sub:string -> string -> unit
  (** [emit] of an {!Event.Note}. *)

  val bump : t -> string -> int -> unit
  (** Convenience for [Metrics.bump (metrics t)]. *)

  val observe : t -> string -> float -> unit
  val metrics : t -> Metrics.t

  val add_tap : t -> (float -> Event.t -> unit) -> unit
  (** Live subscriber, called synchronously on every emit — how the
      snoopy tap and /net/log follow a running world. *)

  val events : t -> (float * int * Event.t) list
  (** (time, sequence, event), oldest first; at most [capacity]. *)

  val seq : t -> int
  (** Events emitted over the trace's lifetime. *)

  val dropped : t -> int
  (** Events overwritten by ring wrap-around. *)

  val clear : t -> unit
  (** Empty the ring and the metrics (taps and clock stay). *)

  val render : ?limit:int -> t -> string
  (** Newest [limit] (default 100) events as text lines, oldest first —
      the contents of [/net/log]. *)

  val to_chrome_json : t -> string
  (** The full ring as a Chrome [trace_event] JSON document (load in
      chrome://tracing or Perfetto).  Instant events ride on tid 1;
      spans become nested B/E duration pairs on a per-scope tid.
      Deterministic: depends only on the recorded events. *)

  val counters_json : t -> string
  (** Flat JSON object of all counters and histogram summaries
      (count / sum / max plus p50/p95/p99 quantiles, milliseconds). *)
end

module Span : sig
  (** Causal span tracing: the "where did this dial's 900 virtual ms
      go" half of observability.  A span is an interval with a name, a
      layer, and a parent; parents propagate ambiently through the
      per-process stack (installed by {!Trace.set_scope}), so one
      [dial] yields a single trace covering CS lookup, the transport
      handshake, the 9P attach and the cfs fills without threading a
      context argument through every call.

      Ids are small serials assigned in emission order under the
      engine's deterministic schedule, so same-seed runs produce
      byte-identical span ids.  A handle is an [int] and "no span" is
      [0]: disabled-sink call sites ([match Engine.obs with None -> 0])
      allocate nothing. *)

  type h = int
  (** A span handle; [none] when no sink is attached. *)

  val none : h

  val enter : Trace.t -> ?layer:string -> string -> h
  (** Open a span under the current scope's innermost open span (a new
      trace when the stack is empty) and emit {!Event.Span_begin}.
      [layer] defaults to ["app"]. *)

  val exit : Trace.t -> h -> unit
  (** Close the span, emitting {!Event.Span_end}.  Children still open
      above it are force-closed first (marked orphan) so the bracketing
      stays well-nested.  [exit tr none] and double exits are no-ops. *)

  val current : Trace.t -> h
  (** The innermost open span of the current scope, or [none]. *)

  val drain : Trace.t -> unit
  (** Force-close every open span as an orphan — {!Sim.Engine.run}
      calls this when the event queue empties, so an operation blocked
      forever still closes its spans and names itself in the trace. *)

  val open_count : Trace.t -> int

  val opens : Trace.t -> (int * string * string * int * int) list
  (** Currently open spans as [(span, layer, name, trace, scope)],
      oldest first. *)

  val tree : ?trace:int -> Trace.t -> string
  (** Render the recorded span begins as an indented tree (optionally
      only the given trace id) — the golden-file shape for nesting
      tests. *)
end

module Snoopy : sig
  (** Promiscuous-tap frame rendering, after Plan 9's [snoopy]: parses
      raw Ethernet payloads (ARP, IP carrying IL / UDP / TCP) straight
      from the wire bytes and prints one line per frame.  Pure string
      parsing — usable on any captured frame without the protocol
      stacks. *)

  val render_frame :
    time:float -> src:string -> dst:string -> etype:int -> string -> string
  (** [render_frame ~time ~src ~dst ~etype payload] where [src]/[dst]
      are 12-hex-digit Ethernet addresses.  E.g.
      {v
      0.000125 ether(080069020001 > ffffffffffff) arp who-has 10.0.0.2 tell 10.0.0.1
      0.004210 ether(080069020001 > 080069020002) ip(10.0.0.1 > 10.0.0.2) il data 5012>9999 id 7 ack 3 len 1000
      v} *)

  val frame_proto : etype:int -> string -> string
  (** The innermost protocol name the renderer identified: ["arp"],
      ["il"], ["udp"], ["tcp"], ["ip"], or ["ether"]. *)

  val render_ninep : string -> string option
  (** Decode one 9P (Styx) message from raw bytes, e.g.
      ["Tread tag=1 fid=2 offset=0 count=8192"].  [None] unless the
      bytes are a complete, internally consistent message — transport
      payloads that merely resemble 9P are rejected by the exact-length
      check.  The IL and TCP renderers call this on their payloads, so
      snooped cfs/exportfs traffic prints decoded fcalls. *)
end
