(** Kernel-wide observability: structured tracing, metrics, exporters.

    The paper's authors debugged and measured their networks through
    the file system — [cat /net/tcp/2/status] — because protocol state
    was always on display.  This module is the substrate that makes the
    same possible here: a zero-dependency trace core that every layer
    (scheduler, blocks, streams, media, protocols, 9P) emits typed
    events into, plus named counters and latency histograms.

    Design rules:

    - {e Deterministic}: a trace never reads the wall clock.  Timestamps
      come from a [clock] callback installed by the simulation engine
      ({!Sim.Engine.attach_obs}), so two runs with the same seed produce
      byte-identical trace files.
    - {e Zero-cost when disabled}: instrumented code guards every
      emission with a single [match engine-sink with None -> ()] — no
      event is allocated unless a sink is installed.
    - {e Bounded}: events land in a ring buffer; old events are
      overwritten, never grown without bound.  [dropped] counts the
      overwritten ones. *)

module Event : sig
  type dir = Up | Down
  (** Direction through a stream: [Up] toward the process, [Down]
      toward the device. *)

  type proc_phase = Spawn | Block | Wake | Exit | Crash

  type packet_op =
    | Tx
    | Rx
    | Drop of string  (** reason, e.g. ["crc"], ["overflow"] *)

  type t =
    | Proc of { name : string; phase : proc_phase }
        (** scheduler: process lifecycle and blocking *)
    | Cpu of { queued : float; busy : float }
        (** a host CPU occupancy: time spent waiting behind earlier
            work, then time occupied *)
    | Blk of { op : [ `Alloc | `Free ]; bytes : int }
        (** a block entering / leaving a stream queue *)
    | Stream of { dev : string; dir : dir; bytes : int; delim : bool }
        (** a block through a stream's put chain *)
    | Flow of { dev : string; stalled : bool; qbytes : int }
        (** flow control: a writer blocking on ([stalled]) or being
            released from ([not stalled]) a full queue *)
    | Packet of {
        medium : string;
        op : packet_op;
        src : string;
        dst : string;
        proto : string;  (** "ip", "arp", "urp", ... *)
        bytes : int;
      }  (** wire events on a simulated medium *)
    | Proto_state of { proto : string; conv : int; from_ : string; to_ : string }
        (** a protocol conversation changing state *)
    | Fault of {
        medium : string;
        kind : string;  (** ["drop"], ["dup"], ["reorder"], ["partition"] *)
        reason : string;  (** schedule detail, e.g. ["burst"], ["filter"] *)
        src : string;
        dst : string;
        proto : string;
        bytes : int;
      }
        (** an injected fault on a simulated medium — every drop,
            duplicate, reorder, or partition discard that the
            fault-injection layer performs funnels through exactly one
            of these, so taps can attribute adverse events (and counters
            [fault.drop] etc. total them) *)
    | Retransmit of { proto : string; conv : int; id : int; bytes : int }
    | Checksum_err of { proto : string }
    | Fcall of { role : [ `T | `R ]; tag : int; msg : string; latency : float }
        (** a 9P message; [latency] is request-to-reply seconds, [0.]
            on the request side *)
    | Note of { sub : string; msg : string }
        (** free-form, shows up in /net/log *)

  val label : t -> string
  (** Short dotted name, e.g. ["pkt.tx"], ["proto.state"]. *)

  val render : t -> string
  (** One human-readable line (no timestamp). *)

  val args : t -> (string * string) list
  (** Key/value detail for structured exporters. *)
end

module Metrics : sig
  type t
  (** Named monotonic counters plus log-bucketed latency histograms. *)

  val create : unit -> t
  val bump : t -> string -> int -> unit

  val observe : t -> string -> float -> unit
  (** Record one sample (seconds) into the named histogram. *)

  val counter : t -> string -> int
  (** 0 when never bumped. *)

  val counters : t -> (string * int) list
  (** Sorted by name. *)

  val histograms : t -> (string * (int * float * float)) list
  (** name -> (count, sum, max), sorted by name. *)

  val clear : t -> unit
end

module Trace : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 65536) bounds the event ring. *)

  val set_clock : t -> (unit -> float) -> unit
  (** Install the virtual-time source.  {!Sim.Engine.attach_obs} does
      this; traces must never read the wall clock. *)

  val now : t -> float

  val emit : t -> Event.t -> unit
  (** Stamp with the clock, append to the ring, feed the taps. *)

  val note : t -> sub:string -> string -> unit
  (** [emit] of an {!Event.Note}. *)

  val bump : t -> string -> int -> unit
  (** Convenience for [Metrics.bump (metrics t)]. *)

  val observe : t -> string -> float -> unit
  val metrics : t -> Metrics.t

  val add_tap : t -> (float -> Event.t -> unit) -> unit
  (** Live subscriber, called synchronously on every emit — how the
      snoopy tap and /net/log follow a running world. *)

  val events : t -> (float * int * Event.t) list
  (** (time, sequence, event), oldest first; at most [capacity]. *)

  val seq : t -> int
  (** Events emitted over the trace's lifetime. *)

  val dropped : t -> int
  (** Events overwritten by ring wrap-around. *)

  val clear : t -> unit
  (** Empty the ring and the metrics (taps and clock stay). *)

  val render : ?limit:int -> t -> string
  (** Newest [limit] (default 100) events as text lines, oldest first —
      the contents of [/net/log]. *)

  val to_chrome_json : t -> string
  (** The full ring as a Chrome [trace_event] JSON document (load in
      chrome://tracing or Perfetto).  Deterministic: depends only on
      the recorded events. *)

  val counters_json : t -> string
  (** Flat JSON object of all counters and histogram summaries. *)
end

module Snoopy : sig
  (** Promiscuous-tap frame rendering, after Plan 9's [snoopy]: parses
      raw Ethernet payloads (ARP, IP carrying IL / UDP / TCP) straight
      from the wire bytes and prints one line per frame.  Pure string
      parsing — usable on any captured frame without the protocol
      stacks. *)

  val render_frame :
    time:float -> src:string -> dst:string -> etype:int -> string -> string
  (** [render_frame ~time ~src ~dst ~etype payload] where [src]/[dst]
      are 12-hex-digit Ethernet addresses.  E.g.
      {v
      0.000125 ether(080069020001 > ffffffffffff) arp who-has 10.0.0.2 tell 10.0.0.1
      0.004210 ether(080069020001 > 080069020002) ip(10.0.0.1 > 10.0.0.2) il data 5012>9999 id 7 ack 3 len 1000
      v} *)

  val frame_proto : etype:int -> string -> string
  (** The innermost protocol name the renderer identified: ["arp"],
      ["il"], ["udp"], ["tcp"], ["ip"], or ["ether"]. *)
end
