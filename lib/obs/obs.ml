(* Zero-dependency observability core.  See obs.mli for the contract:
   deterministic (clock is injected), bounded (ring buffer), and free
   when no sink is installed (callers guard emission themselves). *)

module Event = struct
  type dir = Up | Down
  type proc_phase = Spawn | Block | Wake | Exit | Crash
  type packet_op = Tx | Rx | Drop of string

  type t =
    | Proc of { name : string; phase : proc_phase }
    | Cpu of { queued : float; busy : float }
    | Blk of { op : [ `Alloc | `Free ]; bytes : int }
    | Stream of { dev : string; dir : dir; bytes : int; delim : bool }
    | Flow of { dev : string; stalled : bool; qbytes : int }
    | Packet of {
        medium : string;
        op : packet_op;
        src : string;
        dst : string;
        proto : string;
        bytes : int;
      }
    | Proto_state of { proto : string; conv : int; from_ : string; to_ : string }
    | Fault of {
        medium : string;
        kind : string;
        reason : string;
        src : string;
        dst : string;
        proto : string;
        bytes : int;
      }
    | Retransmit of { proto : string; conv : int; id : int; bytes : int }
    | Checksum_err of { proto : string }
    | Fcall of { role : [ `T | `R ]; tag : int; msg : string; latency : float }
    | Span_begin of {
        name : string;
        layer : string;
        trace : int;
        span : int;
        parent : int;
        scope : int;
      }
    | Span_end of {
        name : string;
        layer : string;
        trace : int;
        span : int;
        scope : int;
        orphan : bool;
      }
    | Note of { sub : string; msg : string }

  let phase_name = function
    | Spawn -> "spawn"
    | Block -> "block"
    | Wake -> "wake"
    | Exit -> "exit"
    | Crash -> "crash"

  let label = function
    | Proc { phase; _ } -> "proc." ^ phase_name phase
    | Cpu _ -> "cpu.occupy"
    | Blk { op = `Alloc; _ } -> "blk.alloc"
    | Blk { op = `Free; _ } -> "blk.free"
    | Stream { dir = Up; _ } -> "stream.up"
    | Stream { dir = Down; _ } -> "stream.down"
    | Flow { stalled = true; _ } -> "flow.stall"
    | Flow { stalled = false; _ } -> "flow.resume"
    | Packet { op = Tx; _ } -> "pkt.tx"
    | Packet { op = Rx; _ } -> "pkt.rx"
    | Packet { op = Drop _; _ } -> "pkt.drop"
    | Proto_state _ -> "proto.state"
    | Fault { kind; _ } -> "fault." ^ kind
    | Retransmit _ -> "proto.retransmit"
    | Checksum_err _ -> "proto.badsum"
    | Fcall { role = `T; _ } -> "9p.t"
    | Fcall { role = `R; _ } -> "9p.r"
    | Span_begin _ -> "span.begin"
    | Span_end _ -> "span.end"
    | Note _ -> "note"

  let args = function
    | Proc { name; _ } -> [ ("proc", name) ]
    | Cpu { queued; busy } ->
      [ ("queued_us", Printf.sprintf "%.1f" (queued *. 1e6));
        ("busy_us", Printf.sprintf "%.1f" (busy *. 1e6)) ]
    | Blk { bytes; _ } -> [ ("bytes", string_of_int bytes) ]
    | Stream { dev; bytes; delim; _ } ->
      [ ("dev", dev); ("bytes", string_of_int bytes);
        ("delim", string_of_bool delim) ]
    | Flow { dev; qbytes; _ } ->
      [ ("dev", dev); ("qbytes", string_of_int qbytes) ]
    | Packet { medium; op; src; dst; proto; bytes } ->
      [ ("medium", medium); ("src", src); ("dst", dst); ("proto", proto);
        ("bytes", string_of_int bytes) ]
      @ (match op with Drop why -> [ ("why", why) ] | Tx | Rx -> [])
    | Proto_state { proto; conv; from_; to_ } ->
      [ ("proto", proto); ("conv", string_of_int conv); ("from", from_);
        ("to", to_) ]
    | Fault { medium; kind; reason; src; dst; proto; bytes } ->
      [ ("medium", medium); ("kind", kind); ("reason", reason); ("src", src);
        ("dst", dst); ("proto", proto); ("bytes", string_of_int bytes) ]
    | Retransmit { proto; conv; id; bytes } ->
      [ ("proto", proto); ("conv", string_of_int conv);
        ("id", string_of_int id); ("bytes", string_of_int bytes) ]
    | Checksum_err { proto } -> [ ("proto", proto) ]
    | Fcall { tag; msg; latency; _ } ->
      [ ("tag", string_of_int tag); ("msg", msg);
        ("latency_us", Printf.sprintf "%.1f" (latency *. 1e6)) ]
    | Span_begin { name; layer; trace; span; parent; scope } ->
      [ ("name", name); ("layer", layer); ("trace", string_of_int trace);
        ("span", string_of_int span); ("parent", string_of_int parent);
        ("scope", string_of_int scope) ]
    | Span_end { name; layer; trace; span; scope; orphan } ->
      [ ("name", name); ("layer", layer); ("trace", string_of_int trace);
        ("span", string_of_int span); ("scope", string_of_int scope);
        ("orphan", string_of_bool orphan) ]
    | Note { sub; msg } -> [ ("sub", sub); ("msg", msg) ]

  let render ev =
    match ev with
    | Note { sub; msg } -> Printf.sprintf "%s: %s" sub msg
    | Span_begin { name; layer; trace; span; parent; _ } ->
      Printf.sprintf "span> [%s] %s trace=%d span=%d parent=%d" layer name
        trace span parent
    | Span_end { name; layer; trace; span; orphan; _ } ->
      Printf.sprintf "span< [%s] %s trace=%d span=%d%s" layer name trace span
        (if orphan then " (orphan)" else "")
    | Proto_state { proto; conv; from_; to_ } ->
      Printf.sprintf "%s/%d %s -> %s" proto conv from_ to_
    | Retransmit { proto; conv; id; bytes } ->
      Printf.sprintf "%s/%d retransmit id %d (%d bytes)" proto conv id bytes
    | Fault { medium; kind; reason; src; dst; proto; bytes } ->
      Printf.sprintf "%s fault %s[%s] %s>%s %s %d" medium kind reason src dst
        proto bytes
    | Packet { medium; op; src; dst; proto; bytes } ->
      Printf.sprintf "%s %s %s>%s %s %d"
        medium
        (match op with Tx -> "tx" | Rx -> "rx" | Drop why -> "drop[" ^ why ^ "]")
        src dst proto bytes
    | ev ->
      String.concat " "
        (label ev
        :: List.map (fun (k, v) -> k ^ "=" ^ v) (args ev))
end

module Metrics = struct
  (* Histograms are log-bucketed: bucket [i] counts samples whose value
     (seconds) is <= 1e-6 * 2^i, with the last bucket catching the rest.
     Quantiles read as the upper bound of the bucket holding the rank,
     so they are deterministic and at most a factor of 2 pessimistic. *)
  let nbuckets = 40

  let bucket_bound i = 1e-6 *. Float.of_int (1 lsl i)

  type hist = {
    mutable count : int;
    mutable sum : float;
    mutable max_ : float;
    buckets : int array;
  }

  type t = {
    counters : (string, int ref) Hashtbl.t;
    hists : (string, hist) Hashtbl.t;
  }

  let create () = { counters = Hashtbl.create 31; hists = Hashtbl.create 7 }

  let bump t name n =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.counters name (ref n)

  let bucket_of v =
    let rec go i ub =
      if v <= ub || i >= nbuckets - 1 then i else go (i + 1) (ub *. 2.)
    in
    go 0 1e-6

  let observe t name v =
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
        let h =
          { count = 0; sum = 0.; max_ = 0.; buckets = Array.make nbuckets 0 }
        in
        Hashtbl.replace t.hists name h;
        h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    if v > h.max_ then h.max_ <- v

  let quantile t name q =
    match Hashtbl.find_opt t.hists name with
    | None -> None
    | Some h when h.count = 0 -> None
    | Some h ->
      let q = Float.max 0. (Float.min 1. q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
      let rec find i acc =
        if i >= nbuckets - 1 then Some (bucket_bound (nbuckets - 1))
        else
          let acc = acc + h.buckets.(i) in
          if acc >= rank then Some (bucket_bound i) else find (i + 1) acc
      in
      find 0 0

  let counter t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let counters t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
    |> List.sort compare

  let histograms t =
    Hashtbl.fold (fun k h acc -> (k, (h.count, h.sum, h.max_)) :: acc) t.hists []
    |> List.sort compare

  let clear t =
    Hashtbl.reset t.counters;
    Hashtbl.reset t.hists
end

module Prof = struct
  (* Wall-clock engine profiler.  The clock is injected (the bench
     passes Unix.gettimeofday) because this library links no unix;
     minor-heap allocation comes from Gc.minor_words.  Attribution is
     per heap-entry label, so each dispatched event lands in exactly one
     handler class ("il", "tcp", "9p", "app", ...).  The measurement
     itself boxes a few floats per event; that constant overhead is
     attributed to the event being measured. *)
  type acc = {
    mutable a_events : int;
    mutable a_time : float;
    mutable a_words : float;
  }

  type t = {
    clock : unit -> float;
    layers : (string, acc) Hashtbl.t;
    mutable t0 : float;
    mutable w0 : float;
    mutable first : float;  (* wall time of the first dispatch, -1 if none *)
    mutable last : float;
    mutable events : int;
    mutable dispatch : float;  (* sum of per-event wall-clock deltas *)
    mutable words : float;  (* sum of per-event minor words *)
  }

  let create ~clock () =
    {
      clock;
      layers = Hashtbl.create 17;
      t0 = 0.;
      w0 = 0.;
      first = -1.;
      last = -1.;
      events = 0;
      dispatch = 0.;
      words = 0.;
    }

  let reset p =
    Hashtbl.reset p.layers;
    p.first <- -1.;
    p.last <- -1.;
    p.events <- 0;
    p.dispatch <- 0.;
    p.words <- 0.

  let begin_event p =
    let t = p.clock () in
    if p.first < 0. then p.first <- t;
    p.t0 <- t;
    p.w0 <- Gc.minor_words ()

  let end_event p label =
    let t1 = p.clock () in
    let dw = Gc.minor_words () -. p.w0 in
    let dt = t1 -. p.t0 in
    p.last <- t1;
    p.events <- p.events + 1;
    p.dispatch <- p.dispatch +. dt;
    p.words <- p.words +. dw;
    let a =
      match Hashtbl.find_opt p.layers label with
      | Some a -> a
      | None ->
        let a = { a_events = 0; a_time = 0.; a_words = 0. } in
        Hashtbl.replace p.layers label a;
        a
    in
    a.a_events <- a.a_events + 1;
    a.a_time <- a.a_time +. dt;
    a.a_words <- a.a_words +. dw

  type layer = {
    l_label : string;
    l_events : int;
    l_share : float;  (* of total dispatch time; event share if time ~ 0 *)
    l_time_s : float;
    l_words_per_event : float;
  }

  type report = {
    r_events : int;
    r_wall_s : float;  (* first dispatch begin to last dispatch end *)
    r_dispatch_s : float;
    r_events_per_sec : float;
    r_minor_words : float;
    r_minor_words_per_event : float;
    r_layers : layer list;  (* descending by share *)
  }

  let report p =
    let wall = if p.first < 0. then 0. else p.last -. p.first in
    let fev = float_of_int p.events in
    (* a clock too coarse to see any dispatch falls back to event-count
       shares, so shares always sum to ~1.0 when any event ran *)
    let use_counts = p.dispatch <= 0. in
    let layers =
      Hashtbl.fold (fun k a acc -> (k, a) :: acc) p.layers []
      |> List.map (fun (k, a) ->
             {
               l_label = k;
               l_events = a.a_events;
               l_share =
                 (if use_counts then
                    if p.events = 0 then 0. else float_of_int a.a_events /. fev
                  else a.a_time /. p.dispatch);
               l_time_s = a.a_time;
               l_words_per_event =
                 (if a.a_events = 0 then 0.
                  else a.a_words /. float_of_int a.a_events);
             })
      |> List.sort (fun x y ->
             match compare y.l_share x.l_share with
             | 0 -> compare x.l_label y.l_label
             | c -> c)
    in
    {
      r_events = p.events;
      r_wall_s = wall;
      r_dispatch_s = p.dispatch;
      r_events_per_sec = (if wall > 0. then fev /. wall else 0.);
      r_minor_words = p.words;
      r_minor_words_per_event = (if p.events = 0 then 0. else p.words /. fev);
      r_layers = layers;
    }

  let report_json r =
    let b = Buffer.create 512 in
    Printf.bprintf b
      "{\"events\": %d, \"wall_s\": %.6f, \"dispatch_s\": %.6f, \
       \"events_per_sec\": %.1f, \"minor_words\": %.0f, \
       \"minor_words_per_event\": %.1f, \"share_sum\": %.4f, \"layers\": ["
      r.r_events r.r_wall_s r.r_dispatch_s r.r_events_per_sec r.r_minor_words
      r.r_minor_words_per_event
      (List.fold_left (fun s l -> s +. l.l_share) 0. r.r_layers);
    List.iteri
      (fun i l ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b
          "{\"layer\": \"%s\", \"events\": %d, \"share\": %.4f, \
           \"words_per_event\": %.1f}"
          l.l_label l.l_events l.l_share l.l_words_per_event)
      r.r_layers;
    Buffer.add_string b "]}";
    Buffer.contents b

  let to_json p = report_json (report p)
end

module Series = struct
  (* A bounded ring of periodic counter snapshots — the data behind
     /net/metrics.  Purely virtual-time: [ts] comes from the caller. *)
  type t = {
    cap : int;
    src : Metrics.t;
    mutable samples : (float * (string * int) list) list;  (* newest first *)
  }

  let create ?(capacity = 128) src =
    { cap = max 1 capacity; src; samples = [] }

  let sample t ts =
    let rec take n = function
      | [] -> []
      | x :: r -> if n <= 0 then [] else x :: take (n - 1) r
    in
    t.samples <- take t.cap ((ts, Metrics.counters t.src) :: t.samples)

  let count t = List.length t.samples
  let samples t = List.rev t.samples
  let clear t = t.samples <- []

  let render ?live_ts t =
    let buf = Buffer.create 1024 in
    let one (ts, vals) =
      List.iter (fun (k, v) -> Printf.bprintf buf "%s %d %.6f\n" k v ts) vals
    in
    List.iter one (List.rev t.samples);
    (match live_ts with
    | Some ts when t.samples = [] -> one (ts, Metrics.counters t.src)
    | _ -> ());
    Buffer.contents buf
end

module Trace = struct
  type entry = { e_t : float; e_seq : int; e_ev : Event.t }

  (* an open span: pushed by [span_enter], popped by [span_exit] or
     closed as an orphan at engine drain *)
  type frame = {
    fr_span : int;
    fr_trace : int;
    fr_parent : int;
    fr_scope : int;
    fr_name : string;
    fr_layer : string;
  }

  type t = {
    capacity : int;
    mutable ring : entry option array;
    mutable next : int;  (* ring slot for the next event *)
    mutable nseq : int;  (* events ever emitted *)
    mutable clock : unit -> float;
    mutable scope_fn : unit -> int;
        (* ambient span scope: the engine installs "current proc pid,
           else 0", so each simulated process carries its own stack *)
    metrics : Metrics.t;
    mutable taps : (float -> Event.t -> unit) list;
    mutable next_span : int;
    mutable next_trace : int;
    open_spans : (int, frame) Hashtbl.t;  (* span id -> frame *)
    stacks : (int, int list) Hashtbl.t;  (* scope -> open spans, top first *)
  }

  let create ?(capacity = 65536) () =
    {
      capacity = max 16 capacity;
      ring = Array.make (max 16 capacity) None;
      next = 0;
      nseq = 0;
      clock = (fun () -> 0.);
      scope_fn = (fun () -> 0);
      metrics = Metrics.create ();
      taps = [];
      next_span = 0;
      next_trace = 0;
      open_spans = Hashtbl.create 31;
      stacks = Hashtbl.create 7;
    }

  let set_clock t fn = t.clock <- fn
  let set_scope t fn = t.scope_fn <- fn
  let now t = t.clock ()
  let metrics t = t.metrics
  let bump t name n = Metrics.bump t.metrics name n
  let observe t name v = Metrics.observe t.metrics name v
  let add_tap t fn = t.taps <- t.taps @ [ fn ]
  let seq t = t.nseq
  let dropped t = max 0 (t.nseq - t.capacity)

  let emit t ev =
    let time = t.clock () in
    t.ring.(t.next) <- Some { e_t = time; e_seq = t.nseq; e_ev = ev };
    t.next <- (t.next + 1) mod t.capacity;
    t.nseq <- t.nseq + 1;
    List.iter (fun tap -> tap time ev) t.taps

  let note t ~sub msg = emit t (Event.Note { sub; msg })

  (* ---- causal spans ---- *)

  let span_enter t ?(layer = "app") name =
    let scope = t.scope_fn () in
    t.next_span <- t.next_span + 1;
    let span = t.next_span in
    let stack =
      match Hashtbl.find_opt t.stacks scope with Some s -> s | None -> []
    in
    let parent, trace =
      match stack with
      | p :: _ when Hashtbl.mem t.open_spans p ->
        (p, (Hashtbl.find t.open_spans p).fr_trace)
      | _ ->
        t.next_trace <- t.next_trace + 1;
        (0, t.next_trace)
    in
    Hashtbl.replace t.open_spans span
      { fr_span = span; fr_trace = trace; fr_parent = parent; fr_scope = scope;
        fr_name = name; fr_layer = layer };
    Hashtbl.replace t.stacks scope (span :: stack);
    emit t (Event.Span_begin { name; layer; trace; span; parent; scope });
    span

  let span_close t fr ~orphan =
    Hashtbl.remove t.open_spans fr.fr_span;
    emit t
      (Event.Span_end
         { name = fr.fr_name; layer = fr.fr_layer; trace = fr.fr_trace;
           span = fr.fr_span; scope = fr.fr_scope; orphan })

  let span_exit t h =
    if h <> 0 then
      match Hashtbl.find_opt t.open_spans h with
      | None -> ()  (* already closed (double exit or drain) *)
      | Some fr ->
        let scope = fr.fr_scope in
        let stack =
          match Hashtbl.find_opt t.stacks scope with Some s -> s | None -> []
        in
        (* children left open above [h] end first (as orphans), keeping
           the begin/end bracketing well-nested per scope *)
        let rec pop = function
          | [] -> []
          | s :: rest ->
            (match Hashtbl.find_opt t.open_spans s with
            | Some sfr -> span_close t sfr ~orphan:(s <> h)
            | None -> ());
            if s = h then rest else pop rest
        in
        if List.mem h stack then Hashtbl.replace t.stacks scope (pop stack)
        else span_close t fr ~orphan:false

  let span_current t =
    match Hashtbl.find_opt t.stacks (t.scope_fn ()) with
    | Some (s :: _) -> s
    | Some [] | None -> 0

  let span_open_count t = Hashtbl.length t.open_spans

  let span_opens t =
    Hashtbl.fold (fun _ fr acc -> fr :: acc) t.open_spans []
    |> List.sort (fun a b -> compare a.fr_span b.fr_span)
    |> List.map (fun fr ->
           (fr.fr_span, fr.fr_layer, fr.fr_name, fr.fr_trace, fr.fr_scope))

  let span_drain t =
    (* close every open span, innermost first per scope, in scope order
       (deterministic given a deterministic run) *)
    let scopes =
      Hashtbl.fold (fun k _ acc -> k :: acc) t.stacks [] |> List.sort compare
    in
    List.iter
      (fun scope ->
        (match Hashtbl.find_opt t.stacks scope with
        | None -> ()
        | Some stack ->
          List.iter
            (fun s ->
              match Hashtbl.find_opt t.open_spans s with
              | Some fr -> span_close t fr ~orphan:true
              | None -> ())
            stack);
        Hashtbl.remove t.stacks scope)
      scopes

  let clear t =
    Array.fill t.ring 0 t.capacity None;
    t.next <- 0;
    t.nseq <- 0;
    t.next_span <- 0;
    t.next_trace <- 0;
    Hashtbl.reset t.open_spans;
    Hashtbl.reset t.stacks;
    Metrics.clear t.metrics

  let events t =
    (* oldest live entry first: walk the ring from [next] *)
    let acc = ref [] in
    for i = t.capacity - 1 downto 0 do
      match t.ring.((t.next + i) mod t.capacity) with
      | Some e -> acc := (e.e_t, e.e_seq, e.e_ev) :: !acc
      | None -> ()
    done;
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) !acc

  let span_tree ?trace t =
    let buf = Buffer.create 256 in
    let depth = Hashtbl.create 17 in
    List.iter
      (fun (_, _, ev) ->
        match ev with
        | Event.Span_begin { name; layer; trace = tr; span; parent; _ }
          when (match trace with None -> true | Some want -> want = tr) ->
          let d =
            match Hashtbl.find_opt depth parent with
            | Some d -> d + 1
            | None -> 0
          in
          Hashtbl.replace depth span d;
          Printf.bprintf buf "%s[%s] %s\n" (String.make (2 * d) ' ') layer name
        | _ -> ())
      (events t);
    Buffer.contents buf

  let render ?(limit = 100) t =
    let evs = events t in
    let n = List.length evs in
    let evs =
      if n <= limit then evs
      else
        (* keep the newest [limit] *)
        List.filteri (fun i _ -> i >= n - limit) evs
    in
    let buf = Buffer.create 4096 in
    List.iter
      (fun (time, _, ev) ->
        Buffer.add_string buf
          (Printf.sprintf "%.6f %s\n" time (Event.render ev)))
      evs;
    Buffer.contents buf

  (* ---- exporters ---- *)

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_chrome_json t =
    (* Chrome trace_event format, virtual microseconds.  Instant events
       stay on tid 1; spans become B/E duration pairs on a per-scope tid
       (scope + 2, so process 1's spans land on tid 3), which is what
       makes them nest correctly in the viewer.  Deterministic by
       construction. *)
    let buf = Buffer.create 16384 in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    let args_json sq args =
      String.concat ","
        (Printf.sprintf "\"seq\":%d" sq
        :: List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
             args)
    in
    List.iter
      (fun (time, sq, ev) ->
        if !first then first := false else Buffer.add_char buf ',';
        (match ev with
        | Event.Span_begin { name; scope; _ } ->
          Buffer.add_string buf
            (Printf.sprintf
               "\n{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
               (json_escape name) (time *. 1e6) (scope + 2))
        | Event.Span_end { name; scope; _ } ->
          Buffer.add_string buf
            (Printf.sprintf
               "\n{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
               (json_escape name) (time *. 1e6) (scope + 2))
        | ev ->
          Buffer.add_string buf
            (Printf.sprintf
               "\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{"
               (json_escape (Event.label ev))
               (time *. 1e6)));
        Buffer.add_string buf (args_json sq (Event.args ev));
        Buffer.add_string buf "}}")
      (events t);
    Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buf

  let counters_json t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_string buf ", " in
    List.iter
      (fun (k, v) ->
        sep ();
        Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape k) v))
      (Metrics.counters t.metrics);
    List.iter
      (fun (k, (count, sum, mx)) ->
        sep ();
        let q p =
          match Metrics.quantile t.metrics k p with Some v -> v | None -> 0.
        in
        Buffer.add_string buf
          (Printf.sprintf
             "\"%s\": {\"count\": %d, \"sum_ms\": %.6f, \"max_ms\": %.6f, \
              \"p50_ms\": %.6f, \"p95_ms\": %.6f, \"p99_ms\": %.6f}"
             (json_escape k) count (sum *. 1e3) (mx *. 1e3)
             (q 0.50 *. 1e3) (q 0.95 *. 1e3) (q 0.99 *. 1e3)))
      (Metrics.histograms t.metrics);
    Buffer.add_string buf "}";
    Buffer.contents buf
end

module Span = struct
  (* Thin facade over the span machinery living inside Trace (it needs
     the ring and the scope hook).  A handle is just the span id; 0 is
     "no span", so disabled-sink call sites can thread an int through
     without allocating. *)
  type h = int

  let none = 0
  let enter = Trace.span_enter
  let exit = Trace.span_exit
  let current = Trace.span_current
  let drain = Trace.span_drain
  let open_count = Trace.span_open_count
  let opens = Trace.span_opens
  let tree = Trace.span_tree
end

module Snoopy = struct
  (* Pure wire-byte parsing: keep this independent of the protocol
     stacks so a tap can decode frames even from code it has never
     linked against. *)

  let get16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
  let get32 s off = (get16 s off lsl 16) lor get16 s (off + 2)

  let ipstr s off =
    Printf.sprintf "%d.%d.%d.%d" (Char.code s.[off])
      (Char.code s.[off + 1])
      (Char.code s.[off + 2])
      (Char.code s.[off + 3])

  let eastr s off =
    String.concat ""
      (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code s.[off + i])))

  let il_type = function
    | 0 -> "sync"
    | 1 -> "data"
    | 2 -> "dataquery"
    | 3 -> "ack"
    | 4 -> "query"
    | 5 -> "state"
    | 6 -> "close"
    | 7 -> "reset"
    | n -> Printf.sprintf "type%d" n

  let tcp_flags f =
    let names =
      [ (1, "fin"); (2, "syn"); (4, "rst"); (8, "psh"); (16, "ack") ]
    in
    match List.filter_map (fun (b, n) -> if f land b <> 0 then Some n else None) names with
    | [] -> "none"
    | fs -> String.concat "+" fs

  (* ---- 9P (Styx) message decoding ----
     The wire format is little-endian: 1-byte type code (T even in
     50..82, R = T+1, Rerror = 59), 2-byte tag, then fixed-width fields
     (28-byte NUL-padded names, 64-byte errors) and 2-byte-counted
     strings.  We only claim a decode when the bytes are internally
     consistent and the length is exact, so random payloads don't
     produce false positives. *)

  let le16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)
  let le32 s off = le16 s off lor (le16 s (off + 2) lsl 16)
  let le64 s off = le32 s off lor (le32 s (off + 4) lsl 32)

  let styx_name s off =
    let rec len i = if i < 28 && s.[off + i] <> '\000' then len (i + 1) else i in
    String.sub s off (len 0)

  let styx_err s off =
    let rec len i = if i < 64 && s.[off + i] <> '\000' then len (i + 1) else i in
    String.sub s off (len 0)

  let render_ninep p =
    let len = String.length p in
    if len < 3 then None
    else
      let code = Char.code p.[0] in
      if code < 50 || code > 83 then None
      else
        let tag = le16 p 1 in
        let o = 3 in
        (* exact-length check for fixed-layout messages *)
        let fixed n s = if len = o + n then Some s else None in
        let qid off = Printf.sprintf "qid=(%d,%d)" (le32 p off) (le32 p (off + 4)) in
        let str2_len off =
          (* total remaining length must be exactly 2 + count *)
          if len < off + 2 then None
          else
            let n = le16 p off in
            if len = off + 2 + n then Some n else None
        in
        try
          match code with
          | 50 -> fixed 0 (Printf.sprintf "Tnop tag=%d" tag)
          | 51 -> fixed 0 (Printf.sprintf "Rnop tag=%d" tag)
          | 52 ->
            Option.map
              (fun n ->
                Printf.sprintf "Tauth tag=%d afid=%d uname=%s ticket[%d]" tag
                  (le16 p o) (styx_name p (o + 2)) n)
              (str2_len (o + 2 + 28))
          | 53 ->
            Option.map
              (fun n ->
                Printf.sprintf "Rauth tag=%d afid=%d ticket[%d]" tag (le16 p o) n)
              (str2_len (o + 2))
          | 54 ->
            Option.map
              (fun n -> Printf.sprintf "Tsession tag=%d chal[%d]" tag n)
              (str2_len o)
          | 55 ->
            Option.map
              (fun n -> Printf.sprintf "Rsession tag=%d chal[%d]" tag n)
              (str2_len o)
          | 56 ->
            fixed (2 + 28 + 28)
              (Printf.sprintf "Tattach tag=%d fid=%d uname=%s aname=%s" tag
                 (le16 p o) (styx_name p (o + 2)) (styx_name p (o + 30)))
          | 57 ->
            fixed 10
              (Printf.sprintf "Rattach tag=%d fid=%d %s" tag (le16 p o)
                 (qid (o + 2)))
          | 59 ->
            fixed 64 (Printf.sprintf "Rerror tag=%d %s" tag (styx_err p o))
          | 60 ->
            fixed 4
              (Printf.sprintf "Tclone tag=%d fid=%d newfid=%d" tag (le16 p o)
                 (le16 p (o + 2)))
          | 61 -> fixed 2 (Printf.sprintf "Rclone tag=%d fid=%d" tag (le16 p o))
          | 62 ->
            fixed (2 + 28)
              (Printf.sprintf "Twalk tag=%d fid=%d name=%s" tag (le16 p o)
                 (styx_name p (o + 2)))
          | 63 ->
            fixed 10
              (Printf.sprintf "Rwalk tag=%d fid=%d %s" tag (le16 p o)
                 (qid (o + 2)))
          | 64 ->
            fixed (4 + 28)
              (Printf.sprintf "Tclwalk tag=%d fid=%d newfid=%d name=%s" tag
                 (le16 p o) (le16 p (o + 2)) (styx_name p (o + 4)))
          | 65 ->
            fixed 10
              (Printf.sprintf "Rclwalk tag=%d newfid=%d %s" tag (le16 p o)
                 (qid (o + 2)))
          | 66 ->
            fixed 3
              (Printf.sprintf "Topen tag=%d fid=%d mode=%d" tag (le16 p o)
                 (Char.code p.[o + 2]))
          | 67 ->
            fixed 10
              (Printf.sprintf "Ropen tag=%d fid=%d %s" tag (le16 p o)
                 (qid (o + 2)))
          | 68 ->
            fixed (2 + 28 + 4 + 1)
              (Printf.sprintf "Tcreate tag=%d fid=%d name=%s perm=%o mode=%d"
                 tag (le16 p o) (styx_name p (o + 2)) (le32 p (o + 30))
                 (Char.code p.[o + 34]))
          | 69 ->
            fixed 10
              (Printf.sprintf "Rcreate tag=%d fid=%d %s" tag (le16 p o)
                 (qid (o + 2)))
          | 70 ->
            fixed 12
              (Printf.sprintf "Tread tag=%d fid=%d offset=%d count=%d" tag
                 (le16 p o) (le64 p (o + 2)) (le16 p (o + 10)))
          | 71 ->
            Option.map
              (fun n -> Printf.sprintf "Rread tag=%d count=%d" tag n)
              (str2_len o)
          | 72 ->
            Option.map
              (fun n ->
                Printf.sprintf "Twrite tag=%d fid=%d offset=%d count=%d" tag
                  (le16 p o) (le64 p (o + 2)) n)
              (str2_len (o + 10))
          | 73 -> fixed 2 (Printf.sprintf "Rwrite tag=%d count=%d" tag (le16 p o))
          | 74 -> fixed 2 (Printf.sprintf "Tclunk tag=%d fid=%d" tag (le16 p o))
          | 75 -> fixed 2 (Printf.sprintf "Rclunk tag=%d fid=%d" tag (le16 p o))
          | 76 -> fixed 2 (Printf.sprintf "Tremove tag=%d fid=%d" tag (le16 p o))
          | 77 -> fixed 2 (Printf.sprintf "Rremove tag=%d fid=%d" tag (le16 p o))
          | 78 -> fixed 2 (Printf.sprintf "Tstat tag=%d fid=%d" tag (le16 p o))
          | 79 ->
            fixed 116
              (Printf.sprintf "Rstat tag=%d name=%s" tag (styx_name p o))
          | 80 ->
            fixed (2 + 116)
              (Printf.sprintf "Twstat tag=%d fid=%d name=%s" tag (le16 p o)
                 (styx_name p (o + 2)))
          | 81 -> fixed 2 (Printf.sprintf "Rwstat tag=%d fid=%d" tag (le16 p o))
          | 82 ->
            fixed 2 (Printf.sprintf "Tflush tag=%d oldtag=%d" tag (le16 p o))
          | 83 -> fixed 0 (Printf.sprintf "Rflush tag=%d" tag)
          | _ -> None
        with Invalid_argument _ -> None

  let with_ninep base payload =
    match render_ninep payload with
    | Some s -> base ^ " 9p(" ^ s ^ ")"
    | None -> base

  let render_arp p =
    if String.length p < 28 then "arp runt"
    else
      let op = get16 p 6 in
      let spa = ipstr p 14 and tpa = ipstr p 24 in
      match op with
      | 1 -> Printf.sprintf "arp who-has %s tell %s" tpa spa
      | 2 -> Printf.sprintf "arp %s is-at %s" spa (eastr p 8)
      | n -> Printf.sprintf "arp op%d %s > %s" n spa tpa

  let render_il p =
    if String.length p < 18 then "il runt"
    else
      let base =
        Printf.sprintf "il %s %d>%d id %d ack %d len %d"
          (il_type (Char.code p.[4]))
          (get16 p 6) (get16 p 8) (get32 p 10) (get32 p 14)
          (String.length p - 18)
      in
      let ty = Char.code p.[4] in
      if (ty = 1 || ty = 2) && String.length p > 18 then
        with_ninep base (String.sub p 18 (String.length p - 18))
      else base

  let render_udp p =
    if String.length p < 8 then "udp runt"
    else
      Printf.sprintf "udp %d>%d len %d" (get16 p 0) (get16 p 2)
        (String.length p - 8)

  let render_tcp p =
    if String.length p < 20 then "tcp runt"
    else
      let off = ((get16 p 12) lsr 12) * 4 in
      let base =
        Printf.sprintf "tcp %s %d>%d seq %d ack %d len %d"
          (tcp_flags (get16 p 12 land 0x3f))
          (get16 p 0) (get16 p 2) (get32 p 4) (get32 p 8)
          (max 0 (String.length p - off))
      in
      if off >= 20 && String.length p > off then
        with_ninep base (String.sub p off (String.length p - off))
      else base

  let ip_payload p =
    (* (frag_off, inner rendering) for a well-formed 20-byte header *)
    let proto = Char.code p.[9] in
    let frag_off = (get16 p 6 land 0x1fff) * 8 in
    let body = String.sub p 20 (String.length p - 20) in
    let inner =
      if frag_off > 0 then
        Printf.sprintf "frag off %d proto %d len %d" frag_off proto
          (String.length body)
      else
        match proto with
        | 40 -> render_il body
        | 17 -> render_udp body
        | 6 -> render_tcp body
        | n -> Printf.sprintf "proto %d len %d" n (String.length body)
    in
    inner

  let render_ip p =
    if String.length p < 20 || Char.code p.[0] <> 0x45 then "ip runt"
    else
      Printf.sprintf "ip(%s > %s) %s" (ipstr p 12) (ipstr p 16) (ip_payload p)

  let render_frame ~time ~src ~dst ~etype payload =
    let body =
      match etype with
      | 0x0806 -> render_arp payload
      | 0x0800 -> render_ip payload
      | n -> Printf.sprintf "type %d len %d" n (String.length payload)
    in
    Printf.sprintf "%.6f ether(%s > %s) %s" time src dst body

  let frame_proto ~etype payload =
    match etype with
    | 0x0806 -> "arp"
    | 0x0800 ->
      if String.length payload < 20 || Char.code payload.[0] <> 0x45 then "ip"
      else if (get16 payload 6 land 0x1fff) <> 0 then "ip"
      else (
        match Char.code payload.[9] with
        | 40 -> "il"
        | 17 -> "udp"
        | 6 -> "tcp"
        | _ -> "ip")
    | _ -> "ether"
end
