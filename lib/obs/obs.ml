(* Zero-dependency observability core.  See obs.mli for the contract:
   deterministic (clock is injected), bounded (ring buffer), and free
   when no sink is installed (callers guard emission themselves). *)

module Event = struct
  type dir = Up | Down
  type proc_phase = Spawn | Block | Wake | Exit | Crash
  type packet_op = Tx | Rx | Drop of string

  type t =
    | Proc of { name : string; phase : proc_phase }
    | Cpu of { queued : float; busy : float }
    | Blk of { op : [ `Alloc | `Free ]; bytes : int }
    | Stream of { dev : string; dir : dir; bytes : int; delim : bool }
    | Flow of { dev : string; stalled : bool; qbytes : int }
    | Packet of {
        medium : string;
        op : packet_op;
        src : string;
        dst : string;
        proto : string;
        bytes : int;
      }
    | Proto_state of { proto : string; conv : int; from_ : string; to_ : string }
    | Fault of {
        medium : string;
        kind : string;
        reason : string;
        src : string;
        dst : string;
        proto : string;
        bytes : int;
      }
    | Retransmit of { proto : string; conv : int; id : int; bytes : int }
    | Checksum_err of { proto : string }
    | Fcall of { role : [ `T | `R ]; tag : int; msg : string; latency : float }
    | Note of { sub : string; msg : string }

  let phase_name = function
    | Spawn -> "spawn"
    | Block -> "block"
    | Wake -> "wake"
    | Exit -> "exit"
    | Crash -> "crash"

  let label = function
    | Proc { phase; _ } -> "proc." ^ phase_name phase
    | Cpu _ -> "cpu.occupy"
    | Blk { op = `Alloc; _ } -> "blk.alloc"
    | Blk { op = `Free; _ } -> "blk.free"
    | Stream { dir = Up; _ } -> "stream.up"
    | Stream { dir = Down; _ } -> "stream.down"
    | Flow { stalled = true; _ } -> "flow.stall"
    | Flow { stalled = false; _ } -> "flow.resume"
    | Packet { op = Tx; _ } -> "pkt.tx"
    | Packet { op = Rx; _ } -> "pkt.rx"
    | Packet { op = Drop _; _ } -> "pkt.drop"
    | Proto_state _ -> "proto.state"
    | Fault { kind; _ } -> "fault." ^ kind
    | Retransmit _ -> "proto.retransmit"
    | Checksum_err _ -> "proto.badsum"
    | Fcall { role = `T; _ } -> "9p.t"
    | Fcall { role = `R; _ } -> "9p.r"
    | Note _ -> "note"

  let args = function
    | Proc { name; _ } -> [ ("proc", name) ]
    | Cpu { queued; busy } ->
      [ ("queued_us", Printf.sprintf "%.1f" (queued *. 1e6));
        ("busy_us", Printf.sprintf "%.1f" (busy *. 1e6)) ]
    | Blk { bytes; _ } -> [ ("bytes", string_of_int bytes) ]
    | Stream { dev; bytes; delim; _ } ->
      [ ("dev", dev); ("bytes", string_of_int bytes);
        ("delim", string_of_bool delim) ]
    | Flow { dev; qbytes; _ } ->
      [ ("dev", dev); ("qbytes", string_of_int qbytes) ]
    | Packet { medium; op; src; dst; proto; bytes } ->
      [ ("medium", medium); ("src", src); ("dst", dst); ("proto", proto);
        ("bytes", string_of_int bytes) ]
      @ (match op with Drop why -> [ ("why", why) ] | Tx | Rx -> [])
    | Proto_state { proto; conv; from_; to_ } ->
      [ ("proto", proto); ("conv", string_of_int conv); ("from", from_);
        ("to", to_) ]
    | Fault { medium; kind; reason; src; dst; proto; bytes } ->
      [ ("medium", medium); ("kind", kind); ("reason", reason); ("src", src);
        ("dst", dst); ("proto", proto); ("bytes", string_of_int bytes) ]
    | Retransmit { proto; conv; id; bytes } ->
      [ ("proto", proto); ("conv", string_of_int conv);
        ("id", string_of_int id); ("bytes", string_of_int bytes) ]
    | Checksum_err { proto } -> [ ("proto", proto) ]
    | Fcall { tag; msg; latency; _ } ->
      [ ("tag", string_of_int tag); ("msg", msg);
        ("latency_us", Printf.sprintf "%.1f" (latency *. 1e6)) ]
    | Note { sub; msg } -> [ ("sub", sub); ("msg", msg) ]

  let render ev =
    match ev with
    | Note { sub; msg } -> Printf.sprintf "%s: %s" sub msg
    | Proto_state { proto; conv; from_; to_ } ->
      Printf.sprintf "%s/%d %s -> %s" proto conv from_ to_
    | Retransmit { proto; conv; id; bytes } ->
      Printf.sprintf "%s/%d retransmit id %d (%d bytes)" proto conv id bytes
    | Fault { medium; kind; reason; src; dst; proto; bytes } ->
      Printf.sprintf "%s fault %s[%s] %s>%s %s %d" medium kind reason src dst
        proto bytes
    | Packet { medium; op; src; dst; proto; bytes } ->
      Printf.sprintf "%s %s %s>%s %s %d"
        medium
        (match op with Tx -> "tx" | Rx -> "rx" | Drop why -> "drop[" ^ why ^ "]")
        src dst proto bytes
    | ev ->
      String.concat " "
        (label ev
        :: List.map (fun (k, v) -> k ^ "=" ^ v) (args ev))
end

module Metrics = struct
  type hist = { mutable count : int; mutable sum : float; mutable max_ : float }

  type t = {
    counters : (string, int ref) Hashtbl.t;
    hists : (string, hist) Hashtbl.t;
  }

  let create () = { counters = Hashtbl.create 31; hists = Hashtbl.create 7 }

  let bump t name n =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.counters name (ref n)

  let observe t name v =
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
        let h = { count = 0; sum = 0.; max_ = 0. } in
        Hashtbl.replace t.hists name h;
        h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v > h.max_ then h.max_ <- v

  let counter t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let counters t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
    |> List.sort compare

  let histograms t =
    Hashtbl.fold (fun k h acc -> (k, (h.count, h.sum, h.max_)) :: acc) t.hists []
    |> List.sort compare

  let clear t =
    Hashtbl.reset t.counters;
    Hashtbl.reset t.hists
end

module Trace = struct
  type entry = { e_t : float; e_seq : int; e_ev : Event.t }

  type t = {
    capacity : int;
    mutable ring : entry option array;
    mutable next : int;  (* ring slot for the next event *)
    mutable nseq : int;  (* events ever emitted *)
    mutable clock : unit -> float;
    metrics : Metrics.t;
    mutable taps : (float -> Event.t -> unit) list;
  }

  let create ?(capacity = 65536) () =
    {
      capacity = max 16 capacity;
      ring = Array.make (max 16 capacity) None;
      next = 0;
      nseq = 0;
      clock = (fun () -> 0.);
      metrics = Metrics.create ();
      taps = [];
    }

  let set_clock t fn = t.clock <- fn
  let now t = t.clock ()
  let metrics t = t.metrics
  let bump t name n = Metrics.bump t.metrics name n
  let observe t name v = Metrics.observe t.metrics name v
  let add_tap t fn = t.taps <- t.taps @ [ fn ]
  let seq t = t.nseq
  let dropped t = max 0 (t.nseq - t.capacity)

  let emit t ev =
    let time = t.clock () in
    t.ring.(t.next) <- Some { e_t = time; e_seq = t.nseq; e_ev = ev };
    t.next <- (t.next + 1) mod t.capacity;
    t.nseq <- t.nseq + 1;
    List.iter (fun tap -> tap time ev) t.taps

  let note t ~sub msg = emit t (Event.Note { sub; msg })

  let clear t =
    Array.fill t.ring 0 t.capacity None;
    t.next <- 0;
    t.nseq <- 0;
    Metrics.clear t.metrics

  let events t =
    (* oldest live entry first: walk the ring from [next] *)
    let acc = ref [] in
    for i = t.capacity - 1 downto 0 do
      match t.ring.((t.next + i) mod t.capacity) with
      | Some e -> acc := (e.e_t, e.e_seq, e.e_ev) :: !acc
      | None -> ()
    done;
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) !acc

  let render ?(limit = 100) t =
    let evs = events t in
    let n = List.length evs in
    let evs =
      if n <= limit then evs
      else
        (* keep the newest [limit] *)
        List.filteri (fun i _ -> i >= n - limit) evs
    in
    let buf = Buffer.create 4096 in
    List.iter
      (fun (time, _, ev) ->
        Buffer.add_string buf
          (Printf.sprintf "%.6f %s\n" time (Event.render ev)))
      evs;
    Buffer.contents buf

  (* ---- exporters ---- *)

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_chrome_json t =
    (* Chrome trace_event format: instant events on one pid/tid, virtual
       microseconds.  Deterministic by construction. *)
    let buf = Buffer.create 16384 in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    List.iter
      (fun (time, sq, ev) ->
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{"
             (json_escape (Event.label ev))
             (time *. 1e6));
        Buffer.add_string buf
          (String.concat ","
             (Printf.sprintf "\"seq\":%d" sq
             :: List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                      (json_escape v))
                  (Event.args ev)));
        Buffer.add_string buf "}}")
      (events t);
    Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buf

  let counters_json t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_string buf ", " in
    List.iter
      (fun (k, v) ->
        sep ();
        Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape k) v))
      (Metrics.counters t.metrics);
    List.iter
      (fun (k, (count, sum, mx)) ->
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "\"%s\": {\"count\": %d, \"sum_ms\": %.6f, \"max_ms\": %.6f}"
             (json_escape k) count (sum *. 1e3) (mx *. 1e3)))
      (Metrics.histograms t.metrics);
    Buffer.add_string buf "}";
    Buffer.contents buf
end

module Snoopy = struct
  (* Pure wire-byte parsing: keep this independent of the protocol
     stacks so a tap can decode frames even from code it has never
     linked against. *)

  let get16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]
  let get32 s off = (get16 s off lsl 16) lor get16 s (off + 2)

  let ipstr s off =
    Printf.sprintf "%d.%d.%d.%d" (Char.code s.[off])
      (Char.code s.[off + 1])
      (Char.code s.[off + 2])
      (Char.code s.[off + 3])

  let eastr s off =
    String.concat ""
      (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code s.[off + i])))

  let il_type = function
    | 0 -> "sync"
    | 1 -> "data"
    | 2 -> "dataquery"
    | 3 -> "ack"
    | 4 -> "query"
    | 5 -> "state"
    | 6 -> "close"
    | 7 -> "reset"
    | n -> Printf.sprintf "type%d" n

  let tcp_flags f =
    let names =
      [ (1, "fin"); (2, "syn"); (4, "rst"); (8, "psh"); (16, "ack") ]
    in
    match List.filter_map (fun (b, n) -> if f land b <> 0 then Some n else None) names with
    | [] -> "none"
    | fs -> String.concat "+" fs

  let render_arp p =
    if String.length p < 28 then "arp runt"
    else
      let op = get16 p 6 in
      let spa = ipstr p 14 and tpa = ipstr p 24 in
      match op with
      | 1 -> Printf.sprintf "arp who-has %s tell %s" tpa spa
      | 2 -> Printf.sprintf "arp %s is-at %s" spa (eastr p 8)
      | n -> Printf.sprintf "arp op%d %s > %s" n spa tpa

  let render_il p =
    if String.length p < 18 then "il runt"
    else
      Printf.sprintf "il %s %d>%d id %d ack %d len %d"
        (il_type (Char.code p.[4]))
        (get16 p 6) (get16 p 8) (get32 p 10) (get32 p 14)
        (String.length p - 18)

  let render_udp p =
    if String.length p < 8 then "udp runt"
    else
      Printf.sprintf "udp %d>%d len %d" (get16 p 0) (get16 p 2)
        (String.length p - 8)

  let render_tcp p =
    if String.length p < 20 then "tcp runt"
    else
      let off = ((get16 p 12) lsr 12) * 4 in
      Printf.sprintf "tcp %s %d>%d seq %d ack %d len %d"
        (tcp_flags (get16 p 12 land 0x3f))
        (get16 p 0) (get16 p 2) (get32 p 4) (get32 p 8)
        (max 0 (String.length p - off))

  let ip_payload p =
    (* (frag_off, inner rendering) for a well-formed 20-byte header *)
    let proto = Char.code p.[9] in
    let frag_off = (get16 p 6 land 0x1fff) * 8 in
    let body = String.sub p 20 (String.length p - 20) in
    let inner =
      if frag_off > 0 then
        Printf.sprintf "frag off %d proto %d len %d" frag_off proto
          (String.length body)
      else
        match proto with
        | 40 -> render_il body
        | 17 -> render_udp body
        | 6 -> render_tcp body
        | n -> Printf.sprintf "proto %d len %d" n (String.length body)
    in
    inner

  let render_ip p =
    if String.length p < 20 || Char.code p.[0] <> 0x45 then "ip runt"
    else
      Printf.sprintf "ip(%s > %s) %s" (ipstr p 12) (ipstr p 16) (ip_payload p)

  let render_frame ~time ~src ~dst ~etype payload =
    let body =
      match etype with
      | 0x0806 -> render_arp payload
      | 0x0800 -> render_ip payload
      | n -> Printf.sprintf "type %d len %d" n (String.length payload)
    in
    Printf.sprintf "%.6f ether(%s > %s) %s" time src dst body

  let frame_proto ~etype payload =
    match etype with
    | 0x0806 -> "arp"
    | 0x0800 ->
      if String.length payload < 20 || Char.code payload.[0] <> 0x45 then "ip"
      else if (get16 payload 6 land 0x1fff) <> 0 then "ip"
      else (
        match Char.code payload.[9] with
        | 40 -> "il"
        | 17 -> "udp"
        | 6 -> "tcp"
        | _ -> "ip")
    | _ -> "ether"
end
