type kind = Data | Ctl | Hangup

type t = {
  kind : kind;
  buf : Bytes.t;
  mutable rp : int;
  mutable wp : int;
  mutable delim : bool;
}

let max_atomic_write = 32 * 1024

let make_bytes ?(kind = Data) ?(delim = false) b =
  { kind; buf = b; rp = 0; wp = Bytes.length b; delim }

let make ?kind ?delim s = make_bytes ?kind ?delim (Bytes.of_string s)

let alloc ?(kind = Data) n =
  { kind; buf = Bytes.create n; rp = 0; wp = 0; delim = false }

let hangup () =
  { kind = Hangup; buf = Bytes.create 0; rp = 0; wp = 0; delim = true }

let len b = b.wp - b.rp
let to_string b = Bytes.sub_string b.buf b.rp (len b)
let is_ctl b = b.kind = Ctl

let consume b n =
  if n < 0 || n > len b then invalid_arg "Block.consume";
  b.rp <- b.rp + n

let sub b n =
  if n < 0 || n > len b then invalid_arg "Block.sub";
  {
    kind = b.kind;
    buf = Bytes.sub b.buf b.rp n;
    rp = 0;
    wp = n;
    delim = b.delim && n = len b;
  }

let concat bs =
  let total = List.fold_left (fun acc b -> acc + len b) 0 bs in
  let buf = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun b ->
      Bytes.blit b.buf b.rp buf !off (len b);
      off := !off + len b)
    bs;
  let delim = match List.rev bs with [] -> false | last :: _ -> last.delim in
  { kind = Data; buf; rp = 0; wp = total; delim }

let ctl_words b =
  String.split_on_char ' ' (to_string b)
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

module Q = struct
  type block = t

  type q = {
    eng : Sim.Engine.t;
    limit : int;
    items : block Queue.t;
    mutable nbytes : int;
    mutable closed : bool;
    mutable eof : bool;  (* a Hangup has been delivered or drain done *)
    readers : Sim.Rendez.t;
    writers : Sim.Rendez.t;
    mutable kick : (unit -> unit) option;
    mutable qname : string;  (* label for flow-control trace events *)
  }

  type t = q

  exception Closed

  let create ?(limit = 64 * 1024) ?(name = "q") eng =
    {
      eng;
      limit;
      items = Queue.create ();
      nbytes = 0;
      closed = false;
      eof = false;
      readers = Sim.Rendez.create eng;
      writers = Sim.Rendez.create eng;
      kick = None;
      qname = name;
    }

  let bytes q = q.nbytes
  let blocks q = Queue.length q.items
  let is_closed q = q.closed
  let full q = q.nbytes >= q.limit
  let set_kick q fn = q.kick <- fn
  let set_name q n = q.qname <- n
  let name q = q.qname

  (* Test-only planted ordering bug (see DESIGN.md, "Schedule
     exploration"): when set, a put onto a non-empty queue skips the
     reader wakeup on the theory that the wakeup for the earlier block
     is still pending — a classic lost wakeup.  It is harmless whenever
     the woken reader drains the queue before the next put (which is
     what FIFO schedules happen to do here), and strands a reader under
     schedules where a second reader goes to sleep before a producer's
     back-to-back puts: the first put wakes the wrong (older) sleeper
     and the second put's wakeup — the one the young sleeper needed —
     is the one skipped.
     Never set outside the explorer's self-test. *)
  let chaos_lost_wakeup = ref false

  let enqueue q b =
    Queue.push b q.items;
    q.nbytes <- q.nbytes + len b;
    (match Sim.Engine.obs q.eng with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr (Obs.Event.Blk { op = `Alloc; bytes = len b });
      Obs.Trace.bump tr "blk.alloc" 1);
    if not (!chaos_lost_wakeup && Queue.length q.items > 1) then
      Sim.Rendez.wakeup q.readers;
    match q.kick with None -> () | Some fn -> fn ()

  let force_put q b = if not q.eof then enqueue q b

  let try_put q b =
    if q.closed then raise Closed;
    match b.kind with
    | Ctl | Hangup ->
      enqueue q b;
      true
    | Data ->
      if full q then false
      else begin
        enqueue q b;
        true
      end

  let put q b =
    if q.closed then raise Closed;
    (match b.kind with
    | Ctl | Hangup -> ()
    | Data ->
      if full q then begin
        (match Sim.Engine.obs q.eng with
        | None -> ()
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Event.Flow { dev = q.qname; stalled = true; qbytes = q.nbytes });
          Obs.Trace.bump tr "flow.stalls" 1);
        while full q && not q.closed do
          Sim.Rendez.sleep q.writers
        done;
        match Sim.Engine.obs q.eng with
        | None -> ()
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Event.Flow { dev = q.qname; stalled = false; qbytes = q.nbytes })
      end;
      if q.closed then raise Closed);
    enqueue q b;
    (* cascade: a drain wakes only one blocked writer; if this put left
       room, pass the wakeup along so every writer that now fits gets
       through (found by the schedule explorer: stream-backpressure
       stranded its second writer under every policy) *)
    if not (full q) then Sim.Rendez.wakeup q.writers

  let dequeue q =
    let b = Queue.pop q.items in
    q.nbytes <- q.nbytes - len b;
    (match Sim.Engine.obs q.eng with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr (Obs.Event.Blk { op = `Free; bytes = len b });
      Obs.Trace.bump tr "blk.free" 1);
    Sim.Rendez.wakeup q.writers;
    b

  let rec get q =
    if q.eof then None
    else
      match Queue.is_empty q.items with
      | true ->
        if q.closed then begin
          q.eof <- true;
          None
        end
        else begin
          Sim.Rendez.sleep q.readers;
          get q
        end
      | false -> (
        let b = dequeue q in
        match b.kind with
        | Hangup ->
          q.eof <- true;
          None
        | Data | Ctl -> Some b)

  let read q want =
    (* Block until there is a block to look at, or EOF. *)
    let rec wait () =
      if q.eof then false
      else if not (Queue.is_empty q.items) then true
      else if q.closed then begin
        q.eof <- true;
        false
      end
      else begin
        Sim.Rendez.sleep q.readers;
        wait ()
      end
    in
    if want <= 0 || not (wait ()) then ""
    else begin
      let buf = Buffer.create (min want 4096) in
      let stop = ref false in
      while
        (not !stop)
        && Buffer.length buf < want
        && not (Queue.is_empty q.items)
      do
        let b = Queue.peek q.items in
        match b.kind with
        | Hangup ->
          ignore (Queue.pop q.items);
          q.eof <- true;
          stop := true
        | Ctl ->
          (* control blocks are invisible to byte-stream reads; callers
             that care use [get] *)
          ignore (Queue.pop q.items);
          q.nbytes <- q.nbytes - len b
        | Data ->
          let take = min (want - Buffer.length buf) (len b) in
          Buffer.add_subbytes buf b.buf b.rp take;
          consume b take;
          q.nbytes <- q.nbytes - take;
          Sim.Rendez.wakeup q.writers;
          if len b = 0 then begin
            ignore (Queue.pop q.items);
            if b.delim then stop := true
          end
      done;
      (* cascade: this read satisfied one waiter but may have left data
         behind (a partial take, or a delimiter stop); the enqueue-time
         wakeup for those bytes was already consumed by us, so wake the
         next reader ourselves (found by the schedule explorer:
         stream-read-cascade stranded its second reader) *)
      if not (Queue.is_empty q.items) then Sim.Rendez.wakeup q.readers;
      Buffer.contents buf
    end

  let close q =
    if not q.closed then begin
      q.closed <- true;
      Sim.Rendez.wakeup_all q.readers;
      Sim.Rendez.wakeup_all q.writers;
      match q.kick with None -> () | Some fn -> fn ()
    end
end
