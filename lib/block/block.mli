(** Kernel blocks and blocking queues.

    Section 2.4 of the paper: "Information is represented by linked
    lists of kernel structures called blocks.  Each block contains a
    type, some state flags, and pointers to an optional buffer.  Block
    buffers can hold either data or control information."

    A {!t} is one block; a {!Q.t} is the queue half of a stream
    processing module, with the paper's read/write semantics: writes of
    up to {!max_atomic_write} bytes form a single delimited block, reads
    stop at a delimiter boundary, and a full queue blocks the writer. *)

type kind =
  | Data  (** ordinary payload *)
  | Ctl  (** control directive; ASCII command for the modules *)
  | Hangup  (** synthesized end-of-stream marker sent up from a device *)

type t = {
  kind : kind;
  buf : Bytes.t;
  mutable rp : int;  (** read pointer: first live byte *)
  mutable wp : int;  (** write pointer: one past last live byte *)
  mutable delim : bool;  (** this block ends a message *)
}

val max_atomic_write : int
(** 32768: "A write of less than 32K is guaranteed to be contained by a
    single block." *)

val make : ?kind:kind -> ?delim:bool -> string -> t
(** Block holding a copy of the string. *)

val make_bytes : ?kind:kind -> ?delim:bool -> bytes -> t
(** Block taking ownership of [bytes] (no copy). *)

val alloc : ?kind:kind -> int -> t
(** Empty block with [n] bytes of capacity ([rp = wp = 0]). *)

val hangup : unit -> t

val len : t -> int
(** Live bytes, [wp - rp]. *)

val to_string : t -> string
(** Copy of the live bytes. *)

val is_ctl : t -> bool

val consume : t -> int -> unit
(** Advance [rp] by [n].  @raise Invalid_argument if [n > len]. *)

val sub : t -> int -> t
(** [sub b n] is a fresh block holding the first [n] live bytes of [b]
    (the delimiter flag carries over only when the whole block is
    taken). *)

val concat : t list -> t
(** Single data block with the concatenated payloads; delimited if the
    last input block was. *)

val ctl_words : t -> string list
(** Split a control block's text into whitespace-separated words, the
    way stream modules parse commands like ["connect 2048"]. *)

module Q : sig
  type block = t

  type t
  (** A blocking FIFO of blocks with a byte-count limit.  Producers
      block in {!put} while the queue is over its limit; consumers block
      in {!read}/{!get} while it is empty.  [close]d queues deliver
      remaining data and then EOF. *)

  exception Closed
  (** Raised by {!put}/{!write} on a closed queue. *)

  val create : ?limit:int -> ?name:string -> Sim.Engine.t -> t
  (** [limit] defaults to 64 KiB of buffered payload.  [name] (default
      ["q"]) labels this queue in flow-control trace events. *)

  val set_name : t -> string -> unit
  (** Relabel after creation — streams name their queues once the
      owning device is known. *)

  val name : t -> string

  val put : t -> block -> unit
  (** Append a block, blocking while the queue is over its limit.
      Control and hangup blocks are never blocked (they must be able to
      overtake a congested stream). *)

  val try_put : t -> block -> bool
  (** Non-blocking append: [false] if the queue is over its limit.  For
      interrupt-context producers that must not block; they drop or
      re-stage instead. *)

  val force_put : t -> block -> unit
  (** Append ignoring the limit (never blocks, never raises on closed —
      used by devices racing a close). *)

  val get : t -> block option
  (** Remove the head block; blocks while empty; [None] at EOF (closed
      and drained, or after a [Hangup] block). *)

  val read : t -> int -> string
  (** Byte-stream read with the paper's semantics: collects up to [n]
      bytes but stops early at a delimiter boundary; [""] at EOF.
      Partial blocks stay queued. *)

  val close : t -> unit
  (** No more {!put}s; readers drain then see EOF. *)

  val is_closed : t -> bool
  val bytes : t -> int
  val blocks : t -> int
  val full : t -> bool

  val set_kick : t -> (unit -> unit) option -> unit
  (** Callback invoked (outside process context) whenever a block is
      queued — how a device-end queue wakes its kernel process. *)

  val chaos_lost_wakeup : bool ref
  (** {e Test-only.}  When set, {!put} onto a non-empty queue skips the
      reader wakeup — a planted lost-wakeup ordering bug, invisible
      under FIFO schedules in the explorer's race scenario but fatal
      under reordered ones.  It exists so the schedule explorer's
      detector can be asserted against a known bug ([p9explore
      --selftest]); never set it in real code. *)
end
