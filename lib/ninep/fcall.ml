let namelen = 28
let errlen = 64
let dirlen = 116
let maxfdata = 8192

type qid = { qpath : int32; qvers : int32 }

let qdir_bit = 0x80000000l
let qid_is_dir q = Int32.logand q.qpath qdir_bit <> 0l

type mode = Oread | Owrite | Ordwr | Oexec

let mode_trunc = 0x10

let mode_to_int ?(trunc = false) m =
  (match m with Oread -> 0 | Owrite -> 1 | Ordwr -> 2 | Oexec -> 3)
  lor if trunc then mode_trunc else 0

let mode_of_int i =
  let trunc = i land mode_trunc <> 0 in
  match i land 3 with
  | 0 -> Some (Oread, trunc)
  | 1 -> Some (Owrite, trunc)
  | 2 -> Some (Ordwr, trunc)
  | 3 -> Some (Oexec, trunc)
  | _ -> None

type dir = {
  d_name : string;
  d_uid : string;
  d_gid : string;
  d_qid : qid;
  d_mode : int32;
  d_atime : int32;
  d_mtime : int32;
  d_length : int64;
  d_type : int;
  d_dev : int;
}

let dmdir = 0x80000000l

let pp_dir fmt d =
  let mode_char m bit = if Int32.logand m bit <> 0l then true else false in
  let rwx m shift =
    let m = Int32.to_int (Int32.shift_right_logical m shift) land 7 in
    Printf.sprintf "%c%c%c"
      (if m land 4 <> 0 then 'r' else '-')
      (if m land 2 <> 0 then 'w' else '-')
      (if m land 1 <> 0 then 'x' else '-')
  in
  Format.fprintf fmt "%c%s%s%s %c %d %-8s %-8s %8Ld %s"
    (if mode_char d.d_mode dmdir then 'd' else '-')
    (rwx d.d_mode 6) (rwx d.d_mode 3) (rwx d.d_mode 0)
    (Char.chr d.d_type) d.d_dev d.d_uid d.d_gid d.d_length d.d_name

(* ---- message kinds ---- *)

type tmsg =
  | Tnop
  | Tauth of { afid : int; uname : string; ticket : string }
  | Tsession of { chal : string }
  | Tattach of { fid : int; uname : string; aname : string }
  | Tclone of { fid : int; newfid : int }
  | Twalk of { fid : int; name : string }
  | Tclwalk of { fid : int; newfid : int; name : string }
  | Topen of { fid : int; mode : mode; trunc : bool }
  | Tcreate of { fid : int; name : string; perm : int32; mode : mode }
  | Tread of { fid : int; offset : int64; count : int }
  | Twrite of { fid : int; offset : int64; data : string }
  | Tclunk of { fid : int }
  | Tremove of { fid : int }
  | Tstat of { fid : int }
  | Twstat of { fid : int; stat : dir }
  | Tflush of { oldtag : int }

type rmsg =
  | Rnop
  | Rerror of string
  | Rauth of { afid : int; ticket : string }
  | Rsession of { chal : string }
  | Rattach of { fid : int; qid : qid }
  | Rclone of { fid : int }
  | Rwalk of { fid : int; qid : qid }
  | Rclwalk of { newfid : int; qid : qid }
  | Ropen of { fid : int; qid : qid }
  | Rcreate of { fid : int; qid : qid }
  | Rread of { data : string }
  | Rwrite of { count : int }
  | Rclunk of { fid : int }
  | Rremove of { fid : int }
  | Rstat of { stat : dir }
  | Rwstat of { fid : int }
  | Rflush

let tmsg_name = function
  | Tnop -> "Tnop"
  | Tauth _ -> "Tauth"
  | Tsession _ -> "Tsession"
  | Tattach _ -> "Tattach"
  | Tclone _ -> "Tclone"
  | Twalk _ -> "Twalk"
  | Tclwalk _ -> "Tclwalk"
  | Topen _ -> "Topen"
  | Tcreate _ -> "Tcreate"
  | Tread _ -> "Tread"
  | Twrite _ -> "Twrite"
  | Tclunk _ -> "Tclunk"
  | Tremove _ -> "Tremove"
  | Tstat _ -> "Tstat"
  | Twstat _ -> "Twstat"
  | Tflush _ -> "Tflush"

type t = T of int * tmsg | R of int * rmsg

exception Bad_message of string

let maxmsg = 3 + 2 + 8 + 2 + maxfdata + dirlen

(* message type codes, T even / R odd, in the historical style *)
let tnop = 50
and tauth = 52
and tsession = 54
and tattach = 56
and tclone = 60
and twalk = 62
and tclwalk = 64
and topen = 66
and tcreate = 68
and tread = 70
and twrite = 72
and tclunk = 74
and tremove = 76
and tstat = 78
and twstat = 80
and tflush = 82

let rerror = 59

(* ---- little-endian primitive writers/readers ---- *)

let w8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w16 b v =
  w8 b v;
  w8 b (v lsr 8)

let w32 b (v : int32) =
  let v = Int32.to_int (Int32.logand v 0xffffffffl) land 0xffffffff in
  w16 b (v land 0xffff);
  w16 b ((v lsr 16) land 0xffff)


let w64 b (v : int64) =
  w32 b (Int64.to_int32 v);
  w32 b (Int64.to_int32 (Int64.shift_right_logical v 32))

let wname b s =
  if String.length s >= namelen then
    raise (Bad_message ("name too long: " ^ s));
  Buffer.add_string b s;
  Buffer.add_string b (String.make (namelen - String.length s) '\000')

let werr b s =
  let s = if String.length s >= errlen then String.sub s 0 (errlen - 1) else s in
  Buffer.add_string b s;
  Buffer.add_string b (String.make (errlen - String.length s) '\000')

let wstr2 b s =
  (* 2-byte count + bytes, used for data and variable strings *)
  w16 b (String.length s);
  Buffer.add_string b s

let r8 s off = Char.code s.[off]
let r16 s off = r8 s off lor (r8 s (off + 1) lsl 8)

let r32 s off =
  Int32.logor
    (Int32.of_int (r16 s off))
    (Int32.shift_left (Int32.of_int (r16 s (off + 2))) 16)

let r64 s off =
  Int64.logor
    (Int64.logand (Int64.of_int32 (r32 s off)) 0xffffffffL)
    (Int64.shift_left (Int64.of_int32 (r32 s (off + 4))) 32)

let rname s off =
  let rec len i = if i < namelen && s.[off + i] <> '\000' then len (i + 1) else i in
  String.sub s off (len 0)

let rerrstr s off =
  let rec len i = if i < errlen && s.[off + i] <> '\000' then len (i + 1) else i in
  String.sub s off (len 0)

let need s off n what =
  if String.length s < off + n then
    raise (Bad_message ("truncated " ^ what))

let rstr2 s off what =
  need s off 2 what;
  let n = r16 s off in
  need s (off + 2) n what;
  (String.sub s (off + 2) n, off + 2 + n)

(* ---- dir (stat) marshalling ---- *)

let encode_dir d =
  let b = Buffer.create dirlen in
  wname b d.d_name;
  wname b d.d_uid;
  wname b d.d_gid;
  w32 b d.d_qid.qpath;
  w32 b d.d_qid.qvers;
  w32 b d.d_mode;
  w32 b d.d_atime;
  w32 b d.d_mtime;
  w64 b d.d_length;
  w16 b d.d_type;
  w16 b d.d_dev;
  assert (Buffer.length b = dirlen);
  Buffer.contents b

let decode_dir s off =
  need s off dirlen "stat";
  {
    d_name = rname s off;
    d_uid = rname s (off + namelen);
    d_gid = rname s (off + (2 * namelen));
    d_qid = { qpath = r32 s (off + 84); qvers = r32 s (off + 88) };
    d_mode = r32 s (off + 92);
    d_atime = r32 s (off + 96);
    d_mtime = r32 s (off + 100);
    d_length = r64 s (off + 104);
    d_type = r16 s (off + 112);
    d_dev = r16 s (off + 114);
  }

(* ---- top-level encode ---- *)

let encode msg =
  let b = Buffer.create 64 in
  let tag = match msg with T (tag, _) | R (tag, _) -> tag in
  let hdr code =
    w8 b code;
    w16 b tag
  in
  (match msg with
  | T (_, t) -> (
    match t with
    | Tnop -> hdr tnop
    | Tauth { afid; uname; ticket } ->
      hdr tauth;
      w16 b afid;
      wname b uname;
      wstr2 b ticket
    | Tsession { chal } ->
      hdr tsession;
      wstr2 b chal
    | Tattach { fid; uname; aname } ->
      hdr tattach;
      w16 b fid;
      wname b uname;
      wname b aname
    | Tclone { fid; newfid } ->
      hdr tclone;
      w16 b fid;
      w16 b newfid
    | Twalk { fid; name } ->
      hdr twalk;
      w16 b fid;
      wname b name
    | Tclwalk { fid; newfid; name } ->
      hdr tclwalk;
      w16 b fid;
      w16 b newfid;
      wname b name
    | Topen { fid; mode; trunc } ->
      hdr topen;
      w16 b fid;
      w8 b (mode_to_int ~trunc mode)
    | Tcreate { fid; name; perm; mode } ->
      hdr tcreate;
      w16 b fid;
      wname b name;
      w32 b perm;
      w8 b (mode_to_int mode)
    | Tread { fid; offset; count } ->
      hdr tread;
      w16 b fid;
      w64 b offset;
      w16 b count
    | Twrite { fid; offset; data } ->
      hdr twrite;
      w16 b fid;
      w64 b offset;
      wstr2 b data
    | Tclunk { fid } ->
      hdr tclunk;
      w16 b fid
    | Tremove { fid } ->
      hdr tremove;
      w16 b fid
    | Tstat { fid } ->
      hdr tstat;
      w16 b fid
    | Twstat { fid; stat } ->
      hdr twstat;
      w16 b fid;
      Buffer.add_string b (encode_dir stat)
    | Tflush { oldtag } ->
      hdr tflush;
      w16 b oldtag)
  | R (_, r) -> (
    match r with
    | Rnop -> hdr (tnop + 1)
    | Rerror e ->
      hdr rerror;
      werr b e
    | Rauth { afid; ticket } ->
      hdr (tauth + 1);
      w16 b afid;
      wstr2 b ticket
    | Rsession { chal } ->
      hdr (tsession + 1);
      wstr2 b chal
    | Rattach { fid; qid } ->
      hdr (tattach + 1);
      w16 b fid;
      w32 b qid.qpath;
      w32 b qid.qvers
    | Rclone { fid } ->
      hdr (tclone + 1);
      w16 b fid
    | Rwalk { fid; qid } ->
      hdr (twalk + 1);
      w16 b fid;
      w32 b qid.qpath;
      w32 b qid.qvers
    | Rclwalk { newfid; qid } ->
      hdr (tclwalk + 1);
      w16 b newfid;
      w32 b qid.qpath;
      w32 b qid.qvers
    | Ropen { fid; qid } ->
      hdr (topen + 1);
      w16 b fid;
      w32 b qid.qpath;
      w32 b qid.qvers
    | Rcreate { fid; qid } ->
      hdr (tcreate + 1);
      w16 b fid;
      w32 b qid.qpath;
      w32 b qid.qvers
    | Rread { data } ->
      hdr (tread + 1);
      wstr2 b data
    | Rwrite { count } ->
      hdr (twrite + 1);
      w16 b count
    | Rclunk { fid } ->
      hdr (tclunk + 1);
      w16 b fid
    | Rremove { fid } ->
      hdr (tremove + 1);
      w16 b fid
    | Rstat { stat } ->
      hdr (tstat + 1);
      Buffer.add_string b (encode_dir stat)
    | Rwstat { fid } ->
      hdr (twstat + 1);
      w16 b fid
    | Rflush -> hdr (tflush + 1)));
  Buffer.contents b

(* ---- top-level decode ---- *)

let decode s =
  need s 0 3 "header";
  let code = r8 s 0 in
  let tag = r16 s 1 in
  let o = 3 in
  let qid_at off = { qpath = r32 s off; qvers = r32 s (off + 4) } in
  if code = tnop then T (tag, Tnop)
  else if code = tnop + 1 then R (tag, Rnop)
  else if code = rerror then begin
    need s o errlen "Rerror";
    R (tag, Rerror (rerrstr s o))
  end
  else if code = tauth then begin
    need s o (2 + namelen) "Tauth";
    let ticket, _ = rstr2 s (o + 2 + namelen) "Tauth" in
    T (tag, Tauth { afid = r16 s o; uname = rname s (o + 2); ticket })
  end
  else if code = tauth + 1 then begin
    need s o 2 "Rauth";
    let ticket, _ = rstr2 s (o + 2) "Rauth" in
    R (tag, Rauth { afid = r16 s o; ticket })
  end
  else if code = tsession then begin
    let chal, _ = rstr2 s o "Tsession" in
    T (tag, Tsession { chal })
  end
  else if code = tsession + 1 then begin
    let chal, _ = rstr2 s o "Rsession" in
    R (tag, Rsession { chal })
  end
  else if code = tattach then begin
    need s o (2 + (2 * namelen)) "Tattach";
    T
      ( tag,
        Tattach
          {
            fid = r16 s o;
            uname = rname s (o + 2);
            aname = rname s (o + 2 + namelen);
          } )
  end
  else if code = tattach + 1 then begin
    need s o 10 "Rattach";
    R (tag, Rattach { fid = r16 s o; qid = qid_at (o + 2) })
  end
  else if code = tclone then begin
    need s o 4 "Tclone";
    T (tag, Tclone { fid = r16 s o; newfid = r16 s (o + 2) })
  end
  else if code = tclone + 1 then begin
    need s o 2 "Rclone";
    R (tag, Rclone { fid = r16 s o })
  end
  else if code = twalk then begin
    need s o (2 + namelen) "Twalk";
    T (tag, Twalk { fid = r16 s o; name = rname s (o + 2) })
  end
  else if code = twalk + 1 then begin
    need s o 10 "Rwalk";
    R (tag, Rwalk { fid = r16 s o; qid = qid_at (o + 2) })
  end
  else if code = tclwalk then begin
    need s o (4 + namelen) "Tclwalk";
    T
      ( tag,
        Tclwalk
          { fid = r16 s o; newfid = r16 s (o + 2); name = rname s (o + 4) } )
  end
  else if code = tclwalk + 1 then begin
    need s o 10 "Rclwalk";
    R (tag, Rclwalk { newfid = r16 s o; qid = qid_at (o + 2) })
  end
  else if code = topen then begin
    need s o 3 "Topen";
    match mode_of_int (r8 s (o + 2)) with
    | Some (mode, trunc) -> T (tag, Topen { fid = r16 s o; mode; trunc })
    | None -> raise (Bad_message "Topen mode")
  end
  else if code = topen + 1 then begin
    need s o 10 "Ropen";
    R (tag, Ropen { fid = r16 s o; qid = qid_at (o + 2) })
  end
  else if code = tcreate then begin
    need s o (2 + namelen + 5) "Tcreate";
    match mode_of_int (r8 s (o + 2 + namelen + 4)) with
    | Some (mode, _) ->
      T
        ( tag,
          Tcreate
            {
              fid = r16 s o;
              name = rname s (o + 2);
              perm = r32 s (o + 2 + namelen);
              mode;
            } )
    | None -> raise (Bad_message "Tcreate mode")
  end
  else if code = tcreate + 1 then begin
    need s o 10 "Rcreate";
    R (tag, Rcreate { fid = r16 s o; qid = qid_at (o + 2) })
  end
  else if code = tread then begin
    need s o 12 "Tread";
    T (tag, Tread { fid = r16 s o; offset = r64 s (o + 2); count = r16 s (o + 10) })
  end
  else if code = tread + 1 then begin
    let data, _ = rstr2 s o "Rread" in
    R (tag, Rread { data })
  end
  else if code = twrite then begin
    need s o 10 "Twrite";
    let data, _ = rstr2 s (o + 10) "Twrite" in
    T (tag, Twrite { fid = r16 s o; offset = r64 s (o + 2); data })
  end
  else if code = twrite + 1 then begin
    need s o 2 "Rwrite";
    R (tag, Rwrite { count = r16 s o })
  end
  else if code = tclunk then begin
    need s o 2 "Tclunk";
    T (tag, Tclunk { fid = r16 s o })
  end
  else if code = tclunk + 1 then begin
    need s o 2 "Rclunk";
    R (tag, Rclunk { fid = r16 s o })
  end
  else if code = tremove then begin
    need s o 2 "Tremove";
    T (tag, Tremove { fid = r16 s o })
  end
  else if code = tremove + 1 then begin
    need s o 2 "Rremove";
    R (tag, Rremove { fid = r16 s o })
  end
  else if code = tstat then begin
    need s o 2 "Tstat";
    T (tag, Tstat { fid = r16 s o })
  end
  else if code = tstat + 1 then R (tag, Rstat { stat = decode_dir s o })
  else if code = twstat then begin
    need s o 2 "Twstat";
    T (tag, Twstat { fid = r16 s o; stat = decode_dir s (o + 2) })
  end
  else if code = twstat + 1 then begin
    need s o 2 "Rwstat";
    R (tag, Rwstat { fid = r16 s o })
  end
  else if code = tflush then begin
    need s o 2 "Tflush";
    T (tag, Tflush { oldtag = r16 s o })
  end
  else if code = tflush + 1 then R (tag, Rflush)
  else raise (Bad_message (Printf.sprintf "unknown type %d" code))

let decode_opt s =
  match decode s with
  | msg -> Ok msg
  | exception Bad_message e -> Error e

let message_name = function
  | T (_, t) -> (
    match t with
    | Tnop -> "Tnop"
    | Tauth _ -> "Tauth"
    | Tsession _ -> "Tsession"
    | Tattach _ -> "Tattach"
    | Tclone _ -> "Tclone"
    | Twalk _ -> "Twalk"
    | Tclwalk _ -> "Tclwalk"
    | Topen _ -> "Topen"
    | Tcreate _ -> "Tcreate"
    | Tread _ -> "Tread"
    | Twrite _ -> "Twrite"
    | Tclunk _ -> "Tclunk"
    | Tremove _ -> "Tremove"
    | Tstat _ -> "Tstat"
    | Twstat _ -> "Twstat"
    | Tflush _ -> "Tflush")
  | R (_, r) -> (
    match r with
    | Rnop -> "Rnop"
    | Rerror _ -> "Rerror"
    | Rauth _ -> "Rauth"
    | Rsession _ -> "Rsession"
    | Rattach _ -> "Rattach"
    | Rclone _ -> "Rclone"
    | Rwalk _ -> "Rwalk"
    | Rclwalk _ -> "Rclwalk"
    | Ropen _ -> "Ropen"
    | Rcreate _ -> "Rcreate"
    | Rread _ -> "Rread"
    | Rwrite _ -> "Rwrite"
    | Rclunk _ -> "Rclunk"
    | Rremove _ -> "Rremove"
    | Rstat _ -> "Rstat"
    | Rwstat _ -> "Rwstat"
    | Rflush -> "Rflush")

module Frame = struct
  let wrap s =
    let n = String.length s in
    let b = Bytes.create (n + 2) in
    Bytes.set b 0 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set b 1 (Char.chr (n land 0xff));
    Bytes.blit_string s 0 b 2 n;
    Bytes.to_string b

  type splitter = { mutable pending : string }

  let splitter () = { pending = "" }

  let feed sp chunk =
    sp.pending <- sp.pending ^ chunk;
    let out = ref [] in
    let continue_ = ref true in
    while !continue_ do
      let p = sp.pending in
      if String.length p < 2 then continue_ := false
      else begin
        let n = (Char.code p.[0] lsl 8) lor Char.code p.[1] in
        if String.length p < 2 + n then continue_ := false
        else begin
          out := String.sub p 2 n :: !out;
          sp.pending <- String.sub p (2 + n) (String.length p - 2 - n)
        end
      end
    done;
    List.rev !out
end
