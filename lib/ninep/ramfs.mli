(** An in-memory hierarchical file server — the stand-in for the
    paper's disk file servers.  Full 9P semantics: directories, create,
    remove, stat/wstat (rename), permission bits.

    [qid.vers] is bumped on {e every} modification — each write, each
    truncating open, each wstat, and on a directory for each
    create/remove inside it.  Caches (notably {!Cfs}) rely on this:
    a changed version on any reply qid is the signal that cached data
    for the file is stale. *)

type t
type node

val make : ?owner:string -> name:string -> unit -> t
(** An empty tree owned by [owner] (default ["bootes"]). *)

val fs : t -> node Server.fs
(** The server-framework view; pass to {!Server.serve}. *)

(** Direct (local) manipulation, for seeding trees in tests and
    examples. *)

val mkdir : t -> string -> unit
(** [mkdir t "/a/b"] — creates intermediate directories too. *)

val add_file : t -> string -> string -> unit
(** [add_file t "/a/b/f" contents]. *)

val read_file : t -> string -> string option
val exists : t -> string -> bool
