type entry = {
  mutable e_name : string;
  mutable e_qid : Fcall.qid;
  mutable e_mode : int32;  (* includes Fcall.dmdir for directories *)
  mutable e_uid : string;
  mutable e_gid : string;
  mutable e_mtime : int32;
  mutable e_atime : int32;
  e_kind : kind;
  mutable e_parent : entry option;  (* None for the root *)
}

and kind = Dir of entry list ref | File of Buffer.t

type t = { root : entry; owner : string; fsname : string; mutable next_path : int32 }

(* a fid's state: which entry, and whether it has been opened *)
type node = { mutable n_entry : entry; mutable n_open : bool }


let make ?(owner = "bootes") ~name () =
  let root =
    {
      e_name = "/";
      e_qid = { Fcall.qpath = Int32.logor Fcall.qdir_bit 1l; qvers = 0l };
      e_mode = Int32.logor Fcall.dmdir 0o775l;
      e_uid = owner;
      e_gid = owner;
      e_mtime = 0l;
      e_atime = 0l;
      e_kind = Dir (ref []);
      e_parent = None;
    }
  in
  { root; owner; fsname = name; next_path = 2l }

let alloc_qid t ~dir =
  let p = t.next_path in
  t.next_path <- Int32.add p 1l;
  { Fcall.qpath = (if dir then Int32.logor Fcall.qdir_bit p else p); qvers = 0l }

let bump e = e.e_qid <- { e.e_qid with Fcall.qvers = Int32.add e.e_qid.Fcall.qvers 1l }

let length_of e =
  match e.e_kind with
  | Dir children -> Int64.of_int (List.length !children * Fcall.dirlen)
  | File b -> Int64.of_int (Buffer.length b)

let stat_of e =
  {
    Fcall.d_name = e.e_name;
    d_uid = e.e_uid;
    d_gid = e.e_gid;
    d_qid = e.e_qid;
    d_mode = e.e_mode;
    d_atime = e.e_atime;
    d_mtime = e.e_mtime;
    d_length = length_of e;
    d_type = Char.code 'r';
    d_dev = 0;
  }

let lookup dir name =
  match dir.e_kind with
  | File _ -> None
  | Dir children -> List.find_opt (fun e -> e.e_name = name) !children

let fs t =
  {
    Server.fs_name = t.fsname;
    fs_attach =
      (fun ~uname ~aname:_ ->
        ignore uname;
        Ok { n_entry = t.root; n_open = false });
    fs_qid = (fun n -> n.n_entry.e_qid);
    fs_walk =
      (fun n name ->
        if n.n_open then Error "fid is open"
        else if name = ".." then
          match n.n_entry.e_parent with
          | Some p ->
            n.n_entry <- p;
            Ok n
          | None -> Ok n (* .. at root is root *)
        else
          match lookup n.n_entry name with
          | Some e ->
            n.n_entry <- e;
            Ok n
          | None -> Error "file does not exist");
    fs_open =
      (fun n mode ~trunc ->
        if n.n_open then Error "already open"
        else begin
          (match (mode, n.n_entry.e_kind) with
          | (Fcall.Owrite | Fcall.Ordwr), Dir _ ->
            Error "is a directory"
          | _, File b when trunc ->
            Buffer.clear b;
            bump n.n_entry;
            Ok ()
          | _, (Dir _ | File _) -> Ok ())
          |> Result.map (fun () -> n.n_open <- true)
        end);
    fs_read =
      (fun n ~offset ~count ->
        if not n.n_open then Error "not open"
        else
          match n.n_entry.e_kind with
          | Dir children ->
            Ok
              (Server.dir_data
                 (List.map stat_of (List.rev !children))
                 ~offset ~count)
          | File b ->
            Ok (Server.slice (Buffer.contents b) ~offset ~count));
    fs_write =
      (fun n ~offset ~data ->
        if not n.n_open then Error "not open"
        else
          match n.n_entry.e_kind with
          | Dir _ -> Error "is a directory"
          | File b ->
            let off = Int64.to_int offset in
            let cur = Buffer.contents b in
            let curlen = String.length cur in
            if off > curlen then Error "write past end of file"
            else begin
              Buffer.clear b;
              Buffer.add_string b (String.sub cur 0 off);
              Buffer.add_string b data;
              let tail = off + String.length data in
              if tail < curlen then
                Buffer.add_string b (String.sub cur tail (curlen - tail));
              bump n.n_entry;
              Ok (String.length data)
            end);
    fs_create =
      (fun n ~name ~perm mode ->
        ignore mode;
        match n.n_entry.e_kind with
        | File _ -> Error "not a directory"
        | Dir children ->
          if lookup n.n_entry name <> None then Error "file exists"
          else if name = "" || name = "." || name = ".." then
            Error "bad file name"
          else begin
            let dir = Int32.logand perm Fcall.dmdir <> 0l in
            let e =
              {
                e_name = name;
                e_qid = alloc_qid t ~dir;
                e_mode = perm;
                e_uid = t.owner;
                e_gid = t.owner;
                e_mtime = 0l;
                e_atime = 0l;
                e_kind = (if dir then Dir (ref []) else File (Buffer.create 64));
                e_parent = Some n.n_entry;
              }
            in
            children := e :: !children;
            bump n.n_entry;
            Ok { n_entry = e; n_open = true }
          end);
    fs_remove =
      (fun n ->
        let e = n.n_entry in
        match e.e_parent with
        | None -> Error "cannot remove root"
        | Some parent -> (
          match e.e_kind with
          | Dir children when !children <> [] -> Error "directory not empty"
          | Dir _ | File _ -> (
            match parent.e_kind with
            | Dir siblings ->
              siblings := List.filter (fun x -> x != e) !siblings;
              bump parent;
              Ok ()
            | File _ -> Error "bad parent")));
    fs_stat = (fun n -> Ok (stat_of n.n_entry));
    fs_wstat =
      (fun n d ->
        let e = n.n_entry in
        (* rename *)
        if d.Fcall.d_name <> "" && d.Fcall.d_name <> e.e_name then begin
          match e.e_parent with
          | None -> ()
          | Some parent ->
            if lookup parent d.Fcall.d_name <> None then ()
            else e.e_name <- d.Fcall.d_name
        end;
        if d.Fcall.d_mode <> -1l then
          e.e_mode <-
            Int32.logor
              (Int32.logand e.e_mode Fcall.dmdir)
              (Int32.logand d.Fcall.d_mode (Int32.lognot Fcall.dmdir));
        if d.Fcall.d_mtime <> -1l then e.e_mtime <- d.Fcall.d_mtime;
        (* wstat is a modification like any other: cache validators
           keyed on qid.vers must see it *)
        bump e;
        Ok ());
    fs_clunk = (fun _ -> ());
    fs_clone = (fun n -> { n_entry = n.n_entry; n_open = false });
  }

(* ---- direct manipulation ---- *)

let split_path p = List.filter (fun s -> s <> "") (String.split_on_char '/' p)

let rec find_entry e = function
  | [] -> Some e
  | name :: rest -> (
    match lookup e name with
    | Some child -> find_entry child rest
    | None -> None)

let mkdir t path =
  let rec go e = function
    | [] -> ()
    | name :: rest ->
      let child =
        match lookup e name with
        | Some c -> c
        | None -> (
          match e.e_kind with
          | File _ -> invalid_arg "Ramfs.mkdir: file in path"
          | Dir children ->
            let c =
              {
                e_name = name;
                e_qid = alloc_qid t ~dir:true;
                e_mode = Int32.logor Fcall.dmdir 0o775l;
                e_uid = t.owner;
                e_gid = t.owner;
                e_mtime = 0l;
                e_atime = 0l;
                e_kind = Dir (ref []);
                e_parent = Some e;
              }
            in
            children := c :: !children;
            c)
      in
      go child rest
  in
  go t.root (split_path path)

let add_file t path contents =
  match List.rev (split_path path) with
  | [] -> invalid_arg "Ramfs.add_file: empty path"
  | name :: rev_dirs ->
    let dirs = List.rev rev_dirs in
    mkdir t (String.concat "/" dirs);
    (match find_entry t.root dirs with
    | Some dir -> (
      match dir.e_kind with
      | File _ -> invalid_arg "Ramfs.add_file: not a directory"
      | Dir children ->
        (match lookup dir name with
        | Some old -> children := List.filter (fun x -> x != old) !children
        | None -> ());
        let b = Buffer.create (String.length contents) in
        Buffer.add_string b contents;
        let e =
          {
            e_name = name;
            e_qid = alloc_qid t ~dir:false;
            e_mode = 0o664l;
            e_uid = t.owner;
            e_gid = t.owner;
            e_mtime = 0l;
            e_atime = 0l;
            e_kind = File b;
            e_parent = Some dir;
          }
        in
        children := e :: !children)
    | None -> invalid_arg "Ramfs.add_file: missing directory")

let read_file t path =
  match find_entry t.root (split_path path) with
  | Some { e_kind = File b; _ } -> Some (Buffer.contents b)
  | Some { e_kind = Dir _; _ } | None -> None

let exists t path = find_entry t.root (split_path path) <> None
