(** 9P message types and their binary marshalling (paper section 2.1).

    "The protocol consists of 17 messages describing operations on
    files and directories": the sixteen request operations — nop,
    session, attach, clone, walk, clwalk, open, create, read, write,
    clunk, remove, stat, wstat, flush, auth — plus the error response.
    This is the 1993-era dialect (today called 9P1): fixed-size fields,
    28-byte names, 116-byte stat entries, 8 KiB data payloads.

    9P "relies on several properties of the underlying transport
    protocol.  It assumes messages arrive reliably and in sequence and
    that delimiters between messages are preserved."  One marshalled
    message is exactly one transport message on IL or URP; for TCP (no
    delimiters) use {!Frame}. *)

val namelen : int
(** 28 — fixed file-name field width. *)

val errlen : int
(** 64 — fixed error-string width. *)

val dirlen : int
(** 116 — marshalled stat entry size; directories read as a sequence
    of these. *)

val maxfdata : int
(** 8192 — largest read/write payload. *)

val maxmsg : int
(** Largest possible marshalled message. *)

type qid = { qpath : int32; qvers : int32 }
(** Unique file identity on a server.  The top bit of [qpath]
    ({!qdir_bit}) marks a directory. *)

val qdir_bit : int32
val qid_is_dir : qid -> bool

(** Open/create modes. *)
type mode = Oread | Owrite | Ordwr | Oexec

val mode_trunc : int
(** OR of the wire mode byte meaning truncate (0x10). *)

val mode_to_int : ?trunc:bool -> mode -> int
val mode_of_int : int -> (mode * bool) option

type dir = {
  d_name : string;
  d_uid : string;
  d_gid : string;
  d_qid : qid;
  d_mode : int32;  (** permission bits; {!dmdir} marks directories *)
  d_atime : int32;
  d_mtime : int32;
  d_length : int64;
  d_type : int;  (** device type character *)
  d_dev : int;
}

val dmdir : int32
(** Directory bit in [d_mode]. *)

val pp_dir : Format.formatter -> dir -> unit
(** One [ls -l]-style line, as in the paper's examples. *)

type tmsg =
  | Tnop
  | Tauth of { afid : int; uname : string; ticket : string }
  | Tsession of { chal : string }
  | Tattach of { fid : int; uname : string; aname : string }
  | Tclone of { fid : int; newfid : int }
  | Twalk of { fid : int; name : string }
  | Tclwalk of { fid : int; newfid : int; name : string }
      (** clone+walk in one message — an optimization the mount driver
          uses heavily *)
  | Topen of { fid : int; mode : mode; trunc : bool }
  | Tcreate of { fid : int; name : string; perm : int32; mode : mode }
  | Tread of { fid : int; offset : int64; count : int }
  | Twrite of { fid : int; offset : int64; data : string }
  | Tclunk of { fid : int }
  | Tremove of { fid : int }
  | Tstat of { fid : int }
  | Twstat of { fid : int; stat : dir }
  | Tflush of { oldtag : int }

type rmsg =
  | Rnop
  | Rerror of string
  | Rauth of { afid : int; ticket : string }
  | Rsession of { chal : string }
  | Rattach of { fid : int; qid : qid }
  | Rclone of { fid : int }
  | Rwalk of { fid : int; qid : qid }
  | Rclwalk of { newfid : int; qid : qid }
  | Ropen of { fid : int; qid : qid }
  | Rcreate of { fid : int; qid : qid }
  | Rread of { data : string }
  | Rwrite of { count : int }
  | Rclunk of { fid : int }
  | Rremove of { fid : int }
  | Rstat of { stat : dir }
  | Rwstat of { fid : int }
  | Rflush

type t = T of int * tmsg | R of int * rmsg  (** tag, message *)

exception Bad_message of string

val encode : t -> string
val decode : string -> t
(** @raise Bad_message on malformed input. *)

val decode_opt : string -> (t, string) result
(** {!decode} that traps {!Bad_message}: malformed input is an [Error],
    never an exception — the form kernel code reading a network should
    use. *)

val encode_dir : dir -> string
(** The 116-byte stat format (also the unit of directory reads). *)

val decode_dir : string -> int -> dir
(** [decode_dir s off].  @raise Bad_message. *)

val message_name : t -> string
(** e.g. ["Tattach"] — for traces. *)

val tmsg_name : tmsg -> string
(** e.g. ["Tattach"], without needing a tag. *)

module Frame : sig
  (** Delimiter reconstruction for byte-stream transports (TCP): each
      message is prefixed with a 2-byte big-endian length, and a
      stateful splitter reassembles messages from arbitrary byte
      chunks. *)

  val wrap : string -> string

  type splitter

  val splitter : unit -> splitter

  val feed : splitter -> string -> string list
  (** Returns any complete messages (without prefixes). *)
end
