exception Err of string

type fid = int

let no_fid = -1

type t = {
  eng : Sim.Engine.t;
  tr : Transport.t;
  waiting : (int, Fcall.rmsg -> unit) Hashtbl.t;
  (* every fid the server still holds for us: allocated on attach /
     clone / clwalk, dropped on clunk / remove.  Whatever is left when
     the connection dies is leaked on the server side — the counter the
     chain scenarios watch. *)
  live_fids : (int, unit) Hashtbl.t;
  mutable death_hooks : (int -> unit) list;
  mutable next_tag : int;
  mutable next_fid : int;
  mutable dead : bool;
  mutable death_done : bool;
}

let alive t = not t.dead

let open_fids t = Hashtbl.length t.live_fids

let on_death t f = t.death_hooks <- t.death_hooks @ [ f ]

(* the one-shot death path: every waiter learns the connection hung
   up, and the fids the server still held for us are accounted as
   leaked (both globally and through any registered hooks — the mount
   driver surfaces them in its per-mount ledger) *)
let fail_all t =
  let ws = Hashtbl.fold (fun _ w acc -> w :: acc) t.waiting [] in
  Hashtbl.reset t.waiting;
  List.iter (fun w -> w (Fcall.Rerror "connection hung up")) ws;
  if not t.death_done then begin
    t.death_done <- true;
    let leaked = Hashtbl.length t.live_fids in
    if leaked > 0 then begin
      (match Sim.Engine.obs t.eng with
      | Some tr -> Obs.Trace.bump tr "9p.fids_leaked" leaked
      | None -> ());
      List.iter (fun f -> f leaked) t.death_hooks
    end
  end

let make eng tr =
  let t =
    { eng; tr; waiting = Hashtbl.create 17; live_fids = Hashtbl.create 17;
      death_hooks = []; next_tag = 1; next_fid = 1; dead = false;
      death_done = false }
  in
  let _demux =
    Sim.Proc.spawn eng ~name:"9p-demux" (fun () ->
        let rec loop () =
          match tr.Transport.t_recv () with
          | None ->
            t.dead <- true;
            fail_all t
          | Some raw ->
            (match Fcall.decode raw with
            | Fcall.R (tag, r) -> (
              match Hashtbl.find_opt t.waiting tag with
              | Some waiter ->
                Hashtbl.remove t.waiting tag;
                waiter r
              | None -> () (* flushed or stray *))
            | Fcall.T (_, _) -> () (* clients ignore requests *)
            | exception Fcall.Bad_message _ -> ());
            loop ()
        in
        loop ())
  in
  t

let alloc_tag t =
  let tag = t.next_tag in
  t.next_tag <- (if tag >= 0xfffe then 1 else tag + 1);
  tag

let rpc t tmsg =
  if t.dead then raise (Err "connection hung up");
  let tag = alloc_tag t in
  let sp =
    match Sim.Engine.obs t.eng with
    | None -> Obs.Span.none
    | Some tr -> Obs.Span.enter tr ~layer:"9p" ("9p." ^ Fcall.tmsg_name tmsg)
  in
  (match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Event.Fcall
         { role = `T; tag; msg = Fcall.tmsg_name tmsg; latency = 0. }));
  let t0 = Sim.Engine.now t.eng in
  t.tr.Transport.t_send (Fcall.encode (Fcall.T (tag, tmsg)));
  let r =
    try
      Sim.Proc.suspend ~register:(fun ~resume ~abort:_ ->
          Hashtbl.replace t.waiting tag resume;
          fun () -> Hashtbl.remove t.waiting tag)
    with e ->
      (* the calling process was killed while waiting (e.g. the
         server relaying this call saw a Tflush): tell our own server
         to forget the tag before unwinding, so the flush propagates
         hop by hop down an import chain.  Fire-and-forget — we are
         mid-abort and must not block; the Rflush lands on a tag
         nobody waits for. *)
      if not t.dead then begin
        (try
           t.tr.Transport.t_send
             (Fcall.encode (Fcall.T (alloc_tag t, Fcall.Tflush { oldtag = tag })))
         with _ -> ());
        match Sim.Engine.obs t.eng with
        | Some tr -> Obs.Trace.bump tr "9p.flush_sent" 1
        | None -> ()
      end;
      raise e
  in
  (match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr ->
    let name = Fcall.tmsg_name tmsg in
    let dt = Sim.Engine.now t.eng -. t0 in
    Obs.Trace.emit tr
      (Obs.Event.Fcall { role = `R; tag; msg = name; latency = dt });
    Obs.Trace.observe tr ("9p.rpc." ^ name) dt;
    Obs.Span.exit tr sp);
  match r with Fcall.Rerror e -> raise (Err e) | r -> r

let bad _t what = raise (Err (Printf.sprintf "9p: unexpected reply to %s" what))

let session t =
  match rpc t (Fcall.Tsession { chal = "" }) with
  | Fcall.Rsession _ -> ()
  | _ -> bad t "Tsession"

let alloc_fid t =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  fid

let attach_q t ~uname ~aname =
  let fid = alloc_fid t in
  match rpc t (Fcall.Tattach { fid; uname; aname }) with
  | Fcall.Rattach { qid; _ } ->
    Hashtbl.replace t.live_fids fid ();
    (fid, qid)
  | _ -> bad t "Tattach"

let attach t ~uname ~aname = fst (attach_q t ~uname ~aname)

let clone t fid =
  let newfid = alloc_fid t in
  match rpc t (Fcall.Tclone { fid; newfid }) with
  | Fcall.Rclone _ ->
    Hashtbl.replace t.live_fids newfid ();
    newfid
  | _ -> bad t "Tclone"

let walk t fid name =
  match rpc t (Fcall.Twalk { fid; name }) with
  | Fcall.Rwalk { qid; _ } -> qid
  | _ -> bad t "Twalk"

let clunk t fid =
  match rpc t (Fcall.Tclunk { fid }) with
  | Fcall.Rclunk _ -> Hashtbl.remove t.live_fids fid
  | _ -> bad t "Tclunk"
  | exception Err e ->
    (* a clunk the server answered with an error still clunks; only a
       dead connection truly leaks the fid *)
    if not t.dead then Hashtbl.remove t.live_fids fid;
    raise (Err e)

let walk_path t fid names =
  match names with
  | [] -> clone t fid
  | first :: rest -> (
    let newfid = alloc_fid t in
    match rpc t (Fcall.Tclwalk { fid; newfid; name = first }) with
    | Fcall.Rclwalk _ -> (
      Hashtbl.replace t.live_fids newfid ();
      try
        List.iter (fun name -> ignore (walk t newfid name)) rest;
        newfid
      with e ->
        (try clunk t newfid with Err _ -> ());
        raise e)
    | _ -> bad t "Tclwalk")

let open_ t fid ?(trunc = false) mode =
  match rpc t (Fcall.Topen { fid; mode; trunc }) with
  | Fcall.Ropen { qid; _ } -> qid
  | _ -> bad t "Topen"

let create t fid ~name ~perm mode =
  match rpc t (Fcall.Tcreate { fid; name; perm; mode }) with
  | Fcall.Rcreate { qid; _ } -> qid
  | _ -> bad t "Tcreate"

let read t fid ~offset ~count =
  match rpc t (Fcall.Tread { fid; offset; count }) with
  | Fcall.Rread { data } -> data
  | _ -> bad t "Tread"

let write t fid ~offset data =
  match rpc t (Fcall.Twrite { fid; offset; data }) with
  | Fcall.Rwrite { count } -> count
  | _ -> bad t "Twrite"

let remove t fid =
  (* remove clunks whether or not it succeeds *)
  match rpc t (Fcall.Tremove { fid }) with
  | Fcall.Rremove _ -> Hashtbl.remove t.live_fids fid
  | _ -> bad t "Tremove"
  | exception Err e ->
    if not t.dead then Hashtbl.remove t.live_fids fid;
    raise (Err e)

let stat t fid =
  match rpc t (Fcall.Tstat { fid }) with
  | Fcall.Rstat { stat } -> stat
  | _ -> bad t "Tstat"

let wstat t fid d =
  match rpc t (Fcall.Twstat { fid; stat = d }) with
  | Fcall.Rwstat _ -> ()
  | _ -> bad t "Twstat"

let flush t ~oldtag =
  match rpc t (Fcall.Tflush { oldtag }) with
  | Fcall.Rflush -> ()
  | _ -> bad t "Tflush"

let read_dir t fid =
  let rec go off acc =
    let data = read t fid ~offset:(Int64.of_int off) ~count:Fcall.maxfdata in
    if data = "" then List.rev acc
    else begin
      let n = String.length data / Fcall.dirlen in
      let entries = List.init n (fun i -> Fcall.decode_dir data (i * Fcall.dirlen)) in
      go (off + String.length data) (List.rev_append entries acc)
    end
  in
  go 0 []

let read_all t fid =
  let buf = Buffer.create 256 in
  let rec go off =
    let data = read t fid ~offset:(Int64.of_int off) ~count:Fcall.maxfdata in
    if data <> "" then begin
      Buffer.add_string buf data;
      go (off + String.length data)
    end
  in
  go 0;
  Buffer.contents buf

let hangup t =
  if not t.dead then begin
    t.dead <- true;
    t.tr.Transport.t_close ();
    fail_all t
  end
