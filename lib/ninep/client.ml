exception Err of string

type fid = int

type t = {
  eng : Sim.Engine.t;
  tr : Transport.t;
  waiting : (int, Fcall.rmsg -> unit) Hashtbl.t;
  mutable next_tag : int;
  mutable next_fid : int;
  mutable dead : bool;
}

let alive t = not t.dead

let fail_all t =
  let ws = Hashtbl.fold (fun _ w acc -> w :: acc) t.waiting [] in
  Hashtbl.reset t.waiting;
  List.iter (fun w -> w (Fcall.Rerror "connection hung up")) ws

let make eng tr =
  let t =
    { eng; tr; waiting = Hashtbl.create 17; next_tag = 1; next_fid = 1;
      dead = false }
  in
  let _demux =
    Sim.Proc.spawn eng ~name:"9p-demux" (fun () ->
        let rec loop () =
          match tr.Transport.t_recv () with
          | None ->
            t.dead <- true;
            fail_all t
          | Some raw ->
            (match Fcall.decode raw with
            | Fcall.R (tag, r) -> (
              match Hashtbl.find_opt t.waiting tag with
              | Some waiter ->
                Hashtbl.remove t.waiting tag;
                waiter r
              | None -> () (* flushed or stray *))
            | Fcall.T (_, _) -> () (* clients ignore requests *)
            | exception Fcall.Bad_message _ -> ());
            loop ()
        in
        loop ())
  in
  t

let alloc_tag t =
  let tag = t.next_tag in
  t.next_tag <- (if tag >= 0xfffe then 1 else tag + 1);
  tag

let rpc t tmsg =
  if t.dead then raise (Err "connection hung up");
  let tag = alloc_tag t in
  let sp =
    match Sim.Engine.obs t.eng with
    | None -> Obs.Span.none
    | Some tr -> Obs.Span.enter tr ~layer:"9p" ("9p." ^ Fcall.tmsg_name tmsg)
  in
  (match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Event.Fcall
         { role = `T; tag; msg = Fcall.tmsg_name tmsg; latency = 0. }));
  let t0 = Sim.Engine.now t.eng in
  t.tr.Transport.t_send (Fcall.encode (Fcall.T (tag, tmsg)));
  let r =
    Sim.Proc.suspend ~register:(fun ~resume ~abort:_ ->
        Hashtbl.replace t.waiting tag resume;
        fun () -> Hashtbl.remove t.waiting tag)
  in
  (match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr ->
    let name = Fcall.tmsg_name tmsg in
    let dt = Sim.Engine.now t.eng -. t0 in
    Obs.Trace.emit tr
      (Obs.Event.Fcall { role = `R; tag; msg = name; latency = dt });
    Obs.Trace.observe tr ("9p.rpc." ^ name) dt;
    Obs.Span.exit tr sp);
  match r with Fcall.Rerror e -> raise (Err e) | r -> r

let bad _t what = raise (Err (Printf.sprintf "9p: unexpected reply to %s" what))

let session t =
  match rpc t (Fcall.Tsession { chal = "" }) with
  | Fcall.Rsession _ -> ()
  | _ -> bad t "Tsession"

let alloc_fid t =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  fid

let attach_q t ~uname ~aname =
  let fid = alloc_fid t in
  match rpc t (Fcall.Tattach { fid; uname; aname }) with
  | Fcall.Rattach { qid; _ } -> (fid, qid)
  | _ -> bad t "Tattach"

let attach t ~uname ~aname = fst (attach_q t ~uname ~aname)

let clone t fid =
  let newfid = alloc_fid t in
  match rpc t (Fcall.Tclone { fid; newfid }) with
  | Fcall.Rclone _ -> newfid
  | _ -> bad t "Tclone"

let walk t fid name =
  match rpc t (Fcall.Twalk { fid; name }) with
  | Fcall.Rwalk { qid; _ } -> qid
  | _ -> bad t "Twalk"

let clunk t fid =
  match rpc t (Fcall.Tclunk { fid }) with
  | Fcall.Rclunk _ -> ()
  | _ -> bad t "Tclunk"

let walk_path t fid names =
  match names with
  | [] -> clone t fid
  | first :: rest -> (
    let newfid = alloc_fid t in
    match rpc t (Fcall.Tclwalk { fid; newfid; name = first }) with
    | Fcall.Rclwalk _ -> (
      try
        List.iter (fun name -> ignore (walk t newfid name)) rest;
        newfid
      with e ->
        (try clunk t newfid with Err _ -> ());
        raise e)
    | _ -> bad t "Tclwalk")

let open_ t fid ?(trunc = false) mode =
  match rpc t (Fcall.Topen { fid; mode; trunc }) with
  | Fcall.Ropen { qid; _ } -> qid
  | _ -> bad t "Topen"

let create t fid ~name ~perm mode =
  match rpc t (Fcall.Tcreate { fid; name; perm; mode }) with
  | Fcall.Rcreate { qid; _ } -> qid
  | _ -> bad t "Tcreate"

let read t fid ~offset ~count =
  match rpc t (Fcall.Tread { fid; offset; count }) with
  | Fcall.Rread { data } -> data
  | _ -> bad t "Tread"

let write t fid ~offset data =
  match rpc t (Fcall.Twrite { fid; offset; data }) with
  | Fcall.Rwrite { count } -> count
  | _ -> bad t "Twrite"

let remove t fid =
  match rpc t (Fcall.Tremove { fid }) with
  | Fcall.Rremove _ -> ()
  | _ -> bad t "Tremove"

let stat t fid =
  match rpc t (Fcall.Tstat { fid }) with
  | Fcall.Rstat { stat } -> stat
  | _ -> bad t "Tstat"

let wstat t fid d =
  match rpc t (Fcall.Twstat { fid; stat = d }) with
  | Fcall.Rwstat _ -> ()
  | _ -> bad t "Twstat"

let flush t ~oldtag =
  match rpc t (Fcall.Tflush { oldtag }) with
  | Fcall.Rflush -> ()
  | _ -> bad t "Tflush"

let read_dir t fid =
  let rec go off acc =
    let data = read t fid ~offset:(Int64.of_int off) ~count:Fcall.maxfdata in
    if data = "" then List.rev acc
    else begin
      let n = String.length data / Fcall.dirlen in
      let entries = List.init n (fun i -> Fcall.decode_dir data (i * Fcall.dirlen)) in
      go (off + String.length data) (List.rev_append entries acc)
    end
  in
  go 0 []

let read_all t fid =
  let buf = Buffer.create 256 in
  let rec go off =
    let data = read t fid ~offset:(Int64.of_int off) ~count:Fcall.maxfdata in
    if data <> "" then begin
      Buffer.add_string buf data;
      go (off + String.length data)
    end
  in
  go 0;
  Buffer.contents buf

let hangup t =
  if not t.dead then begin
    t.dead <- true;
    t.tr.Transport.t_close ();
    fail_all t
  end
