let src = Logs.Src.create "9psrv" ~doc:"9P server framework"

module Log = (val Logs.src_log src : Logs.LOG)

type 'n fs = {
  fs_name : string;
  fs_attach : uname:string -> aname:string -> ('n, string) result;
  fs_qid : 'n -> Fcall.qid;
  fs_walk : 'n -> string -> ('n, string) result;
  fs_open : 'n -> Fcall.mode -> trunc:bool -> (unit, string) result;
  fs_read : 'n -> offset:int64 -> count:int -> (string, string) result;
  fs_write : 'n -> offset:int64 -> data:string -> (int, string) result;
  fs_create :
    'n -> name:string -> perm:int32 -> Fcall.mode -> ('n, string) result;
  fs_remove : 'n -> (unit, string) result;
  fs_stat : 'n -> (Fcall.dir, string) result;
  fs_wstat : 'n -> Fcall.dir -> (unit, string) result;
  fs_clunk : 'n -> unit;
  fs_clone : 'n -> 'n;
}

let read_only_err = "permission denied"

let slice s ~offset ~count =
  let len = String.length s in
  let off = Int64.to_int offset in
  if off >= len || off < 0 then ""
  else String.sub s off (min count (len - off))

let dir_data entries ~offset ~count =
  let data = String.concat "" (List.map Fcall.encode_dir entries) in
  (* round down to whole entries *)
  let count = count - (count mod Fcall.dirlen) in
  let off = Int64.to_int offset in
  if off mod Fcall.dirlen <> 0 then ""
  else slice data ~offset:(Int64.of_int off) ~count

type auth_hook = uname:string -> challenge:string -> ticket:string -> bool

let serve ?(threaded = false) ?auth eng fs tr =
  Sim.Proc.spawn eng ~name:("9psrv:" ^ fs.fs_name) (fun () ->
      let fids : (int, 'n) Hashtbl.t = Hashtbl.create 17 in
      let challenge = ref "" in
      let authenticated : (string, unit) Hashtbl.t = Hashtbl.create 7 in
      let new_challenge () =
        challenge :=
          Printf.sprintf "%08x%08x"
            (Random.State.int (Sim.Engine.random eng) 0x3fffffff)
            (Random.State.int (Sim.Engine.random eng) 0x3fffffff);
        Hashtbl.reset authenticated
      in
      let clear_fids () =
        Hashtbl.iter (fun _ n -> fs.fs_clunk n) fids;
        Hashtbl.reset fids
      in
      let reply tag r = tr.Transport.t_send (Fcall.encode (Fcall.R (tag, r))) in
      (* threaded mode: the handler process still working on each tag,
         so a Tflush can abort exactly the request it names *)
      let inflight : (int, Sim.Proc.t) Hashtbl.t = Hashtbl.create 17 in
      let handle tag (t : Fcall.tmsg) =
        let err e = reply tag (Fcall.Rerror e) in
        let with_fid fid k =
          match Hashtbl.find_opt fids fid with
          | Some node -> k node
          | None -> err "unknown fid"
        in
        match t with
        | Fcall.Tnop -> reply tag Fcall.Rnop
        | Fcall.Tflush { oldtag } ->
          (* non-threaded servers serve requests in order, so nothing
             can be pending; threaded ones abort the in-flight handler.
             Either way Rflush guarantees the old request will never be
             answered. *)
          (match Hashtbl.find_opt inflight oldtag with
          | Some p when Sim.Proc.alive p ->
            Sim.Proc.kill p;
            (match Sim.Engine.obs eng with
            | Some obs_tr -> Obs.Trace.bump obs_tr "9p.flush_killed" 1
            | None -> ())
          | Some _ | None -> ());
          reply tag Fcall.Rflush
        | Fcall.Tsession _ ->
          clear_fids ();
          (match auth with
          | Some _ -> new_challenge ()
          | None -> ());
          reply tag (Fcall.Rsession { chal = !challenge })
        | Fcall.Tauth { afid; uname; ticket } -> (
          match auth with
          | None ->
            (* no policy: authentication trivially succeeds *)
            reply tag (Fcall.Rauth { afid; ticket = "ok" })
          | Some hook ->
            if hook ~uname ~challenge:!challenge ~ticket then begin
              Hashtbl.replace authenticated uname ();
              reply tag (Fcall.Rauth { afid; ticket = "ok" })
            end
            else err "authentication failed")
        | Fcall.Tattach { fid; uname; aname } -> (
          if Hashtbl.mem fids fid then err "fid in use"
          else if
            (match auth with
            | Some _ -> not (Hashtbl.mem authenticated uname)
            | None -> false)
          then err "authentication required"
          else
            match fs.fs_attach ~uname ~aname with
            | Ok node ->
              Hashtbl.replace fids fid node;
              reply tag (Fcall.Rattach { fid; qid = fs.fs_qid node })
            | Error e -> err e)
        | Fcall.Tclone { fid; newfid } ->
          with_fid fid (fun node ->
              if Hashtbl.mem fids newfid then err "fid in use"
              else begin
                Hashtbl.replace fids newfid (fs.fs_clone node);
                reply tag (Fcall.Rclone { fid })
              end)
        | Fcall.Twalk { fid; name } ->
          with_fid fid (fun node ->
              match fs.fs_walk node name with
              | Ok node' ->
                Hashtbl.replace fids fid node';
                reply tag (Fcall.Rwalk { fid; qid = fs.fs_qid node' })
              | Error e -> err e)
        | Fcall.Tclwalk { fid; newfid; name } ->
          with_fid fid (fun node ->
              if Hashtbl.mem fids newfid && newfid <> fid then
                err "fid in use"
              else
                match fs.fs_walk (fs.fs_clone node) name with
                | Ok node' ->
                  Hashtbl.replace fids newfid node';
                  reply tag (Fcall.Rclwalk { newfid; qid = fs.fs_qid node' })
                | Error e -> err e)
        | Fcall.Topen { fid; mode; trunc } ->
          with_fid fid (fun node ->
              match fs.fs_open node mode ~trunc with
              | Ok () -> reply tag (Fcall.Ropen { fid; qid = fs.fs_qid node })
              | Error e -> err e)
        | Fcall.Tcreate { fid; name; perm; mode } ->
          with_fid fid (fun node ->
              match fs.fs_create node ~name ~perm mode with
              | Ok node' ->
                Hashtbl.replace fids fid node';
                reply tag (Fcall.Rcreate { fid; qid = fs.fs_qid node' })
              | Error e -> err e)
        | Fcall.Tread { fid; offset; count } ->
          with_fid fid (fun node ->
              let count = min count Fcall.maxfdata in
              match fs.fs_read node ~offset ~count with
              | Ok data -> reply tag (Fcall.Rread { data })
              | Error e -> err e)
        | Fcall.Twrite { fid; offset; data } ->
          with_fid fid (fun node ->
              if String.length data > Fcall.maxfdata then err "write too big"
              else
                match fs.fs_write node ~offset ~data with
                | Ok count -> reply tag (Fcall.Rwrite { count })
                | Error e -> err e)
        | Fcall.Tclunk { fid } ->
          with_fid fid (fun node ->
              fs.fs_clunk node;
              Hashtbl.remove fids fid;
              reply tag (Fcall.Rclunk { fid }))
        | Fcall.Tremove { fid } ->
          with_fid fid (fun node ->
              (* remove always clunks, success or not *)
              let res = fs.fs_remove node in
              Hashtbl.remove fids fid;
              match res with
              | Ok () -> reply tag (Fcall.Rremove { fid })
              | Error e -> err e)
        | Fcall.Tstat { fid } ->
          with_fid fid (fun node ->
              match fs.fs_stat node with
              | Ok stat -> reply tag (Fcall.Rstat { stat })
              | Error e -> err e)
        | Fcall.Twstat { fid; stat } ->
          with_fid fid (fun node ->
              match fs.fs_wstat node stat with
              | Ok () -> reply tag (Fcall.Rwstat { fid })
              | Error e -> err e)
      in
      (* server-side service time: receipt of T to completion of its
         reply, observed per message kind *)
      let timed_handle tag t =
        match Sim.Engine.obs eng with
        | None -> handle tag t
        | Some obs_tr ->
          let t0 = Sim.Engine.now eng in
          handle tag t;
          Obs.Trace.observe obs_tr
            ("9p.serve." ^ Fcall.tmsg_name t)
            (Sim.Engine.now eng -. t0)
      in
      (* an fs operation that raises must not take the whole connection
         down with it: the client gets an Rerror and the serving loop
         lives on.  Exportfs relays through live channels, so a dead
         upstream surfaces here as Chan.Error — rendered by its
         registered printer as the bare message.  A kill (Tflush
         forwarding) is not an error: let it unwind. *)
      let safe_handle tag t =
        try timed_handle tag t with
        | Sim.Proc.Killed as e -> raise e
        | e -> reply tag (Fcall.Rerror (Printexc.to_string e))
      in
      let rec loop () =
        match tr.Transport.t_recv () with
        | None -> clear_fids ()
        | Some raw ->
          (match Fcall.decode raw with
          | Fcall.T (tag, t) ->
            if threaded then begin
              let p =
                Sim.Proc.spawn eng
                  ~name:(Printf.sprintf "9psrv:%s:t%d" fs.fs_name tag)
                  (fun () ->
                    Fun.protect
                      ~finally:(fun () -> Hashtbl.remove inflight tag)
                      (fun () -> safe_handle tag t))
              in
              if Sim.Proc.alive p then Hashtbl.replace inflight tag p
            end
            else safe_handle tag t
          | Fcall.R (_, _) -> () (* servers ignore replies *)
          | exception Fcall.Bad_message m ->
            Log.debug (fun f -> f "%s: bad message: %s" fs.fs_name m));
          loop ()
      in
      loop ())
