(** The 9P client — the RPC half of the mount driver (paper section
    2.1): "The mount driver manages buffers, packs and unpacks
    parameters from messages, and demultiplexes among processes using
    the file server."

    Each call marshals a T-message, assigns a tag, transmits it, and
    blocks the calling process until the matching R-message arrives; a
    demultiplexer process routes replies by tag, so any number of
    processes can use one connection concurrently. *)

type t
type fid

val no_fid : fid
(** A fid that was never allocated (a dead mount-driver node carries
    it); any RPC on it is a server-side "unknown fid". *)

exception Err of string
(** An Rerror from the server (or a dead connection). *)

val make : Sim.Engine.t -> Transport.t -> t
(** Start the demultiplexer on a transport. *)

val session : t -> unit
(** Initialize the connection (Tsession).  Call once before attach. *)

val attach : t -> uname:string -> aname:string -> fid
(** Authenticate-and-attach: returns a fid for the server's root. *)

val attach_q : t -> uname:string -> aname:string -> fid * Fcall.qid
(** Like {!attach} but also returns the root qid from Rattach. *)

val clone : t -> fid -> fid
(** Duplicate a fid (like dup). *)

val walk : t -> fid -> string -> Fcall.qid
(** Move the fid one level down the hierarchy. *)

val walk_path : t -> fid -> string list -> fid
(** Clone then walk each component (using Tclwalk for the first hop);
    the input fid is untouched.  Clunks the partial fid and re-raises
    on failure. *)

val open_ : t -> fid -> ?trunc:bool -> Fcall.mode -> Fcall.qid
val create : t -> fid -> name:string -> perm:int32 -> Fcall.mode -> Fcall.qid
val read : t -> fid -> offset:int64 -> count:int -> string
val write : t -> fid -> offset:int64 -> string -> int
val clunk : t -> fid -> unit
val remove : t -> fid -> unit
val stat : t -> fid -> Fcall.dir
val wstat : t -> fid -> Fcall.dir -> unit

val read_dir : t -> fid -> Fcall.dir list
(** Read a whole (open) directory from offset 0. *)

val read_all : t -> fid -> string
(** Read an open file from offset 0 to EOF. *)

val flush : t -> oldtag:int -> unit

val rpc : t -> Fcall.tmsg -> Fcall.rmsg
(** Raw escape hatch (used by tests). *)

val alive : t -> bool

val open_fids : t -> int
(** How many fids the server currently holds for this client
    (attached, cloned or clwalked, not yet clunked/removed).  After the
    connection dies this is the leak count. *)

val on_death : t -> (int -> unit) -> unit
(** Register a hook run once when the connection dies with fids still
    live; the argument is the leak count.  The mount driver uses this
    to surface [leaked_fids] in its per-mount ledger, and the global
    [9p.fids_leaked] trace counter is bumped alongside. *)

val hangup : t -> unit
(** Close the transport; outstanding and future calls raise
    {!Err}. *)
