let src = Logs.Src.create "listener" ~doc:"service listener"

module Log = (val Logs.src_log src : Logs.LOG)

let start eng ?backlog env ~addr ~handler =
  Sim.Proc.spawn eng ~name:("listen:" ^ addr) (fun () ->
      let ann = Dial.announce env addr in
      (match backlog with
      | None -> ()
      | Some n ->
        (* best effort: protocols without a bounded accept queue
           reject the ctl message, which is fine *)
        (try
           ignore
             (Vfs.Env.write env ann.Dial.ann_ctl_fd
                (Printf.sprintf "backlog %d" n))
         with Vfs.Chan.Error _ -> ()));
      let rec loop () =
        match Dial.listen env ann with
        | conn ->
          (* fork a process to serve the call; the parent closes its
             copy of the descriptor, as in the paper's echo listing *)
          let child_env = Vfs.Env.fork env in
          ignore
            (Sim.Proc.spawn eng ~name:("serve:" ^ addr) (fun () ->
                 match Dial.accept child_env conn with
                 | data_fd ->
                   Fun.protect
                     ~finally:(fun () ->
                       Vfs.Env.close child_env data_fd;
                       Vfs.Env.close child_env conn.Dial.ctl_fd)
                     (fun () -> handler child_env conn ~data_fd)
                 | exception Dial.Dial_error e ->
                   Vfs.Env.close child_env conn.Dial.ctl_fd;
                   Log.debug (fun m -> m "%s: accept: %s" addr e)));
          Vfs.Env.close env conn.Dial.ctl_fd;
          loop ()
        | exception Dial.Dial_error e ->
          Log.debug (fun m -> m "%s: listen: %s" addr e)
      in
      loop ())
