(** The connection server (paper section 4.2).

    "On each system a user level connection server process, CS,
    translates symbolic names to addresses ... A client writes a
    symbolic name to /net/cs then reads one line for each matching
    destination reachable from this system.  The lines are of the form
    {i filename message}, where filename is the path of the clone file
    to open for a new connection and message is the string to write to
    it to make the connection."

    Meta-names implemented, from the paper:
    - the network name [net] "selects any network in common between
      source and destination supporting the specified service";
    - a host of the form [$attr] searches the database entry for the
      source system, then its subnetwork, then its network (via
      {!Ndb.sysattr}) and uses every value found;
    - a host of ["*"] produces announcement strings;
    - literal addresses pass through ([tcp!135.104.117.5!513] and
      [tcp!research.bell-labs.com!login] are equivalent);
    - domain names fall back to DNS when the database has no entry:
      "For domain names however, CS first consults another user level
      process, the domain name server." *)

type network = {
  nw_proto : string;  (** "il", "tcp", "udp", "dk" *)
  nw_clone : string;  (** e.g. "/net/il/clone" *)
  nw_kind : [ `Inet | `Dk ];
}

type t

val make :
  sysname:string ->
  db:Ndb.t ->
  networks:network list ->
  ?dns:(string -> string list) ->
  unit ->
  t
(** [sysname] is this host's database name ("most closely associated"
    $attr searches start from it); [networks] are in local preference
    order; [dns] resolves a domain name to IP addresses when the
    database can't. *)

val translate : t -> string -> (string list, string) result
(** One reply line per reachable destination.  Answers are memoized —
    the database is immutable, so a thousand dials to one service cost
    one ndb walk. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the answer cache. *)

val flush_cache : t -> unit
(** Drop all memoized answers (and zero the hit/miss counters). *)

val fs : t -> Onefile.node Ninep.Server.fs
(** The [/net/cs] file. *)

val mount : Vfs.Env.t -> t -> unit
(** Union the cs file into [/net]. *)
