(* The staged diskless bring-up: what a terminal reads, in order, when
   it powers on.  Three stages — the kernel image first (the boot PROM
   pulls it whole), then the binaries the init sequence execs, then the
   startup libraries several of which every new shell re-reads.  The
   kernel path and the database size come from ndb, so the workload is
   shaped by the same file that shapes the network. *)

type stage = { sg_name : string; sg_files : (string * int) list }

let default_bootf = "/mips/9power"

let bootf ~db ~sys =
  match Ndb.find db ~attr:"sys" ~value:sys ~rattr:"bootf" with
  | b :: _ -> b
  | [] -> default_bootf

(* /lib/ndb/local is the one file whose size genuinely scales with the
   installation: every system entry costs lines.  64 bytes per entry is
   the rough shape of the generated databases. *)
let ndb_local_size db = max 512 (64 * List.length (Ndb.entries db))

let stages ~db ~sys =
  [
    { sg_name = "kernel"; sg_files = [ (bootf ~db ~sys, 9336) ] };
    {
      sg_name = "binaries";
      sg_files =
        [ ("/bin/rc", 6100); ("/bin/ls", 2800); ("/bin/cat", 1400) ];
    };
    {
      sg_name = "libraries";
      sg_files =
        [
          ("/lib/namespace", 700);
          ("/rc/lib/rcmain", 1200);
          ("/lib/ndb/local", ndb_local_size db);
        ];
    };
  ]

let all_files ~db ~sys =
  List.concat_map (fun s -> s.sg_files) (stages ~db ~sys)

(* The replayed read sequence: each stage in order, then the re-reads —
   each rc and each window opens the startup files again.  Re-reads are
   what a cache tier turns into hits. *)
let trace ~db ~sys =
  List.map fst (all_files ~db ~sys)
  @ [
      "/lib/namespace"; "/rc/lib/rcmain"; "/lib/ndb/local"; "/lib/namespace";
      "/rc/lib/rcmain"; "/bin/rc"; "/lib/ndb/local"; "/lib/namespace";
    ]

let trace_bytes ~db ~sys =
  let files = all_files ~db ~sys in
  List.fold_left (fun acc p -> acc + List.assoc p files) 0 (trace ~db ~sys)

(* deterministic pseudo-file contents, keyed by path *)
let file_body path size =
  let b = Bytes.create size in
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0xffffff) path;
  for i = 0 to size - 1 do
    h := ((!h * 1103515245) + 12345) land 0xffffff;
    Bytes.set b i (Char.chr (32 + (!h mod 95)))
  done;
  Bytes.to_string b

let populate ~db ~sys ramfs =
  List.iter
    (fun (path, size) -> Ninep.Ramfs.add_file ramfs path (file_body path size))
    (all_files ~db ~sys)
