(** Canned worlds for examples, tests, and benchmarks.

    {!bell_labs} reproduces the environment of the paper's examples: a
    CPU server [helix] on both the Ethernet and Datakit, an auth
    server [musca], a terminal [philw-gnot] that has {e only} a Datakit
    connection (the gateway example of section 6.1), and a DNS zone
    with [ai.mit.edu] behind a delegation, all described by an ndb in
    the paper's own format. *)

type t = {
  eng : Sim.Engine.t;
  ether : Netsim.Ether.t;
  dk : Dk.Switch.t;
  db : Ndb.t;
  mutable hosts : (string * Host.t) list;
}

val create :
  ?seed:int ->
  ?sched:Sim.Sched.policy ->
  ?ether_loss:float ->
  ?ether_bandwidth:float ->
  db:Ndb.t ->
  unit ->
  t
(** Fresh media + engine; no hosts yet.  [sched] picks the engine's
    same-time tie-break policy (default FIFO) — schedule exploration
    builds whole worlds under adversarial orderings through this. *)

val add_host :
  ?il_config:Inet.Il.config ->
  ?tcp_config:Inet.Tcp.config ->
  ?dns_server:bool ->
  t ->
  string ->
  Host.t
(** Boot a host from its database entry and remember it. *)

val host : t -> string -> Host.t
(** @raise Not_found *)

val run : ?until:float -> t -> unit

val ether_faults : t -> Netsim.Fault.t
(** The Ethernet segment's fault schedule — shorthand for
    [Netsim.Ether.faults t.ether]. *)

val dk_faults : t -> Netsim.Fault.t
(** The Datakit switch's fault schedule. *)

val bell_labs_ndb : string
(** The ndb text for the canonical world (paper-style entries). *)

val bell_labs :
  ?seed:int ->
  ?sched:Sim.Sched.policy ->
  ?ether_loss:float ->
  ?cpu_commands:(string * Cpu_cmd.command) list ->
  unit ->
  t
(** The canonical world, fully booted: hosts [helix] (CPU server with
    the cpu service — stock commands hostname/echo/cat/wc plus
    [cpu_commands] — ether + dk, DNS server, exportfs + echo services),
    [musca] (ether + dk, exportfs + echo), [bootes] (the network's
    file server), [ai] (ether, a distant Internet host), and
    [philw-gnot] (Datakit only). *)
