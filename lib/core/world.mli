(** Canned worlds for examples, tests, and benchmarks.

    {!bell_labs} reproduces the environment of the paper's examples: a
    CPU server [helix] on both the Ethernet and Datakit, an auth
    server [musca], a terminal [philw-gnot] that has {e only} a Datakit
    connection (the gateway example of section 6.1), and a DNS zone
    with [ai.mit.edu] behind a delegation, all described by an ndb in
    the paper's own format. *)

type t = {
  eng : Sim.Engine.t;
  ether : Netsim.Ether.t;
      (** flat worlds: the one wire; routed worlds: the first segment *)
  segments : (string * Netsim.Ether.t) list;
      (** routed worlds: one Ethernet per non-dk [ipnet] entry, keyed by
          the subnet's name *)
  dk : Dk.Switch.t;
  db : Ndb.t;
  mutable hosts : (string * Host.t) list;
}

val create :
  ?seed:int ->
  ?sched:Sim.Sched.policy ->
  ?ether_loss:float ->
  ?ether_bandwidth:float ->
  db:Ndb.t ->
  unit ->
  t
(** Fresh media + engine; no hosts yet.  [sched] picks the engine's
    same-time tie-break policy (default FIFO) — schedule exploration
    builds whole worlds under adversarial orderings through this. *)

val routed :
  ?seed:int ->
  ?sched:Sim.Sched.policy ->
  ?ether_bandwidth:float ->
  ?dk_bandwidth:float ->
  db:Ndb.t ->
  unit ->
  t
(** A multi-segment internet: one Ethernet segment per [ipnet] entry in
    [db] (named after it), except [medium=dk] subnets, which gateway
    hosts reach as IP tunnels over the Datakit switch.  Hosts added to
    this world wire each NIC to the segment its address belongs to. *)

val autoroute : t -> unit
(** Fill every gateway's route table from the booted topology: breadth
    first over the gateway graph (adjacent = interfaces on the same
    subnet), each subnet a gateway is not on gets a route via the first
    hop toward the nearest gateway that is.  Call after the last
    {!add_host}.  Leaf hosts need nothing — their inherited [ipgw]
    default route points at their segment's gateway. *)

val add_host :
  ?il_config:Inet.Il.config ->
  ?tcp_config:Inet.Tcp.config ->
  ?tcpcc_config:Inet.Tcp.config ->
  ?dns_server:bool ->
  t ->
  string ->
  Host.t
(** Boot a host from its database entry and remember it. *)

val host : t -> string -> Host.t
(** @raise Not_found *)

val run : ?until:float -> t -> unit

val ether_faults : t -> Netsim.Fault.t
(** The Ethernet segment's fault schedule — shorthand for
    [Netsim.Ether.faults t.ether]. *)

val segment_faults : t -> string -> Netsim.Fault.t
(** A named segment's fault schedule (routed worlds).
    @raise Not_found *)

val dk_faults : t -> Netsim.Fault.t
(** The Datakit switch's fault schedule. *)

val cluster_ndb : int -> string
(** An ndb describing [n] identical hosts [c0 .. c(n-1)] on one flat
    subnet ([10.20.0.0/24]), each speaking IL, with [exportfs] and
    [echo] services registered. *)

val cluster : ?seed:int -> ?sched:Sim.Sched.policy -> ?n:int -> unit -> t
(** A booted cluster of [n] (default 4) hosts for the distributed
    name-space scenarios: every host serves exportfs, carries seed
    files [/srv/motd] ("hello from cN") and [/srv/cN] ("cN"), and has
    empty [/n/next] and [/u] directories ready to be mount points for
    import chains and union mounts. *)

val host_faults : t -> string -> Netsim.Fault.t
(** The named host's {e per-station} fault schedule (its primary NIC's
    rx side): partition one machine while the rest of the segment keeps
    talking.  @raise Failure if the host has no NIC. *)

(** {1 The diskless fleet (boot-storm topology)} *)

val fleet_origin : string
(** ["origin"], the fleet's one file server. *)

val rack_sys : int -> string
(** ["rkNN"], rack [k]'s gateway-plus-cache host. *)

val terminal_sys : int -> int -> string
(** ["tmNN-III"], terminal [i] of rack [k]. *)

val rack_net : int -> string
(** ["rackN"], rack [k]'s leaf subnet (and segment) name. *)

val fleet_ndb : ?racks:int -> ?terminals:int -> unit -> string
(** The fleet in ndb form: a [spine] subnet (10.90/16) carrying the
    origin and one gateway per rack, plus a leaf subnet per rack
    (10.(30+k)/16, [ipgw] at the rack gateway) of [terminals] diskless
    terminals each carrying [bootf=/mips/9power].  The rack's spine NIC
    is listed first so its primary stack — the one its dialer and
    listeners ride — sits on the spine. *)

type fleet = {
  f_world : t;
  f_origin : Host.t;
  f_racks : string list;
  f_terminals : (string * string) list;
      (** [(rack sys, terminal sys)] pairs, in rack-major order *)
  f_caches : (string, Cfs.t) Hashtbl.t;
      (** rack sys → its shared cache tier, filled once each rack's
          cfsd has dialed the origin (by virtual time ~1s) *)
}

val fleet :
  ?seed:int ->
  ?sched:Sim.Sched.policy ->
  ?racks:int ->
  ?terminals:int ->
  ?rack_config:Cfs.config ->
  ?tap:(string -> Ninep.Transport.t -> Ninep.Transport.t) ->
  ?ether_bandwidth:float ->
  unit ->
  fleet
(** A booted fleet: the origin serves the {!Bootstage} file set over
    exportfs; each rack gateway runs a cfsd that dials the origin,
    interposes a shared {!Cfs} (configured by [rack_config], its
    upstream transport wrapped by [tap] — the benches count round
    trips there), mounts the cache's ctl directory at [/mnt/cfs], and
    listens on [il!*!9fs] serving the cache's 9P face to its
    terminals.  Terminals are booted but {e not} wired: a storm driver
    dials [il!rkNN!9fs] from each terminal when it powers on.
    Routing comes from {!autoroute}. *)

val bell_labs_ndb : string
(** The ndb text for the canonical world (paper-style entries). *)

val bell_labs :
  ?seed:int ->
  ?sched:Sim.Sched.policy ->
  ?ether_loss:float ->
  ?cpu_commands:(string * Cpu_cmd.command) list ->
  unit ->
  t
(** The canonical world, fully booted: hosts [helix] (CPU server with
    the cpu service — stock commands hostname/echo/cat/wc plus
    [cpu_commands] — ether + dk, DNS server, exportfs + echo services),
    [musca] (ether + dk, exportfs + echo), [bootes] (the network's
    file server), [ai] (ether, a distant Internet host), and
    [philw-gnot] (Datakit only). *)
