let packet_type = 0xB007

type config = {
  bc_ip : Inet.Ipaddr.t;
  bc_mask : Inet.Ipaddr.t;
  bc_gw : Inet.Ipaddr.t option;
  bc_bootf : string;
  bc_fs : Inet.Ipaddr.t option;
}

exception Boot_error of string

let words s =
  String.split_on_char ' ' (String.trim s) |> List.filter (fun w -> w <> "")

let config_line db ~ether =
  match Ndb.search db ~attr:"ether" ~value:ether with
  | [] -> None
  | e :: _ -> (
    match Ndb.get e "ip" with
    | None -> None
    | Some ip ->
      let attr a = Ndb.ipattr db ~ip ~attr:a in
      let mask =
        match attr "ipmask" with
        | Some m -> m
        | None ->
          Inet.Ipaddr.to_string
            (Inet.Ipaddr.class_mask (Inet.Ipaddr.of_string ip))
      in
      let gw = Option.value ~default:"none" (attr "ipgw") in
      let bootf = Option.value ~default:"none" (Ndb.get e "bootf") in
      (* fs= names a domain; resolve it to an address through the db *)
      let fs =
        match attr "fs" with
        | None -> "none"
        | Some fsdom -> (
          match Ndb.sys_entry db fsdom with
          | Some fse -> Option.value ~default:"none" (Ndb.get fse "ip")
          | None -> "none")
      in
      Some (Printf.sprintf "boot %s %s %s %s %s" ip mask gw bootf fs))

let serve host =
  match host.Host.etherport with
  | None -> None
  | Some port ->
    let conn = Inet.Etherport.connect port packet_type in
    let eng = host.Host.eng in
    let inbox = Sim.Mbox.create eng in
    Inet.Etherport.set_rx conn (fun fr -> Sim.Mbox.send inbox fr);
    Some
      (Sim.Proc.spawn eng ~name:"bootd" (fun () ->
           let rec loop () =
             let fr = Sim.Mbox.recv inbox in
             (if String.trim fr.Netsim.Ether.payload = "boot?" then
                let ether =
                  Netsim.Eaddr.to_string fr.Netsim.Ether.src
                in
                match config_line host.Host.db ~ether with
                | Some line ->
                  Inet.Etherport.send conn ~dst:fr.Netsim.Ether.src line
                | None -> () (* not ours to answer *));
             loop ()
           in
           loop ()))

let parse_reply line =
  match words line with
  | [ "boot"; ip; mask; gw; bootf; fs ] -> (
    match
      (Inet.Ipaddr.of_string_opt ip, Inet.Ipaddr.of_string_opt mask)
    with
    | Some bc_ip, Some bc_mask ->
      Some
        {
          bc_ip;
          bc_mask;
          bc_gw = (if gw = "none" then None else Inet.Ipaddr.of_string_opt gw);
          bc_bootf = bootf;
          bc_fs = (if fs = "none" then None else Inet.Ipaddr.of_string_opt fs);
        }
    | _, _ -> None)
  | _ -> None

let discover ?(timeout = 1.0) ?(retries = 3) port =
  let eng = Inet.Etherport.engine port in
  let conn = Inet.Etherport.connect port packet_type in
  let inbox = Sim.Mbox.create eng in
  Inet.Etherport.set_rx conn (fun fr -> Sim.Mbox.send inbox fr);
  Fun.protect
    ~finally:(fun () -> Inet.Etherport.close_conn conn)
    (fun () ->
      let rec attempt n =
        if n <= 0 then raise (Boot_error "no boot server answered")
        else begin
          Inet.Etherport.send conn ~dst:Netsim.Eaddr.broadcast "boot?";
          let deadline = Sim.Engine.now eng +. timeout in
          let rec wait () =
            if Sim.Engine.now eng >= deadline then None
            else
              match Sim.Mbox.try_recv inbox with
              | Some fr -> (
                match parse_reply fr.Netsim.Ether.payload with
                | Some cfg -> Some cfg
                | None -> wait ())
              | None ->
                Sim.Time.sleep eng 0.01;
                wait ()
          in
          match wait () with Some cfg -> cfg | None -> attempt (n - 1)
        end
      in
      attempt retries)

let boot_diskless w ~ether_addr customize =
  ignore customize;
  let eng = w.World.eng in
  let nic =
    Netsim.Ether.attach w.World.ether (Netsim.Eaddr.of_string ether_addr)
  in
  let port = Inet.Etherport.create eng nic in
  let cfg = discover port in
  (* with an address, the station can build its stack *)
  let ip =
    Inet.Ip.create ?gateway:cfg.bc_gw ~addr:cfg.bc_ip ~mask:cfg.bc_mask port
  in
  (* even a diskless station routes through a node: its on-link subnet
     plus the boot-supplied gateway as default *)
  let node = Route.create ~name:("boot:" ^ ether_addr) eng in
  Route.set_deliver node (fun raw -> Inet.Ip.deliver_raw ip raw);
  ignore (Route.attach_stack node ~ifname:"ether0" ip);
  (match cfg.bc_gw with
  | Some gw when not (Inet.Ipaddr.equal gw cfg.bc_ip) ->
    Route.Table.add (Route.table node) ~dest:Inet.Ipaddr.any
      ~mask:Inet.Ipaddr.any (Route.Table.Via gw)
  | Some _ | None -> ());
  let il = Inet.Il.attach ip in
  let fs_ip =
    match cfg.bc_fs with
    | Some a -> a
    | None -> raise (Boot_error "no file server in configuration")
  in
  (* fetch the boot file from the file server's exportfs over 9P/IL *)
  let db = w.World.db in
  let port_9p =
    match Ndb.service_port db ~proto:"il" ~service:"exportfs" with
    | Some p -> p
    | None -> raise (Boot_error "no exportfs port in the database")
  in
  let conv =
    try Inet.Il.connect il ~raddr:fs_ip ~rport:port_9p
    with Inet.Il.Refused e | Inet.Il.Timeout e -> raise (Boot_error e)
  in
  let tr =
    {
      Ninep.Transport.t_send = (fun m -> Inet.Il.write conv m);
      t_recv = (fun () -> Inet.Il.read_msg conv);
      t_close = (fun () -> Inet.Il.close conv);
    }
  in
  let client = Ninep.Client.make eng tr in
  (try
     Ninep.Client.session client;
     let root = Ninep.Client.attach client ~uname:"none" ~aname:"" in
     let comps =
       List.filter (fun s -> s <> "") (String.split_on_char '/' cfg.bc_bootf)
     in
     let f = Ninep.Client.walk_path client root comps in
     ignore (Ninep.Client.open_ client f Ninep.Fcall.Oread);
     let contents = Ninep.Client.read_all client f in
     Ninep.Client.hangup client;
     (cfg, contents)
   with Ninep.Client.Err e -> raise (Boot_error e))
