type t = {
  eng : Sim.Engine.t;
  nic : Netsim.Ether.nic;
  buf : Buffer.t;
  mutable nframes : int;
  by_proto : (string, int) Hashtbl.t;
  mutable running : bool;
}

let default_addr = "feeddefaced0"

let start ?(addr = default_addr) seg =
  let eng = Netsim.Ether.engine seg in
  let nic = Netsim.Ether.attach seg (Netsim.Eaddr.of_string addr) in
  Netsim.Ether.set_promiscuous nic true;
  let t =
    {
      eng;
      nic;
      buf = Buffer.create 1024;
      nframes = 0;
      by_proto = Hashtbl.create 7;
      running = true;
    }
  in
  Netsim.Ether.set_rx nic (fun (fr : Netsim.Ether.frame) ->
      if t.running then begin
        t.nframes <- t.nframes + 1;
        let proto = Obs.Snoopy.frame_proto ~etype:fr.etype fr.payload in
        Hashtbl.replace t.by_proto proto
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_proto proto));
        Buffer.add_string t.buf
          (Obs.Snoopy.render_frame
             ~time:(Sim.Engine.now eng)
             ~src:(Netsim.Eaddr.to_string fr.src)
             ~dst:(Netsim.Eaddr.to_string fr.dst)
             ~etype:fr.etype fr.payload);
        Buffer.add_char t.buf '\n'
      end);
  t

let stop t = t.running <- false
let resume t = t.running <- true
let dump t = Buffer.contents t.buf
let clear t = Buffer.clear t.buf
let frames t = t.nframes

let proto_counts t =
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) t.by_proto []
  |> List.sort compare

let summary t =
  String.concat ""
    (List.map
       (fun (p, n) -> Printf.sprintf "%s %d\n" p n)
       (proto_counts t))

(* /net/snoop: read the capture so far; "clear" resets it, "stop" and
   "start" gate it, "stats" answers with per-protocol frame counts. *)
let mount env t =
  Vfs.Env.mount_fs env
    (Onefile.fs ~name:"snoop" ~filename:"snoop"
       ~read_default:(fun () -> dump t)
       ~handle:(fun ~uname:_ req ->
         match String.trim req with
         | "" -> Ok (dump t)
         | "clear" ->
           clear t;
           Ok ""
         | "stop" ->
           stop t;
           Ok ""
         | "start" ->
           resume t;
           Ok ""
         | "stats" -> Ok (summary t)
         | other -> Error ("snoop: bad request: " ^ other))
       ())
    ~onto:"/net" Vfs.Ns.After
