let arp_text ip =
  String.concat ""
    (List.map
       (fun (addr, ea) ->
         Printf.sprintf "%s %s\n"
           (Inet.Ipaddr.to_string addr)
           (Netsim.Eaddr.to_string ea))
       (Inet.Ip.arp_cache_dump ip))

let mount_arp env ip =
  Vfs.Env.mount_fs env
    (Onefile.fs ~name:"arp" ~filename:"arp"
       ~read_default:(fun () -> arp_text ip)
       ~handle:(fun ~uname:_ req ->
         match String.trim req with
         | "" | "flush" -> Ok (arp_text ip)
         | other -> Error ("arp: bad request: " ^ other))
       ())
    ~onto:"/net" Vfs.Ns.After

let ipifc_text ip =
  let c = Inet.Ip.counters ip in
  Printf.sprintf
    "addr %s mask %s gw %s mtu %d\n\
     in %d out %d badck %d noproto %d reasmdrop %d fwd %d ttlx %d\n"
    (Inet.Ipaddr.to_string (Inet.Ip.addr ip))
    (Inet.Ipaddr.to_string (Inet.Ip.mask ip))
    (match Inet.Ip.gateway ip with
    | Some g -> Inet.Ipaddr.to_string g
    | None -> "none")
    (Inet.Ip.mtu ip) c.Inet.Ip.ip_in c.Inet.Ip.ip_out
    c.Inet.Ip.ip_bad_checksum c.Inet.Ip.ip_no_proto c.Inet.Ip.ip_reasm_drops
    c.Inet.Ip.ip_forwarded c.Inet.Ip.ip_ttl_exceeded

(* /net/log: the kernel event trace as text, newest events last.
   Writing "clear" empties the ring; "limit N" tailors the read. *)
let log_text ?limit eng =
  match Sim.Engine.obs eng with
  | None -> "tracing disabled\n"
  | Some tr ->
    let body = Obs.Trace.render ?limit tr in
    let dropped = Obs.Trace.dropped tr in
    if dropped > 0 then
      Printf.sprintf "... %d earlier events overwritten\n%s" dropped body
    else body

let mount_log env eng =
  Vfs.Env.mount_fs env
    (Onefile.fs ~name:"netlog" ~filename:"log"
       ~read_default:(fun () -> log_text eng)
       ~handle:(fun ~uname:_ req ->
         match String.split_on_char ' ' (String.trim req) with
         | [ "" ] -> Ok (log_text eng)
         | [ "clear" ] ->
           (match Sim.Engine.obs eng with
           | Some tr -> Obs.Trace.clear tr
           | None -> ());
           Ok ""
         | [ "limit"; n ] -> (
           match int_of_string_opt n with
           | Some limit when limit > 0 -> Ok (log_text ~limit eng)
           | _ -> Error ("log: bad limit: " ^ n))
         | _ -> Error ("log: bad request: " ^ String.trim req))
       ())
    ~onto:"/net" Vfs.Ns.After

(* /net/metrics: periodic counter snapshots as "name value ts" lines
   (Prometheus exposition, virtual timestamps).  Sampling is opt-in —
   an always-on ticker would add engine events to every run and
   perturb the event-economy baselines — so a plain read without any
   stored samples shows one live snapshot instead. *)
let mount_metrics env eng =
  let series = ref None in
  let ticker = ref None in
  let get_series () =
    match Sim.Engine.obs eng with
    | None -> None
    | Some tr -> (
      match !series with
      | Some s -> Some s
      | None ->
        let s = Obs.Series.create (Obs.Trace.metrics tr) in
        series := Some s;
        Some s)
  in
  let stop () =
    match !ticker with
    | Some tk ->
      Sim.Time.cancel tk;
      ticker := None
    | None -> ()
  in
  let start interval =
    match get_series () with
    | None -> Error "metrics: tracing disabled"
    | Some s ->
      stop ();
      ticker :=
        Some
          (Sim.Time.every ~label:"obs" eng interval (fun () ->
               Obs.Series.sample s (Sim.Engine.now eng)));
      Ok ""
  in
  let text () =
    match get_series () with
    | None -> "tracing disabled\n"
    | Some s -> Obs.Series.render ~live_ts:(Sim.Engine.now eng) s
  in
  Vfs.Env.mount_fs env
    (Onefile.fs ~name:"netmetrics" ~filename:"metrics"
       ~read_default:text
       ~handle:(fun ~uname:_ req ->
         match String.split_on_char ' ' (String.trim req) with
         | [ "" ] -> Ok (text ())
         | [ "start" ] -> ( match start 1.0 with Ok _ -> Ok "" | Error e -> Error e)
         | [ "start"; iv ] -> (
           match float_of_string_opt iv with
           | Some dt when dt > 0. -> (
             match start dt with Ok _ -> Ok "" | Error e -> Error e)
           | _ -> Error ("metrics: bad interval: " ^ iv))
         | [ "stop" ] ->
           stop ();
           Ok ""
         | [ "sample" ] -> (
           match get_series () with
           | None -> Error "metrics: tracing disabled"
           | Some s ->
             Obs.Series.sample s (Sim.Engine.now eng);
             Ok (text ()))
         | [ "clear" ] ->
           (match !series with Some s -> Obs.Series.clear s | None -> ());
           Ok ""
         | _ -> Error ("metrics: bad request: " ^ String.trim req))
       ())
    ~onto:"/net" Vfs.Ns.After

(* /net/iproute: the host's route table — interfaces, entries
   most-specific first with use counts, and the forward/drop counters.
   Writes speak the Route.ctl grammar (add/del/flush). *)
let mount_iproute env node =
  Vfs.Env.mount_fs env
    (Onefile.fs ~name:"iproute" ~filename:"iproute"
       ~read_default:(fun () -> Route.dump node)
       ~handle:(fun ~uname:_ req -> Route.ctl node req)
       ())
    ~onto:"/net" Vfs.Ns.After

let mount_ipifc env ip =
  Vfs.Env.mount_fs env
    (Onefile.fs ~name:"ipifc" ~filename:"ipifc"
       ~read_default:(fun () -> ipifc_text ip)
       ~handle:(fun ~uname:_ req ->
         match String.trim req with
         | "" -> Ok (ipifc_text ip)
         | other -> Error ("ipifc: bad request: " ^ other))
       ())
    ~onto:"/net" Vfs.Ns.After
