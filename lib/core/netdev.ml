type conv_ops = {
  cv_read : count:int -> string;
  cv_write : string -> (int, string) result;
  cv_local : unit -> string;
  cv_remote : unit -> string;
  cv_status : unit -> string;
  cv_stats : unit -> string;
  cv_close : unit -> unit;
}

type listener_ops = {
  ln_accept : unit -> (conv_ops * string, string) result;
  ln_set_backlog : int -> (unit, string) result;
      (* the ctl message "backlog n"; protocols without a bounded
         accept queue answer Error *)
  ln_status : unit -> string;
      (* announced-state detail for the status file, e.g.
         "Announced backlog 16 queued 0 refused 0" *)
  ln_close : unit -> unit;
}

type proto = {
  pr_name : string;
  pr_connect : string -> (conv_ops * string, string) result;
  pr_announce : string -> (listener_ops, string) result;
}

type conn_state =
  | Idle
  | Announced of listener_ops * string  (* announce address *)
  | Connected of conv_ops * string  (* remote address *)
  | Hungup

type conn = {
  id : int;
  dev : dev;
  mutable state : conn_state;
  mutable users : int;  (* open file handles on this conn's files *)
}

and dev = {
  eng : Sim.Engine.t;
  proto : proto;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
}

type file =
  | Root
  | Clone
  | ConnDir of conn
  | Ctl of conn
  | Data of conn
  | Listen of conn
  | Local of conn
  | Remote of conn
  | Status of conn
  | Stats of conn

type node = { mutable f : file; mutable opened : bool }

(* ---- qids ---- *)

let conn_files =
  [ "ctl"; "data"; "listen"; "local"; "remote"; "status"; "stats" ]

let file_slot = function
  | Ctl _ -> 1
  | Data _ -> 2
  | Listen _ -> 3
  | Local _ -> 4
  | Remote _ -> 5
  | Status _ -> 6
  | Stats _ -> 7
  | Root | Clone | ConnDir _ -> 0

let qid_of = function
  | Root -> { Ninep.Fcall.qpath = Int32.logor Ninep.Fcall.qdir_bit 1l; qvers = 0l }
  | Clone -> { Ninep.Fcall.qpath = 2l; qvers = 0l }
  | ConnDir c ->
    {
      Ninep.Fcall.qpath =
        Int32.logor Ninep.Fcall.qdir_bit (Int32.of_int (0x100 * (c.id + 1)));
      qvers = 0l;
    }
  | (Ctl c | Data c | Listen c | Local c | Remote c | Status c | Stats c) as f
    ->
    {
      Ninep.Fcall.qpath = Int32.of_int ((0x100 * (c.id + 1)) + file_slot f);
      qvers = 0l;
    }

let file_name = function
  | Root -> "."
  | Clone -> "clone"
  | ConnDir c -> string_of_int c.id
  | Ctl _ -> "ctl"
  | Data _ -> "data"
  | Listen _ -> "listen"
  | Local _ -> "local"
  | Remote _ -> "remote"
  | Status _ -> "status"
  | Stats _ -> "stats"

let stat_of dev f =
  let dir = match f with Root | ConnDir _ -> true | _ -> false in
  {
    Ninep.Fcall.d_name = file_name f;
    d_uid = "network";
    d_gid = "network";
    d_qid = qid_of f;
    d_mode =
      (if dir then Int32.logor Ninep.Fcall.dmdir 0o555l else 0o666l);
    d_atime = 0l;
    d_mtime = 0l;
    d_length = 0L;
    d_type = Char.code 'I';
    d_dev = 0;
  }
  |> fun d -> ignore dev; d

(* ---- connection lifecycle ---- *)

let alloc_conn dev =
  let id = dev.next_conn in
  dev.next_conn <- id + 1;
  let c = { id; dev; state = Idle; users = 0 } in
  Hashtbl.replace dev.conns id c;
  c

let close_conn c =
  (match c.state with
  | Connected (cv, _) -> cv.cv_close ()
  | Announced (ln, _) -> ln.ln_close ()
  | Idle | Hungup -> ());
  c.state <- Hungup

let release c =
  c.users <- c.users - 1;
  if c.users <= 0 then begin
    (* "A connection remains established while any of the files in the
       connection directory are referenced" — last reference gone *)
    close_conn c;
    Hashtbl.remove c.dev.conns c.id
  end

(* ---- ctl commands ---- *)

let ctl_write dev c text =
  let words =
    String.split_on_char ' ' (String.trim text)
    |> List.filter (fun w -> w <> "")
  in
  match (words, c.state) with
  | [ "connect"; addr ], Idle -> (
    match dev.proto.pr_connect addr with
    | Ok (cv, remote) ->
      c.state <- Connected (cv, remote);
      Ok ()
    | Error e -> Error e)
  | "connect" :: _, (Announced _ | Connected _ | Hungup) ->
    Error "connection in use"
  | [ "announce"; addr ], Idle -> (
    match dev.proto.pr_announce addr with
    | Ok ln ->
      c.state <- Announced (ln, addr);
      Ok ()
    | Error e -> Error e)
  | [ "backlog"; n ], Announced (ln, _) -> (
    match int_of_string_opt n with
    | Some b when b > 0 -> ln.ln_set_backlog b
    | Some _ | None -> Error ("bad backlog: " ^ n))
  | "backlog" :: _, (Idle | Connected _ | Hungup) ->
    Error "not announced"
  | "hangup" :: _, _ ->
    (* an optional rejection reason is accepted and, on IP networks,
       ignored — as the paper says *)
    close_conn c;
    Ok ()
  | _, _ -> Error ("bad control message: " ^ String.trim text)

(* ---- the fs ---- *)

let fs eng proto =
  let dev = { eng; proto; conns = Hashtbl.create 17; next_conn = 0 } in
  let root_entries () =
    stat_of dev Clone
    :: (Hashtbl.fold (fun _ c acc -> c :: acc) dev.conns []
       |> List.sort (fun a b -> compare a.id b.id)
       |> List.map (fun c -> stat_of dev (ConnDir c)))
  in
  let conn_entries c =
    List.map
      (fun name ->
        let f =
          match name with
          | "ctl" -> Ctl c
          | "data" -> Data c
          | "listen" -> Listen c
          | "local" -> Local c
          | "remote" -> Remote c
          | "status" -> Status c
          | "stats" -> Stats c
          | _ -> assert false
        in
        stat_of dev f)
      conn_files
  in
  let local_text c =
    match c.state with
    | Connected (cv, _) -> cv.cv_local () ^ "\n"
    | Announced (_, addr) -> addr ^ "\n"
    | Idle | Hungup -> "\n"
  in
  let remote_text c =
    match c.state with
    | Connected (cv, _) -> cv.cv_remote () ^ "\n"
    | Announced _ | Idle | Hungup -> "\n"
  in
  let status_text c =
    let s =
      match c.state with
      | Connected (cv, _) -> cv.cv_status ()
      | Announced (ln, _) ->
        Printf.sprintf "%s/%d %s" proto.pr_name c.id (ln.ln_status ())
      | Idle -> Printf.sprintf "%s/%d 0 Closed" proto.pr_name c.id
      | Hungup -> Printf.sprintf "%s/%d 0 Hungup" proto.pr_name c.id
    in
    s ^ "\n"
  in
  let stats_text c =
    match c.state with
    | Connected (cv, _) -> cv.cv_stats ()
    | Announced _ | Idle | Hungup -> ""
  in
  {
    Ninep.Server.fs_name = "netdev:" ^ proto.pr_name;
    fs_attach = (fun ~uname:_ ~aname:_ -> Ok { f = Root; opened = false });
    fs_qid = (fun n -> qid_of n.f);
    fs_walk =
      (fun n name ->
        match (n.f, name) with
        | Root, "clone" ->
          n.f <- Clone;
          Ok n
        | Root, ".." -> Ok n
        | Root, name -> (
          match
            Option.bind (int_of_string_opt name) (Hashtbl.find_opt dev.conns)
          with
          | Some c ->
            n.f <- ConnDir c;
            Ok n
          | None -> Error "file does not exist")
        | ConnDir _, ".." ->
          n.f <- Root;
          Ok n
        | ( ConnDir c,
            ("ctl" | "data" | "listen" | "local" | "remote" | "status"
            | "stats") ) ->
          n.f <-
            (match name with
            | "ctl" -> Ctl c
            | "data" -> Data c
            | "listen" -> Listen c
            | "local" -> Local c
            | "remote" -> Remote c
            | "stats" -> Stats c
            | _ -> Status c);
          Ok n
        | (Clone | ConnDir _ | Ctl _ | Data _ | Listen _ | Local _ | Remote _
          | Status _ | Stats _), _ ->
          Error "file does not exist")
    ;
    fs_open =
      (fun n _mode ~trunc:_ ->
        match n.f with
        | Root | ConnDir _ ->
          n.opened <- true;
          Ok ()
        | Clone ->
          (* reserve an unused connection and become its ctl file *)
          let c = alloc_conn dev in
          c.users <- c.users + 1;
          n.f <- Ctl c;
          n.opened <- true;
          Ok ()
        | Listen c -> (
          match c.state with
          | Announced (ln, _) -> (
            (* blocks until an incoming call arrives *)
            match ln.ln_accept () with
            | Ok (cv, remote) ->
              let nc = alloc_conn dev in
              nc.state <- Connected (cv, remote);
              nc.users <- nc.users + 1;
              (* the returned descriptor points at the new conn's ctl *)
              n.f <- Ctl nc;
              n.opened <- true;
              Ok ()
            | Error e -> Error e)
          | Idle | Connected _ | Hungup -> Error "not announced")
        | Ctl c | Data c | Local c | Remote c | Status c | Stats c ->
          c.users <- c.users + 1;
          n.opened <- true;
          Ok ())
    ;
    fs_read =
      (fun n ~offset ~count ->
        if not n.opened then Error "not open"
        else
          match n.f with
          | Root ->
            Ok (Ninep.Server.dir_data (root_entries ()) ~offset ~count)
          | ConnDir c -> Ok (Ninep.Server.dir_data (conn_entries c) ~offset ~count)
          | Clone -> Error "not open"
          | Ctl c ->
            Ok (Ninep.Server.slice (string_of_int c.id) ~offset ~count)
          | Data c -> (
            match c.state with
            | Connected (cv, _) -> Ok (cv.cv_read ~count)
            | Idle | Announced _ | Hungup -> Error "not connected")
          | Listen _ -> Error "not open"
          | Local c -> Ok (Ninep.Server.slice (local_text c) ~offset ~count)
          | Remote c -> Ok (Ninep.Server.slice (remote_text c) ~offset ~count)
          | Status c -> Ok (Ninep.Server.slice (status_text c) ~offset ~count)
          | Stats c -> Ok (Ninep.Server.slice (stats_text c) ~offset ~count))
    ;
    fs_write =
      (fun n ~offset:_ ~data ->
        if not n.opened then Error "not open"
        else
          match n.f with
          | Ctl c -> (
            match ctl_write dev c data with
            | Ok () -> Ok (String.length data)
            | Error e -> Error e)
          | Data c -> (
            match c.state with
            | Connected (cv, _) -> cv.cv_write data
            | Idle | Announced _ | Hungup -> Error "not connected")
          | Root | Clone | ConnDir _ | Listen _ | Local _ | Remote _
          | Status _ | Stats _ ->
            Error "permission denied")
    ;
    fs_create = (fun _ ~name:_ ~perm:_ _ -> Error "permission denied");
    fs_remove = (fun _ -> Error "permission denied");
    fs_stat = (fun n -> Ok (stat_of dev n.f));
    fs_wstat = (fun _ _ -> Error "permission denied");
    fs_clunk =
      (fun n ->
        if n.opened then begin
          n.opened <- false;
          match n.f with
          | Ctl c | Data c | Local c | Remote c | Status c | Stats c
          | Listen c ->
            release c
          | Root | Clone | ConnDir _ -> ()
        end)
    ;
    fs_clone = (fun n -> { f = n.f; opened = false });
  }

let mount env eng proto =
  (* ensure /net/<proto> exists as a mount point *)
  (try ignore (Vfs.Env.stat env "/net") with
  | Vfs.Chan.Error _ ->
    Vfs.Env.close env
      (Vfs.Env.create env "/net"
         ~perm:(Int32.logor Ninep.Fcall.dmdir 0o775l)
         Ninep.Fcall.Oread));
  let dir = "/net/" ^ proto.pr_name in
  (try ignore (Vfs.Env.stat env dir) with
  | Vfs.Chan.Error _ ->
    Vfs.Env.close env
      (Vfs.Env.create env dir
         ~perm:(Int32.logor Ninep.Fcall.dmdir 0o775l)
         Ninep.Fcall.Oread));
  Vfs.Env.mount_fs env (fs eng proto) ~onto:dir Vfs.Ns.Repl

(* ---- protocol adapters ---- *)

let split_addr addr =
  match String.index_opt addr '!' with
  | Some i ->
    ( String.sub addr 0 i,
      String.sub addr (i + 1) (String.length addr - i - 1) )
  | None -> (addr, "")

let il_conv st conv =
  {
    cv_read = (fun ~count -> Inet.Il.read conv count);
    cv_write =
      (fun data ->
        try
          Inet.Il.write conv data;
          Ok (String.length data)
        with Inet.Il.Hungup -> Error "hungup");
    cv_local =
      (* the paper's transcripts show "address port" *)
      (fun () ->
        Printf.sprintf "%s %d"
          (Inet.Ipaddr.to_string (Inet.Il.local_addr st))
          (Inet.Il.local_port conv));
    cv_remote =
      (fun () ->
        Printf.sprintf "%s %d"
          (Inet.Ipaddr.to_string (Inet.Il.remote_addr conv))
          (Inet.Il.remote_port conv));
    cv_status = (fun () -> Inet.Il.status conv);
    cv_stats = (fun () -> Inet.Il.conv_stats conv);
    cv_close = (fun () -> Inet.Il.close conv);
  }

let il_proto st =
  {
    pr_name = "il";
    pr_connect =
      (fun addr ->
        let host, port = split_addr addr in
        match
          (Inet.Ipaddr.of_string_opt host, int_of_string_opt port)
        with
        | Some raddr, Some rport -> (
          try Ok (il_conv st (Inet.Il.connect st ~raddr ~rport), addr) with
          | Inet.Il.Refused e -> Error e
          | Inet.Il.Timeout e -> Error e
          | Inet.Il.Port_exhausted -> Error "no free local ports")
        | _, _ -> Error ("bad il address: " ^ addr));
    pr_announce =
      (fun addr ->
        (* accept "17008" and "*!17008" *)
        let port_str =
          match String.rindex_opt addr '!' with
          | Some i -> String.sub addr (i + 1) (String.length addr - i - 1)
          | None -> addr
        in
        match int_of_string_opt port_str with
        | None -> Error ("bad il announcement: " ^ addr)
        | Some port -> (
          try
            let lis = Inet.Il.announce st ~port in
            Ok
              {
                ln_accept =
                  (fun () ->
                    let conv = Inet.Il.listen lis in
                    Ok
                      ( il_conv st conv,
                        Printf.sprintf "%s!%d"
                          (Inet.Ipaddr.to_string (Inet.Il.remote_addr conv))
                          (Inet.Il.remote_port conv) ));
                ln_set_backlog =
                  (fun n ->
                    Inet.Il.set_backlog lis n;
                    Ok ());
                ln_status =
                  (fun () ->
                    Printf.sprintf "%d Announced backlog %d queued %d refused %d"
                      port (Inet.Il.backlog lis) (Inet.Il.queued lis)
                      (Inet.Il.refused lis));
                ln_close = (fun () -> Inet.Il.close_listener lis);
              }
          with Invalid_argument e -> Error e));
  }

let tcp_conv st conv =
  {
    cv_read = (fun ~count -> Inet.Tcp.read conv count);
    cv_write =
      (fun data ->
        try
          Inet.Tcp.write conv data;
          Ok (String.length data)
        with Inet.Tcp.Hungup -> Error "hungup");
    cv_local =
      (fun () ->
        Printf.sprintf "%s %d"
          (Inet.Ipaddr.to_string (Inet.Tcp.local_addr st))
          (Inet.Tcp.local_port conv));
    cv_remote =
      (fun () ->
        Printf.sprintf "%s %d"
          (Inet.Ipaddr.to_string (Inet.Tcp.remote_addr conv))
          (Inet.Tcp.remote_port conv));
    cv_status = (fun () -> Inet.Tcp.status conv);
    cv_stats = (fun () -> Inet.Tcp.conv_stats conv);
    cv_close = (fun () -> Inet.Tcp.close conv);
  }

let tcp_proto st =
  (* serves both registered variants: the directory name and error
     strings follow the stack ("tcp" or "tcpcc") *)
  let name = Inet.Tcp.proto_name st in
  {
    pr_name = name;
    pr_connect =
      (fun addr ->
        let host, port = split_addr addr in
        match (Inet.Ipaddr.of_string_opt host, int_of_string_opt port) with
        | Some raddr, Some rport -> (
          try Ok (tcp_conv st (Inet.Tcp.connect st ~raddr ~rport), addr) with
          | Inet.Tcp.Refused e -> Error e
          | Inet.Tcp.Timeout e -> Error e
          | Inet.Tcp.Port_exhausted -> Error "no free local ports")
        | _, _ -> Error (Printf.sprintf "bad %s address: %s" name addr));
    pr_announce =
      (fun addr ->
        let port_str =
          match String.rindex_opt addr '!' with
          | Some i -> String.sub addr (i + 1) (String.length addr - i - 1)
          | None -> addr
        in
        match int_of_string_opt port_str with
        | None -> Error (Printf.sprintf "bad %s announcement: %s" name addr)
        | Some port -> (
          try
            let lis = Inet.Tcp.announce st ~port in
            Ok
              {
                ln_accept =
                  (fun () ->
                    let conv = Inet.Tcp.listen lis in
                    Ok
                      ( tcp_conv st conv,
                        Printf.sprintf "%s!%d"
                          (Inet.Ipaddr.to_string (Inet.Tcp.remote_addr conv))
                          (Inet.Tcp.remote_port conv) ));
                ln_set_backlog =
                  (fun n ->
                    Inet.Tcp.set_backlog lis n;
                    Ok ());
                ln_status =
                  (fun () ->
                    Printf.sprintf "%d Announced backlog %d queued %d refused %d"
                      port (Inet.Tcp.backlog lis) (Inet.Tcp.queued lis)
                      (Inet.Tcp.refused lis));
                ln_close = (fun () -> Inet.Tcp.close_listener lis);
              }
          with Invalid_argument e -> Error e));
  }

(* "connected" UDP: a bound socket restricted to one peer *)
let udp_conv st conv ~raddr ~rport =
  let pending = Buffer.create 0 in
  ignore pending;
  let closed = ref false in
  {
    cv_read =
      (fun ~count ->
        if !closed then ""
        else
          let rec go () =
            let src, sport, data = Inet.Udp.recv conv in
            if Inet.Ipaddr.equal src raddr && sport = rport then
              if String.length data <= count then data
              else String.sub data 0 count
            else go ()
          in
          go ());
    cv_write =
      (fun data ->
        if !closed then Error "hungup"
        else begin
          Inet.Udp.send conv ~dst:raddr ~dport:rport data;
          Ok (String.length data)
        end);
    cv_local =
      (fun () ->
        Printf.sprintf "%s!%d"
          (Inet.Ipaddr.to_string (Inet.Udp.local_addr st))
          (Inet.Udp.port conv));
    cv_remote =
      (fun () ->
        Printf.sprintf "%s!%d" (Inet.Ipaddr.to_string raddr) rport);
    cv_status =
      (fun () -> Printf.sprintf "udp/%d Open" (Inet.Udp.port conv));
    cv_stats =
      (fun () ->
        let c = Inet.Udp.counters st in
        Printf.sprintf
          "dgrams_sent %d\ndgrams_rcvd %d\nno_port %d\n"
          c.Inet.Udp.dg_sent c.Inet.Udp.dg_rcvd c.Inet.Udp.dg_dropped_noport);
    cv_close =
      (fun () ->
        closed := true;
        Inet.Udp.close conv);
  }

let udp_proto st =
  {
    pr_name = "udp";
    pr_connect =
      (fun addr ->
        let host, port = split_addr addr in
        match (Inet.Ipaddr.of_string_opt host, int_of_string_opt port) with
        | Some raddr, Some rport ->
          let conv = Inet.Udp.bind st in
          Ok (udp_conv st conv ~raddr ~rport, addr)
        | _, _ -> Error ("bad udp address: " ^ addr));
    pr_announce =
      (fun addr ->
        let port_str =
          match String.rindex_opt addr '!' with
          | Some i -> String.sub addr (i + 1) (String.length addr - i - 1)
          | None -> addr
        in
        match int_of_string_opt port_str with
        | None -> Error ("bad udp announcement: " ^ addr)
        | Some port -> (
          try
            let conv = Inet.Udp.bind ~port st in
            let eng = Inet.Udp.engine st in
            (* a dispatcher demultiplexes datagrams into one
               conversation per remote endpoint; replies go out from
               the announced port *)
            let peers :
                (int32 * int, string Sim.Mbox.t) Hashtbl.t =
              Hashtbl.create 7
            in
            let accept_q = Sim.Mbox.create eng in
            let dispatcher =
              Sim.Proc.spawn eng ~name:"udp-demux" (fun () ->
                  let rec loop () =
                    let src, sport, data = Inet.Udp.recv conv in
                    let key = (Inet.Ipaddr.to_int32 src, sport) in
                    (match Hashtbl.find_opt peers key with
                    | Some mb -> Sim.Mbox.send mb data
                    | None ->
                      let mb = Sim.Mbox.create eng in
                      Hashtbl.replace peers key mb;
                      Sim.Mbox.send mb data;
                      Sim.Mbox.send accept_q (src, sport, mb));
                    loop ()
                  in
                  loop ())
            in
            Ok
              {
                ln_accept =
                  (fun () ->
                    let src, sport, mb = Sim.Mbox.recv accept_q in
                    let key = (Inet.Ipaddr.to_int32 src, sport) in
                    let cv =
                      {
                        cv_read =
                          (fun ~count ->
                            let d = Sim.Mbox.recv mb in
                            if String.length d <= count then d
                            else String.sub d 0 count);
                        cv_write =
                          (fun data ->
                            Inet.Udp.send conv ~dst:src ~dport:sport data;
                            Ok (String.length data));
                        cv_local =
                          (fun () ->
                            Printf.sprintf "%s!%d"
                              (Inet.Ipaddr.to_string (Inet.Udp.local_addr st))
                              port);
                        cv_remote =
                          (fun () ->
                            Printf.sprintf "%s!%d"
                              (Inet.Ipaddr.to_string src) sport);
                        cv_status =
                          (fun () -> Printf.sprintf "udp/%d Open" port);
                        cv_stats =
                          (fun () ->
                            let cs = Inet.Udp.counters st in
                            Printf.sprintf
                              "dgrams_sent %d\ndgrams_rcvd %d\nno_port %d\n"
                              cs.Inet.Udp.dg_sent cs.Inet.Udp.dg_rcvd
                              cs.Inet.Udp.dg_dropped_noport);
                        cv_close = (fun () -> Hashtbl.remove peers key);
                      }
                    in
                    Ok
                      ( cv,
                        Printf.sprintf "%s!%d" (Inet.Ipaddr.to_string src)
                          sport ))
                ;
                ln_set_backlog = (fun _ -> Error "udp has no backlog");
                ln_status = (fun () -> "0 Announced");
                ln_close =
                  (fun () ->
                    Sim.Proc.kill dispatcher;
                    Inet.Udp.close conv);
              }
          with Invalid_argument e -> Error e));
  }

let urp_conv line conv ~remote =
  {
    cv_read = (fun ~count -> Dk.Urp.read conv count);
    cv_write =
      (fun data ->
        try
          Dk.Urp.write conv data;
          Ok (String.length data)
        with Dk.Urp.Hungup -> Error "hungup");
    cv_local = (fun () -> Dk.Switch.line_name line);
    cv_remote = (fun () -> remote);
    cv_status =
      (fun () ->
        let c = Dk.Urp.counters conv in
        Printf.sprintf "urp Established rexmit %d" c.Dk.Urp.retransmits);
    cv_stats =
      (fun () ->
        let c = Dk.Urp.counters conv in
        Printf.sprintf
          "cells_sent %d\ncells_rcvd %d\nbytes_sent %d\nbytes_rcvd %d\n\
           retransmits %d\nenqs_sent %d\ndups_dropped %d\n"
          c.Dk.Urp.cells_sent c.Dk.Urp.cells_rcvd c.Dk.Urp.bytes_sent
          c.Dk.Urp.bytes_rcvd c.Dk.Urp.retransmits c.Dk.Urp.enqs_sent
          c.Dk.Urp.dups_dropped);
    cv_close = (fun () -> Dk.Urp.close conv);
  }

let dk_proto line =
  {
    pr_name = "dk";
    pr_connect =
      (fun addr ->
        (* nj/astro/helix!9fs *)
        let dest, service = split_addr addr in
        if dest = "" then Error ("bad dk address: " ^ addr)
        else
          try
            let circ = Dk.Circuit.dial line ~dest ~service in
            Ok (urp_conv line (Dk.Urp.over circ) ~remote:addr, addr)
          with
          | Dk.Circuit.Rejected reason -> Error reason
          | Dk.Circuit.No_such_line l -> Error ("no such system: " ^ l));
    pr_announce =
      (fun addr ->
        (* service name, possibly "*" *)
        let service =
          match String.rindex_opt addr '!' with
          | Some i -> String.sub addr (i + 1) (String.length addr - i - 1)
          | None -> addr
        in
        try
          let calls = Dk.Circuit.announce line ~service in
          Ok
            {
              ln_accept =
                (fun () ->
                  let inc = Sim.Mbox.recv calls in
                  let caller = Dk.Circuit.caller inc in
                  let circ = Dk.Circuit.accept inc in
                  Ok (urp_conv line (Dk.Urp.over circ) ~remote:caller, caller));
              ln_set_backlog = (fun _ -> Error "dk has no backlog");
              ln_status = (fun () -> "0 Announced");
              ln_close = (fun () -> ());
            }
        with Invalid_argument e -> Error e);
  }
