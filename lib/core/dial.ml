exception Dial_error of string

type conn = {
  dir : string;
  ctl_fd : Vfs.Env.fd;
  data_fd : Vfs.Env.fd;
}

type announcement = { ann_dir : string; ann_ctl_fd : Vfs.Env.fd }

let netmkaddr addr ?(defnet = "net") ?(defsvc = "") () =
  match String.split_on_char '!' addr with
  | [ _; _; _ ] -> addr
  | [ net; host ] when defsvc <> "" -> Printf.sprintf "%s!%s!%s" net host defsvc
  | [ _; _ ] -> addr
  | [ host ] ->
    if defsvc = "" then Printf.sprintf "%s!%s" defnet host
    else Printf.sprintf "%s!%s!%s" defnet host defsvc
  | _ -> addr

(* consult /net/cs; fall back to treating the name as
   net!rawaddr!service when there is no cs file *)
let translate env addr =
  match
    (try Some (Vfs.Env.open_ env "/net/cs" Ninep.Fcall.Ordwr)
     with Vfs.Chan.Error _ -> None)
  with
  | Some fd ->
    Fun.protect
      ~finally:(fun () -> Vfs.Env.close env fd)
      (fun () ->
        (match Vfs.Env.write env fd addr with
        | _ -> ()
        | exception Vfs.Chan.Error e -> raise (Dial_error e));
        Vfs.Env.seek env fd 0L;
        let buf = Buffer.create 256 in
        let rec drain () =
          let s = Vfs.Env.read env fd 8192 in
          if s <> "" then begin
            Buffer.add_string buf s;
            drain ()
          end
        in
        drain ();
        Buffer.contents buf |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
        |> List.filter_map (fun line ->
               match String.index_opt line ' ' with
               | Some i ->
                 Some
                   ( String.sub line 0 i,
                     String.sub line (i + 1) (String.length line - i - 1) )
               | None -> None))
  | None -> (
    (* no cs: net!host!svc -> /net/<net>/clone host!svc *)
    match String.split_on_char '!' addr with
    | net :: rest when net <> "net" && rest <> [] ->
      [ (Printf.sprintf "/net/%s/clone" net, String.concat "!" rest) ]
    | _ -> [])

(* open a clone file, read the connection number, return (dir, ctl fd) *)
let reserve env clone_path =
  let ctl_fd = Vfs.Env.open_ env clone_path Ninep.Fcall.Ordwr in
  let n = Vfs.Env.read env ctl_fd 32 in
  if n = "" then begin
    Vfs.Env.close env ctl_fd;
    raise (Dial_error (clone_path ^ ": cannot read connection number"))
  end;
  let proto_dir = Filename.dirname clone_path in
  (Printf.sprintf "%s/%s" proto_dir (String.trim n), ctl_fd)

(* the engine's obs sink, reached through the calling process — dial
   has no engine parameter, and spans only make sense inside a proc *)
let span_obs () =
  match Sim.Proc.self_opt () with
  | None -> None
  | Some p -> Sim.Engine.obs (Sim.Proc.engine p)

let dial_translated env ~addr translations =
  if translations = [] then
    raise (Dial_error ("cannot translate address " ^ addr));
  let rec try_each last_err = function
    | [] ->
      raise
        (Dial_error
           (Printf.sprintf "dial %s: %s" addr
              (match last_err with Some e -> e | None -> "no destinations")))
    | (clone_path, message) :: rest -> (
      match
        (try
           let dir, ctl_fd = reserve env clone_path in
           (try ignore (Vfs.Env.write env ctl_fd ("connect " ^ message))
            with Vfs.Chan.Error e ->
              Vfs.Env.close env ctl_fd;
              raise (Dial_error e));
           let data_fd =
             try Vfs.Env.open_ env (dir ^ "/data") Ninep.Fcall.Ordwr
             with Vfs.Chan.Error e ->
               Vfs.Env.close env ctl_fd;
               raise (Dial_error e)
           in
           Ok { dir; ctl_fd; data_fd }
         with
        | Dial_error e -> Error e
        | Vfs.Chan.Error e -> Error e)
      with
      | Ok conn -> conn
      | Error e -> try_each (Some e) rest)
  in
  try_each None translations

let dial env ?local addr =
  ignore local;
  let obs = span_obs () in
  let sp =
    match obs with
    | None -> Obs.Span.none
    | Some tr -> Obs.Span.enter tr ~layer:"dial" ("dial " ^ addr)
  in
  let fin () = match obs with None -> () | Some tr -> Obs.Span.exit tr sp in
  match
    let translations =
      let csp =
        match obs with
        | None -> Obs.Span.none
        | Some tr -> Obs.Span.enter tr ~layer:"cs" ("cs " ^ addr)
      in
      match translate env addr with
      | r ->
        (match obs with None -> () | Some tr -> Obs.Span.exit tr csp);
        r
      | exception e ->
        (match obs with None -> () | Some tr -> Obs.Span.exit tr csp);
        raise e
    in
    dial_translated env ~addr translations
  with
  | conn ->
    fin ();
    conn
  | exception e ->
    fin ();
    raise e

let redial env ?(tries = 5) ?(pause = fun () -> ()) ?local addr =
  (* dial with retries: the pattern every survivable client uses once
     links can partition — a failed dial is an error, not a hang, so
     the caller just tries again (after letting some virtual time
     pass via [pause]) *)
  if tries < 1 then invalid_arg "Dial.redial: tries < 1";
  let rec go n =
    match dial env ?local addr with
    | conn -> conn
    | exception Dial_error e -> if n >= tries then raise (Dial_error e) else begin
        pause ();
        go (n + 1)
      end
  in
  go 1

let announce env addr =
  let translations = translate env addr in
  let rec try_each last_err = function
    | [] ->
      raise
        (Dial_error
           (Printf.sprintf "announce %s: %s" addr
              (match last_err with Some e -> e | None -> "cannot translate")))
    | (clone_path, message) :: rest -> (
      match
        (try
           let dir, ctl_fd = reserve env clone_path in
           (try ignore (Vfs.Env.write env ctl_fd ("announce " ^ message))
            with Vfs.Chan.Error e ->
              Vfs.Env.close env ctl_fd;
              raise (Dial_error e));
           Ok { ann_dir = dir; ann_ctl_fd = ctl_fd }
         with
        | Dial_error e -> Error e
        | Vfs.Chan.Error e -> Error e)
      with
      | Ok a -> a
      | Error e -> try_each (Some e) rest)
  in
  try_each None translations

let listen env ann =
  (* opening the listen file blocks until a call arrives; the returned
     descriptor points at the new connection's ctl file *)
  let lcfd =
    try Vfs.Env.open_ env (ann.ann_dir ^ "/listen") Ninep.Fcall.Ordwr
    with Vfs.Chan.Error e -> raise (Dial_error e)
  in
  let n = String.trim (Vfs.Env.read env lcfd 32) in
  if n = "" then begin
    Vfs.Env.close env lcfd;
    raise (Dial_error "listen: cannot read connection number")
  end;
  let proto_dir = Filename.dirname ann.ann_dir in
  { dir = Printf.sprintf "%s/%s" proto_dir n; ctl_fd = lcfd; data_fd = -1 }

let accept env conn =
  try Vfs.Env.open_ env (conn.dir ^ "/data") Ninep.Fcall.Ordwr
  with Vfs.Chan.Error e -> raise (Dial_error e)

let reject env conn ~reason =
  (try ignore (Vfs.Env.write env conn.ctl_fd ("hangup " ^ reason))
   with Vfs.Chan.Error _ -> (
     try ignore (Vfs.Env.write env conn.ctl_fd "hangup")
     with Vfs.Chan.Error _ -> ()));
  Vfs.Env.close env conn.ctl_fd

let hangup env conn =
  if conn.data_fd >= 0 then Vfs.Env.close env conn.data_fd;
  Vfs.Env.close env conn.ctl_fd
