(** A snoopy-style packet tap (paper section 2.2: the Ethernet driver's
    "diagnostic interfaces for snooping software").

    [start] attaches a promiscuous station to a simulated Ethernet
    segment; every frame on the wire — whoever it was addressed to —
    is rendered to text by {!Obs.Snoopy} and appended to an in-memory
    capture.  The tap is passive: it never transmits, so it perturbs
    nothing, and rendering is pure string parsing so captures are
    byte-identical across same-seed runs. *)

type t

val default_addr : string
(** The tap's station address, ["feeddefaced0"] — chosen to collide
    with nothing a host would use. *)

val start : ?addr:string -> Netsim.Ether.t -> t
(** Attach the tap to a segment.
    @raise Invalid_argument if [addr] is already on the segment. *)

val stop : t -> unit
(** Pause capture (frames pass uncounted). *)

val resume : t -> unit
val dump : t -> string
(** The capture so far, one line per frame, e.g.
    {v
    0.000125 ether(080069020001 > ffffffffffff) arp who-has 10.0.0.2 tell 10.0.0.1
    v} *)

val clear : t -> unit
val frames : t -> int
(** Frames captured since [start] (survives [clear]). *)

val proto_counts : t -> (string * int) list
(** Frames per innermost protocol ("arp", "il", "udp", ...), sorted. *)

val summary : t -> string
(** [proto_counts] as ["proto count\n"] lines. *)

val mount : Vfs.Env.t -> t -> unit
(** Serve the capture at [/net/snoop]: reading returns the rendered
    frames; writing [clear]/[stop]/[start] controls the tap and
    [stats] replies with {!summary}. *)
