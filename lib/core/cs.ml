type network = {
  nw_proto : string;
  nw_clone : string;
  nw_kind : [ `Inet | `Dk ];
}

type t = {
  sysname : string;
  db : Ndb.t;
  networks : network list;
  dns : string -> string list;
  (* the database is immutable, so every query has one answer for the
     life of the server: memoize it.  A thousand dials to the same
     service cost one ndb walk, not a thousand. *)
  cache : (string, (string list, string) result) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let make ~sysname ~db ~networks ?(dns = fun _ -> []) () =
  { sysname; db; networks; dns; cache = Hashtbl.create 31;
    cache_hits = 0; cache_misses = 0 }

let cache_stats t = (t.cache_hits, t.cache_misses)

let flush_cache t =
  Hashtbl.reset t.cache;
  t.cache_hits <- 0;
  t.cache_misses <- 0

let looks_like_ip s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    List.for_all
      (fun x -> match int_of_string_opt x with Some v -> v >= 0 && v <= 255 | None -> false)
      [ a; b; c; d ]
  | _ -> false

let looks_like_dom s = String.contains s '.' && not (looks_like_ip s)

(* destination addresses a network can use for a host *)
let addrs_for t nw host =
  if host = "*" then [ "*" ]
  else
    match nw.nw_kind with
    | `Inet -> (
      if looks_like_ip host then [ host ]
      else
        match Ndb.sys_entry t.db host with
        | Some e -> (
          match Ndb.get_all e "ip" with
          | [] -> []
          | ips -> ips)
        | None -> if looks_like_dom host then t.dns host else [])
    | `Dk -> (
      (* a literal dk path like nj/astro/helix passes through *)
      if String.contains host '/' then [ host ]
      else
        match Ndb.sys_entry t.db host with
        | Some e -> Ndb.get_all e "dk"
        | None -> [])

(* the service translated for a network: ports for IP protocols,
   literal service names for Datakit *)
let service_for t nw service =
  if service = "" then Some ""
  else
    match nw.nw_kind with
    | `Inet -> (
      match Ndb.service_port t.db ~proto:nw.nw_proto ~service with
      | Some port -> Some (string_of_int port)
      | None when nw.nw_proto = "tcpcc" -> (
        (* tcpcc shares TCP's wire format and port space: databases
           predating the variant need no tcpcc= service lines *)
        match Ndb.service_port t.db ~proto:"tcp" ~service with
        | Some port -> Some (string_of_int port)
        | None -> None)
      | None -> None)
    | `Dk -> Some service

let split_bang s = String.split_on_char '!' s

(* hosts named $attr resolve through the database relative to the
   source system *)
let resolve_meta t host =
  if String.length host > 1 && host.[0] = '$' then begin
    let attr = String.sub host 1 (String.length host - 1) in
    (* every value of the attribute most closely associated with us *)
    let direct =
      match Ndb.sys_entry t.db t.sysname with
      | Some e -> Ndb.get_all e attr
      | None -> []
    in
    let vals =
      if direct <> [] then direct
      else
        match Ndb.sysattr t.db ~sys:t.sysname ~attr with
        | Some v -> [ v ]
        | None -> []
    in
    if vals = [] then Error ("no attribute " ^ attr) else Ok vals
  end
  else Ok [ host ]

let translate_uncached t query =
  match split_bang query with
  | [] | [ _ ] -> Error ("cs: malformed query: " ^ query)
  | netname :: host :: rest -> (
    let service = String.concat "!" rest in
    let networks =
      if netname = "net" then t.networks
      else
        match List.filter (fun nw -> nw.nw_proto = netname) t.networks with
        | _ :: _ as nws -> nws
        | [] -> (
          (* an explicitly named protocol is translated even when this
             host has no such network: after an [import -a helix /net]
             the clone file in the reply resolves to the gateway's
             device — that is the whole point of section 6.1 *)
          match netname with
          | "il" | "tcp" | "tcpcc" | "udp" ->
            [
              {
                nw_proto = netname;
                nw_clone = Printf.sprintf "/net/%s/clone" netname;
                nw_kind = `Inet;
              };
            ]
          | "dk" ->
            [ { nw_proto = "dk"; nw_clone = "/net/dk/clone"; nw_kind = `Dk } ]
          | _ -> [])
    in
    if networks = [] then Error ("cs: no network " ^ netname)
    else
      match resolve_meta t host with
      | Error e -> Error ("cs: " ^ e)
      | Ok hosts ->
        let lines =
          List.concat_map
            (fun nw ->
              match service_for t nw service with
              | None -> []
              | Some svc ->
                List.concat_map
                  (fun host ->
                    List.map
                      (fun addr ->
                        if svc = "" then
                          Printf.sprintf "%s %s" nw.nw_clone addr
                        else
                          Printf.sprintf "%s %s!%s" nw.nw_clone addr svc)
                      (addrs_for t nw host))
                  hosts)
            networks
        in
        if lines = [] then
          Error (Printf.sprintf "cs: no translation for %s" query)
        else Ok lines)

let translate t query =
  match Hashtbl.find_opt t.cache query with
  | Some r ->
    t.cache_hits <- t.cache_hits + 1;
    r
  | None ->
    t.cache_misses <- t.cache_misses + 1;
    let r = translate_uncached t query in
    Hashtbl.replace t.cache query r;
    r

let fs t =
  Onefile.fs ~name:"cs" ~filename:"cs"
    ~handle:(fun ~uname:_ query ->
      match translate t query with
      | Ok lines -> Ok (String.concat "\n" lines ^ "\n")
      | Error e -> Error e)
    ()

let mount env t = Vfs.Env.mount_fs env (fs t) ~onto:"/net" Vfs.Ns.After
