(** Protocol devices (paper section 2.3).

    "Network connections are represented as pseudo-devices called
    protocol devices ... All protocol devices look identical so user
    programs contain no network-specific code."

    Each protocol device serves the canonical tree

    {v
    /clone
    /0/ctl  /0/data  /0/listen  /0/local  /0/remote  /0/status  /0/stats
    /1/...
    v}

    with the paper's semantics: opening [clone] reserves an unused
    connection and yields its [ctl] file; reading that file returns the
    ASCII connection number; writing [connect <addr>] establishes a
    call; writing [announce <addr>] registers a listener; opening
    [listen] blocks for an incoming call and the descriptor returned
    points at the {e new} connection's ctl file.

    The same device code serves IL, TCP, UDP, and Datakit/URP through a
    small record of protocol operations — the network-specific part is
    only address parsing and the conversation calls. *)

type conv_ops = {
  cv_read : count:int -> string;
      (** blocking; respects message delimiters where the protocol has
          them; [""] at end of conversation *)
  cv_write : string -> (int, string) result;
  cv_local : unit -> string;
  cv_remote : unit -> string;
  cv_status : unit -> string;
  cv_stats : unit -> string;
      (** per-connection statistics, one ["name value\n"] line per
          counter — the [stats] file *)
  cv_close : unit -> unit;
}

type listener_ops = {
  ln_accept : unit -> (conv_ops * string, string) result;
      (** blocks; also returns the remote address for the new conn *)
  ln_set_backlog : int -> (unit, string) result;
      (** the ctl message [backlog n]; protocols without a bounded
          accept queue answer [Error] *)
  ln_status : unit -> string;
      (** announced-state detail for the [status] file, e.g.
          ["17008 Announced backlog 16 queued 0 refused 0"] *)
  ln_close : unit -> unit;
}

type proto = {
  pr_name : string;  (** directory name under /net: "il", "tcp", ... *)
  pr_connect : string -> (conv_ops * string, string) result;
      (** [addr] is the protocol-specific ASCII string CS produced,
          e.g. ["135.104.9.31!17008"]; blocks until established; also
          returns the remote address string *)
  pr_announce : string -> (listener_ops, string) result;
}

type node

val fs : Sim.Engine.t -> proto -> node Ninep.Server.fs
(** The device as a kernel-resident file server. *)

val mount : Vfs.Env.t -> Sim.Engine.t -> proto -> unit
(** Serve the device tree at [/net/<pr_name>] (creating the directory
    if needed). *)

(** {1 Protocol adapters} *)

val il_proto : Inet.Il.stack -> proto
val tcp_proto : Inet.Tcp.stack -> proto
val udp_proto : Inet.Udp.stack -> proto
val dk_proto : Dk.Switch.line -> proto
