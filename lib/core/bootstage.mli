(** The staged diskless boot workload (paper section 7's "the terminal
    boots by loading a kernel from the file server").

    A powering-on terminal reads in three stages: the {b kernel} image
    (whose path is the terminal's [bootf=] ndb attribute), the
    {b binaries} the init sequence execs, and the startup {b libraries}
    — several of which every subsequent shell re-reads, which is what a
    cache tier turns into hits.  The workload is sized from the same
    ndb that shapes the network: [/lib/ndb/local] grows with the number
    of database entries.

    Deterministic throughout: same [db]/[sys] → same files, same bytes,
    same trace. *)

type stage = { sg_name : string; sg_files : (string * int) list }

val bootf : db:Ndb.t -> sys:string -> string
(** The terminal's kernel path: its entry's [bootf=] value, or
    ["/mips/9power"] when unset. *)

val stages : db:Ndb.t -> sys:string -> stage list
(** kernel, binaries, libraries — in boot order. *)

val all_files : db:Ndb.t -> sys:string -> (string * int) list
(** Every (path, size) across the stages, in boot order. *)

val trace : db:Ndb.t -> sys:string -> string list
(** The replayed read sequence: each stage's files once, then the
    startup-file re-reads. *)

val trace_bytes : db:Ndb.t -> sys:string -> int
(** Total bytes a full trace replay reads. *)

val file_body : string -> int -> string
(** Deterministic pseudo-contents for a path. *)

val populate : db:Ndb.t -> sys:string -> Ninep.Ramfs.t -> unit
(** Install every stage file (with {!file_body} contents) into the
    origin server's ramfs. *)
