type file = Root | Data | Ctl

type dev = {
  index : int;
  line : Netsim.Serial.endpoint;
  rq : Block.Q.t;  (* received bytes; a plain byte stream *)
}

type node = { dev : dev; mutable f : file; mutable opened : bool }

let qid_of f =
  match f with
  | Root -> { Ninep.Fcall.qpath = Int32.logor Ninep.Fcall.qdir_bit 1l; qvers = 0l }
  | Data -> { Ninep.Fcall.qpath = 2l; qvers = 0l }
  | Ctl -> { Ninep.Fcall.qpath = 3l; qvers = 0l }

let file_name dev = function
  | Root -> "."
  | Data -> Printf.sprintf "eia%d" dev.index
  | Ctl -> Printf.sprintf "eia%dctl" dev.index

let stat_of dev f =
  {
    Ninep.Fcall.d_name = file_name dev f;
    d_uid = "bootes";
    d_gid = "bootes";
    d_qid = qid_of f;
    d_mode =
      (if f = Root then Int32.logor Ninep.Fcall.dmdir 0o555l else 0o666l);
    d_atime = 0l;
    d_mtime = 0l;
    d_length = 0L;
    d_type = Char.code 't';
    d_dev = 0;
  }

let ctl_write dev text =
  let cmd = String.trim text in
  if String.length cmd >= 2 && cmd.[0] = 'b' then
    match int_of_string_opt (String.sub cmd 1 (String.length cmd - 1)) with
    | Some baud when baud > 0 ->
      Netsim.Serial.set_baud dev.line baud;
      Ok ()
    | Some _ | None -> Error ("bad baud rate: " ^ cmd)
  else if cmd = "f" then begin
    (* flush pending input *)
    let rec drain () =
      if Block.Q.blocks dev.rq > 0 then begin
        ignore (Block.Q.read dev.rq 4096);
        drain ()
      end
    in
    drain ();
    Ok ()
  end
  else Error ("bad control message: " ^ cmd)

let fs ~index line =
  let eng = Netsim.Serial.engine line in
  let dev = { index; line; rq = Block.Q.create ~limit:(64 * 1024) eng } in
  (* interrupt side: queue the arriving bytes, dropping on overflow
     like a real UART fifo *)
  Netsim.Serial.set_rx line (fun bytes ->
      ignore (Block.Q.try_put dev.rq (Block.make bytes)));
  {
    Ninep.Server.fs_name = Printf.sprintf "eia%d" index;
    fs_attach =
      (fun ~uname:_ ~aname:_ -> Ok { dev; f = Root; opened = false });
    fs_qid = (fun n -> qid_of n.f);
    fs_walk =
      (fun n name ->
        match (n.f, name) with
        | Root, ".." -> Ok n
        | Root, name when name = file_name dev Data ->
          n.f <- Data;
          Ok n
        | Root, name when name = file_name dev Ctl ->
          n.f <- Ctl;
          Ok n
        | (Data | Ctl), ".." ->
          n.f <- Root;
          Ok n
        | (Root | Data | Ctl), _ -> Error "file does not exist");
    fs_open =
      (fun n _mode ~trunc:_ ->
        n.opened <- true;
        Ok ());
    fs_read =
      (fun n ~offset ~count ->
        if not n.opened then Error "not open"
        else
          match n.f with
          | Root ->
            Ok
              (Ninep.Server.dir_data
                 [ stat_of dev Data; stat_of dev Ctl ]
                 ~offset ~count)
          | Data -> Ok (Block.Q.read dev.rq count)
          | Ctl ->
            Ok
              (Ninep.Server.slice
                 (Printf.sprintf "b%d\n" (Netsim.Serial.baud dev.line))
                 ~offset ~count));
    fs_write =
      (fun n ~offset:_ ~data ->
        if not n.opened then Error "not open"
        else
          match n.f with
          | Root -> Error "permission denied"
          | Data ->
            Netsim.Serial.send dev.line data;
            Ok (String.length data)
          | Ctl -> (
            match ctl_write dev data with
            | Ok () -> Ok (String.length data)
            | Error e -> Error e));
    fs_create = (fun _ ~name:_ ~perm:_ _ -> Error "permission denied");
    fs_remove = (fun _ -> Error "permission denied");
    fs_stat = (fun n -> Ok (stat_of dev n.f));
    fs_wstat = (fun _ _ -> Error "permission denied");
    fs_clunk = (fun _ -> ());
    fs_clone = (fun n -> { dev = n.dev; f = n.f; opened = false });
  }

(* 9P straight over the wire: a serial line preserves bytes, not
   message boundaries, so each message travels length-prefixed and a
   stateful splitter reassembles them on receive (exactly the TCP
   treatment from Fcall.Frame). *)
let transport line =
  let eng = Netsim.Serial.engine line in
  let inbox : string option Sim.Mbox.t = Sim.Mbox.create eng in
  let sp = Ninep.Fcall.Frame.splitter () in
  let closed = ref false in
  Netsim.Serial.set_rx line (fun bytes ->
      List.iter
        (fun msg -> Sim.Mbox.send inbox (Some msg))
        (Ninep.Fcall.Frame.feed sp bytes));
  {
    Ninep.Transport.t_send =
      (fun msg ->
        if not !closed then
          Netsim.Serial.send line (Ninep.Fcall.Frame.wrap msg));
    t_recv = (fun () -> if !closed then None else Sim.Mbox.recv inbox);
    t_close =
      (fun () ->
        if not !closed then begin
          closed := true;
          Sim.Mbox.send inbox None
        end);
  }

let mount env ~index line =
  (try ignore (Vfs.Env.stat env "/dev")
   with Vfs.Chan.Error _ ->
     Vfs.Env.close env
       (Vfs.Env.create env "/dev"
          ~perm:(Int32.logor Ninep.Fcall.dmdir 0o775l)
          Ninep.Fcall.Oread));
  Vfs.Env.mount_fs env (fs ~index line) ~onto:"/dev" Vfs.Ns.After
