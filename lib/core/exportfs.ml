type node = {
  env : Vfs.Env.t;
  mutable ch : Vfs.Chan.t;
  mutable opened : bool;
  mutable dirdata : string option;  (* union snapshot for dir reads *)
}

let union_snapshot env ch =
  let entries = Vfs.Ns.read_dir (Vfs.Env.ns env) ch in
  String.concat "" (List.map Ninep.Fcall.encode_dir entries)

(* Qids must be unique per 9P connection, but a re-exported name space
   draws on several underlying servers whose qid spaces are
   independent — relaying their qpaths verbatim can alias two distinct
   files at the importer (whose mount table and caches key on the
   qid).  Each export therefore issues its own qpaths, stable per
   underlying file (keyed by the channel's device+qid identity); the
   directory bit and the version — which caches watch for
   invalidation — pass through. *)
type qmap = { qm_tbl : (int * int32, int32) Hashtbl.t; mutable qm_next : int32 }

let remap_qid qm key q =
  let path =
    match Hashtbl.find_opt qm.qm_tbl key with
    | Some p -> p
    | None ->
      let p = qm.qm_next in
      qm.qm_next <- Int32.add p 1l;
      Hashtbl.add qm.qm_tbl key p;
      p
  in
  let dir = Int32.logand q.Ninep.Fcall.qpath Ninep.Fcall.qdir_bit in
  { q with Ninep.Fcall.qpath = Int32.logor path dir }

let fs env =
  let qm = { qm_tbl = Hashtbl.create 64; qm_next = 1l } in
  {
    Ninep.Server.fs_name = "exportfs";
    fs_attach =
      (fun ~uname:_ ~aname ->
        let path = if aname = "" then "/" else aname in
        match Vfs.Env.resolve env path with
        | ch -> Ok { env; ch; opened = false; dirdata = None }
        | exception Vfs.Chan.Error e -> Error e);
    fs_qid = (fun n -> remap_qid qm (Vfs.Chan.key n.ch) (Vfs.Chan.qid n.ch));
    fs_walk =
      (fun n name ->
        if name = ".." then
          (* exportfs keeps no path state; ".." is resolved by the
             importer's lexical cleanup before it ever reaches us *)
          Error "walk .. not supported across export"
        else
          (* walk1 clones union members under the hood; a member whose
             upstream died can still raise through the clone path —
             relay the error instead of letting it kill the server *)
          match Vfs.Ns.walk1 (Vfs.Env.ns n.env) n.ch name with
          | Ok ch ->
            n.ch <- ch;
            Ok n
          | Error e -> Error e
          | exception Vfs.Chan.Error e -> Error e);
    fs_open =
      (fun n mode ~trunc ->
        match
          if Vfs.Chan.is_dir n.ch then begin
            (* union listing is computed from the underlying channel *)
            n.dirdata <- Some (union_snapshot n.env n.ch);
            Vfs.Chan.open_ n.ch mode
          end
          else begin
            (* a file that is a mount point must be entered so the
               mounted file, not the one beneath, is opened *)
            n.ch <- Vfs.Ns.enter (Vfs.Env.ns n.env) n.ch;
            Vfs.Chan.open_ n.ch ~trunc mode
          end
        with
        | () ->
          n.opened <- true;
          Ok ()
        | exception Vfs.Chan.Error e -> Error e);
    fs_read =
      (fun n ~offset ~count ->
        if not n.opened then Error "not open"
        else
          match n.dirdata with
          | Some data -> Ok (Ninep.Server.slice data ~offset ~count)
          | None -> (
            match Vfs.Chan.read n.ch ~offset ~count with
            | data -> Ok data
            | exception Vfs.Chan.Error e -> Error e));
    fs_write =
      (fun n ~offset ~data ->
        if not n.opened then Error "not open"
        else
          match Vfs.Chan.write n.ch ~offset data with
          | count -> Ok count
          | exception Vfs.Chan.Error e -> Error e);
    fs_create =
      (fun n ~name ~perm mode ->
        (* create lands in the first union member with MCREATE set, as
           in the kernel; a union that forbids creation relays the
           refusal *)
        match
          let target =
            match Vfs.Ns.create_target (Vfs.Env.ns n.env) n.ch with
            | Ok c -> c
            | Error e -> raise (Vfs.Chan.Error e)
          in
          Vfs.Chan.create target ~name ~perm mode
        with
        | ch ->
          n.ch <- ch;
          n.opened <- true;
          Ok n
        | exception Vfs.Chan.Error e -> Error e);
    fs_remove =
      (fun n ->
        match Vfs.Chan.remove n.ch with
        | () -> Ok ()
        | exception Vfs.Chan.Error e -> Error e);
    fs_stat =
      (fun n ->
        match Vfs.Chan.stat n.ch with
        | d ->
          (* the stat's qid must agree with the walk's *)
          Ok
            {
              d with
              Ninep.Fcall.d_qid =
                remap_qid qm (Vfs.Chan.key n.ch) d.Ninep.Fcall.d_qid;
            }
        | exception Vfs.Chan.Error e -> Error e);
    fs_wstat =
      (fun n d ->
        match Vfs.Chan.wstat n.ch d with
        | () -> Ok ()
        | exception Vfs.Chan.Error e -> Error e);
    fs_clunk = (fun n -> Vfs.Chan.clunk n.ch);
    fs_clone =
      (fun n ->
        {
          env = n.env;
          ch = Vfs.Chan.clone n.ch;
          opened = false;
          dirdata = None;
        });
  }

let serve eng env tr = Ninep.Server.serve ~threaded:true eng (fs env) tr

let import eng env ?(proto = "net") ?(mcreate = true) ~host ~remote_root
    ~onto ?(flag = Vfs.Ns.After) () =
  (* the import span is the root covering dial (cs lookup + transport
     handshake), the 9P session and the attach: one trace per mount *)
  let obs = Sim.Engine.obs eng in
  let sp =
    match obs with
    | None -> Obs.Span.none
    | Some tr -> Obs.Span.enter tr ~layer:"import" ("import " ^ host)
  in
  let fin () = match obs with None -> () | Some tr -> Obs.Span.exit tr sp in
  match
    let conn = Dial.dial env (Printf.sprintf "%s!%s!exportfs" proto host) in
    (* the ctl fd must stay open or the connection would drop; it is
       owned by the mount from here on.  9P flows over the data fd. *)
    let tr = Fdtrans.of_fd env conn.Dial.data_fd in
    let client = Ninep.Client.make eng tr in
    Ninep.Client.session client;
    Vfs.Env.mount ~mcreate env client ~aname:remote_root ~onto flag
  with
  | r ->
    fin ();
    r
  | exception e ->
    fin ();
    raise e
