type node = {
  env : Vfs.Env.t;
  mutable ch : Vfs.Chan.t;
  mutable opened : bool;
  mutable dirdata : string option;  (* union snapshot for dir reads *)
}

let union_snapshot env ch =
  let entries = Vfs.Ns.read_dir (Vfs.Env.ns env) ch in
  String.concat "" (List.map Ninep.Fcall.encode_dir entries)

let fs env =
  {
    Ninep.Server.fs_name = "exportfs";
    fs_attach =
      (fun ~uname:_ ~aname ->
        let path = if aname = "" then "/" else aname in
        match Vfs.Env.resolve env path with
        | ch -> Ok { env; ch; opened = false; dirdata = None }
        | exception Vfs.Chan.Error e -> Error e);
    fs_qid = (fun n -> Vfs.Chan.qid n.ch);
    fs_walk =
      (fun n name ->
        if name = ".." then
          (* exportfs keeps no path state; ".." is resolved by the
             importer's lexical cleanup before it ever reaches us *)
          Error "walk .. not supported across export"
        else
          match Vfs.Ns.walk1 (Vfs.Env.ns n.env) n.ch name with
          | Ok ch ->
            n.ch <- ch;
            Ok n
          | Error e -> Error e);
    fs_open =
      (fun n mode ~trunc ->
        match
          if Vfs.Chan.is_dir n.ch then begin
            (* union listing is computed from the underlying channel *)
            n.dirdata <- Some (union_snapshot n.env n.ch);
            Vfs.Chan.open_ n.ch mode
          end
          else begin
            (* a file that is a mount point must be entered so the
               mounted file, not the one beneath, is opened *)
            n.ch <- Vfs.Ns.enter (Vfs.Env.ns n.env) n.ch;
            Vfs.Chan.open_ n.ch ~trunc mode
          end
        with
        | () ->
          n.opened <- true;
          Ok ()
        | exception Vfs.Chan.Error e -> Error e);
    fs_read =
      (fun n ~offset ~count ->
        if not n.opened then Error "not open"
        else
          match n.dirdata with
          | Some data -> Ok (Ninep.Server.slice data ~offset ~count)
          | None -> (
            match Vfs.Chan.read n.ch ~offset ~count with
            | data -> Ok data
            | exception Vfs.Chan.Error e -> Error e));
    fs_write =
      (fun n ~offset ~data ->
        if not n.opened then Error "not open"
        else
          match Vfs.Chan.write n.ch ~offset data with
          | count -> Ok count
          | exception Vfs.Chan.Error e -> Error e);
    fs_create =
      (fun n ~name ~perm mode ->
        (* create lands in the first union member, as in the kernel *)
        match
          Vfs.Chan.create
            (Vfs.Ns.enter (Vfs.Env.ns n.env) n.ch)
            ~name ~perm mode
        with
        | ch ->
          n.ch <- ch;
          n.opened <- true;
          Ok n
        | exception Vfs.Chan.Error e -> Error e);
    fs_remove =
      (fun n ->
        match Vfs.Chan.remove n.ch with
        | () -> Ok ()
        | exception Vfs.Chan.Error e -> Error e);
    fs_stat =
      (fun n ->
        match Vfs.Chan.stat n.ch with
        | d -> Ok d
        | exception Vfs.Chan.Error e -> Error e);
    fs_wstat =
      (fun n d ->
        match Vfs.Chan.wstat n.ch d with
        | () -> Ok ()
        | exception Vfs.Chan.Error e -> Error e);
    fs_clunk = (fun n -> Vfs.Chan.clunk n.ch);
    fs_clone =
      (fun n ->
        {
          env = n.env;
          ch = Vfs.Chan.clone n.ch;
          opened = false;
          dirdata = None;
        });
  }

let serve eng env tr = Ninep.Server.serve ~threaded:true eng (fs env) tr

let import eng env ?(proto = "net") ~host ~remote_root ~onto
    ?(flag = Vfs.Ns.After) () =
  (* the import span is the root covering dial (cs lookup + transport
     handshake), the 9P session and the attach: one trace per mount *)
  let obs = Sim.Engine.obs eng in
  let sp =
    match obs with
    | None -> Obs.Span.none
    | Some tr -> Obs.Span.enter tr ~layer:"import" ("import " ^ host)
  in
  let fin () = match obs with None -> () | Some tr -> Obs.Span.exit tr sp in
  match
    let conn = Dial.dial env (Printf.sprintf "%s!%s!exportfs" proto host) in
    (* the ctl fd must stay open or the connection would drop; it is
       owned by the mount from here on.  9P flows over the data fd. *)
    let tr = Fdtrans.of_fd env conn.Dial.data_fd in
    let client = Ninep.Client.make eng tr in
    Ninep.Client.session client;
    Vfs.Env.mount env client ~aname:remote_root ~onto flag
  with
  | r ->
    fin ();
    r
  | exception e ->
    fin ();
    raise e
