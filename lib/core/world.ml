type t = {
  eng : Sim.Engine.t;
  ether : Netsim.Ether.t;
  segments : (string * Netsim.Ether.t) list;
  dk : Dk.Switch.t;
  db : Ndb.t;
  mutable hosts : (string * Host.t) list;
}

let create ?seed ?sched ?(ether_loss = 0.) ?(ether_bandwidth = 10e6) ~db () =
  let eng = Sim.Engine.create ?seed ?sched () in
  {
    eng;
    ether =
      Netsim.Ether.create ~bandwidth_bps:ether_bandwidth ~loss:ether_loss
        ~name:"ether0" eng;
    segments = [];
    dk = Dk.Switch.create ~name:"dk" eng;
    db;
    hosts = [];
  }

(* A routed world: one Ethernet segment per ipnet entry (dk-medium
   subnets become tunnels over the one Datakit switch instead). *)
let routed ?seed ?sched ?(ether_bandwidth = 10e6) ?dk_bandwidth ~db () =
  let eng = Sim.Engine.create ?seed ?sched () in
  let segments =
    List.filter_map
      (fun e ->
        match Ndb.get e "ipnet" with
        | Some netname when Ndb.get e "medium" <> Some "dk" ->
          Some
            ( netname,
              Netsim.Ether.create ~bandwidth_bps:ether_bandwidth ~name:netname
                eng )
        | _ -> None)
      (Ndb.entries db)
  in
  let ether =
    match segments with
    | (_, seg) :: _ -> seg
    | [] -> Netsim.Ether.create ~bandwidth_bps:ether_bandwidth ~name:"ether0" eng
  in
  {
    eng;
    ether;
    segments;
    dk = Dk.Switch.create ?bandwidth_bps:dk_bandwidth ~name:"dk" eng;
    db;
    hosts = [];
  }

let add_host ?il_config ?tcp_config ?tcpcc_config ?dns_server t name =
  let h =
    Host.create ?il_config ?tcp_config ?tcpcc_config ?dns_server
      ~ether:t.ether ~segments:t.segments ~dk:t.dk ~db:t.db ~name t.eng
  in
  t.hosts <- (name, h) :: t.hosts;
  h

let host t name = List.assoc name t.hosts
let run ?until t = Sim.Engine.run ?until t.eng
let ether_faults t = Netsim.Ether.faults t.ether

let segment_faults t name =
  Netsim.Ether.faults (List.assoc name t.segments)

let dk_faults t = Dk.Switch.faults t.dk

(* Fill every gateway's route table from the topology itself: breadth
   first over the gateway graph (two gateways are adjacent when they
   have interfaces on the same subnet), each db subnet a gateway is not
   on gets a route via the first hop toward the nearest gateway that
   is.  Deterministic: gateways sort by name, neighbours explore in
   that order. *)
let autoroute t =
  let gateways =
    List.filter_map
      (fun (name, h) ->
        match h.Host.node with
        | Some n when List.length (Route.ifaces n) >= 2 -> Some (name, n)
        | _ -> None)
      t.hosts
    |> List.sort compare
  in
  let gws = Array.of_list gateways in
  let n_gw = Array.length gws in
  let on_subnet node ~net ~mask =
    List.exists
      (fun i ->
        Inet.Ipaddr.equal i.Route.if_mask mask
        && Inet.Ipaddr.equal (Inet.Ipaddr.logand i.Route.if_addr mask) net)
      (Route.ifaces node)
  in
  (* the address of [other] on a subnet it shares with [node], if any *)
  let shared_addr node other =
    List.find_map
      (fun i ->
        let net = Inet.Ipaddr.logand i.Route.if_addr i.Route.if_mask in
        List.find_map
          (fun j ->
            if
              Inet.Ipaddr.equal i.Route.if_mask j.Route.if_mask
              && Inet.Ipaddr.equal
                   (Inet.Ipaddr.logand j.Route.if_addr j.Route.if_mask)
                   net
            then Some j.Route.if_addr
            else None)
          (Route.ifaces other))
      (Route.ifaces node)
  in
  let subnets =
    List.filter_map
      (fun e ->
        match (Ndb.get e "ipnet", Ndb.get e "ip") with
        | Some _, Some ipstr -> (
          match Inet.Ipaddr.of_string_opt ipstr with
          | Some ip ->
            let mask =
              match Ndb.get e "ipmask" with
              | Some m -> Inet.Ipaddr.of_string m
              | None -> Inet.Ipaddr.class_mask ip
            in
            Some (Inet.Ipaddr.logand ip mask, mask)
          | None -> None)
        | _, _ -> None)
      (Ndb.entries t.db)
  in
  Array.iteri
    (fun src (_, node) ->
      (* BFS: first_hop.(k) = the neighbour address src forwards through
         to reach gateway k *)
      let first_hop = Array.make n_gw None in
      let visited = Array.make n_gw false in
      visited.(src) <- true;
      let order = ref [] in
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iteri
          (fun v (_, vnode) ->
            if not visited.(v) then
              match shared_addr (snd gws.(u)) vnode with
              | Some addr ->
                visited.(v) <- true;
                first_hop.(v) <-
                  (if u = src then Some addr else first_hop.(u));
                order := v :: !order;
                Queue.add v q
              | None -> ())
          gws
      done;
      let order = List.rev !order in
      List.iter
        (fun (net, mask) ->
          if not (on_subnet node ~net ~mask) then
            (* nearest reached gateway on that subnet wins *)
            match
              List.find_opt
                (fun k -> on_subnet (snd gws.(k)) ~net ~mask)
                order
            with
            | Some k -> (
              match first_hop.(k) with
              | Some hop ->
                Route.Table.add (Route.table node) ~dest:net ~mask
                  (Route.Table.Via hop)
              | None -> ())
            | None -> ())
        subnets)
    gws

(* ---- the chain/union test cluster ---- *)

let cluster_ndb n =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "#\n# a flat cluster for import-chain and union-mount scenarios\n#\n";
  Buffer.add_string b "ipnet=cluster ip=10.20.0.0 ipmask=255.255.255.0\n\n";
  for i = 0 to n - 1 do
    Printf.bprintf b "sys = c%d\n\tip=10.20.0.%d ether=0a00200000%02x\n\tproto=il\n\n"
      i (10 + i) i
  done;
  Buffer.add_string b
    "il=exportfs\tport=17007\ntcp=exportfs\tport=17007\nil=echo\tport=56\n";
  Buffer.contents b

let cluster ?seed ?sched ?(n = 4) () =
  let db = Ndb.of_string (cluster_ndb n) in
  let w = create ?seed ?sched ~db () in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "c%d" i in
    let h = add_host w name in
    (* seed files every host exports; mount points must exist before
       any import lands on them *)
    Ninep.Ramfs.mkdir h.Host.root "/srv";
    Ninep.Ramfs.add_file h.Host.root "/srv/motd"
      (Printf.sprintf "hello from %s\n" name);
    Ninep.Ramfs.add_file h.Host.root (Printf.sprintf "/srv/%s" name)
      (Printf.sprintf "%s\n" name);
    Ninep.Ramfs.mkdir h.Host.root "/n/next";
    Ninep.Ramfs.mkdir h.Host.root "/u";
    Host.serve_exportfs h
  done;
  w

let host_faults t name =
  match (host t name).Host.etherport with
  | Some port -> Netsim.Ether.nic_faults (Inet.Etherport.nic port)
  | None -> failwith ("host_faults: " ^ name ^ " has no NIC")

(* ---- the diskless fleet: terminals x racks x one origin ---- *)

let fleet_origin = "origin"
let rack_sys k = Printf.sprintf "rk%02d" k
let terminal_sys k i = Printf.sprintf "tm%02d-%03d" k i
let rack_net k = Printf.sprintf "rack%d" k

(* The fleet's ndb: a spine subnet carrying the origin file server and
   one gateway per rack, plus a leaf subnet per rack full of diskless
   terminals.  The rack gateway's spine NIC comes FIRST so its primary
   stack (which carries its transports and CS) sits on the spine — the
   rack dials origin on-subnet, and terminals reach the rack's spine
   address through their inherited default route, delivered locally at
   the rack by the routing node. *)
let fleet_ndb ?(racks = 2) ?(terminals = 4) () =
  if racks < 1 || racks > 60 then invalid_arg "fleet_ndb: racks";
  if terminals < 1 || terminals > 240 then invalid_arg "fleet_ndb: terminals";
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let mac = ref 0 in
  let next_mac () =
    incr mac;
    Printf.sprintf "aa3069%06x" !mac
  in
  line "#";
  line "# diskless fleet: %d racks x %d terminals, one origin" racks terminals;
  line "#";
  line "ipnet=spine ip=10.90.0.0 ipmask=255.255.0.0";
  for k = 0 to racks - 1 do
    line "ipnet=%s ip=10.%d.0.0 ipmask=255.255.0.0" (rack_net k) (30 + k);
    line "\tipgw=10.%d.0.1" (30 + k)
  done;
  line "sys=%s" fleet_origin;
  line "\tip=10.90.0.9 ether=%s" (next_mac ());
  line "\tproto=il";
  for k = 0 to racks - 1 do
    line "sys=%s" (rack_sys k);
    line "\tip=10.90.0.%d ether=%s" (100 + k) (next_mac ());
    line "\tip=10.%d.0.1 ether=%s" (30 + k) (next_mac ());
    line "\tproto=il";
    for i = 0 to terminals - 1 do
      line "sys=%s" (terminal_sys k i);
      line "\tip=10.%d.1.%d ether=%s" (30 + k) (10 + i) (next_mac ());
      line "\tbootf=/mips/9power";
      line "\tproto=il"
    done
  done;
  line "il=exportfs\tport=17007";
  line "tcp=exportfs\tport=17007";
  line "il=9fs\tport=17008";
  line "tcp=9fs\tport=17008";
  Buffer.contents b

type fleet = {
  f_world : t;
  f_origin : Host.t;
  f_racks : string list;
  f_terminals : (string * string) list;  (* (rack sys, terminal sys) *)
  f_caches : (string, Cfs.t) Hashtbl.t;  (* rack sys -> its cache tier *)
}

let fleet ?seed ?sched ?(racks = 2) ?(terminals = 4) ?rack_config
    ?(tap = fun _rack tr -> tr) ?ether_bandwidth () =
  let db = Ndb.of_string (fleet_ndb ~racks ~terminals ()) in
  let w = routed ?seed ?sched ?ether_bandwidth ~db () in
  let origin = add_host w fleet_origin in
  (* every terminal boots the same staged file set; size it from the
     fleet's own database *)
  Bootstage.populate ~db ~sys:(terminal_sys 0 0) origin.Host.root;
  Host.serve_exportfs origin;
  let caches = Hashtbl.create (max 1 racks) in
  let rack_names = List.init racks rack_sys in
  List.iter
    (fun rname ->
      let rh = add_host w rname in
      (* the rack's cfsd: dial the origin, interpose the shared cache,
         and serve its 9P face to the rack's terminals *)
      ignore
        (Host.spawn rh "cfsd" (fun env ->
             Sim.Time.sleep w.eng 0.5;
             let conn =
               Dial.redial env ~tries:20
                 ~pause:(fun () -> Sim.Time.sleep w.eng 0.5)
                 (Printf.sprintf "il!%s!exportfs" fleet_origin)
             in
             let up = tap rname (Fdtrans.of_fd env conn.Dial.data_fd) in
             let cache = Cfs.make ?config:rack_config w.eng ~upstream:up () in
             Hashtbl.replace caches rname cache;
             Vfs.Env.mount_fs env (Cfs.ctl_fs cache) ~onto:"/mnt/cfs"
               Vfs.Ns.Repl;
             ignore
               (Listener.start w.eng ~backlog:256 env ~addr:"il!*!9fs"
                  ~handler:(fun henv _conn ~data_fd ->
                    Sim.Proc.join
                      (Cfs.serve cache (Fdtrans.of_fd henv data_fd)))))))
    rack_names;
  let terms =
    List.concat
      (List.init racks (fun k ->
           List.init terminals (fun i -> (rack_sys k, terminal_sys k i))))
  in
  List.iter (fun (_, tname) -> ignore (add_host w tname)) terms;
  autoroute w;
  (* the spine has no single gateway — one per rack — so the origin's
     inherited-ipgw shortcut cannot apply; it routes each rack subnet
     via that rack's spine address explicitly *)
  (match origin.Host.node with
  | Some n ->
    List.iteri
      (fun k _ ->
        Route.Table.add (Route.table n)
          ~dest:(Inet.Ipaddr.of_string (Printf.sprintf "10.%d.0.0" (30 + k)))
          ~mask:(Inet.Ipaddr.of_string "255.255.0.0")
          (Route.Table.Via
             (Inet.Ipaddr.of_string (Printf.sprintf "10.90.0.%d" (100 + k)))))
      rack_names
  | None -> ());
  {
    f_world = w;
    f_origin = origin;
    f_racks = rack_names;
    f_terminals = terms;
    f_caches = caches;
  }

let bell_labs_ndb =
  {|#
# the canonical world, in the paper's own format (section 4.1)
#
ipnet=mh-astro-net ip=135.104.0.0 ipmask=255.255.255.0
	fs=bootes.research.bell-labs.com
	auth=musca
	dns=135.104.9.31
ipnet=unix-room ip=135.104.9.0
	ipgw=135.104.9.1

dknet=nj/astro
	auth=musca

sys = helix
	dom=helix.research.bell-labs.com
	bootf=/mips/9power
	ip=135.104.9.31 ether=0800690222f0
	dk=nj/astro/helix
	proto=il flavor=9cpu

sys = musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 ether=0800690222f1
	dk=nj/astro/musca
	proto=il

sys = bootes
	dom=bootes.research.bell-labs.com
	ip=135.104.9.2 ether=0800690222f2
	proto=il flavor=9fs

sys = ai
	ip=135.104.9.99 ether=08006902fff9

sys = philw-gnot
	dk=nj/astro/philw-gnot
	flavor=9term

# a diskless terminal: only its ether address is configured; the rest
# comes from the boot protocol
sys = gnot-diskless
	ip=135.104.9.40 ether=08006902d15c
	bootf=/mips/9power

# delegation: the mit.edu zone lives on ai
nsfor=mit.edu ns=135.104.9.99

tcp=echo	port=7
tcp=discard	port=9
tcp=systat	port=11
tcp=daytime	port=13
tcp=ftp	port=21
tcp=telnet	port=23
tcp=login	port=513
tcp=exportfs	port=17007
tcp=cpu	port=17010
il=echo	port=56
il=9fs	port=17008
il=exportfs	port=17007
il=cpu	port=17010
il=rexauth	port=17021
udp=dns	port=53
|}

let mit_zone_ndb = "dom=ai.mit.edu ip=135.104.9.99\n"

let bell_labs ?seed ?sched ?ether_loss ?(cpu_commands = []) () =
  let db = Ndb.of_string bell_labs_ndb in
  let w = create ?seed ?sched ?ether_loss ~db () in
  let helix = add_host ~dns_server:true w "helix" in
  let musca = add_host w "musca" in
  let _bootes = add_host w "bootes" in
  let ai = add_host w "ai" in
  let _gnot = add_host w "philw-gnot" in
  Host.serve_exportfs helix;
  Host.serve_echo helix;
  Host.serve_exportfs musca;
  Host.serve_echo musca;
  (* the cpu service: stock commands plus any the caller supplies *)
  Cpu_cmd.serve helix
    ~commands:
      (cpu_commands
      @ [
        ("hostname", fun _env ~args:_ -> "helix\n");
        ( "echo",
          fun _env ~args -> String.concat " " args ^ "\n" );
        ( "cat",
          fun env ~args ->
            String.concat ""
              (List.map
                 (fun p -> Vfs.Env.read_file env ("/mnt/term" ^ p))
                 args) );
        ( "wc",
          fun env ~args ->
            String.concat ""
              (List.map
                 (fun p ->
                   Printf.sprintf "%d %s\n"
                     (String.length
                        (Vfs.Env.read_file env ("/mnt/term" ^ p)))
                     p)
                 args) );
        ]);
  (* the mit.edu zone is answered by ai itself *)
  (match ai.Host.udp with
  | Some udp -> ignore (Dns.serve_zone udp ~db:(Ndb.of_string mit_zone_ndb))
  | None -> ());
  (* a telnet-ish banner service on ai, for the gateway example *)
  ignore
    (Listener.start w.eng ai.Host.env ~addr:"tcp!*!telnet"
       ~handler:(fun env _conn ~data_fd ->
         ignore (Vfs.Env.write env data_fd "ai.mit.edu login: ");
         let rec echo_lines () =
           let s = Vfs.Env.read env data_fd 8192 in
           if s <> "" then begin
             ignore
               (Vfs.Env.write env data_fd
                  (Printf.sprintf "Last login by %s\n" (String.trim s)));
             echo_lines ()
           end
         in
         echo_lines ()));
  w
