type t = {
  eng : Sim.Engine.t;
  ether : Netsim.Ether.t;
  dk : Dk.Switch.t;
  db : Ndb.t;
  mutable hosts : (string * Host.t) list;
}

let create ?seed ?sched ?(ether_loss = 0.) ?(ether_bandwidth = 10e6) ~db () =
  let eng = Sim.Engine.create ?seed ?sched () in
  {
    eng;
    ether =
      Netsim.Ether.create ~bandwidth_bps:ether_bandwidth ~loss:ether_loss
        ~name:"ether0" eng;
    dk = Dk.Switch.create ~name:"dk" eng;
    db;
    hosts = [];
  }

let add_host ?il_config ?tcp_config ?dns_server t name =
  let h =
    Host.create ?il_config ?tcp_config ?dns_server ~ether:t.ether ~dk:t.dk
      ~db:t.db ~name t.eng
  in
  t.hosts <- (name, h) :: t.hosts;
  h

let host t name = List.assoc name t.hosts
let run ?until t = Sim.Engine.run ?until t.eng
let ether_faults t = Netsim.Ether.faults t.ether
let dk_faults t = Dk.Switch.faults t.dk

let bell_labs_ndb =
  {|#
# the canonical world, in the paper's own format (section 4.1)
#
ipnet=mh-astro-net ip=135.104.0.0 ipmask=255.255.255.0
	fs=bootes.research.bell-labs.com
	auth=musca
	dns=135.104.9.31
ipnet=unix-room ip=135.104.9.0
	ipgw=135.104.9.1

dknet=nj/astro
	auth=musca

sys = helix
	dom=helix.research.bell-labs.com
	bootf=/mips/9power
	ip=135.104.9.31 ether=0800690222f0
	dk=nj/astro/helix
	proto=il flavor=9cpu

sys = musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 ether=0800690222f1
	dk=nj/astro/musca
	proto=il

sys = bootes
	dom=bootes.research.bell-labs.com
	ip=135.104.9.2 ether=0800690222f2
	proto=il flavor=9fs

sys = ai
	ip=135.104.9.99 ether=08006902fff9

sys = philw-gnot
	dk=nj/astro/philw-gnot
	flavor=9term

# a diskless terminal: only its ether address is configured; the rest
# comes from the boot protocol
sys = gnot-diskless
	ip=135.104.9.40 ether=08006902d15c
	bootf=/mips/9power

# delegation: the mit.edu zone lives on ai
nsfor=mit.edu ns=135.104.9.99

tcp=echo	port=7
tcp=discard	port=9
tcp=systat	port=11
tcp=daytime	port=13
tcp=ftp	port=21
tcp=telnet	port=23
tcp=login	port=513
tcp=exportfs	port=17007
tcp=cpu	port=17010
il=echo	port=56
il=9fs	port=17008
il=exportfs	port=17007
il=cpu	port=17010
il=rexauth	port=17021
udp=dns	port=53
|}

let mit_zone_ndb = "dom=ai.mit.edu ip=135.104.9.99\n"

let bell_labs ?seed ?sched ?ether_loss ?(cpu_commands = []) () =
  let db = Ndb.of_string bell_labs_ndb in
  let w = create ?seed ?sched ?ether_loss ~db () in
  let helix = add_host ~dns_server:true w "helix" in
  let musca = add_host w "musca" in
  let _bootes = add_host w "bootes" in
  let ai = add_host w "ai" in
  let _gnot = add_host w "philw-gnot" in
  Host.serve_exportfs helix;
  Host.serve_echo helix;
  Host.serve_exportfs musca;
  Host.serve_echo musca;
  (* the cpu service: stock commands plus any the caller supplies *)
  Cpu_cmd.serve helix
    ~commands:
      (cpu_commands
      @ [
        ("hostname", fun _env ~args:_ -> "helix\n");
        ( "echo",
          fun _env ~args -> String.concat " " args ^ "\n" );
        ( "cat",
          fun env ~args ->
            String.concat ""
              (List.map
                 (fun p -> Vfs.Env.read_file env ("/mnt/term" ^ p))
                 args) );
        ( "wc",
          fun env ~args ->
            String.concat ""
              (List.map
                 (fun p ->
                   Printf.sprintf "%d %s\n"
                     (String.length
                        (Vfs.Env.read_file env ("/mnt/term" ^ p)))
                     p)
                 args) );
        ]);
  (* the mit.edu zone is answered by ai itself *)
  (match ai.Host.udp with
  | Some udp -> ignore (Dns.serve_zone udp ~db:(Ndb.of_string mit_zone_ndb))
  | None -> ());
  (* a telnet-ish banner service on ai, for the gateway example *)
  ignore
    (Listener.start w.eng ai.Host.env ~addr:"tcp!*!telnet"
       ~handler:(fun env _conn ~data_fd ->
         ignore (Vfs.Env.write env data_fd "ai.mit.edu login: ");
         let rec echo_lines () =
           let s = Vfs.Env.read env data_fd 8192 in
           if s <> "" then begin
             ignore
               (Vfs.Env.write env data_fd
                  (Printf.sprintf "Last login by %s\n" (String.trim s)));
             echo_lines ()
           end
         in
         echo_lines ()));
  w
