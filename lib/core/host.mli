(** A complete simulated Plan 9 machine.

    [create] assembles everything the paper describes on one host,
    driven by the machine's network-database entry: a root file tree,
    [/net] with one protocol device per attached network (IL, TCP, UDP
    on Ethernet; URP on Datakit), the Ethernet diagnostic device tree,
    the connection server on [/net/cs], and the DNS resolver on
    [/net/dns].  "Since CPU servers and terminals use the same kernel"
    — every host is built by this one function; what differs is which
    networks its ndb entry gives it. *)

type t = {
  name : string;
  eng : Sim.Engine.t;
  env : Vfs.Env.t;  (** the boot environment; user procs fork it *)
  root : Ninep.Ramfs.t;
  db : Ndb.t;
  etherport : Inet.Etherport.t option;  (** the primary NIC *)
  ip : Inet.Ip.stack option;  (** the primary stack (= List.nth ipstacks 0) *)
  ipstacks : Inet.Ip.stack list;  (** one per ip=/ether= pair, in ndb order *)
  node : Route.t option;  (** the routing node, present on any IP host *)
  il : Inet.Il.stack option;
  tcp : Inet.Tcp.stack option;
  tcpcc : Inet.Tcp.stack option;
      (** the congestion-controlled TCP variant, always registered
          alongside the baseline *)
  udp : Inet.Udp.stack option;
  dkline : Dk.Switch.line option;
  resolver : Dns.resolver option;
  cs : Cs.t;
}

val create :
  ?uname:string ->
  ?ether:Netsim.Ether.t ->
  ?segments:(string * Netsim.Ether.t) list ->
  ?dk:Dk.Switch.t ->
  ?il_config:Inet.Il.config ->
  ?tcp_config:Inet.Tcp.config ->
  ?tcpcc_config:Inet.Tcp.config ->
  ?dns_server:bool ->
  db:Ndb.t ->
  name:string ->
  Sim.Engine.t ->
  t
(** Boot a host named [name].  Its database entry supplies addresses:
    each [ip=]/[ether=] pair becomes a NIC — wired to the segment in
    [segments] named by the address's [ipnet] entry, else to [ether] —
    and [ip=] addresses beyond the [ether=] list become Datakit tunnel
    interfaces when their [ipnet] says [medium=dk]; [dk=] attaches the
    host to [dk]; the inherited [dns=] attribute selects the resolver's
    server.  Transports, DNS, and CS ride the first (primary) stack;
    every IP host gets a {!Route.t} node (forwarding auto-enables at
    two interfaces) with its inherited [ipgw] as the default route, and
    serves the table at [/net/iproute].  With [dns_server] the host
    also answers zone queries from [db].
    @raise Failure if the database has no entry for [name]. *)

val mount_cached :
  t ->
  ?config:Cfs.config ->
  ?aname:string ->
  ?env:Vfs.Env.t ->
  upstream:Ninep.Transport.t ->
  onto:string ->
  Vfs.Ns.flag ->
  Cfs.t
(** Mount a 9P connection through a {!Cfs} caching proxy — the
    diskless-terminal configuration: [upstream] is the raw connection
    to the file server (e.g. {!Eia_dev.transport} over a 9600-baud
    line), and what lands at [onto] is the cache's 9P face.  Also
    mounts the cache's [ctl]/[stats]/[status] directory at [/mnt/cfs]
    (replacing any previous cache's — one cached mount per host is the
    expected shape).  [env] selects the name space that gains both
    mounts; it defaults to the host's boot environment, which a process
    forked {e earlier} does not see — from inside {!spawn}, pass your
    own.  Performs RPCs: call from process context. *)

val spawn : t -> string -> (Vfs.Env.t -> unit) -> Sim.Proc.t
(** Run a user process with a forked environment. *)

val serve_exportfs : t -> unit
(** Start the standard listener: exportfs on every network the host
    has ([net!*!exportfs]). *)

val serve_echo : t -> unit
(** The section 5.2 echo service on every network. *)
