type t = {
  name : string;
  eng : Sim.Engine.t;
  env : Vfs.Env.t;
  root : Ninep.Ramfs.t;
  db : Ndb.t;
  etherport : Inet.Etherport.t option;
  ip : Inet.Ip.stack option;
  ipstacks : Inet.Ip.stack list;
  node : Route.t option;
  il : Inet.Il.stack option;
  tcp : Inet.Tcp.stack option;
  tcpcc : Inet.Tcp.stack option;
  udp : Inet.Udp.stack option;
  dkline : Dk.Switch.line option;
  resolver : Dns.resolver option;
  cs : Cs.t;
}

(* the entry's ip= attributes pair positionally with its ether=
   attributes; addresses beyond the ether list ride other media
   (a dk-medium subnet reached through a Datakit tunnel) *)
let rec pair_addrs ips ethers =
  match (ips, ethers) with
  | ip :: ips', ea :: ethers' -> (ip, Some ea) :: pair_addrs ips' ethers'
  | ip :: ips', [] -> (ip, None) :: pair_addrs ips' []
  | [], _ -> []

let create ?uname ?ether ?(segments = []) ?dk ?il_config ?tcp_config
    ?tcpcc_config ?(dns_server = false) ~db ~name eng =
  let entry =
    match Ndb.sys_entry db name with
    | Some e -> e
    | None -> failwith ("Host.create: no database entry for " ^ name)
  in
  let uname = match uname with Some u -> u | None -> name in
  let root = Ninep.Ramfs.make ~owner:uname ~name:(name ^ "-root") () in
  Ninep.Ramfs.mkdir root "/net";
  Ninep.Ramfs.mkdir root "/n";
  Ninep.Ramfs.mkdir root "/tmp";
  Ninep.Ramfs.mkdir root "/lib/ndb";
  Ninep.Ramfs.mkdir root "/dev/mnt";
  Ninep.Ramfs.mkdir root "/mnt/cfs";
  let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs root) ~uname in
  let env = Vfs.Env.make ~ns ~uname in
  (* per-mount 9P RPC ledgers, one numbered directory per mount *)
  Vfs.Env.mount_fs env
    (Vfs.Mnt.stats_fs (fun () -> Vfs.Ns.mounts ns))
    ~onto:"/dev/mnt" Vfs.Ns.Repl;

  (* --- address book: segment, mask, gateway per interface address --- *)
  let subnet_of ipstr = Ndb.ipnet_entry db ~ip:ipstr in
  let segment_for ipstr =
    (* a routed world names its segments after the ipnet entries; the
       single-segment worlds just hand every NIC the one wire *)
    match Option.bind (subnet_of ipstr) (fun e -> Ndb.get e "ipnet") with
    | Some netname -> (
      match List.assoc_opt netname segments with
      | Some seg -> Some seg
      | None -> ether)
    | None -> ether
  in
  let mask_for ipstr =
    match Ndb.ipattr db ~ip:ipstr ~attr:"ipmask" with
    | Some m -> Inet.Ipaddr.of_string m
    | None -> (
      match Option.bind (subnet_of ipstr) (fun e -> Ndb.get e "ipmask") with
      | Some m -> Inet.Ipaddr.of_string m
      | None -> Inet.Ipaddr.class_mask (Inet.Ipaddr.of_string ipstr))
  in
  let gateway_for ipstr =
    match Ndb.ipattr db ~ip:ipstr ~attr:"ipgw" with
    | Some g -> Some (Inet.Ipaddr.of_string g)
    | None ->
      Option.map Inet.Ipaddr.of_string
        (Option.bind (subnet_of ipstr) (fun e -> Ndb.get e "ipgw"))
  in

  (* --- Ethernet NICs: one IP stack per ip=/ether= pair --- *)
  let pairs = pair_addrs (Ndb.get_all entry "ip") (Ndb.get_all entry "ether") in
  let nics =
    List.filter_map
      (fun (ipstr, ea) ->
        match (ea, Option.bind ea (fun _ -> segment_for ipstr)) with
        | Some ea, Some segment ->
          let nic =
            Netsim.Ether.attach segment (Netsim.Eaddr.of_string ea)
          in
          let port = Inet.Etherport.create eng nic in
          let addr = Inet.Ipaddr.of_string ipstr in
          let ipstack =
            Inet.Ip.create ?gateway:(gateway_for ipstr) ~addr
              ~mask:(mask_for ipstr) port
          in
          Some (port, ipstack)
        | _, _ -> None)
      pairs
  in
  let tunnel_addrs =
    List.filter_map
      (fun (ipstr, ea) -> if ea = None then Some ipstr else None)
      pairs
  in
  let etherport = Option.map fst (List.nth_opt nics 0) in
  let ipstacks = List.map snd nics in
  let ip = List.nth_opt ipstacks 0 in

  (* --- transports, on the primary stack --- *)
  let il, tcp, tcpcc, udp =
    match ip with
    | Some ipstack ->
      let il = Inet.Il.attach ?config:il_config ipstack in
      let tcp = Inet.Tcp.attach ?config:tcp_config ipstack in
      let tcpcc = Inet.Tcp.attach_cc ?config:tcpcc_config ipstack in
      let udp = Inet.Udp.attach ipstack in
      Netdev.mount env eng (Netdev.il_proto il);
      Netdev.mount env eng (Netdev.tcp_proto tcp);
      Netdev.mount env eng (Netdev.tcp_proto tcpcc);
      Netdev.mount env eng (Netdev.udp_proto udp);
      (Some il, Some tcp, Some tcpcc, Some udp)
    | None -> (None, None, None, None)
  in
  List.iteri
    (fun i (port, ipstack) ->
      Ether_dev.mount env port ~name:(Printf.sprintf "ether%d" i);
      if i = 0 then begin
        Netinfo.mount_arp env ipstack;
        Netinfo.mount_ipifc env ipstack
      end)
    nics;

  (* --- Datakit --- *)
  let dkline =
    match (dk, Ndb.get entry "dk") with
    | Some switch, Some dkname ->
      let line = Dk.Switch.attach switch ~name:dkname in
      Netdev.mount env eng (Netdev.dk_proto line);
      Some line
    | _, _ -> None
  in

  (* --- the routing node: every IP host gets one --- *)
  let node =
    match ip with
    | None -> None
    | Some primary ->
      let node = Route.create ~name eng in
      Route.set_deliver node (fun raw -> Inet.Ip.deliver_raw primary raw);
      List.iteri
        (fun i st ->
          ignore
            (Route.attach_stack node ~ifname:(Printf.sprintf "ether%d" i) st))
        ipstacks;
      (* dk-medium subnets become point-to-point IP tunnels over the
         Datakit switch: the member with the smallest system name
         answers, the other calls *)
      List.iteri
        (fun i ipstr ->
          match (dkline, subnet_of ipstr) with
          | Some line, Some sub when Ndb.get sub "medium" = Some "dk" -> (
            let netname =
              Option.value ~default:"dk" (Ndb.get sub "ipnet")
            in
            let mask = mask_for ipstr in
            let addr = Inet.Ipaddr.of_string ipstr in
            let net = Inet.Ipaddr.logand addr mask in
            let members =
              List.filter_map
                (fun e ->
                  match (Ndb.get e "sys", Ndb.get e "dk") with
                  | Some sys, Some dkname
                    when List.exists
                           (fun i ->
                             match Inet.Ipaddr.of_string_opt i with
                             | Some a ->
                               Inet.Ipaddr.in_subnet a ~net ~mask
                             | None -> false)
                           (Ndb.get_all e "ip") ->
                    Some (sys, dkname)
                  | _, _ -> None)
                (Ndb.entries db)
              |> List.sort compare
            in
            let ifname = Printf.sprintf "dk%d" i in
            let service = "ip." ^ netname in
            match members with
            | (first, _) :: _ when first = name ->
              ignore
                (Route.dk_tunnel_listen node ~ifname ~addr ~mask line
                   ~service)
            | (_, first_dk) :: _ ->
              ignore
                (Route.dk_tunnel_dial node ~ifname ~addr ~mask line
                   ~dest:first_dk ~service)
            | [] -> ())
          | _, _ -> ())
        tunnel_addrs;
      (* the inherited ipgw is the default route, unless this host is
         that gateway itself *)
      (match Option.bind (List.nth_opt pairs 0) (fun (i, _) -> gateway_for i)
       with
      | Some gw
        when not
               (List.exists
                  (fun i -> Inet.Ipaddr.equal gw i.Route.if_addr)
                  (Route.ifaces node)) ->
        Route.Table.add (Route.table node) ~dest:Inet.Ipaddr.any
          ~mask:Inet.Ipaddr.any (Route.Table.Via gw)
      | Some _ | None -> ());
      Netinfo.mount_iproute env node;
      Some node
  in

  (* --- DNS --- *)
  let resolver =
    match (udp, Ndb.get entry "ip") with
    | Some udp, Some ipstr -> (
      if dns_server then ignore (Dns.serve_zone udp ~db);
      match Ndb.ipattr db ~ip:ipstr ~attr:"dns" with
      | Some server_ip ->
        let r =
          Dns.resolver udp ~server:(Inet.Ipaddr.of_string server_ip) ()
        in
        Dns.mount env r;
        Some r
      | None -> None)
    | _, _ -> None
  in

  (* --- the connection server --- *)
  let networks =
    List.concat
      [
        (match il with
        | Some _ ->
          [ { Cs.nw_proto = "il"; nw_clone = "/net/il/clone"; nw_kind = `Inet } ]
        | None -> []);
        (match dkline with
        | Some _ ->
          [ { Cs.nw_proto = "dk"; nw_clone = "/net/dk/clone"; nw_kind = `Dk } ]
        | None -> []);
        (match tcp with
        | Some _ ->
          [ { Cs.nw_proto = "tcp"; nw_clone = "/net/tcp/clone"; nw_kind = `Inet } ]
        | None -> []);
        (match tcpcc with
        | Some _ ->
          [
            {
              Cs.nw_proto = "tcpcc";
              nw_clone = "/net/tcpcc/clone";
              nw_kind = `Inet;
            };
          ]
        | None -> []);
        (match udp with
        | Some _ ->
          [ { Cs.nw_proto = "udp"; nw_clone = "/net/udp/clone"; nw_kind = `Inet } ]
        | None -> []);
      ]
  in
  let dns_fn =
    match resolver with
    | Some r -> Some (fun dom -> Dns.lookup_ip r dom)
    | None -> None
  in
  let cs = Cs.make ~sysname:name ~db ~networks ?dns:dns_fn () in
  Cs.mount env cs;

  (* --- the kernel event log and counter time-series --- *)
  Netinfo.mount_log env eng;
  Netinfo.mount_metrics env eng;
  {
    name;
    eng;
    env;
    root;
    db;
    etherport;
    ip;
    ipstacks;
    node;
    il;
    tcp;
    tcpcc;
    udp;
    dkline;
    resolver;
    cs;
  }

let mount_cached t ?config ?(aname = "") ?env ~upstream ~onto flag =
  let env = match env with Some e -> e | None -> t.env in
  let cache = Cfs.make ?config t.eng ~upstream () in
  let client = Ninep.Client.make t.eng (Cfs.transport cache) in
  Ninep.Client.session client;
  Vfs.Env.mount env client ~aname ~onto flag;
  Vfs.Env.mount_fs env (Cfs.ctl_fs cache) ~onto:"/mnt/cfs" Vfs.Ns.Repl;
  cache

let spawn t name fn =
  let env = Vfs.Env.fork t.env in
  Sim.Proc.spawn t.eng ~name:(t.name ^ ":" ^ name) (fun () -> fn env)

let nets_of t =
  List.concat
    [
      (match t.il with Some _ -> [ "il" ] | None -> []);
      (match t.dkline with Some _ -> [ "dk" ] | None -> []);
      (match t.tcp with Some _ -> [ "tcp" ] | None -> []);
      (match t.tcpcc with Some _ -> [ "tcpcc" ] | None -> []);
    ]

let serve_exportfs t =
  List.iter
    (fun proto ->
      ignore
        (Listener.start t.eng t.env
           ~addr:(Printf.sprintf "%s!*!exportfs" proto)
           ~handler:(fun env _conn ~data_fd ->
             let tr = Fdtrans.of_fd env data_fd in
             let srv = Exportfs.serve t.eng env tr in
             Sim.Proc.join srv)))
    (nets_of t)

let serve_echo t =
  List.iter
    (fun proto ->
      ignore
        (Listener.start t.eng t.env
           ~addr:(Printf.sprintf "%s!*!echo" proto)
           ~handler:(fun env _conn ~data_fd ->
             let rec go () =
               let data = Vfs.Env.read env data_fd 8192 in
               if data <> "" then begin
                 ignore (Vfs.Env.write env data_fd data);
                 go ()
               end
             in
             go ())))
    (nets_of t)
