type t = {
  name : string;
  eng : Sim.Engine.t;
  env : Vfs.Env.t;
  root : Ninep.Ramfs.t;
  db : Ndb.t;
  etherport : Inet.Etherport.t option;
  ip : Inet.Ip.stack option;
  il : Inet.Il.stack option;
  tcp : Inet.Tcp.stack option;
  udp : Inet.Udp.stack option;
  dkline : Dk.Switch.line option;
  resolver : Dns.resolver option;
  cs : Cs.t;
}

let create ?uname ?ether ?dk ?il_config ?tcp_config ?(dns_server = false)
    ~db ~name eng =
  let entry =
    match Ndb.sys_entry db name with
    | Some e -> e
    | None -> failwith ("Host.create: no database entry for " ^ name)
  in
  let uname = match uname with Some u -> u | None -> name in
  let root = Ninep.Ramfs.make ~owner:uname ~name:(name ^ "-root") () in
  Ninep.Ramfs.mkdir root "/net";
  Ninep.Ramfs.mkdir root "/n";
  Ninep.Ramfs.mkdir root "/tmp";
  Ninep.Ramfs.mkdir root "/lib/ndb";
  Ninep.Ramfs.mkdir root "/dev/mnt";
  Ninep.Ramfs.mkdir root "/mnt/cfs";
  let ns = Vfs.Ns.make ~root:(Ninep.Ramfs.fs root) ~uname in
  let env = Vfs.Env.make ~ns ~uname in
  (* per-mount 9P RPC ledgers, one numbered directory per mount *)
  Vfs.Env.mount_fs env
    (Vfs.Mnt.stats_fs (fun () -> Vfs.Ns.mounts ns))
    ~onto:"/dev/mnt" Vfs.Ns.Repl;

  (* --- Ethernet + the IP protocol suite --- *)
  let etherport, ip, il, tcp, udp =
    match
      (ether, Ndb.get entry "ether", Ndb.get entry "ip")
    with
    | Some segment, Some ea, Some ipstr ->
      let nic = Netsim.Ether.attach segment (Netsim.Eaddr.of_string ea) in
      let port = Inet.Etherport.create eng nic in
      let addr = Inet.Ipaddr.of_string ipstr in
      let mask =
        match Ndb.ipattr db ~ip:ipstr ~attr:"ipmask" with
        | Some m -> Inet.Ipaddr.of_string m
        | None -> Inet.Ipaddr.class_mask addr
      in
      let gateway =
        Option.map Inet.Ipaddr.of_string
          (Ndb.ipattr db ~ip:ipstr ~attr:"ipgw")
      in
      let ipstack = Inet.Ip.create ?gateway ~addr ~mask port in
      let il = Inet.Il.attach ?config:il_config ipstack in
      let tcp = Inet.Tcp.attach ?config:tcp_config ipstack in
      let udp = Inet.Udp.attach ipstack in
      Ether_dev.mount env port ~name:"ether0";
      Netdev.mount env eng (Netdev.il_proto il);
      Netdev.mount env eng (Netdev.tcp_proto tcp);
      Netdev.mount env eng (Netdev.udp_proto udp);
      Netinfo.mount_arp env ipstack;
      Netinfo.mount_ipifc env ipstack;
      (Some port, Some ipstack, Some il, Some tcp, Some udp)
    | _, _, _ -> (None, None, None, None, None)
  in

  (* --- Datakit --- *)
  let dkline =
    match (dk, Ndb.get entry "dk") with
    | Some switch, Some dkname ->
      let line = Dk.Switch.attach switch ~name:dkname in
      Netdev.mount env eng (Netdev.dk_proto line);
      Some line
    | _, _ -> None
  in

  (* --- DNS --- *)
  let resolver =
    match (udp, Ndb.get entry "ip") with
    | Some udp, Some ipstr -> (
      if dns_server then ignore (Dns.serve_zone udp ~db);
      match Ndb.ipattr db ~ip:ipstr ~attr:"dns" with
      | Some server_ip ->
        let r =
          Dns.resolver udp ~server:(Inet.Ipaddr.of_string server_ip) ()
        in
        Dns.mount env r;
        Some r
      | None -> None)
    | _, _ -> None
  in

  (* --- the connection server --- *)
  let networks =
    List.concat
      [
        (match il with
        | Some _ ->
          [ { Cs.nw_proto = "il"; nw_clone = "/net/il/clone"; nw_kind = `Inet } ]
        | None -> []);
        (match dkline with
        | Some _ ->
          [ { Cs.nw_proto = "dk"; nw_clone = "/net/dk/clone"; nw_kind = `Dk } ]
        | None -> []);
        (match tcp with
        | Some _ ->
          [ { Cs.nw_proto = "tcp"; nw_clone = "/net/tcp/clone"; nw_kind = `Inet } ]
        | None -> []);
        (match udp with
        | Some _ ->
          [ { Cs.nw_proto = "udp"; nw_clone = "/net/udp/clone"; nw_kind = `Inet } ]
        | None -> []);
      ]
  in
  let dns_fn =
    match resolver with
    | Some r -> Some (fun dom -> Dns.lookup_ip r dom)
    | None -> None
  in
  let cs = Cs.make ~sysname:name ~db ~networks ?dns:dns_fn () in
  Cs.mount env cs;

  (* --- the kernel event log and counter time-series --- *)
  Netinfo.mount_log env eng;
  Netinfo.mount_metrics env eng;
  {
    name;
    eng;
    env;
    root;
    db;
    etherport;
    ip;
    il;
    tcp;
    udp;
    dkline;
    resolver;
    cs;
  }

let mount_cached t ?config ?(aname = "") ?env ~upstream ~onto flag =
  let env = match env with Some e -> e | None -> t.env in
  let cache = Cfs.make ?config t.eng ~upstream () in
  let client = Ninep.Client.make t.eng (Cfs.transport cache) in
  Ninep.Client.session client;
  Vfs.Env.mount env client ~aname ~onto flag;
  Vfs.Env.mount_fs env (Cfs.ctl_fs cache) ~onto:"/mnt/cfs" Vfs.Ns.Repl;
  cache

let spawn t name fn =
  let env = Vfs.Env.fork t.env in
  Sim.Proc.spawn t.eng ~name:(t.name ^ ":" ^ name) (fun () -> fn env)

let nets_of t =
  List.concat
    [
      (match t.il with Some _ -> [ "il" ] | None -> []);
      (match t.dkline with Some _ -> [ "dk" ] | None -> []);
      (match t.tcp with Some _ -> [ "tcp" ] | None -> []);
    ]

let serve_exportfs t =
  List.iter
    (fun proto ->
      ignore
        (Listener.start t.eng t.env
           ~addr:(Printf.sprintf "%s!*!exportfs" proto)
           ~handler:(fun env _conn ~data_fd ->
             let tr = Fdtrans.of_fd env data_fd in
             let srv = Exportfs.serve t.eng env tr in
             Sim.Proc.join srv)))
    (nets_of t)

let serve_echo t =
  List.iter
    (fun proto ->
      ignore
        (Listener.start t.eng t.env
           ~addr:(Printf.sprintf "%s!*!echo" proto)
           ~handler:(fun env _conn ~data_fd ->
             let rec go () =
               let data = Vfs.Env.read env data_fd 8192 in
               if data <> "" then begin
                 ignore (Vfs.Env.write env data_fd data);
                 go ()
               end
             in
             go ())))
    (nets_of t)
