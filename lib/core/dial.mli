(** The connection library (paper section 5): [dial], [announce],
    [listen], [accept], [reject].

    These are user-level routines working purely through the file
    system: dial writes the symbolic name to [/net/cs], reads back
    destination lines, and "attempts to connect to each in turn until
    one works" — opening the clone file, reading the connection number,
    writing the address to ctl, then opening the data file.  Because
    everything is file operations, a [/net] imported from another
    machine works transparently as a gateway (section 6.1). *)

exception Dial_error of string

type conn = {
  dir : string;  (** the connection directory, e.g. "/net/il/3" *)
  ctl_fd : Vfs.Env.fd;
  data_fd : Vfs.Env.fd;
}

val dial : Vfs.Env.t -> ?local:string -> string -> conn
(** [dial env "net!helix!9fs"].  Tries every translation CS returns;
    raises {!Dial_error} with the last failure if none works.  [local]
    is accepted for symmetry and ignored, as on most networks (paper:
    "since most networks do not support this, it is usually zero"). *)

val redial :
  Vfs.Env.t ->
  ?tries:int ->
  ?pause:(unit -> unit) ->
  ?local:string ->
  string ->
  conn
(** {!dial} with up to [tries] (default 5) attempts, calling [pause]
    between failures — the survivable-client pattern once links can
    partition: a failed dial raises {!Dial_error} promptly (it never
    hangs), so recovery is simply dialing again after the link heals.
    [pause] should let virtual time pass (e.g. sleep on the engine);
    the default retries immediately. *)

type announcement = {
  ann_dir : string;
  ann_ctl_fd : Vfs.Env.fd;
}

val announce : Vfs.Env.t -> string -> announcement
(** [announce env "tcp!*!echo"].  The announcement stays in force until
    the control file is closed. *)

val listen : Vfs.Env.t -> announcement -> conn
(** Block for an incoming call; returns the new connection with its ctl
    open (data not yet opened). *)

val accept : Vfs.Env.t -> conn -> Vfs.Env.fd
(** Open and return the data file descriptor. *)

val reject : Vfs.Env.t -> conn -> reason:string -> unit
(** Hang the call up.  The reason reaches the caller on networks that
    support one (Datakit); IP networks ignore it. *)

val hangup : Vfs.Env.t -> conn -> unit
(** Close both descriptors (and therefore, eventually, the
    connection). *)

val netmkaddr : string -> ?defnet:string -> ?defsvc:string -> unit -> string
(** Fill in missing components: [netmkaddr "helix" ~defnet:"net"
    ~defsvc:"9fs" ()] is ["net!helix!9fs"]. *)
