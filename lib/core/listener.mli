(** The listener — Plan 9's inetd equivalent (paper section 6.1:
    "Exportfs is invoked by an incoming network call.  The listener
    (the Plan 9 equivalent of inetd) runs the profile of the user
    requesting the service to construct a name space before starting
    exportfs").

    [start] announces once and forks a handler process per call, like
    the echo server listing in section 5.2. *)

val start :
  Sim.Engine.t ->
  ?backlog:int ->
  Vfs.Env.t ->
  addr:string ->
  handler:(Vfs.Env.t -> Dial.conn -> data_fd:Vfs.Env.fd -> unit) ->
  Sim.Proc.t
(** [start eng env ~addr:"il!*!exportfs" ~handler] announces [addr] and
    accepts calls forever; each accepted call runs [handler] in a fresh
    process with a forked environment (its own name space, like running
    the user's profile).  The handler owns the descriptors.

    [backlog] writes [backlog n] to the announcement's ctl file,
    bounding calls pending accept; beyond it the network refuses
    callers instead of queueing them (best effort — protocols without a
    bounded accept queue ignore it). *)
