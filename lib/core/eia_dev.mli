(** The UART device (paper section 2.2): "Simple device drivers serve a
    single level directory containing just a few files; for example, we
    represent each UART by a data and a control file ... The control
    file is used to control the device; writing the string [b1200] to
    [/dev/eia1ctl] sets the line to 1200 baud." *)

type node

val fs : index:int -> Netsim.Serial.endpoint -> node Ninep.Server.fs
(** Serves [eia<index>] (the data file, a byte stream to and from the
    line) and [eia<index>ctl].  Recognized control strings: [b<rate>]
    (set the baud rate), [f] (flush pending input). *)

val mount : Vfs.Env.t -> index:int -> Netsim.Serial.endpoint -> unit
(** Union the two files into [/dev]. *)

val transport : Netsim.Serial.endpoint -> Ninep.Transport.t
(** Run 9P directly over the line: messages travel with
    {!Ninep.Fcall.Frame} length prefixes (a byte stream keeps no
    message delimiters).  Takes over the endpoint's receive side, so
    don't combine with {!fs} on the same endpoint.  This is the
    diskless-terminal configuration — a file server (or {!Cfs} proxy)
    on one end of the wire, a mount on the other. *)
