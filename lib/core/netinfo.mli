(** Diagnostic files under /net (paper section 2.2: the driver
    interfaces include "diagnostic interfaces for snooping software",
    and ARP is a "user-level protocol").

    - [/net/arp]: one line per resolved entry, "ip ether"; writing
      [flush] is accepted and ignored (our cache expires by TTL).
    - [/net/ipifc]: the interface's address, mask, gateway, MTU and
      packet counters as ASCII — the uniform-representation point of
      section 2.2.
    - [/net/log]: the newest events from the kernel trace
      ({!Obs.Trace}), one line each; reads report ring overflow,
      writing [clear] empties the ring, [limit N] tailors the next
      read.
    - [/net/metrics]: periodic counter snapshots as Prometheus-style
      [name value ts] lines (virtual timestamps).  Writing
      [start [interval]] arms a sampling ticker, [stop] disarms it,
      [sample] takes one snapshot now, [clear] empties the ring.  A
      read with no stored samples shows one live snapshot. *)

val mount_arp : Vfs.Env.t -> Inet.Ip.stack -> unit
val mount_ipifc : Vfs.Env.t -> Inet.Ip.stack -> unit

val mount_iproute : Vfs.Env.t -> Route.t -> unit
(** Serve the host's route table at [/net/iproute]: reads dump the
    interfaces, entries, and counters; writes speak {!Route.ctl}'s
    add/del/flush grammar. *)

val mount_log : Vfs.Env.t -> Sim.Engine.t -> unit
(** Serve the engine's attached trace at [/net/log] ("tracing
    disabled" when no trace is attached). *)

val mount_metrics : Vfs.Env.t -> Sim.Engine.t -> unit
(** Serve periodic counter time-series at [/net/metrics] ("tracing
    disabled" when no trace is attached).  Sampling is opt-in: write
    [start [interval]] to arm the ticker. *)
