let src = Logs.Src.create "streams" ~doc:"Plan 9 streams"

module Log = (val Logs.src_log src : Logs.LOG)

type module_impl = {
  mi_name : string;
  mi_close : slot -> unit;
  mi_uput : slot -> Block.t -> unit;
  mi_dput : slot -> Block.t -> unit;
}

and slot = {
  impl : module_impl;
  stream : stream;
  mutable above : slot option;
  mutable below : slot option;
}

and device = {
  dev_name : string;
  dev_dput : Block.t -> unit;
  dev_close : unit -> unit;
}

and stream = {
  eng : Sim.Engine.t;
  upq : Block.Q.t;
  device : device;
  mutable top : slot option;
  mutable bottom : slot option;
  mutable is_closed : bool;
}

let null_device name =
  { dev_name = name; dev_dput = ignore; dev_close = ignore }

let registry : (string, unit -> module_impl) Hashtbl.t = Hashtbl.create 17

let register_module name factory = Hashtbl.replace registry name factory
let module_registered name = Hashtbl.mem registry name

let create ?(qlimit = 64 * 1024) eng device =
  {
    eng;
    upq = Block.Q.create ~limit:qlimit ~name:(device.dev_name ^ ".up") eng;
    device;
    top = None;
    bottom = None;
    is_closed = false;
  }

let engine s = s.eng
let device_name s = s.device.dev_name
let upq s = s.upq
let closed s = s.is_closed
let slot_stream sl = sl.stream

let pass_up sl b =
  match sl.above with
  | Some up -> up.impl.mi_uput up b
  | None -> Block.Q.put sl.stream.upq b

let pass_down sl b =
  match sl.below with
  | Some down -> down.impl.mi_dput down b
  | None -> sl.stream.device.dev_dput b

let send_down s b =
  match s.top with
  | Some top -> top.impl.mi_dput top b
  | None -> s.device.dev_dput b

let input s b =
  if not s.is_closed then begin
    (match Sim.Engine.obs s.eng with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Event.Stream
           {
             dev = s.device.dev_name;
             dir = Obs.Event.Up;
             bytes = Block.len b;
             delim = b.Block.delim;
           });
      Obs.Trace.bump tr "stream.up.blocks" 1;
      Obs.Trace.bump tr "stream.up.bytes" (Block.len b));
    match s.bottom with
    | Some bottom -> bottom.impl.mi_uput bottom b
    | None -> Block.Q.put s.upq b
  end

let hangup s = input s (Block.hangup ())

let push_impl s impl =
  let sl = { impl; stream = s; above = None; below = s.top } in
  (match s.top with Some old -> old.above <- Some sl | None -> ());
  s.top <- Some sl;
  if s.bottom = None then s.bottom <- Some sl

let push s name =
  match Hashtbl.find_opt registry name with
  | Some factory -> push_impl s (factory ())
  | None -> failwith (Printf.sprintf "Streams.push: unknown module %s" name)

let pop s =
  match s.top with
  | None -> ()
  | Some sl ->
    sl.impl.mi_close sl;
    s.top <- sl.below;
    (match sl.below with
    | Some below -> below.above <- None
    | None -> s.bottom <- None)

let modules s =
  let rec walk acc = function
    | None -> List.rev acc
    | Some sl -> walk (sl.impl.mi_name :: acc) sl.below
  in
  walk [] s.top

let find_slot s name =
  let rec walk = function
    | None -> None
    | Some sl -> if sl.impl.mi_name = name then Some sl else walk sl.below
  in
  walk s.top

let close s =
  if not s.is_closed then begin
    s.is_closed <- true;
    let rec close_all = function
      | None -> ()
      | Some sl ->
        sl.impl.mi_close sl;
        close_all sl.below
    in
    close_all s.top;
    s.top <- None;
    s.bottom <- None;
    s.device.dev_close ();
    Block.Q.close s.upq
  end

let write_block s b =
  if s.is_closed then raise Block.Q.Closed;
  (match Sim.Engine.obs s.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Event.Stream
         {
           dev = s.device.dev_name;
           dir = Obs.Event.Down;
           bytes = Block.len b;
           delim = b.Block.delim;
         });
    Obs.Trace.bump tr "stream.down.blocks" 1;
    Obs.Trace.bump tr "stream.down.bytes" (Block.len b));
  if Block.is_ctl b then begin
    match Block.ctl_words b with
    | "push" :: name :: _ -> push s name
    | [ "pop" ] -> pop s
    | [ "hangup" ] -> Block.Q.put s.upq (Block.hangup ())
    | _ -> send_down s b
  end
  else send_down s b

let write ?(delim = true) s data =
  let n = String.length data in
  if n = 0 then write_block s (Block.make ~delim "")
  else begin
    let off = ref 0 in
    while !off < n do
      let take = min Block.max_atomic_write (n - !off) in
      let last = !off + take >= n in
      write_block s
        (Block.make ~delim:(delim && last) (String.sub data !off take));
      off := !off + take
    done
  end

let write_ctl s cmd = write_block s (Block.make ~kind:Block.Ctl cmd)
let read s n = Block.Q.read s.upq n
let read_block s = Block.Q.get s.upq

module Pipe = struct
  let create ?qlimit eng =
    (* Each side's device output is the other side's device-end input.
       The cross-link is set up after both streams exist. *)
    let other : stream option ref * stream option ref = (ref None, ref None) in
    let mk name cell =
      let dput b =
        match !cell with Some peer -> input peer b | None -> ()
      in
      let dclose () =
        match !cell with
        | Some peer -> if not peer.is_closed then hangup peer
        | None -> ()
      in
      create ?qlimit eng
        { dev_name = name; dev_dput = dput; dev_close = dclose }
    in
    let a = mk "pipe.0" (fst other) in
    let b = mk "pipe.1" (snd other) in
    fst other := Some b;
    snd other := Some a;
    (a, b)
end

module Stdmods = struct
(* the count module stashes its counters here, keyed by physical slot
   identity (slots contain closures, so structural equality is out) *)
module Slot_tbl = Hashtbl.Make (struct
  type t = slot

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let count_tables : (int ref * int ref * int ref * int ref) Slot_tbl.t =
  Slot_tbl.create 7

let counts slot =
  match Slot_tbl.find_opt count_tables slot with
  | Some (bd, byd, bu, byu) -> Some (!bd, !byd, !bu, !byu)
  | None -> None

let frame_factory () =
  (* upstream reassembly state *)
  let pending = Buffer.create 64 in
  let split_upstream slot =
    let continue_ = ref true in
    while !continue_ do
      let data = Buffer.contents pending in
      if String.length data < 2 then continue_ := false
      else begin
        let n = (Char.code data.[0] lsl 8) lor Char.code data.[1] in
        if String.length data < 2 + n then continue_ := false
        else begin
          pass_up slot
            (Block.make ~delim:true (String.sub data 2 n));
          Buffer.clear pending;
          Buffer.add_string pending
            (String.sub data (2 + n) (String.length data - 2 - n))
        end
      end
    done
  in
  {
    mi_name = "frame";
    mi_close = ignore;
    mi_uput =
      (fun slot b ->
        match b.Block.kind with
        | Block.Data ->
          Buffer.add_string pending (Block.to_string b);
          split_upstream slot
        | Block.Ctl | Block.Hangup -> pass_up slot b);
    mi_dput =
      (fun slot b ->
        match b.Block.kind with
        | Block.Data ->
          let s = Block.to_string b in
          let n = String.length s in
          let prefixed = Bytes.create (n + 2) in
          Bytes.set prefixed 0 (Char.chr ((n lsr 8) land 0xff));
          Bytes.set prefixed 1 (Char.chr (n land 0xff));
          Bytes.blit_string s 0 prefixed 2 n;
          pass_down slot (Block.make_bytes prefixed)
        | Block.Ctl | Block.Hangup -> pass_down slot b);
  }

let delim_factory () =
  {
    mi_name = "delim";
    mi_close = ignore;
    mi_uput = (fun slot b -> pass_up slot b);
    mi_dput =
      (fun slot b ->
        (match b.Block.kind with
        | Block.Data -> b.Block.delim <- true
        | Block.Ctl | Block.Hangup -> ());
        pass_down slot b);
  }

let count_factory () =
  let bd = ref 0 and byd = ref 0 and bu = ref 0 and byu = ref 0 in
  let registered = ref false in
  let note slot =
    if not !registered then begin
      registered := true;
      Slot_tbl.replace count_tables slot (bd, byd, bu, byu)
    end
  in
  {
    mi_name = "count";
    mi_close = ignore;
    mi_uput =
      (fun slot b ->
        note slot;
        incr bu;
        byu := !byu + Block.len b;
        pass_up slot b);
    mi_dput =
      (fun slot b ->
        note slot;
        incr bd;
        byd := !byd + Block.len b;
        pass_down slot b);
  }

let register () =
  register_module "frame" frame_factory;
  register_module "delim" delim_factory;
  register_module "count" count_factory

end
