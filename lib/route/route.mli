(** Per-host IP routing (paper section 6: gateway machines join the
    Ethernet segments and the Datakit fabric into one routed internet).

    A {e node} owns one route table and the host's IP interfaces.  The
    table holds on-link, via-gateway, and blackhole entries matched by
    longest prefix; the node is installed into each {!Inet.Ip.stack} as
    both the output hook (route selection for locally-originated
    packets) and the forward hook (transit packets arriving from the
    wire).  Hosts with one interface refuse transit; attaching a second
    interface turns forwarding on — that host {e is} a gateway.

    Every packet the layer discards goes through one choke point that
    bumps a node counter, emits an [Obs.Event.Packet] with
    [op = Drop reason], and bumps the trace counter [ip.<reason>]
    ([no_route], [ttl_exceeded], [blackhole], [transit_refused],
    [bad_header]) — routed topologies never drop silently. *)

module Table : sig
  type target =
    | Onlink of string
        (** directly reachable on the named interface; the next hop is
            the destination itself *)
    | Via of Inet.Ipaddr.t  (** forward to this gateway *)
    | Blackhole  (** discard (counted, evented) *)

  type entry = {
    r_dest : Inet.Ipaddr.t;
    r_mask : Inet.Ipaddr.t;
    r_target : target;
    mutable r_uses : int;
  }

  type t

  val create : unit -> t

  val masklen : Inet.Ipaddr.t -> int
  (** Population count of a mask — the prefix length lookups sort by. *)

  val add : t -> dest:Inet.Ipaddr.t -> mask:Inet.Ipaddr.t -> target -> unit
  (** Insert (replacing any entry with the same dest/mask).  [dest] is
      masked down, so [10.1.2.3/16] stores as [10.1.0.0/16]. *)

  val del : t -> dest:Inet.Ipaddr.t -> mask:Inet.Ipaddr.t -> bool
  (** [false] when no such entry existed. *)

  val flush : t -> unit

  val lookup : t -> Inet.Ipaddr.t -> entry option
  (** Longest-prefix match; insertion order breaks equal-length ties.
      Bumps nothing — resolution through the node counts uses. *)

  val entries : t -> entry list
  (** Most-specific first. *)
end

type iface = {
  if_name : string;
  if_addr : Inet.Ipaddr.t;
  if_mask : Inet.Ipaddr.t;
  if_emit : nexthop:Inet.Ipaddr.t -> string -> unit;
      (** transmit one raw IP packet toward [nexthop] *)
  if_stack : Inet.Ip.stack option;
      (** present on Ethernet interfaces so forwarding keeps feeding the
          stack's [ip_forwarded]/[ip_ttl_exceeded] counters *)
}

type counters = {
  mutable forwarded : int;
  mutable no_route : int;
  mutable ttl_exceeded : int;
  mutable blackholed : int;
  mutable transit_refused : int;
  mutable bad_header : int;
  mutable tun_tx : int;  (** IP packets sent into Datakit tunnels *)
  mutable tun_rx : int;  (** IP packets received from Datakit tunnels *)
}

type t

val create : name:string -> Sim.Engine.t -> t
val name : t -> string
val table : t -> Table.t
val stats : t -> counters
val ifaces : t -> iface list

val set_deliver : t -> (string -> unit) -> unit
(** Where packets for any local interface address land — normally
    [Inet.Ip.deliver_raw] on the host's primary stack. *)

val forwarding : t -> bool

val set_forwarding : t -> bool -> unit
(** Forwarding turns on automatically at the second interface; this
    overrides (e.g. to build a multi-homed non-gateway). *)

val add_iface : t -> iface -> unit
(** Register an interface and its on-link route. *)

val attach_stack : t -> ifname:string -> Inet.Ip.stack -> iface
(** Wrap an Ethernet IP stack as an interface: adds it (plus its
    on-link route), and installs the node as the stack's route-out and
    forward hooks. *)

val dk_tunnel_listen :
  t ->
  ifname:string ->
  addr:Inet.Ipaddr.t ->
  mask:Inet.Ipaddr.t ->
  Dk.Switch.line ->
  service:string ->
  iface
(** The answering end of a point-to-point IP-over-Datakit tunnel:
    announces [service] on [line], accepts one call, then carries raw
    IP packets as delimited Datakit cells.  Packets routed into the
    tunnel before establishment are queued and flushed. *)

val dk_tunnel_dial :
  t ->
  ifname:string ->
  addr:Inet.Ipaddr.t ->
  mask:Inet.Ipaddr.t ->
  Dk.Switch.line ->
  dest:string ->
  service:string ->
  iface
(** The calling end; retries while the listener has not announced. *)

val output : t -> string -> Inet.Ipaddr.t -> unit
(** Route one locally-originated raw IP packet (the stack's route_out
    hook).  Destinations local to the node loop back on the next tick.
    @raise Inet.Ip.No_route when the table has no matching entry (after
    counting and eventing the drop).  Blackhole routes drop silently
    toward the caller. *)

val input : t -> ingress:iface -> string -> unit
(** A packet from the wire not claimed by the receiving stack: deliver
    locally, or decrement TTL and forward (gateways), or refuse
    (hosts).  All discards go through the choke point. *)

val dump : t -> string
(** The /net/iproute text: interfaces, the table (most-specific first,
    with use counts), and the drop/forward counters. *)

val ctl : t -> string -> (string, string) result
(** The /net/iproute control grammar: [add dest mask gateway],
    [add dest mask onlink ifname], [add dest mask blackhole],
    [del dest mask], [flush]; an empty request reads as {!dump}. *)
