let src = Logs.Src.create "route" ~doc:"per-host IP route table and forwarder"

module Log = (val Logs.src_log src : Logs.LOG)

(* -------- the route table: longest-prefix match -------- *)

module Table = struct
  type target =
    | Onlink of string  (* interface name; next hop is the destination *)
    | Via of Inet.Ipaddr.t  (* next hop is the gateway *)
    | Blackhole

  type entry = {
    r_dest : Inet.Ipaddr.t;
    r_mask : Inet.Ipaddr.t;
    r_target : target;
    mutable r_uses : int;
  }

  type t = { mutable entries : entry list }

  let create () = { entries = [] }

  let masklen m =
    let rec pop n v =
      if v = 0l then n
      else
        pop
          (n + Int32.to_int (Int32.logand v 1l))
          (Int32.shift_right_logical v 1)
    in
    pop 0 (Inet.Ipaddr.to_int32 m)

  let same_key a b =
    Inet.Ipaddr.equal a.r_dest b.r_dest && Inet.Ipaddr.equal a.r_mask b.r_mask

  (* entries stay sorted most-specific first; insertion order breaks
     ties, so lookup is a first-match scan *)
  let resort t =
    t.entries <-
      List.stable_sort
        (fun a b -> compare (masklen b.r_mask) (masklen a.r_mask))
        t.entries

  let add t ~dest ~mask target =
    let dest = Inet.Ipaddr.logand dest mask in
    let e = { r_dest = dest; r_mask = mask; r_target = target; r_uses = 0 } in
    t.entries <- List.filter (fun x -> not (same_key x e)) t.entries @ [ e ];
    resort t

  let del t ~dest ~mask =
    let dest = Inet.Ipaddr.logand dest mask in
    let n = List.length t.entries in
    t.entries <-
      List.filter
        (fun x ->
          not
            (Inet.Ipaddr.equal x.r_dest dest && Inet.Ipaddr.equal x.r_mask mask))
        t.entries;
    List.length t.entries < n

  let flush t = t.entries <- []

  let lookup t dst =
    List.find_opt
      (fun e -> Inet.Ipaddr.in_subnet dst ~net:e.r_dest ~mask:e.r_mask)
      t.entries

  let entries t = t.entries
end

(* -------- the node: interfaces + table + forwarder -------- *)

type iface = {
  if_name : string;
  if_addr : Inet.Ipaddr.t;
  if_mask : Inet.Ipaddr.t;
  if_emit : nexthop:Inet.Ipaddr.t -> string -> unit;
  if_stack : Inet.Ip.stack option;  (* ether interfaces keep stack stats *)
}

type counters = {
  mutable forwarded : int;
  mutable no_route : int;
  mutable ttl_exceeded : int;
  mutable blackholed : int;
  mutable transit_refused : int;
  mutable bad_header : int;
  mutable tun_tx : int;
  mutable tun_rx : int;
}

type t = {
  name : string;
  eng : Sim.Engine.t;
  table : Table.t;
  mutable ifaces : iface list;
  mutable deliver : (string -> unit) option;
  mutable forwarding : bool;
  stats : counters;
}

let create ~name eng =
  {
    name;
    eng;
    table = Table.create ();
    ifaces = [];
    deliver = None;
    forwarding = false;
    stats =
      {
        forwarded = 0;
        no_route = 0;
        ttl_exceeded = 0;
        blackholed = 0;
        transit_refused = 0;
        bad_header = 0;
        tun_tx = 0;
        tun_rx = 0;
      };
  }

let name t = t.name
let table t = t.table
let stats t = t.stats
let ifaces t = t.ifaces
let set_deliver t fn = t.deliver <- Some fn
let set_forwarding t b = t.forwarding <- b
let forwarding t = t.forwarding

let local t dst =
  List.exists (fun i -> Inet.Ipaddr.equal dst i.if_addr) t.ifaces

(* -------- the drop choke point (one per node) --------

   Every packet the routing layer discards — no route, TTL expiry,
   blackhole route, transit at a non-forwarding host, unparseable
   header — funnels through here: a node counter, an [Obs.Event.Packet]
   with [op = Drop reason], and an [ip.<reason>] counter, so a routed
   swarm that loses traffic is never silent about why. *)

let drop t ~reason raw =
  (match reason with
  | "no_route" -> t.stats.no_route <- t.stats.no_route + 1
  | "ttl_exceeded" -> t.stats.ttl_exceeded <- t.stats.ttl_exceeded + 1
  | "blackhole" -> t.stats.blackholed <- t.stats.blackholed + 1
  | "transit_refused" -> t.stats.transit_refused <- t.stats.transit_refused + 1
  | _ -> t.stats.bad_header <- t.stats.bad_header + 1);
  Log.debug (fun m -> m "%s: drop (%s), %d bytes" t.name reason (String.length raw));
  match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr ->
    let saddr, daddr =
      match Inet.Ip.decode_header raw with
      | Some h ->
        ( Inet.Ipaddr.to_string h.Inet.Ip.h_src,
          Inet.Ipaddr.to_string h.Inet.Ip.h_dst )
      | None -> ("?", "?")
    in
    Obs.Trace.emit tr
      (Obs.Event.Packet
         {
           medium = "route:" ^ t.name;
           op = Obs.Event.Drop reason;
           src = saddr;
           dst = daddr;
           proto = "ip";
           bytes = String.length raw;
         });
    Obs.Trace.bump tr ("ip." ^ reason) 1

(* -------- route resolution -------- *)

type resolution =
  | Emit of iface * Inet.Ipaddr.t  (* interface, next hop *)
  | Black
  | Unroutable

let resolve t dst =
  match Table.lookup t.table dst with
  | None -> Unroutable
  | Some e -> (
    e.Table.r_uses <- e.Table.r_uses + 1;
    match e.Table.r_target with
    | Table.Blackhole -> Black
    | Table.Onlink ifname -> (
      match List.find_opt (fun i -> i.if_name = ifname) t.ifaces with
      | Some i -> Emit (i, dst)
      | None -> Unroutable)
    | Table.Via gw -> (
      match
        List.find_opt
          (fun i -> Inet.Ipaddr.in_subnet gw ~net:i.if_addr ~mask:i.if_mask)
          t.ifaces
      with
      | Some i -> Emit (i, gw)
      | None -> Unroutable))

let deliver_local t raw =
  match t.deliver with Some d -> d raw | None -> ()

(* locally-originated traffic, one raw (possibly fragment) at a time;
   installed as the stack's route_out hook.  Delivery to another of the
   node's own addresses loops back on the next tick, like the stack's
   own loopback. *)
let output t raw dst =
  if local t dst || Inet.Ipaddr.equal dst Inet.Ipaddr.broadcast then
    Sim.Engine.after ~label:"route" t.eng 0. (fun () -> deliver_local t raw)
  else
    match resolve t dst with
    | Emit (i, nexthop) -> i.if_emit ~nexthop raw
    | Black -> drop t ~reason:"blackhole" raw
    | Unroutable ->
      drop t ~reason:"no_route" raw;
      raise (Inet.Ip.No_route dst)

(* -------- transit -------- *)

let decrement_ttl raw =
  let ttl = Char.code raw.[8] in
  let b = Bytes.of_string raw in
  Bytes.set b 8 (Char.chr (ttl - 1));
  (* repatch the header checksum for the new TTL *)
  Bytes.set b 10 '\000';
  Bytes.set b 11 '\000';
  let sum =
    Inet.Chksum.finish (Inet.Chksum.ones_sum (Bytes.to_string b) 0 20)
  in
  Bytes.set b 10 (Char.chr ((sum lsr 8) land 0xff));
  Bytes.set b 11 (Char.chr (sum land 0xff));
  Bytes.to_string b

(* a packet arriving from the wire whose destination is not the
   receiving stack: deliver if it is for any of our interfaces,
   otherwise forward (gateways) or refuse (hosts) *)
let input t ~ingress raw =
  match Inet.Ip.decode_header raw with
  | None -> drop t ~reason:"bad_header" raw
  | Some h ->
    let dst = h.Inet.Ip.h_dst in
    if local t dst || Inet.Ipaddr.equal dst Inet.Ipaddr.broadcast then
      deliver_local t raw
    else if not t.forwarding then drop t ~reason:"transit_refused" raw
    else if Char.code raw.[8] <= 1 then begin
      (match ingress.if_stack with
      | Some st ->
        let c = Inet.Ip.counters st in
        c.Inet.Ip.ip_ttl_exceeded <- c.Inet.Ip.ip_ttl_exceeded + 1
      | None -> ());
      drop t ~reason:"ttl_exceeded" raw
    end
    else
      let raw = decrement_ttl raw in
      match resolve t dst with
      | Emit (i, nexthop) ->
        t.stats.forwarded <- t.stats.forwarded + 1;
        (match ingress.if_stack with
        | Some st ->
          let c = Inet.Ip.counters st in
          c.Inet.Ip.ip_forwarded <- c.Inet.Ip.ip_forwarded + 1
        | None -> ());
        i.if_emit ~nexthop raw
      | Black -> drop t ~reason:"blackhole" raw
      | Unroutable -> drop t ~reason:"no_route" raw

(* -------- interfaces -------- *)

let add_iface t iface =
  t.ifaces <- t.ifaces @ [ iface ];
  (* every interface brings its on-link route *)
  Table.add t.table
    ~dest:(Inet.Ipaddr.logand iface.if_addr iface.if_mask)
    ~mask:iface.if_mask
    (Table.Onlink iface.if_name);
  if List.length t.ifaces >= 2 then t.forwarding <- true

let attach_stack t ~ifname st =
  let iface =
    {
      if_name = ifname;
      if_addr = Inet.Ip.addr st;
      if_mask = Inet.Ip.mask st;
      if_emit = (fun ~nexthop raw -> Inet.Ip.output_raw st ~nexthop raw);
      if_stack = Some st;
    }
  in
  add_iface t iface;
  Inet.Ip.set_route_out st (fun raw dst -> output t raw dst);
  Inet.Ip.set_forward st (fun raw -> input t ~ingress:iface raw);
  iface

(* -------- IP over Datakit --------

   A point-to-point tunnel carrying raw IP packets as single Datakit
   cells ([last = true] marks each packet).  Datakit's switch delivers
   in order but a fault schedule can still discard cells; a lost cell
   is simply a lost IP packet, recovered end-to-end by the transports —
   correct IP-over-anything semantics.  Packets sent before the call
   completes are queued and flushed at establishment. *)

let tunnel_iface t ~ifname ~addr ~mask setup =
  let circ = ref None in
  let txq = ref [] in
  let send_cell c raw =
    t.stats.tun_tx <- t.stats.tun_tx + 1;
    Dk.Circuit.send c (Dk.Circuit.Data { payload = raw; last = true })
  in
  let emit ~nexthop:_ raw =
    match !circ with Some c -> send_cell c raw | None -> txq := raw :: !txq
  in
  let iface =
    { if_name = ifname; if_addr = addr; if_mask = mask; if_emit = emit;
      if_stack = None }
  in
  add_iface t iface;
  ignore
    (Sim.Proc.spawn t.eng
       ~name:(Printf.sprintf "%s:%s" t.name ifname)
       (fun () ->
         let c = setup () in
         circ := Some c;
         List.iter (send_cell c) (List.rev !txq);
         txq := [];
         let rec rx () =
           match Dk.Circuit.recv c with
           | Some (Dk.Circuit.Data { payload; _ }) ->
             t.stats.tun_rx <- t.stats.tun_rx + 1;
             input t ~ingress:iface payload;
             rx ()
           | Some _ -> rx ()
           | None -> ()
         in
         rx ()));
  iface

let dk_tunnel_listen t ~ifname ~addr ~mask line ~service =
  tunnel_iface t ~ifname ~addr ~mask (fun () ->
      let calls = Dk.Circuit.announce line ~service in
      Dk.Circuit.accept (Sim.Mbox.recv calls))

let dk_tunnel_dial t ~ifname ~addr ~mask line ~dest ~service =
  tunnel_iface t ~ifname ~addr ~mask (fun () ->
      (* the listener may not have announced yet; keep calling *)
      let rec go tries =
        match Dk.Circuit.dial line ~dest ~service with
        | c -> c
        | exception (Dk.Circuit.Rejected _ | Dk.Circuit.No_such_line _)
          when tries > 0 ->
          Sim.Time.sleep t.eng 0.1;
          go (tries - 1)
      in
      go 100)

(* -------- the /net/iproute text face -------- *)

let target_text = function
  | Table.Onlink ifname -> "onlink " ^ ifname
  | Table.Via gw -> "via " ^ Inet.Ipaddr.to_string gw
  | Table.Blackhole -> "blackhole"

let dump t =
  let b = Buffer.create 256 in
  List.iter
    (fun i ->
      Printf.bprintf b "ifc %s %s %s%s\n" i.if_name
        (Inet.Ipaddr.to_string i.if_addr)
        (Inet.Ipaddr.to_string i.if_mask)
        (match i.if_stack with None -> " tunnel" | Some _ -> ""))
    t.ifaces;
  List.iter
    (fun e ->
      Printf.bprintf b "%s %s %s uses %d\n"
        (Inet.Ipaddr.to_string e.Table.r_dest)
        (Inet.Ipaddr.to_string e.Table.r_mask)
        (target_text e.Table.r_target)
        e.Table.r_uses)
    (Table.entries t.table);
  let s = t.stats in
  Printf.bprintf b
    "fwd %d noroute %d ttlx %d blackhole %d refused %d badhdr %d tuntx %d \
     tunrx %d\n"
    s.forwarded s.no_route s.ttl_exceeded s.blackholed s.transit_refused
    s.bad_header s.tun_tx s.tun_rx;
  Buffer.contents b

(* ctl grammar (one request per write):
     add dest mask gateway
     add dest mask onlink ifname
     add dest mask blackhole
     del dest mask
     flush                                                            *)
let ctl t req =
  let words =
    String.split_on_char ' ' (String.trim req)
    |> List.filter (fun w -> w <> "")
  in
  let addr s = Inet.Ipaddr.of_string_opt s in
  match words with
  | [] | [ "" ] -> Ok (dump t)
  | [ "flush" ] ->
    Table.flush t.table;
    Ok ""
  | [ "del"; d; m ] -> (
    match (addr d, addr m) with
    | Some dest, Some mask ->
      if Table.del t.table ~dest ~mask then Ok ""
      else Error (Printf.sprintf "iproute: no route %s %s" d m)
    | _ -> Error ("iproute: bad address in: " ^ String.trim req))
  | [ "add"; d; m; "blackhole" ] -> (
    match (addr d, addr m) with
    | Some dest, Some mask ->
      Table.add t.table ~dest ~mask Table.Blackhole;
      Ok ""
    | _ -> Error ("iproute: bad address in: " ^ String.trim req))
  | [ "add"; d; m; "onlink"; ifname ] -> (
    match (addr d, addr m) with
    | Some dest, Some mask ->
      if List.exists (fun i -> i.if_name = ifname) t.ifaces then begin
        Table.add t.table ~dest ~mask (Table.Onlink ifname);
        Ok ""
      end
      else Error ("iproute: no interface " ^ ifname)
    | _ -> Error ("iproute: bad address in: " ^ String.trim req))
  | [ "add"; d; m; g ] -> (
    match (addr d, addr m, addr g) with
    | Some dest, Some mask, Some gw ->
      Table.add t.table ~dest ~mask (Table.Via gw);
      Ok ""
    | _ -> Error ("iproute: bad address in: " ^ String.trim req))
  | _ -> Error ("iproute: bad request: " ^ String.trim req)
