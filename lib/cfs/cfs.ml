let src = Logs.Src.create "cfs" ~doc:"caching 9P proxy"

module Log = (val Logs.src_log src : Logs.LOG)

type config = { bsize : int; budget : int; readahead : int }

let default_config = { bsize = 1024; budget = 256 * 1024; readahead = 8 }

(* A cached block, threaded on an intrusive LRU list.  The list is
   cyclic through a sentinel: sentinel.next is most recently used,
   sentinel.prev the eviction victim. *)
type blk = {
  bk_path : int32;
  bk_idx : int;
  mutable bk_data : string;  (* < bsize only for the end-of-file tail *)
  mutable bk_prev : blk;
  mutable bk_next : blk;
}

(* Per-file cache state.  [ce_vers] is the qid version we believe the
   server holds; a reply qid with a different version means someone
   else changed the file and every block here is stale. *)
type centry = {
  ce_path : int32;
  mutable ce_vers : int32;
  ce_blocks : (int, blk) Hashtbl.t;
  mutable ce_lastend : int64;  (* where the last read stopped: the
                                  sequential-access detector *)
}

type t = {
  eng : Sim.Engine.t;
  mutable cfg : config;
  mutable client : Ninep.Client.t;  (* the upstream (real server) connection *)
  mutable local : Ninep.Transport.t;  (* what the terminal mounts *)
  files : (int32, centry) Hashtbl.t;
  lru : blk;  (* sentinel *)
  flights : (int32 * int, Sim.Rendez.t) Hashtbl.t;
      (* blocks with an upstream read in flight: concurrent misses on
         the same block wait here instead of fetching again *)
  metrics : Obs.Metrics.t;
  mutable used : int;  (* bytes of block data held *)
  mutable sessioned : bool;
  mutable gen : int;  (* bumped by set_upstream: stale fids must not
                         alias fresh ones on the new connection *)
}

let bump t name v =
  Obs.Metrics.bump t.metrics name v;
  match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr -> Obs.Trace.bump tr ("cfs." ^ name) v

(* ---- LRU plumbing ---- *)

let unlink b =
  b.bk_prev.bk_next <- b.bk_next;
  b.bk_next.bk_prev <- b.bk_prev;
  b.bk_prev <- b;
  b.bk_next <- b

let push_front t b =
  b.bk_next <- t.lru.bk_next;
  b.bk_prev <- t.lru;
  t.lru.bk_next.bk_prev <- b;
  t.lru.bk_next <- b

let touch t b =
  unlink b;
  push_front t b

let forget_block t b =
  unlink b;
  t.used <- t.used - String.length b.bk_data;
  match Hashtbl.find_opt t.files b.bk_path with
  | Some e -> Hashtbl.remove e.ce_blocks b.bk_idx
  | None -> ()

let rec evict t =
  if t.used > t.cfg.budget && t.lru.bk_prev != t.lru then begin
    forget_block t t.lru.bk_prev;
    bump t "evictions" 1;
    evict t
  end

let insert t e idx data =
  (match Hashtbl.find_opt e.ce_blocks idx with
  | Some b ->
    t.used <- t.used - String.length b.bk_data + String.length data;
    b.bk_data <- data;
    touch t b
  | None ->
    let rec b =
      { bk_path = e.ce_path; bk_idx = idx; bk_data = data; bk_prev = b;
        bk_next = b }
    in
    Hashtbl.replace e.ce_blocks idx b;
    t.used <- t.used + String.length data;
    push_front t b);
  evict t

(* ---- file table and validation ---- *)

let entry t (qid : Ninep.Fcall.qid) =
  match Hashtbl.find_opt t.files qid.Ninep.Fcall.qpath with
  | Some e -> e
  | None ->
    let e =
      { ce_path = qid.Ninep.Fcall.qpath; ce_vers = qid.Ninep.Fcall.qvers;
        ce_blocks = Hashtbl.create 7; ce_lastend = 0L }
    in
    Hashtbl.replace t.files qid.Ninep.Fcall.qpath e;
    e

let invalidate t e ~vers =
  Hashtbl.iter
    (fun _ b ->
      unlink b;
      t.used <- t.used - String.length b.bk_data)
    e.ce_blocks;
  Hashtbl.reset e.ce_blocks;
  e.ce_vers <- vers;
  e.ce_lastend <- 0L;
  bump t "invalidations" 1;
  match Sim.Engine.obs t.eng with
  | None -> ()
  | Some tr ->
    Obs.Trace.note tr ~sub:"cfs"
      (Printf.sprintf "invalidate qid %ld (foreign change, vers -> %ld)"
         e.ce_path vers)

(* Every Rwalk/Ropen/Rcreate/Rstat carries the file's qid: compare the
   version and throw the file's blocks away on a foreign change.  This
   is the revalidation the 1993 cfs paid a stat round trip for. *)
let note_qid t (qid : Ninep.Fcall.qid) =
  if not (Ninep.Fcall.qid_is_dir qid) then begin
    let e = entry t qid in
    if e.ce_vers <> qid.Ninep.Fcall.qvers then
      invalidate t e ~vers:qid.Ninep.Fcall.qvers
  end

let drop_file t path =
  match Hashtbl.find_opt t.files path with
  | None -> ()
  | Some e ->
    Hashtbl.iter
      (fun _ b ->
        unlink b;
        t.used <- t.used - String.length b.bk_data)
      e.ce_blocks;
    Hashtbl.remove t.files path

let flush t =
  Hashtbl.reset t.files;
  t.lru.bk_next <- t.lru;
  t.lru.bk_prev <- t.lru;
  t.used <- 0

(* ---- the cached read path ---- *)

let read_cached t qid fid ~offset ~count =
  if count <= 0 then ""
  else begin
    let e = entry t qid in
    let bsize = t.cfg.bsize in
    let bs64 = Int64.of_int bsize in
    (* one decision per Tread: reads that pick up where the last one
       stopped (including the very first, at 0) are sequential and get
       the full read-ahead window on a miss *)
    let sequential = Int64.equal offset e.ce_lastend in
    let buf = Buffer.create (min count Ninep.Fcall.maxfdata) in
    let upstream = ref 0 in
    let eof = ref false in
    (* On a miss, fetch from the missing block's start: enough blocks to
       finish the request, widened to the read-ahead window when
       sequential, in a single upstream round trip. *)
    let fetch idx boff =
      let remaining = count - Buffer.length buf in
      let nb_needed = (boff + remaining + bsize - 1) / bsize in
      let cap = max 1 (Ninep.Fcall.maxfdata / bsize) in
      let nb =
        min cap (if sequential then max nb_needed t.cfg.readahead else nb_needed)
      in
      let req = nb * bsize in
      let start = Int64.mul (Int64.of_int idx) bs64 in
      (* the fill span parents the upstream 9p.Tread rpc span *)
      let obs = Sim.Engine.obs t.eng in
      let sp =
        match obs with
        | None -> Obs.Span.none
        | Some tr -> Obs.Span.enter tr ~layer:"cfs" "cfs.fill"
      in
      (* the upstream read suspends this process; if a foreign change is
         noticed meanwhile (another connection's walk), the reply bytes
         belong to an unknown version and must not be cached *)
      let vers0 = e.ce_vers in
      let data =
        match Ninep.Client.read t.client fid ~offset:start ~count:req with
        | data ->
          (match obs with None -> () | Some tr -> Obs.Span.exit tr sp);
          data
        | exception e ->
          (match obs with None -> () | Some tr -> Obs.Span.exit tr sp);
          raise e
      in
      incr upstream;
      bump t "misses" 1;
      bump t "miss_bytes" (String.length data);
      let len = String.length data in
      let fresh =
        match Hashtbl.find_opt t.files e.ce_path with
        | Some e' -> e' == e && Int32.equal e.ce_vers vers0
        | None -> false
      in
      if fresh then begin
        let full = len / bsize in
        for k = 0 to full - 1 do
          insert t e (idx + k) (String.sub data (k * bsize) bsize)
        done;
        (* a reply shorter than asked means the file ends inside it; an
           exact-multiple (or empty) short reply is remembered as an
           empty end-of-file marker block *)
        if len < req then
          insert t e (idx + full)
            (if len mod bsize > 0 then
               String.sub data (full * bsize) (len mod bsize)
             else "")
      end;
      let blen = min bsize len in
      (String.sub data 0 blen, blen = bsize)
    in
    (* Single flight: when another client's miss on this very block is
       already filling upstream, wait for that read instead of issuing a
       second one — the boot storm's many first readers of one binary
       must cost one origin round trip per block, not one per client.
       A woken waiter re-checks the table and becomes the leader itself
       if the fill failed, was version-guarded away, or was evicted. *)
    let rec acquire idx boff =
      match Hashtbl.find_opt e.ce_blocks idx with
      | Some b ->
        touch t b;
        (b.bk_data, String.length b.bk_data = bsize)
      | None -> (
        let key = (e.ce_path, idx) in
        match Hashtbl.find_opt t.flights key with
        | Some r ->
          bump t "coalesced" 1;
          Sim.Rendez.sleep r;
          acquire idx boff
        | None ->
          let r = Sim.Rendez.create t.eng in
          Hashtbl.replace t.flights key r;
          Fun.protect
            ~finally:(fun () ->
              Hashtbl.remove t.flights key;
              Sim.Rendez.wakeup_all r)
            (fun () -> fetch idx boff))
    in
    let rec serve () =
      let got = Buffer.length buf in
      if got < count && not !eof then begin
        let pos = Int64.add offset (Int64.of_int got) in
        let idx = Int64.to_int (Int64.div pos bs64) in
        let boff = Int64.to_int (Int64.rem pos bs64) in
        let chunk, full_block = acquire idx boff in
        let avail = String.length chunk - boff in
        if avail <= 0 then eof := true
        else begin
          let n = min avail (count - got) in
          Buffer.add_substring buf chunk boff n;
          (* consuming a short block to its end is end-of-file *)
          if (not full_block) && boff + n = String.length chunk then eof := true;
          serve ()
        end
      end
    in
    serve ();
    let out = Buffer.contents buf in
    if !upstream = 0 then begin
      bump t "hits" 1;
      bump t "hit_bytes" (String.length out)
    end;
    e.ce_lastend <- Int64.add offset (Int64.of_int (String.length out));
    out
  end

(* ---- the write-through update ---- *)

let write_update t (qid : Ninep.Fcall.qid) ~offset ~data =
  match Hashtbl.find_opt t.files qid.Ninep.Fcall.qpath with
  | None -> ()
  | Some e ->
    let bsize = t.cfg.bsize in
    let len = String.length data in
    let off = Int64.to_int offset in
    if len > 0 then begin
      let first = off / bsize and last = (off + len - 1) / bsize in
      for idx = first to last do
        match Hashtbl.find_opt e.ce_blocks idx with
        | None -> ()  (* no write-allocate: a later read fetches fresh *)
        | Some b ->
          let bstart = idx * bsize in
          let s = max off bstart and fin = min (off + len) (bstart + bsize) in
          let rel_s = s - bstart and rel_e = fin - bstart in
          let cur = b.bk_data in
          if rel_s > String.length cur then
            (* a hole this block cannot represent: drop it *)
            forget_block t b
          else begin
            let head = String.sub cur 0 rel_s in
            let mid = String.sub data (s - off) (fin - s) in
            let tail =
              if String.length cur > rel_e then
                String.sub cur rel_e (String.length cur - rel_e)
              else ""
            in
            let nd = head ^ mid ^ tail in
            t.used <- t.used - String.length cur + String.length nd;
            b.bk_data <- nd;
            touch t b
          end
      done;
      evict t
    end;
    (* the server bumps qid.vers once for our own write; account for it
       so the next open does not read as a foreign change *)
    e.ce_vers <- Int32.add e.ce_vers 1l

(* ---- the proxy file server ---- *)

type pnode = {
  mutable fid : Ninep.Client.fid option;
      (* [None] only after a failed clone: every later use errors *)
  mutable nqid : Ninep.Fcall.qid;
  p_gen : int;  (* upstream generation this fid was minted on *)
}

let wrap f = try Ok (f ()) with Ninep.Client.Err e -> Error e

(* A fid minted before [set_upstream] belongs to a dead connection; the
   fresh client numbers fids from scratch, so using the old number
   would alias an unrelated file.  Refuse it: the holder must remount. *)
let getfid t n =
  if n.p_gen <> t.gen then raise (Ninep.Client.Err "upstream redialed: stale fid");
  match n.fid with
  | Some f -> f
  | None -> raise (Ninep.Client.Err "cloned fid unavailable")

let proxy_fs t =
  {
    Ninep.Server.fs_name = "cfs";
    fs_attach =
      (fun ~uname ~aname ->
        wrap (fun () ->
            if not t.sessioned then begin
              Ninep.Client.session t.client;
              t.sessioned <- true
            end;
            let fid, nqid = Ninep.Client.attach_q t.client ~uname ~aname in
            { fid = Some fid; nqid; p_gen = t.gen }));
    fs_qid = (fun n -> n.nqid);
    fs_walk =
      (fun n name ->
        wrap (fun () ->
            let q = Ninep.Client.walk t.client (getfid t n) name in
            note_qid t q;
            n.nqid <- q;
            n));
    fs_open =
      (fun n mode ~trunc ->
        wrap (fun () ->
            let q = Ninep.Client.open_ t.client (getfid t n) ~trunc mode in
            note_qid t q;
            n.nqid <- q));
    fs_read =
      (fun n ~offset ~count ->
        wrap (fun () ->
            if Ninep.Fcall.qid_is_dir n.nqid then begin
              bump t "dir_reads" 1;
              Ninep.Client.read t.client (getfid t n) ~offset ~count
            end
            else read_cached t n.nqid (getfid t n) ~offset ~count));
    fs_write =
      (fun n ~offset ~data ->
        wrap (fun () ->
            (* write-through: the server confirms before the cache moves *)
            let cnt = Ninep.Client.write t.client (getfid t n) ~offset data in
            bump t "write_through" 1;
            write_update t n.nqid ~offset
              ~data:(if cnt = String.length data then data
                     else String.sub data 0 cnt);
            cnt));
    fs_create =
      (fun n ~name ~perm mode ->
        wrap (fun () ->
            let q = Ninep.Client.create t.client (getfid t n) ~name ~perm mode in
            note_qid t q;
            n.nqid <- q;
            n));
    fs_remove =
      (fun n ->
        wrap (fun () ->
            Ninep.Client.remove t.client (getfid t n);
            drop_file t n.nqid.Ninep.Fcall.qpath));
    fs_stat =
      (fun n ->
        wrap (fun () ->
            let d = Ninep.Client.stat t.client (getfid t n) in
            note_qid t d.Ninep.Fcall.d_qid;
            d));
    fs_wstat =
      (fun n d -> wrap (fun () -> Ninep.Client.wstat t.client (getfid t n) d));
    fs_clunk =
      (fun n ->
        match n.fid with
        | None -> ()
        | Some f when n.p_gen <> t.gen -> ignore f
        | Some f -> (
          try Ninep.Client.clunk t.client f with Ninep.Client.Err _ -> ()));
    fs_clone =
      (fun n ->
        match wrap (fun () -> Ninep.Client.clone t.client (getfid t n)) with
        | Ok fid -> { fid = Some fid; nqid = n.nqid; p_gen = t.gen }
        | Error e ->
          (* the serve loop has no error path for clone; a node with no
             fid makes every later use fail cleanly instead *)
          Log.debug (fun f -> f "clone failed: %s" e);
          { fid = None; nqid = n.nqid; p_gen = t.gen });
  }

(* ---- construction ---- *)

(* Serve the cache's 9P face on [tr].  Each call runs its own server
   process with its own fid table; every connection shares the one
   block cache, flight table and upstream client — this is what makes
   the cache stackable (a rack-tier cfs serves many terminals). *)
let serve t tr = Ninep.Server.serve t.eng (proxy_fs t) tr

(* A fresh in-process connection to the cache: one more client of the
   shared cache, e.g. a terminal-tier cfs stacking on a rack tier. *)
let connect t =
  let local, remote = Ninep.Transport.pipe t.eng in
  ignore (serve t remote);
  local

let make ?(config = default_config) eng ~upstream () =
  if config.bsize <= 0 || config.bsize > Ninep.Fcall.maxfdata then
    invalid_arg "Cfs.make: bsize must be in 1..maxfdata";
  if config.readahead <= 0 then invalid_arg "Cfs.make: readahead must be > 0";
  let client = Ninep.Client.make eng upstream in
  let rec sentinel =
    { bk_path = 0l; bk_idx = -1; bk_data = ""; bk_prev = sentinel;
      bk_next = sentinel }
  in
  let local, remote = Ninep.Transport.pipe eng in
  let t =
    { eng; cfg = config; client; local; files = Hashtbl.create 31;
      lru = sentinel; flights = Hashtbl.create 7;
      metrics = Obs.Metrics.create (); used = 0; sessioned = false; gen = 0 }
  in
  ignore (Ninep.Server.serve eng (proxy_fs t) remote);
  t

(* Point the cache at a new upstream connection — the heal path after a
   partition killed the old one.  Cached blocks and version tracking
   survive (same origin, same qid space), so the cache comes back warm;
   downstream fids minted on the dead connection are refused (see
   [getfid]) and their holders must re-attach. *)
let set_upstream t upstream =
  (try Ninep.Client.hangup t.client with _ -> ());
  t.client <- Ninep.Client.make t.eng upstream;
  t.sessioned <- false;
  t.gen <- t.gen + 1

let transport t = t.local
let config t = t.cfg

let set_readahead t n =
  if n <= 0 then invalid_arg "Cfs.set_readahead";
  t.cfg <- { t.cfg with readahead = n }

let set_budget t n =
  if n < 0 then invalid_arg "Cfs.set_budget";
  t.cfg <- { t.cfg with budget = n };
  evict t

(* ---- observability ---- *)

let counter t name = Obs.Metrics.counter t.metrics name
let counters t = Obs.Metrics.counters t.metrics
let cached_bytes t = t.used

let cached_files t =
  Hashtbl.fold
    (fun _ e acc -> if Hashtbl.length e.ce_blocks > 0 then acc + 1 else acc)
    t.files 0

let stat_names =
  [ "hits"; "misses"; "hit_bytes"; "miss_bytes"; "evictions";
    "invalidations"; "write_through"; "dir_reads"; "coalesced" ]

let stats_text t =
  let b = Buffer.create 128 in
  List.iter
    (fun name -> Printf.bprintf b "%s %d\n" name (counter t name))
    stat_names;
  Printf.bprintf b "cached_bytes %d\n" (cached_bytes t);
  Printf.bprintf b "cached_files %d\n" (cached_files t);
  Buffer.contents b

let status_text t =
  Printf.sprintf "cfs bsize %d budget %d readahead %d used %d files %d\n"
    t.cfg.bsize t.cfg.budget t.cfg.readahead t.used (cached_files t)

(* ---- the ctl/stats/status conversation directory ---- *)

type cfile = CRoot | CCtl | CStats | CStatus

type ctlnode = { mutable cf : cfile; mutable copened : bool }

let cqid = function
  | CRoot ->
    { Ninep.Fcall.qpath = Int32.logor Ninep.Fcall.qdir_bit 1l; qvers = 0l }
  | CCtl -> { Ninep.Fcall.qpath = 2l; qvers = 0l }
  | CStats -> { Ninep.Fcall.qpath = 3l; qvers = 0l }
  | CStatus -> { Ninep.Fcall.qpath = 4l; qvers = 0l }

let cname = function
  | CRoot -> "."
  | CCtl -> "ctl"
  | CStats -> "stats"
  | CStatus -> "status"

let cstat f =
  {
    Ninep.Fcall.d_name = cname f;
    d_uid = "cfs";
    d_gid = "cfs";
    d_qid = cqid f;
    d_mode =
      (match f with
      | CRoot -> Int32.logor Ninep.Fcall.dmdir 0o555l
      | CCtl -> 0o222l
      | CStats | CStatus -> 0o444l);
    d_atime = 0l;
    d_mtime = 0l;
    d_length = 0L;
    d_type = Char.code 'C';
    d_dev = 0;
  }

let ctl_write t text =
  let words =
    String.split_on_char ' ' (String.trim text)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "flush" ] ->
    flush t;
    Ok ()
  | [ "readahead"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 ->
      set_readahead t n;
      Ok ()
    | Some _ | None -> Error ("bad read-ahead window: " ^ n))
  | [ "budget"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 ->
      set_budget t n;
      Ok ()
    | Some _ | None -> Error ("bad budget: " ^ n))
  | [ "bsize"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 && n <= Ninep.Fcall.maxfdata ->
      flush t;
      t.cfg <- { t.cfg with bsize = n };
      Ok ()
    | Some _ | None -> Error ("bad block size: " ^ n))
  | _ -> Error ("bad control message: " ^ String.trim text)

let ctl_fs t =
  {
    Ninep.Server.fs_name = "cfsctl";
    fs_attach = (fun ~uname:_ ~aname:_ -> Ok { cf = CRoot; copened = false });
    fs_qid = (fun n -> cqid n.cf);
    fs_walk =
      (fun n name ->
        match (n.cf, name) with
        | CRoot, ".." -> Ok n
        | CRoot, "ctl" ->
          n.cf <- CCtl;
          Ok n
        | CRoot, "stats" ->
          n.cf <- CStats;
          Ok n
        | CRoot, "status" ->
          n.cf <- CStatus;
          Ok n
        | (CCtl | CStats | CStatus), ".." ->
          n.cf <- CRoot;
          Ok n
        | (CRoot | CCtl | CStats | CStatus), _ -> Error "file does not exist");
    fs_open =
      (fun n _mode ~trunc:_ ->
        n.copened <- true;
        Ok ());
    fs_read =
      (fun n ~offset ~count ->
        if not n.copened then Error "not open"
        else
          match n.cf with
          | CRoot ->
            Ok
              (Ninep.Server.dir_data
                 [ cstat CCtl; cstat CStats; cstat CStatus ]
                 ~offset ~count)
          | CCtl -> Ok ""
          | CStats -> Ok (Ninep.Server.slice (stats_text t) ~offset ~count)
          | CStatus -> Ok (Ninep.Server.slice (status_text t) ~offset ~count));
    fs_write =
      (fun n ~offset:_ ~data ->
        if not n.copened then Error "not open"
        else
          match n.cf with
          | CCtl -> (
            match ctl_write t data with
            | Ok () -> Ok (String.length data)
            | Error e -> Error e)
          | CRoot | CStats | CStatus -> Error Ninep.Server.read_only_err);
    fs_create = (fun _ ~name:_ ~perm:_ _ -> Error Ninep.Server.read_only_err);
    fs_remove = (fun _ -> Error Ninep.Server.read_only_err);
    fs_stat = (fun n -> Ok (cstat n.cf));
    fs_wstat = (fun _ _ -> Error Ninep.Server.read_only_err);
    fs_clunk = (fun _ -> ());
    fs_clone = (fun n -> { cf = n.cf; copened = false });
  }
