(** cfs — the caching 9P file-server proxy.

    The paper's economy rests on 9P crossing slow media: serial lines,
    Datakit virtual circuits, gateways feeding diskless terminals.
    Plan 9 answered the latency with [cfs], "a user-level file server
    ... interposed on the 9P stream between the terminal and the file
    server" that kept a write-through cache of file blocks on a local
    disk.  This module is that proxy, simulated: 9P in, 9P out.

    A [t] speaks 9P {e as a client} on the [upstream] transport (to any
    9P server — ramfs, exportfs, a remote kernel) and {e serves} 9P on
    {!transport}, which the local kernel's mount driver mounts exactly
    as it would the raw connection.  In between sits a fixed-budget LRU
    block cache keyed by [(qid.path, block index)]:

    - {b Validation} is by [qid.vers].  Every Rwalk/Ropen/Rstat/Rcreate
      reply carries the file's qid; when the version differs from the
      cached one the file's blocks are discarded (an {e invalidation}).
      The 1993 cfs needed a separate stat round trip for this — in 9P1
      the qid rides every walk and open reply, so revalidation here is
      free of extra messages.
    - {b Reads} are served from cached blocks.  A miss issues one
      upstream Tread; on sequential access it is widened to the
      {e read-ahead} window (whole blocks, capped at the 8 KiB 9P data
      limit), so many small local reads collapse into few large round
      trips.  A short or empty reply marks end-of-file, which is cached
      too.
    - {b Writes} go through synchronously (write-through: the cache is
      never the only copy), then update any cached blocks in place.
      The proxy accounts one version bump per write so its own traffic
      is not mistaken for a foreign change at the next open.
    - {b Eviction} is strict LRU over blocks, bounded by [budget]
      bytes.

    Everything is observable: hit/miss/evict/invalidation counters are
    kept in an {!Obs.Metrics.t} (mirrored into the engine's trace as
    [cfs.*] when one is attached) and served Plan 9 style through
    {!ctl_fs}, a [ctl]/[stats]/[status] conversation directory. *)

type config = {
  bsize : int;  (** cache block size in bytes (default 1024) *)
  budget : int;  (** cache capacity in bytes of block data (default 256 KiB) *)
  readahead : int;
      (** read-ahead window in blocks fetched by one upstream read on
          sequential access (default 8; capped so one fetch fits in a
          single 9P message) *)
}

val default_config : config

type t

val make :
  ?config:config -> Sim.Engine.t -> upstream:Ninep.Transport.t -> unit -> t
(** Interpose the proxy on [upstream]: starts the upstream client
    demultiplexer and the local 9P server loop.  The upstream Tsession
    is sent lazily at the first attach (so [make] itself may be called
    outside process context).
    @raise Invalid_argument if [bsize] is not in [1 .. maxfdata]. *)

val transport : t -> Ninep.Transport.t
(** The cached side of the proxy: hand this to {!Ninep.Client.make}
    (and then to [mount]) wherever the raw server connection would have
    gone. *)

val connect : t -> Ninep.Transport.t
(** One more in-process connection to the cache, alongside
    {!transport}.  Every connection shares the one block cache and
    upstream client, so a cache can serve a whole rack of clients — or
    another [Cfs.t] can stack on top of it ([make ~upstream:(connect
    rack)]) to form a terminal-tier/rack-tier hierarchy.  Version
    invalidations noticed on any connection discard the shared blocks,
    so sibling clients never read bytes staler than the qid version the
    proxy has seen. *)

val serve : t -> Ninep.Transport.t -> Sim.Proc.t
(** Serve the cache's 9P face on an existing transport (e.g. a network
    fd accepted by a listener).  Returns the per-connection server
    process; each connection has its own fid table but shares the
    cache. *)

val set_upstream : t -> Ninep.Transport.t -> unit
(** Replace the upstream connection — the heal path after a partition
    killed the old one.  The block cache and qid-version tracking
    survive (the new transport must reach the {e same} file server), so
    the cache comes back warm; fids minted through the old connection
    are refused with ["upstream redialed: stale fid"] and their holders
    must re-attach. *)

val config : t -> config

val flush : t -> unit
(** Drop every cached block (version tracking restarts; never counts as
    an invalidation). *)

val set_readahead : t -> int -> unit
val set_budget : t -> int -> unit
(** Shrinking the budget evicts immediately. *)

(** {1 Cache observability} *)

val counter : t -> string -> int
(** Counters: ["hits"] (reads served entirely from cache), ["misses"]
    (upstream Treads issued for data), ["hit_bytes"], ["miss_bytes"],
    ["evictions"], ["invalidations"], ["write_through"], ["dir_reads"],
    ["coalesced"] (concurrent same-block misses that waited on an
    in-flight upstream read instead of issuing their own).  Unknown
    names read 0. *)

val counters : t -> (string * int) list
(** All nonzero counters, sorted by name. *)

val cached_bytes : t -> int
(** Current bytes of block data held. *)

val cached_files : t -> int
(** Files with at least one cached block. *)

val stats_text : t -> string
(** The [stats] file: one ["name value\n"] line per counter plus
    current [cached_bytes]/[cached_files]. *)

val status_text : t -> string
(** The [status] file: one line of configuration and occupancy. *)

type ctlnode

val ctl_fs : t -> ctlnode Ninep.Server.fs
(** A conversation directory exposing the cache: [ctl] (write
    ["flush"], ["readahead n"], ["budget n"], or ["bsize n"] — the last
    implies a flush), [stats] ({!stats_text}) and [status]
    ({!status_text}).  Mount it wherever the name space wants it, e.g.
    [/mnt/cfs]. *)
