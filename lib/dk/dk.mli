(** Datakit and URP (paper sections 1, 2.3, 8).

    Datakit is a circuit-switched network: hosts attach to a switch by
    named lines (addresses look like [nj/astro/helix]) and dial
    circuits to ["line!service"] destinations.  The switch delivers
    cells in order over established circuits; rejection can carry a
    reason ("networks such as Datakit accept a reason for a
    rejection").

    URP, the Universal Receiver Protocol, runs end-to-end over a
    circuit and adds reliable, sequenced, {e delimited} message
    delivery with a small window — which is why 9P could run over
    Datakit directly.  Recovery is enquiry-based (an [enq] elicits the
    receiver's state; only missing cells are resent), the ancestor of
    IL's query scheme. *)

module Switch : sig
  type t
  type line

  type stats = {
    mutable cells_in : int;
    mutable cells_out : int;
    mutable drops_injected : int;  (** injected drops (loss, burst, partition, filter) bound for this line *)
    mutable dups_injected : int;
    mutable reorders_injected : int;
  }

  val create :
    ?bandwidth_bps:float ->
    ?latency:float ->
    ?loss:float ->
    name:string ->
    Sim.Engine.t ->
    t
  (** [bandwidth_bps] is the per-line serialization rate (default 2e6 —
      a Datakit-era effective line speed), [latency] the switch transit
      time (default 200e-6 s), [loss] a per-cell drop probability for
      fault injection (default 0; real Datakit hardware was reliable). *)

  val engine : t -> Sim.Engine.t

  val faults : t -> Netsim.Fault.t
  (** The switch-wide fault schedule, applied to every data/control
      cell crossing the switch.  [Hangup] cells are exempt from all
      faults (losing one would wedge circuit teardown; the real switch
      tore circuits down out of band).  Same determinism contract as
      {!Netsim.Fault}. *)

  val set_loss : t -> float -> unit
  (** Alias for [Netsim.Fault.set_loss (faults t)]. *)

  val attach : t -> name:string -> line
  (** Attach a host under a hierarchical name like ["nj/astro/helix"].
      @raise Invalid_argument if the name is taken. *)

  val line_name : line -> string

  val line_faults : line -> Netsim.Fault.t
  (** This line's own fault schedule, applied (after the switch's and
      the sender's) to every cell it would receive or send —
      partitioning one line models pulling its fiber. *)

  val line_stats : line -> stats
end

module Circuit : sig
  (** Raw circuits: ordered cell delivery, no recovery.  URP sits on
      top. *)

  type t

  type cell =
    | Data of { payload : string; last : bool }
        (** [last] marks a message boundary (BOT/EOT analog) *)
    | Ctl of string  (** in-band control used by URP *)
    | Hangup

  exception Rejected of string
  (** Call rejected; carries the reason given by the callee. *)

  exception No_such_line of string

  type incoming
  (** A call delivered to a listener, not yet accepted. *)

  val dial : Switch.line -> dest:string -> service:string -> t
  (** Place a call; blocks the calling process until accepted.
      @raise Rejected / @raise No_such_line on failure. *)

  val announce : Switch.line -> service:string -> incoming Sim.Mbox.t
  (** Listen for calls to [service]; the service ["*"] receives every
      call whose service has no explicit listener.
      @raise Invalid_argument if already announced. *)

  val caller : incoming -> string
  (** The calling line's name. *)

  val service : incoming -> string

  val accept : incoming -> t
  val reject : incoming -> reason:string -> unit

  val send : t -> cell -> unit
  (** Queue a cell for the circuit (never blocks; the wire paces
      itself). *)

  val recv : t -> cell option
  (** Next cell in order; blocks; [None] once hung up. *)

  val hangup : t -> unit
  val peer_name : t -> string
end

module Urp : sig
  type conv

  type config = {
    cell_size : int;  (** max payload per cell (default 1024) *)
    window : int;  (** outstanding cells (default 8) *)
    min_timeout : float;  (** enq timer floor (default 0.1 s) *)
    cpu : Sim.Cpu.t option;
    cost_per_cell : float;
    cost_per_byte : float;
  }

  val default_config : config

  type counters = {
    mutable cells_sent : int;
    mutable cells_rcvd : int;
    mutable bytes_sent : int;
    mutable bytes_rcvd : int;
    mutable retransmits : int;
    mutable enqs_sent : int;
    mutable dups_dropped : int;
  }

  val over : ?config:config -> Circuit.t -> conv
  (** Run URP over an established circuit (both ends must do this). *)

  val counters : conv -> counters

  exception Hungup

  val write : conv -> string -> unit
  (** Send one delimited message reliably; blocks while the window is
      full. *)

  val read : conv -> int -> string
  (** Up to [n] bytes, never crossing a message boundary; [""] at
      EOF. *)

  val read_msg : conv -> string option
  val close : conv -> unit
end
