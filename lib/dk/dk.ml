let src = Logs.Src.create "dk" ~doc:"Datakit switch and URP"

module Log = (val Logs.src_log src : Logs.LOG)

module Switch = struct
  module Fault = Netsim.Fault

  type cell_ = Data_ of { payload : string; last : bool } | Ctl_ of string | Hangup_

  type stats = {
    mutable cells_in : int;
    mutable cells_out : int;
    mutable drops_injected : int;
    mutable dups_injected : int;
    mutable reorders_injected : int;
  }

  type cend = {
    ce_line : line;
    ce_chan : int;
    mutable ce_peer : cend option;
    ce_inq : cell_ option Sim.Mbox.t;  (* None = end of circuit *)
    mutable ce_up : bool;
  }

  and line = {
    l_name : string;
    l_sw : t;
    l_services : (string, incoming Sim.Mbox.t) Hashtbl.t;
    l_chans : (int, cend) Hashtbl.t;
    mutable l_next_chan : int;
    mutable l_busy_until : float;  (* uplink serialization *)
    l_fault : Fault.t;
    l_stats : stats;
  }

  and incoming = {
    in_caller : string;
    in_service : string;
    in_callee : line;
    in_caller_line : line;
    mutable in_settled : bool;
    in_resume : cend -> unit;
    in_abort : exn -> unit;
  }

  and t = {
    sw_name : string;
    eng : Sim.Engine.t;
    bandwidth : float;
    latency : float;
    sw_fault : Fault.t;
    lines : (string, line) Hashtbl.t;
  }

  let create ?(bandwidth_bps = 2e6) ?(latency = 200e-6) ?(loss = 0.) ~name
      eng =
    let sw_fault = Fault.create () in
    Fault.set_loss sw_fault loss;
    {
      sw_name = name;
      eng;
      bandwidth = bandwidth_bps;
      latency;
      sw_fault;
      lines = Hashtbl.create 17;
    }

  let engine t = t.eng
  let faults t = t.sw_fault
  let set_loss t p = Fault.set_loss t.sw_fault p

  let attach t ~name =
    if Hashtbl.mem t.lines name then
      invalid_arg ("Dk.Switch.attach: line exists: " ^ name);
    let line =
      {
        l_name = name;
        l_sw = t;
        l_services = Hashtbl.create 7;
        l_chans = Hashtbl.create 17;
        l_next_chan = 1;
        l_busy_until = 0.;
        l_fault = Fault.create ();
        l_stats =
          {
            cells_in = 0;
            cells_out = 0;
            drops_injected = 0;
            dups_injected = 0;
            reorders_injected = 0;
          };
      }
    in
    Hashtbl.replace t.lines name line;
    line

  let line_name l = l.l_name
  let line_faults l = l.l_fault
  let line_stats l = l.l_stats

  let alloc_end line =
    let chan = line.l_next_chan in
    line.l_next_chan <- chan + 1;
    let ce =
      {
        ce_line = line;
        ce_chan = chan;
        ce_peer = None;
        ce_inq = Sim.Mbox.create line.l_sw.eng;
        ce_up = true;
      }
    in
    Hashtbl.replace line.l_chans chan ce;
    ce

  let cell_bytes = function
    | Data_ { payload; _ } -> String.length payload + 4
    | Ctl_ s -> String.length s + 4
    | Hangup_ -> 4

  let cell_payload = function
    | Data_ { payload; _ } -> payload
    | Ctl_ s -> s
    | Hangup_ -> ""

  (* The single choke point every injected fault funnels through:
     bumps the would-be receiver's line stats and emits a tagged
     Obs event so taps can attribute it. *)
  let inject sw ~src ~(dst : line) ~kind ~reason bytes =
    (match kind with
    | `Drop -> dst.l_stats.drops_injected <- dst.l_stats.drops_injected + 1
    | `Dup -> dst.l_stats.dups_injected <- dst.l_stats.dups_injected + 1
    | `Reorder ->
      dst.l_stats.reorders_injected <- dst.l_stats.reorders_injected + 1);
    match Sim.Engine.obs sw.eng with
    | None -> ()
    | Some tr ->
      let kind_s =
        match kind with
        | `Drop -> if reason = "partition" then "partition" else "drop"
        | `Dup -> "dup"
        | `Reorder -> "reorder"
      in
      Obs.Trace.emit tr
        (Obs.Event.Fault
           {
             medium = sw.sw_name;
             kind = kind_s;
             reason;
             src;
             dst = dst.l_name;
             proto = "dk";
             bytes;
           });
      Obs.Trace.bump tr ("fault." ^ kind_s) 1;
      match kind with
      | `Drop -> Obs.Trace.bump tr "dk.cell.drop" 1
      | `Dup | `Reorder -> ()

  (* Serialize on the sender's line, cross the switch, deliver to the
     peer end's queue. *)
  let send_cell ce cell =
    match ce.ce_peer with
    | None -> ()
    | Some peer ->
      let sw = ce.ce_line.l_sw in
      let now = Sim.Engine.now sw.eng in
      let line = ce.ce_line in
      let bytes = cell_bytes cell in
      let start = if line.l_busy_until > now then line.l_busy_until else now in
      let finish = start +. (float_of_int (bytes * 8) /. sw.bandwidth) in
      line.l_busy_until <- finish;
      line.l_stats.cells_out <- line.l_stats.cells_out + 1;
      let dst = peer.ce_line in
      let v =
        match cell with
        | Hangup_ ->
          (* hangups are exempt from every fault: a lost hangup would
             wedge circuit teardown, and the real switch tore circuits
             down out of band *)
          Fault.pass
        | Data_ _ | Ctl_ _ ->
          let rng = Sim.Engine.random sw.eng in
          let payload = cell_payload cell in
          let v =
            if Fault.active sw.sw_fault then
              Fault.decide sw.sw_fault rng ~now payload
            else Fault.pass
          in
          let v =
            if Fault.active line.l_fault then
              Fault.combine v (Fault.decide line.l_fault rng ~now payload)
            else v
          in
          if Fault.active dst.l_fault then
            Fault.combine v (Fault.decide dst.l_fault rng ~now payload)
          else v
      in
      (match Sim.Engine.obs sw.eng with
      | None -> ()
      | Some tr ->
        Obs.Trace.emit tr
          (Obs.Event.Packet
             {
               medium = sw.sw_name;
               op = Obs.Event.Tx;
               src = line.l_name;
               dst = dst.l_name;
               proto = "dk";
               bytes;
             });
        Obs.Trace.bump tr "dk.cell.tx" 1);
      match v.Fault.v_drop with
      | Some reason -> inject sw ~src:line.l_name ~dst ~kind:`Drop ~reason bytes
      | None ->
        let deliver at =
          Sim.Engine.at ~label:"dk" sw.eng at (fun () ->
              if peer.ce_up then begin
                dst.l_stats.cells_in <- dst.l_stats.cells_in + 1;
                Sim.Mbox.send peer.ce_inq
                  (match cell with Hangup_ -> None | c -> Some c)
              end)
        in
        let base = finish +. sw.latency +. v.Fault.v_delay in
        if v.Fault.v_reorder then
          inject sw ~src:line.l_name ~dst ~kind:`Reorder ~reason:"reorder"
            bytes;
        deliver base;
        if v.Fault.v_dup then begin
          inject sw ~src:line.l_name ~dst ~kind:`Dup ~reason:"dup" bytes;
          deliver (base +. (float_of_int (bytes * 8) /. sw.bandwidth))
        end
end

module Circuit = struct
  type t = Switch.cend

  type cell =
    | Data of { payload : string; last : bool }
    | Ctl of string
    | Hangup

  exception Rejected of string
  exception No_such_line of string

  type incoming = Switch.incoming

  let caller (inc : incoming) = inc.Switch.in_caller
  let service (inc : incoming) = inc.Switch.in_service

  let announce line ~service =
    if Hashtbl.mem line.Switch.l_services service then
      invalid_arg ("Dk.Circuit.announce: service exists: " ^ service);
    let mbox = Sim.Mbox.create line.Switch.l_sw.Switch.eng in
    Hashtbl.replace line.Switch.l_services service mbox;
    mbox

  let dial line ~dest ~service =
    let sw = line.Switch.l_sw in
    let obs = Sim.Engine.obs sw.Switch.eng in
    let sp =
      match obs with
      | None -> Obs.Span.none
      | Some tr ->
        Obs.Span.enter tr ~layer:"dk"
          (Printf.sprintf "dk.dial %s!%s" dest service)
    in
    let fin () =
      match obs with None -> () | Some tr -> Obs.Span.exit tr sp
    in
    match Hashtbl.find_opt sw.Switch.lines dest with
    | None ->
      fin ();
      raise (No_such_line dest)
    | Some callee -> (
      let listener =
        match Hashtbl.find_opt callee.Switch.l_services service with
        | Some mbox -> Some mbox
        | None -> Hashtbl.find_opt callee.Switch.l_services "*"
      in
      match listener with
      | None ->
        fin ();
        raise (Rejected ("unknown service: " ^ service))
      | Some mbox ->
        (match
           Sim.Proc.suspend ~register:(fun ~resume ~abort ->
            let inc =
              {
                Switch.in_caller = line.Switch.l_name;
                in_service = service;
                in_callee = callee;
                in_caller_line = line;
                in_settled = false;
                in_resume = resume;
                in_abort = abort;
              }
            in
            (* call setup crosses the switch *)
            Sim.Engine.after ~label:"dk" sw.Switch.eng sw.Switch.latency (fun () ->
                Sim.Mbox.send mbox inc);
            ignore)
         with
        | ce ->
          fin ();
          ce
        | exception e ->
          fin ();
          raise e))

  let accept (inc : incoming) =
    if inc.Switch.in_settled then invalid_arg "Dk.Circuit.accept: settled";
    inc.Switch.in_settled <- true;
    let caller_end = Switch.alloc_end inc.Switch.in_caller_line in
    let callee_end = Switch.alloc_end inc.Switch.in_callee in
    caller_end.Switch.ce_peer <- Some callee_end;
    callee_end.Switch.ce_peer <- Some caller_end;
    let sw = inc.Switch.in_callee.Switch.l_sw in
    Sim.Engine.after ~label:"dk" sw.Switch.eng sw.Switch.latency (fun () ->
        inc.Switch.in_resume caller_end);
    callee_end

  let reject (inc : incoming) ~reason =
    if inc.Switch.in_settled then invalid_arg "Dk.Circuit.reject: settled";
    inc.Switch.in_settled <- true;
    let sw = inc.Switch.in_callee.Switch.l_sw in
    Sim.Engine.after ~label:"dk" sw.Switch.eng sw.Switch.latency (fun () ->
        inc.Switch.in_abort (Rejected reason))

  let send (ce : t) cell =
    if ce.Switch.ce_up then
      Switch.send_cell ce
        (match cell with
        | Data { payload; last } -> Switch.Data_ { payload; last }
        | Ctl s -> Switch.Ctl_ s
        | Hangup -> Switch.Hangup_)

  let recv (ce : t) =
    if not ce.Switch.ce_up then None
    else
      match Sim.Mbox.recv ce.Switch.ce_inq with
      | None ->
        ce.Switch.ce_up <- false;
        None
      | Some (Switch.Data_ { payload; last }) -> Some (Data { payload; last })
      | Some (Switch.Ctl_ s) -> Some (Ctl s)
      | Some Switch.Hangup_ -> None

  let hangup (ce : t) =
    if ce.Switch.ce_up then begin
      Switch.send_cell ce Switch.Hangup_;
      ce.Switch.ce_up <- false;
      Hashtbl.remove ce.Switch.ce_line.Switch.l_chans ce.Switch.ce_chan;
      (* unblock a local reader too *)
      Sim.Mbox.send ce.Switch.ce_inq None
    end

  let peer_name (ce : t) =
    match ce.Switch.ce_peer with
    | Some p -> p.Switch.ce_line.Switch.l_name
    | None -> "?"
end

module Urp = struct
  type config = {
    cell_size : int;
    window : int;
    min_timeout : float;
    cpu : Sim.Cpu.t option;
    cost_per_cell : float;
    cost_per_byte : float;
  }

  let default_config =
    {
      cell_size = 1024;
      window = 8;
      min_timeout = 0.1;
      cpu = None;
      cost_per_cell = 0.;
      cost_per_byte = 0.;
    }

  type counters = {
    mutable cells_sent : int;
    mutable cells_rcvd : int;
    mutable bytes_sent : int;
    mutable bytes_rcvd : int;
    mutable retransmits : int;
    mutable enqs_sent : int;
    mutable dups_dropped : int;
  }

  exception Hungup

  type conv = {
    circ : Circuit.t;
    cfg : config;
    eng : Sim.Engine.t;
    stats : counters;
    (* transmit side; sequence numbers are mod 256, window << 128 *)
    mutable snd_seq : int;  (* seq of next cell to send *)
    mutable unacked : (int * string * bool) list;  (* seq, payload, last *)
    wwait : Sim.Rendez.t;
    mutable last_progress : float;
    mutable backoff : int;
    (* receive side *)
    mutable rcv_expect : int;  (* next in-order seq *)
    partial : Buffer.t;  (* cells of the message being assembled *)
    rq : Block.Q.t;
    mutable closed_ : bool;
    ticker : Sim.Time.ticker;
    kproc : Sim.Proc.t;
  }

  let counters c = c.stats
  let seq_diff a b = (a - b + 256) mod 256

  let cell_cost c bytes =
    match c.cfg.cpu with
    | None -> None
    | Some cpu ->
      Some (cpu, c.cfg.cost_per_cell +. (c.cfg.cost_per_byte *. float_of_int bytes))

  let tx_cell c payload =
    match cell_cost c (String.length payload) with
    | None -> Circuit.send c.circ (Circuit.Data { payload; last = true })
    | Some (cpu, cost) ->
      Sim.Cpu.run_after ~label:"dk" cpu cost (fun () ->
          Circuit.send c.circ (Circuit.Data { payload; last = true }))

  let tx_ctl c s = Circuit.send c.circ (Circuit.Ctl s)

  let send_raw c ~seq ~last payload =
    c.stats.cells_sent <- c.stats.cells_sent + 1;
    let hdr = Bytes.create 2 in
    Bytes.set hdr 0 (Char.chr seq);
    Bytes.set hdr 1 (if last then '\001' else '\000');
    tx_cell c (Bytes.to_string hdr ^ payload)

  let process_ack c ack =
    (* ack acknowledges every outstanding cell up to and including
       [ack] *)
    let acked (seq, _, _) =
      (* seq is acked if it is within 'window' behind or equal to ack *)
      seq_diff ack seq < 128
    in
    let before = List.length c.unacked in
    c.unacked <- List.filter (fun cell -> not (acked cell)) c.unacked;
    if List.length c.unacked < before then begin
      c.last_progress <- Sim.Engine.now c.eng;
      c.backoff <- 0;
      Sim.Rendez.wakeup_all c.wwait
    end

  let retransmit_from c ack =
    let missing =
      List.filter (fun (seq, _, _) -> seq_diff ack seq >= 128) c.unacked
    in
    List.iter
      (fun (seq, payload, last) ->
        c.stats.retransmits <- c.stats.retransmits + 1;
        (match Sim.Engine.obs c.eng with
        | None -> ()
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Event.Retransmit
               {
                 proto = "urp";
                 conv = c.circ.Switch.ce_chan;
                 id = seq;
                 bytes = String.length payload;
               });
          Obs.Trace.bump tr "urp.retransmits" 1);
        send_raw c ~seq ~last payload)
      missing

  let handle_data c payload =
    if String.length payload >= 2 then begin
      let seq = Char.code payload.[0] in
      let last = payload.[1] = '\001' in
      let data = String.sub payload 2 (String.length payload - 2) in
      if seq = c.rcv_expect then begin
        c.stats.cells_rcvd <- c.stats.cells_rcvd + 1;
        c.stats.bytes_rcvd <- c.stats.bytes_rcvd + String.length data;
        c.rcv_expect <- (c.rcv_expect + 1) mod 256;
        Buffer.add_string c.partial data;
        if last then begin
          Block.Q.force_put c.rq
            (Block.make ~delim:true (Buffer.contents c.partial));
          Buffer.clear c.partial
        end;
        tx_ctl c (Printf.sprintf "ack %d" seq)
      end
      else begin
        (* URP receivers do not buffer out-of-order cells: the window
           is small, the circuit is ordered, loss is rare *)
        c.stats.dups_dropped <- c.stats.dups_dropped + 1;
        tx_ctl c
          (Printf.sprintf "ack %d" ((c.rcv_expect + 255) mod 256))
      end
    end

  let handle_ctl c s =
    match String.split_on_char ' ' s with
    | [ "ack"; n ] -> (
      match int_of_string_opt n with
      | Some ack -> process_ack c ack
      | None -> ())
    | [ "enq" ] ->
      (* report our receive state: last in-order cell consumed *)
      tx_ctl c (Printf.sprintf "echo %d" ((c.rcv_expect + 255) mod 256))
    | [ "echo"; n ] -> (
      match int_of_string_opt n with
      | Some ack ->
        process_ack c ack;
        retransmit_from c ack
      | None -> ())
    | [ "close" ] ->
      c.closed_ <- true;
      Block.Q.force_put c.rq (Block.hangup ());
      Block.Q.close c.rq;
      Sim.Rendez.wakeup_all c.wwait
    | _ -> Log.debug (fun m -> m "urp: unknown ctl %S" s)

  let dead_enqs = 10
  (* consecutive unanswered enquiries before declaring the circuit
     dead — the switch would have torn a real circuit down *)

  let tick c =
    if c.unacked <> [] && not c.closed_ then begin
      let now = Sim.Engine.now c.eng in
      let deadline =
        c.last_progress
        +. (c.cfg.min_timeout *. float_of_int (1 lsl min c.backoff 5))
      in
      if now >= deadline then
        if c.backoff >= dead_enqs then begin
          c.closed_ <- true;
          Block.Q.force_put c.rq (Block.hangup ());
          Block.Q.close c.rq;
          Circuit.hangup c.circ;
          Sim.Rendez.wakeup_all c.wwait
        end
        else begin
          c.stats.enqs_sent <- c.stats.enqs_sent + 1;
          c.backoff <- c.backoff + 1;
          c.last_progress <- now;
          tx_ctl c "enq"
        end
    end

  let over ?(config = default_config) circ =
    let eng = circ.Switch.ce_line.Switch.l_sw.Switch.eng in
    let rec conv =
      lazy
        {
          circ;
          cfg = config;
          eng;
          stats =
            {
              cells_sent = 0;
              cells_rcvd = 0;
              bytes_sent = 0;
              bytes_rcvd = 0;
              retransmits = 0;
              enqs_sent = 0;
              dups_dropped = 0;
            };
          snd_seq = 0;
          unacked = [];
          wwait = Sim.Rendez.create eng;
          last_progress = 0.;
          backoff = 0;
          rcv_expect = 0;
          partial = Buffer.create 256;
          rq = Block.Q.create eng;
          closed_ = false;
          ticker =
            Sim.Time.every ~label:"dk" eng (config.min_timeout /. 2.) (fun () ->
                tick (Lazy.force conv));
          kproc =
            Sim.Proc.spawn eng ~name:"urp" (fun () ->
                let c = Lazy.force conv in
                let rec loop () =
                  match Circuit.recv circ with
                  | Some (Circuit.Data { payload; _ }) ->
                    (* model receive-side protocol processing *)
                    (match cell_cost c (String.length payload) with
                    | Some (cpu, cost) -> Sim.Cpu.busy_wait cpu cost
                    | None -> ());
                    handle_data c payload;
                    loop ()
                  | Some (Circuit.Ctl s) ->
                    handle_ctl c s;
                    loop ()
                  | Some Circuit.Hangup | None ->
                    c.closed_ <- true;
                    Block.Q.force_put c.rq (Block.hangup ());
                    Block.Q.close c.rq;
                    Sim.Rendez.wakeup_all c.wwait;
                    Sim.Time.cancel c.ticker
                in
                loop ());
        }
    in
    Lazy.force conv

  let write c msg =
    if c.closed_ then raise Hungup;
    let n = String.length msg in
    let ncells = max 1 ((n + c.cfg.cell_size - 1) / c.cfg.cell_size) in
    for i = 0 to ncells - 1 do
      let off = i * c.cfg.cell_size in
      let take = min c.cfg.cell_size (n - off) in
      let last = i = ncells - 1 in
      while List.length c.unacked >= c.cfg.window && not c.closed_ do
        Sim.Rendez.sleep c.wwait
      done;
      if c.closed_ then raise Hungup;
      let seq = c.snd_seq in
      c.snd_seq <- (seq + 1) mod 256;
      let payload = String.sub msg off take in
      c.unacked <- c.unacked @ [ (seq, payload, last) ];
      if c.unacked <> [] && c.backoff = 0 then
        c.last_progress <- Sim.Engine.now c.eng;
      c.stats.bytes_sent <- c.stats.bytes_sent + take;
      send_raw c ~seq ~last payload
    done

  let read c n = Block.Q.read c.rq n

  let read_msg c =
    match Block.Q.get c.rq with
    | Some b -> Some (Block.to_string b)
    | None -> None

  let close c =
    if not c.closed_ then begin
      c.closed_ <- true;
      tx_ctl c "close";
      Circuit.hangup c.circ;
      Block.Q.force_put c.rq (Block.hangup ());
      Block.Q.close c.rq;
      Sim.Time.cancel c.ticker;
      Sim.Proc.kill c.kproc;
      Sim.Rendez.wakeup_all c.wwait
    end
end
