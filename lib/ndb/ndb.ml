type entry = (string * string) list

type lookup_stats = {
  mutable hash_lookups : int;
  mutable linear_scans : int;
  mutable stale_rejected : int;
}

(* an index over one attribute: (value -> entry ids), stamped with the
   master mtime it was built from *)
type index = { idx_mtime : float; idx : (string, int list) Hashtbl.t }

type source = {
  src_path : string option;  (* None: in-memory *)
  mutable src_mtime : float;
  mutable src_entries : entry list;
}

type t = {
  sources : source list;
  mutable all : entry array;  (* concatenated, in search order *)
  indexes : (string, index) Hashtbl.t;
  st : lookup_stats;
}

(* ---- parsing ---- *)

let is_space c = c = ' ' || c = '\t'

(* split a line into attr=value tokens; values may be double-quoted *)
let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space line.[!i] do
      incr i
    done;
    if !i < n then begin
      if line.[!i] = '#' then i := n
      else begin
        let start = !i in
        let buf = Buffer.create 16 in
        let in_quote = ref false in
        while !i < n && ((not (is_space line.[!i])) || !in_quote) do
          (if line.[!i] = '"' then in_quote := not !in_quote
           else Buffer.add_char buf line.[!i]);
          incr i
        done;
        ignore start;
        toks := Buffer.contents buf :: !toks
      end
    end
  done;
  List.rev !toks

(* tolerate spaces around '=' (the paper prints "sys = helix"): a
   standalone "=" token joins its neighbours *)
let rec join_equals = function
  | a :: "=" :: b :: rest -> (a ^ "=" ^ b) :: join_equals rest
  | tok :: rest -> tok :: join_equals rest
  | [] -> []

let pair_of_token tok =
  match String.index_opt tok '=' with
  | Some eq -> (String.sub tok 0 eq, String.sub tok (eq + 1) (String.length tok - eq - 1))
  | None -> (tok, "")

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] and current = ref [] in
  let flush () =
    if !current <> [] then begin
      entries := List.rev !current :: !entries;
      current := []
    end
  in
  List.iter
    (fun line ->
      if line = "" || line.[0] = '#' then ()
      else begin
        let continuation = is_space line.[0] in
        let pairs = List.map pair_of_token (join_equals (tokenize line)) in
        if pairs <> [] then
          if continuation then current := List.rev_append pairs !current
          else begin
            flush ();
            current := List.rev pairs
          end
      end)
    lines;
  flush ();
  List.rev !entries

(* ---- construction ---- *)

let rebuild t =
  t.all <- Array.of_list (List.concat_map (fun s -> s.src_entries) t.sources)

let make sources =
  let t =
    {
      sources;
      all = [||];
      indexes = Hashtbl.create 7;
      st = { hash_lookups = 0; linear_scans = 0; stale_rejected = 0 };
    }
  in
  rebuild t;
  t

let of_string text =
  make [ { src_path = None; src_mtime = 0.; src_entries = parse_string text } ]

let of_entries es =
  make [ { src_path = None; src_mtime = 0.; src_entries = es } ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let open_files paths =
  make
    (List.map
       (fun path ->
         {
           src_path = Some path;
           src_mtime = (Unix.stat path).Unix.st_mtime;
           src_entries = parse_string (read_file path);
         })
       paths)

let reload t =
  let changed = ref false in
  List.iter
    (fun s ->
      match s.src_path with
      | None -> ()
      | Some path ->
        let mtime = (Unix.stat path).Unix.st_mtime in
        if mtime <> s.src_mtime then begin
          s.src_mtime <- mtime;
          s.src_entries <- parse_string (read_file path);
          changed := true
        end)
    t.sources;
  if !changed then rebuild t

let entries t = Array.to_list t.all
let stats t = t.st

let get e attr =
  match List.assoc_opt attr e with Some v -> Some v | None -> None

let get_all e attr =
  List.filter_map (fun (a, v) -> if a = attr then Some v else None) e

(* ---- hash indexes ---- *)

let hash_magic = "NDBHASH1"

let master_mtime t =
  (* the newest backing file; in-memory sources count as 0 *)
  List.fold_left
    (fun acc s ->
      match s.src_path with
      | None -> acc
      | Some path -> Float.max acc (Unix.stat path).Unix.st_mtime)
    0. t.sources

let hash_path t attr =
  match List.filter_map (fun s -> s.src_path) t.sources with
  | [] -> None
  | first :: _ -> Some (first ^ "." ^ attr)

let build_index t attr =
  let idx = Hashtbl.create 1024 in
  Array.iteri
    (fun i e ->
      List.iter
        (fun (a, v) ->
          if a = attr then
            Hashtbl.replace idx v
              (i :: (try Hashtbl.find idx v with Not_found -> [])))
        e)
    t.all;
  (* keep ids in database order *)
  Hashtbl.iter (fun v ids -> Hashtbl.replace idx v (List.rev ids)) idx;
  idx

let write_hash t ~attr =
  let idx = build_index t attr in
  (match hash_path t attr with
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc hash_magic;
        let mtime = master_mtime t in
        Marshal.to_channel oc (mtime : float) [];
        Marshal.to_channel oc (idx : (string, int list) Hashtbl.t) [])
  | None -> ());
  Hashtbl.replace t.indexes attr { idx_mtime = master_mtime t; idx }

let read_hash_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let magic = really_input_string ic (String.length hash_magic) in
          if magic <> hash_magic then None
          else begin
            let mtime : float = Marshal.from_channel ic in
            let idx : (string, int list) Hashtbl.t = Marshal.from_channel ic in
            Some { idx_mtime = mtime; idx }
          end
        with End_of_file | Failure _ -> None)
  end

let fresh_index t attr =
  (* in-memory first, then on disk; reject stale ones *)
  let current = master_mtime t in
  let check = function
    | Some i when i.idx_mtime >= current -> Some i
    | Some _ ->
      t.st.stale_rejected <- t.st.stale_rejected + 1;
      None
    | None -> None
  in
  match check (Hashtbl.find_opt t.indexes attr) with
  | Some i -> Some i
  | None -> (
    match hash_path t attr with
    | None -> None
    | Some path -> (
      match check (read_hash_file path) with
      | Some i ->
        Hashtbl.replace t.indexes attr i;
        Some i
      | None -> None))

let hashed_attrs t =
  List.sort_uniq compare
    (Hashtbl.fold (fun a _ acc -> a :: acc) t.indexes [])

(* ---- searching ---- *)

let entry_matches e attr value =
  List.exists (fun (a, v) -> a = attr && v = value) e

let search t ~attr ~value =
  match fresh_index t attr with
  | Some { idx; _ } ->
    t.st.hash_lookups <- t.st.hash_lookups + 1;
    (match Hashtbl.find_opt idx value with
    | Some ids -> List.map (fun i -> t.all.(i)) ids
    | None -> [])
  | None ->
    t.st.linear_scans <- t.st.linear_scans + 1;
    Array.to_list t.all
    |> List.filter (fun e -> entry_matches e attr value)

let find t ~attr ~value ~rattr =
  let vals =
    List.concat_map (fun e -> get_all e rattr) (search t ~attr ~value)
  in
  let seen = Hashtbl.create 7 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    vals

(* ---- network-specific queries ---- *)

let sys_entry t name =
  match search t ~attr:"sys" ~value:name with
  | e :: _ -> Some e
  | [] -> (
    match search t ~attr:"dom" ~value:name with
    | e :: _ -> Some e
    | [] -> (
      match search t ~attr:"ip" ~value:name with
      | e :: _ -> Some e
      | [] -> None))

(* parse dotted-quad to int32, without depending on Inet *)
let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    let byte x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 -> Some v
      | Some _ | None -> None
    in
    match (byte a, byte b, byte c, byte d) with
    | Some a, Some b, Some c, Some d ->
      Some
        (Int32.logor
           (Int32.shift_left (Int32.of_int a) 24)
           (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d)))
    | _, _, _, _ -> None)
  | _ -> None

let class_mask ip =
  let top = Int32.to_int (Int32.shift_right_logical ip 24) in
  if top < 128 then 0xff000000l
  else if top < 192 then 0xffff0000l
  else 0xffffff00l

let ip_to_string t32 =
  let b n =
    Int32.to_int (Int32.logand (Int32.shift_right_logical t32 n) 0xffl)
  in
  Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)

(* The paper's search order: "the database entry for the source system,
   then its subnetwork (if there is one) and then its network."  The
   network is found under the classful mask; its [ipmask] attribute (if
   any) is the subnet mask that derives the subnetwork address. *)
let ipattr t ~ip ~attr =
  let net_entry addr =
    List.find_opt
      (fun e -> get e "ipnet" <> None)
      (search t ~attr:"ip" ~value:addr)
  in
  let host_val =
    match
      List.find_opt (fun e -> get e "ipnet" = None)
        (search t ~attr:"ip" ~value:ip)
    with
    | Some e -> get e attr
    | None -> None
  in
  match host_val with
  | Some v -> Some v
  | None -> (
    match ip_of_string ip with
    | None -> None
    | Some ipn -> (
      let cmask = class_mask ipn in
      let cnet = Int32.logand ipn cmask in
      let network = net_entry (ip_to_string cnet) in
      let smask =
        match Option.bind network (fun e -> get e "ipmask") with
        | Some m -> (
          match ip_of_string m with Some m -> m | None -> cmask)
        | None -> cmask
      in
      let snet = Int32.logand ipn smask in
      let subnet = if snet <> cnet then net_entry (ip_to_string snet) else None in
      match Option.bind subnet (fun e -> get e attr) with
      | Some v -> Some v
      | None -> Option.bind network (fun e -> get e attr)))

(* The subnet an address belongs to, by containment: every [ipnet]
   entry covers the addresses under its mask — its own [ipmask] when it
   carries one, else the [ipmask] of the classful network entry that
   contains it (the paper's network/subnetwork hierarchy), else the
   class mask.  The most specific covering entry wins, so a /24 subnet
   shadows the /16 network that declares it. *)
let masklen m =
  let rec pop n v =
    if v = 0l then n
    else pop (n + Int32.to_int (Int32.logand v 1l)) (Int32.shift_right_logical v 1)
  in
  pop 0 m

let ipnet_entry t ~ip =
  match ip_of_string ip with
  | None -> None
  | Some ipn ->
    let nets =
      List.filter_map
        (fun e ->
          match (get e "ipnet", Option.bind (get e "ip") ip_of_string) with
          | Some _, Some net -> Some (e, net)
          | _, _ -> None)
        (Array.to_list t.all)
    in
    let mask_of e net =
      match Option.bind (get e "ipmask") ip_of_string with
      | Some m -> m
      | None -> (
        let cmask = class_mask net in
        let cnet = Int32.logand net cmask in
        match
          List.find_opt (fun (_, n) -> n = cnet && n <> net) nets
        with
        | Some (parent, _) -> (
          match Option.bind (get parent "ipmask") ip_of_string with
          | Some m -> m
          | None -> cmask)
        | None -> cmask)
    in
    List.filter_map
      (fun (e, net) ->
        let m = mask_of e net in
        if Int32.logand ipn m = net then Some (masklen m, e) else None)
      nets
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> function
    | (_, e) :: _ -> Some e
    | [] -> None

(* Datakit networks inherit through [dknet=<prefix>] entries: a system
   with dk=nj/astro/helix belongs to dknet=nj/astro.  Longest matching
   prefix wins. *)
let dkattr t ~dk ~attr =
  let matches e =
    match get e "dknet" with
    | Some prefix ->
      let lp = String.length prefix and ld = String.length dk in
      if ld > lp && String.sub dk 0 lp = prefix && dk.[lp] = '/' then
        Some (lp, e)
      else None
    | None -> None
  in
  List.filter_map matches (Array.to_list t.all)
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> List.find_map (fun (_, e) -> get e attr)

let sysattr t ~sys ~attr =
  match sys_entry t sys with
  | None -> None
  | Some e -> (
    match get e attr with
    | Some v -> Some v
    | None -> (
      match
        List.find_map (fun ip -> ipattr t ~ip ~attr) (get_all e "ip")
      with
      | Some v -> Some v
      | None ->
        List.find_map (fun dk -> dkattr t ~dk ~attr) (get_all e "dk")))

let service_port t ~proto ~service =
  match int_of_string_opt service with
  | Some n -> Some n
  | None -> (
    match find t ~attr:proto ~value:service ~rattr:"port" with
    | p :: _ -> int_of_string_opt p
    | [] -> None)

let service_name t ~proto ~port =
  let port_s = string_of_int port in
  List.find_map
    (fun e ->
      match (get e proto, get e "port") with
      | Some name, Some p when p = port_s && name <> "" -> Some name
      | _, _ -> None)
    (Array.to_list t.all)
