(** The network database (paper section 4.1).

    "One database on a shared server contains all the information
    needed for network administration.  Two ASCII files comprise the
    main database ... The files contain sets of attribute/value pairs
    of the form attr=value.  Systems are described by multi-line
    entries; a header line at the left margin begins each entry
    followed by zero or more indented attribute/value pairs."

    "To speed searches, we build hash table files for each attribute we
    expect to search often ... Every hash file contains the
    modification time of its master file so we can avoid using an
    out-of-date hash table.  Searches for attributes that aren't hashed
    or whose hash table is out-of-date still work, they just take
    longer." — {!write_hash}, stale detection, and the silent fallback
    are all implemented, with counters so tests and benches can verify
    which path ran. *)

type entry = (string * string) list
(** One multi-line database entry, as ordered attribute/value pairs.
    Attributes may repeat (a system with two [ip=] addresses). *)

type t

val parse_string : string -> entry list
(** Parse database text: left-margin lines start entries, indented
    lines continue them, [#] starts a comment, values may be
    double-quoted. *)

val of_string : string -> t
(** An in-memory, single-file database (tests, generated worlds). *)

val of_entries : entry list -> t

val open_files : string list -> t
(** A database backed by real files, in search order — conventionally
    [/lib/ndb/local] then [/lib/ndb/global].
    @raise Sys_error if a file is unreadable. *)

val reload : t -> unit
(** Re-read backing files whose modification time changed. *)

val entries : t -> entry list

val get : entry -> string -> string option
(** First value of an attribute in an entry. *)

val get_all : entry -> string -> string list

val search : t -> attr:string -> value:string -> entry list
(** All entries containing the pair [attr=value], in database order.
    Uses a hash index for [attr] when a fresh one exists. *)

val find : t -> attr:string -> value:string -> rattr:string -> string list
(** Values of [rattr] across all entries matching [attr=value],
    deduplicated, in order. *)

(** {1 Hash indexes} *)

val write_hash : t -> attr:string -> unit
(** Build the on-disk index file [<master>.<attr>] for a file-backed
    database (in-memory databases index in memory).  The index records
    the master's modification time. *)

val hashed_attrs : t -> string list

type lookup_stats = {
  mutable hash_lookups : int;  (** searches answered from an index *)
  mutable linear_scans : int;  (** searches that walked the file *)
  mutable stale_rejected : int;  (** indexes ignored as out of date *)
}

val stats : t -> lookup_stats

(** {1 Network-specific queries (section 4.2's [$attr] machinery)} *)

val ipattr : t -> ip:string -> attr:string -> string option
(** The value of [attr] "most closely associated" with an IP address:
    the host's own entry first, then its subnets from most to least
    specific ([ipnet] entries whose [ip]/[ipmask] contain the host;
    classful mask when [ipmask] is absent). *)

val ipnet_entry : t -> ip:string -> entry option
(** The most specific [ipnet] entry whose subnet contains [ip] —
    containment under the entry's own [ipmask], or the [ipmask] of the
    classful network entry containing it, or the class mask.  This is
    how the routed-topology builder maps an interface address to its
    segment, mask, gateway, and medium. *)

val sysattr : t -> sys:string -> attr:string -> string option
(** Like {!ipattr} but starting from a system name ([sys=] or [dom=]);
    falls back through the system's IP networks via its [ip=], then
    through its Datakit network via {!dkattr}. *)

val dkattr : t -> dk:string -> attr:string -> string option
(** The value of [attr] on the [dknet=] entry whose prefix contains
    the Datakit path (longest prefix wins) — so Datakit-only terminals
    inherit network attributes like [auth=] too. *)

val service_port : t -> proto:string -> service:string -> int option
(** [tcp=echo port=7] style lookups; a numeric service name is its own
    port. *)

val service_name : t -> proto:string -> port:int -> string option

val sys_entry : t -> string -> entry option
(** Find a system by [sys=], [dom=], or [ip=] value. *)
